//! Umbrella crate for the RSG reproduction.
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests can `use rsg::core::...`. See `README.md` for the
//! architecture overview and `DESIGN.md` for the paper-to-module map.
//!
//! # Example
//!
//! ```
//! use rsg::geom::{Orientation, Point};
//! assert_eq!(Orientation::SOUTH.apply_point(Point::new(1, 2)), Point::new(-1, -2));
//! ```

#![deny(missing_docs)]

pub use rsg_compact as compact;
pub use rsg_core as core;
pub use rsg_geom as geom;
pub use rsg_hpla as hpla;
pub use rsg_lang as lang;
pub use rsg_layout as layout;
pub use rsg_mult as mult;
pub use rsg_serve as serve;
pub use rsg_solve as solve;
