//! An interactive-editing session over a generated PLA — incremental
//! recompaction in action.
//!
//! A layout session rarely compacts a design once: you compact, look at
//! the result, fix one term of the personality, and compact again. This
//! walkthrough drives a persistent `CompactSession` through exactly that
//! loop:
//!
//! 1. generate a full-adder PLA and compact it (the **cold** run primes
//!    the session's content-hash caches),
//! 2. add one product term to the personality — a one-plane edit — and
//!    recompact: the leaf library replays from the cache (it does not
//!    depend on the personality) and only the definitions that can see
//!    the new crosspoints re-run,
//! 3. recompact the unchanged design — a **no-op** edit is a pure
//!    replay: nothing is re-flattened, re-swept, or re-solved,
//! 4. every step is checked bit-identical against the from-scratch
//!    flow and DRC-clean under the independent flat referee.
//!
//! Run with `cargo run --release --example incremental_edit`.

use rsg::compact::backend::BellmanFord;
use rsg::compact::hier::ChipCompaction;
use rsg::compact::incremental::{CompactSession, EditStats};
use rsg::compact::leaf::Parallelism;
use rsg::layout::{drc, Technology};

fn verify(label: &str, inc: &ChipCompaction, cold: &ChipCompaction) {
    assert_eq!(inc.leaf, cold.leaf, "{label}: leaf results diverged");
    assert_eq!(inc.chip.cells.len(), cold.chip.cells.len());
    for ((n_inc, o_inc), (n_cold, o_cold)) in inc.chip.cells.iter().zip(&cold.chip.cells) {
        assert_eq!(n_inc, n_cold);
        assert_eq!(
            o_inc.cell, o_cold.cell,
            "{label}: `{n_inc}` geometry diverged"
        );
        assert_eq!(
            o_inc.pitches, o_cold.pitches,
            "{label}: `{n_inc}` pitches diverged"
        );
    }
    let tech = Technology::mead_conway(2);
    let flat = rsg::layout::flatten(&inc.chip.table, inc.chip.top).expect("flattens");
    assert!(
        drc::check_flat(&flat, &tech.rules).is_empty(),
        "{label}: incremental result must re-check clean"
    );
    println!("  [{label}] bit-identical to the from-scratch flow, DRC-clean");
}

fn show(stats: &EditStats) {
    println!(
        "  leaf pass: {} job(s) solved, {} replayed from cache",
        stats.leaf_jobs, stats.leaf_hits
    );
    println!(
        "  hier pass: {} of {} assembly cells recompacted ({} replayed)",
        stats.cells_compacted, stats.cells_seen, stats.cell_hits
    );
    println!(
        "  abstracts: {} derived, {} from cache; constraints: {} emitted, {} copied; sweeps: {} solved, {} memoized",
        stats.abstracts_derived,
        stats.abstract_hits,
        stats.constraints_emitted,
        stats.constraints_reused,
        stats.sweeps_solved,
        stats.sweep_memo_hits,
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::mead_conway(2);
    let solver = BellmanFord::SORTED;
    let mut session = CompactSession::new();

    // --- step 1: the cold run --------------------------------------------
    // A full-adder PLA: sum and carry of three inputs.
    let v1 = rsg::hpla::Personality::parse(
        &[
            "100 10", "010 10", "001 10", "111 10", // sum minterms
            "11- 01", "1-1 01", // carry, one term still missing
        ],
        3,
        2,
    )?;
    let pla = rsg::hpla::rsg_pla(&v1, "fa_pla")?;
    println!("=== cold run: compact the initial PLA ===");
    let inc = rsg::hpla::compactor::compact_chip_session(
        &mut session,
        pla.rsg.cells(),
        pla.top,
        &tech.rules,
        &solver,
        Parallelism::Auto,
    )?;
    show(&session.last_stats());
    let cold = rsg::hpla::compactor::compact_chip(
        pla.rsg.cells(),
        pla.top,
        &tech.rules,
        &solver,
        Parallelism::Auto,
    )?;
    verify("cold", &inc, &cold);

    // --- step 2: fix the personality — one new product term ---------------
    let v2 = rsg::hpla::Personality::parse(
        &[
            "100 10", "010 10", "001 10", "111 10", //
            "11- 01", "1-1 01", "-11 01", // the missing carry term
        ],
        3,
        2,
    )?;
    let pla2 = rsg::hpla::rsg_pla(&v2, "fa_pla")?;
    println!("\n=== edit: add the missing carry term and recompact ===");
    let inc = rsg::hpla::compactor::compact_chip_session(
        &mut session,
        pla2.rsg.cells(),
        pla2.top,
        &tech.rules,
        &solver,
        Parallelism::Auto,
    )?;
    let stats = session.last_stats();
    show(&stats);
    assert_eq!(
        stats.leaf_jobs, 0,
        "the cell library does not depend on the personality"
    );
    let cold2 = rsg::hpla::compactor::compact_chip(
        pla2.rsg.cells(),
        pla2.top,
        &tech.rules,
        &solver,
        Parallelism::Auto,
    )?;
    verify("edit", &inc, &cold2);

    // --- step 3: the no-op edit -------------------------------------------
    println!("\n=== no-op: recompact the unchanged design ===");
    let inc = rsg::hpla::compactor::compact_chip_session(
        &mut session,
        pla2.rsg.cells(),
        pla2.top,
        &tech.rules,
        &solver,
        Parallelism::Auto,
    )?;
    let stats = session.last_stats();
    show(&stats);
    assert_eq!(stats.cells_compacted, 0, "a no-op edit recompacts nothing");
    assert_eq!(stats.abstracts_derived, 0, "…re-flattens nothing");
    assert_eq!(stats.constraints_emitted, 0, "…re-emits nothing");
    assert_eq!(stats.sweeps_solved, 0, "…re-solves nothing");
    verify("noop", &inc, &cold2);

    let totals = session.stats();
    println!(
        "\nsession totals over {} calls: {} cells recompacted, {} replayed; \
         {} constraints emitted, {} copied",
        totals.calls,
        totals.totals.cells_compacted,
        totals.totals.cell_hits,
        totals.totals.constraints_emitted,
        totals.totals.constraints_reused,
    );
    Ok(())
}
