//! Chapter 6: leaf-cell compaction with pitch trade-offs.
//!
//! Compacts a small cell library once, under every legal interface, with
//! the pitches as unknowns — then retargets the same library to a finer
//! technology, the "technology transportable" scenario that motivates the
//! whole chapter. Independent cells of one library fan out through the
//! parallel batch compactor; the solver backend is pluggable and the
//! cost-function study at the end compares two of them.
//!
//! Run with `cargo run --example leaf_compaction`.

use rsg::compact::backend::{Balanced, BellmanFord, Solver};
use rsg::compact::layers::expand_contacts;
use rsg::compact::leaf::{
    compact, compact_batch, LeafInterface, LibraryJob, Parallelism, PitchKind,
};
use rsg::geom::Rect;
use rsg::layout::{CellDefinition, Layer, Technology};

fn library_cell() -> CellDefinition {
    let mut c = CellDefinition::new("cell");
    c.add_box(Layer::Poly, Rect::from_coords(4, 0, 10, 40));
    c.add_box(Layer::Diffusion, Rect::from_coords(12, 10, 24, 18));
    c.add_box(Layer::Metal1, Rect::from_coords(20, 4, 32, 36));
    c.add_box(Layer::Poly, Rect::from_coords(40, 0, 46, 40));
    c.add_box(Layer::Contact, Rect::from_coords(22, 14, 30, 26));
    c
}

fn interfaces(weight_h: i64) -> Vec<LeafInterface> {
    vec![
        LeafInterface {
            cell_a: 0,
            cell_b: 0,
            kind: PitchKind::VariableX {
                initial: 56,
                weight: weight_h,
            },
            y_offset: 0,
            name: "horizontal".into(),
        },
        LeafInterface {
            cell_a: 0,
            cell_b: 0,
            kind: PitchKind::FixedX(0),
            y_offset: 44,
            name: "vertical".into(),
        },
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== leaf-cell compaction: one cell, every interface ===\n");
    // The library was drawn at λ = 2; retarget it to λ = 1 and λ = 3.
    // (Each retarget uses different design rules, so these are separate
    // compact() calls; the batch API below fans out within one rule set.)
    let lambdas = [2i64, 1, 3];
    let techs: Vec<Technology> = lambdas
        .iter()
        .map(|&l| Technology::mead_conway(l))
        .collect();
    for tech in &techs {
        let out = compact(
            &[library_cell()],
            &interfaces(64),
            &tech.rules,
            &BellmanFord::SORTED,
        )?;
        println!("--- {} ---", tech.name);
        println!(
            "unknowns: {}   constraints: {}",
            out.unknowns, out.constraints
        );
        for (name, value) in &out.pitches {
            println!("pitch {name} = {value} (sample had 56)");
        }
        let bb = out.cells[0].local_bbox().rect().expect("non-empty");
        println!("cell bbox after compaction: {bb}");

        // Contact pseudo-layer expansion at mask time (Fig 6.9).
        let expanded = expand_contacts(&out.cells[0], &tech.rules);
        let cuts = expanded.boxes().filter(|(l, _)| *l == Layer::Cut).count();
        println!("contact expanded into {cuts} cut(s)\n");
    }

    println!("=== parallel batch: independent cells of one library ===");
    // A real library holds many cells with no shared constraints; those
    // are embarrassingly parallel jobs under one rule set. The parallel
    // path is byte-identical to the serial path by construction.
    let tech2 = Technology::mead_conway(2);
    let jobs: Vec<LibraryJob> = (0..4i64)
        .map(|k| {
            let mut c = CellDefinition::new(format!("cell{k}"));
            c.add_box(Layer::Poly, Rect::from_coords(4, 0, 10, 40));
            c.add_box(
                Layer::Metal1,
                Rect::from_coords(20 + 2 * k, 4, 32 + 2 * k, 36),
            );
            c.add_box(
                Layer::Poly,
                Rect::from_coords(40 + 4 * k, 0, 46 + 4 * k, 40),
            );
            LibraryJob {
                cells: vec![c],
                interfaces: vec![LeafInterface {
                    cell_a: 0,
                    cell_b: 0,
                    kind: PitchKind::VariableX {
                        initial: 56 + 4 * k,
                        weight: 8,
                    },
                    y_offset: 0,
                    name: format!("pitch{k}"),
                }],
            }
        })
        .collect();
    let serial = compact_batch(
        &jobs,
        &tech2.rules,
        &BellmanFord::SORTED,
        Parallelism::Serial,
    );
    let parallel = compact_batch(&jobs, &tech2.rules, &BellmanFord::SORTED, Parallelism::Auto);
    assert_eq!(serial, parallel, "parallel batch must match serial");
    for result in parallel {
        let out = result?;
        let (name, pitch) = &out.pitches[0];
        println!("cell job {name}: solved pitch = {pitch}");
    }
    println!("parallel == serial, bit for bit.\n");

    println!("=== cost-function trade-off (Fig 6.1/6.2) ===");
    // Two staggered-row interfaces whose pitches are coupled through the
    // cell's internal geometry: shrinking one grows the other. The cost
    // weights (expected replication factors n, m of §6.2) pick the point
    // on the trade-off curve.
    let tech = Technology::mead_conway(2);
    let mut brick = CellDefinition::new("brick");
    brick.add_box(Layer::Metal1, Rect::from_coords(0, 0, 4, 10));
    brick.add_box(Layer::Metal1, Rect::from_coords(20, 20, 24, 30));
    let coupled = |w_a: i64, w_b: i64| {
        vec![
            LeafInterface {
                cell_a: 0,
                cell_b: 0,
                kind: PitchKind::VariableX {
                    initial: 40,
                    weight: w_a,
                },
                y_offset: -20,
                name: "lambda_a".into(),
            },
            LeafInterface {
                cell_a: 0,
                cell_b: 0,
                kind: PitchKind::VariableX {
                    initial: 40,
                    weight: w_b,
                },
                y_offset: 20,
                name: "lambda_b".into(),
            },
        ]
    };
    // The backend is pluggable: the pitch trade-off is identical under
    // left-packing and balanced refinement (pitches come from the LP;
    // backends only place the edges within the solved pitches).
    for backend in [&BellmanFord::SORTED as &dyn Solver, &Balanced] {
        for (w_a, w_b) in [(1i64, 10i64), (10, 1), (5, 5)] {
            let out = compact(&[brick.clone()], &coupled(w_a, w_b), &tech.rules, backend)?;
            println!(
                "[{}] weights (n={w_a:>2}, m={w_b:>2}): pitches = {:?}",
                backend.name(),
                out.pitches
            );
        }
    }
    println!("\nminimizing one pitch costs the other — §6.2's central observation.");
    Ok(())
}
