//! Chapter 6: leaf-cell compaction with pitch trade-offs.
//!
//! Compacts a small cell library once, under every legal interface, with
//! the pitches as unknowns — then retargets the same library to a finer
//! technology, the "technology transportable" scenario that motivates the
//! whole chapter.
//!
//! Run with `cargo run --example leaf_compaction`.

use rsg::compact::layers::expand_contacts;
use rsg::compact::leaf::{compact, LeafInterface, PitchKind};
use rsg::geom::Rect;
use rsg::layout::{CellDefinition, Layer, Technology};

fn library_cell() -> CellDefinition {
    let mut c = CellDefinition::new("cell");
    c.add_box(Layer::Poly, Rect::from_coords(4, 0, 10, 40));
    c.add_box(Layer::Diffusion, Rect::from_coords(2, 10, 14, 18));
    c.add_box(Layer::Metal1, Rect::from_coords(20, 4, 32, 36));
    c.add_box(Layer::Poly, Rect::from_coords(40, 0, 46, 40));
    c.add_box(Layer::Contact, Rect::from_coords(22, 14, 30, 26));
    c
}

fn interfaces(weight_h: i64) -> Vec<LeafInterface> {
    vec![
        LeafInterface {
            cell_a: 0,
            cell_b: 0,
            kind: PitchKind::VariableX { initial: 56, weight: weight_h },
            y_offset: 0,
            name: "horizontal".into(),
        },
        LeafInterface {
            cell_a: 0,
            cell_b: 0,
            kind: PitchKind::FixedX(0),
            y_offset: 44,
            name: "vertical".into(),
        },
    ]
}

fn report(tech: &Technology) -> Result<(), Box<dyn std::error::Error>> {
    let out = compact(&[library_cell()], &interfaces(64), &tech.rules)?;
    println!("--- {} ---", tech.name);
    println!("unknowns: {}   constraints: {}", out.unknowns, out.constraints);
    for (name, value) in &out.pitches {
        println!("pitch {name} = {value} (sample had 56)");
    }
    let bb = out.cells[0].local_bbox().rect().expect("non-empty");
    println!("cell bbox after compaction: {bb}");

    // Contact pseudo-layer expansion at mask time (Fig 6.9).
    let expanded = expand_contacts(&out.cells[0], &tech.rules);
    let cuts = expanded.boxes().filter(|(l, _)| *l == Layer::Cut).count();
    println!("contact expanded into {cuts} cut(s)\n");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== leaf-cell compaction: one cell, every interface ===\n");
    // The library was drawn at λ = 2; retarget it to λ = 1 and λ = 3.
    for lambda in [2i64, 1, 3] {
        report(&Technology::mead_conway(lambda))?;
    }

    println!("=== cost-function trade-off (Fig 6.1/6.2) ===");
    // Two staggered-row interfaces whose pitches are coupled through the
    // cell's internal geometry: shrinking one grows the other. The cost
    // weights (expected replication factors n, m of §6.2) pick the point
    // on the trade-off curve.
    let tech = Technology::mead_conway(2);
    let mut brick = CellDefinition::new("brick");
    brick.add_box(Layer::Metal1, Rect::from_coords(0, 0, 4, 10));
    brick.add_box(Layer::Metal1, Rect::from_coords(20, 20, 24, 30));
    let coupled = |w_a: i64, w_b: i64| {
        vec![
            LeafInterface {
                cell_a: 0,
                cell_b: 0,
                kind: PitchKind::VariableX { initial: 40, weight: w_a },
                y_offset: -20,
                name: "lambda_a".into(),
            },
            LeafInterface {
                cell_a: 0,
                cell_b: 0,
                kind: PitchKind::VariableX { initial: 40, weight: w_b },
                y_offset: 20,
                name: "lambda_b".into(),
            },
        ]
    };
    for (w_a, w_b) in [(1i64, 10i64), (10, 1), (5, 5)] {
        let out = compact(&[brick.clone()], &coupled(w_a, w_b), &tech.rules)?;
        println!("weights (n={w_a:>2}, m={w_b:>2}): pitches = {:?}", out.pitches);
    }
    println!("\nminimizing one pitch costs the other — §6.2's central observation.");
    Ok(())
}
