//! Compaction-as-a-service — the persistent store and job queue in
//! action.
//!
//! A layout *service* outlives any single editing session: designs come
//! in as batch jobs, and most of them are resubmissions of content the
//! service has already solved. This walkthrough drives a
//! [`rsg::serve::JobQueue`] through that life cycle:
//!
//! 1. **cold** — a full-adder PLA and a 4×4 multiplier are submitted as
//!    whole-chip jobs; both miss the store, run through a worker's
//!    persistent `CompactSession`, and are persisted,
//! 2. **warm** — a *new* queue over the same store directory (a fresh
//!    process, in spirit) gets the identical jobs and serves both from
//!    disk with **zero** solver invocations and byte-identical CIF,
//! 3. **edit** — one product term is added to the PLA personality; the
//!    edited chip misses (different content, different key) while the
//!    untouched multiplier still hits,
//! 4. **verify** — the audit mode re-solves a hit and diffs it against
//!    the stored bytes, confirming the store tells the truth.
//!
//! Run with `cargo run --release --example serve_demo`.

use rsg::layout::Technology;
use rsg::serve::{JobQueue, ServeConfig};

fn pla(rows: &[&str], name: &str) -> Result<rsg::hpla::GeneratedPla, Box<dyn std::error::Error>> {
    let personality = rsg::hpla::Personality::parse(rows, 3, 2)?;
    Ok(rsg::hpla::rsg_pla(&personality, name)?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::mead_conway(2);
    let store_dir = std::env::temp_dir().join(format!("rsg-serve-demo-{}", std::process::id()));
    let config = ServeConfig::new(tech.rules.clone());

    let fa_v1 = [
        "100 10", "010 10", "001 10", "111 10", // sum minterms
        "11- 01", "1-1 01", // carry, one term still missing
    ];
    let fa_v2 = [
        "100 10", "010 10", "001 10", "111 10", //
        "11- 01", "1-1 01", "-11 01", // the missing carry term
    ];

    // --- step 1: the cold runs -------------------------------------------
    println!("=== cold: submit a PLA and a multiplier to a fresh store ===");
    let (pla_cold, mult_cold) = {
        let queue = JobQueue::new(&store_dir, config.clone())?;
        let chip = pla(&fa_v1, "fa_pla")?;
        let pla_out =
            rsg::hpla::compactor::compact_chip_served(&queue, chip.rsg.cells(), chip.top)?;
        let mult = rsg::mult::generator::generate(4, 4)?;
        let mult_out =
            rsg::mult::compactor::compact_chip_served(&queue, mult.rsg.cells(), mult.top)?;
        for (label, out) in [("pla", &pla_out), ("mult", &mult_out)] {
            println!(
                "  [{label}] key {} — {} ({} cells, {} constraints)",
                out.key,
                if out.from_store {
                    "store hit"
                } else {
                    "solved"
                },
                out.result.report.cells,
                out.result.report.constraints,
            );
        }
        assert!(!pla_out.from_store && !mult_out.from_store);
        println!("{}", queue.metrics());
        (pla_out, mult_out)
    };

    // --- step 2: the warm resubmission ------------------------------------
    println!("\n=== warm: a new queue over the same store, identical jobs ===");
    {
        let queue = JobQueue::new(&store_dir, config.clone())?;
        let chip = pla(&fa_v1, "fa_pla")?;
        let pla_out =
            rsg::hpla::compactor::compact_chip_served(&queue, chip.rsg.cells(), chip.top)?;
        let mult = rsg::mult::generator::generate(4, 4)?;
        let mult_out =
            rsg::mult::compactor::compact_chip_served(&queue, mult.rsg.cells(), mult.top)?;
        assert!(pla_out.from_store && mult_out.from_store, "warm must hit");
        assert_eq!(
            pla_out.metrics.solves, 0,
            "a warm resubmission must not invoke the solver at all"
        );
        assert_eq!(
            pla_out.result.artifacts[0].cif,
            pla_cold.result.artifacts[0].cif
        );
        assert_eq!(
            mult_out.result.artifacts[0].cif,
            mult_cold.result.artifacts[0].cif
        );
        println!("  both served from disk: zero solves, byte-identical CIF");
        println!("{}", queue.metrics());
    }

    // --- step 3: the edit -------------------------------------------------
    println!("\n=== edit: one new product term — only the PLA re-solves ===");
    {
        let queue = JobQueue::new(&store_dir, config.clone())?;
        let chip = pla(&fa_v2, "fa_pla")?;
        let pla_out =
            rsg::hpla::compactor::compact_chip_served(&queue, chip.rsg.cells(), chip.top)?;
        let mult = rsg::mult::generator::generate(4, 4)?;
        let mult_out =
            rsg::mult::compactor::compact_chip_served(&queue, mult.rsg.cells(), mult.top)?;
        assert!(!pla_out.from_store, "edited content is a different key");
        assert!(mult_out.from_store, "untouched content still hits");
        assert_ne!(pla_out.key, pla_cold.key);
        println!(
            "  pla re-solved under key {}, mult served from store",
            pla_out.key
        );
        println!("{}", queue.metrics());
    }

    // --- step 4: the audit ------------------------------------------------
    println!("\n=== verify: re-solve a hit and diff it against the store ===");
    {
        let mut audit = config;
        audit.verify = true;
        let queue = JobQueue::new(&store_dir, audit)?;
        let mult = rsg::mult::generator::generate(4, 4)?;
        let out = rsg::mult::compactor::compact_chip_served(&queue, mult.rsg.cells(), mult.top)?;
        assert!(out.from_store, "a verified hit is still a hit");
        assert_eq!(out.metrics.verify_mismatches, 0, "the store told the truth");
        println!(
            "  {} entry re-solved and matched ({} verified, {} mismatches)",
            out.key, out.metrics.verified, out.metrics.verify_mismatches
        );
    }

    std::fs::remove_dir_all(&store_dir).ok();
    println!("\nserve demo complete");
    Ok(())
}
