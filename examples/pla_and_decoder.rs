//! §1.2.2 in action: one sample layout, two architectures.
//!
//! Generates a PLA from a truth table through the RSG, checks it against
//! the HPLA-style relocation baseline, then builds a decoder from the
//! *same* sample cells — the thing the relocation scheme cannot do
//! without a new hard-coded architecture.
//!
//! Run with `cargo run --example pla_and_decoder`.

use rsg::hpla::{relocation_pla, rsg_decoder, rsg_pla, Personality};
use rsg::layout::stats::LayoutStats;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A full adder: sum = a⊕b⊕cin, cout = majority.
    let personality = Personality::parse(
        &[
            "100 10", "010 10", "001 10", "111 10", // sum minterms
            "11- 01", "1-1 01", "-11 01", // carry
        ],
        3,
        2,
    )?;
    println!(
        "personality: {} inputs, {} products, {} outputs, crosspoints {:?}",
        personality.inputs(),
        personality.products(),
        personality.outputs(),
        personality.crosspoint_counts()
    );
    // Functional check: it really is a full adder.
    for bits in 0..8u32 {
        let input = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
        let out = personality.evaluate(&input);
        let total = input.iter().filter(|&&b| b).count();
        assert_eq!(out[0], total % 2 == 1, "sum");
        assert_eq!(out[1], total >= 2, "carry");
    }
    println!("functional model verified (full adder truth table)");

    let pla = rsg_pla(&personality, "fa_pla")?;
    let stats = LayoutStats::compute(pla.rsg.cells(), pla.top)?;
    println!("\n=== RSG PLA ===\n{stats}");

    let (relo_table, relo_top) = relocation_pla(&personality, "fa_pla_relo")?;
    let relo_stats = LayoutStats::compute(&relo_table, relo_top)?;
    assert_eq!(stats.total_boxes, relo_stats.total_boxes);
    assert_eq!(stats.bbox, relo_stats.bbox);
    println!("relocation baseline produces identical geometry ✓");

    let dec = rsg_decoder(3, "dec3")?;
    let dec_stats = LayoutStats::compute(dec.rsg.cells(), dec.top)?;
    println!("\n=== 3-to-8 decoder from the same sample cells ===\n{dec_stats}");

    Ok(())
}
