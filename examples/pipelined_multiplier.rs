//! The Chapter 5 workload end to end: generate the bit-systolic
//! multiplier layout (Fig 5.6) and sweep the pipelining degree β of the
//! functional array (Fig 5.2), printing the latency / register trade-off
//! the paper's empirical β study iterates over.
//!
//! Run with `cargo run --example pipelined_multiplier [n]`.

use rsg::layout::stats::LayoutStats;
use rsg::mult::generator;
use rsg::mult::pipeline::PipelinedMultiplier;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(6);

    // --- layout side -----------------------------------------------------
    let out = generator::generate(n, n)?;
    let stats = LayoutStats::compute(out.rsg.cells(), out.top)?;
    println!("=== {n}x{n} bit-systolic multiplier layout (Fig 5.6 shape) ===");
    print!("{stats}");
    let array = out.rsg.cells().require(out.array)?;
    println!("array instances: {}", array.instances().count());

    // --- functional side: the β sweep -------------------------------------
    println!("\n=== pipelining degree sweep (Fig 5.2) ===");
    println!(
        "{:>4} {:>9} {:>14} {:>10}",
        "beta", "latency", "register bits", "check"
    );
    let nbits = n.clamp(2, 16);
    for beta in [0usize, 1, 2, 4] {
        let m = PipelinedMultiplier::new(nbits, nbits, beta);
        // Verify a stream of products through the real pipeline.
        let hi = (1i64 << (nbits - 1)) - 1;
        let pairs: Vec<(i64, i64)> = (0..16)
            .map(|k| ((k * 37 % (2 * hi)) - hi, (k * 11 % (2 * hi)) - hi))
            .collect();
        let outs = m.simulate_stream(&pairs);
        let ok = pairs.iter().zip(&outs).all(|(&(a, b), &p)| p == a * b);
        println!(
            "{:>4} {:>9} {:>14} {:>10}",
            beta,
            m.latency(),
            m.register_bits(),
            if ok { "ok" } else { "MISMATCH" }
        );
        assert!(ok);
    }
    println!("\nbeta=0 is the combinational array of Fig 5.1;");
    println!("beta=1 is the bit-systolic multiplier of Fig 5.2a;");
    println!("beta=2 is the two-delay pipeline of Fig 5.2b.");
    Ok(())
}
