//! Experiment E1's three-phase table (§4.5): "The execution time is
//! divided into roughly three equal parts: reading in the source file and
//! building up the initial interface table, parsing and executing the
//! design and parameter file, and writing the output file. A 32×32
//! Baugh-Wooley multiplier ... is generated in 5 seconds on a DEC-2060."
//!
//! The compaction column is followed by the new solver diagnostics:
//! which tight constraints pin each library pitch (§6.2's "which
//! constraints set the width"), and the critical path of the compacted
//! flat core — the chain of constraints whose weights sum to the solved
//! extent.
//!
//! Run with `cargo run --release --example phase_breakdown`.

use rsg::compact::backend::BellmanFord;
use rsg::compact::leaf::Parallelism;
use rsg::compact::scanline::{self, Method};
use rsg::compact::solver::{solve, EdgeOrder};
use rsg::core::Rsg;
use rsg::geom::Axis;
use rsg::lang::Interpreter;
use rsg::mult::{cells, compactor, design_file_source, parameter_file_source};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>14} {:>14}",
        "size", "read sample", "execute", "write output", "compact lib", "total"
    );
    let mut library = None;
    for n in [8usize, 16, 32, 64] {
        // Phase 1: read the sample layout (from its textual form, as the
        // paper's RSG read CIF) and build the interface table.
        let sample_table = cells::sample_layout()?;
        let any_top = sample_table.lookup("s_h").expect("sample cell");
        let sample_text = rsg::layout::write_rsgl(&sample_table, any_top)?;

        let t0 = Instant::now();
        let (_parsed, _) = rsg::layout::read_rsgl(&sample_text)?;
        let rsg = Rsg::from_sample(cells::sample_layout()?)?;
        let p1 = t0.elapsed();
        drop(rsg);

        // Phase 2: parse + execute design and parameter files.
        let t1 = Instant::now();
        let mut interp = Interpreter::from_sample(cells::sample_layout()?)?;
        interp.load_parameters(&parameter_file_source(n, n))?;
        let run = interp.run(design_file_source())?;
        let p2 = t1.elapsed();

        // Phase 3: write the output file.
        let top = run.rsg.cells().lookup("thewholething").expect("built");
        let t2 = Instant::now();
        let cif = rsg::layout::write_cif(run.rsg.cells(), top)?;
        let p3 = t2.elapsed();
        std::hint::black_box(cif.len());

        // Phase 4 (the Chapter 6 economics): leaf-compact the cell
        // library. Independent of n — the same cost whether the array is
        // 8×8 or 64×64, which is the whole point of §6.1.
        let t3 = Instant::now();
        let lib = compactor::compact_library(
            &rsg::layout::Technology::mead_conway(2).rules,
            &BellmanFord::SORTED,
            Parallelism::Auto,
        )?;
        let p4 = t3.elapsed();
        std::hint::black_box(lib.len());
        library = Some(lib);

        println!(
            "{:>6} {:>14.3?} {:>14.3?} {:>14.3?} {:>14.3?} {:>14.3?}",
            format!("{n}x{n}"),
            p1,
            p2,
            p3,
            p4,
            p1 + p2 + p3 + p4
        );
    }
    println!("\npaper (DEC-2060, 32x32): three roughly equal parts totalling ~5 s;");
    println!("library compaction is constant in the array size (leaf economics, §6.1).");

    // What pins each pitch: the tight (zero-slack) constraints the
    // solver reports per λᵢ — §6.2's "which constraints set the width".
    println!("\npitch bindings (tight constraints per λ):");
    for result in library.expect("loop ran") {
        for binding in &result.bindings {
            println!(
                "  {:>16} = {:>3}  pinned by {} tight constraint(s)",
                binding.name,
                binding.value,
                binding.tight.len()
            );
        }
    }

    // Critical path of a flat compaction: the chain of tight constraints
    // whose weights telescope to the compacted width.
    let out = rsg::mult::generator::generate(8, 8)?;
    let flat = rsg::layout::flatten(out.rsg.cells(), out.top)?;
    let boxes: Vec<_> = flat
        .layer_rects()
        .iter()
        .filter(|(l, _)| *l == rsg::layout::Layer::Metal1)
        .copied()
        .collect();
    let tech = rsg::layout::Technology::mead_conway(2);
    let (sys, _) = scanline::generate(&boxes, &tech.rules, Method::Visibility, Axis::X);
    let sol = solve(&sys, EdgeOrder::Sorted)?;
    let widest = sys
        .vars()
        .max_by_key(|&v| sol.position(v))
        .expect("non-empty system");
    let chain = sol.critical_path(&sys, widest);
    let total: i64 = chain.iter().map(|c| c.weight).sum();
    println!(
        "\ncritical path, 8x8 multiplier metal1 ({} vars, {} constraints):",
        sys.num_vars(),
        sys.constraints().len()
    );
    println!(
        "  {} chain links, weights sum to {} = solved extent {}",
        chain.len(),
        total,
        sol.extent()
    );
    assert_eq!(total, sol.extent(), "the chain explains the extent");
    Ok(())
}
