//! Experiment E1's three-phase table (§4.5): "The execution time is
//! divided into roughly three equal parts: reading in the source file and
//! building up the initial interface table, parsing and executing the
//! design and parameter file, and writing the output file. A 32×32
//! Baugh-Wooley multiplier ... is generated in 5 seconds on a DEC-2060."
//!
//! Run with `cargo run --release --example phase_breakdown`.

use rsg::compact::backend::BellmanFord;
use rsg::compact::leaf::Parallelism;
use rsg::core::Rsg;
use rsg::lang::Interpreter;
use rsg::mult::{cells, compactor, design_file_source, parameter_file_source};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>14} {:>14}",
        "size", "read sample", "execute", "write output", "compact lib", "total"
    );
    for n in [8usize, 16, 32, 64] {
        // Phase 1: read the sample layout (from its textual form, as the
        // paper's RSG read CIF) and build the interface table.
        let sample_table = cells::sample_layout();
        let any_top = sample_table.lookup("s_h").expect("sample cell");
        let sample_text = rsg::layout::write_rsgl(&sample_table, any_top)?;

        let t0 = Instant::now();
        let (_parsed, _) = rsg::layout::read_rsgl(&sample_text)?;
        let rsg = Rsg::from_sample(cells::sample_layout())?;
        let p1 = t0.elapsed();
        drop(rsg);

        // Phase 2: parse + execute design and parameter files.
        let t1 = Instant::now();
        let mut interp = Interpreter::from_sample(cells::sample_layout())?;
        interp.load_parameters(&parameter_file_source(n, n))?;
        let run = interp.run(design_file_source())?;
        let p2 = t1.elapsed();

        // Phase 3: write the output file.
        let top = run.rsg.cells().lookup("thewholething").expect("built");
        let t2 = Instant::now();
        let cif = rsg::layout::write_cif(run.rsg.cells(), top)?;
        let p3 = t2.elapsed();
        std::hint::black_box(cif.len());

        // Phase 4 (the Chapter 6 economics): leaf-compact the cell
        // library. Independent of n — the same cost whether the array is
        // 8×8 or 64×64, which is the whole point of §6.1.
        let t3 = Instant::now();
        let lib = compactor::compact_library(
            &rsg::layout::Technology::mead_conway(2).rules,
            &BellmanFord::SORTED,
            Parallelism::Auto,
        )?;
        let p4 = t3.elapsed();
        std::hint::black_box(lib.len());

        println!(
            "{:>6} {:>14.3?} {:>14.3?} {:>14.3?} {:>14.3?} {:>14.3?}",
            format!("{n}x{n}"),
            p1,
            p2,
            p3,
            p4,
            p1 + p2 + p3 + p4
        );
    }
    println!("\npaper (DEC-2060, 32x32): three roughly equal parts totalling ~5 s;");
    println!("library compaction is constant in the array size (leaf economics, §6.1).");
    Ok(())
}
