//! Whole-chip hierarchical compaction — the paper's headline flow.
//!
//! 1. Generate an assembled chip (a PLA from a truth table, a 6×6
//!    multiplier) through the RSG.
//! 2. **Leaf pass**: compact the cell library once, pitches as unknowns
//!    (§6.1) — never the assembled mask data.
//! 3. **Hier pass**: re-place the instances against the compacted
//!    cells' interface abstracts, rows/columns pitch-matched through
//!    shared λ classes; multi-level assemblies (the multiplier's
//!    `array` → `thewholething`) compact bottom-up.
//! 4. Flatten only to *verify*: the independent DRC referee must find
//!    nothing, and the chip must be smaller.
//!
//! Run with `cargo run --release --example chip_compaction`.

use rsg::compact::backend::BellmanFord;
use rsg::compact::hier::ChipCompaction;
use rsg::compact::leaf::Parallelism;
use rsg::layout::{drc, CellId, CellTable, Technology};

fn report(name: &str, table: &CellTable, top: CellId, out: &ChipCompaction) {
    let tech = Technology::mead_conway(2);
    let before = rsg::layout::flatten(table, top).expect("input flattens");
    let after = rsg::layout::flatten(&out.chip.table, out.chip.top).expect("output flattens");
    let bb0 = before.bbox().rect().expect("non-empty");
    let bb1 = after.bbox().rect().expect("non-empty");
    let violations = drc::check_flat(&after, &tech.rules);
    println!("=== {name} ===");
    println!(
        "  area: {}x{} -> {}x{}  ({:.1}% of the sample)",
        bb0.width(),
        bb0.height(),
        bb1.width(),
        bb1.height(),
        100.0 * (bb1.width() * bb1.height()) as f64 / (bb0.width() * bb0.height()) as f64,
    );
    println!("  DRC after flattening: {} violations", violations.len());
    assert!(violations.is_empty(), "compacted chip must re-check clean");
    assert!(
        bb1.width() * bb1.height() < bb0.width() * bb0.height(),
        "compaction must shrink the chip"
    );
    for (cell, outcome) in &out.chip.cells {
        let moved: usize = outcome
            .report
            .sweeps
            .iter()
            .map(|s| s.clusters)
            .max()
            .unwrap_or(0);
        println!(
            "  {cell}: {} instance clusters re-placed over {} flat boxes' worth of geometry, \
             {} alternations, {} constraints",
            moved,
            outcome.report.flat_boxes,
            outcome.passes,
            outcome.report.total_constraints(),
        );
        for pitch in &outcome.pitches {
            println!(
                "    λ {} = {} shared by {} abutting pair(s)",
                pitch.name, pitch.value, pitch.pairs
            );
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::mead_conway(2);
    let solver = BellmanFord::SORTED;

    // --- a full-adder PLA ------------------------------------------------
    let personality = rsg::hpla::Personality::parse(
        &[
            "100 10", "010 10", "001 10", "111 10", // sum minterms
            "11- 01", "1-1 01", "-11 01", // carry
        ],
        3,
        2,
    )?;
    let pla = rsg::hpla::rsg_pla(&personality, "fa_pla")?;
    let out = rsg::hpla::compactor::compact_chip(
        pla.rsg.cells(),
        pla.top,
        &tech.rules,
        &solver,
        Parallelism::Auto,
    )?;
    report("full-adder PLA", pla.rsg.cells(), pla.top, &out);

    // The leaf pass ran once for the whole library, independent of the
    // personality size — §6.1's economics.
    println!(
        "  (leaf pass solved {} librar{} once, reused by every instance)",
        out.leaf.len(),
        if out.leaf.len() == 1 { "y" } else { "ies" }
    );

    // --- a 6×6 pipelined multiplier --------------------------------------
    let mult = rsg::mult::generator::generate(6, 6)?;
    let out = rsg::mult::compactor::compact_chip(
        mult.rsg.cells(),
        mult.top,
        &tech.rules,
        &solver,
        Parallelism::Auto,
    )?;
    report("6x6 multiplier", mult.rsg.cells(), mult.top, &out);
    println!("  (array, register stacks, and the top assembly compacted bottom-up,");
    println!("   never flattened — the paper's hierarchical composition)");

    // The compacted chip exports like any other layout.
    let cif = rsg::layout::write_cif(&out.chip.table, out.chip.top)?;
    println!("\ncompacted multiplier CIF: {} bytes", cif.len());
    Ok(())
}
