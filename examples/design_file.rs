//! Runs the Appendix-B multiplier design file through the design-file
//! interpreter and prints what was built — the interpreted half of
//! experiment E9.
//!
//! Run with `cargo run --example design_file [xsize] [ysize]`.

use rsg::lang::run_design;
use rsg::layout::stats::LayoutStats;
use rsg::mult::{cells, design_file_source, parameter_file_source};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let xsize: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(6);
    let ysize: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(xsize);

    println!("running the multiplier design file for {xsize}x{ysize}...");
    let run = run_design(
        cells::sample_layout()?,
        design_file_source(),
        &parameter_file_source(xsize, ysize),
    )?;

    for line in &run.output {
        println!("design file printed: {line}");
    }
    println!("last statement value: {}", run.result);

    println!("\ncells built by the design file:");
    for (_, def) in run.rsg.cells().iter() {
        let (boxes, labels, instances) = def.object_counts();
        if instances > 0 && !def.name().starts_with("s_") {
            println!(
                "  {:<16} {instances:>5} instances, {boxes} boxes, {labels} labels",
                def.name()
            );
        }
    }

    let top = run
        .rsg
        .cells()
        .lookup("thewholething")
        .expect("design file built the top");
    let stats = LayoutStats::compute(run.rsg.cells(), top)?;
    println!("\nthewholething:\n{stats}");

    let rsgl = rsg::layout::write_rsgl(run.rsg.cells(), top)?;
    println!(
        "rsgl output: {} bytes ({} lines)",
        rsgl.len(),
        rsgl.lines().count()
    );
    Ok(())
}
