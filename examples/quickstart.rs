//! Quickstart: the full Fig 1.1 flow in fifty lines.
//!
//! 1. Draw a sample layout: a leaf cell plus one assembly cell in which
//!    two instances overlap and a numeric label marks the interface.
//! 2. Feed it to the generator: the interface table is extracted.
//! 3. Build a connectivity graph (partial instances + interface-indexed
//!    edges) and expand it into a layout.
//! 4. Write CIF.
//!
//! Run with `cargo run --example quickstart`.

use rsg::core::Rsg;
use rsg::geom::{Orientation, Point, Rect};
use rsg::layout::{CellDefinition, CellTable, Instance, Layer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. the sample layout (normally read from a .rsgl file) --------
    let mut sample = CellTable::new();
    let mut tile = CellDefinition::new("tile");
    tile.add_box(Layer::Well, Rect::from_coords(0, 0, 12, 12));
    tile.add_box(Layer::Metal1, Rect::from_coords(3, 3, 9, 9));
    let tile_id = sample.insert(tile)?;

    // Design by example: two tiles assembled at the desired pitch, the
    // label "1" in the shared region defines interface #1.
    let mut pair = CellDefinition::new("example_pair");
    pair.add_instance(Instance::new(tile_id, Point::new(0, 0), Orientation::NORTH));
    pair.add_instance(Instance::new(
        tile_id,
        Point::new(12, 0),
        Orientation::NORTH,
    ));
    pair.add_label("1", Point::new(12, 6));
    sample.insert(pair)?;

    // --- 2. initialize the generator -----------------------------------
    let mut rsg = Rsg::from_sample(sample)?;
    let tile_cell = rsg.cells().lookup("tile").expect("sample cell");
    println!("extracted {} interface entries", rsg.interfaces().len());

    // --- 3. connectivity graph → layout ---------------------------------
    let nodes: Vec<_> = (0..8).map(|_| rsg.mk_instance(tile_cell)).collect();
    for w in nodes.windows(2) {
        rsg.connect(w[0], w[1], 1)?;
    }
    let row = rsg.mk_cell("row8", nodes[0])?;

    // One hierarchy walk produces the FlatLayout: boxes + a prebuilt
    // spatial index that stats, DRC, and flat CIF emission all share.
    let flat = rsg::layout::flatten(rsg.cells(), row)?;
    let stats = rsg::layout::stats::LayoutStats::of_flat(&flat);
    println!("built `row8`:\n{stats}");
    let tech = rsg::layout::Technology::mead_conway(2);
    println!(
        "sweep DRC: {} violations",
        rsg::layout::drc::check_flat(&flat, &tech.rules).len()
    );

    // --- 4. output -------------------------------------------------------
    let cif = rsg::layout::write_cif(rsg.cells(), row)?;
    println!("--- CIF ---\n{cif}");
    println!(
        "--- flat CIF ---\n{}",
        rsg::layout::write_cif_flat(&flat, "row8_flat")?
    );
    Ok(())
}
