//! Experiment E8: the Fig 5.6 multiplier layout at multiple sizes — the
//! shape facts the figure shows, checked across the full stack, plus
//! export round-trips.

use rsg::layout::stats::LayoutStats;
use rsg::mult::cells::{PITCH, REG_HEIGHT, REG_WIDTH};
use rsg::mult::generator::{column_x, generate, row_y};

#[test]
fn layout_scales_linearly_in_cell_count() {
    let mut last = 0usize;
    for n in [2usize, 4, 8] {
        let out = generate(n, n).unwrap();
        let stats = LayoutStats::compute(out.rsg.cells(), out.top).unwrap();
        // 5 objects per array cell + 2n top/bottom regs + 2n right-stack
        // objects + 4 macro instances.
        assert_eq!(stats.total_instances, 5 * n * n + 2 * n + 2 * n + 4);
        assert!(stats.total_instances > last);
        last = stats.total_instances;
    }
}

#[test]
fn periphery_has_register_stacks_on_three_sides() {
    let n = 6;
    let out = generate(n, n).unwrap();
    let stats = LayoutStats::compute(out.rsg.cells(), out.top).unwrap();
    let bb = stats.bbox.rect().unwrap();
    // Core spans [0, n·PITCH] × [−(n−1)·PITCH, PITCH]; registers extend it
    // up, down, and right — but not left (no left stack in this design).
    assert_eq!(bb.lo().x, 0);
    assert_eq!(bb.hi().x, column_x(n) + PITCH + REG_WIDTH);
    assert_eq!(bb.hi().y, PITCH + REG_HEIGHT);
    assert_eq!(bb.lo().y, row_y(n) - REG_HEIGHT);
}

#[test]
fn no_two_core_cells_collide() {
    let out = generate(5, 5).unwrap();
    let cells = out.rsg.cells();
    let basic = cells.lookup("basic").unwrap();
    let def = cells.require(out.array).unwrap();
    let rects: Vec<rsg::geom::Rect> = def
        .instances()
        .filter(|i| i.cell == basic)
        .map(|i| rsg::geom::Rect::from_origin_size(i.point_of_call, PITCH, PITCH))
        .collect();
    for (i, a) in rects.iter().enumerate() {
        for b in &rects[i + 1..] {
            assert!(!a.overlaps(*b), "{a} overlaps {b}");
        }
    }
}

#[test]
fn masks_land_exactly_on_their_core_cells() {
    let out = generate(4, 4).unwrap();
    let cells = out.rsg.cells();
    let basic = cells.lookup("basic").unwrap();
    let def = cells.require(out.array).unwrap();
    let core_points: std::collections::HashSet<_> = def
        .instances()
        .filter(|i| i.cell == basic)
        .map(|i| i.point_of_call)
        .collect();
    for inst in def.instances().filter(|i| i.cell != basic) {
        assert!(
            core_points.contains(&inst.point_of_call),
            "mask at {} has no core cell",
            inst.point_of_call
        );
    }
}

#[test]
fn cif_and_rsgl_round_trip_the_full_multiplier() {
    let out = generate(6, 6).unwrap();
    let cif = rsg::layout::write_cif(out.rsg.cells(), out.top).unwrap();
    // Every sample cell the generator used is defined once in the CIF.
    for name in [
        "basic",
        "typei",
        "typeii",
        "topreg",
        "bottomreg",
        "rightreg",
    ] {
        assert_eq!(cif.matches(&format!("9 {name};")).count(), 1, "{name}");
    }
    let rsgl = rsg::layout::write_rsgl(out.rsg.cells(), out.top).unwrap();
    let (table, top) = rsg::layout::read_rsgl(&rsgl).unwrap();
    let s1 = LayoutStats::compute(out.rsg.cells(), out.top).unwrap();
    let s2 = LayoutStats::compute(&table, top).unwrap();
    assert_eq!(s1.total_boxes, s2.total_boxes);
    assert_eq!(s1.total_instances, s2.total_instances);
    assert_eq!(s1.bbox, s2.bbox);
    assert_eq!(s1.boxes_per_layer, s2.boxes_per_layer);
}

#[test]
fn functional_and_structural_sides_agree_on_type_assignment() {
    // The layout personalizes type II on the right column + bottom row
    // except the corner; the Baugh-Wooley functional model personalizes
    // where exactly one sign bit is involved. Same count.
    let n = 8;
    let out = generate(n, n).unwrap();
    let cells = out.rsg.cells();
    let typeii = cells.lookup("typeii").unwrap();
    let layout_count = cells
        .require(out.array)
        .unwrap()
        .instances()
        .filter(|i| i.cell == typeii)
        .count();
    let bw = rsg::mult::baugh_wooley::BaughWooley::new(n, n);
    assert_eq!(layout_count, bw.type_counts().1);
}
