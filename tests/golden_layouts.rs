//! Golden-layout regression suite (experiment E20).
//!
//! Unit tests check local invariants; this suite pins the *entire
//! geometry* of the flagship pipelines byte for byte. Each test
//! regenerates a layout, serializes it as CIF, and diffs it against the
//! committed snapshot under `tests/golden/` — any silent drift in the
//! generators, the leaf compactor, or the hierarchical compactor shows
//! up as a failing diff of mask geometry, not as a green run with
//! different numbers.
//!
//! To re-bless after an *intentional* geometry change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test golden_layouts
//! ```
//!
//! then review the snapshot diff like any other code change.

mod common;

use common::{full_adder_pla, quickstart_layout};
use rsg::compact::backend::BellmanFord;
use rsg::compact::leaf::Parallelism;
use rsg::layout::Technology;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Diffs `actual` against the committed snapshot, or re-blesses it when
/// `UPDATE_GOLDEN=1`.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run with UPDATE_GOLDEN=1 to bless",
            path.display()
        )
    });
    if expected != actual {
        let first_diff = expected
            .lines()
            .zip(actual.lines())
            .position(|(e, a)| e != a)
            .map_or_else(
                || "line counts differ".to_owned(),
                |k| {
                    format!(
                        "first diff at line {}:\n  golden: {}\n  actual: {}",
                        k + 1,
                        expected.lines().nth(k).unwrap_or(""),
                        actual.lines().nth(k).unwrap_or(""),
                    )
                },
            );
        panic!(
            "layout drifted from golden snapshot {name} \
             ({} golden vs {} actual lines) — {first_diff}\n\
             If the change is intentional, re-bless with UPDATE_GOLDEN=1.",
            expected.lines().count(),
            actual.lines().count(),
        );
    }
}

#[test]
fn golden_quickstart_row() {
    let (table, row) = quickstart_layout();
    assert_golden(
        "quickstart_row8.cif",
        &rsg::layout::write_cif(&table, row).unwrap(),
    );
    let flat = rsg::layout::flatten(&table, row).unwrap();
    assert_golden(
        "quickstart_row8_flat.cif",
        &rsg::layout::write_cif_flat(&flat, "row8_flat").unwrap(),
    );
}

#[test]
fn golden_pla() {
    let pla = full_adder_pla();
    assert_golden(
        "pla_full_adder.cif",
        &rsg::layout::write_cif(pla.rsg.cells(), pla.top).unwrap(),
    );
}

#[test]
fn golden_pla_compacted() {
    let tech = Technology::mead_conway(2);
    let pla = full_adder_pla();
    let out = rsg::hpla::compactor::compact_chip(
        pla.rsg.cells(),
        pla.top,
        &tech.rules,
        &BellmanFord::SORTED,
        Parallelism::Serial,
    )
    .unwrap();
    assert_golden(
        "pla_full_adder_compacted.cif",
        &rsg::layout::write_cif(&out.chip.table, out.chip.top).unwrap(),
    );
}

#[test]
fn golden_multiplier() {
    let out = rsg::mult::generator::generate(4, 4).unwrap();
    assert_golden(
        "multiplier_4x4.cif",
        &rsg::layout::write_cif(out.rsg.cells(), out.top).unwrap(),
    );
}

#[test]
fn golden_multiplier_compacted() {
    let tech = Technology::mead_conway(2);
    let out = rsg::mult::generator::generate(4, 4).unwrap();
    let compacted = rsg::mult::compactor::compact_chip(
        out.rsg.cells(),
        out.top,
        &tech.rules,
        &BellmanFord::SORTED,
        Parallelism::Serial,
    )
    .unwrap();
    assert_golden(
        "multiplier_4x4_compacted.cif",
        &rsg::layout::write_cif(&compacted.chip.table, compacted.chip.top).unwrap(),
    );
}
