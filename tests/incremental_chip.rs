//! Incremental recompaction on the real generators (E21's correctness
//! side): edit one leaf of a generated chip, recompact through a
//! persistent session, and the result must be **bit-identical** to the
//! from-scratch flow — while the cache counters prove the untouched
//! subtrees (the n² core array, the unchanged library jobs) were never
//! re-done.

use rsg::compact::backend::BellmanFord;
use rsg::compact::hier::ChipCompaction;
use rsg::compact::incremental::CompactSession;
use rsg::compact::leaf::Parallelism;
use rsg::layout::{
    drc, flatten, CellDefinition, CellId, CellTable, Instance, LayoutObject, Technology,
};

/// Bit-identity on everything a layout consumer sees: the compacted
/// assembly cells (geometry + pitches, in order) and the leaf library.
fn assert_same_chip(inc: &ChipCompaction, cold: &ChipCompaction) {
    assert_eq!(inc.leaf, cold.leaf, "leaf-pass results diverged");
    assert_eq!(inc.chip.cells.len(), cold.chip.cells.len());
    for ((n_inc, o_inc), (n_cold, o_cold)) in inc.chip.cells.iter().zip(&cold.chip.cells) {
        assert_eq!(n_inc, n_cold, "compaction order");
        assert_eq!(o_inc.cell, o_cold.cell, "geometry of `{n_inc}` diverged");
        assert_eq!(
            o_inc.pitches, o_cold.pitches,
            "pitches of `{n_inc}` diverged"
        );
    }
}

/// Returns `table` with the first `from` instance inside cell `host`
/// re-pointed at `to` — the "swap one control mask" edit.
fn swap_one_instance(table: &CellTable, host: &str, from: CellId, to: CellId) -> CellTable {
    let mut t = table.clone();
    let host_id = t.lookup(host).expect("host cell");
    let def = t.get(host_id).expect("host def");
    let mut edited = CellDefinition::new(def.name());
    let mut swapped = false;
    for obj in def.objects() {
        match obj {
            LayoutObject::Instance(i) => {
                let mut cell = i.cell;
                if !swapped && cell == from {
                    cell = to;
                    swapped = true;
                }
                edited.add_instance(Instance::new(cell, i.point_of_call, i.orientation));
            }
            LayoutObject::Box { layer, rect } => {
                edited.add_box(*layer, *rect);
            }
            LayoutObject::Label { text, at } => {
                edited.add_label(text.clone(), *at);
            }
        }
    }
    assert!(swapped, "no `from` instance found in `{host}`");
    *t.get_mut(host_id).unwrap() = edited;
    t
}

/// Multiplier: swap one `goleft` direction mask to `goright` in the
/// right register stack (a different assdirection personality). Only the
/// stack and the top cell may recompact; the core array, the other
/// register stacks, and both library jobs replay from the cache.
#[test]
fn multiplier_one_mask_edit_recompacts_one_path() {
    let tech = Technology::mead_conway(2);
    let solver = BellmanFord::SORTED;
    let out = rsg::mult::generator::generate(4, 4).unwrap();
    let table = out.rsg.cells();

    let mut session = CompactSession::new();
    let cold =
        rsg::mult::compactor::compact_chip(table, out.top, &tech.rules, &solver, Parallelism::Auto)
            .unwrap();
    let primed = rsg::mult::compactor::compact_chip_session(
        &mut session,
        table,
        out.top,
        &tech.rules,
        &solver,
        Parallelism::Auto,
    )
    .unwrap();
    assert_same_chip(&primed, &cold);
    assert_eq!(
        session.last_stats().leaf_jobs,
        2,
        "cold leaf pass runs both jobs"
    );

    // The edit: one goleft -> goright swap inside `rightregs`.
    let goleft = table.lookup("goleft").unwrap();
    let goright = table.lookup("goright").unwrap();
    let edited = swap_one_instance(table, "rightregs", goleft, goright);

    let cold_edit = rsg::mult::compactor::compact_chip(
        &edited,
        out.top,
        &tech.rules,
        &solver,
        Parallelism::Auto,
    )
    .unwrap();
    let inc_edit = rsg::mult::compactor::compact_chip_session(
        &mut session,
        &edited,
        out.top,
        &tech.rules,
        &solver,
        Parallelism::Auto,
    )
    .unwrap();
    assert_same_chip(&inc_edit, &cold_edit);

    // The economics: the edit is visible only from `rightregs` and the
    // top cell; everything else is a cache hit.
    let stats = session.last_stats();
    assert_eq!(
        stats.leaf_hits, 2,
        "library jobs untouched by the mask edit"
    );
    assert_eq!(stats.leaf_jobs, 0);
    assert_eq!(
        stats.cells_compacted, 2,
        "only `rightregs` and `thewholething` re-run"
    );
    assert_eq!(
        stats.cell_hits, 3,
        "`array`, `topregs`, `bottomregs` replay from the cache"
    );

    // And the shared answer is clean under the independent referee.
    let flat = flatten(&inc_edit.chip.table, inc_edit.chip.top).unwrap();
    assert!(drc::check_flat(&flat, &tech.rules).is_empty());

    // No-op recompaction of the edited chip: pure replay.
    let noop = rsg::mult::compactor::compact_chip_session(
        &mut session,
        &edited,
        out.top,
        &tech.rules,
        &solver,
        Parallelism::Auto,
    )
    .unwrap();
    assert_same_chip(&noop, &cold_edit);
    let stats = session.last_stats();
    assert_eq!(stats.cells_compacted, 0);
    assert_eq!(stats.abstracts_derived, 0);
    assert_eq!(stats.constraints_emitted, 0);
}

/// PLA: editing the personality (one crosspoint) regenerates the planes
/// but leaves the cell library untouched — the session's leaf cache must
/// absorb the whole leaf pass while the hier pass stays bit-identical.
#[test]
fn pla_personality_edit_reuses_the_leaf_pass() {
    let tech = Technology::mead_conway(2);
    let solver = BellmanFord::SORTED;
    let p1 = rsg::hpla::Personality::parse(&["10 10", "01 10", "11 01"], 2, 2).unwrap();
    let p2 = rsg::hpla::Personality::parse(&["10 10", "01 11", "11 01"], 2, 2).unwrap();

    let mut session = CompactSession::new();
    let pla1 = rsg::hpla::rsg_pla(&p1, "pla").unwrap();
    let cold1 = rsg::hpla::compactor::compact_chip(
        pla1.rsg.cells(),
        pla1.top,
        &tech.rules,
        &solver,
        Parallelism::Auto,
    )
    .unwrap();
    let inc1 = rsg::hpla::compactor::compact_chip_session(
        &mut session,
        pla1.rsg.cells(),
        pla1.top,
        &tech.rules,
        &solver,
        Parallelism::Auto,
    )
    .unwrap();
    assert_same_chip(&inc1, &cold1);

    let pla2 = rsg::hpla::rsg_pla(&p2, "pla").unwrap();
    let cold2 = rsg::hpla::compactor::compact_chip(
        pla2.rsg.cells(),
        pla2.top,
        &tech.rules,
        &solver,
        Parallelism::Auto,
    )
    .unwrap();
    let inc2 = rsg::hpla::compactor::compact_chip_session(
        &mut session,
        pla2.rsg.cells(),
        pla2.top,
        &tech.rules,
        &solver,
        Parallelism::Auto,
    )
    .unwrap();
    assert_same_chip(&inc2, &cold2);

    let stats = session.last_stats();
    assert_eq!(
        stats.leaf_hits, 2,
        "the library does not depend on the personality"
    );
    assert_eq!(stats.leaf_jobs, 0);

    let flat = flatten(&inc2.chip.table, inc2.chip.top).unwrap();
    assert!(drc::check_flat(&flat, &tech.rules).is_empty());
}
