//! Experiments E5/E6: graph↔layout equivalence (Fig 3.2/3.3) and the
//! directed-edge disambiguation for same-celltype interfaces
//! (Figs 3.5–3.7), exercised across the full crate stack.

use rsg::core::{Interface, Rsg};
use rsg::geom::{Orientation, Point, Rect, Vector};
use rsg::layout::{CellDefinition, CellTable, Instance, Layer};

/// Builds the Fig 3.3 cluster: cells A, B, C, D assembled with only a
/// spanning tree of interfaces (A–B, B–C, C–D); the missing interfaces
/// (A–C, A–D, B–D) "are never accessed by the RSG, and therefore need not
/// be present in the sample layout".
#[test]
fn spanning_tree_suffices_fig_3_3() {
    let mut sample = CellTable::new();
    let mut ids = Vec::new();
    for name in ["a", "b", "c", "d"] {
        let mut cell = CellDefinition::new(name);
        cell.add_box(Layer::Metal1, Rect::from_coords(0, 0, 10, 10));
        ids.push(sample.insert(cell).unwrap());
    }
    // Assembly examples: a–b side by side, b–c stacked, c–d side by side.
    let pairs = [
        ("s_ab", ids[0], ids[1], Point::new(10, 0)),
        ("s_bc", ids[1], ids[2], Point::new(0, -10)),
        ("s_cd", ids[2], ids[3], Point::new(10, 0)),
    ];
    for (name, a, b, at) in pairs {
        let mut s = CellDefinition::new(name);
        s.add_instance(Instance::new(a, Point::new(0, 0), Orientation::NORTH));
        s.add_instance(Instance::new(b, at, Orientation::NORTH));
        s.add_label("1", Point::new(at.x.max(0), at.y.clamp(0, 10)));
        sample.insert(s).unwrap();
    }

    let mut rsg = Rsg::from_sample(sample).unwrap();
    let na = rsg.mk_instance(ids[0]);
    let nb = rsg.mk_instance(ids[1]);
    let nc = rsg.mk_instance(ids[2]);
    let nd = rsg.mk_instance(ids[3]);
    rsg.connect(na, nb, 1).unwrap();
    rsg.connect(nb, nc, 1).unwrap();
    rsg.connect(nc, nd, 1).unwrap();
    let cluster = rsg.mk_cell("cluster", na).unwrap();

    let expect = [
        (ids[0], Point::new(0, 0)),
        (ids[1], Point::new(10, 0)),
        (ids[2], Point::new(10, -10)),
        (ids[3], Point::new(20, -10)),
    ];
    let def = rsg.cells().require(cluster).unwrap();
    for (cell, at) in expect {
        assert!(
            def.instances()
                .any(|i| i.cell == cell && i.point_of_call == at),
            "missing {cell:?} at {at}"
        );
    }
}

/// The two interpretations of Fig 3.5 produce non-equivalent layouts
/// (Fig 3.6); directed edges pick one deterministically (Fig 3.7), no
/// matter the traversal order.
#[test]
fn directed_edges_fix_fig_3_6_ambiguity() {
    // An asymmetric self-interface: neighbour sits east and south-flipped.
    let iface = Interface::new(Vector::new(12, -3), Orientation::SOUTH);

    let build = |root_is_tail: bool| {
        let mut rsg = Rsg::new();
        let mut cell = CellDefinition::new("a");
        cell.add_box(Layer::Poly, Rect::from_coords(0, 0, 8, 8));
        let a = rsg.cells_mut().insert(cell).unwrap();
        rsg.declare_primitive_interface(a, a, 1, iface).unwrap();
        let n1 = rsg.mk_instance(a);
        let n2 = rsg.mk_instance(a);
        rsg.connect(n1, n2, 1).unwrap();
        let root = if root_is_tail { n1 } else { n2 };
        rsg.mk_cell("pair", root).unwrap();
        let c1 = rsg.node_placement(n1).unwrap().isometry();
        let c2 = rsg.node_placement(n2).unwrap().isometry();
        Interface::between(c1, c2)
    };

    // Whichever node roots the traversal, the tail→head relation is the
    // declared interface — the paper's versions that "depended on how the
    // graph was actually traversed" are ruled out.
    assert_eq!(build(true), iface);
    assert_eq!(build(false), iface);
}

/// Fig 3.2: a graph expands to the same layout modulo a global isometry
/// regardless of the root's calling parameters (§3.4's equivalence
/// class).
#[test]
fn root_call_only_moves_the_representative() {
    use rsg::geom::Isometry;
    let iface = Interface::new(Vector::new(9, 4), Orientation::WEST);
    let calls = [
        Isometry::IDENTITY,
        Isometry::new(Orientation::SOUTH, Vector::new(100, -50)),
        Isometry::new(Orientation::MIRROR_Y, Vector::new(-7, 3)),
    ];
    let mut reference: Option<Vec<Interface>> = None;
    for call in calls {
        let mut rsg = Rsg::new();
        let mut cell = CellDefinition::new("t");
        cell.add_box(Layer::Metal2, Rect::from_coords(0, 0, 5, 5));
        let t = rsg.cells_mut().insert(cell).unwrap();
        rsg.declare_primitive_interface(t, t, 1, iface).unwrap();
        let nodes: Vec<_> = (0..5).map(|_| rsg.mk_instance(t)).collect();
        for w in nodes.windows(2) {
            rsg.connect(w[0], w[1], 1).unwrap();
        }
        rsg.mk_cell_at("chain", nodes[0], call).unwrap();
        // The pairwise relations are the isometry-invariant signature.
        let rels: Vec<Interface> = nodes
            .windows(2)
            .map(|w| {
                Interface::between(
                    rsg.node_placement(w[0]).unwrap().isometry(),
                    rsg.node_placement(w[1]).unwrap().isometry(),
                )
            })
            .collect();
        match &reference {
            None => reference = Some(rels),
            Some(r) => assert_eq!(*r, rels, "call {call} changed relative geometry"),
        }
    }
}

/// Interface families (Fig 2.3): two different legal interfaces between
/// the same pair of cells, selected by index.
#[test]
fn interface_families_by_index() {
    let mut rsg = Rsg::new();
    let mut cell = CellDefinition::new("a");
    cell.add_box(Layer::Metal1, Rect::from_coords(0, 0, 6, 6));
    let a = rsg.cells_mut().insert(cell).unwrap();
    let mut cb = CellDefinition::new("b");
    cb.add_box(Layer::Poly, Rect::from_coords(0, 0, 4, 4));
    let b = rsg.cells_mut().insert(cb).unwrap();
    rsg.declare_primitive_interface(
        a,
        b,
        1,
        Interface::new(Vector::new(6, 0), Orientation::WEST),
    )
    .unwrap();
    rsg.declare_primitive_interface(
        a,
        b,
        2,
        Interface::new(Vector::new(0, 6), Orientation::SOUTH),
    )
    .unwrap();

    let na = rsg.mk_instance(a);
    let nb1 = rsg.mk_instance(b);
    let nb2 = rsg.mk_instance(b);
    rsg.connect(na, nb1, 1).unwrap();
    rsg.connect(na, nb2, 2).unwrap();
    rsg.mk_cell("fam", na).unwrap();
    let p1 = rsg.node_placement(nb1).unwrap();
    let p2 = rsg.node_placement(nb2).unwrap();
    assert_eq!(p1.point_of_call, Point::new(6, 0));
    assert_eq!(p1.orientation, Orientation::WEST);
    assert_eq!(p2.point_of_call, Point::new(0, 6));
    assert_eq!(p2.orientation, Orientation::SOUTH);
}
