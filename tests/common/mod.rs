//! Shared pipeline builders for the root integration suites.
//!
//! The golden-layout suite and the examples-DRC suite both reproduce the
//! `examples/*` pipelines; building them here keeps the reproductions in
//! one place so a geometry change cannot leave one suite guarding a
//! stale pipeline. (The examples themselves stay self-contained — they
//! are user-facing walkthroughs.)

use rsg::geom::{Orientation, Point, Rect};
use rsg::layout::{CellDefinition, CellId, CellTable, Instance, Layer};

/// The quickstart pipeline's layout: an 8-tile row generated from a
/// two-instance example pair (mirrors `examples/quickstart.rs`).
pub fn quickstart_layout() -> (CellTable, CellId) {
    let mut sample = CellTable::new();
    let mut tile = CellDefinition::new("tile");
    tile.add_box(Layer::Well, Rect::from_coords(0, 0, 12, 12));
    tile.add_box(Layer::Metal1, Rect::from_coords(3, 3, 9, 9));
    let tile_id = sample.insert(tile).unwrap();
    let mut pair = CellDefinition::new("example_pair");
    pair.add_instance(Instance::new(tile_id, Point::new(0, 0), Orientation::NORTH));
    pair.add_instance(Instance::new(
        tile_id,
        Point::new(12, 0),
        Orientation::NORTH,
    ));
    pair.add_label("1", Point::new(12, 6));
    sample.insert(pair).unwrap();

    let mut rsg = rsg::core::Rsg::from_sample(sample).unwrap();
    let tile_cell = rsg.cells().lookup("tile").unwrap();
    let nodes: Vec<_> = (0..8).map(|_| rsg.mk_instance(tile_cell)).collect();
    for w in nodes.windows(2) {
        rsg.connect(w[0], w[1], 1).unwrap();
    }
    let row = rsg.mk_cell("row8", nodes[0]).unwrap();
    (rsg.cells().clone(), row)
}

/// The library cell `examples/leaf_compaction.rs` compacts (same boxes,
/// including the `Contact` pseudo-layer).
#[allow(dead_code)] // each test crate compiles its own copy of this module
pub fn leaf_compaction_cell() -> CellDefinition {
    let mut c = CellDefinition::new("cell");
    c.add_box(Layer::Poly, Rect::from_coords(4, 0, 10, 40));
    c.add_box(Layer::Diffusion, Rect::from_coords(12, 10, 24, 18));
    c.add_box(Layer::Metal1, Rect::from_coords(20, 4, 32, 36));
    c.add_box(Layer::Poly, Rect::from_coords(40, 0, 46, 40));
    c.add_box(Layer::Contact, Rect::from_coords(22, 14, 30, 26));
    c
}

/// The interfaces `examples/leaf_compaction.rs` compacts under: the
/// variable horizontal pitch plus the fixed vertical abutment.
#[allow(dead_code)]
pub fn leaf_compaction_interfaces(weight_h: i64) -> Vec<rsg::compact::leaf::LeafInterface> {
    use rsg::compact::leaf::{LeafInterface, PitchKind};
    vec![
        LeafInterface {
            cell_a: 0,
            cell_b: 0,
            kind: PitchKind::VariableX {
                initial: 56,
                weight: weight_h,
            },
            y_offset: 0,
            name: "horizontal".into(),
        },
        LeafInterface {
            cell_a: 0,
            cell_b: 0,
            kind: PitchKind::FixedX(0),
            y_offset: 44,
            name: "vertical".into(),
        },
    ]
}

/// The full-adder PLA the examples build (`examples/pla_and_decoder.rs`,
/// `examples/chip_compaction.rs`).
pub fn full_adder_pla() -> rsg::hpla::GeneratedPla {
    let personality = rsg::hpla::Personality::parse(
        &[
            "100 10", "010 10", "001 10", "111 10", "11- 01", "1-1 01", "-11 01",
        ],
        3,
        2,
    )
    .unwrap();
    rsg::hpla::rsg_pla(&personality, "fa_pla").unwrap()
}
