//! The DRC-clean invariant over every example pipeline.
//!
//! Paper §2.3: "each cell can be made design rule correct", so every
//! layout the generators assemble — and everything the compactors emit —
//! must re-check clean under the independent sweep referee. Each test
//! below reproduces the *final layout* of one `examples/*` pipeline and
//! asserts `drc::check_flat` finds nothing. (The examples print their
//! violation counts; this suite is the non-optional gate.)

mod common;

use common::{full_adder_pla, quickstart_layout};
use rsg::compact::backend::BellmanFord;
use rsg::compact::leaf::{compact, Parallelism};
use rsg::geom::{Rect, Vector};
use rsg::layout::{drc, CellId, CellTable, Layer, Technology};

fn assert_clean(table: &CellTable, top: CellId, what: &str) {
    let tech = Technology::mead_conway(2);
    let flat = rsg::layout::flatten(table, top).unwrap();
    let violations = drc::check_flat(&flat, &tech.rules);
    assert!(
        violations.is_empty(),
        "{what}: {} violations, e.g. {:?}",
        violations.len(),
        violations.first()
    );
}

/// `examples/quickstart.rs`: the 8-tile row built from the example pair.
#[test]
fn quickstart_row_is_clean() {
    let (table, row) = quickstart_layout();
    assert_clean(&table, row, "quickstart row8");
}

/// `examples/pla_and_decoder.rs`: the full-adder PLA (both generators)
/// and the 3-to-8 decoder.
#[test]
fn pla_and_decoder_are_clean() {
    let pla = full_adder_pla();
    assert_clean(pla.rsg.cells(), pla.top, "RSG full-adder PLA");

    let personality = rsg::hpla::Personality::parse(
        &[
            "100 10", "010 10", "001 10", "111 10", "11- 01", "1-1 01", "-11 01",
        ],
        3,
        2,
    )
    .unwrap();
    let (table, top) = rsg::hpla::relocation_pla(&personality, "fa_pla_relo").unwrap();
    assert_clean(&table, top, "relocation full-adder PLA");

    let dec = rsg::hpla::rsg_decoder(3, "dec3").unwrap();
    assert_clean(dec.rsg.cells(), dec.top, "3-to-8 decoder");
}

/// `examples/design_file.rs`: the interpreter-built multiplier.
#[test]
fn design_file_multiplier_is_clean() {
    let run = rsg::lang::run_design(
        rsg::mult::cells::sample_layout().unwrap(),
        rsg::mult::design_file_source(),
        &rsg::mult::parameter_file_source(6, 6),
    )
    .unwrap();
    let top = run.rsg.cells().lookup("thewholething").unwrap();
    assert_clean(run.rsg.cells(), top, "design-file 6x6 multiplier");
}

/// `examples/pipelined_multiplier.rs` / `examples/phase_breakdown.rs`:
/// the native-API multiplier at the sizes the examples use.
#[test]
fn generated_multipliers_are_clean() {
    for n in [4usize, 6, 8] {
        let out = rsg::mult::generator::generate(n, n).unwrap();
        assert_clean(out.rsg.cells(), out.top, &format!("{n}x{n} multiplier"));
    }
}

/// `examples/leaf_compaction.rs`: the example's exact cell (Contact box
/// included) compacted under both its interfaces, then re-tiled at the
/// solved horizontal pitch *and* the fixed vertical abutment.
#[test]
fn leaf_compaction_retile_is_clean() {
    let tech = Technology::mead_conway(2);
    let out = compact(
        &[common::leaf_compaction_cell()],
        &common::leaf_compaction_interfaces(64),
        &tech.rules,
        &BellmanFord::SORTED,
    )
    .unwrap();
    let pitch = out.pitches[0].1;
    let mut flat: Vec<(Layer, Rect)> = Vec::new();
    for row in 0..3i64 {
        for k in 0..4i64 {
            for (l, r) in out.cells[0].boxes() {
                flat.push((l, r.translate(Vector::new(k * pitch, row * 44))));
            }
        }
    }
    let violations = drc::check(&flat, &tech.rules);
    assert!(violations.is_empty(), "retiled library: {violations:?}");
}

/// `examples/chip_compaction.rs`: the hier-compacted PLA and multiplier.
#[test]
fn chip_compaction_outputs_are_clean() {
    let tech = Technology::mead_conway(2);
    let pla = full_adder_pla();
    let out = rsg::hpla::compactor::compact_chip(
        pla.rsg.cells(),
        pla.top,
        &tech.rules,
        &BellmanFord::SORTED,
        Parallelism::Auto,
    )
    .unwrap();
    assert_clean(&out.chip.table, out.chip.top, "compacted full-adder PLA");

    let mult = rsg::mult::generator::generate(6, 6).unwrap();
    let out = rsg::mult::compactor::compact_chip(
        mult.rsg.cells(),
        mult.top,
        &tech.rules,
        &BellmanFord::SORTED,
        Parallelism::Auto,
    )
    .unwrap();
    assert_clean(&out.chip.table, out.chip.top, "compacted 6x6 multiplier");
}
