//! Experiments E11/E13/E14 end to end: leaf-compact a library, re-tile it
//! at the solved pitches, and let the independent DRC referee confirm the
//! result; compare unknown counts against flat compaction.

use rsg::compact::backend::BellmanFord;
use rsg::compact::leaf::{compact, LeafInterface, PitchKind};
use rsg::compact::scanline::{generate as gen_constraints, Method};
use rsg::compact::solver::{solve, solve_balanced, EdgeOrder};
use rsg::geom::{Axis, Rect, Vector};
use rsg::layout::{drc, CellDefinition, Layer, Technology};

fn library_cell() -> CellDefinition {
    let mut c = CellDefinition::new("cell");
    c.add_box(Layer::Poly, Rect::from_coords(4, 0, 10, 40));
    c.add_box(Layer::Metal1, Rect::from_coords(20, 4, 32, 36));
    c.add_box(Layer::Poly, Rect::from_coords(44, 0, 50, 40));
    c
}

fn h_interface(initial: i64) -> LeafInterface {
    LeafInterface {
        cell_a: 0,
        cell_b: 0,
        kind: PitchKind::VariableX { initial, weight: 8 },
        y_offset: 0,
        name: "h".into(),
    }
}

#[test]
fn compacted_library_tiles_drc_clean() {
    let tech = Technology::mead_conway(2);
    let out = compact(
        &[library_cell()],
        &[h_interface(60)],
        &tech.rules,
        &BellmanFord::SORTED,
    )
    .unwrap();
    let pitch = out.pitches[0].1;
    assert!(
        pitch < 60,
        "compaction should shrink the sample pitch, got {pitch}"
    );

    // Re-tile 4 instances at the solved pitch; the independent DRC
    // referee (which shares no code with the constraint generator's
    // solver) must find nothing.
    let mut flat = Vec::new();
    for k in 0..4i64 {
        for (l, r) in out.cells[0].boxes() {
            flat.push((l, r.translate(Vector::new(k * pitch, 0))));
        }
    }
    let violations = drc::check(&flat, &tech.rules);
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn one_step_tighter_pitch_fails_drc() {
    // The solved pitch is *minimal*: tiling one unit tighter violates.
    let tech = Technology::mead_conway(2);
    let out = compact(
        &[library_cell()],
        &[h_interface(60)],
        &tech.rules,
        &BellmanFord::SORTED,
    )
    .unwrap();
    let pitch = out.pitches[0].1 - 1;
    let mut flat = Vec::new();
    for k in 0..2i64 {
        for (l, r) in out.cells[0].boxes() {
            flat.push((l, r.translate(Vector::new(k * pitch, 0))));
        }
    }
    assert!(!drc::check(&flat, &tech.rules).is_empty());
}

#[test]
fn unknown_count_constant_vs_quadratic() {
    // E11/E13: leaf unknowns are independent of the replication factor;
    // flat unknowns grow with n².
    let tech = Technology::mead_conway(2);
    let leaf = compact(
        &[library_cell()],
        &[h_interface(60)],
        &tech.rules,
        &BellmanFord::SORTED,
    )
    .unwrap();
    let boxes_per_cell = library_cell().boxes().count();
    assert_eq!(leaf.unknowns, 2 * boxes_per_cell + 1);

    let mut flat_unknowns = Vec::new();
    for n in [2usize, 4] {
        let mut flat = Vec::new();
        for k in 0..n as i64 {
            for (l, r) in library_cell().boxes() {
                flat.push((l, r.translate(Vector::new(k * 60, 0))));
            }
        }
        let (sys, _) = gen_constraints(&flat, &tech.rules, Method::Visibility, Axis::X);
        flat_unknowns.push(sys.num_vars());
    }
    assert_eq!(
        flat_unknowns,
        vec![2 * boxes_per_cell * 2, 2 * boxes_per_cell * 4]
    );
    assert!(leaf.unknowns < flat_unknowns[0]);
}

#[test]
fn technology_retarget_scales_the_pitch() {
    // The same library compacted under λ = 1 and λ = 3 rules: the pitch
    // tracks the rule scale — "technology transportable".
    let fine = compact(
        &[library_cell()],
        &[h_interface(60)],
        &Technology::mead_conway(1).rules,
        &BellmanFord::SORTED,
    )
    .unwrap();
    let coarse = compact(
        &[library_cell()],
        &[h_interface(60)],
        &Technology::mead_conway(3).rules,
        &BellmanFord::SORTED,
    )
    .unwrap();
    assert!(fine.pitches[0].1 < coarse.pitches[0].1);
}

#[test]
fn flat_compaction_of_generated_multiplier_metal() {
    // Cross-stack smoke: flatten the generated 8×8 multiplier, compact
    // its metal1 in x, verify feasibility and the no-violation property.
    let out = rsg::mult::generator::generate(8, 8).unwrap();
    let flat = rsg::layout::flatten(out.rsg.cells(), out.top).unwrap();
    let boxes: Vec<(Layer, Rect)> = flat
        .layer_rects()
        .iter()
        .filter(|(l, _)| *l == Layer::Metal1)
        .copied()
        .collect();
    assert!(!boxes.is_empty());
    let tech = Technology::mead_conway(2);
    let (sys, _) = gen_constraints(&boxes, &tech.rules, Method::Visibility, Axis::X);
    let left = solve(&sys, EdgeOrder::Sorted).unwrap();
    let balanced = solve_balanced(&sys).unwrap();
    assert!(sys.violations(&left.positions_vec(), &[]).is_empty());
    assert!(sys.violations(&balanced.positions_vec(), &[]).is_empty());
    // Balanced never widens the layout.
    assert!(balanced.extent() >= left.extent());
}

#[test]
fn flat_layout_feeds_the_leaf_compactor() {
    // The FlatLayout → leaf::compact bridge: flatten a two-instance
    // assembly, package the flat boxes as one leaf cell, compact it
    // under a self-interface, and referee the re-tiled result with the
    // index-backed sweep DRC.
    let tech = Technology::mead_conway(2);
    let mut table = rsg::layout::CellTable::new();
    let tile = table.insert(library_cell()).unwrap();
    let mut top = CellDefinition::new("top");
    for k in 0..2 {
        top.add_instance(rsg::layout::Instance::new(
            tile,
            rsg::geom::Point::new(k * 60, 0),
            rsg::geom::Orientation::NORTH,
        ));
    }
    let top_id = table.insert(top).unwrap();
    let flat = rsg::layout::flatten(&table, top_id).unwrap();
    assert!(drc::check_flat(&flat, &tech.rules).is_empty());

    let out = compact(
        &[flat.to_cell("flat")],
        &[h_interface(120)],
        &tech.rules,
        &BellmanFord::SORTED,
    )
    .unwrap();
    let pitch = out.pitches[0].1;
    assert!(pitch < 120, "flattened pair should compact, got {pitch}");
    let mut retiled = Vec::new();
    for k in 0..3i64 {
        for (l, r) in out.cells[0].boxes() {
            retiled.push((l, r.translate(Vector::new(k * pitch, 0))));
        }
    }
    assert!(drc::check(&retiled, &tech.rules).is_empty());
}
