//! Experiments E11/E13/E14 end to end: leaf-compact a library, re-tile it
//! at the solved pitches, and let the independent DRC referee confirm the
//! result; compare unknown counts against flat compaction.

use rsg::compact::backend::BellmanFord;
use rsg::compact::leaf::{compact, LeafInterface, PitchKind};
use rsg::compact::scanline::{generate as gen_constraints, Method};
use rsg::compact::solver::{solve, solve_balanced, EdgeOrder};
use rsg::geom::{Axis, Rect, Vector};
use rsg::layout::{drc, CellDefinition, Layer, Technology};

fn library_cell() -> CellDefinition {
    let mut c = CellDefinition::new("cell");
    c.add_box(Layer::Poly, Rect::from_coords(4, 0, 10, 40));
    c.add_box(Layer::Metal1, Rect::from_coords(20, 4, 32, 36));
    c.add_box(Layer::Poly, Rect::from_coords(44, 0, 50, 40));
    c
}

fn h_interface(initial: i64) -> LeafInterface {
    LeafInterface {
        cell_a: 0,
        cell_b: 0,
        kind: PitchKind::VariableX { initial, weight: 8 },
        y_offset: 0,
        name: "h".into(),
    }
}

#[test]
fn compacted_library_tiles_drc_clean() {
    let tech = Technology::mead_conway(2);
    let out = compact(
        &[library_cell()],
        &[h_interface(60)],
        &tech.rules,
        &BellmanFord::SORTED,
    )
    .unwrap();
    let pitch = out.pitches[0].1;
    assert!(
        pitch < 60,
        "compaction should shrink the sample pitch, got {pitch}"
    );

    // Re-tile 4 instances at the solved pitch; the independent DRC
    // referee (which shares no code with the constraint generator's
    // solver) must find nothing.
    let mut flat = Vec::new();
    for k in 0..4i64 {
        for (l, r) in out.cells[0].boxes() {
            flat.push((l, r.translate(Vector::new(k * pitch, 0))));
        }
    }
    let violations = drc::check(&flat, &tech.rules);
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn one_step_tighter_pitch_fails_drc() {
    // The solved pitch is *minimal*: tiling one unit tighter violates.
    let tech = Technology::mead_conway(2);
    let out = compact(
        &[library_cell()],
        &[h_interface(60)],
        &tech.rules,
        &BellmanFord::SORTED,
    )
    .unwrap();
    let pitch = out.pitches[0].1 - 1;
    let mut flat = Vec::new();
    for k in 0..2i64 {
        for (l, r) in out.cells[0].boxes() {
            flat.push((l, r.translate(Vector::new(k * pitch, 0))));
        }
    }
    assert!(!drc::check(&flat, &tech.rules).is_empty());
}

#[test]
fn unknown_count_constant_vs_quadratic() {
    // E11/E13: leaf unknowns are independent of the replication factor;
    // flat unknowns grow with n².
    let tech = Technology::mead_conway(2);
    let leaf = compact(
        &[library_cell()],
        &[h_interface(60)],
        &tech.rules,
        &BellmanFord::SORTED,
    )
    .unwrap();
    let boxes_per_cell = library_cell().boxes().count();
    assert_eq!(leaf.unknowns, 2 * boxes_per_cell + 1);

    let mut flat_unknowns = Vec::new();
    for n in [2usize, 4] {
        let mut flat = Vec::new();
        for k in 0..n as i64 {
            for (l, r) in library_cell().boxes() {
                flat.push((l, r.translate(Vector::new(k * 60, 0))));
            }
        }
        let (sys, _) = gen_constraints(&flat, &tech.rules, Method::Visibility, Axis::X);
        flat_unknowns.push(sys.num_vars());
    }
    assert_eq!(
        flat_unknowns,
        vec![2 * boxes_per_cell * 2, 2 * boxes_per_cell * 4]
    );
    assert!(leaf.unknowns < flat_unknowns[0]);
}

#[test]
fn technology_retarget_scales_the_pitch() {
    // The same library compacted under λ = 1 and λ = 3 rules: the pitch
    // tracks the rule scale — "technology transportable".
    let fine = compact(
        &[library_cell()],
        &[h_interface(60)],
        &Technology::mead_conway(1).rules,
        &BellmanFord::SORTED,
    )
    .unwrap();
    let coarse = compact(
        &[library_cell()],
        &[h_interface(60)],
        &Technology::mead_conway(3).rules,
        &BellmanFord::SORTED,
    )
    .unwrap();
    assert!(fine.pitches[0].1 < coarse.pitches[0].1);
}

#[test]
fn flat_compaction_of_generated_multiplier_metal() {
    // Cross-stack smoke: flatten the generated 8×8 multiplier, compact
    // its metal1 in x, verify feasibility and the no-violation property.
    let out = rsg::mult::generator::generate(8, 8).unwrap();
    let flat = rsg::layout::flatten(out.rsg.cells(), out.top).unwrap();
    let boxes: Vec<(Layer, Rect)> = flat
        .layer_rects()
        .iter()
        .filter(|(l, _)| *l == Layer::Metal1)
        .copied()
        .collect();
    assert!(!boxes.is_empty());
    let tech = Technology::mead_conway(2);
    let (sys, _) = gen_constraints(&boxes, &tech.rules, Method::Visibility, Axis::X);
    let left = solve(&sys, EdgeOrder::Sorted).unwrap();
    let balanced = solve_balanced(&sys).unwrap();
    assert!(sys.violations(left.positions(), &[]).is_empty());
    assert!(sys.violations(balanced.positions(), &[]).is_empty());
    // Balanced never widens the layout.
    assert!(balanced.extent() >= left.extent());
}

#[test]
fn critical_path_explains_the_solved_extent() {
    // A known layout: three poly bars in a row plus an unrelated bar far
    // above. The compacted width is set by the chain
    // bar0.width → spacing → bar1.width → spacing → bar2.width; the
    // reported critical path must be exactly that chain, and its weights
    // must sum to the solved extent.
    let tech = Technology::mead_conway(2);
    let boxes: Vec<(Layer, Rect)> = vec![
        (Layer::Poly, Rect::from_coords(0, 0, 4, 20)),
        (Layer::Poly, Rect::from_coords(20, 0, 24, 20)),
        (Layer::Poly, Rect::from_coords(50, 0, 54, 20)),
        (Layer::Poly, Rect::from_coords(0, 60, 4, 80)), // off the path
    ];
    let (sys, vars) = gen_constraints(&boxes, &tech.rules, Method::Visibility, Axis::X);
    let sol = solve(&sys, EdgeOrder::Sorted).unwrap();
    // Width 4 + spacing 4 + width 4 + spacing 4 + width 4 = 20.
    assert_eq!(sol.extent(), 20);

    // The variable that attains the extent is bar2's right edge; its
    // critical path telescopes to the full extent (the leftmost var of a
    // least solution sits at 0).
    let rightmost = vars[2].right;
    assert_eq!(sol.position(rightmost), sol.extent());
    let chain = sol.critical_path(&sys, rightmost);
    let total: i64 = chain.iter().map(|c| c.weight).sum();
    assert_eq!(total, sol.extent(), "chain weights must sum to the extent");
    // The chain alternates width and spacing constraints: 3 widths (4)
    // and 2 spacings (4) in this layout.
    assert_eq!(chain.len(), 5);
    assert!(chain.iter().all(|c| c.weight == 4), "{chain:?}");
    // Every link is tight: zero slack under the solution.
    let slacks = sys.slacks(sol.positions(), &[]);
    for link in &chain {
        let idx = sys
            .constraints()
            .iter()
            .position(|c| c == link)
            .expect("chain constraints come from the system");
        assert_eq!(slacks[idx], 0, "chain link {link:?} must be tight");
    }
    // The unrelated bar is not on the path.
    let off_path = [vars[3].left, vars[3].right];
    assert!(chain
        .iter()
        .all(|c| !off_path.contains(&c.from) && !off_path.contains(&c.to)));
}

#[test]
fn engine_warm_start_matches_cold_on_the_tiled_array() {
    // E18's correctness half: the warm-started alternating engine
    // produces bit-for-bit the same layout as the cold one and never
    // spends more relaxation passes.
    use rsg::compact::engine::{compact_xy_with, WarmStart};
    let tech = Technology::mead_conway(2);
    let mut boxes = Vec::new();
    for row in 0..4i64 {
        for col in 0..4i64 {
            for (l, r) in library_cell().boxes() {
                boxes.push((l, r.translate(Vector::new(col * 60, row * 44))));
            }
        }
    }
    let cold = compact_xy_with(
        &boxes,
        &tech.rules,
        &BellmanFord::SORTED,
        10,
        WarmStart::Cold,
    )
    .unwrap();
    let warm = compact_xy_with(
        &boxes,
        &tech.rules,
        &BellmanFord::SORTED,
        10,
        WarmStart::Warm,
    )
    .unwrap();
    assert_eq!(cold.boxes, warm.boxes);
    assert_eq!(cold.passes, warm.passes);
    assert!(cold.converged && warm.converged);
    assert!(
        warm.report.total_solver_passes() < cold.report.total_solver_passes(),
        "warm {} vs cold {} total relaxation passes",
        warm.report.total_solver_passes(),
        cold.report.total_solver_passes()
    );
}

#[test]
fn flat_layout_feeds_the_leaf_compactor() {
    // The FlatLayout → leaf::compact bridge: flatten a two-instance
    // assembly, package the flat boxes as one leaf cell, compact it
    // under a self-interface, and referee the re-tiled result with the
    // index-backed sweep DRC.
    let tech = Technology::mead_conway(2);
    let mut table = rsg::layout::CellTable::new();
    let tile = table.insert(library_cell()).unwrap();
    let mut top = CellDefinition::new("top");
    for k in 0..2 {
        top.add_instance(rsg::layout::Instance::new(
            tile,
            rsg::geom::Point::new(k * 60, 0),
            rsg::geom::Orientation::NORTH,
        ));
    }
    let top_id = table.insert(top).unwrap();
    let flat = rsg::layout::flatten(&table, top_id).unwrap();
    assert!(drc::check_flat(&flat, &tech.rules).is_empty());

    let out = compact(
        &[flat.to_cell("flat")],
        &[h_interface(120)],
        &tech.rules,
        &BellmanFord::SORTED,
    )
    .unwrap();
    let pitch = out.pitches[0].1;
    assert!(pitch < 120, "flattened pair should compact, got {pitch}");
    let mut retiled = Vec::new();
    for k in 0..3i64 {
        for (l, r) in out.cells[0].boxes() {
            retiled.push((l, r.translate(Vector::new(k * pitch, 0))));
        }
    }
    assert!(drc::check(&retiled, &tech.rules).is_empty());
}
