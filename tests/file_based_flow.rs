//! The complete file-based Fig 1.1 flow: sample layout as a `.rsgl`
//! *file*, design file text, parameter file text — nothing passed as
//! in-memory structures between the stages.

use rsg::layout::{read_rsgl, write_rsgl};
use rsg::mult::{cells, design_file_source, parameter_file_source};

#[test]
fn everything_through_text_files() {
    let dir = std::env::temp_dir().join("rsg_flow_test");
    std::fs::create_dir_all(&dir).unwrap();

    // 1. The layout file: serialize the sample library with a wrapper top
    //    cell that instantiates every sample assembly (so one rsgl file
    //    carries the whole library).
    let mut table = cells::sample_layout().unwrap();
    let mut wrapper = rsg::layout::CellDefinition::new("samplefile");
    let mut x = 0i64;
    let sample_cells: Vec<_> = table
        .iter()
        .filter(|(_, def)| def.name().starts_with("s_"))
        .map(|(id, _)| id)
        .collect();
    for id in sample_cells {
        wrapper.add_instance(rsg::layout::Instance::new(
            id,
            rsg::geom::Point::new(x, 500),
            rsg::geom::Orientation::NORTH,
        ));
        x += 200;
    }
    let wrapper_id = table.insert(wrapper).unwrap();
    let layout_path = dir.join("multiplier.rsgl");
    std::fs::write(&layout_path, write_rsgl(&table, wrapper_id).unwrap()).unwrap();

    // 2. The design and parameter files.
    let design_path = dir.join("mult.def");
    std::fs::write(&design_path, design_file_source()).unwrap();
    let param_path = dir.join("mult.par");
    std::fs::write(&param_path, parameter_file_source(4, 4)).unwrap();

    // 3. Read everything back from disk and run.
    let layout_text = std::fs::read_to_string(&layout_path).unwrap();
    let (sample, _) = read_rsgl(&layout_text).unwrap();
    let design_text = std::fs::read_to_string(&design_path).unwrap();
    let param_text = std::fs::read_to_string(&param_path).unwrap();
    let run = rsg::lang::run_design(sample, &design_text, &param_text).unwrap();

    // 4. The output file.
    let top = run.rsg.cells().lookup("thewholething").unwrap();
    let out_path = dir.join("mult.cif");
    std::fs::write(
        &out_path,
        rsg::layout::write_cif(run.rsg.cells(), top).unwrap(),
    )
    .unwrap();

    // Verify against the in-memory native path.
    let native = rsg::mult::generator::generate(4, 4).unwrap();
    let s_file = rsg::layout::stats::LayoutStats::compute(run.rsg.cells(), top).unwrap();
    let s_native =
        rsg::layout::stats::LayoutStats::compute(native.rsg.cells(), native.top).unwrap();
    assert_eq!(s_file.total_boxes, s_native.total_boxes);
    assert_eq!(s_file.bbox, s_native.bbox);
    assert!(std::fs::metadata(&out_path).unwrap().len() > 500);

    std::fs::remove_dir_all(&dir).ok();
}
