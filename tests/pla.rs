//! Experiment E10 across the stack: RSG-vs-relocation equivalence, the
//! decoder from shared cells, and a PLA design file running through the
//! interpreter.

use rsg::hpla::{cells, relocation_pla, rsg_decoder, rsg_pla, Personality};
use rsg::layout::stats::LayoutStats;

#[test]
fn rsg_matches_relocation_at_scale() {
    // 6 in / 10 products / 4 out.
    let rows: Vec<String> = (0..10)
        .map(|p| {
            let cube: String = (0..6).map(|i| ['1', '0', '-'][(p + i) % 3]).collect();
            let outs: String = (0..4)
                .map(|o| if (p * 3 + o) % 2 == 0 { '1' } else { '0' })
                .collect();
            format!("{cube} {outs}")
        })
        .collect();
    let refs: Vec<&str> = rows.iter().map(String::as_str).collect();
    let p = Personality::parse(&refs, 6, 4).unwrap();

    let a = rsg_pla(&p, "pla").unwrap();
    let (bt, bid) = relocation_pla(&p, "relo").unwrap();
    let sa = LayoutStats::compute(a.rsg.cells(), a.top).unwrap();
    let sb = LayoutStats::compute(&bt, bid).unwrap();
    assert_eq!(sa.total_boxes, sb.total_boxes);
    assert_eq!(sa.bbox, sb.bbox);
    assert_eq!(sa.boxes_per_layer, sb.boxes_per_layer);
}

#[test]
fn decoder_and_pla_share_every_leaf_cell() {
    let p = Personality::parse(&["10 1", "01 1"], 2, 1).unwrap();
    let pla = rsg_pla(&p, "pla").unwrap();
    let dec = rsg_decoder(2, "dec").unwrap();
    // Both generators resolve their cells from the same sample.
    for name in ["and_sq", "xand", "xcomp", "out_buf"] {
        assert!(pla.rsg.cells().lookup(name).is_some());
        assert!(dec.rsg.cells().lookup(name).is_some());
    }
}

#[test]
fn pla_design_file_through_the_interpreter() {
    // A 2-input / 2-product / 1-output PLA written directly in the design
    // file language over the PLA sample cells — the same mechanism that
    // builds the multiplier builds PLAs (§1.2.2: one framework).
    let design = r#"
      (macro mrow (ni no xm1 xm2)
        (locals first prev cur m)
        (mk_instance first andcell)
        (cond ((= xm1 1) (connect first (mk_instance m xtrue) 1))
              (true (connect first (mk_instance m xfalse) 1)))
        (setq prev first)
        (do (i 2 (+ i 1) (> i ni))
          (mk_instance cur andcell)
          (connect prev cur 1)
          (cond ((= xm2 1) (connect cur (mk_instance m xtrue) 1))
                (true (connect cur (mk_instance m xfalse) 1)))
          (setq prev cur))
        (do (o 1 (+ o 1) (> o no))
          (mk_instance cur orcell)
          (connect prev cur 1)
          (connect cur (mk_instance m xor_mask) 1)
          (setq prev cur)))

      (setq r1 (mrow 2 1 1 0))
      (setq r2 (mrow 2 1 0 1))
      (connect (subcell r1 first) (subcell r2 first) 2)
      (mk_cell "xor_pla" (subcell r1 first))
    "#;
    let params = "andcell=and_sq\norcell=or_sq\nxtrue=xand\nxfalse=xcomp\nxor_mask=xorm\n";
    let run = rsg::lang::run_design(cells::sample_layout().unwrap(), design, params).unwrap();
    let top = run.rsg.cells().lookup("xor_pla").unwrap();
    let def = run.rsg.cells().require(top).unwrap();
    // 2 rows × (2 AND + 2 masks + 1 OR + 1 or-mask) = 12 instances.
    assert_eq!(def.instances().count(), 12);
    let stats = LayoutStats::compute(run.rsg.cells(), top).unwrap();
    assert_eq!(stats.max_depth, 1);
}

#[test]
fn personality_functions_match_generated_crosspoints() {
    let p = Personality::parse(&["1-0 10", "011 01"], 3, 2).unwrap();
    let out = rsg_pla(&p, "pla").unwrap();
    let def = out.rsg.cells().require(out.top).unwrap();
    let count = |name: &str| {
        let id = out.rsg.cells().lookup(name).unwrap();
        def.instances().filter(|i| i.cell == id).count()
    };
    let (and_x, or_x) = p.crosspoint_counts();
    assert_eq!(count("xand") + count("xcomp"), and_x);
    assert_eq!(count("xorm"), or_x);
}
