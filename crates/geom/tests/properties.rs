//! Property-based tests for the geometric substrate (experiment E3/E4 support).

use proptest::prelude::*;
use rsg_geom::{BoundingBox, Isometry, Orientation, Point, Rect, Vector};

fn arb_orientation() -> impl Strategy<Value = Orientation> {
    (0usize..8).prop_map(|i| Orientation::ALL[i])
}

fn arb_vector() -> impl Strategy<Value = Vector> {
    (-1000i64..1000, -1000i64..1000).prop_map(|(x, y)| Vector::new(x, y))
}

fn arb_point() -> impl Strategy<Value = Point> {
    (-1000i64..1000, -1000i64..1000).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_isometry() -> impl Strategy<Value = Isometry> {
    (arb_orientation(), arb_vector()).prop_map(|(o, t)| Isometry::new(o, t))
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (arb_point(), 0i64..200, 0i64..200).prop_map(|(p, w, h)| Rect::from_origin_size(p, w, h))
}

proptest! {
    /// Orientations act linearly: O(v + w) = O(v) + O(w), O(kv) = kO(v).
    #[test]
    fn orientation_linearity(o in arb_orientation(), v in arb_vector(), w in arb_vector(), k in -10i64..10) {
        prop_assert_eq!(o.apply_vector(v + w), o.apply_vector(v) + o.apply_vector(w));
        prop_assert_eq!(o.apply_vector(v * k), o.apply_vector(v) * k);
    }

    /// Orientations preserve lengths (they are isometries).
    #[test]
    fn orientation_preserves_norm(o in arb_orientation(), v in arb_vector()) {
        prop_assert_eq!(o.apply_vector(v).norm_sq(), v.norm_sq());
    }

    /// The ℤ₄×𝔹 composition is a homomorphism onto the matrix group —
    /// the correctness claim behind paper §2.6.
    #[test]
    fn composition_homomorphism(a in arb_orientation(), b in arb_orientation(), v in arb_vector()) {
        prop_assert_eq!(a.compose(b).apply_vector(v), a.apply_vector(b.apply_vector(v)));
        // Matrix product agrees with symbolic composition.
        let (ma, mb, mc) = (a.matrix(), b.matrix(), a.compose(b).matrix());
        for r in 0..2 {
            for c in 0..2 {
                let prod = ma[r][0] * mb[0][c] + ma[r][1] * mb[1][c];
                prop_assert_eq!(prod, mc[r][c]);
            }
        }
    }

    /// Inversion is exact on both representation and action.
    #[test]
    fn orientation_inverse(o in arb_orientation(), v in arb_vector()) {
        prop_assert_eq!(o.inverse().apply_vector(o.apply_vector(v)), v);
        prop_assert_eq!(o.compose(o.inverse()), Orientation::NORTH);
    }

    /// Isometry composition/inversion agree with pointwise application.
    #[test]
    fn isometry_algebra(a in arb_isometry(), b in arb_isometry(), p in arb_point()) {
        prop_assert_eq!(a.compose(b).apply_point(p), a.apply_point(b.apply_point(p)));
        prop_assert_eq!(a.inverse().apply_point(a.apply_point(p)), p);
        prop_assert_eq!(a.compose(a.inverse()), Isometry::IDENTITY);
    }

    /// Rect transforms commute with containment and preserve area.
    #[test]
    fn rect_transform_invariants(r in arb_rect(), iso in arb_isometry(), p in arb_point()) {
        let t = r.transform(iso);
        prop_assert_eq!(t.area(), r.area());
        prop_assert_eq!(t.contains(iso.apply_point(p)), r.contains(p));
    }

    /// Union is the join: both inputs are contained, and it is the smallest
    /// such rect in area terms when inputs share a corner ordering.
    #[test]
    fn rect_union_contains_inputs(a in arb_rect(), b in arb_rect()) {
        let u = a.union(b);
        prop_assert!(u.contains_rect(a));
        prop_assert!(u.contains_rect(b));
    }

    /// Intersection, when present, is contained in both inputs.
    #[test]
    fn rect_intersection_contained(a in arb_rect(), b in arb_rect()) {
        if let Some(i) = a.intersect(b) {
            prop_assert!(a.contains_rect(i));
            prop_assert!(b.contains_rect(i));
        } else {
            prop_assert!(!a.overlaps(b));
        }
    }

    /// Bounding boxes contain everything folded into them.
    #[test]
    fn bbox_contains_all(rects in proptest::collection::vec(arb_rect(), 1..20)) {
        let bb: BoundingBox = rects.iter().copied().collect();
        let outer = bb.rect().unwrap();
        for r in rects {
            prop_assert!(outer.contains_rect(r));
        }
    }

    /// Transforming a rect by an orientation then its inverse round-trips.
    #[test]
    fn rect_orientation_round_trip(r in arb_rect(), o in arb_orientation()) {
        prop_assert_eq!(r.transform_orientation(o).transform_orientation(o.inverse()), r);
    }
}
