//! Bounding-box accumulation over collections of geometry.

use crate::{Axis, Point, Rect};

/// An accumulating, possibly-empty bounding box.
///
/// The RSG computes cell extents by folding every object's rectangle into a
/// `BoundingBox`; an empty cell yields an empty box (`rect()` is `None`).
///
/// # Example
///
/// ```
/// use rsg_geom::{BoundingBox, Point, Rect};
///
/// let bb: BoundingBox = [Rect::from_coords(0, 0, 2, 2), Rect::from_coords(5, -1, 6, 1)]
///     .into_iter()
///     .collect();
/// assert_eq!(bb.rect(), Some(Rect::from_coords(0, -1, 6, 2)));
/// # let _ = Point::ORIGIN;
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct BoundingBox {
    rect: Option<Rect>,
}

impl BoundingBox {
    /// Creates an empty bounding box.
    #[inline]
    pub const fn new() -> BoundingBox {
        BoundingBox { rect: None }
    }

    /// `true` if nothing has been included yet.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.rect.is_none()
    }

    /// The accumulated rectangle, or `None` when empty.
    #[inline]
    pub const fn rect(self) -> Option<Rect> {
        self.rect
    }

    /// Expands the box to include a rectangle.
    #[inline]
    pub fn include_rect(&mut self, r: Rect) {
        self.rect = Some(match self.rect {
            Some(cur) => cur.union(r),
            None => r,
        });
    }

    /// Expands the box to include a single point.
    #[inline]
    pub fn include_point(&mut self, p: Point) {
        self.include_rect(Rect::new(p, p));
    }

    /// Merges another bounding box into this one.
    #[inline]
    pub fn include(&mut self, other: BoundingBox) {
        if let Some(r) = other.rect {
            self.include_rect(r);
        }
    }

    /// Width of the accumulated box (0 when empty).
    #[inline]
    pub fn width(self) -> i64 {
        self.rect.map_or(0, Rect::width)
    }

    /// Height of the accumulated box (0 when empty).
    #[inline]
    pub fn height(self) -> i64 {
        self.rect.map_or(0, Rect::height)
    }

    /// Extent along an axis: [`BoundingBox::width`] for [`Axis::X`],
    /// [`BoundingBox::height`] for [`Axis::Y`] (0 when empty).
    #[inline]
    pub fn extent_along(self, axis: Axis) -> i64 {
        self.rect.map_or(0, |r| r.extent_along(axis))
    }
}

impl FromIterator<Rect> for BoundingBox {
    fn from_iter<I: IntoIterator<Item = Rect>>(iter: I) -> BoundingBox {
        let mut bb = BoundingBox::new();
        for r in iter {
            bb.include_rect(r);
        }
        bb
    }
}

impl Extend<Rect> for BoundingBox {
    fn extend<I: IntoIterator<Item = Rect>>(&mut self, iter: I) {
        for r in iter {
            self.include_rect(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_box() {
        let bb = BoundingBox::new();
        assert!(bb.is_empty());
        assert_eq!(bb.rect(), None);
        assert_eq!(bb.width(), 0);
        assert_eq!(bb.height(), 0);
    }

    #[test]
    fn accumulates_rects_and_points() {
        let mut bb = BoundingBox::new();
        bb.include_rect(Rect::from_coords(0, 0, 1, 1));
        bb.include_point(Point::new(-5, 3));
        assert_eq!(bb.rect(), Some(Rect::from_coords(-5, 0, 1, 3)));
        assert_eq!(bb.width(), 6);
        assert_eq!(bb.height(), 3);
    }

    #[test]
    fn merge_boxes() {
        let a: BoundingBox = [Rect::from_coords(0, 0, 1, 1)].into_iter().collect();
        let b: BoundingBox = [Rect::from_coords(10, 10, 11, 12)].into_iter().collect();
        let mut c = a;
        c.include(b);
        assert_eq!(c.rect(), Some(Rect::from_coords(0, 0, 11, 12)));
        let mut d = BoundingBox::new();
        d.include(a);
        assert_eq!(d, a);
    }

    #[test]
    fn extend_trait() {
        let mut bb = BoundingBox::new();
        bb.extend([
            Rect::from_coords(0, 0, 2, 2),
            Rect::from_coords(-1, -1, 0, 0),
        ]);
        assert_eq!(bb.rect(), Some(Rect::from_coords(-1, -1, 2, 2)));
    }
}
