//! A layer-bucketed, sweep-ordered spatial index over flat geometry.
//!
//! Every flat-geometry consumer in this workspace — the design-rule
//! checker, the visibility scanline of paper §6.4.1, and the leaf
//! compactor's cross-interface constraints — asks the same two questions
//! of the same box soup: *which boxes come near this span along the
//! sweep axis?* and *is this gap completely covered by material?*
//! [`GeomIndex`] answers both from one structure built once in
//! O(n log n): per-label buckets sorted along a chosen [`Axis`], each
//! with a running maximum of high edges so windowed scans terminate as
//! soon as no earlier box can still reach the query window.
//!
//! The index is generic over the label type so this crate stays free of
//! layer definitions; `rsg-layout` instantiates it as `GeomIndex<Layer>`.

use crate::{Axis, Rect};

/// One per-label bucket: item ids sorted by their low edge along the
/// sweep axis, with a prefix maximum of high edges for early exit.
///
/// All four box coordinates are mirrored into dense per-bucket columns
/// (struct-of-arrays) so window scans touch only sequential `i64` data
/// instead of chasing `(label, Rect)` pairs through the item table —
/// at 10⁶ boxes the pointer chase is the scan's dominant cost.
#[derive(Debug, Clone)]
struct Bucket<L> {
    label: L,
    /// Item indices (into [`GeomIndex::items`]) sorted by `lo_along`.
    order: Vec<u32>,
    /// `lo_along` of each entry in sorted order (binary-search key).
    lo: Vec<i64>,
    /// `hi_along` of each entry in sorted order.
    hi: Vec<i64>,
    /// `lo_across` of each entry in sorted order.
    across_lo: Vec<i64>,
    /// `hi_across` of each entry in sorted order.
    across_hi: Vec<i64>,
    /// `prefix_max_hi[k] = max(hi_along of entries 0..=k)`.
    prefix_max_hi: Vec<i64>,
}

impl<L> Bucket<L> {
    fn empty(label: L) -> Bucket<L> {
        Bucket {
            label,
            order: Vec::new(),
            lo: Vec::new(),
            hi: Vec::new(),
            across_lo: Vec::new(),
            across_hi: Vec::new(),
            prefix_max_hi: Vec::new(),
        }
    }
}

/// A sweep-ordered spatial index over labelled rectangles.
///
/// Built once from a flat `(label, rect)` list; all queries are phrased
/// relative to the build [`Axis`] (*along* = the sweep direction,
/// *across* = the frozen perpendicular direction).
///
/// # Example
///
/// ```
/// use rsg_geom::{Axis, GeomIndex, Rect};
///
/// let items = vec![
///     ('a', Rect::from_coords(0, 0, 4, 10)),
///     ('a', Rect::from_coords(20, 0, 24, 10)),
///     ('b', Rect::from_coords(50, 0, 54, 10)),
/// ];
/// let index = GeomIndex::build(&items, Axis::X);
/// // Boxes of label 'a' within distance 18 of the span [22, 23]:
/// let near: Vec<usize> = index.neighbors_within('a', (22, 23), 18).collect();
/// assert_eq!(near, vec![1, 0]); // descending low edge, both in range
/// assert!(index.neighbors_within('b', (22, 23), 18).next().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct GeomIndex<L> {
    axis: Axis,
    items: Vec<(L, Rect)>,
    /// Buckets sorted by label for binary search.
    buckets: Vec<Bucket<L>>,
}

impl<L: Copy + Ord> GeomIndex<L> {
    /// Builds the index from a flat item list along `axis`.
    ///
    /// Items keep their input positions: every query yields indices into
    /// the original slice (also available as [`GeomIndex::items`]).
    pub fn build(items: &[(L, Rect)], axis: Axis) -> GeomIndex<L> {
        GeomIndex::build_from_vec(items.to_vec(), axis)
    }

    /// [`GeomIndex::build`] taking ownership — spares the copy when the
    /// caller's vector would be dropped anyway (as in flattening).
    pub fn build_from_vec(items: Vec<(L, Rect)>, axis: Axis) -> GeomIndex<L> {
        let mut index = GeomIndex {
            axis,
            items: Vec::new(),
            buckets: Vec::new(),
        };
        let _ = index.rebuild_from_vec(items, axis);
        index
    }

    /// Rebuilds this index in place from a fresh item list along `axis`,
    /// recycling the bucket columns (capacity is kept, contents are
    /// replaced). Returns the previous item vector — still holding its
    /// stale contents — so a sweep arena can clear and refill it for the
    /// next rebuild instead of reallocating.
    pub fn rebuild_from_vec(&mut self, items: Vec<(L, Rect)>, axis: Axis) -> Vec<(L, Rect)> {
        self.axis = axis;
        let old = std::mem::replace(&mut self.items, items);
        let items = &self.items;
        let mut shells = std::mem::take(&mut self.buckets);
        for b in &mut shells {
            b.order.clear();
            b.lo.clear();
            b.hi.clear();
            b.across_lo.clear();
            b.across_hi.clear();
            b.prefix_max_hi.clear();
        }
        let mut labels: Vec<L> = items.iter().map(|&(l, _)| l).collect();
        labels.sort_unstable();
        labels.dedup();
        let mut buckets: Vec<Bucket<L>> = labels
            .into_iter()
            .map(|label| match shells.pop() {
                Some(mut shell) => {
                    shell.label = label;
                    shell
                }
                None => Bucket::empty(label),
            })
            .collect();
        for (k, &(label, _)) in items.iter().enumerate() {
            // The bucket list was deduped from these same items, so the
            // search succeeds; the Err arm keeps the loop total (and the
            // bucket list sorted) without a panic path.
            let b = match buckets.binary_search_by(|b| b.label.cmp(&label)) {
                Ok(b) => b,
                Err(i) => {
                    buckets.insert(i, Bucket::empty(label));
                    i
                }
            };
            buckets[b].order.push(k as u32);
        }
        for bucket in &mut buckets {
            bucket
                .order
                .sort_by_key(|&k| (items[k as usize].1.lo_along(axis), k));
            let mut max_hi = i64::MIN;
            for &k in &bucket.order {
                let r = items[k as usize].1;
                bucket.lo.push(r.lo_along(axis));
                bucket.hi.push(r.hi_along(axis));
                bucket.across_lo.push(r.lo_across(axis));
                bucket.across_hi.push(r.hi_across(axis));
                max_hi = max_hi.max(r.hi_along(axis));
                bucket.prefix_max_hi.push(max_hi);
            }
        }
        self.buckets = buckets;
        old
    }

    /// The sweep axis the index was built along.
    pub fn axis(&self) -> Axis {
        self.axis
    }

    /// The indexed items, in their original input order.
    pub fn items(&self) -> &[(L, Rect)] {
        &self.items
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when the index holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The distinct labels present, in ascending order.
    pub fn labels(&self) -> impl Iterator<Item = L> + '_ {
        self.buckets.iter().map(|b| b.label)
    }

    /// The largest low edge along the axis among boxes on `label`
    /// (`None` for absent labels) — the natural cap for coverage
    /// profiles queried against that label's boxes.
    pub fn max_lo(&self, label: L) -> Option<i64> {
        self.bucket(label).and_then(|b| b.lo.last().copied())
    }

    fn bucket(&self, label: L) -> Option<&Bucket<L>> {
        self.buckets
            .binary_search_by(|b| b.label.cmp(&label))
            .ok()
            .map(|k| &self.buckets[k])
    }

    /// Item indices on `label` whose along-axis span lies within distance
    /// `d` of `span` (closed: a box exactly `d` away is included), in
    /// descending low-edge order.
    ///
    /// This is the sweep window query: a binary search finds the last
    /// box starting at or before `span.1 + d`, then the scan walks
    /// backwards and stops as soon as the bucket's prefix maximum proves
    /// no earlier box can still reach `span.0 - d`.
    pub fn neighbors_within(
        &self,
        label: L,
        span: (i64, i64),
        d: i64,
    ) -> impl Iterator<Item = usize> + '_ {
        let (bucket, end) = match self.bucket(label) {
            Some(b) => {
                let end = b.lo.partition_point(|&lo| lo <= span.1 + d);
                (Some(b), end)
            }
            None => (None, 0),
        };
        let min_hi = span.0 - d;
        let mut pos = end;
        std::iter::from_fn(move || {
            let b = bucket?;
            while pos > 0 {
                pos -= 1;
                if b.prefix_max_hi[pos] < min_hi {
                    return None; // nothing earlier can reach the window
                }
                if b.hi[pos] >= min_hi {
                    return Some(b.order[pos] as usize);
                }
            }
            None
        })
    }

    /// Item indices on `label` whose low edge along the axis is at or
    /// past `from` and whose across span strictly overlaps `across`
    /// widened by `slack` on both sides, in ascending low-edge order
    /// (ties by input index).
    ///
    /// This is the constraint generator's candidate walk: for a low box
    /// ending at `from`, every spacing partner on `label` lies in this
    /// sequence, so the generator touches only the bucket's dense
    /// coordinate columns instead of filtering the whole box soup per
    /// pair.
    pub fn ordered_after(
        &self,
        label: L,
        from: i64,
        across: (i64, i64),
        slack: i64,
    ) -> impl Iterator<Item = usize> + '_ {
        let (bucket, start) = match self.bucket(label) {
            Some(b) => (Some(b), b.lo.partition_point(|&lo| lo < from)),
            None => (None, 0),
        };
        let (c0, c1) = (across.0 - slack, across.1 + slack);
        let mut pos = start;
        std::iter::from_fn(move || {
            let b = bucket?;
            while pos < b.order.len() {
                let k = pos;
                pos += 1;
                if b.across_lo[k] < c1 && b.across_hi[k] > c0 {
                    return Some(b.order[k] as usize);
                }
            }
            None
        })
    }

    /// `true` when the region `along × across` is completely covered by
    /// the union of boxes on the given labels, counting only
    /// positive-area contributions. Empty regions are trivially covered.
    ///
    /// This is the hidden-edge condition of paper Fig 6.4 phrased as a
    /// query: the constraint generator asks it for the gap between two
    /// facing edges.
    pub fn interval_coverage(&self, labels: &[L], along: (i64, i64), across: (i64, i64)) -> bool {
        if along.0 >= along.1 || across.0 >= across.1 {
            return true;
        }
        self.coverage_profile(labels, along.0, along.1, across)
            .min_reach(across)
            >= along.1
    }

    /// Builds the coverage reach profile for material on `labels`
    /// starting at along-coordinate `start`, capped at `until`, over the
    /// across-axis window `across`.
    ///
    /// The profile answers, for every across position `y` in the window,
    /// how far contiguous material coverage extends from `start` — the
    /// building block that lets a visibility scan answer *many* gap
    /// queries sharing one left edge from a single O(window) pass
    /// instead of rescanning all boxes per candidate pair.
    pub fn coverage_profile(
        &self,
        labels: &[L],
        start: i64,
        until: i64,
        across: (i64, i64),
    ) -> CoverageProfile {
        // Candidates: boxes on the labels intersecting the along window
        // [start, until] with positive across overlap of the window.
        // The scan reads only the bucket's dense coordinate columns.
        let mut cand: Vec<BoxSpan> = Vec::new();
        let mut seen_labels: Vec<L> = Vec::new();
        for &label in labels {
            if seen_labels.contains(&label) {
                continue; // identical labels would double-count a bucket
            }
            seen_labels.push(label);
            let Some(b) = self.bucket(label) else {
                continue;
            };
            let mut pos = b.lo.partition_point(|&lo| lo <= until);
            while pos > 0 {
                pos -= 1;
                if b.prefix_max_hi[pos] < start {
                    break; // nothing earlier can reach the window
                }
                if b.hi[pos] > start && b.across_lo[pos] < across.1 && b.across_hi[pos] > across.0 {
                    cand.push(BoxSpan {
                        lo: b.lo[pos],
                        hi: b.hi[pos],
                        across_lo: b.across_lo[pos],
                        across_hi: b.across_hi[pos],
                    });
                }
            }
        }
        CoverageProfile::build(start, until, across, &cand)
    }
}

/// A box reduced to its four axis-relative edges — what coverage
/// profiling needs, already resolved against the index's sweep axis.
#[derive(Debug, Clone, Copy)]
struct BoxSpan {
    lo: i64,
    hi: i64,
    across_lo: i64,
    across_hi: i64,
}

/// Piecewise-constant coverage reach over an across-axis window: for
/// each elementary across strip, the furthest along-coordinate `f` such
/// that `[start, f]` is contiguously covered by candidate material at
/// every across position of the strip.
///
/// Produced by [`GeomIndex::coverage_profile`]; queried with
/// [`CoverageProfile::min_reach`].
#[derive(Debug, Clone)]
pub struct CoverageProfile {
    start: i64,
    /// Across-axis strip boundaries spanning the build window
    /// (`cuts.len() == reach.len() + 1`).
    cuts: Vec<i64>,
    /// Coverage reach on the open strip `(cuts[k], cuts[k+1])`.
    reach: Vec<i64>,
}

impl CoverageProfile {
    fn build(start: i64, until: i64, window: (i64, i64), cand: &[BoxSpan]) -> Self {
        let mut cuts: Vec<i64> = cand
            .iter()
            .flat_map(|r| [r.across_lo, r.across_hi])
            .filter(|&c| c > window.0 && c < window.1)
            .collect();
        cuts.push(window.0);
        cuts.push(window.1);
        cuts.sort_unstable();
        cuts.dedup();
        let mut reach = Vec::with_capacity(cuts.len() - 1);
        let mut ivs: Vec<(i64, i64)> = Vec::new();
        for w in cuts.windows(2) {
            let (s0, s1) = (w[0], w[1]);
            // Along intervals of boxes spanning this whole strip, merged
            // contiguously from `start` (capped at `until`: material past
            // the cap cannot change any answer at or below it).
            ivs.clear();
            ivs.extend(
                cand.iter()
                    .filter(|r| r.across_lo <= s0 && r.across_hi >= s1)
                    .map(|r| (r.lo, r.hi)),
            );
            ivs.sort_unstable();
            let mut f = start;
            for &(lo, hi) in ivs.iter() {
                if lo > f {
                    break; // gap: coverage cannot continue
                }
                f = f.max(hi);
                if f >= until {
                    f = until;
                    break;
                }
            }
            reach.push(f);
        }
        CoverageProfile { start, cuts, reach }
    }

    /// The along-coordinate coverage starts from.
    pub fn start(&self) -> i64 {
        self.start
    }

    /// Minimum coverage reach over all strips with positive overlap of
    /// the open across interval `(across.0, across.1)`.
    ///
    /// Returns `i64::MAX` for empty query intervals (no strip to fail).
    pub fn min_reach(&self, across: (i64, i64)) -> i64 {
        if across.0 >= across.1 {
            return i64::MAX;
        }
        let mut min = i64::MAX;
        for (k, w) in self.cuts.windows(2).enumerate() {
            if w[0] >= across.1 {
                break;
            }
            if w[1] > across.0 {
                min = min.min(self.reach[k]);
            }
        }
        // Across positions outside the build window have no material.
        if across.0 < self.cuts[0] || across.1 > self.cuts[self.cuts.len() - 1] {
            min = min.min(self.start);
        }
        min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items() -> Vec<(char, Rect)> {
        vec![
            ('p', Rect::from_coords(0, 0, 4, 10)),
            ('p', Rect::from_coords(4, 0, 20, 10)),
            ('p', Rect::from_coords(20, 0, 24, 10)),
            ('m', Rect::from_coords(6, 20, 10, 40)),
        ]
    }

    #[test]
    fn build_and_basic_queries() {
        let idx = GeomIndex::build(&items(), Axis::X);
        assert_eq!(idx.len(), 4);
        assert!(!idx.is_empty());
        assert_eq!(idx.axis(), Axis::X);
        assert_eq!(idx.labels().collect::<Vec<_>>(), vec!['m', 'p']);
        assert_eq!(idx.items()[3].0, 'm');
    }

    #[test]
    fn neighbors_window_and_early_exit() {
        let idx = GeomIndex::build(&items(), Axis::X);
        // Window [20, 24] at d = 0 touches boxes 1 and 2 (closed).
        let mut near: Vec<usize> = idx.neighbors_within('p', (20, 24), 0).collect();
        near.sort_unstable();
        assert_eq!(near, vec![1, 2]);
        // d = 16 also reaches box 0 (hi = 4 ≥ 20 − 16).
        let mut near: Vec<usize> = idx.neighbors_within('p', (20, 24), 16).collect();
        near.sort_unstable();
        assert_eq!(near, vec![0, 1, 2]);
        // Unknown label: empty.
        assert!(idx.neighbors_within('z', (0, 100), 50).next().is_none());
        // Far window: empty.
        assert!(idx.neighbors_within('p', (200, 210), 3).next().is_none());
    }

    #[test]
    fn neighbors_skip_short_boxes_but_keep_scanning() {
        // A long box starts before a short one; the short one misses the
        // window but the long one (earlier lo, later hi) must be found.
        let items = vec![
            ('p', Rect::from_coords(0, 0, 100, 4)),
            ('p', Rect::from_coords(10, 0, 12, 4)),
        ];
        let idx = GeomIndex::build(&items, Axis::X);
        let near: Vec<usize> = idx.neighbors_within('p', (90, 95), 0).collect();
        assert_eq!(near, vec![0]);
    }

    #[test]
    fn coverage_full_and_gapped() {
        let idx = GeomIndex::build(&items(), Axis::X);
        // The three 'p' boxes tile [0, 24] over y ∈ [0, 10].
        assert!(idx.interval_coverage(&['p'], (4, 20), (0, 10)));
        assert!(idx.interval_coverage(&['p'], (0, 24), (2, 8)));
        // Beyond the tiling: uncovered.
        assert!(!idx.interval_coverage(&['p'], (4, 25), (0, 10)));
        // Across range outside the material: uncovered.
        assert!(!idx.interval_coverage(&['p'], (4, 20), (0, 11)));
        // 'm' material is elsewhere entirely.
        assert!(!idx.interval_coverage(&['m'], (4, 20), (0, 10)));
        // Degenerate regions are trivially covered.
        assert!(idx.interval_coverage(&['p'], (4, 4), (0, 10)));
        assert!(idx.interval_coverage(&['p'], (4, 20), (10, 10)));
    }

    #[test]
    fn coverage_requires_contiguity_from_start() {
        // Material exists further right but a gap at the start breaks
        // contiguous coverage.
        let items = vec![
            ('p', Rect::from_coords(10, 0, 20, 10)), // starts past 4
        ];
        let idx = GeomIndex::build(&items, Axis::X);
        assert!(!idx.interval_coverage(&['p'], (4, 20), (0, 10)));
    }

    #[test]
    fn coverage_combines_labels_and_partial_strips() {
        // Two layers each cover half the across range of the gap.
        let items = vec![
            ('a', Rect::from_coords(10, 0, 20, 5)),
            ('b', Rect::from_coords(10, 5, 20, 10)),
        ];
        let idx = GeomIndex::build(&items, Axis::X);
        assert!(idx.interval_coverage(&['a', 'b'], (10, 20), (0, 10)));
        assert!(!idx.interval_coverage(&['a'], (10, 20), (0, 10)));
        // Duplicate labels do not double-count.
        assert!(idx.interval_coverage(&['a', 'a', 'b'], (10, 20), (0, 10)));
    }

    #[test]
    fn profile_reach_and_min() {
        let idx = GeomIndex::build(&items(), Axis::X);
        let p = idx.coverage_profile(&['p'], 4, 24, (0, 10));
        assert_eq!(p.start(), 4);
        assert_eq!(p.min_reach((0, 10)), 24);
        // Querying outside the build window sees no material.
        assert_eq!(p.min_reach((0, 12)), 4);
        // Empty query interval: vacuous.
        assert_eq!(p.min_reach((5, 5)), i64::MAX);
    }

    #[test]
    fn ordered_after_walks_candidates_in_lo_order() {
        let idx = GeomIndex::build(&items(), Axis::X);
        // Partners of a box ending at x = 4 over y ∈ (0, 10).
        let after: Vec<usize> = idx.ordered_after('p', 4, (0, 10), 0).collect();
        assert_eq!(after, vec![1, 2]);
        // Strict across overlap: the 'm' box sits at y ∈ [20, 40].
        assert!(idx.ordered_after('m', 0, (0, 10), 0).next().is_none());
        // …but a slack window can reach it.
        let near: Vec<usize> = idx.ordered_after('m', 0, (0, 10), 12).collect();
        assert_eq!(near, vec![3]);
        // Unknown label: empty.
        assert!(idx.ordered_after('z', 0, (0, 10), 0).next().is_none());
    }

    #[test]
    fn rebuild_reuses_storage_and_matches_cold_build() {
        let mut idx = GeomIndex::build(&items(), Axis::X);
        let next = vec![
            ('q', Rect::from_coords(0, 0, 5, 5)),
            ('p', Rect::from_coords(10, 0, 15, 5)),
        ];
        let mut old = idx.rebuild_from_vec(next.clone(), Axis::Y);
        assert_eq!(old.len(), 4, "previous items returned for recycling");
        old.clear();
        let cold = GeomIndex::build(&next, Axis::Y);
        assert_eq!(idx.axis(), Axis::Y);
        assert_eq!(idx.items(), cold.items());
        assert_eq!(
            idx.labels().collect::<Vec<_>>(),
            cold.labels().collect::<Vec<_>>()
        );
        for label in ['p', 'q'] {
            let a: Vec<usize> = idx.ordered_after(label, 0, (0, 5), 0).collect();
            let b: Vec<usize> = cold.ordered_after(label, 0, (0, 5), 0).collect();
            assert_eq!(a, b, "{label}");
        }
    }

    #[test]
    fn y_axis_index() {
        let items = vec![
            ('p', Rect::from_coords(0, 0, 10, 4)),
            ('p', Rect::from_coords(0, 4, 10, 20)),
        ];
        let idx = GeomIndex::build(&items, Axis::Y);
        let near: Vec<usize> = idx.neighbors_within('p', (0, 4), 0).collect();
        assert_eq!(near.len(), 2);
        assert!(idx.interval_coverage(&['p'], (0, 20), (2, 8)));
        assert!(!idx.interval_coverage(&['p'], (0, 21), (2, 8)));
    }
}
