//! Axis-aligned rectangles (the "boxes of various layers" of paper §2.1).

use crate::{Axis, Isometry, Orientation, Point, Vector};
use std::fmt;

/// An axis-aligned rectangle with integer corners, normalized so that
/// `lo ≤ hi` componentwise.
///
/// Degenerate rectangles (zero width or height) are permitted — the RSG uses
/// them for label anchors — but most layout boxes have positive area.
///
/// # Example
///
/// ```
/// use rsg_geom::{Orientation, Point, Rect};
///
/// let r = Rect::new(Point::new(0, 0), Point::new(4, 2));
/// assert_eq!(r.width(), 4);
/// assert_eq!(r.transform_orientation(Orientation::EAST).width(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Rect {
    lo: Point,
    hi: Point,
}

impl Rect {
    /// Creates a rectangle from two opposite corners (any order).
    #[inline]
    pub fn new(a: Point, b: Point) -> Rect {
        Rect {
            lo: a.min(b),
            hi: a.max(b),
        }
    }

    /// Creates a rectangle from `(x_lo, y_lo, x_hi, y_hi)` coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `x_lo > x_hi` or `y_lo > y_hi`; use [`Rect::new`] when the
    /// corner order is unknown.
    #[inline]
    pub fn from_coords(x_lo: i64, y_lo: i64, x_hi: i64, y_hi: i64) -> Rect {
        assert!(
            x_lo <= x_hi && y_lo <= y_hi,
            "inverted rect ({x_lo},{y_lo})..({x_hi},{y_hi})"
        );
        Rect {
            lo: Point::new(x_lo, y_lo),
            hi: Point::new(x_hi, y_hi),
        }
    }

    /// A rectangle from its lower-left corner and a (non-negative) size.
    #[inline]
    pub fn from_origin_size(lo: Point, width: i64, height: i64) -> Rect {
        assert!(width >= 0 && height >= 0, "negative size {width}x{height}");
        Rect {
            lo,
            hi: Point::new(lo.x + width, lo.y + height),
        }
    }

    /// Lower-left corner.
    #[inline]
    pub const fn lo(self) -> Point {
        self.lo
    }

    /// Upper-right corner.
    #[inline]
    pub const fn hi(self) -> Point {
        self.hi
    }

    /// Width (`hi.x − lo.x`, always ≥ 0).
    #[inline]
    pub const fn width(self) -> i64 {
        self.hi.x - self.lo.x
    }

    /// Height (`hi.y − lo.y`, always ≥ 0).
    #[inline]
    pub const fn height(self) -> i64 {
        self.hi.y - self.lo.y
    }

    /// Area of the rectangle.
    #[inline]
    pub const fn area(self) -> i64 {
        self.width() * self.height()
    }

    /// Center point, rounded toward `lo` on odd sizes.
    #[inline]
    pub const fn center(self) -> Point {
        Point::new(
            (self.lo.x + self.hi.x).div_euclid(2),
            (self.lo.y + self.hi.y).div_euclid(2),
        )
    }

    /// `true` if the point lies inside or on the boundary.
    #[inline]
    pub fn contains(self, p: Point) -> bool {
        self.lo.x <= p.x && p.x <= self.hi.x && self.lo.y <= p.y && p.y <= self.hi.y
    }

    /// `true` if `other` lies entirely within `self` (boundaries may touch).
    #[inline]
    pub fn contains_rect(self, other: Rect) -> bool {
        self.contains(other.lo) && self.contains(other.hi)
    }

    /// `true` if the interiors overlap (touching edges do **not** count).
    #[inline]
    pub fn overlaps(self, other: Rect) -> bool {
        self.lo.x < other.hi.x
            && other.lo.x < self.hi.x
            && self.lo.y < other.hi.y
            && other.lo.y < self.hi.y
    }

    /// The intersection rectangle, if the two rectangles touch or overlap.
    #[inline]
    pub fn intersect(self, other: Rect) -> Option<Rect> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo.x <= hi.x && lo.y <= hi.y {
            Some(Rect { lo, hi })
        } else {
            None
        }
    }

    /// Smallest rectangle containing both.
    #[inline]
    pub fn union(self, other: Rect) -> Rect {
        Rect {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// The rectangle displaced by `v`.
    #[inline]
    pub fn translate(self, v: Vector) -> Rect {
        Rect {
            lo: self.lo + v,
            hi: self.hi + v,
        }
    }

    /// The rectangle grown by `margin` on every side (shrunk if negative).
    ///
    /// # Panics
    ///
    /// Panics if a negative margin would invert the rectangle.
    #[inline]
    pub fn inflate(self, margin: i64) -> Rect {
        let lo = Point::new(self.lo.x - margin, self.lo.y - margin);
        let hi = Point::new(self.hi.x + margin, self.hi.y + margin);
        assert!(
            lo.x <= hi.x && lo.y <= hi.y,
            "inflate({margin}) inverted {self}"
        );
        Rect { lo, hi }
    }

    /// Low edge coordinate along `axis` (`lo.x` for [`Axis::X`]).
    ///
    /// The `*_along`/`*_across` accessors let compaction sweeps address
    /// geometry relative to a chosen axis: *along* is the direction in
    /// which edges move, *across* is the perpendicular direction the
    /// sweep leaves untouched.
    #[inline]
    pub const fn lo_along(self, axis: Axis) -> i64 {
        self.lo.coord(axis)
    }

    /// High edge coordinate along `axis` (`hi.x` for [`Axis::X`]).
    #[inline]
    pub const fn hi_along(self, axis: Axis) -> i64 {
        self.hi.coord(axis)
    }

    /// Low edge coordinate across `axis` (`lo.y` for [`Axis::X`]).
    #[inline]
    pub const fn lo_across(self, axis: Axis) -> i64 {
        self.lo.coord(axis.other())
    }

    /// High edge coordinate across `axis` (`hi.y` for [`Axis::X`]).
    #[inline]
    pub const fn hi_across(self, axis: Axis) -> i64 {
        self.hi.coord(axis.other())
    }

    /// Size along `axis`: [`Rect::width`] for [`Axis::X`],
    /// [`Rect::height`] for [`Axis::Y`].
    #[inline]
    pub const fn extent_along(self, axis: Axis) -> i64 {
        self.hi_along(axis) - self.lo_along(axis)
    }

    /// Builds a rectangle from its spans along and across `axis`.
    ///
    /// `Rect::from_spans(axis, (a, b), (c, d))` has `[a, b]` on `axis`
    /// and `[c, d]` on the perpendicular axis; for [`Axis::X`] this is
    /// `from_coords(a, c, b, d)`.
    ///
    /// # Panics
    ///
    /// Panics if either span is inverted.
    #[inline]
    pub fn from_spans(axis: Axis, along: (i64, i64), across: (i64, i64)) -> Rect {
        match axis {
            Axis::X => Rect::from_coords(along.0, across.0, along.1, across.1),
            Axis::Y => Rect::from_coords(across.0, along.0, across.1, along.1),
        }
    }

    /// This rectangle with its span along `axis` replaced by `[lo, hi]`;
    /// the span across `axis` is preserved.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn with_span_along(self, axis: Axis, lo: i64, hi: i64) -> Rect {
        Rect::from_spans(axis, (lo, hi), (self.lo_across(axis), self.hi_across(axis)))
    }

    /// Reflection across the `x = y` diagonal (swaps the roles of the
    /// two axes). An involution: `r.transpose().transpose() == r`.
    #[inline]
    pub const fn transpose(self) -> Rect {
        Rect {
            lo: Point::new(self.lo.y, self.lo.x),
            hi: Point::new(self.hi.y, self.hi.x),
        }
    }

    /// The image of this rectangle under an orientation about the origin.
    ///
    /// Because the eight Manhattan orientations map axis-aligned boxes to
    /// axis-aligned boxes (the property that justifies the ℤ₄ × 𝔹
    /// representation in paper §2.6), the result is again a `Rect`.
    #[inline]
    pub fn transform_orientation(self, o: Orientation) -> Rect {
        Rect::new(o.apply_point(self.lo), o.apply_point(self.hi))
    }

    /// The image of this rectangle under a full isometry.
    #[inline]
    pub fn transform(self, iso: Isometry) -> Rect {
        Rect::new(iso.apply_point(self.lo), iso.apply_point(self.hi))
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}..{}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        let r = Rect::new(Point::new(4, 2), Point::new(0, 5));
        assert_eq!(r.lo(), Point::new(0, 2));
        assert_eq!(r.hi(), Point::new(4, 5));
        assert_eq!(r.width(), 4);
        assert_eq!(r.height(), 3);
        assert_eq!(r.area(), 12);
    }

    #[test]
    fn containment_and_overlap() {
        let a = Rect::from_coords(0, 0, 10, 10);
        let b = Rect::from_coords(2, 2, 5, 5);
        let c = Rect::from_coords(10, 0, 20, 10); // touches a at x=10
        assert!(a.contains_rect(b));
        assert!(!b.contains_rect(a));
        assert!(a.overlaps(b));
        assert!(!a.overlaps(c), "touching edges are not overlap");
        assert!(a.contains(Point::new(10, 10)), "boundary contains");
    }

    #[test]
    fn intersection_union() {
        let a = Rect::from_coords(0, 0, 10, 4);
        let b = Rect::from_coords(5, 2, 15, 8);
        assert_eq!(a.intersect(b), Some(Rect::from_coords(5, 2, 10, 4)));
        assert_eq!(a.union(b), Rect::from_coords(0, 0, 15, 8));
        let far = Rect::from_coords(100, 100, 101, 101);
        assert_eq!(a.intersect(far), None);
        // Touching rectangles intersect in a degenerate rect.
        let c = Rect::from_coords(10, 0, 12, 4);
        assert_eq!(a.intersect(c), Some(Rect::from_coords(10, 0, 10, 4)));
    }

    #[test]
    fn transforms_preserve_area() {
        let r = Rect::from_coords(1, 2, 7, 5);
        for o in Orientation::ALL {
            assert_eq!(r.transform_orientation(o).area(), r.area(), "{o}");
        }
    }

    #[test]
    fn quarter_turn_swaps_width_height() {
        let r = Rect::from_coords(0, 0, 6, 2);
        let t = r.transform_orientation(Orientation::EAST);
        assert_eq!(t.width(), 2);
        assert_eq!(t.height(), 6);
    }

    #[test]
    fn transform_composes() {
        let r = Rect::from_coords(-2, 1, 4, 9);
        let a = Isometry::new(Orientation::WEST, Vector::new(3, -3));
        let b = Isometry::new(Orientation::MIRROR_X, Vector::new(-7, 11));
        assert_eq!(r.transform(b).transform(a), r.transform(a.compose(b)));
    }

    #[test]
    fn inflate_and_translate() {
        let r = Rect::from_coords(0, 0, 4, 4);
        assert_eq!(r.inflate(1), Rect::from_coords(-1, -1, 5, 5));
        assert_eq!(r.inflate(1).inflate(-1), r);
        assert_eq!(
            r.translate(Vector::new(2, 3)),
            Rect::from_coords(2, 3, 6, 7)
        );
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn from_coords_panics_on_inversion() {
        let _ = Rect::from_coords(5, 0, 0, 5);
    }

    #[test]
    fn axis_accessors_mirror_xy() {
        let r = Rect::from_coords(1, 2, 7, 15);
        assert_eq!(r.lo_along(Axis::X), 1);
        assert_eq!(r.hi_along(Axis::X), 7);
        assert_eq!(r.lo_across(Axis::X), 2);
        assert_eq!(r.hi_across(Axis::X), 15);
        assert_eq!(r.extent_along(Axis::X), r.width());
        assert_eq!(r.lo_along(Axis::Y), 2);
        assert_eq!(r.hi_along(Axis::Y), 15);
        assert_eq!(r.lo_across(Axis::Y), 1);
        assert_eq!(r.hi_across(Axis::Y), 7);
        assert_eq!(r.extent_along(Axis::Y), r.height());
        // Along-axis queries on r are across-axis queries on the transpose.
        let t = r.transpose();
        for axis in Axis::BOTH {
            assert_eq!(r.lo_along(axis), t.lo_along(axis.other()));
            assert_eq!(r.extent_along(axis), t.extent_along(axis.other()));
        }
    }

    #[test]
    fn from_spans_and_with_span() {
        let r = Rect::from_spans(Axis::Y, (3, 9), (0, 4));
        assert_eq!(r, Rect::from_coords(0, 3, 4, 9));
        assert_eq!(
            r.with_span_along(Axis::Y, 10, 20),
            Rect::from_coords(0, 10, 4, 20)
        );
        assert_eq!(
            r.with_span_along(Axis::X, 1, 2),
            Rect::from_coords(1, 3, 2, 9)
        );
        assert_eq!(
            Rect::from_spans(Axis::X, (3, 9), (0, 4)),
            Rect::from_coords(3, 0, 9, 4)
        );
    }

    #[test]
    fn transpose_involution() {
        let r = Rect::from_coords(1, 2, 5, 9);
        assert_eq!(r.transpose(), Rect::from_coords(2, 1, 9, 5));
        assert_eq!(r.transpose().transpose(), r);
    }

    #[test]
    fn center() {
        assert_eq!(Rect::from_coords(0, 0, 4, 2).center(), Point::new(2, 1));
        assert_eq!(Rect::from_coords(0, 0, 3, 3).center(), Point::new(1, 1));
    }
}
