//! The eight Manhattan orientations as the group ℤ₄ × 𝔹 (paper §2.6).
//!
//! The paper represents an orientation as `e^{iθ} ∘ R^k` where θ is one of
//! the four quarter-turn angles (an element of ℤ₄) and `R` is the reflection
//! about the y axis applied *before* the rotation when `k = 1`. With the
//! paper's own composition and inversion rules (§2.6.1–2.6.2):
//!
//! * inverse:  if `k = 1` the orientation is a reflection and is its own
//!   inverse; otherwise the inverse negates the rotation;
//! * compose:  `(j₂,k₂) ∘ (j₁,k₁) = (j₂ - j₁, k₂ ⊕ k₁)` when `k₂ = 1`
//!   and `(j₂ + j₁, k₁)` when `k₂ = 0` (all arithmetic mod 4).
//!
//! The four pure rotations are named after compass directions as in the
//! paper's figures (North = identity, the instance "held at orientation
//! north" in §2.2).

use crate::{Point, Vector};
use std::fmt;

/// A quarter-turn rotation count: the ℤ₄ part of an orientation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Rotation {
    /// 0° — identity.
    #[default]
    R0,
    /// 90° counterclockwise.
    R90,
    /// 180°.
    R180,
    /// 270° counterclockwise.
    R270,
}

impl Rotation {
    /// All four rotations in increasing angle order.
    pub const ALL: [Rotation; 4] = [Rotation::R0, Rotation::R90, Rotation::R180, Rotation::R270];

    /// The number of quarter turns (0–3).
    #[inline]
    pub const fn quarter_turns(self) -> u8 {
        match self {
            Rotation::R0 => 0,
            Rotation::R90 => 1,
            Rotation::R180 => 2,
            Rotation::R270 => 3,
        }
    }

    /// Builds a rotation from a quarter-turn count, reduced mod 4.
    #[inline]
    pub const fn from_quarter_turns(n: i64) -> Rotation {
        match n.rem_euclid(4) {
            0 => Rotation::R0,
            1 => Rotation::R90,
            2 => Rotation::R180,
            _ => Rotation::R270,
        }
    }

    /// Sum of two rotations (ℤ₄ addition).
    #[inline]
    pub const fn add(self, other: Rotation) -> Rotation {
        Rotation::from_quarter_turns(self.quarter_turns() as i64 + other.quarter_turns() as i64)
    }

    /// Difference of two rotations (ℤ₄ subtraction).
    #[inline]
    pub const fn sub(self, other: Rotation) -> Rotation {
        Rotation::from_quarter_turns(self.quarter_turns() as i64 - other.quarter_turns() as i64)
    }

    /// Additive inverse in ℤ₄.
    #[inline]
    pub const fn neg(self) -> Rotation {
        Rotation::from_quarter_turns(-(self.quarter_turns() as i64))
    }
}

/// One of the eight isometries that map Manhattan geometry to Manhattan
/// geometry, represented as the pair `(j, k) ∈ ℤ₄ × 𝔹` of paper §2.6.
///
/// The operator denoted is `rot(j) ∘ Rʸᵏ`: when `mirror_y` is set, the
/// reflection about the y axis (x ↦ −x) is performed **before** the
/// rotation, exactly as in the paper.
///
/// The four unmirrored orientations carry the compass names the paper uses
/// for instance orientations: [`Orientation::NORTH`] (identity),
/// [`Orientation::EAST`], [`Orientation::SOUTH`], [`Orientation::WEST`].
///
/// # Example
///
/// ```
/// use rsg_geom::{Orientation, Vector};
///
/// // South ∘ South = North (180° + 180°).
/// assert_eq!(Orientation::SOUTH.compose(Orientation::SOUTH), Orientation::NORTH);
///
/// // Reflections are involutions (paper eq. 2.13).
/// let refl = Orientation::MIRROR_Y.compose(Orientation::EAST);
/// assert_eq!(refl.inverse(), refl);
/// # let _ = Vector::ZERO;
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Orientation {
    /// The ℤ₄ rotation applied after the optional reflection.
    pub rotation: Rotation,
    /// Whether the reflection about the y axis precedes the rotation.
    pub mirror_y: bool,
}

impl Orientation {
    /// Identity: the paper's "orientation north".
    pub const NORTH: Orientation = Orientation {
        rotation: Rotation::R0,
        mirror_y: false,
    };
    /// Quarter turn counterclockwise. Fig 2.5 row "East": x→y, y→−x under
    /// the paper's mapping convention (see [`Orientation::apply_vector`]).
    pub const R90: Orientation = Orientation {
        rotation: Rotation::R90,
        mirror_y: false,
    };
    /// Half turn: the paper's "orientation south".
    pub const SOUTH: Orientation = Orientation {
        rotation: Rotation::R180,
        mirror_y: false,
    };
    /// Three quarter turns.
    pub const R270: Orientation = Orientation {
        rotation: Rotation::R270,
        mirror_y: false,
    };
    /// Compass alias: the paper's "East" instance orientation (one quarter
    /// turn; Fig 2.5 maps East ↦ (y, −x), which is `R270` acting on column
    /// vectors — see [`Orientation::fig_2_5_mapping`] for the exact table).
    pub const EAST: Orientation = Orientation {
        rotation: Rotation::R270,
        mirror_y: false,
    };
    /// Compass alias for three quarter turns, the paper's "West".
    pub const WEST: Orientation = Orientation {
        rotation: Rotation::R90,
        mirror_y: false,
    };
    /// Reflection about the y axis (x ↦ −x), the paper's `R`.
    pub const MIRROR_Y: Orientation = Orientation {
        rotation: Rotation::R0,
        mirror_y: true,
    };
    /// Reflection about the x axis (y ↦ −y) = rot(180°) ∘ R.
    pub const MIRROR_X: Orientation = Orientation {
        rotation: Rotation::R180,
        mirror_y: true,
    };

    /// All eight orientations (the full group).
    pub const ALL: [Orientation; 8] = [
        Orientation {
            rotation: Rotation::R0,
            mirror_y: false,
        },
        Orientation {
            rotation: Rotation::R90,
            mirror_y: false,
        },
        Orientation {
            rotation: Rotation::R180,
            mirror_y: false,
        },
        Orientation {
            rotation: Rotation::R270,
            mirror_y: false,
        },
        Orientation {
            rotation: Rotation::R0,
            mirror_y: true,
        },
        Orientation {
            rotation: Rotation::R90,
            mirror_y: true,
        },
        Orientation {
            rotation: Rotation::R180,
            mirror_y: true,
        },
        Orientation {
            rotation: Rotation::R270,
            mirror_y: true,
        },
    ];

    /// Creates an orientation from its rotation and mirror parts.
    #[inline]
    pub const fn new(rotation: Rotation, mirror_y: bool) -> Orientation {
        Orientation { rotation, mirror_y }
    }

    /// `true` if this orientation reverses handedness (is a reflection).
    #[inline]
    pub const fn is_reflection(self) -> bool {
        self.mirror_y
    }

    /// Composition `self ∘ other` (apply `other` first, then `self`).
    ///
    /// Implements the paper's §2.6.2 rules: with `self = (j₂, k₂)` and
    /// `other = (j₁, k₁)`, the result is `(j₂ − j₁, k₂ ⊕ k₁)` when
    /// `k₂ = 1`, else `(j₂ + j₁, k₁)`.
    #[inline]
    pub const fn compose(self, other: Orientation) -> Orientation {
        if self.mirror_y {
            Orientation {
                rotation: self.rotation.sub(other.rotation),
                mirror_y: !other.mirror_y,
            }
        } else {
            Orientation {
                rotation: self.rotation.add(other.rotation),
                mirror_y: other.mirror_y,
            }
        }
    }

    /// The group inverse (paper §2.6.1): reflections are involutions,
    /// rotations invert by negating the angle.
    #[inline]
    pub const fn inverse(self) -> Orientation {
        if self.mirror_y {
            self
        } else {
            Orientation {
                rotation: self.rotation.neg(),
                mirror_y: false,
            }
        }
    }

    /// Applies the orientation to a vector.
    ///
    /// The reflection about the y axis (x ↦ −x) is applied first when
    /// `mirror_y` is set, then the counterclockwise rotation. The quarter
    /// turn maps x → y and y → −x (Fig 2.5's "East" row read as the image
    /// of the basis under the inverse mapping; see
    /// [`Orientation::fig_2_5_mapping`] for the paper's exact table).
    #[inline]
    pub const fn apply_vector(self, v: Vector) -> Vector {
        let x = if self.mirror_y { -v.x } else { v.x };
        let y = v.y;
        match self.rotation {
            Rotation::R0 => Vector { x, y },
            Rotation::R90 => Vector { x: -y, y: x },
            Rotation::R180 => Vector { x: -x, y: -y },
            Rotation::R270 => Vector { x: y, y: -x },
        }
    }

    /// Applies the orientation to a point (about the origin, since
    /// orientations "leave S_b, the origin of the coordinate system within
    /// B, unchanged" — paper §2.1).
    #[inline]
    pub const fn apply_point(self, p: Point) -> Point {
        let v = self.apply_vector(Vector { x: p.x, y: p.y });
        Point { x: v.x, y: v.y }
    }

    /// The coordinate mapping table of Fig 2.5 for the four basic rotations.
    ///
    /// Returns the pair of coordinate expressions `(new_x, new_y)` for an
    /// object transformed by the compass orientation, as (coefficients of)
    /// the original `x` and `y`: each entry is `(cx, cy)` meaning
    /// `new = cx·x + cy·y`. Fig 2.5 reads:
    ///
    /// | Orientation | x coordinate | y coordinate |
    /// |---|---|---|
    /// | North | x | y |
    /// | South | −x | −y |
    /// | East  | y | −x |
    /// | West  | −y | x |
    #[inline]
    pub fn fig_2_5_mapping(self) -> Option<((i64, i64), (i64, i64))> {
        if self.mirror_y {
            return None;
        }
        let ex = self.apply_vector(Vector::new(1, 0));
        let ey = self.apply_vector(Vector::new(0, 1));
        // new_x = ex.x * x + ey.x * y ; new_y = ex.y * x + ey.y * y
        Some(((ex.x, ey.x), (ex.y, ey.y)))
    }

    /// The 2×2 integer matrix `[[a, b], [c, d]]` of this orientation acting
    /// on column vectors. Used by the matrix-baseline benchmark (E2) and by
    /// the proptest homomorphism check.
    #[inline]
    pub const fn matrix(self) -> [[i64; 2]; 2] {
        let ex = self.apply_vector(Vector { x: 1, y: 0 });
        let ey = self.apply_vector(Vector { x: 0, y: 1 });
        [[ex.x, ey.x], [ex.y, ey.y]]
    }

    /// A short canonical name (`N`, `E`, `S`, `W` for rotations; `FN`, `FE`,
    /// `FS`, `FW` for their y-mirrored variants), the common EDA convention.
    pub fn name(self) -> &'static str {
        match (self.rotation, self.mirror_y) {
            (Rotation::R0, false) => "N",
            (Rotation::R90, false) => "W",
            (Rotation::R180, false) => "S",
            (Rotation::R270, false) => "E",
            (Rotation::R0, true) => "FN",
            (Rotation::R90, true) => "FW",
            (Rotation::R180, true) => "FS",
            (Rotation::R270, true) => "FE",
        }
    }

    /// Parses the short names produced by [`Orientation::name`].
    pub fn from_name(s: &str) -> Option<Orientation> {
        Orientation::ALL.iter().copied().find(|o| o.name() == s)
    }
}

impl fmt::Display for Orientation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_north() {
        for o in Orientation::ALL {
            assert_eq!(o.compose(Orientation::NORTH), o);
            assert_eq!(Orientation::NORTH.compose(o), o);
        }
    }

    #[test]
    fn inverse_is_two_sided() {
        for o in Orientation::ALL {
            assert_eq!(o.compose(o.inverse()), Orientation::NORTH, "{o}");
            assert_eq!(o.inverse().compose(o), Orientation::NORTH, "{o}");
        }
    }

    #[test]
    fn group_is_closed_and_has_eight_elements() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for a in Orientation::ALL {
            for b in Orientation::ALL {
                seen.insert(a.compose(b));
            }
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn composition_is_associative() {
        for a in Orientation::ALL {
            for b in Orientation::ALL {
                for c in Orientation::ALL {
                    assert_eq!(a.compose(b).compose(c), a.compose(b.compose(c)));
                }
            }
        }
    }

    #[test]
    fn composition_matches_function_application() {
        // (a ∘ b)(v) == a(b(v)) — the homomorphism the whole §2.6 machinery
        // exists to provide.
        let probes = [Vector::new(1, 0), Vector::new(0, 1), Vector::new(3, -7)];
        for a in Orientation::ALL {
            for b in Orientation::ALL {
                for v in probes {
                    assert_eq!(
                        a.compose(b).apply_vector(v),
                        a.apply_vector(b.apply_vector(v)),
                        "a={a} b={b} v={v}"
                    );
                }
            }
        }
    }

    #[test]
    fn south_inverse_is_south() {
        // §2.2: "the calling cell must be reoriented by South⁻¹ = South
        // (because 180° = −180°)".
        assert_eq!(Orientation::SOUTH.inverse(), Orientation::SOUTH);
    }

    #[test]
    fn reflections_are_involutions() {
        for o in Orientation::ALL.iter().filter(|o| o.is_reflection()) {
            assert_eq!(o.compose(*o), Orientation::NORTH);
            assert_eq!(o.inverse(), *o);
        }
    }

    #[test]
    fn rotation_coordinate_mapping_matches_fig_2_5() {
        // Fig 2.5:   North: (x, y)   South: (−x, −y)
        //            East:  (y, −x)  West:  (−y, x)
        let n = Orientation::NORTH.fig_2_5_mapping().unwrap();
        assert_eq!(n, ((1, 0), (0, 1)));
        let s = Orientation::SOUTH.fig_2_5_mapping().unwrap();
        assert_eq!(s, ((-1, 0), (0, -1)));
        let e = Orientation::EAST.fig_2_5_mapping().unwrap();
        assert_eq!(e, ((0, 1), (-1, 0))); // new_x = y, new_y = −x
        let w = Orientation::WEST.fig_2_5_mapping().unwrap();
        assert_eq!(w, ((0, -1), (1, 0))); // new_x = −y, new_y = x
        assert!(Orientation::MIRROR_Y.fig_2_5_mapping().is_none());
    }

    #[test]
    fn mirror_before_rotation_order() {
        // (R90, mirror) means mirror first then rotate: (1,0) -mirror-> (-1,0)
        // -rot90-> (0,-1).
        let o = Orientation::new(Rotation::R90, true);
        assert_eq!(o.apply_vector(Vector::new(1, 0)), Vector::new(0, -1));
    }

    #[test]
    fn matrix_agrees_with_apply() {
        for o in Orientation::ALL {
            let m = o.matrix();
            let v = Vector::new(5, -3);
            let mv = Vector::new(m[0][0] * v.x + m[0][1] * v.y, m[1][0] * v.x + m[1][1] * v.y);
            assert_eq!(mv, o.apply_vector(v), "{o}");
        }
    }

    #[test]
    fn matrices_are_all_distinct() {
        use std::collections::HashSet;
        let set: HashSet<_> = Orientation::ALL.iter().map(|o| o.matrix()).collect();
        assert_eq!(set.len(), 8);
    }

    #[test]
    fn names_round_trip() {
        for o in Orientation::ALL {
            assert_eq!(Orientation::from_name(o.name()), Some(o));
        }
        assert_eq!(Orientation::from_name("bogus"), None);
    }

    #[test]
    fn determinant_reflects_handedness() {
        for o in Orientation::ALL {
            let m = o.matrix();
            let det = m[0][0] * m[1][1] - m[0][1] * m[1][0];
            assert_eq!(det, if o.is_reflection() { -1 } else { 1 });
        }
    }
}
