//! Affine isometries: an [`Orientation`] followed by a translation.
//!
//! Instantiating a cell B inside a cell A (paper §2.1) performs the isometry
//! `O'` on B about B's own origin and then places that origin at the point
//! of call `L'` — exactly an [`Isometry`] `p ↦ O(p) + L`.

use crate::{Orientation, Point, Vector};
use std::fmt;

/// An affine isometry `p ↦ orientation(p) + translation`.
///
/// These compose like the calling parameters of nested instances: if A is
/// called in B with isometry `I₁` and B in C with `I₂`, an object `Ob` of A
/// appears in C at `I₂(I₁(Ob)) = (I₂ ∘ I₁)(Ob)` (paper §2.6). The paper
/// notes that composing the operators first and applying the result once is
/// the computationally efficient strategy; `Isometry::compose` is that
/// symbolic composition.
///
/// # Example
///
/// ```
/// use rsg_geom::{Isometry, Orientation, Point, Vector};
///
/// let call_b_in_a = Isometry::new(Orientation::SOUTH, Vector::new(10, 0));
/// let call_a_in_c = Isometry::new(Orientation::NORTH, Vector::new(0, 5));
/// let total = call_a_in_c.compose(call_b_in_a);
/// let p = Point::new(1, 1);
/// assert_eq!(total.apply_point(p), call_a_in_c.apply_point(call_b_in_a.apply_point(p)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Isometry {
    /// The linear (orientation) part, applied about the origin.
    pub orientation: Orientation,
    /// The translation applied after the orientation (the point of call).
    pub translation: Vector,
}

impl Isometry {
    /// The identity isometry.
    pub const IDENTITY: Isometry = Isometry {
        orientation: Orientation::NORTH,
        translation: Vector::ZERO,
    };

    /// Creates an isometry from its orientation and translation parts.
    #[inline]
    pub const fn new(orientation: Orientation, translation: Vector) -> Isometry {
        Isometry {
            orientation,
            translation,
        }
    }

    /// A pure translation.
    #[inline]
    pub const fn translate(v: Vector) -> Isometry {
        Isometry {
            orientation: Orientation::NORTH,
            translation: v,
        }
    }

    /// A pure orientation about the origin.
    #[inline]
    pub const fn orient(o: Orientation) -> Isometry {
        Isometry {
            orientation: o,
            translation: Vector::ZERO,
        }
    }

    /// The isometry of an instance called at `point_of_call` with
    /// `orientation` (paper §2.1 triplet minus the cell pointer).
    #[inline]
    pub fn call(point_of_call: Point, orientation: Orientation) -> Isometry {
        Isometry {
            orientation,
            translation: point_of_call.to_vector(),
        }
    }

    /// Applies the isometry to a point.
    #[inline]
    pub fn apply_point(self, p: Point) -> Point {
        self.orientation.apply_point(p) + self.translation
    }

    /// Applies only the linear part to a vector (translations do not move
    /// displacements).
    #[inline]
    pub fn apply_vector(self, v: Vector) -> Vector {
        self.orientation.apply_vector(v)
    }

    /// Symbolic composition `self ∘ other` (apply `other` first).
    ///
    /// `(self ∘ other)(p) = O_s(O_o(p) + t_o) + t_s
    ///                    = (O_s∘O_o)(p) + O_s(t_o) + t_s`.
    #[inline]
    pub fn compose(self, other: Isometry) -> Isometry {
        Isometry {
            orientation: self.orientation.compose(other.orientation),
            translation: self.orientation.apply_vector(other.translation) + self.translation,
        }
    }

    /// The inverse isometry: `p ↦ O⁻¹(p − t)`.
    #[inline]
    pub fn inverse(self) -> Isometry {
        let inv = self.orientation.inverse();
        Isometry {
            orientation: inv,
            translation: -(inv.apply_vector(self.translation)),
        }
    }

    /// The point of call (image of the origin).
    #[inline]
    pub fn point_of_call(self) -> Point {
        self.translation.to_point()
    }
}

impl fmt::Display for Isometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.orientation, self.translation.to_point())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probes() -> Vec<Point> {
        vec![
            Point::new(0, 0),
            Point::new(1, 0),
            Point::new(-3, 7),
            Point::new(100, -41),
        ]
    }

    fn sample_isometries() -> Vec<Isometry> {
        let mut v = Vec::new();
        for o in Orientation::ALL {
            for t in [Vector::ZERO, Vector::new(5, -2), Vector::new(-11, 13)] {
                v.push(Isometry::new(o, t));
            }
        }
        v
    }

    #[test]
    fn identity_fixes_everything() {
        for p in probes() {
            assert_eq!(Isometry::IDENTITY.apply_point(p), p);
        }
    }

    #[test]
    fn compose_matches_application_order() {
        for a in sample_isometries() {
            for b in sample_isometries() {
                for p in probes() {
                    assert_eq!(
                        a.compose(b).apply_point(p),
                        a.apply_point(b.apply_point(p)),
                        "a={a} b={b} p={p}"
                    );
                }
            }
        }
    }

    #[test]
    fn inverse_round_trips() {
        for a in sample_isometries() {
            assert_eq!(a.compose(a.inverse()), Isometry::IDENTITY, "{a}");
            assert_eq!(a.inverse().compose(a), Isometry::IDENTITY, "{a}");
            for p in probes() {
                assert_eq!(a.inverse().apply_point(a.apply_point(p)), p);
            }
        }
    }

    #[test]
    fn call_constructor_places_origin() {
        let iso = Isometry::call(Point::new(7, 9), Orientation::SOUTH);
        assert_eq!(iso.apply_point(Point::ORIGIN), Point::new(7, 9));
        assert_eq!(iso.point_of_call(), Point::new(7, 9));
    }

    #[test]
    fn vectors_ignore_translation() {
        let iso = Isometry::new(Orientation::SOUTH, Vector::new(100, 100));
        assert_eq!(iso.apply_vector(Vector::new(1, 2)), Vector::new(-1, -2));
    }

    #[test]
    fn composition_is_associative() {
        let samples = sample_isometries();
        for a in samples.iter().step_by(5) {
            for b in samples.iter().step_by(7) {
                for c in samples.iter().step_by(3) {
                    assert_eq!(a.compose(*b).compose(*c), a.compose(b.compose(*c)));
                }
            }
        }
    }
}
