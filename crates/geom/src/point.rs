//! Integer points and vectors on the layout grid.
//!
//! The RSG works on an integer grid (centi-lambda in this reproduction, so
//! that half-lambda design rules stay integral). Points are absolute
//! locations inside some coordinate system; vectors are displacements.
//! Interface vectors (paper §2.2) are [`Vector`]s.

use crate::Axis;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// An absolute location in some cell coordinate system.
///
/// # Example
///
/// ```
/// use rsg_geom::{Point, Vector};
/// let p = Point::new(2, 3) + Vector::new(1, -1);
/// assert_eq!(p, Point::new(3, 2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Point {
    /// Abscissa in grid units.
    pub x: i64,
    /// Ordinate in grid units.
    pub y: i64,
}

/// A displacement between two [`Point`]s.
///
/// Interface vectors `V_ab` from the paper (§2.2) are `Vector`s: the
/// displacement from the point of call of cell A to the point of call of
/// cell B, after deskewing A to orientation north.
///
/// # Example
///
/// ```
/// use rsg_geom::{Point, Vector};
/// assert_eq!(Point::new(5, 5) - Point::new(2, 3), Vector::new(3, 2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Vector {
    /// X component in grid units.
    pub x: i64,
    /// Y component in grid units.
    pub y: i64,
}

impl Point {
    /// The origin `(0, 0)` of a cell coordinate system (`S_a` in the paper).
    pub const ORIGIN: Point = Point { x: 0, y: 0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: i64, y: i64) -> Self {
        Point { x, y }
    }

    /// The displacement from the origin to this point.
    #[inline]
    pub const fn to_vector(self) -> Vector {
        Vector {
            x: self.x,
            y: self.y,
        }
    }

    /// The coordinate on the given axis (`x` for [`Axis::X`]).
    #[inline]
    pub const fn coord(self, axis: Axis) -> i64 {
        match axis {
            Axis::X => self.x,
            Axis::Y => self.y,
        }
    }

    /// Componentwise minimum of two points (lower-left corner helper).
    #[inline]
    pub fn min(self, other: Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Componentwise maximum of two points (upper-right corner helper).
    #[inline]
    pub fn max(self, other: Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }
}

impl Vector {
    /// The zero displacement.
    pub const ZERO: Vector = Vector { x: 0, y: 0 };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: i64, y: i64) -> Self {
        Vector { x, y }
    }

    /// The point reached by displacing the origin by this vector.
    #[inline]
    pub const fn to_point(self) -> Point {
        Point {
            x: self.x,
            y: self.y,
        }
    }

    /// The squared Euclidean length (exact, no floating point).
    #[inline]
    pub fn norm_sq(self) -> i64 {
        self.x * self.x + self.y * self.y
    }

    /// Manhattan (L1) length of the vector.
    #[inline]
    pub fn manhattan(self) -> i64 {
        self.x.abs() + self.y.abs()
    }
}

impl From<Vector> for Point {
    fn from(v: Vector) -> Point {
        v.to_point()
    }
}

impl From<Point> for Vector {
    fn from(p: Point) -> Vector {
        p.to_vector()
    }
}

impl Add<Vector> for Point {
    type Output = Point;
    #[inline]
    fn add(self, v: Vector) -> Point {
        Point::new(self.x + v.x, self.y + v.y)
    }
}

impl AddAssign<Vector> for Point {
    #[inline]
    fn add_assign(&mut self, v: Vector) {
        self.x += v.x;
        self.y += v.y;
    }
}

impl Sub<Vector> for Point {
    type Output = Point;
    #[inline]
    fn sub(self, v: Vector) -> Point {
        Point::new(self.x - v.x, self.y - v.y)
    }
}

impl SubAssign<Vector> for Point {
    #[inline]
    fn sub_assign(&mut self, v: Vector) {
        self.x -= v.x;
        self.y -= v.y;
    }
}

impl Sub for Point {
    type Output = Vector;
    #[inline]
    fn sub(self, other: Point) -> Vector {
        Vector::new(self.x - other.x, self.y - other.y)
    }
}

impl Add for Vector {
    type Output = Vector;
    #[inline]
    fn add(self, other: Vector) -> Vector {
        Vector::new(self.x + other.x, self.y + other.y)
    }
}

impl AddAssign for Vector {
    #[inline]
    fn add_assign(&mut self, other: Vector) {
        self.x += other.x;
        self.y += other.y;
    }
}

impl Sub for Vector {
    type Output = Vector;
    #[inline]
    fn sub(self, other: Vector) -> Vector {
        Vector::new(self.x - other.x, self.y - other.y)
    }
}

impl SubAssign for Vector {
    #[inline]
    fn sub_assign(&mut self, other: Vector) {
        self.x -= other.x;
        self.y -= other.y;
    }
}

impl Neg for Vector {
    type Output = Vector;
    #[inline]
    fn neg(self) -> Vector {
        Vector::new(-self.x, -self.y)
    }
}

impl Mul<i64> for Vector {
    type Output = Vector;
    #[inline]
    fn mul(self, k: i64) -> Vector {
        Vector::new(self.x * k, self.y * k)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}, {}>", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_vector_arithmetic_round_trip() {
        let a = Point::new(10, -4);
        let b = Point::new(-3, 7);
        let v = b - a;
        assert_eq!(a + v, b);
        assert_eq!(b - v, a);
    }

    #[test]
    fn vector_group_laws() {
        let v = Vector::new(5, -2);
        let w = Vector::new(-1, 9);
        assert_eq!(v + w, w + v);
        assert_eq!(v + Vector::ZERO, v);
        assert_eq!(v + (-v), Vector::ZERO);
        assert_eq!((v - w) + w, v);
    }

    #[test]
    #[allow(clippy::erasing_op)]
    fn scalar_multiplication() {
        assert_eq!(Vector::new(2, -3) * 4, Vector::new(8, -12));
        assert_eq!(Vector::new(2, -3) * 0, Vector::ZERO);
    }

    #[test]
    fn norms() {
        assert_eq!(Vector::new(3, 4).norm_sq(), 25);
        assert_eq!(Vector::new(-3, 4).manhattan(), 7);
    }

    #[test]
    fn min_max_corners() {
        let a = Point::new(1, 9);
        let b = Point::new(4, -2);
        assert_eq!(a.min(b), Point::new(1, -2));
        assert_eq!(a.max(b), Point::new(4, 9));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Point::new(1, 2).to_string(), "(1, 2)");
        assert_eq!(Vector::new(-1, 0).to_string(), "<-1, 0>");
    }

    #[test]
    fn conversions() {
        assert_eq!(Point::from(Vector::new(1, 2)), Point::new(1, 2));
        assert_eq!(Vector::from(Point::new(3, 4)), Vector::new(3, 4));
    }
}
