//! Geometric substrate for the Regular Structure Generator (RSG).
//!
//! This crate reproduces the mathematical foundations of Chapter 2 of
//! Bamji's 1985 thesis *A Design by Example Regular Structure Generator*:
//!
//! * integer [`Point`]s and [`Vector`]s on the layout grid,
//! * the eight Manhattan [`Orientation`]s represented as the group
//!   ℤ₄ × 𝔹 (Section 2.6 of the paper), with closed-form composition and
//!   inversion rules,
//! * full affine [`Isometry`]s (orientation + translation) used when cells
//!   are instantiated inside other cells,
//! * axis-aligned rectangles ([`Rect`]) and bounding boxes ([`BoundingBox`]).
//!
//! The paper rejects both floating-point angle representations and 2×2 real
//! matrices for orientations because layout work only ever needs the eight
//! isometries that map Manhattan geometry to Manhattan geometry; those eight
//! form a group isomorphic to the dihedral group D₄ and compose with two
//! integer operations (the claim benchmarked by experiment E2 in DESIGN.md).
//!
//! # Example
//!
//! ```
//! use rsg_geom::{Orientation, Point, Vector};
//!
//! // Fig 2.5 of the paper: the quarter-turn maps x→y and y→-x.
//! let p = Point::new(3, 1);
//! assert_eq!(Orientation::R90.apply_point(p), Point::new(-1, 3));
//!
//! // Orientations form a group.
//! let o = Orientation::R90.compose(Orientation::MIRROR_Y);
//! assert_eq!(o.compose(o.inverse()), Orientation::NORTH);
//! # let _ = Vector::new(0, 0);
//! ```
//!
//! Library code is panic-free by policy: `unwrap`/`expect` are denied
//! outside `#[cfg(test)]` (see DESIGN.md's robustness section).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(missing_docs)]

/// Coordinate-magnitude budget for ingested layouts (robustness
/// contract, enforced at the layout crate's ingest points).
///
/// Every coordinate a parser or cell builder accepts must satisfy
/// `|c| ≤ MAX_COORD = 2³⁰`. Interior pipeline arithmetic is then
/// provably overflow-free in `i64`:
///
/// * instance placement composes at most one orientation flip and one
///   translation per hierarchy level; with ≤ 2¹⁰ levels the flattened
///   coordinates stay below 2⁴⁰,
/// * constraint weights are differences of two coordinates plus one
///   design-rule distance: below 2⁴¹,
/// * longest-path positions are sums of at most one weight per
///   variable: ≤ 2⁴¹ · (number of variables), below 2⁶¹ for layouts
///   within the default flat-box budget of 2²⁰ items (the solver
///   additionally uses checked adds so adversarial systems built
///   outside the budget degrade to a typed overflow error),
/// * areas (`width · height`) of budgeted rectangles are at most
///   (2³¹)² = 2⁶² < 2⁶³.
///
/// Callers constructing geometry directly (not through a parser) can
/// opt out; the compactors re-validate at their own entry points and
/// report a typed error instead of overflowing.
pub const MAX_COORD: i64 = 1 << 30;

mod axis;
mod bbox;
mod index;
mod isometry;
mod orientation;
pub mod par;
mod point;
mod rect;

pub use axis::Axis;
pub use bbox::BoundingBox;
pub use index::{CoverageProfile, GeomIndex};
pub use isometry::Isometry;
pub use orientation::{Orientation, Rotation};
pub use point::{Point, Vector};
pub use rect::Rect;
