//! Geometric substrate for the Regular Structure Generator (RSG).
//!
//! This crate reproduces the mathematical foundations of Chapter 2 of
//! Bamji's 1985 thesis *A Design by Example Regular Structure Generator*:
//!
//! * integer [`Point`]s and [`Vector`]s on the layout grid,
//! * the eight Manhattan [`Orientation`]s represented as the group
//!   ℤ₄ × 𝔹 (Section 2.6 of the paper), with closed-form composition and
//!   inversion rules,
//! * full affine [`Isometry`]s (orientation + translation) used when cells
//!   are instantiated inside other cells,
//! * axis-aligned rectangles ([`Rect`]) and bounding boxes ([`BoundingBox`]).
//!
//! The paper rejects both floating-point angle representations and 2×2 real
//! matrices for orientations because layout work only ever needs the eight
//! isometries that map Manhattan geometry to Manhattan geometry; those eight
//! form a group isomorphic to the dihedral group D₄ and compose with two
//! integer operations (the claim benchmarked by experiment E2 in DESIGN.md).
//!
//! # Example
//!
//! ```
//! use rsg_geom::{Orientation, Point, Vector};
//!
//! // Fig 2.5 of the paper: the quarter-turn maps x→y and y→-x.
//! let p = Point::new(3, 1);
//! assert_eq!(Orientation::R90.apply_point(p), Point::new(-1, 3));
//!
//! // Orientations form a group.
//! let o = Orientation::R90.compose(Orientation::MIRROR_Y);
//! assert_eq!(o.compose(o.inverse()), Orientation::NORTH);
//! # let _ = Vector::new(0, 0);
//! ```

#![deny(missing_docs)]

mod axis;
mod bbox;
mod index;
mod isometry;
mod orientation;
mod point;
mod rect;

pub use axis::Axis;
pub use bbox::BoundingBox;
pub use index::{CoverageProfile, GeomIndex};
pub use isometry::Isometry;
pub use orientation::{Orientation, Rotation};
pub use point::{Point, Vector};
pub use rect::Rect;
