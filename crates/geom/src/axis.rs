//! The two sweep axes of two-dimensional compaction.
//!
//! The paper restricts its compaction discussion to one dimension ("it is
//! assumed throughout this section that compaction is being performed in
//! the x dimension", §6.3) and obtains the y pass by transposing the
//! layout. [`Axis`] removes the need for that copy: geometry queries are
//! phrased *along* a chosen axis (the direction in which edges move) and
//! *across* it (the perpendicular direction, untouched by the sweep), so
//! one code path serves both sweeps without rewriting coordinates.

use std::fmt;

/// A coordinate axis of the layout plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Axis {
    /// The horizontal axis: variables are x-coordinates of vertical edges.
    X,
    /// The vertical axis: variables are y-coordinates of horizontal edges.
    Y,
}

impl Axis {
    /// Both axes, in the conventional x-then-y sweep order.
    pub const BOTH: [Axis; 2] = [Axis::X, Axis::Y];

    /// The perpendicular axis.
    #[inline]
    pub const fn other(self) -> Axis {
        match self {
            Axis::X => Axis::Y,
            Axis::Y => Axis::X,
        }
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Axis::X => write!(f, "x"),
            Axis::Y => write!(f, "y"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn other_is_involutive() {
        for a in Axis::BOTH {
            assert_ne!(a.other(), a);
            assert_eq!(a.other().other(), a);
        }
    }

    #[test]
    fn display() {
        assert_eq!(Axis::X.to_string(), "x");
        assert_eq!(Axis::Y.to_string(), "y");
    }
}
