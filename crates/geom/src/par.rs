//! Minimal deterministic parallel map over scoped threads.
//!
//! The batch leaf compactor, the hierarchy DAG walk, and the per-layer
//! DRC sweep all fan independent jobs out across cores. The container
//! this repository builds in has no registry access, so instead of
//! `rayon` this module implements the one primitive needed — an
//! order-preserving parallel map — on `std::thread::scope`. Workers
//! claim contiguous index chunks from a shared atomic cursor and write
//! results straight into preallocated per-index slots, so the output is
//! byte-identical to the serial map regardless of scheduling and the
//! hot batch path allocates nothing per item.
//!
//! A panic inside the mapped closure does **not** poison the batch: each
//! item runs under `catch_unwind`, the panic payload is captured as a
//! typed [`WorkerPanic`] for that slot, and every other item still
//! completes. Callers decide whether one bad item fails the batch.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A mapped closure panicked on one item; the rest of the batch is
/// unaffected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Index of the input item whose closure panicked.
    pub index: usize,
    /// The panic payload, when it was a string (the common case).
    pub message: String,
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker panicked on item {}: {}",
            self.index, self.message
        )
    }
}

impl std::error::Error for WorkerPanic {}

fn payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// One output slot, owned by exactly one worker while it runs.
type Slot<R> = Option<Result<R, WorkerPanic>>;

/// A claimable chunk of output slots: base index plus the slot slice.
/// The `Mutex` mediates only the one-time handoff to the claiming
/// worker, never per-item traffic.
type Task<'a, R> = Mutex<Option<(usize, &'a mut [Slot<R>])>>;

fn run_one<T, R, F>(f: &F, item: &T, index: usize) -> Result<R, WorkerPanic>
where
    F: Fn(&T) -> R,
{
    catch_unwind(AssertUnwindSafe(|| f(item))).map_err(|payload| WorkerPanic {
        index,
        message: payload_message(payload),
    })
}

/// Maps `f` over `items` on up to `threads` worker threads, preserving
/// input order in the output.
///
/// `threads == 0` or `threads == 1` (or a single-item input) runs inline
/// with no thread overhead. A panic in `f` yields `Err(WorkerPanic)` in
/// that item's slot instead of unwinding into the caller.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<Result<R, WorkerPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = threads.min(items.len());
    if workers <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| run_one(&f, item, i))
            .collect();
    }

    // Preallocated output: one slot per input index. Each chunk of slots
    // is handed to exactly one worker (claimed through the atomic
    // cursor), so writes are disjoint; the per-chunk `Mutex` only
    // mediates the one-time slice handoff, never per-item traffic.
    let mut slots: Vec<Slot<R>> = (0..items.len()).map(|_| None).collect();
    // More chunks than workers so a slow chunk cannot serialize the
    // batch; chunk claiming costs one atomic op per chunk, not per item.
    let chunk = items.len().div_ceil(workers * 4).max(1);
    let tasks: Vec<Task<'_, R>> = slots
        .chunks_mut(chunk)
        .enumerate()
        .map(|(c, out)| Mutex::new(Some((c * chunk, out))))
        .collect();
    let next = AtomicUsize::new(0);
    // `scope` joins every worker before returning, so every chunk is
    // claimed and every slot below is filled. Workers never unwind out
    // of the loop (each call is caught).
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let next = &next;
            let tasks = &tasks;
            let f = &f;
            scope.spawn(move || loop {
                let c = next.fetch_add(1, Ordering::Relaxed);
                let Some(task) = tasks.get(c) else { break };
                let claimed = match task.lock() {
                    Ok(mut guard) => guard.take(),
                    Err(mut poisoned) => poisoned.get_mut().take(),
                };
                let Some((base, out)) = claimed else { continue };
                for (j, slot) in out.iter_mut().enumerate() {
                    let i = base + j;
                    *slot = Some(run_one(f, &items[i], i));
                }
            });
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| match s {
            Some(r) => r,
            // Unreachable by construction; keep the batch panic-free
            // even if a worker were somehow lost.
            None => Err(WorkerPanic {
                index: i,
                message: "worker produced no result".to_owned(),
            }),
        })
        .collect()
}

/// Worker count for [`Parallelism::Auto`]: the machine's available
/// parallelism (1 when it cannot be determined).
pub fn auto_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// How a batch operation distributes its independent jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// All jobs inline on the calling thread.
    Serial,
    /// One worker per available core.
    #[default]
    Auto,
    /// Exactly this many worker threads.
    Threads(usize),
}

impl Parallelism {
    /// The concrete worker count.
    pub fn threads(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Auto => auto_threads(),
            Parallelism::Threads(n) => n.max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_values<R: std::fmt::Debug>(results: Vec<Result<R, WorkerPanic>>) -> Vec<R> {
        results.into_iter().map(|r| r.unwrap()).collect()
    }

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let serial: Vec<usize> = items.iter().map(|&x| x * x).collect();
        for threads in [1, 2, 4, 9] {
            assert_eq!(ok_values(par_map(&items, threads, |&x| x * x)), serial);
        }
    }

    #[test]
    fn empty_and_single() {
        assert!(par_map(&[] as &[i32], 8, |&x| x).is_empty());
        assert_eq!(ok_values(par_map(&[7], 8, |&x| x + 1)), vec![8]);
    }

    #[test]
    fn parallelism_thread_counts() {
        assert_eq!(Parallelism::Serial.threads(), 1);
        assert_eq!(Parallelism::Threads(3).threads(), 3);
        assert_eq!(Parallelism::Threads(0).threads(), 1);
        assert!(Parallelism::Auto.threads() >= 1);
    }

    #[test]
    fn worker_panic_is_typed_and_isolated() {
        let items: Vec<usize> = (0..8).collect();
        for threads in [1, 4] {
            let results = par_map(&items, threads, |&x| {
                assert!(x != 5, "boom at five");
                x * 10
            });
            assert_eq!(results.len(), 8);
            for (i, r) in results.iter().enumerate() {
                if i == 5 {
                    let err = r.as_ref().unwrap_err();
                    assert_eq!(err.index, 5);
                    assert!(err.message.contains("boom at five"), "{}", err.message);
                    assert!(err.to_string().contains("item 5"));
                } else {
                    assert_eq!(*r, Ok(i * 10));
                }
            }
        }
    }
}
