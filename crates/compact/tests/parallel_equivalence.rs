//! Serial ≡ parallel, pinned by property tests: on every random
//! hierarchy, [`compact_hierarchy`], a persistent [`CompactSession`],
//! and the per-layer DRC sweep must produce **bit-identical** results at
//! `Parallelism::Threads(n)` for n ∈ {1, 2, 4, 9} — geometry, pitches,
//! violation lists, and error classes all match the serial walk exactly.
//!
//! The thread counts deliberately oversubscribe the host (CI runs on
//! 1–4 cores): determinism must come from the merge discipline (DFS
//! reassembly, per-level ordering, index-slot result collection), not
//! from scheduling luck. n = 1 additionally pins that the `Threads`
//! code path itself — not just the serial fast path — is exercised and
//! agrees.

use proptest::prelude::*;
use rsg_compact::backend::BellmanFord;
use rsg_compact::hier::{compact_hierarchy, ChipLayout, HierOptions};
use rsg_compact::incremental::CompactSession;
use rsg_compact::par::Parallelism;
use rsg_geom::{Orientation, Point, Rect};
use rsg_layout::{
    drc, CellDefinition, CellId, CellTable, FlatBox, FlatLayout, Instance, Layer, Technology,
};

/// The worker counts every property is pinned at (1 = forced parallel
/// path with a single worker; 9 = oversubscribed on any CI host).
const THREADS: [usize; 4] = [1, 2, 4, 9];

const LANE_LAYERS: [Layer; 4] = [Layer::Diffusion, Layer::Poly, Layer::Metal1, Layer::Metal2];

/// `(layer index, x offset, width, height)` per lane — clean by
/// construction: lanes stack vertically with an 8-unit gap (≥ every
/// Mead–Conway spacing at λ = 2) and every box is ≥ 8 wide/tall.
type Lanes = Vec<(usize, i64, i64, i64)>;

fn lane_cell(name: &str, lanes: &[(usize, i64, i64, i64)]) -> CellDefinition {
    let mut c = CellDefinition::new(name);
    let mut y = 0;
    for &(layer_idx, x0, w, h) in lanes {
        let layer = LANE_LAYERS[layer_idx % LANE_LAYERS.len()];
        c.add_box(layer, Rect::from_coords(x0, y, x0 + w, y + h));
        y += h + 8;
    }
    c
}

/// A three-level chip with real per-level width: two leaf definitions,
/// one grid block over each, and a top row alternating the blocks. The
/// dependency-level scheduler sees both blocks as one two-wide wave, so
/// every `Threads(n)` run genuinely fans out.
fn chip(lanes_a: &Lanes, lanes_b: &Lanes, nx: i64, ny: i64, blocks: i64) -> (CellTable, CellId) {
    let mut t = CellTable::new();
    let a = lane_cell("leaf_a", lanes_a);
    let b = lane_cell("leaf_b", lanes_b);
    let bb_a = a.local_bbox().rect().expect("non-empty");
    let bb_b = b.local_bbox().rect().expect("non-empty");
    let a_id = t.insert(a).unwrap();
    let b_id = t.insert(b).unwrap();

    let block = |t: &mut CellTable, name: &str, leaf: CellId, bb: Rect| {
        let (px, py) = (bb.hi().x + 8, bb.hi().y + 8);
        let mut blk = CellDefinition::new(name);
        for row in 0..ny {
            for col in 0..nx {
                blk.add_instance(Instance::new(
                    leaf,
                    Point::new(col * px, row * py),
                    Orientation::NORTH,
                ));
            }
        }
        t.insert(blk).unwrap()
    };
    let blk_a = block(&mut t, "block_a", a_id, bb_a);
    let blk_b = block(&mut t, "block_b", b_id, bb_b);

    let width_a = (nx - 1) * (bb_a.hi().x + 8) + bb_a.hi().x;
    let width_b = (nx - 1) * (bb_b.hi().x + 8) + bb_b.hi().x;
    let pitch = width_a.max(width_b) + 8;
    let mut top = CellDefinition::new("chip");
    for k in 0..blocks {
        let id = if k % 2 == 0 { blk_a } else { blk_b };
        top.add_instance(Instance::new(
            id,
            Point::new(k * pitch, 0),
            Orientation::NORTH,
        ));
    }
    let top_id = t.insert(top).unwrap();
    (t, top_id)
}

fn with_threads(n: usize) -> HierOptions {
    HierOptions {
        parallelism: Parallelism::Threads(n),
        ..HierOptions::default()
    }
}

/// `parallel == serial`, bit for bit, on geometry and pitches.
fn assert_same(par: &ChipLayout, serial: &ChipLayout, n: usize) {
    assert_eq!(
        par.cells.len(),
        serial.cells.len(),
        "cell count at {n} threads"
    );
    for ((n_par, o_par), (n_ser, o_ser)) in par.cells.iter().zip(&serial.cells) {
        assert_eq!(n_par, n_ser, "compaction order at {n} threads");
        assert_eq!(
            o_par.cell, o_ser.cell,
            "geometry of `{n_par}` diverged at {n} threads"
        );
        assert_eq!(
            o_par.pitches, o_ser.pitches,
            "pitches of `{n_par}` diverged at {n} threads"
        );
        assert_eq!(o_par.converged, o_ser.converged);
    }
    assert_eq!(
        par.table.require(par.top).unwrap(),
        serial.table.require(serial.top).unwrap(),
        "top definition diverged at {n} threads"
    );
}

fn lanes_strategy(max_lanes: usize) -> impl Strategy<Value = Lanes> {
    proptest::collection::vec((0usize..4, 0i64..6, 8i64..20, 8i64..16), 1..max_lanes + 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The from-scratch walk: `Threads(n)` ≡ `Serial` on random
    /// hierarchies, for every pinned worker count.
    #[test]
    fn parallel_walk_matches_serial_bit_for_bit(
        lanes_a in lanes_strategy(2),
        lanes_b in lanes_strategy(2),
        nx in 1i64..3,
        ny in 1i64..3,
        blocks in 2i64..5,
    ) {
        let tech = Technology::mead_conway(2);
        let solver = BellmanFord::SORTED;
        let (table, top) = chip(&lanes_a, &lanes_b, nx, ny, blocks);

        let serial =
            compact_hierarchy(&table, top, &tech.rules, &solver, &HierOptions::default())
                .unwrap();
        for n in THREADS {
            let par =
                compact_hierarchy(&table, top, &tech.rules, &solver, &with_threads(n)).unwrap();
            assert_same(&par, &serial, n);
        }
    }

    /// The persistent session: `Threads(n)` ≡ `Serial` both cold and
    /// warm. Each session keeps its own cache across an edit, so the
    /// parallel miss/merge path is exercised cold and the cache-replay
    /// path warm — both must reproduce the serial answer bit for bit.
    #[test]
    fn parallel_session_matches_serial_bit_for_bit(
        lanes_a in lanes_strategy(2),
        mut lanes_b in lanes_strategy(2),
        nx in 1i64..3,
        ny in 1i64..3,
        blocks in 2i64..4,
        grow in 8i64..20,
    ) {
        let tech = Technology::mead_conway(2);
        let solver = BellmanFord::SORTED;
        let mut sessions: Vec<(usize, CompactSession)> =
            THREADS.iter().map(|&n| (n, CompactSession::new())).collect();
        let mut serial_session = CompactSession::new();

        // Cold run, then an edit confined to leaf_b, then a no-op replay.
        for step in 0..3 {
            if step == 1 {
                lanes_b[0].2 = grow;
            }
            let (table, top) = chip(&lanes_a, &lanes_b, nx, ny, blocks);
            let serial = serial_session
                .compact_hierarchy(&table, top, &tech.rules, &solver, &HierOptions::default())
                .unwrap();
            for (n, session) in &mut sessions {
                let par = session
                    .compact_hierarchy(&table, top, &tech.rules, &solver, &with_threads(*n))
                    .unwrap();
                assert_same(&par, &serial, *n);
            }
        }
    }

    /// The per-layer DRC sweep: `Threads(n)` ≡ `Serial` on random flat
    /// geometry that is *allowed to be dirty* — the violation lists
    /// (class, layers, boxes, order) must match exactly, not just their
    /// emptiness.
    #[test]
    fn parallel_drc_sweep_matches_serial_bit_for_bit(
        boxes in proptest::collection::vec(
            (0usize..4, 0i64..60, 0i64..60, 1i64..14, 1i64..14),
            1..40,
        ),
    ) {
        let tech = Technology::mead_conway(2);
        let flat = FlatLayout::from_boxes(
            boxes
                .iter()
                .map(|&(layer_idx, x, y, w, h)| FlatBox {
                    layer: LANE_LAYERS[layer_idx % LANE_LAYERS.len()],
                    rect: Rect::from_coords(x, y, x + w, y + h),
                    depth: 0,
                })
                .collect(),
        );
        let serial = drc::check_flat_par(&flat, &tech.rules, Parallelism::Serial);
        prop_assert_eq!(&serial, &drc::check_flat(&flat, &tech.rules));
        for n in THREADS {
            let par = drc::check_flat_par(&flat, &tech.rules, Parallelism::Threads(n));
            prop_assert_eq!(&par, &serial, "DRC sweep diverged at {} threads", n);
        }
    }
}

/// Error classes survive the parallel walk: a recursive hierarchy
/// surfaces as the *same* [`rsg_compact::hier::HierError`] from the
/// serial fast path, every `Threads(n)` walk, and the session — the
/// DFS-minimum failure rule reproduces serial error selection exactly.
#[test]
fn error_classes_match_serial_at_every_parallelism() {
    let tech = Technology::mead_conway(2);
    let solver = BellmanFord::SORTED;

    let mut t = CellTable::new();
    let mut a = CellDefinition::new("a");
    a.add_box(Layer::Poly, Rect::from_coords(0, 0, 8, 8));
    let a_id = t.insert(a).unwrap();
    let mut top = CellDefinition::new("top");
    top.add_instance(Instance::new(a_id, Point::new(0, 0), Orientation::NORTH));
    let top_id = t.insert(top).unwrap();
    // Close the cycle: `a` now instantiates `top`.
    t.get_mut(a_id).unwrap().add_instance(Instance::new(
        top_id,
        Point::new(0, 40),
        Orientation::NORTH,
    ));

    let serial =
        compact_hierarchy(&t, top_id, &tech.rules, &solver, &HierOptions::default()).unwrap_err();
    for n in THREADS {
        let par =
            compact_hierarchy(&t, top_id, &tech.rules, &solver, &with_threads(n)).unwrap_err();
        assert_eq!(par, serial, "walk error diverged at {n} threads");
        let ses = CompactSession::new()
            .compact_hierarchy(&t, top_id, &tech.rules, &solver, &with_threads(n))
            .unwrap_err();
        assert_eq!(ses, serial, "session error diverged at {n} threads");
    }
}
