//! Property tests for the compaction stack: solver soundness/minimality,
//! balanced-mode feasibility, and scanline/DRC agreement.

use proptest::prelude::*;
use rsg_compact::scanline::{generate, Method};
use rsg_compact::solver::{solve, solve_balanced, EdgeOrder};
use rsg_compact::ConstraintSystem;
use rsg_geom::{Axis, Point, Rect};
use rsg_layout::{drc, Layer, Technology};

/// Random feasible difference-constraint systems: chains plus random
/// forward extra edges (forward edges can never create positive cycles).
fn arb_system() -> impl Strategy<Value = ConstraintSystem> {
    (
        2usize..40,
        proptest::collection::vec((0usize..40, 0usize..40, 0i64..20), 0..60),
    )
        .prop_map(|(n, extras)| {
            let mut s = ConstraintSystem::new();
            let vars: Vec<_> = (0..n).map(|k| s.add_var(k as i64 * 7)).collect();
            for w in vars.windows(2) {
                s.require(w[0], w[1], 3);
            }
            for (a, b, w) in extras {
                let (a, b) = (a % n, b % n);
                if a < b {
                    s.require(vars[a], vars[b], w);
                }
            }
            s
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The solution satisfies every constraint and is minimal: each
    /// variable is either 0 or tight against some constraint.
    #[test]
    fn solve_is_sound_and_minimal(sys in arb_system()) {
        let sol = solve(&sys, EdgeOrder::Sorted).unwrap();
        let pos = sol.positions();
        prop_assert!(sys.violations(pos, &[]).is_empty());
        for (v, &x) in pos.iter().enumerate() {
            if x == 0 {
                continue;
            }
            let tight = sys.constraints().iter().any(|c| {
                c.to.index() == v && pos[c.to.index()] - pos[c.from.index()] == c.weight
            });
            prop_assert!(tight, "var {v} at {x} is not tight and not at 0");
        }
    }

    /// Edge order never changes the answer, only the pass count.
    #[test]
    fn order_invariance(sys in arb_system()) {
        let a = solve(&sys, EdgeOrder::Sorted).unwrap();
        let b = solve(&sys, EdgeOrder::Arbitrary).unwrap();
        prop_assert_eq!(a.positions(), b.positions());
    }

    /// Balanced solutions are feasible and never exceed the left-packed
    /// total extent.
    #[test]
    fn balanced_is_feasible(sys in arb_system()) {
        let left = solve(&sys, EdgeOrder::Sorted).unwrap();
        let bal = solve_balanced(&sys).unwrap();
        prop_assert!(sys.violations(bal.positions(), &[]).is_empty());
        let left_max = left.positions().iter().copied().max().unwrap();
        let bal_max = bal.positions().iter().copied().max().unwrap();
        prop_assert!(bal_max <= left_max);
    }

    /// Scanline + solve on random disjoint boxes always yields a layout
    /// the independent DRC accepts.
    #[test]
    fn compaction_output_is_drc_clean(
        seeds in proptest::collection::vec((0i64..20, 0i64..6, 1i64..8, 1i64..10, 0usize..3), 1..12)
    ) {
        // Build well-separated boxes on interacting layers (disjoint rows
        // and columns so the input itself is clean).
        let layers = [Layer::Poly, Layer::Diffusion, Layer::Metal1];
        let boxes: Vec<(Layer, Rect)> = seeds
            .iter()
            .enumerate()
            .map(|(k, &(_x, row, w, h, l))| {
                let lo = Point::new(k as i64 * 40, row * 40);
                (layers[l], Rect::from_origin_size(lo, w + 2, h + 2))
            })
            .collect();
        let tech = Technology::mead_conway(1);
        let (sys, vars) = generate(&boxes, &tech.rules, Method::Visibility, Axis::X);
        let sol = solve(&sys, EdgeOrder::Sorted).unwrap();
        let compacted: Vec<(Layer, Rect)> = boxes
            .iter()
            .zip(&vars)
            .map(|(&(l, r), bv)| {
                (
                    l,
                    Rect::from_coords(
                        sol.position(bv.left),
                        r.lo().y,
                        sol.position(bv.right),
                        r.hi().y,
                    ),
                )
            })
            .collect();
        let violations = drc::check(&compacted, &tech.rules);
        // Width rules may pre-exist in the random input (we preserve
        // widths); only spacing must be clean after compaction.
        let spacing: Vec<_> = violations
            .iter()
            .filter(|v| matches!(v, drc::Violation::Spacing { .. }))
            .collect();
        prop_assert!(spacing.is_empty(), "{spacing:?}");
    }

    /// Compaction never grows the layout.
    #[test]
    fn compaction_never_expands(
        xs in proptest::collection::vec(0i64..500, 2..10)
    ) {
        let boxes: Vec<(Layer, Rect)> = xs
            .iter()
            .map(|&x| (Layer::Metal1, Rect::from_origin_size(Point::new(x * 3, 0), 6, 6)))
            .collect();
        let tech = Technology::mead_conway(2);
        let (sys, vars) = generate(&boxes, &tech.rules, Method::Visibility, Axis::X);
        let sol = solve(&sys, EdgeOrder::Sorted).unwrap();
        let orig_extent = boxes.iter().map(|(_, r)| r.hi().x).max().unwrap()
            - boxes.iter().map(|(_, r)| r.lo().x).min().unwrap();
        let new_extent = vars.iter().map(|v| sol.position(v.right)).max().unwrap()
            - vars.iter().map(|v| sol.position(v.left)).min().unwrap();
        prop_assert!(new_extent <= orig_extent, "{new_extent} > {orig_extent}");
    }
}
