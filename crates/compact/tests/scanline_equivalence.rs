//! Equivalence proptests for the index-backed visibility scan.
//!
//! The hidden-edge test of `scanline::generate` now answers coverage
//! queries from a `GeomIndex` coverage profile instead of rescanning
//! every box and re-decomposing the gap region per candidate pair. The
//! reference below is a faithful re-implementation of the retired
//! per-pair path (the seed's `hidden_between`/`region_covered`); the
//! properties prove both produce the *identical* constraint system —
//! same constraints in the same order, same variables, both axes — on
//! random box soups including zero-area and touching boxes.
//!
//! Generation runs with [`Prune::Keep`]: the reference predates the
//! transitive-reduction prune, so these tests pin the *full* emission.
//! `tests/prune_equivalence.rs` proves the pruned system solves to the
//! same geometry.

use proptest::prelude::*;
use rsg_compact::par::Parallelism;
use rsg_compact::scanline::{generate_with, BoxVars, Method, Prune};
use rsg_compact::ConstraintSystem;
use rsg_geom::{Axis, Point, Rect};
use rsg_layout::{DesignRules, Layer, Technology};

// ---- the retired reference implementation ---------------------------

fn reference_generate(
    boxes: &[(Layer, Rect)],
    rules: &DesignRules,
    axis: Axis,
) -> (ConstraintSystem, Vec<BoxVars>) {
    let mut sys = ConstraintSystem::new_along(axis);
    let vars: Vec<BoxVars> = boxes
        .iter()
        .map(|(_, r)| BoxVars {
            left: sys.add_var(r.lo_along(axis)),
            right: sys.add_var(r.hi_along(axis)),
        })
        .collect();

    // Width preservation.
    for ((_, r), bv) in boxes.iter().zip(&vars) {
        sys.require_exact(bv.left, bv.right, r.extent_along(axis));
    }

    // Connectivity.
    for i in 0..boxes.len() {
        for j in 0..boxes.len() {
            if i == j {
                continue;
            }
            let (la, ra) = boxes[i];
            let (lb, rb) = boxes[j];
            if la != lb || ra.intersect(rb).is_none() || ra.lo_along(axis) > rb.lo_along(axis) {
                continue;
            }
            sys.require_exact(
                vars[i].left,
                vars[j].left,
                rb.lo_along(axis) - ra.lo_along(axis),
            );
        }
    }

    // Spacing with the per-pair hidden-edge rescan.
    for i in 0..boxes.len() {
        for j in 0..boxes.len() {
            if i == j {
                continue;
            }
            let (layer_a, ra) = boxes[i];
            let (layer_b, rb) = boxes[j];
            let Some(spacing) = rules.min_spacing(layer_a, layer_b) else {
                continue;
            };
            if ra.hi_along(axis) > rb.lo_along(axis) {
                continue;
            }
            if ra.lo_across(axis) >= rb.hi_across(axis) || rb.lo_across(axis) >= ra.hi_across(axis)
            {
                continue;
            }
            if layer_a == layer_b && ra.intersect(rb).is_some() {
                continue;
            }
            if reference_hidden_between(boxes, i, j, axis) {
                continue;
            }
            sys.require(vars[i].right, vars[j].left, spacing);
        }
    }
    (sys, vars)
}

fn reference_hidden_between(boxes: &[(Layer, Rect)], i: usize, j: usize, axis: Axis) -> bool {
    let (layer_i, ra) = boxes[i];
    let (layer_j, rb) = boxes[j];
    let c0 = ra.lo_across(axis).max(rb.lo_across(axis));
    let c1 = ra.hi_across(axis).min(rb.hi_across(axis));
    let a0 = ra.hi_along(axis);
    let a1 = rb.lo_along(axis);
    if a0 >= a1 || c0 >= c1 {
        return false;
    }
    let region = Rect::from_spans(axis, (a0, a1), (c0, c1));
    let covers: Vec<Rect> = boxes
        .iter()
        .enumerate()
        .filter(|&(k, &(l, _))| k != i && k != j && (l == layer_i || l == layer_j))
        .filter_map(|(_, &(_, r))| r.intersect(region))
        .filter(|r| r.area() > 0)
        .collect();
    region_covered(region, &covers, axis)
}

fn region_covered(region: Rect, rects: &[Rect], axis: Axis) -> bool {
    let mut cuts: Vec<i64> = rects
        .iter()
        .flat_map(|r| [r.lo_along(axis), r.hi_along(axis)])
        .collect();
    cuts.push(region.lo_along(axis));
    cuts.push(region.hi_along(axis));
    cuts.retain(|&a| a >= region.lo_along(axis) && a <= region.hi_along(axis));
    cuts.sort_unstable();
    cuts.dedup();
    for w in cuts.windows(2) {
        let (s0, s1) = (w[0], w[1]);
        if s0 >= s1 {
            continue;
        }
        let mut ivs: Vec<(i64, i64)> = rects
            .iter()
            .filter(|r| r.lo_along(axis) <= s0 && r.hi_along(axis) >= s1)
            .map(|r| (r.lo_across(axis), r.hi_across(axis)))
            .collect();
        ivs.sort_unstable();
        let mut covered_to = region.lo_across(axis);
        for (lo, hi) in ivs {
            if lo > covered_to {
                return false;
            }
            covered_to = covered_to.max(hi);
        }
        if covered_to < region.hi_across(axis) {
            return false;
        }
    }
    true
}

// ---- the properties --------------------------------------------------

/// Dense soups on a fine grid: zero-extent boxes allowed, heavy overlap
/// and abutment so hidden, partially hidden, and touching pairs all
/// occur (the configurations of Figs 6.4–6.6).
fn arb_boxes() -> impl Strategy<Value = Vec<(Layer, Rect)>> {
    proptest::collection::vec((0i64..24, 0i64..24, 0i64..10, 0i64..10, 0usize..3), 1..18).prop_map(
        |seeds| {
            let layers = [Layer::Poly, Layer::Diffusion, Layer::Metal1];
            seeds
                .into_iter()
                .map(|(x, y, w, h, l)| (layers[l], Rect::from_origin_size(Point::new(x, y), w, h)))
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Visibility generation is constraint-for-constraint identical to
    /// the retired per-pair rescan, on both sweep axes.
    #[test]
    fn visibility_scan_equals_reference(boxes in arb_boxes()) {
        let rules = Technology::mead_conway(2).rules.clone();
        for axis in Axis::BOTH {
            let (new_sys, new_vars) = generate_with(
                &boxes,
                &rules,
                Method::Visibility,
                axis,
                Prune::Keep,
                Parallelism::Serial,
            );
            let (ref_sys, ref_vars) = reference_generate(&boxes, &rules, axis);
            prop_assert_eq!(new_sys.constraints(), ref_sys.constraints(), "{}", axis);
            prop_assert_eq!(new_vars, ref_vars);
            prop_assert_eq!(new_sys.num_vars(), ref_sys.num_vars());
        }
    }
}

/// Directed cases: the exact hidden-edge figures of the paper plus the
/// degenerate shapes (abutting gap, zero-width masking sliver).
#[test]
fn directed_hidden_edge_cases() {
    let rules = Technology::mead_conway(2).rules.clone();
    let cases: Vec<Vec<(Layer, Rect)>> = vec![
        // Fig 6.4: fully masked gap — hidden.
        vec![
            (Layer::Poly, Rect::from_coords(0, 0, 4, 10)),
            (Layer::Poly, Rect::from_coords(4, 0, 20, 10)),
            (Layer::Poly, Rect::from_coords(20, 0, 24, 10)),
        ],
        // Fig 6.6: partial mask — still visible.
        vec![
            (Layer::Poly, Rect::from_coords(0, 0, 4, 20)),
            (Layer::Poly, Rect::from_coords(4, 0, 30, 8)),
            (Layer::Poly, Rect::from_coords(30, 0, 34, 20)),
        ],
        // Mask made of two stacked boxes covering the across range.
        vec![
            (Layer::Poly, Rect::from_coords(0, 0, 4, 10)),
            (Layer::Poly, Rect::from_coords(4, 0, 20, 5)),
            (Layer::Poly, Rect::from_coords(4, 5, 20, 10)),
            (Layer::Poly, Rect::from_coords(20, 0, 24, 10)),
        ],
        // Mask with an interior seam gap — visible through the seam.
        vec![
            (Layer::Poly, Rect::from_coords(0, 0, 4, 10)),
            (Layer::Poly, Rect::from_coords(4, 0, 20, 4)),
            (Layer::Poly, Rect::from_coords(4, 6, 20, 10)),
            (Layer::Poly, Rect::from_coords(20, 0, 24, 10)),
        ],
        // Zero-width sliver in the gap: no masking power.
        vec![
            (Layer::Poly, Rect::from_coords(0, 0, 4, 10)),
            (Layer::Poly, Rect::from_coords(10, 0, 10, 10)),
            (Layer::Poly, Rect::from_coords(20, 0, 24, 10)),
        ],
        // Abutting pair (empty gap) on different layers.
        vec![
            (Layer::Poly, Rect::from_coords(0, 0, 4, 10)),
            (Layer::Diffusion, Rect::from_coords(4, 0, 10, 10)),
        ],
        // Other-layer material never hides a pair.
        vec![
            (Layer::Poly, Rect::from_coords(0, 0, 4, 10)),
            (Layer::Metal1, Rect::from_coords(4, 0, 20, 10)),
            (Layer::Poly, Rect::from_coords(20, 0, 24, 10)),
        ],
    ];
    for (k, boxes) in cases.iter().enumerate() {
        for axis in Axis::BOTH {
            let (new_sys, _) = generate_with(
                boxes,
                &rules,
                Method::Visibility,
                axis,
                Prune::Keep,
                Parallelism::Serial,
            );
            let (ref_sys, _) = reference_generate(boxes, &rules, axis);
            assert_eq!(
                new_sys.constraints(),
                ref_sys.constraints(),
                "case {k}, axis {axis}"
            );
        }
    }
}
