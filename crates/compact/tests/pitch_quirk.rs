//! Regression pin for a known λ-modeling quirk.
//!
//! When two cells share a cross interface but none of their material
//! interacts across it (no spacing rule connects any A-layer to any
//! B-layer in the gap), the pitch variable has *no* lower bound from
//! cross constraints: the cost function drives it straight to 0 — a
//! physically meaningless "stack the cells on top of each other" answer.
//! This is why the hpla AND→OR bridge is declared `FixedX(GRID)` rather
//! than a free pitch.
//!
//! These tests pin the behaviour so a future fix (e.g. a bounding-box
//! floor on cross pitches) shows up as a deliberate test update instead
//! of a silent change.

use rsg_compact::backend::BellmanFord;
use rsg_compact::leaf::{compact, LeafInterface, PitchKind};
use rsg_geom::Rect;
use rsg_layout::{CellDefinition, DesignRules, Layer, Technology};

fn rules() -> DesignRules {
    Technology::mead_conway(2).rules.clone()
}

fn cross_interface(initial: i64) -> LeafInterface {
    LeafInterface {
        cell_a: 0,
        cell_b: 1,
        kind: PitchKind::VariableX { initial, weight: 1 },
        y_offset: 0,
        name: "cross".into(),
    }
}

/// Metal1 and Poly have no spacing rule between them in the Mead–Conway
/// set: the cross interface generates no constraints, so the pitch
/// collapses to 0 (the quirk).
#[test]
fn non_interacting_cross_material_pitch_collapses_to_zero() {
    let mut a = CellDefinition::new("a");
    a.add_box(Layer::Metal1, Rect::from_coords(0, 0, 6, 10));
    let mut b = CellDefinition::new("b");
    b.add_box(Layer::Poly, Rect::from_coords(0, 0, 4, 10));

    let out = compact(
        &[a, b],
        &[cross_interface(40)],
        &rules(),
        &BellmanFord::SORTED,
    )
    .unwrap();
    assert_eq!(
        out.pitches,
        vec![("cross".to_string(), 0)],
        "known quirk: no interacting cross material → pitch solves to 0; \
         if this fails the quirk was fixed — update the hpla bridge \
         (currently FixedX for this reason) and this pin together"
    );
}

/// Control: the same shape of library *with* interacting material keeps
/// a positive pitch — the collapse is specifically the missing-rule case.
#[test]
fn interacting_cross_material_keeps_a_positive_pitch() {
    let mut a = CellDefinition::new("a");
    a.add_box(Layer::Poly, Rect::from_coords(0, 0, 4, 10));
    let mut b = CellDefinition::new("b");
    b.add_box(Layer::Poly, Rect::from_coords(0, 0, 4, 10));

    let out = compact(
        &[a, b],
        &[cross_interface(40)],
        &rules(),
        &BellmanFord::SORTED,
    )
    .unwrap();
    let pitch = out.pitches[0].1;
    // B's poly must clear A's poly by the 2λ rule: pitch ≥ width + spacing.
    assert_eq!(pitch, 8, "poly–poly interface compacts to width+spacing");
}
