//! Regression pin for the (fixed) λ-collapse quirk.
//!
//! When two cells share a cross interface but none of their material
//! interacts across it (no spacing rule connects any A-layer to any
//! B-layer in the gap), the pitch variable used to have *no* lower bound
//! from cross constraints: the cost function drove it straight to 0 — a
//! physically meaningless "stack the cells on top of each other" answer,
//! and the reason the hpla AND→OR bridge was once declared
//! `FixedX(GRID)`.
//!
//! The leaf compactor now clamps every free pitch to the technology's
//! smallest spacing rule (`DesignRules::spacing_floor`), the bridge is a
//! free pitch again, and these tests pin the *fixed* behaviour: a
//! non-interacting cross pitch lands exactly on the floor, and the
//! binding diagnostics show the floor (an origin self-edge) as the only
//! tight pitch constraint.

use rsg_compact::backend::BellmanFord;
use rsg_compact::leaf::{compact, LeafInterface, PitchKind};
use rsg_geom::Rect;
use rsg_layout::{CellDefinition, DesignRules, Layer, Technology};

fn rules() -> DesignRules {
    Technology::mead_conway(2).rules.clone()
}

fn cross_interface(initial: i64) -> LeafInterface {
    LeafInterface {
        cell_a: 0,
        cell_b: 1,
        kind: PitchKind::VariableX { initial, weight: 1 },
        y_offset: 0,
        name: "cross".into(),
    }
}

/// Metal1 and Poly have no spacing rule between them in the Mead–Conway
/// set: the cross interface generates no geometric constraints, so the
/// pitch lands on the technology floor instead of the old collapse to 0.
#[test]
fn non_interacting_cross_material_pitch_clamps_to_the_floor() {
    let mut a = CellDefinition::new("a");
    a.add_box(Layer::Metal1, Rect::from_coords(0, 0, 6, 10));
    let mut b = CellDefinition::new("b");
    b.add_box(Layer::Poly, Rect::from_coords(0, 0, 4, 10));

    let r = rules();
    let floor = r.spacing_floor();
    assert!(floor > 0, "Mead–Conway has a positive smallest spacing");
    let out = compact(&[a, b], &[cross_interface(40)], &r, &BellmanFord::SORTED).unwrap();
    assert_eq!(
        out.pitches,
        vec![("cross".to_string(), floor)],
        "non-interacting cross material clamps to the spacing floor \
         (was the pitch-collapse-to-0 quirk)"
    );
    // The diagnostics confirm nothing geometric pins this pitch: the
    // floor constraint (an origin self-edge) is the only tight one.
    let binding = &out.bindings[0];
    assert_eq!(binding.tight.len(), 1);
    assert_eq!(binding.tight[0].from, binding.tight[0].to);
}

/// The floor scales with the technology, like every other rule.
#[test]
fn floor_tracks_the_technology_scale() {
    for lambda in [1i64, 2, 3] {
        let r = Technology::mead_conway(lambda).rules;
        let mut a = CellDefinition::new("a");
        a.add_box(Layer::Metal1, Rect::from_coords(0, 0, 6, 10));
        let mut b = CellDefinition::new("b");
        b.add_box(Layer::Poly, Rect::from_coords(0, 0, 4, 10));
        let out = compact(&[a, b], &[cross_interface(40)], &r, &BellmanFord::SORTED).unwrap();
        assert_eq!(out.pitches[0].1, r.spacing_floor(), "lambda = {lambda}");
    }
}

/// Control: the same shape of library *with* interacting material keeps
/// its geometry-driven pitch — the floor only matters when no spacing
/// rule reaches across the interface.
#[test]
fn interacting_cross_material_keeps_its_geometric_pitch() {
    let mut a = CellDefinition::new("a");
    a.add_box(Layer::Poly, Rect::from_coords(0, 0, 4, 10));
    let mut b = CellDefinition::new("b");
    b.add_box(Layer::Poly, Rect::from_coords(0, 0, 4, 10));

    let out = compact(
        &[a, b],
        &[cross_interface(40)],
        &rules(),
        &BellmanFord::SORTED,
    )
    .unwrap();
    let pitch = out.pitches[0].1;
    // B's poly must clear A's poly by the 2λ rule: pitch ≥ width + spacing.
    assert_eq!(pitch, 8, "poly–poly interface compacts to width+spacing");
}
