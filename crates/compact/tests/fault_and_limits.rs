//! The fault-injection and resource-budget contracts (PR 7):
//!
//! * An injected fault surfaces as the **same typed error** a real
//!   failure of that kind would produce — callers cannot tell the
//!   difference, so their recovery paths are genuinely exercised.
//! * After any failed session call, a retry without the fault plan is
//!   **bit-identical to a cold run** — the error path leaves no partial
//!   cache entries behind (hygiene), and what it legitimately cached
//!   does not change results (content addressing).
//! * `forget_caches` (amnesia) forces every cache to miss while the
//!   output stays bit-identical — the caches are a pure speedup.
//! * [`Limits`] trip deterministically: the same budget on the same
//!   input produces the same [`Exhausted`] report, run after run, and
//!   a generous budget changes nothing.

use proptest::prelude::*;
use rsg_compact::backend::BellmanFord;
use rsg_compact::fault::FaultPlan;
use rsg_compact::hier::{compact_hierarchy, ChipLayout, HierError, HierOptions};
use rsg_compact::incremental::CompactSession;
use rsg_compact::limits::{Limits, Resource};
use rsg_geom::{Orientation, Point, Rect};
use rsg_layout::{CellDefinition, CellId, CellTable, Instance, Layer, Technology};

/// A two-level chip: a leaf with a few clean lanes, one `nx × ny` block
/// of it, and a top row of `blocks` block instances.
fn chip(nx: i64, ny: i64, blocks: i64) -> (CellTable, CellId) {
    let mut t = CellTable::new();
    let mut leaf = CellDefinition::new("leaf");
    leaf.add_box(Layer::Diffusion, Rect::from_coords(0, 0, 12, 8));
    leaf.add_box(Layer::Poly, Rect::from_coords(0, 16, 10, 24));
    leaf.add_box(Layer::Metal1, Rect::from_coords(0, 32, 14, 40));
    let leaf_id = t.insert(leaf).unwrap();
    let mut blk = CellDefinition::new("block");
    for row in 0..ny {
        for col in 0..nx {
            blk.add_instance(Instance::new(
                leaf_id,
                Point::new(col * 22, row * 48),
                Orientation::NORTH,
            ));
        }
    }
    let blk_id = t.insert(blk).unwrap();
    let mut top = CellDefinition::new("chip");
    let pitch = (nx - 1) * 22 + 14 + 8;
    for k in 0..blocks {
        top.add_instance(Instance::new(
            blk_id,
            Point::new(k * pitch, 0),
            Orientation::NORTH,
        ));
    }
    let top_id = t.insert(top).unwrap();
    (t, top_id)
}

fn assert_same(a: &ChipLayout, b: &ChipLayout) {
    assert_eq!(a.cells.len(), b.cells.len());
    for ((na, oa), (nb, ob)) in a.cells.iter().zip(&b.cells) {
        assert_eq!(na, nb);
        assert_eq!(oa.cell, ob.cell, "geometry of `{na}` diverged");
        assert_eq!(oa.pitches, ob.pitches, "pitches of `{na}` diverged");
    }
}

#[test]
fn injected_faults_surface_as_their_real_error_kinds() {
    let tech = Technology::mead_conway(2);
    let solver = BellmanFord::SORTED;
    let opts = HierOptions::default();
    let (table, top) = chip(3, 2, 2);

    let mut session = CompactSession::new();
    session.set_fault_plan(Some(FaultPlan::fail_solve(0)));
    match session.compact_hierarchy(&table, top, &tech.rules, &solver, &opts) {
        Err(HierError::Infeasible(m)) => assert!(m.contains("injected"), "{m}"),
        other => panic!("expected injected infeasibility, got {other:?}"),
    }

    session.set_fault_plan(Some(FaultPlan::diverge(0)));
    match session.compact_hierarchy(&table, top, &tech.rules, &solver, &opts) {
        Err(HierError::Diverged(m)) => assert!(m.contains("injected"), "{m}"),
        other => panic!("expected injected divergence, got {other:?}"),
    }

    session.set_fault_plan(Some(FaultPlan::exhaust(0)));
    match session.compact_hierarchy(&table, top, &tech.rules, &solver, &opts) {
        Err(HierError::Exhausted(e)) => assert_eq!(e.resource, Resource::Injected),
        other => panic!("expected injected exhaustion, got {other:?}"),
    }
}

#[test]
fn amnesia_mode_is_bit_identical_to_cold() {
    let tech = Technology::mead_conway(2);
    let solver = BellmanFord::SORTED;
    let opts = HierOptions::default();
    let (table, top) = chip(4, 3, 3);

    let cold = compact_hierarchy(&table, top, &tech.rules, &solver, &opts).unwrap();

    // Prime a session, then force every cache lookup to miss: the replay
    // machinery is bypassed entirely, the answer must not move.
    let mut session = CompactSession::new();
    session
        .compact_hierarchy(&table, top, &tech.rules, &solver, &opts)
        .unwrap();
    session.set_fault_plan(Some(FaultPlan::amnesia()));
    let amnesiac = session
        .compact_hierarchy(&table, top, &tech.rules, &solver, &opts)
        .unwrap();
    assert_same(&amnesiac, &cold);
}

#[test]
fn flat_box_budget_trips_deterministically() {
    let tech = Technology::mead_conway(2);
    let solver = BellmanFord::SORTED;
    let (table, top) = chip(4, 3, 3);
    let mut opts = HierOptions::default();
    opts.limits.max_flat_boxes = Some(5);

    let run = || compact_hierarchy(&table, top, &tech.rules, &solver, &opts);
    let first = run().unwrap_err();
    let second = run().unwrap_err();
    assert_eq!(first, second, "budget reports must be deterministic");
    match first {
        HierError::Exhausted(e) => {
            assert_eq!(e.resource, Resource::FlatBoxes);
            assert_eq!(e.limit, 5);
            assert!(e.observed > 5);
        }
        other => panic!("expected exhaustion, got {other:?}"),
    }

    // A budget the input fits under changes nothing.
    let roomy = HierOptions {
        limits: Limits {
            max_flat_boxes: Some(1 << 40),
            max_constraints: Some(1 << 40),
            max_solve_passes: Some(1 << 20),
            deadline: None,
        },
        ..HierOptions::default()
    };
    let bounded = compact_hierarchy(&table, top, &tech.rules, &solver, &roomy).unwrap();
    let unbounded =
        compact_hierarchy(&table, top, &tech.rules, &solver, &HierOptions::default()).unwrap();
    assert_same(&bounded, &unbounded);
}

#[test]
fn constraint_and_pass_budgets_trip_with_their_own_resource() {
    let tech = Technology::mead_conway(2);
    let solver = BellmanFord::SORTED;
    let (table, top) = chip(4, 3, 2);

    let mut opts = HierOptions::default();
    opts.limits.max_constraints = Some(1);
    match compact_hierarchy(&table, top, &tech.rules, &solver, &opts) {
        Err(HierError::Exhausted(e)) => assert_eq!(e.resource, Resource::Constraints),
        other => panic!("expected constraint exhaustion, got {other:?}"),
    }

    let mut opts = HierOptions::default();
    opts.limits.max_solve_passes = Some(0);
    match compact_hierarchy(&table, top, &tech.rules, &solver, &opts) {
        Err(HierError::Exhausted(e)) => assert_eq!(e.resource, Resource::SolvePasses),
        other => panic!("expected pass exhaustion, got {other:?}"),
    }
}

#[test]
fn session_under_budget_error_recovers_bit_identically() {
    // The budget error path runs through the session's abandon() hygiene:
    // failing with a tight budget, then retrying with the budget lifted,
    // must match a cold run of the lifted configuration.
    let tech = Technology::mead_conway(2);
    let solver = BellmanFord::SORTED;
    let (table, top) = chip(4, 3, 3);

    let mut tight = HierOptions::default();
    tight.limits.max_flat_boxes = Some(5);
    let open = HierOptions::default();

    let mut session = CompactSession::new();
    session
        .compact_hierarchy(&table, top, &tech.rules, &solver, &tight)
        .unwrap_err();
    let retry = session
        .compact_hierarchy(&table, top, &tech.rules, &solver, &open)
        .unwrap();
    let cold = compact_hierarchy(&table, top, &tech.rules, &solver, &open).unwrap();
    assert_same(&retry, &cold);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Anywhere a fault lands — any site, any count, primed or cold
    /// session — the call either succeeds (the counter never reached the
    /// site) or fails typed; and the retry without the plan is
    /// bit-identical to a cold compaction.
    #[test]
    fn retry_after_any_injected_fault_matches_cold(
        site in 0usize..3,
        at in 0u64..12,
        primed in (0u8..2).prop_map(|b| b == 1),
        nx in 2i64..5,
        blocks in 1i64..4,
    ) {
        let tech = Technology::mead_conway(2);
        let solver = BellmanFord::SORTED;
        let opts = HierOptions::default();
        let (table, top) = chip(nx, 2, blocks);

        let cold = compact_hierarchy(&table, top, &tech.rules, &solver, &opts).unwrap();

        let mut session = CompactSession::new();
        if primed {
            session.compact_hierarchy(&table, top, &tech.rules, &solver, &opts).unwrap();
        }
        let plan = match site {
            0 => FaultPlan::fail_solve(at),
            1 => FaultPlan::diverge(at),
            _ => FaultPlan::exhaust(at),
        };
        session.set_fault_plan(Some(plan));
        match session.compact_hierarchy(&table, top, &tech.rules, &solver, &opts) {
            Ok(out) => assert_same(&out, &cold), // counter never hit the site
            Err(
                HierError::Infeasible(_)
                | HierError::Diverged(_)
                | HierError::Exhausted(_),
            ) => {}
            Err(other) => panic!("fault leaked as the wrong kind: {other:?}"),
        }

        session.set_fault_plan(None);
        let retry = session
            .compact_hierarchy(&table, top, &tech.rules, &solver, &opts)
            .unwrap();
        assert_same(&retry, &cold);
    }
}
