//! The incremental session's contract, pinned by property tests: on
//! every input of a random **edit sequence** — grow/shrink a box, move a
//! box, swap a whole leaf definition — a persistent
//! [`CompactSession`] returns **bit-identical geometry and pitches** to
//! the from-scratch [`compact_hierarchy`] on the same table, and the
//! result stays DRC-clean under the independent flat referee.
//!
//! A regression lane checks the *point* of the session: an edit confined
//! to one leaf leaves the sibling block's cached outcome and abstracts
//! untouched (cache-hit counters say so), and a no-op edit is a pure
//! replay — zero recompactions, zero abstracts derived, zero constraints
//! emitted.

use proptest::prelude::*;
use rsg_compact::backend::BellmanFord;
use rsg_compact::hier::{compact_hierarchy, ChipLayout, HierOptions};
use rsg_compact::incremental::CompactSession;
use rsg_geom::{Orientation, Point, Rect};
use rsg_layout::{drc, flatten, CellDefinition, CellId, CellTable, Instance, Layer, Technology};

const LANE_LAYERS: [Layer; 4] = [Layer::Diffusion, Layer::Poly, Layer::Metal1, Layer::Metal2];

/// `(layer index, x offset, width, height)` per lane — clean by
/// construction: lanes stack vertically with an 8-unit gap (≥ every
/// Mead–Conway spacing at λ = 2) and every box is ≥ 8 wide/tall.
type Lanes = Vec<(usize, i64, i64, i64)>;

fn lane_cell(name: &str, lanes: &[(usize, i64, i64, i64)]) -> CellDefinition {
    let mut c = CellDefinition::new(name);
    let mut y = 0;
    for &(layer_idx, x0, w, h) in lanes {
        let layer = LANE_LAYERS[layer_idx % LANE_LAYERS.len()];
        c.add_box(layer, Rect::from_coords(x0, y, x0 + w, y + h));
        y += h + 8;
    }
    c
}

/// A three-level chip: two leaf definitions, one grid block over each,
/// and a top row alternating the blocks — enough hierarchy for an edit
/// in `leaf_a` to be invisible from `block_b`.
fn chip(lanes_a: &Lanes, lanes_b: &Lanes, nx: i64, ny: i64, blocks: i64) -> (CellTable, CellId) {
    let mut t = CellTable::new();
    let a = lane_cell("leaf_a", lanes_a);
    let b = lane_cell("leaf_b", lanes_b);
    let bb_a = a.local_bbox().rect().expect("non-empty");
    let bb_b = b.local_bbox().rect().expect("non-empty");
    let a_id = t.insert(a).unwrap();
    let b_id = t.insert(b).unwrap();

    let block = |t: &mut CellTable, name: &str, leaf: CellId, bb: Rect| {
        let (px, py) = (bb.hi().x + 8, bb.hi().y + 8);
        let mut blk = CellDefinition::new(name);
        for row in 0..ny {
            for col in 0..nx {
                blk.add_instance(Instance::new(
                    leaf,
                    Point::new(col * px, row * py),
                    Orientation::NORTH,
                ));
            }
        }
        t.insert(blk).unwrap()
    };
    let blk_a = block(&mut t, "block_a", a_id, bb_a);
    let blk_b = block(&mut t, "block_b", b_id, bb_b);

    let width_a = (nx - 1) * (bb_a.hi().x + 8) + bb_a.hi().x;
    let width_b = (nx - 1) * (bb_b.hi().x + 8) + bb_b.hi().x;
    let pitch = width_a.max(width_b) + 8;
    let mut top = CellDefinition::new("chip");
    for k in 0..blocks {
        let id = if k % 2 == 0 { blk_a } else { blk_b };
        top.add_instance(Instance::new(
            id,
            Point::new(k * pitch, 0),
            Orientation::NORTH,
        ));
    }
    let top_id = t.insert(top).unwrap();
    (t, top_id)
}

/// One edit step: `target` picks the leaf, `kind` the mutation.
/// All mutations stay within the clean-by-construction envelope.
fn apply_edit(lanes: &mut Lanes, kind: u64, lane: usize, x: i64, w: i64, fresh: &Lanes) {
    let k = lane % lanes.len();
    match kind % 3 {
        0 => lanes[k].2 = w,         // grow/shrink the box
        1 => lanes[k].1 = x,         // move the box sideways
        _ => *lanes = fresh.clone(), // swap the whole definition
    }
}

/// `incremental == cold`, bit for bit, on geometry and pitches.
fn assert_same(inc: &ChipLayout, cold: &ChipLayout) {
    assert_eq!(inc.cells.len(), cold.cells.len(), "assembly cell count");
    for ((n_inc, o_inc), (n_cold, o_cold)) in inc.cells.iter().zip(&cold.cells) {
        assert_eq!(n_inc, n_cold, "compaction order");
        assert_eq!(o_inc.cell, o_cold.cell, "geometry of `{n_inc}` diverged");
        assert_eq!(
            o_inc.pitches, o_cold.pitches,
            "pitches of `{n_inc}` diverged"
        );
        assert!(o_inc.converged && o_cold.converged);
    }
}

fn check_sequence(
    mut lanes_a: Lanes,
    mut lanes_b: Lanes,
    nx: i64,
    ny: i64,
    blocks: i64,
    edits: &[(u64, u64, usize, i64, i64, Lanes)],
) {
    let tech = Technology::mead_conway(2);
    let solver = BellmanFord::SORTED;
    let opts = HierOptions::default();
    let mut session = CompactSession::new();

    // The initial state plus one state per edit.
    for step in 0..=edits.len() {
        if step > 0 {
            let (target, kind, lane, x, w, ref fresh) = edits[step - 1];
            let lanes = if target % 2 == 0 {
                &mut lanes_a
            } else {
                &mut lanes_b
            };
            apply_edit(lanes, kind, lane, x, w, fresh);
        }
        let (table, top) = chip(&lanes_a, &lanes_b, nx, ny, blocks);
        prop_assert!(
            drc::check_flat(&flatten(&table, top).unwrap(), &tech.rules).is_empty(),
            "generator produced a dirty input"
        );

        let cold = compact_hierarchy(&table, top, &tech.rules, &solver, &opts).unwrap();
        let inc = session
            .compact_hierarchy(&table, top, &tech.rules, &solver, &opts)
            .unwrap();
        assert_same(&inc, &cold);

        // And the shared result is clean under the flat referee.
        let flat = flatten(&inc.table, inc.top).unwrap();
        let v = drc::check_flat(&flat, &tech.rules);
        prop_assert!(v.is_empty(), "incremental result violates rules: {v:?}");
    }
}

fn lanes_strategy(max_lanes: usize) -> impl Strategy<Value = Lanes> {
    proptest::collection::vec((0usize..4, 0i64..6, 8i64..20, 8i64..16), 1..max_lanes + 1)
}

fn edit_strategy() -> impl Strategy<Value = (u64, u64, usize, i64, i64, Lanes)> {
    (
        0u64..2,
        0u64..3,
        0usize..4,
        0i64..6,
        8i64..20,
        lanes_strategy(2),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn edit_sequences_match_cold_bit_for_bit(
        lanes_a in lanes_strategy(2),
        lanes_b in lanes_strategy(2),
        nx in 1i64..3,
        ny in 1i64..3,
        blocks in 2i64..4,
        edits in proptest::collection::vec(edit_strategy(), 1..4),
    ) {
        check_sequence(lanes_a, lanes_b, nx, ny, blocks, &edits);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    #[ignore = "slow lane: longer edit sequences on bigger grids (CI runs it separately)"]
    fn long_edit_sequences_match_cold(
        lanes_a in lanes_strategy(3),
        lanes_b in lanes_strategy(3),
        nx in 1i64..4,
        ny in 1i64..4,
        blocks in 2i64..5,
        edits in proptest::collection::vec(edit_strategy(), 3..7),
    ) {
        check_sequence(lanes_a, lanes_b, nx, ny, blocks, &edits);
    }
}

/// A one-leaf edit must leave the *other* block's cached outcome and
/// abstracts untouched: only the edited block and the top re-run.
#[test]
fn one_leaf_edit_leaves_sibling_cache_untouched() {
    let tech = Technology::mead_conway(2);
    let solver = BellmanFord::SORTED;
    let opts = HierOptions::default();
    let lanes_a: Lanes = vec![(1, 0, 10, 8), (2, 2, 12, 10)];
    let mut lanes_b: Lanes = vec![(0, 1, 14, 8)];

    let mut session = CompactSession::new();
    let (table, top) = chip(&lanes_a, &lanes_b, 2, 2, 3);
    session
        .compact_hierarchy(&table, top, &tech.rules, &solver, &opts)
        .unwrap();
    let cold_stats = session.last_stats();
    assert_eq!(cold_stats.cells_seen, 3, "block_a, block_b, chip");
    assert_eq!(
        cold_stats.cells_compacted, 3,
        "cold run compacts everything"
    );

    // Edit leaf_b only: block_b and chip re-run, block_a replays.
    lanes_b[0].2 = 11;
    let (table, top) = chip(&lanes_a, &lanes_b, 2, 2, 3);
    let inc = session
        .compact_hierarchy(&table, top, &tech.rules, &solver, &opts)
        .unwrap();
    let stats = session.last_stats();
    assert_eq!(stats.cells_compacted, 2, "only block_b and chip re-run");
    assert_eq!(stats.cell_hits, 1, "block_a replays from the cache");
    // block_a's leaf_a abstract was already cached; only leaf_b's (and
    // the blocks' own, for the top) get re-derived.
    assert!(
        stats.abstract_hits > 0,
        "unchanged abstracts must come from the cache"
    );

    // And the replay is still the from-scratch answer.
    let cold = compact_hierarchy(&table, top, &tech.rules, &solver, &opts).unwrap();
    assert_same(&inc, &cold);

    // No-op edit: recompacting the same input is a pure cache replay.
    let before = session.stats();
    let noop = session
        .compact_hierarchy(&table, top, &tech.rules, &solver, &opts)
        .unwrap();
    let stats = session.last_stats();
    assert_eq!(stats.cells_compacted, 0, "no-op edit recompacts nothing");
    assert_eq!(stats.cell_hits, 3);
    assert_eq!(stats.abstracts_derived, 0, "no-op edit re-flattens nothing");
    assert_eq!(stats.constraints_emitted, 0, "no-op edit re-emits nothing");
    assert_eq!(stats.sweeps_solved, 0);
    assert_eq!(session.stats().calls, before.calls + 1);
    assert_same(&noop, &cold);
}

/// Failure classes match the cold path: a recursive hierarchy surfaces
/// as the same [`rsg_compact::hier::HierError`] from both flows.
#[test]
fn error_classes_match_cold() {
    let tech = Technology::mead_conway(2);
    let solver = BellmanFord::SORTED;
    let opts = HierOptions::default();

    let mut t = CellTable::new();
    let mut a = CellDefinition::new("a");
    a.add_box(Layer::Poly, Rect::from_coords(0, 0, 8, 8));
    let a_id = t.insert(a).unwrap();
    let mut top = CellDefinition::new("top");
    top.add_instance(Instance::new(a_id, Point::new(0, 0), Orientation::NORTH));
    let top_id = t.insert(top).unwrap();
    // Close the cycle: `a` now instantiates `top`.
    t.get_mut(a_id).unwrap().add_instance(Instance::new(
        top_id,
        Point::new(0, 40),
        Orientation::NORTH,
    ));

    let cold = compact_hierarchy(&t, top_id, &tech.rules, &solver, &opts);
    let inc = CompactSession::new().compact_hierarchy(&t, top_id, &tech.rules, &solver, &opts);
    assert!(cold.is_err());
    assert_eq!(inc.unwrap_err(), cold.unwrap_err());
}
