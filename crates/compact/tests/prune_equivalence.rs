//! Solution-identity proptests for the transitive-reduction prune.
//!
//! The pruned generators drop spacing edges implied by tighter two-hop
//! chains (see DESIGN.md, "Constraint pruning + sweep arenas"), so the
//! constraint *lists* differ from the full emission — the claim is that
//! the *solutions* do not. These properties pin that claim bit-for-bit
//! on random layouts:
//!
//! * flat: `Prune::Apply` and `Prune::Keep` systems solve to identical
//!   positions on both sweep axes (and fail identically when they fail),
//! * leaf: pruned and unpruned library compaction agree on every cell,
//!   pitch, *and* [`PitchBinding`] diagnostic,
//! * hier: `HierOptions { prune }` toggled on/off yields identical
//!   geometry and pitch classes for every assembly cell,
//! * plus the headline regression: the 8×8 tiled-array constraint count
//!   drops ≥ 30% below the recorded full-emission 1568.

use proptest::prelude::*;
use rsg_compact::backend::BellmanFord;
use rsg_compact::hier::{compact_hierarchy, HierOptions};
use rsg_compact::leaf::{compact_limited_par, compact_limited_unpruned, LeafInterface, PitchKind};
use rsg_compact::limits::Limits;
use rsg_compact::par::Parallelism;
use rsg_compact::scanline::{generate_with, Method, Prune};
use rsg_compact::solver::{solve, EdgeOrder};
use rsg_geom::{Axis, Orientation, Point, Rect, Vector};
use rsg_layout::{CellDefinition, CellTable, Instance, Layer, Technology};

const LAYERS: [Layer; 3] = [Layer::Poly, Layer::Diffusion, Layer::Metal1];

/// Dense random soups: heavy overlap and abutment so chains, hidden
/// pairs, and duplicate-weld candidates all occur.
fn arb_boxes() -> impl Strategy<Value = Vec<(Layer, Rect)>> {
    proptest::collection::vec((0i64..40, 0i64..24, 0i64..12, 0i64..10, 0usize..3), 1..20).prop_map(
        |seeds| {
            seeds
                .into_iter()
                .map(|(x, y, w, h, l)| (LAYERS[l], Rect::from_origin_size(Point::new(x, y), w, h)))
                .collect()
        },
    )
}

/// Stacked-lane cells, clean by construction (the parallel-equivalence
/// recipe): every lane is wide enough and gapped enough to satisfy the
/// λ = 2 Mead–Conway rules, so leaf/hier compaction always succeeds and
/// the property measures equivalence, not feasibility luck.
fn lane_cell(name: &str, lanes: &[(usize, i64, i64, i64)]) -> CellDefinition {
    let mut c = CellDefinition::new(name);
    let mut y = 0;
    for &(layer_idx, x0, w, h) in lanes {
        c.add_box(
            LAYERS[layer_idx % LAYERS.len()],
            Rect::from_coords(x0, y, x0 + w, y + h),
        );
        y += h + 8;
    }
    c
}

fn arb_lanes() -> impl Strategy<Value = Vec<(usize, i64, i64, i64)>> {
    proptest::collection::vec((0usize..3, 0i64..12, 8i64..20, 8i64..14), 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Flat: the pruned system never has more constraints and solves to
    /// exactly the same positions as the full emission, both axes.
    #[test]
    fn pruned_flat_generation_solves_identically(boxes in arb_boxes()) {
        let rules = Technology::mead_conway(2).rules.clone();
        for axis in Axis::BOTH {
            let (full, vars_full) = generate_with(
                &boxes, &rules, Method::Visibility, axis, Prune::Keep, Parallelism::Serial,
            );
            let (pruned, vars_pruned) = generate_with(
                &boxes, &rules, Method::Visibility, axis, Prune::Apply, Parallelism::Serial,
            );
            prop_assert_eq!(&vars_full, &vars_pruned);
            prop_assert!(pruned.constraints().len() <= full.constraints().len());
            let sol_full = solve(&full, EdgeOrder::Sorted);
            let sol_pruned = solve(&pruned, EdgeOrder::Sorted);
            match (sol_full, sol_pruned) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(a.positions(), b.positions(), "{}", axis);
                }
                (a, b) => prop_assert_eq!(
                    a.is_err(), b.is_err(),
                    "feasibility verdicts diverged on {}", axis
                ),
            }
        }
    }

    /// Leaf: pruned vs full intra-cell emission — identical compacted
    /// cells, pitches, unknowns, and `PitchBinding` diagnostics.
    #[test]
    fn pruned_leaf_compaction_matches_unpruned(
        lanes_a in arb_lanes(),
        lanes_b in arb_lanes(),
        initial in 40i64..80,
    ) {
        let rules = Technology::mead_conway(2).rules.clone();
        let cells = [lane_cell("a", &lanes_a), lane_cell("b", &lanes_b)];
        let interfaces = [
            LeafInterface {
                cell_a: 0,
                cell_b: 1,
                kind: PitchKind::VariableX { initial, weight: 4 },
                y_offset: 0,
                name: "ab".into(),
            },
            LeafInterface {
                cell_a: 0,
                cell_b: 0,
                kind: PitchKind::FixedX(0),
                y_offset: 10,
                name: "aa".into(),
            },
        ];
        let pruned = compact_limited_par(
            &cells, &interfaces, &rules, &BellmanFord::SORTED, &Limits::NONE,
            Parallelism::Serial,
        );
        let full = compact_limited_unpruned(
            &cells, &interfaces, &rules, &BellmanFord::SORTED, &Limits::NONE,
            Parallelism::Serial,
        );
        match (pruned, full) {
            (Ok(p), Ok(f)) => {
                prop_assert_eq!(&p.cells, &f.cells);
                prop_assert_eq!(&p.pitches, &f.pitches);
                prop_assert_eq!(&p.bindings, &f.bindings, "PitchBindings diverged");
                prop_assert_eq!(p.unknowns, f.unknowns);
                prop_assert!(p.constraints <= f.constraints);
            }
            (p, f) => prop_assert_eq!(p.is_err(), f.is_err()),
        }
    }

    /// Hier: toggling `HierOptions::prune` changes nothing observable —
    /// geometry, pitch classes, convergence, and the final table agree
    /// for every assembly cell.
    #[test]
    fn pruned_hier_compaction_matches_unpruned(
        lanes in arb_lanes(),
        nx in 1i64..4,
        ny in 1i64..3,
    ) {
        let rules = Technology::mead_conway(2).rules.clone();
        let mut table = CellTable::new();
        let leaf = lane_cell("leaf", &lanes);
        let bb = leaf.local_bbox().rect().expect("non-empty leaf");
        let leaf_id = table.insert(leaf).expect("insert leaf");
        let (px, py) = (bb.hi().x + 8, bb.hi().y + 8);
        let mut asm = CellDefinition::new("asm");
        for row in 0..ny {
            for col in 0..nx {
                asm.add_instance(Instance::new(
                    leaf_id,
                    Point::new(col * px, row * py),
                    Orientation::NORTH,
                ));
            }
        }
        let top = table.insert(asm).expect("insert asm");

        let on = compact_hierarchy(
            &table, top, &rules, &BellmanFord::SORTED,
            &HierOptions { prune: true, ..HierOptions::default() },
        );
        let off = compact_hierarchy(
            &table, top, &rules, &BellmanFord::SORTED,
            &HierOptions { prune: false, ..HierOptions::default() },
        );
        match (on, off) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.cells.len(), b.cells.len());
                for ((name_a, out_a), (name_b, out_b)) in a.cells.iter().zip(&b.cells) {
                    prop_assert_eq!(name_a, name_b);
                    prop_assert_eq!(&out_a.cell, &out_b.cell, "geometry diverged");
                    prop_assert_eq!(&out_a.pitches, &out_b.pitches, "pitches diverged");
                    prop_assert_eq!(out_a.converged, out_b.converged);
                }
                prop_assert_eq!(
                    a.table.require(a.top).expect("top exists"),
                    b.table.require(b.top).expect("top exists")
                );
            }
            (a, b) => prop_assert_eq!(a.is_err(), b.is_err()),
        }
    }
}

/// Prune soundness at the edge of the coordinate budget: boxes spread
/// across nearly the full ±[`rsg_geom::MAX_COORD`] span produce spacing
/// weights of ~2³¹, the largest any in-budget layout can emit. The
/// dominance test now uses `checked_add` — a chain sum that overflows
/// compares as "cannot prove dominance" and the direct edge is kept —
/// so pruned and full emission must still solve identically out here,
/// where a saturating comparison would be closest to lying.
#[test]
fn prune_is_sound_at_the_coordinate_budget_edge() {
    let rules = Technology::mead_conway(2).rules.clone();
    let m = rsg_geom::MAX_COORD;
    // A chain i → k → j spanning the whole budget, plus abutting
    // material near each end so chains, hidden pairs, and same-layer
    // spacings all occur at extreme coordinates.
    let boxes = vec![
        (Layer::Poly, Rect::from_coords(-m, -m, -m + 40, -m + 60)),
        (
            Layer::Poly,
            Rect::from_coords(-m + 12, -m + 4, -m + 90, -m + 34),
        ),
        (
            Layer::Metal1,
            Rect::from_coords(-m + 2, -m + 2, -m + 50, -m + 26),
        ),
        (Layer::Poly, Rect::from_coords(-60, -30, -20, 30)),
        (Layer::Metal1, Rect::from_coords(-40, -10, 40, 14)),
        (
            Layer::Poly,
            Rect::from_coords(m - 80, m - 70, m - 30, m - 20),
        ),
        (
            Layer::Diffusion,
            Rect::from_coords(m - 64, m - 90, m - 10, m - 44),
        ),
        (Layer::Metal1, Rect::from_coords(m - 100, m - 40, m - 60, m)),
    ];
    for axis in Axis::BOTH {
        let (full, vars_full) = generate_with(
            &boxes,
            &rules,
            Method::Visibility,
            axis,
            Prune::Keep,
            Parallelism::Serial,
        );
        let (pruned, vars_pruned) = generate_with(
            &boxes,
            &rules,
            Method::Visibility,
            axis,
            Prune::Apply,
            Parallelism::Serial,
        );
        assert_eq!(vars_full, vars_pruned);
        assert!(pruned.constraints().len() <= full.constraints().len());
        let sol_full = solve(&full, EdgeOrder::Sorted);
        let sol_pruned = solve(&pruned, EdgeOrder::Sorted);
        match (sol_full, sol_pruned) {
            (Ok(a), Ok(b)) => assert_eq!(
                a.positions(),
                b.positions(),
                "budget-edge packing diverged on {axis}"
            ),
            (a, b) => assert_eq!(
                a.is_err(),
                b.is_err(),
                "budget-edge feasibility verdicts diverged on {axis}"
            ),
        }
    }
}

/// The E13 bench cell tiled n×n at its sample pitch — the layout behind
/// the recorded `flat_tiled_array` counts in BENCH_compaction.json.
fn tiled(n: usize) -> Vec<(Layer, Rect)> {
    let bars = [
        (Layer::Poly, Rect::from_coords(2, 0, 8, 30)),
        (Layer::Metal1, Rect::from_coords(16, 5, 28, 25)),
        (Layer::Poly, Rect::from_coords(34, 0, 38, 30)),
    ];
    let mut out = Vec::new();
    for row in 0..n as i64 {
        for col in 0..n as i64 {
            let shift = Vector::new(col * 48, row * 36);
            for (l, r) in bars {
                out.push((l, r.translate(shift)));
            }
        }
    }
    out
}

/// Headline regression: on the recorded 8×8 tiled array the full
/// emission is still exactly 1568 constraints, the pruned emission cuts
/// that by at least 30%, and both solve to the same packing.
#[test]
fn tiled_8x8_constraint_count_drops_at_least_30_percent() {
    let rules = Technology::mead_conway(2).rules.clone();
    let boxes = tiled(8);
    let (full, _) = generate_with(
        &boxes,
        &rules,
        Method::Visibility,
        Axis::X,
        Prune::Keep,
        Parallelism::Serial,
    );
    let (pruned, _) = generate_with(
        &boxes,
        &rules,
        Method::Visibility,
        Axis::X,
        Prune::Apply,
        Parallelism::Serial,
    );
    assert_eq!(
        full.constraints().len(),
        1568,
        "full emission drifted from the recorded BENCH baseline"
    );
    let ceiling = 1568 * 7 / 10; // ≥ 30% reduction
    assert!(
        pruned.constraints().len() <= ceiling,
        "pruned 8x8 count {} exceeds the 30%-reduction ceiling {ceiling}",
        pruned.constraints().len()
    );
    let sol_full = solve(&full, EdgeOrder::Sorted).expect("full solves");
    let sol_pruned = solve(&pruned, EdgeOrder::Sorted).expect("pruned solves");
    assert_eq!(sol_full.positions(), sol_pruned.positions());
}
