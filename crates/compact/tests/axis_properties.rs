//! Property tests for the axis-generic engine: the `Axis::Y` sweep must
//! reproduce the retired transpose∘compact-x∘transpose path exactly, and
//! the alternating-axis fixpoint must converge to an idempotent layout.

use proptest::prelude::*;
use rsg_compact::backend::BellmanFord;
use rsg_compact::engine;
use rsg_compact::scanline::{generate, Method};
use rsg_geom::{Axis, Point, Rect};
use rsg_layout::{Layer, Technology};

/// Random box soups on interacting layers. Boxes are placed on a coarse
/// grid with positive sizes; overlaps and abutments are allowed (they
/// exercise the connectivity constraints).
fn arb_boxes() -> impl Strategy<Value = Vec<(Layer, Rect)>> {
    proptest::collection::vec((0i64..12, 0i64..12, 1i64..6, 1i64..6, 0usize..3), 1..14).prop_map(
        |seeds| {
            let layers = [Layer::Poly, Layer::Diffusion, Layer::Metal1];
            seeds
                .into_iter()
                .map(|(x, y, w, h, l)| {
                    (
                        layers[l],
                        Rect::from_origin_size(Point::new(x * 8, y * 8), w * 2, h * 2),
                    )
                })
                .collect()
        },
    )
}

/// The reference implementation the seed used: transpose the layout,
/// compact in x, transpose back.
fn compact_y_by_transposition(
    boxes: &[(Layer, Rect)],
    rules: &rsg_layout::DesignRules,
) -> Result<Vec<(Layer, Rect)>, rsg_compact::backend::SolveError> {
    let flipped: Vec<(Layer, Rect)> = boxes.iter().map(|&(l, r)| (l, r.transpose())).collect();
    let compacted = engine::compact_axis(&flipped, rules, Axis::X, &BellmanFord::SORTED)?;
    Ok(compacted
        .into_iter()
        .map(|(l, r)| (l, r.transpose()))
        .collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The zero-copy `Axis::Y` sweep equals the old
    /// transpose∘compact-x∘transpose pipeline box for box.
    #[test]
    fn y_sweep_equals_transposed_x_sweep(boxes in arb_boxes()) {
        let rules = Technology::mead_conway(2).rules.clone();
        // Random soups may be infeasible (a transitively-connected pair
        // pinned closer than its spacing rule); the equivalence must hold
        // for errors too, so compare the full Results.
        let direct = engine::compact_axis(&boxes, &rules, Axis::Y, &BellmanFord::SORTED);
        let via_transpose = compact_y_by_transposition(&boxes, &rules);
        prop_assert_eq!(direct, via_transpose);
    }

    /// Constraint systems generated along `Axis::Y` are identical to the
    /// x systems of the transposed layout (same constraints, same
    /// initial values), for both generation methods.
    #[test]
    fn y_system_is_transposed_x_system(boxes in arb_boxes()) {
        let rules = Technology::mead_conway(2).rules.clone();
        let flipped: Vec<(Layer, Rect)> =
            boxes.iter().map(|&(l, r)| (l, r.transpose())).collect();
        for method in [Method::Band, Method::Visibility] {
            let (sys_y, vars_y) = generate(&boxes, &rules, method, Axis::Y);
            let (sys_x, vars_x) = generate(&flipped, &rules, method, Axis::X);
            prop_assert_eq!(sys_y.constraints(), sys_x.constraints());
            prop_assert_eq!(&vars_y, &vars_x);
            for (by, bx) in vars_y.iter().zip(&vars_x) {
                prop_assert_eq!(sys_y.initial(by.left), sys_x.initial(bx.left));
                prop_assert_eq!(sys_y.initial(by.right), sys_x.initial(bx.right));
            }
        }
    }

    /// Alternating x/y compaction converges, and the fixpoint is
    /// idempotent under both single-axis sweeps.
    #[test]
    fn compact_xy_converges_and_is_idempotent(boxes in arb_boxes()) {
        let rules = Technology::mead_conway(2).rules.clone();
        // Infeasible soups (rule-violating rigid groups) are vacuous here.
        if let Ok(out) = engine::compact_xy(&boxes, &rules, &BellmanFord::SORTED, 16) {
            prop_assert!(out.converged, "no fixpoint in 16 passes");
            for axis in Axis::BOTH {
                let again =
                    engine::compact_axis(&out.boxes, &rules, axis, &BellmanFord::SORTED)
                        .unwrap();
                prop_assert_eq!(&again, &out.boxes, "{} sweep moved a fixpoint", axis);
            }
            // Running compact_xy again terminates immediately.
            let again =
                engine::compact_xy(&out.boxes, &rules, &BellmanFord::SORTED, 16).unwrap();
            prop_assert_eq!(again.passes, 0);
            prop_assert_eq!(again.boxes, out.boxes);
        }
    }

    /// The fixpoint never grows either extent.
    #[test]
    fn compact_xy_never_expands(boxes in arb_boxes()) {
        let rules = Technology::mead_conway(2).rules.clone();
        if let Ok(out) = engine::compact_xy(&boxes, &rules, &BellmanFord::SORTED, 16) {
            let extent = |bs: &[(Layer, Rect)], axis: Axis| {
                let bb: rsg_geom::BoundingBox = bs.iter().map(|&(_, r)| r).collect();
                bb.extent_along(axis)
            };
            for axis in Axis::BOTH {
                prop_assert!(extent(&out.boxes, axis) <= extent(&boxes, axis));
            }
        }
    }
}
