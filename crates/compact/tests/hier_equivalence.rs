//! Property tests for the hierarchical compactor (`rsg_compact::hier`).
//!
//! Random DRC-clean-by-construction leaf cells are assembled into grids
//! and hier-compacted. The properties pin the tentpole's contract:
//!
//! * the compacted assembly is **DRC-clean after flattening** (the
//!   independent sweep referee, which shares no code with the abstract
//!   path, finds nothing),
//! * the bounding box **never expands** on uniform grids,
//! * compaction is **idempotent**: recompacting the compacted table is a
//!   no-op,
//! * **abutting-instance λ agreement**: every member pair of a pitch
//!   class realizes exactly the class pitch, so both sides of every
//!   shared interface see the same λ — rows and columns stay
//!   pitch-matched.
//!
//! The default lane runs small grids; the `#[ignore]`d lane (run with
//! `cargo test -- --ignored`) covers larger grids and more cases.

use proptest::prelude::*;
use rsg_compact::backend::BellmanFord;
use rsg_compact::hier::{compact_cell, compact_hierarchy, HierOptions, HierOutcome};
use rsg_geom::{Orientation, Point, Rect};
use rsg_layout::{drc, flatten, CellDefinition, CellTable, Instance, Layer, Technology};
use std::collections::BTreeMap;

const LANE_LAYERS: [Layer; 4] = [Layer::Diffusion, Layer::Poly, Layer::Metal1, Layer::Metal2];

/// A random leaf that is clean by construction: 1–3 single-box "lanes"
/// stacked vertically with an 8-unit gap (≥ every Mead–Conway spacing at
/// λ = 2), every box at least 8 wide/tall (≥ every min width).
fn lane_cell(name: &str, lanes: &[(usize, i64, i64, i64)]) -> CellDefinition {
    let mut c = CellDefinition::new(name);
    let mut y = 0;
    for &(layer_idx, x0, w, h) in lanes {
        let layer = LANE_LAYERS[layer_idx % LANE_LAYERS.len()];
        c.add_box(layer, Rect::from_coords(x0, y, x0 + w, y + h));
        y += h + 8;
    }
    c
}

fn grid_table(cell: CellDefinition, nx: i64, ny: i64) -> (CellTable, rsg_layout::CellId) {
    let bb = cell.local_bbox().rect().expect("non-empty");
    let (px, py) = (bb.hi().x + 8, bb.hi().y + 8);
    let mut t = CellTable::new();
    let id = t.insert(cell).unwrap();
    let mut top = CellDefinition::new("grid");
    for row in 0..ny {
        for col in 0..nx {
            top.add_instance(Instance::new(
                id,
                Point::new(col * px, row * py),
                Orientation::NORTH,
            ));
        }
    }
    let top_id = t.insert(top).unwrap();
    (t, top_id)
}

/// Realized consecutive gaps per row (and per column when `columns`).
fn gaps(def: &CellDefinition, columns: bool) -> Vec<i64> {
    let mut lines: BTreeMap<i64, Vec<i64>> = BTreeMap::new();
    for i in def.instances() {
        let (key, val) = if columns {
            (i.point_of_call.x, i.point_of_call.y)
        } else {
            (i.point_of_call.y, i.point_of_call.x)
        };
        lines.entry(key).or_default().push(val);
    }
    let mut out = Vec::new();
    for line in lines.values_mut() {
        line.sort_unstable();
        out.extend(line.windows(2).map(|w| w[1] - w[0]));
    }
    out
}

fn check_grid(lanes: &[(usize, i64, i64, i64)], nx: i64, ny: i64) {
    let tech = Technology::mead_conway(2);
    let cell = lane_cell("leaf", lanes);
    let (table, top) = grid_table(cell, nx, ny);

    // Sanity: the generated assembly is clean before compaction.
    let before = flatten(&table, top).unwrap();
    let v = drc::check_flat(&before, &tech.rules);
    prop_assert!(v.is_empty(), "generator produced a dirty input: {v:?}");
    let bb0 = before.bbox().rect().unwrap();

    let out = compact_hierarchy(
        &table,
        top,
        &tech.rules,
        &BellmanFord::SORTED,
        &HierOptions::default(),
    )
    .unwrap();

    // DRC-clean after flattening.
    let after = flatten(&out.table, out.top).unwrap();
    let v = drc::check_flat(&after, &tech.rules);
    prop_assert!(v.is_empty(), "hier-compacted grid violates rules: {v:?}");

    // The bounding box never expands on a uniform grid.
    let bb1 = after.bbox().rect().unwrap();
    prop_assert!(
        bb1.lo().x >= bb0.lo().x
            && bb1.lo().y >= bb0.lo().y
            && bb1.hi().x <= bb0.hi().x
            && bb1.hi().y <= bb0.hi().y,
        "bbox expanded: {bb0} -> {bb1}"
    );

    // Idempotence: recompacting the compacted table changes nothing.
    let again = compact_hierarchy(
        &out.table,
        out.top,
        &tech.rules,
        &BellmanFord::SORTED,
        &HierOptions::default(),
    )
    .unwrap();
    prop_assert_eq!(
        again.table.require(again.top).unwrap(),
        out.table.require(out.top).unwrap(),
        "second compaction moved instances"
    );

    // λ agreement: every realized gap equals its class pitch on both
    // sides of every shared interface (uniform grid → one class/axis).
    let def = out.table.require(out.top).unwrap();
    let outcome: &HierOutcome = out.outcome("grid").unwrap();
    if nx > 1 {
        let row_gaps = gaps(def, false);
        let lambda = outcome
            .pitches
            .iter()
            .find(|p| p.axis == rsg_geom::Axis::X)
            .expect("an x pitch class")
            .value;
        prop_assert!(
            row_gaps.iter().all(|&g| g == lambda),
            "x gaps {row_gaps:?} != λ {lambda}"
        );
    }
    if ny > 1 {
        let col_gaps = gaps(def, true);
        let lambda = outcome
            .pitches
            .iter()
            .find(|p| p.axis == rsg_geom::Axis::Y)
            .expect("a y pitch class")
            .value;
        prop_assert!(
            col_gaps.iter().all(|&g| g == lambda),
            "y gaps {col_gaps:?} != λ {lambda}"
        );
    }
}

type Lanes = Vec<(usize, i64, i64, i64)>;

fn lanes_strategy(max_lanes: usize) -> impl Strategy<Value = Lanes> {
    proptest::collection::vec((0usize..4, 0i64..6, 8i64..20, 8i64..16), 1..max_lanes + 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn small_grids_compact_clean_and_pitch_matched(
        lanes in lanes_strategy(2),
        nx in 1i64..4,
        ny in 1i64..4,
    ) {
        check_grid(&lanes, nx, ny);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    #[ignore = "slow lane: larger grids, more cases (CI runs it separately)"]
    fn large_grids_compact_clean_and_pitch_matched(
        lanes in lanes_strategy(3),
        nx in 2i64..8,
        ny in 2i64..8,
    ) {
        check_grid(&lanes, nx, ny);
    }
}

// A mixed one-row assembly (two different cells alternating): DRC-clean
// and idempotent; the bbox cannot expand because a single row has no
// cross-row coupling.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mixed_rows_stay_clean_and_idempotent(
        lanes_a in lanes_strategy(2),
        lanes_b in lanes_strategy(2),
        n in 2i64..5,
    ) {
        let tech = Technology::mead_conway(2);
        let a = lane_cell("a", &lanes_a);
        let b = lane_cell("b", &lanes_b);
        let wa = a.local_bbox().rect().unwrap().hi().x;
        let wb = b.local_bbox().rect().unwrap().hi().x;
        let pitch = wa.max(wb) + 8;
        let mut t = CellTable::new();
        let a_id = t.insert(a).unwrap();
        let b_id = t.insert(b).unwrap();
        let mut top = CellDefinition::new("row");
        for k in 0..n {
            let id = if k % 2 == 0 { a_id } else { b_id };
            top.add_instance(Instance::new(id, Point::new(k * pitch, 0), Orientation::NORTH));
        }
        let top_id = t.insert(top).unwrap();

        let before = flatten(&t, top_id).unwrap();
        prop_assert!(drc::check_flat(&before, &tech.rules).is_empty());
        let bb0 = before.bbox().rect().unwrap();

        let out = compact_cell(&t, top_id, &tech.rules, &BellmanFord::SORTED, &HierOptions::default())
            .unwrap();
        let mut t2 = t.clone();
        *t2.get_mut(top_id).unwrap() = out.cell.clone();
        let after = flatten(&t2, top_id).unwrap();
        let v = drc::check_flat(&after, &tech.rules);
        prop_assert!(v.is_empty(), "mixed row violates rules: {v:?}");
        let bb1 = after.bbox().rect().unwrap();
        prop_assert!(bb1.hi().x <= bb0.hi().x && bb1.hi().y <= bb0.hi().y);

        let again = compact_cell(&t2, top_id, &tech.rules, &BellmanFord::SORTED, &HierOptions::default())
            .unwrap();
        prop_assert_eq!(&again.cell, &out.cell, "mixed row not idempotent");
    }
}
