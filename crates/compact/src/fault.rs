//! Deterministic fault injection for the compaction pipeline.
//!
//! A [`FaultPlan`] is attached to a
//! [`crate::incremental::CompactSession`] and rides the session's
//! `CompactHooks` seam: the hierarchical compactor asks the hooks at
//! each solver call, each sweep start, and each budget checkpoint
//! whether a fault should fire, and the plan answers from simple
//! invocation counters. Because the hier pass visits cells and sweeps in
//! a deterministic order, "fail the 3rd solve" names the same solve on
//! every run — which is what makes the error paths testable:
//!
//! * the injected failure must surface as the *typed* error the real
//!   fault would produce (never a panic, never corrupt output), and
//! * clearing the plan and re-running must be bit-identical to a cold
//!   run — the session may not keep partial state from the errored run.
//!
//! `forget_caches` is the odd one out: it injects cache *misses* rather
//! than failures, forcing every memoized lookup to recompute. A session
//! with amnesia must still produce bit-identical results; that pins the
//! cache-equivalence contract from the other side.

use crate::limits::{Exhausted, Resource};

/// Where in the pipeline a fault can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Immediately before a constraint-system solve.
    Solve,
    /// At the start of an axis sweep (pitch-fixpoint entry).
    Sweep,
    /// At a resource-budget checkpoint.
    Checkpoint,
}

/// What an armed fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum InjectedFault {
    /// The solver reports infeasibility.
    SolverFail,
    /// The pitch fixpoint reports divergence.
    Diverge,
    /// The budget checkpoint reports exhaustion.
    Exhaust,
}

/// A deterministic schedule of injected faults, counted per run.
///
/// Counters restart at every `CompactSession` entry point call, so a
/// plan's `n` always means "the nth occurrence within one run".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Fail the `n`th (0-based) solver invocation with a typed
    /// infeasibility.
    pub fail_solve_at: Option<u64>,
    /// Report pitch-fixpoint divergence at the `n`th (0-based) sweep.
    pub diverge_at: Option<u64>,
    /// Report budget exhaustion at the `n`th (0-based) checkpoint.
    pub exhaust_at: Option<u64>,
    /// Force every cache lookup (leaf results, cell outcomes, abstracts,
    /// sweep memos, warm seeds) to miss.
    pub forget_caches: bool,
    solves: u64,
    sweeps: u64,
    checkpoints: u64,
}

impl FaultPlan {
    /// A plan that injects nothing (counters still run).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Plan failing the `n`th solver invocation.
    pub fn fail_solve(n: u64) -> FaultPlan {
        FaultPlan {
            fail_solve_at: Some(n),
            ..FaultPlan::default()
        }
    }

    /// Plan reporting divergence at the `n`th sweep.
    pub fn diverge(n: u64) -> FaultPlan {
        FaultPlan {
            diverge_at: Some(n),
            ..FaultPlan::default()
        }
    }

    /// Plan reporting budget exhaustion at the `n`th checkpoint.
    pub fn exhaust(n: u64) -> FaultPlan {
        FaultPlan {
            exhaust_at: Some(n),
            ..FaultPlan::default()
        }
    }

    /// Plan forcing every cache lookup to miss.
    pub fn amnesia() -> FaultPlan {
        FaultPlan {
            forget_caches: true,
            ..FaultPlan::default()
        }
    }

    /// Restarts the invocation counters (called at each session entry).
    pub fn reset(&mut self) {
        self.solves = 0;
        self.sweeps = 0;
        self.checkpoints = 0;
    }

    /// Advances the counter for `site`; reports the fault to fire, if
    /// any.
    pub(crate) fn trip(&mut self, site: FaultSite) -> Option<InjectedFault> {
        let (counter, armed, fault) = match site {
            FaultSite::Solve => (
                &mut self.solves,
                self.fail_solve_at,
                InjectedFault::SolverFail,
            ),
            FaultSite::Sweep => (&mut self.sweeps, self.diverge_at, InjectedFault::Diverge),
            FaultSite::Checkpoint => (
                &mut self.checkpoints,
                self.exhaust_at,
                InjectedFault::Exhaust,
            ),
        };
        let now = *counter;
        *counter += 1;
        (armed == Some(now)).then_some(fault)
    }
}

/// The [`Exhausted`] value injected checkpoints report.
pub(crate) fn injected_exhaustion() -> Exhausted {
    Exhausted {
        resource: Resource::Injected,
        limit: 0,
        observed: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_per_site_and_zero_based() {
        let mut p = FaultPlan::fail_solve(1);
        assert_eq!(p.trip(FaultSite::Sweep), None);
        assert_eq!(p.trip(FaultSite::Solve), None); // solve #0
        assert_eq!(p.trip(FaultSite::Solve), Some(InjectedFault::SolverFail)); // #1
        assert_eq!(p.trip(FaultSite::Solve), None); // #2: one-shot
    }

    #[test]
    fn reset_rewinds_the_schedule() {
        let mut p = FaultPlan::diverge(0);
        assert_eq!(p.trip(FaultSite::Sweep), Some(InjectedFault::Diverge));
        assert_eq!(p.trip(FaultSite::Sweep), None);
        p.reset();
        assert_eq!(p.trip(FaultSite::Sweep), Some(InjectedFault::Diverge));
    }
}
