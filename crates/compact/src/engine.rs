//! The axis-generic flat compaction engine.
//!
//! One driver serves both sweep directions: [`compact_axis`] generates
//! visibility constraints along a chosen [`Axis`] (no transposed copy of
//! the layout, unlike the retired `transpose` module) and solves them
//! through any [`Solver`] backend. [`compact_xy`] alternates the two
//! sweeps to a fixpoint — the classic two-pass 1-D compaction the paper
//! sketches in §6.4.
//!
//! The alternation is a *warm-started* fixpoint by default: each sweep
//! seeds its solve with the positions the same axis solved one
//! alternation earlier (exact — the solver's support sweep guarantees
//! the bit-for-bit least solution regardless of the seed), so the steady
//! state costs one verification pass per sweep instead of a full cold
//! relaxation. [`compact_xy_with`] exposes the cold path for the E18
//! comparison, and every run returns a [`CompactReport`]: per-sweep
//! constraint counts, relaxation passes, and the extent trajectory.

use crate::backend::{SolveError, Solver};
use crate::par::Parallelism;
use crate::scanline::{self, BoxVars, Method, Prune};
use crate::scratch::SweepScratch;
use rsg_geom::{Axis, Rect};
use rsg_layout::{DesignRules, Layer};

/// Rewrites `boxes` with solved edge positions along `axis`; coordinates
/// across the axis are untouched.
pub fn apply_positions(
    boxes: &[(Layer, Rect)],
    vars: &[BoxVars],
    positions: &[i64],
    axis: Axis,
) -> Vec<(Layer, Rect)> {
    boxes
        .iter()
        .zip(vars)
        .map(|(&(l, r), bv)| {
            (
                l,
                r.with_span_along(
                    axis,
                    positions[bv.left.index()],
                    positions[bv.right.index()],
                ),
            )
        })
        .collect()
}

/// Compacts a flat box list along `axis` with the given backend.
///
/// # Errors
///
/// Propagates [`SolveError`] from the backend.
pub fn compact_axis(
    boxes: &[(Layer, Rect)],
    rules: &DesignRules,
    axis: Axis,
    solver: &dyn Solver,
) -> Result<Vec<(Layer, Rect)>, SolveError> {
    Ok(sweep(boxes, rules, axis, solver, None, &mut SweepScratch::new())?.0)
}

/// Statistics of one axis sweep inside [`compact_xy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepStats {
    /// The sweep direction.
    pub axis: Axis,
    /// Edge variables of the generated system.
    pub vars: usize,
    /// Generated constraints.
    pub constraints: usize,
    /// Relaxation passes the solver needed.
    pub solver_passes: usize,
    /// Extent of the solved positions along the axis.
    pub extent: i64,
}

/// Per-sweep trace of an alternating compaction: constraint counts,
/// relaxation passes, and the extent trajectory — the raw material of
/// experiment E18 (cold vs warm fixpoint cost).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CompactReport {
    /// One entry per axis sweep, in execution order (x, y, x, y, …).
    pub sweeps: Vec<SweepStats>,
    /// Whether the run reused previous positions as solver seeds.
    pub warm: bool,
}

impl CompactReport {
    /// Total relaxation passes across every sweep — the E18 headline
    /// number warm starting reduces.
    pub fn total_solver_passes(&self) -> usize {
        self.sweeps.iter().map(|s| s.solver_passes).sum()
    }

    /// Total constraints generated across every sweep.
    pub fn total_constraints(&self) -> usize {
        self.sweeps.iter().map(|s| s.constraints).sum()
    }

    /// The extent trajectory along one axis, one entry per sweep of
    /// that axis.
    pub fn extents(&self, axis: Axis) -> Vec<i64> {
        self.sweeps
            .iter()
            .filter(|s| s.axis == axis)
            .map(|s| s.extent)
            .collect()
    }
}

/// Result of an alternating-axis compaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XyOutcome {
    /// The compacted boxes.
    pub boxes: Vec<(Layer, Rect)>,
    /// Full x+y alternations performed before the fixpoint (or the cap).
    pub passes: usize,
    /// `true` when a fixpoint was reached within `max_passes`.
    pub converged: bool,
    /// Per-sweep diagnostics of the whole run.
    pub report: CompactReport,
}

/// Whether [`compact_xy_with`] seeds each sweep's solve from the
/// previous alternation's positions for the same axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarmStart {
    /// Every sweep cold-solves from zero — the pre-refactor behaviour,
    /// kept for the E18 comparison.
    Cold,
    /// Each sweep seeds the solver with the positions the same axis
    /// produced one alternation earlier. Results are bit-for-bit
    /// identical to [`WarmStart::Cold`]; only the relaxation work
    /// changes.
    Warm,
}

/// The boxes, solved positions, and stats of one traced sweep.
type SweepResult = (Vec<(Layer, Rect)>, Vec<i64>, SweepStats);

/// One traced sweep: generate (into the reusable arena), solve
/// (optionally warm), apply.
fn sweep(
    boxes: &[(Layer, Rect)],
    rules: &DesignRules,
    axis: Axis,
    solver: &dyn Solver,
    warm: Option<&[i64]>,
    scratch: &mut SweepScratch,
) -> Result<SweepResult, SolveError> {
    let vars = scanline::generate_scratch(
        scratch,
        boxes,
        rules,
        Method::Visibility,
        axis,
        Prune::Apply,
        Parallelism::Serial,
    );
    let sys = &scratch.sys;
    let out = match warm {
        // A seed is only meaningful while the variable layout matches
        // (two edge variables per box, in box order — stable across
        // alternations for a fixed box list).
        Some(seed) if seed.len() == sys.num_vars() => solver.solve_system_warm(sys, &[], seed)?,
        _ => solver.solve_system(sys, &[])?,
    };
    let extent = {
        let max = out.positions.iter().copied().max().unwrap_or(0);
        let min = out.positions.iter().copied().min().unwrap_or(0);
        max - min
    };
    let stats = SweepStats {
        axis,
        vars: sys.num_vars(),
        constraints: sys.constraints().len(),
        solver_passes: out.passes,
        extent,
    };
    let new_boxes = apply_positions(boxes, &vars, &out.positions, axis);
    Ok((new_boxes, out.positions, stats))
}

/// Alternating x/y compaction until a fixpoint (or `max_passes`), §6.4,
/// warm-starting each sweep from the previous alternation — see
/// [`compact_xy_with`] for the cold variant.
///
/// # Errors
///
/// Propagates [`SolveError`] from the backend.
pub fn compact_xy(
    boxes: &[(Layer, Rect)],
    rules: &DesignRules,
    solver: &dyn Solver,
    max_passes: usize,
) -> Result<XyOutcome, SolveError> {
    compact_xy_with(boxes, rules, solver, max_passes, WarmStart::Warm)
}

/// Alternating x/y compaction until a fixpoint (or `max_passes`), §6.4.
///
/// Each pass sweeps [`Axis::X`] then [`Axis::Y`]; the result is a
/// fixpoint of both sweeps when `converged` is set, i.e. re-running
/// either sweep leaves the layout unchanged (idempotence). The returned
/// boxes are identical for both [`WarmStart`] modes; the
/// [`CompactReport`] records how much relaxation work each mode spent.
///
/// # Errors
///
/// Propagates [`SolveError`] from the backend.
pub fn compact_xy_with(
    boxes: &[(Layer, Rect)],
    rules: &DesignRules,
    solver: &dyn Solver,
    max_passes: usize,
    warm: WarmStart,
) -> Result<XyOutcome, SolveError> {
    let mut cur = boxes.to_vec();
    let mut report = CompactReport {
        sweeps: Vec::new(),
        warm: warm == WarmStart::Warm,
    };
    let mut seed_x: Option<Vec<i64>> = None;
    let mut seed_y: Option<Vec<i64>> = None;
    // One sweep arena per axis, reused across alternations: buffers are
    // cleared, not reallocated, and the converging re-sweep (same boxes,
    // same constraints) gets its CSR graph back without a rebuild.
    let mut scratch_x = SweepScratch::new();
    let mut scratch_y = SweepScratch::new();
    for pass in 0..max_passes {
        let warm_x = if warm == WarmStart::Warm {
            seed_x.as_deref()
        } else {
            None
        };
        let (after_x, pos_x, stats_x) =
            sweep(&cur, rules, Axis::X, solver, warm_x, &mut scratch_x)?;
        seed_x = Some(pos_x);
        report.sweeps.push(stats_x);

        let warm_y = if warm == WarmStart::Warm {
            seed_y.as_deref()
        } else {
            None
        };
        let (next, pos_y, stats_y) =
            sweep(&after_x, rules, Axis::Y, solver, warm_y, &mut scratch_y)?;
        seed_y = Some(pos_y);
        report.sweeps.push(stats_y);

        if next == cur {
            return Ok(XyOutcome {
                boxes: cur,
                passes: pass,
                converged: true,
                report,
            });
        }
        cur = next;
    }
    Ok(XyOutcome {
        boxes: cur,
        passes: max_passes,
        converged: false,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Balanced, BellmanFord};
    use rsg_layout::{drc, Technology};

    fn rules() -> DesignRules {
        Technology::mead_conway(2).rules.clone()
    }

    #[test]
    fn y_compaction_pulls_rows_together_without_transposing() {
        let boxes = vec![
            (Layer::Metal1, Rect::from_coords(0, 0, 20, 6)),
            (Layer::Metal1, Rect::from_coords(0, 40, 20, 46)), // 34 above: slack
        ];
        let out = compact_axis(&boxes, &rules(), Axis::Y, &BellmanFord::SORTED).unwrap();
        // Pulled down to 3λ = 6 metal spacing.
        assert_eq!(out[1].1.lo().y - out[0].1.hi().y, 6);
        // x untouched.
        assert_eq!(out[0].1.lo().x, 0);
        assert_eq!(out[1].1.width(), 20);
    }

    #[test]
    fn alternating_reaches_a_fixpoint() {
        let boxes = vec![
            (Layer::Poly, Rect::from_coords(0, 0, 4, 20)),
            (Layer::Poly, Rect::from_coords(30, 0, 34, 20)),
            (Layer::Poly, Rect::from_coords(0, 50, 4, 70)),
        ];
        let r = rules();
        let out = compact_xy(&boxes, &r, &BellmanFord::SORTED, 10).unwrap();
        assert!(out.converged, "did not converge");
        // Result is stable under both sweeps and clean.
        for axis in Axis::BOTH {
            let again = compact_axis(&out.boxes, &r, axis, &BellmanFord::SORTED).unwrap();
            assert_eq!(again, out.boxes, "{axis} sweep not idempotent");
        }
        assert!(drc::check(&out.boxes, &r).is_empty());
    }

    #[test]
    fn xy_area_never_grows() {
        let boxes = vec![
            (Layer::Diffusion, Rect::from_coords(0, 0, 8, 8)),
            (Layer::Diffusion, Rect::from_coords(40, 0, 48, 8)),
            (Layer::Diffusion, Rect::from_coords(0, 40, 8, 48)),
            (Layer::Diffusion, Rect::from_coords(40, 40, 48, 48)),
        ];
        let out = compact_xy(&boxes, &rules(), &BellmanFord::SORTED, 5).unwrap();
        let extent = |bs: &[(Layer, Rect)]| {
            let bb: rsg_geom::BoundingBox = bs.iter().map(|&(_, r)| r).collect();
            let r = bb.rect().unwrap();
            (r.width(), r.height())
        };
        let (w0, h0) = extent(&boxes);
        let (w1, h1) = extent(&out.boxes);
        assert!(w1 <= w0 && h1 <= h0, "({w1},{h1}) vs ({w0},{h0})");
        assert!(w1 * h1 < w0 * h0, "area should shrink on this input");
    }

    #[test]
    fn warm_and_cold_produce_identical_boxes() {
        let boxes = vec![
            (Layer::Poly, Rect::from_coords(0, 0, 4, 20)),
            (Layer::Poly, Rect::from_coords(30, 0, 34, 20)),
            (Layer::Metal1, Rect::from_coords(0, 40, 20, 46)),
            (Layer::Metal1, Rect::from_coords(40, 44, 60, 50)),
        ];
        let r = rules();
        let cold = compact_xy_with(&boxes, &r, &BellmanFord::SORTED, 10, WarmStart::Cold).unwrap();
        let warm = compact_xy_with(&boxes, &r, &BellmanFord::SORTED, 10, WarmStart::Warm).unwrap();
        assert_eq!(
            cold.boxes, warm.boxes,
            "warm start must not change the result"
        );
        assert_eq!(cold.passes, warm.passes);
        assert!(
            warm.report.total_solver_passes() <= cold.report.total_solver_passes(),
            "warm {} vs cold {}",
            warm.report.total_solver_passes(),
            cold.report.total_solver_passes()
        );
    }

    #[test]
    fn report_traces_every_sweep() {
        let boxes = vec![
            (Layer::Diffusion, Rect::from_coords(0, 0, 8, 8)),
            (Layer::Diffusion, Rect::from_coords(40, 0, 48, 8)),
        ];
        let r = rules();
        let out = compact_xy(&boxes, &r, &BellmanFord::SORTED, 10).unwrap();
        assert!(out.report.warm);
        // x, y alternating, starting with x; 2 sweeps per alternation
        // including the converging one.
        assert_eq!(out.report.sweeps.len(), 2 * (out.passes + 1));
        assert_eq!(out.report.sweeps[0].axis, Axis::X);
        assert_eq!(out.report.sweeps[1].axis, Axis::Y);
        assert!(out.report.sweeps.iter().all(|s| s.vars == 4));
        assert!(out.report.total_constraints() > 0);
        // The x extent trajectory is monotone non-increasing.
        let xs = out.report.extents(Axis::X);
        assert!(xs.windows(2).all(|w| w[1] <= w[0]), "{xs:?}");
    }

    #[test]
    fn balanced_backend_also_converges() {
        let boxes = vec![
            (Layer::Poly, Rect::from_coords(0, 0, 4, 20)),
            (Layer::Poly, Rect::from_coords(40, 0, 44, 20)),
        ];
        let r = rules();
        let out = compact_xy(&boxes, &r, &Balanced, 10).unwrap();
        assert!(out.converged);
        assert!(drc::check(&out.boxes, &r).is_empty());
    }
}
