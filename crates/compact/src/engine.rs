//! The axis-generic flat compaction engine.
//!
//! One driver serves both sweep directions: [`compact_axis`] generates
//! visibility constraints along a chosen [`Axis`] (no transposed copy of
//! the layout, unlike the retired `transpose` module) and solves them
//! through any [`Solver`] backend. [`compact_xy`] alternates the two
//! sweeps to a fixpoint — the classic two-pass 1-D compaction the paper
//! sketches in §6.4 — reporting how many alternations were needed.

use crate::backend::{SolveError, Solver};
use crate::scanline::{self, BoxVars, Method};
use rsg_geom::{Axis, Rect};
use rsg_layout::{DesignRules, Layer};

/// Rewrites `boxes` with solved edge positions along `axis`; coordinates
/// across the axis are untouched.
pub fn apply_positions(
    boxes: &[(Layer, Rect)],
    vars: &[BoxVars],
    positions: &[i64],
    axis: Axis,
) -> Vec<(Layer, Rect)> {
    boxes
        .iter()
        .zip(vars)
        .map(|(&(l, r), bv)| {
            (
                l,
                r.with_span_along(
                    axis,
                    positions[bv.left.index()],
                    positions[bv.right.index()],
                ),
            )
        })
        .collect()
}

/// Compacts a flat box list along `axis` with the given backend.
///
/// # Errors
///
/// Propagates [`SolveError`] from the backend.
pub fn compact_axis(
    boxes: &[(Layer, Rect)],
    rules: &DesignRules,
    axis: Axis,
    solver: &dyn Solver,
) -> Result<Vec<(Layer, Rect)>, SolveError> {
    let (sys, vars) = scanline::generate(boxes, rules, Method::Visibility, axis);
    let out = solver.solve_system(&sys, &[])?;
    Ok(apply_positions(boxes, &vars, &out.positions, axis))
}

/// Result of an alternating-axis compaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XyOutcome {
    /// The compacted boxes.
    pub boxes: Vec<(Layer, Rect)>,
    /// Full x+y alternations performed before the fixpoint (or the cap).
    pub passes: usize,
    /// `true` when a fixpoint was reached within `max_passes`.
    pub converged: bool,
}

/// Alternating x/y compaction until a fixpoint (or `max_passes`), §6.4.
///
/// Each pass sweeps [`Axis::X`] then [`Axis::Y`]; the result is a
/// fixpoint of both sweeps when `converged` is set, i.e. re-running
/// either sweep leaves the layout unchanged (idempotence).
///
/// # Errors
///
/// Propagates [`SolveError`] from the backend.
pub fn compact_xy(
    boxes: &[(Layer, Rect)],
    rules: &DesignRules,
    solver: &dyn Solver,
    max_passes: usize,
) -> Result<XyOutcome, SolveError> {
    let mut cur = boxes.to_vec();
    for pass in 0..max_passes {
        let after_x = compact_axis(&cur, rules, Axis::X, solver)?;
        let next = compact_axis(&after_x, rules, Axis::Y, solver)?;
        if next == cur {
            return Ok(XyOutcome {
                boxes: cur,
                passes: pass,
                converged: true,
            });
        }
        cur = next;
    }
    Ok(XyOutcome {
        boxes: cur,
        passes: max_passes,
        converged: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Balanced, BellmanFord};
    use rsg_layout::{drc, Technology};

    fn rules() -> DesignRules {
        Technology::mead_conway(2).rules.clone()
    }

    #[test]
    fn y_compaction_pulls_rows_together_without_transposing() {
        let boxes = vec![
            (Layer::Metal1, Rect::from_coords(0, 0, 20, 6)),
            (Layer::Metal1, Rect::from_coords(0, 40, 20, 46)), // 34 above: slack
        ];
        let out = compact_axis(&boxes, &rules(), Axis::Y, &BellmanFord::SORTED).unwrap();
        // Pulled down to 3λ = 6 metal spacing.
        assert_eq!(out[1].1.lo().y - out[0].1.hi().y, 6);
        // x untouched.
        assert_eq!(out[0].1.lo().x, 0);
        assert_eq!(out[1].1.width(), 20);
    }

    #[test]
    fn alternating_reaches_a_fixpoint() {
        let boxes = vec![
            (Layer::Poly, Rect::from_coords(0, 0, 4, 20)),
            (Layer::Poly, Rect::from_coords(30, 0, 34, 20)),
            (Layer::Poly, Rect::from_coords(0, 50, 4, 70)),
        ];
        let r = rules();
        let out = compact_xy(&boxes, &r, &BellmanFord::SORTED, 10).unwrap();
        assert!(out.converged, "did not converge");
        // Result is stable under both sweeps and clean.
        for axis in Axis::BOTH {
            let again = compact_axis(&out.boxes, &r, axis, &BellmanFord::SORTED).unwrap();
            assert_eq!(again, out.boxes, "{axis} sweep not idempotent");
        }
        assert!(drc::check(&out.boxes, &r).is_empty());
    }

    #[test]
    fn xy_area_never_grows() {
        let boxes = vec![
            (Layer::Diffusion, Rect::from_coords(0, 0, 8, 8)),
            (Layer::Diffusion, Rect::from_coords(40, 0, 48, 8)),
            (Layer::Diffusion, Rect::from_coords(0, 40, 8, 48)),
            (Layer::Diffusion, Rect::from_coords(40, 40, 48, 48)),
        ];
        let out = compact_xy(&boxes, &rules(), &BellmanFord::SORTED, 5).unwrap();
        let extent = |bs: &[(Layer, Rect)]| {
            let bb: rsg_geom::BoundingBox = bs.iter().map(|&(_, r)| r).collect();
            let r = bb.rect().unwrap();
            (r.width(), r.height())
        };
        let (w0, h0) = extent(&boxes);
        let (w1, h1) = extent(&out.boxes);
        assert!(w1 <= w0 && h1 <= h0, "({w1},{h1}) vs ({w0},{h0})");
        assert!(w1 * h1 < w0 * h0, "area should shrink on this input");
    }

    #[test]
    fn balanced_backend_also_converges() {
        let boxes = vec![
            (Layer::Poly, Rect::from_coords(0, 0, 4, 20)),
            (Layer::Poly, Rect::from_coords(40, 0, 44, 20)),
        ];
        let r = rules();
        let out = compact_xy(&boxes, &r, &Balanced, 10).unwrap();
        assert!(out.converged);
        assert!(drc::check(&out.boxes, &r).is_empty());
    }
}
