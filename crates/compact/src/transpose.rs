//! Y-direction compaction by transposition.
//!
//! The paper restricts discussion to one-dimensional x compaction ("it is
//! assumed throughout this section that compaction is being performed in
//! the x dimension"); the y pass is the same machinery on the transposed
//! layout. Classic two-pass 1-D compaction alternates the two.

use crate::scanline::{generate, BoxVars, Method};
use crate::solver::{solve, EdgeOrder, Infeasible};
use rsg_geom::Rect;
use rsg_layout::{DesignRules, Layer};

/// Reflects a rect across the x = y diagonal.
fn transpose_rect(r: Rect) -> Rect {
    Rect::from_coords(r.lo().y, r.lo().x, r.hi().y, r.hi().x)
}

/// Compacts a flat box list in x (left-packing); returns the new boxes.
///
/// # Errors
///
/// Propagates [`Infeasible`] from the solver.
pub fn compact_x(
    boxes: &[(Layer, Rect)],
    rules: &DesignRules,
) -> Result<Vec<(Layer, Rect)>, Infeasible> {
    let (sys, vars) = generate(boxes, rules, Method::Visibility);
    let sol = solve(&sys, EdgeOrder::Sorted)?;
    Ok(apply_x(boxes, &vars, &sol.positions_vec()))
}

/// Compacts in y by transposing, compacting in x, and transposing back.
///
/// # Errors
///
/// Propagates [`Infeasible`] from the solver.
pub fn compact_y(
    boxes: &[(Layer, Rect)],
    rules: &DesignRules,
) -> Result<Vec<(Layer, Rect)>, Infeasible> {
    let flipped: Vec<(Layer, Rect)> =
        boxes.iter().map(|&(l, r)| (l, transpose_rect(r))).collect();
    let compacted = compact_x(&flipped, rules)?;
    Ok(compacted.into_iter().map(|(l, r)| (l, transpose_rect(r))).collect())
}

/// Alternating x/y compaction until a fixpoint (or `max_passes`).
/// Returns the boxes and the number of passes performed.
///
/// # Errors
///
/// Propagates [`Infeasible`] from the solver.
pub fn compact_xy(
    boxes: &[(Layer, Rect)],
    rules: &DesignRules,
    max_passes: usize,
) -> Result<(Vec<(Layer, Rect)>, usize), Infeasible> {
    let mut cur = boxes.to_vec();
    for pass in 0..max_passes {
        let next_x = compact_x(&cur, rules)?;
        let next = compact_y(&next_x, rules)?;
        if next == cur {
            return Ok((cur, pass));
        }
        cur = next;
    }
    Ok((cur, max_passes))
}

fn apply_x(boxes: &[(Layer, Rect)], vars: &[BoxVars], pos: &[i64]) -> Vec<(Layer, Rect)> {
    boxes
        .iter()
        .zip(vars)
        .map(|(&(l, r), bv)| {
            (
                l,
                Rect::from_coords(
                    pos[bv.left.index()],
                    r.lo().y,
                    pos[bv.right.index()],
                    r.hi().y,
                ),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_layout::{drc, Technology};

    fn rules() -> DesignRules {
        Technology::mead_conway(2).rules.clone()
    }

    #[test]
    fn transpose_is_involution() {
        let r = Rect::from_coords(1, 2, 5, 9);
        assert_eq!(transpose_rect(transpose_rect(r)), r);
        assert_eq!(transpose_rect(r), Rect::from_coords(2, 1, 9, 5));
    }

    #[test]
    fn y_compaction_pulls_rows_together() {
        let boxes = vec![
            (Layer::Metal1, Rect::from_coords(0, 0, 20, 6)),
            (Layer::Metal1, Rect::from_coords(0, 40, 20, 46)), // 34 above: slack
        ];
        let out = compact_y(&boxes, &rules()).unwrap();
        // Pulled down to 3λ = 6 metal spacing.
        assert_eq!(out[1].1.lo().y - out[0].1.hi().y, 6);
        // x untouched.
        assert_eq!(out[0].1.lo().x, 0);
        assert_eq!(out[1].1.width(), 20);
    }

    #[test]
    fn alternating_reaches_a_fixpoint() {
        let boxes = vec![
            (Layer::Poly, Rect::from_coords(0, 0, 4, 20)),
            (Layer::Poly, Rect::from_coords(30, 0, 34, 20)),
            (Layer::Poly, Rect::from_coords(0, 50, 4, 70)),
        ];
        let r = rules();
        let (out, passes) = compact_xy(&boxes, &r, 10).unwrap();
        assert!(passes < 10, "did not converge");
        // Result is stable and clean.
        let again = compact_x(&out, &r).unwrap();
        assert_eq!(again, out);
        assert!(drc::check(&out, &r).is_empty());
    }

    #[test]
    fn xy_area_never_grows() {
        let boxes = vec![
            (Layer::Diffusion, Rect::from_coords(0, 0, 8, 8)),
            (Layer::Diffusion, Rect::from_coords(40, 0, 48, 8)),
            (Layer::Diffusion, Rect::from_coords(0, 40, 8, 48)),
            (Layer::Diffusion, Rect::from_coords(40, 40, 48, 48)),
        ];
        let (out, _) = compact_xy(&boxes, &rules(), 5).unwrap();
        let extent = |bs: &[(Layer, Rect)]| {
            let bb: rsg_geom::BoundingBox = bs.iter().map(|&(_, r)| r).collect();
            let r = bb.rect().unwrap();
            (r.width(), r.height())
        };
        let (w0, h0) = extent(&boxes);
        let (w1, h1) = extent(&out);
        assert!(w1 <= w0 && h1 <= h0, "({w1},{h1}) vs ({w0},{h0})");
        assert!(w1 * h1 < w0 * h0, "area should shrink on this input");
    }
}
