//! Deprecated y-compaction-by-transposition shims.
//!
//! The seed implemented the y pass the way the paper describes it: copy
//! the whole layout across the `x = y` diagonal, compact in x, copy it
//! back — an O(boxes) rewrite per sweep. The axis-generic
//! [`crate::engine`] makes the copies unnecessary: [`Axis::Y`] sweeps
//! run directly on the original geometry. These wrappers remain only so
//! downstream code migrates at its own pace; new code should call
//! [`crate::engine::compact_axis`] / [`crate::engine::compact_xy`].

use crate::backend::{BellmanFord, SolveError};
use crate::engine;
use crate::solver::Infeasible;
use rsg_geom::{Axis, Rect};
use rsg_layout::{DesignRules, Layer};

fn downgrade(e: SolveError) -> Infeasible {
    // The engine's pitch-free systems can only fail as infeasible; keep
    // the old error type for source compatibility.
    debug_assert!(matches!(e, SolveError::Infeasible(_)));
    Infeasible { passes: 0 }
}

/// Compacts a flat box list in x (left-packing); returns the new boxes.
///
/// # Errors
///
/// Propagates [`Infeasible`] from the solver.
#[deprecated(note = "use rsg_compact::engine::compact_axis with Axis::X")]
pub fn compact_x(
    boxes: &[(Layer, Rect)],
    rules: &DesignRules,
) -> Result<Vec<(Layer, Rect)>, Infeasible> {
    engine::compact_axis(boxes, rules, Axis::X, &BellmanFord::SORTED).map_err(downgrade)
}

/// Compacts in y — formerly by transposing, now a direct [`Axis::Y`]
/// sweep with no layout copy.
///
/// # Errors
///
/// Propagates [`Infeasible`] from the solver.
#[deprecated(note = "use rsg_compact::engine::compact_axis with Axis::Y")]
pub fn compact_y(
    boxes: &[(Layer, Rect)],
    rules: &DesignRules,
) -> Result<Vec<(Layer, Rect)>, Infeasible> {
    engine::compact_axis(boxes, rules, Axis::Y, &BellmanFord::SORTED).map_err(downgrade)
}

/// Alternating x/y compaction until a fixpoint (or `max_passes`).
/// Returns the boxes and the number of passes performed.
///
/// # Errors
///
/// Propagates [`Infeasible`] from the solver.
#[deprecated(note = "use rsg_compact::engine::compact_xy")]
pub fn compact_xy(
    boxes: &[(Layer, Rect)],
    rules: &DesignRules,
    max_passes: usize,
) -> Result<(Vec<(Layer, Rect)>, usize), Infeasible> {
    let out =
        engine::compact_xy(boxes, rules, &BellmanFord::SORTED, max_passes).map_err(downgrade)?;
    Ok((out.boxes, out.passes))
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use rsg_layout::Technology;

    fn rules() -> DesignRules {
        Technology::mead_conway(2).rules.clone()
    }

    #[test]
    fn shims_delegate_to_engine() {
        let boxes = vec![
            (Layer::Metal1, Rect::from_coords(0, 0, 20, 6)),
            (Layer::Metal1, Rect::from_coords(0, 40, 20, 46)),
        ];
        let r = rules();
        let via_shim = compact_y(&boxes, &r).unwrap();
        let via_engine = engine::compact_axis(&boxes, &r, Axis::Y, &BellmanFord::SORTED).unwrap();
        assert_eq!(via_shim, via_engine);

        let (xy_boxes, _) = compact_xy(&boxes, &r, 10).unwrap();
        let engine_xy = engine::compact_xy(&boxes, &r, &BellmanFord::SORTED, 10).unwrap();
        assert_eq!(xy_boxes, engine_xy.boxes);
    }
}
