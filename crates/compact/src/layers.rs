//! Layer interaction handling (§6.4.3, Fig 6.9).
//!
//! Some design rules "are hard if not impossible to express in terms of
//! minimum spacing constraints between the mask layers" — they arise from
//! the interaction of several layers. The paper's remedy (after Magic) is
//! pseudo-layers: a `Contact` layer that only at mask-creation time
//! expands into metal, poly, and one or more contact cuts; and transistor
//! gates recognized as poly-over-diffusion regions.

use rsg_geom::Rect;
use rsg_layout::{CellDefinition, DesignRules, Layer};

/// Expands every `Contact` pseudo-layer box of a cell into lithographic
/// mask geometry: a metal1 and a poly plate covering the contact extent,
/// plus a grid of square cuts sized/spaced per the rules with the
/// required overlap margin (Fig 6.9).
///
/// All other objects are copied through unchanged. The returned cell has
/// the same name with a `$masks` suffix.
pub fn expand_contacts(cell: &CellDefinition, rules: &DesignRules) -> CellDefinition {
    let mut out = CellDefinition::new(format!("{}$masks", cell.name()));
    for obj in cell.objects() {
        match obj {
            rsg_layout::LayoutObject::Box {
                layer: Layer::Contact,
                rect,
            } => {
                out.add_box(Layer::Metal1, *rect);
                out.add_box(Layer::Poly, *rect);
                for cut in contact_cuts(*rect, rules) {
                    out.add_box(Layer::Cut, cut);
                }
            }
            rsg_layout::LayoutObject::Box { layer, rect } => {
                out.add_box(*layer, *rect);
            }
            rsg_layout::LayoutObject::Label { text, at } => {
                out.add_label(text.clone(), *at);
            }
            rsg_layout::LayoutObject::Instance(i) => {
                out.add_instance(*i);
            }
        }
    }
    out
}

/// The cut grid for one contact extent: as many cuts as fit with the
/// mandated size, pitch, and overlap, but always at least one (centered
/// when the contact is minimum-size).
pub fn contact_cuts(contact: Rect, rules: &DesignRules) -> Vec<Rect> {
    let size = rules.contact_cut_size.max(1);
    let pitch = size + rules.contact_cut_spacing.max(0);
    let margin = rules.contact_overlap.max(0);
    let avail_w = contact.width() - 2 * margin;
    let avail_h = contact.height() - 2 * margin;
    let nx = if avail_w < size {
        1
    } else {
        1 + (avail_w - size) / pitch
    };
    let ny = if avail_h < size {
        1
    } else {
        1 + (avail_h - size) / pitch
    };
    // Center the grid within the contact.
    let grid_w = size + (nx - 1) * pitch;
    let grid_h = size + (ny - 1) * pitch;
    let x0 = contact.lo().x + (contact.width() - grid_w) / 2;
    let y0 = contact.lo().y + (contact.height() - grid_h) / 2;
    let mut cuts = Vec::with_capacity((nx * ny) as usize);
    for iy in 0..ny {
        for ix in 0..nx {
            let lo_x = x0 + ix * pitch;
            let lo_y = y0 + iy * pitch;
            cuts.push(Rect::from_coords(lo_x, lo_y, lo_x + size, lo_y + size));
        }
    }
    cuts
}

/// Detects transistor gates: the intersections of poly and diffusion
/// boxes (§6.4.3: "the width of poly may be 3λ except over diffusion
/// (gate of a transistor) where it might have to be 5λ").
pub fn detect_gates(boxes: &[(Layer, Rect)]) -> Vec<Rect> {
    let mut gates = Vec::new();
    for &(la, ra) in boxes {
        if la != Layer::Poly {
            continue;
        }
        for &(lb, rb) in boxes {
            if lb != Layer::Diffusion {
                continue;
            }
            if let Some(g) = ra.intersect(rb) {
                if g.area() > 0 {
                    gates.push(g);
                }
            }
        }
    }
    gates
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_layout::Technology;

    fn rules() -> DesignRules {
        // λ = 1: cut 2, spacing 2, overlap 1.
        Technology::mead_conway(1).rules.clone()
    }

    #[test]
    fn minimum_contact_gets_one_cut() {
        // 4×4 contact, overlap 1 → 2×2 usable → exactly one 2×2 cut.
        let cuts = contact_cuts(Rect::from_coords(0, 0, 4, 4), &rules());
        assert_eq!(cuts, vec![Rect::from_coords(1, 1, 3, 3)]);
    }

    #[test]
    fn large_contact_gets_a_grid() {
        // 12×8: usable 10×6 → nx = 1 + (10−2)/4 = 3, ny = 1 + (6−2)/4 = 2.
        let cuts = contact_cuts(Rect::from_coords(0, 0, 12, 8), &rules());
        assert_eq!(cuts.len(), 6);
        // All inside the contact with the overlap margin.
        let inner = Rect::from_coords(1, 1, 11, 7);
        for c in &cuts {
            assert!(inner.contains_rect(*c), "{c}");
        }
        // Pairwise spacing ≥ 2.
        for (i, a) in cuts.iter().enumerate() {
            for b in &cuts[i + 1..] {
                assert!(!a.inflate(1).overlaps(*b), "{a} too close to {b}");
            }
        }
    }

    #[test]
    fn expansion_replaces_pseudo_layer() {
        let mut cell = CellDefinition::new("con");
        cell.add_box(Layer::Contact, Rect::from_coords(0, 0, 4, 4));
        cell.add_box(Layer::Metal2, Rect::from_coords(10, 10, 20, 20));
        cell.add_label("x", rsg_geom::Point::new(1, 1));
        let out = expand_contacts(&cell, &rules());
        assert_eq!(out.name(), "con$masks");
        let layers: Vec<Layer> = out.boxes().map(|(l, _)| l).collect();
        assert!(layers.contains(&Layer::Metal1));
        assert!(layers.contains(&Layer::Poly));
        assert!(layers.contains(&Layer::Cut));
        assert!(!layers.contains(&Layer::Contact));
        assert!(layers.contains(&Layer::Metal2));
        assert_eq!(out.labels().count(), 1);
    }

    #[test]
    fn gate_detection() {
        let boxes = vec![
            (Layer::Poly, Rect::from_coords(4, 0, 8, 20)),
            (Layer::Diffusion, Rect::from_coords(0, 6, 12, 12)),
            (Layer::Metal1, Rect::from_coords(0, 0, 12, 20)),
        ];
        let gates = detect_gates(&boxes);
        assert_eq!(gates, vec![Rect::from_coords(4, 6, 8, 12)]);
        // Poly merely touching diffusion is not a gate.
        let touch = vec![
            (Layer::Poly, Rect::from_coords(0, 0, 4, 10)),
            (Layer::Diffusion, Rect::from_coords(4, 0, 8, 10)),
        ];
        assert!(detect_gates(&touch).is_empty());
    }
}
