//! Incremental recompaction — change one leaf, pay for one leaf.
//!
//! A layout session edits a design many times between full compactions:
//! tweak one personality mask, swap a crosspoint, nudge a leaf body. The
//! from-scratch flow ([`crate::hier::compact_chip_with_library`]) pays
//! the full hierarchy price on every call even though an edit is usually
//! visible only inside one definition and along the paths above it.
//!
//! [`CompactSession`] makes the flow persistent. Everything expensive is
//! cached under a *content hash* — a digest of exactly the inputs the
//! cached value depends on — so cache identity is semantic, not
//! positional:
//!
//! * **leaf results** by `(job content, design rules, solver)` — an
//!   untouched library job is never re-solved;
//! * **cell outcomes** by `(deep input geometry, rules, solver,
//!   options)` — a definition whose own geometry and whose children's
//!   compacted geometry are unchanged is replayed from the cache, which
//!   is what turns "one leaf changed" into "one root-path recompacted":
//!   dirtiness propagates upward through the hashes alone, no explicit
//!   dirty bits;
//! * **interface abstracts** by `(child output geometry, orientation,
//!   rules)` — re-derived only for definitions the edit reached;
//! * **constraint emission** per cluster pair, copied from the previous
//!   run's per-sweep record when both endpoint clusters are
//!   unchanged and no dirty material touches their window, so the sweep
//!   kernel re-runs only in the dirtied window;
//! * **whole sweep solves** by exact geometric key, replayed without
//!   building a constraint system at all;
//! * **warm seeds** per cell and axis — fresh solves start from the
//!   previous placement ([`rsg_solve`]'s warm path is exact for any
//!   seed, so this changes pass counts, never geometry).
//!
//! The contract, pinned by the `incremental_equivalence` proptests: every
//! call returns **bit-identical geometry and pitches** to the
//! from-scratch flow on the same input. Only the diagnostics
//! ([`HierOutcome::passes`], per-sweep solver passes) may differ, because
//! warm starts converge in fewer relaxation rounds.
//!
//! ```
//! use rsg_compact::incremental::CompactSession;
//! use rsg_compact::{hier::HierOptions, BellmanFord};
//! use rsg_layout::{CellDefinition, CellTable, Instance, Layer, Technology};
//! use rsg_geom::{Orientation, Point, Rect};
//!
//! let rules = Technology::mead_conway(2).rules;
//! let mut table = CellTable::new();
//! let mut leaf = CellDefinition::new("leaf");
//! leaf.add_box(Layer::Poly, Rect::from_coords(0, 0, 4, 8));
//! let leaf_id = table.insert(leaf).unwrap();
//! let mut top = CellDefinition::new("top");
//! top.add_instance(Instance::new(leaf_id, Point::new(0, 0), Orientation::NORTH));
//! top.add_instance(Instance::new(leaf_id, Point::new(30, 0), Orientation::NORTH));
//! let top_id = table.insert(top).unwrap();
//!
//! let mut session = CompactSession::new();
//! let opts = HierOptions::default();
//! let first = session
//!     .compact_hierarchy(&table, top_id, &rules, &BellmanFord::SORTED, &opts)
//!     .unwrap();
//! // Same input again: a pure cache replay.
//! let again = session
//!     .compact_hierarchy(&table, top_id, &rules, &BellmanFord::SORTED, &opts)
//!     .unwrap();
//! assert_eq!(session.last_stats().cells_compacted, 0);
//! assert_eq!(
//!     first.outcome("top").unwrap().cell,
//!     again.outcome("top").unwrap().cell
//! );
//! ```

use crate::backend::Solver;
use crate::fault::{FaultPlan, FaultSite, InjectedFault};
use crate::hier::{
    axis_index, compact_cell_with, dependency_levels, derive_abstract, dfs_order, CellAbstract,
    ChipCompaction, ChipError, ChipLayout, CompactHooks, HierError, HierOptions, HierOutcome,
    ReuseCounters, SweepRecord, SweepSolution,
};
use crate::leaf::{self, CompactionResult, LibraryJob};
use crate::par::par_map;
use rsg_geom::{Axis, Orientation};
use rsg_layout::hash::{deep_hashes, hash_cell, mix, ContentHasher};
use rsg_layout::{CellDefinition, CellId, CellTable, DesignRules, LayoutError};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Work done (and avoided) by one session call.
///
/// `cells_seen = cell_hits + cells_compacted` over the assembly cells of
/// the hierarchy; leaves are the leaf pass's business and counted by
/// `leaf_jobs`/`leaf_hits` instead. A no-op edit shows up as
/// `cells_compacted == 0`, `abstracts_derived == 0`,
/// `constraints_emitted == 0` — nothing was re-flattened and nothing was
/// re-swept.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EditStats {
    /// Assembly cells visited by the hierarchy walk.
    pub cells_seen: usize,
    /// Assembly cells replayed from the outcome cache.
    pub cell_hits: usize,
    /// Assembly cells actually recompacted.
    pub cells_compacted: usize,
    /// Leaf-library jobs solved this call.
    pub leaf_jobs: usize,
    /// Leaf-library jobs replayed from the cache.
    pub leaf_hits: usize,
    /// Interface abstracts derived by flattening.
    pub abstracts_derived: usize,
    /// Interface abstracts answered from the content-hash cache.
    pub abstract_hits: usize,
    /// Cluster pairs whose emission was copied instead of re-swept.
    pub pairs_reused: usize,
    /// Kernel constraints computed fresh.
    pub constraints_emitted: usize,
    /// Kernel constraints copied from the previous run's emission.
    pub constraints_reused: usize,
    /// Sweeps that built a system and ran the pitch fixpoint.
    pub sweeps_solved: usize,
    /// Sweeps replayed entirely from the sweep memo.
    pub sweep_memo_hits: usize,
    /// Solver relaxation passes actually performed.
    pub solver_passes: usize,
}

impl EditStats {
    fn absorb(&mut self, c: &ReuseCounters) {
        self.abstracts_derived += c.abstracts_derived;
        self.abstract_hits += c.abstract_hits;
        self.pairs_reused += c.pairs_reused;
        self.constraints_emitted += c.constraints_emitted;
        self.constraints_reused += c.constraints_reused;
        self.sweeps_solved += c.sweeps_solved;
        self.sweep_memo_hits += c.sweep_memo_hits;
        self.solver_passes += c.solver_passes;
    }
}

/// Cumulative [`EditStats`] over every successful session call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Number of successful `compact_*` calls accumulated.
    pub calls: usize,
    /// Sums of the per-call counters.
    pub totals: EditStats,
}

/// Per-cell (by name) cross-run solve state: warm seeds and the previous
/// run's sweep records. Not content-addressed — it only accelerates, so
/// a stale entry costs speed, never correctness — but it is dropped
/// whenever the solve context (rules, solver, options) changes.
#[derive(Debug, Clone, Default)]
struct CellHistory {
    /// Last final solver positions per axis (x, y) — the next warm seed.
    warm: [Option<Vec<i64>>; 2],
    /// Sweep records of the previous executed run, by sweep ordinal.
    prev: Vec<Arc<SweepRecord>>,
    /// Sweep records being written by the current run.
    next: Vec<Arc<SweepRecord>>,
}

impl CellHistory {
    /// Rotates the double buffer at the start of an executed run. When
    /// the last calls were all cache hits, `next` still holds the last
    /// *executed* run's records — exactly the ones to reuse against.
    fn begin_run(&mut self) {
        if !self.next.is_empty() {
            self.prev = std::mem::take(&mut self.next);
        }
    }
}

#[derive(Debug, Clone)]
struct CellEntry {
    outcome: HierOutcome,
    /// Deep content hash of the compacted output cell.
    out_hash: u64,
}

/// A persistent incremental-compaction session.
///
/// Clone-cheap (the caches hold [`Arc`]s), so a primed session can be
/// snapshotted — the benchmark clones one per iteration to measure a
/// single edit against a stable cache. All caches are keyed by content
/// hash and never invalidated by edits; the per-cell solve history is
/// dropped when rules, solver, or options change between calls.
#[derive(Debug, Clone, Default)]
pub struct CompactSession {
    /// `(deep input hash, context)` → compacted outcome.
    cells: HashMap<u64, Arc<CellEntry>>,
    /// `(child output hash, orientation, rules)` → interface abstract.
    abstracts: HashMap<u64, Arc<CellAbstract>>,
    /// `(job content, rules, solver)` → leaf-library result.
    leaves: HashMap<u64, Arc<CompactionResult>>,
    /// Exact sweep-solve memo (keys already include the context tag).
    memo: HashMap<u64, Arc<SweepSolution>>,
    /// Per-cell-name warm/record state for the current context.
    history: HashMap<String, CellHistory>,
    /// Context tag of the previous call, to detect rule/solver changes.
    context: Option<u64>,
    /// Deterministic fault-injection schedule for subsequent calls.
    faults: Option<FaultPlan>,
    stats: SessionStats,
    last: EditStats,
}

/// Digest of everything outside the geometry that shapes a solve. The
/// budget *caps* are folded in — they change where a run fails, so they
/// are part of the solve context — but the wall-clock deadline is
/// deliberately excluded: it is not content-addressable.
fn context_of(rules: &DesignRules, solver: &dyn Solver, opts: &HierOptions) -> u64 {
    let mut h = ContentHasher::new();
    h.write_u64(rules.content_hash())
        .write_str(solver.name())
        .write_u64(opts.content_tag());
    h.finish()
}

fn hash_str(s: &str) -> u64 {
    let mut h = ContentHasher::new();
    h.write_str(s);
    h.finish()
}

/// Deep-hashes `def`, requiring every referenced child to already carry
/// a computed output hash. A missing child used to fold in as `0`,
/// which silently aliased distinct inputs onto one cache key — two
/// different unhashed children produced the same digest, and a stale
/// cached outcome could be replayed for the wrong geometry. The walk
/// visits children before parents, so a miss can only mean the
/// hierarchy is inconsistent (e.g. a dangling instance reference); that
/// is now a typed [`HierError::Internal`], never a poisoned cache.
fn checked_hash(def: &CellDefinition, hash_of: &HashMap<CellId, u64>) -> Result<u64, HierError> {
    let mut missing: Option<CellId> = None;
    let h = hash_cell(def, |id| match hash_of.get(&id) {
        Some(&h) => h,
        None => {
            missing.get_or_insert(id);
            0
        }
    });
    match missing {
        None => Ok(h),
        Some(id) => Err(HierError::Internal(format!(
            "cell `{}` references child {id:?} with no computed output hash \
             (dangling or unvisited instance reference)",
            def.name()
        ))),
    }
}

impl CompactSession {
    /// Creates an empty session (every first call is a cold run).
    pub fn new() -> CompactSession {
        CompactSession::default()
    }

    /// Work counters of the most recent call.
    pub fn last_stats(&self) -> EditStats {
        self.last
    }

    /// Cumulative counters over every successful call.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Arms (or with `None`, disarms) a deterministic fault-injection
    /// schedule for subsequent calls. Counters restart at every entry
    /// point, so `FaultPlan::fail_solve(2)` fails the third solve of
    /// *each* call until the plan is cleared. An injected failure obeys
    /// the same contract as a real one: typed error out, caches left
    /// consistent, and a retry without the plan is bit-identical to a
    /// cold run.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.faults = plan;
    }

    fn begin(&mut self, context: u64) {
        if self.context != Some(context) {
            // The solve context changed: warm seeds and sweep records
            // describe solves under the old rules/solver. The content
            // caches stay — their keys carry the context.
            self.history.clear();
            self.context = Some(context);
        }
        if let Some(p) = self.faults.as_mut() {
            p.reset();
        }
        self.last = EditStats::default();
    }

    /// Error-path cache hygiene: a failed call may have half-written
    /// warm seeds and sweep records (they are positional, not
    /// content-addressed), so they are dropped wholesale. The content
    /// caches keep every entry — each was completed and is keyed by its
    /// full input, so nothing partial can hide there. A retry after the
    /// failure therefore behaves exactly like a cold run for the failed
    /// cells (pinned by the fault-injection proptests).
    fn abandon(&mut self) {
        self.history.clear();
        self.last = EditStats::default();
    }

    fn forgetting(&self) -> bool {
        self.faults.as_ref().is_some_and(|p| p.forget_caches)
    }

    fn finish(&mut self) {
        let t = &mut self.stats.totals;
        let l = &self.last;
        t.cells_seen += l.cells_seen;
        t.cell_hits += l.cell_hits;
        t.cells_compacted += l.cells_compacted;
        t.leaf_jobs += l.leaf_jobs;
        t.leaf_hits += l.leaf_hits;
        t.abstracts_derived += l.abstracts_derived;
        t.abstract_hits += l.abstract_hits;
        t.pairs_reused += l.pairs_reused;
        t.constraints_emitted += l.constraints_emitted;
        t.constraints_reused += l.constraints_reused;
        t.sweeps_solved += l.sweeps_solved;
        t.sweep_memo_hits += l.sweep_memo_hits;
        t.solver_passes += l.solver_passes;
        self.stats.calls += 1;
    }

    /// Incremental [`crate::hier::compact_hierarchy`]: identical results,
    /// but definitions whose deep content hash (own geometry + children's
    /// compacted geometry) matches a cached run are replayed instead of
    /// recompacted, and recompacted cells reuse abstracts, emission,
    /// memoized sweeps, and warm seeds from the session.
    ///
    /// # Errors
    ///
    /// Exactly the plain flow's errors ([`HierError`]); a failed call
    /// leaves the caches valid (they are content-addressed) but does not
    /// count into [`CompactSession::stats`].
    pub fn compact_hierarchy(
        &mut self,
        table: &CellTable,
        top: CellId,
        rules: &DesignRules,
        solver: &dyn Solver,
        opts: &HierOptions,
    ) -> Result<ChipLayout, HierError> {
        let context = context_of(rules, solver, opts);
        self.begin(context);
        let chip = match self.hierarchy_inner(table, top, rules, solver, opts, context) {
            Ok(chip) => chip,
            Err(e) => {
                self.abandon();
                return Err(e);
            }
        };
        self.finish();
        Ok(chip)
    }

    /// Incremental [`crate::hier::compact_chip_with_library`]: the leaf
    /// pass runs per [`LibraryJob`] through the leaf-result cache, then
    /// the hierarchy pass runs through [`CompactSession::compact_hierarchy`]'s
    /// machinery. Same name-matched substitution, same errors.
    ///
    /// # Errors
    ///
    /// [`ChipError::Leaf`] from a failed (uncached) leaf job,
    /// [`ChipError::Hier`] for an unknown substituted cell name or a
    /// failed placement pass — identical to the plain flow.
    pub fn compact_chip_with_library(
        &mut self,
        table: &CellTable,
        top: CellId,
        jobs: &[LibraryJob],
        rules: &DesignRules,
        solver: &dyn Solver,
        opts: &HierOptions,
    ) -> Result<ChipCompaction, ChipError> {
        let context = context_of(rules, solver, opts);
        self.begin(context);
        match self.chip_inner(table, top, jobs, rules, solver, opts, context) {
            Ok(out) => {
                self.finish();
                Ok(out)
            }
            Err(e) => {
                self.abandon();
                Err(e)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn chip_inner(
        &mut self,
        table: &CellTable,
        top: CellId,
        jobs: &[LibraryJob],
        rules: &DesignRules,
        solver: &dyn Solver,
        opts: &HierOptions,
        context: u64,
    ) -> Result<ChipCompaction, ChipError> {
        let rules_hash = rules.content_hash();
        let solver_hash = hash_str(solver.name());
        let forgetting = self.forgetting();
        let mut leaf_results: Vec<CompactionResult> = Vec::with_capacity(jobs.len());
        for job in jobs {
            let key = mix(&[job.content_hash(), rules_hash, solver_hash]);
            match self.leaves.get(&key).filter(|_| !forgetting) {
                Some(cached) => {
                    self.last.leaf_hits += 1;
                    leaf_results.push(cached.as_ref().clone());
                }
                None => {
                    self.last.leaf_jobs += 1;
                    let result = leaf::compact_limited(
                        &job.cells,
                        &job.interfaces,
                        rules,
                        solver,
                        &opts.limits,
                    )?;
                    self.leaves.insert(key, Arc::new(result.clone()));
                    leaf_results.push(result);
                }
            }
        }
        let mut compacted = table.clone();
        for result in &leaf_results {
            for cell in &result.cells {
                let id = compacted.lookup(cell.name()).ok_or_else(|| {
                    ChipError::Hier(HierError::Layout(LayoutError::UnknownCell(
                        cell.name().to_owned(),
                    )))
                })?;
                let Some(slot) = compacted.get_mut(id) else {
                    return Err(ChipError::Hier(HierError::Internal(format!(
                        "cell `{}` vanished between lookup and substitution",
                        cell.name()
                    ))));
                };
                *slot = cell.clone();
            }
        }
        let chip = self.hierarchy_inner(&compacted, top, rules, solver, opts, context)?;
        Ok(ChipCompaction {
            chip,
            leaf: leaf_results,
        })
    }

    /// The shared hierarchy walk: bottom-up over the DAG, maintaining the
    /// deep output hash of every visited definition. A parent's input
    /// hash folds in its children's *output* hashes, so an edit anywhere
    /// below forces a parent miss exactly when something it can see
    /// changed — the dirty propagation is the hashing.
    fn hierarchy_inner(
        &mut self,
        table: &CellTable,
        top: CellId,
        rules: &DesignRules,
        solver: &dyn Solver,
        opts: &HierOptions,
        context: u64,
    ) -> Result<ChipLayout, HierError> {
        // The fault seam counts trips globally across the walk, so its
        // schedule is only meaningful under the serial visit order — an
        // armed plan forces the reference path.
        let threads = opts.parallelism.threads();
        if threads > 1 && self.faults.is_none() {
            return self.hierarchy_parallel(table, top, rules, solver, opts, context, threads);
        }
        let rules_hash = rules.content_hash();
        let mut out_table = table.clone();
        let mut order = Vec::new();
        let mut mark: HashMap<CellId, u8> = HashMap::new();
        dfs_order(table, top, &mut mark, &mut order)?;
        // Deep *output* hash per visited cell (leaves: input == output).
        let mut hash_of: HashMap<CellId, u64> = HashMap::new();
        let mut cells = Vec::new();
        for cell in order {
            let def = out_table.require(cell)?;
            let in_hash = checked_hash(def, &hash_of)?;
            if def.instances().next().is_none() {
                hash_of.insert(cell, in_hash);
                continue; // leaf: the leaf compactor's business
            }
            let name = def.name().to_owned();
            self.last.cells_seen += 1;
            let key = mix(&[in_hash, context]);
            let forgetting = self.forgetting();
            let (outcome, out_hash) = match self.cells.get(&key).filter(|_| !forgetting) {
                Some(entry) => {
                    self.last.cell_hits += 1;
                    (entry.outcome.clone(), entry.out_hash)
                }
                None => {
                    self.last.cells_compacted += 1;
                    let history = self.history.entry(name.clone()).or_default();
                    history.begin_run();
                    let mut hooks = SessionHooks {
                        abstracts: &mut self.abstracts,
                        hash_of: &hash_of,
                        rules_hash,
                        context,
                        history,
                        memo: &mut self.memo,
                        counters: ReuseCounters::default(),
                        faults: self.faults.as_mut(),
                        forgetting,
                    };
                    let outcome =
                        compact_cell_with(&out_table, cell, rules, solver, opts, &mut hooks)?;
                    self.last.absorb(&hooks.counters);
                    if !outcome.converged {
                        return Err(HierError::Diverged(format!(
                            "cell `{name}` did not reach an x/y fixpoint in {} alternations",
                            opts.max_passes
                        )));
                    }
                    let out_hash = checked_hash(&outcome.cell, &hash_of)?;
                    self.cells.insert(
                        key,
                        Arc::new(CellEntry {
                            outcome: outcome.clone(),
                            out_hash,
                        }),
                    );
                    (outcome, out_hash)
                }
            };
            let Some(slot) = out_table.get_mut(cell) else {
                return Err(HierError::Internal(format!(
                    "cell `{name}` vanished from the table mid-walk"
                )));
            };
            *slot = outcome.cell.clone();
            hash_of.insert(cell, out_hash);
            cells.push((name, outcome));
        }
        Ok(ChipLayout {
            table: out_table,
            top,
            cells,
        })
    }

    /// The multi-worker variant of [`CompactSession::hierarchy_inner`]:
    /// the dependency-level schedule of [`crate::hier::compact_hierarchy`]
    /// layered over the session caches. Per level, a serial pass hashes
    /// each ready cell and replays outcome-cache hits; the misses fan out
    /// across workers, each holding a [`ShardHooks`] — a read-only
    /// snapshot of the shared content caches plus private insert maps and
    /// the cell's own (name-keyed, therefore exclusive) solve history —
    /// and the per-worker inserts merge back in level order before the
    /// next level hashes against them. Geometry, pitches, and the
    /// reported error are bit-identical to the serial walk (pinned by the
    /// `parallel_equivalence` proptests); only the reuse *counters* may
    /// differ, because two workers can re-derive an abstract a serial
    /// walk would have cache-hit.
    #[allow(clippy::too_many_arguments)]
    fn hierarchy_parallel(
        &mut self,
        table: &CellTable,
        top: CellId,
        rules: &DesignRules,
        solver: &dyn Solver,
        opts: &HierOptions,
        context: u64,
        threads: usize,
    ) -> Result<ChipLayout, HierError> {
        let rules_hash = rules.content_hash();
        let mut out_table = table.clone();
        let mut order = Vec::new();
        let mut mark: HashMap<CellId, u8> = HashMap::new();
        dfs_order(table, top, &mut mark, &mut order)?;
        let levels = dependency_levels(table, &order)?;
        let pos: HashMap<CellId, usize> = order.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        // Deep *output* hash per visited cell. Leaves are pure inputs
        // (input == output, and their hash reads no other definition), so
        // they all hash up front.
        let mut hash_of: HashMap<CellId, u64> = HashMap::new();
        for &cell in &order {
            let def = out_table.require(cell)?;
            if def.instances().next().is_none() {
                let h = checked_hash(def, &hash_of)?;
                hash_of.insert(cell, h);
            }
        }
        let mut outcomes: HashMap<CellId, HierOutcome> = HashMap::new();
        // Same failure semantics as the parallel plain walk: compute every
        // cell whose descendants all succeeded, then report the error of
        // the DFS-earliest failure — exactly the cell the serial walk
        // would have stopped at.
        let mut failures: Vec<(usize, HierError)> = Vec::new();
        let mut bad: HashSet<CellId> = HashSet::new();
        for level in &levels {
            // Serial cache pass: a poisoned cell cannot even be hashed
            // (a descendant has no output), hits replay immediately, and
            // misses queue for the fan-out with their history taken out
            // of the session (cell names are unique, so each worker owns
            // its history exclusively).
            let mut misses: Vec<MissJob> = Vec::new();
            for &cell in level {
                let def = out_table.require(cell)?;
                if def.instances().any(|i| bad.contains(&i.cell)) {
                    bad.insert(cell);
                    continue;
                }
                self.last.cells_seen += 1;
                let name = def.name().to_owned();
                let in_hash = checked_hash(def, &hash_of)?;
                let key = mix(&[in_hash, context]);
                if let Some(entry) = self.cells.get(&key) {
                    self.last.cell_hits += 1;
                    let outcome = entry.outcome.clone();
                    let out_hash = entry.out_hash;
                    let Some(slot) = out_table.get_mut(cell) else {
                        return Err(HierError::Internal(format!(
                            "cell `{name}` vanished from the table mid-walk"
                        )));
                    };
                    *slot = outcome.cell.clone();
                    hash_of.insert(cell, out_hash);
                    outcomes.insert(cell, outcome);
                    continue;
                }
                self.last.cells_compacted += 1;
                let mut history = self.history.remove(&name).unwrap_or_default();
                history.begin_run();
                misses.push(MissJob {
                    cell,
                    name,
                    key,
                    history,
                });
            }
            if misses.is_empty() {
                continue;
            }
            let results = {
                let abstracts = &self.abstracts;
                let memo = &self.memo;
                let out_table = &out_table;
                let hash_of = &hash_of;
                par_map(&misses, threads, move |job| {
                    let mut hooks = ShardHooks {
                        abstracts,
                        new_abstracts: HashMap::new(),
                        hash_of,
                        rules_hash,
                        context,
                        history: job.history.clone(),
                        memo,
                        new_memo: HashMap::new(),
                        counters: ReuseCounters::default(),
                    };
                    let outcome =
                        compact_cell_with(out_table, job.cell, rules, solver, opts, &mut hooks);
                    ShardResult {
                        outcome,
                        history: hooks.history,
                        new_abstracts: hooks.new_abstracts,
                        new_memo: hooks.new_memo,
                        counters: hooks.counters,
                    }
                })
            };
            // Merge in level order (a DFS suborder), so cache insertion
            // order — and therefore everything downstream — is
            // deterministic regardless of worker interleaving.
            for (job, result) in misses.into_iter().zip(results) {
                let dfs_pos = pos.get(&job.cell).copied().unwrap_or(usize::MAX);
                let shard = match result {
                    Ok(s) => s,
                    Err(panic) => {
                        failures.push((dfs_pos, HierError::Internal(panic.to_string())));
                        bad.insert(job.cell);
                        continue;
                    }
                };
                self.abstracts.extend(shard.new_abstracts);
                self.memo.extend(shard.new_memo);
                self.history.insert(job.name.clone(), shard.history);
                self.last.absorb(&shard.counters);
                let outcome = match shard.outcome {
                    Ok(o) if o.converged => o,
                    Ok(_) => {
                        failures.push((
                            dfs_pos,
                            HierError::Diverged(format!(
                                "cell `{}` did not reach an x/y fixpoint in {} alternations",
                                job.name, opts.max_passes
                            )),
                        ));
                        bad.insert(job.cell);
                        continue;
                    }
                    Err(e) => {
                        failures.push((dfs_pos, e));
                        bad.insert(job.cell);
                        continue;
                    }
                };
                let out_hash = checked_hash(&outcome.cell, &hash_of)?;
                self.cells.insert(
                    job.key,
                    Arc::new(CellEntry {
                        outcome: outcome.clone(),
                        out_hash,
                    }),
                );
                let Some(slot) = out_table.get_mut(job.cell) else {
                    return Err(HierError::Internal(format!(
                        "cell `{}` vanished from the table mid-walk",
                        job.name
                    )));
                };
                *slot = outcome.cell.clone();
                hash_of.insert(job.cell, out_hash);
                outcomes.insert(job.cell, outcome);
            }
        }
        if let Some((_, e)) = failures.into_iter().min_by_key(|&(p, _)| p) {
            return Err(e);
        }
        // Reassemble the per-cell list in the serial walk's bottom-up
        // order.
        let mut cells = Vec::with_capacity(outcomes.len());
        for cell in order {
            if let Some(outcome) = outcomes.remove(&cell) {
                cells.push((table.require(cell)?.name().to_owned(), outcome));
            }
        }
        Ok(ChipLayout {
            table: out_table,
            top,
            cells,
        })
    }
}

/// One outcome-cache miss queued for the parallel fan-out, carrying the
/// cell's solve history out of the session for the worker's exclusive
/// use.
struct MissJob {
    cell: CellId,
    name: String,
    /// Outcome-cache key (`mix(deep input hash, context)`).
    key: u64,
    history: CellHistory,
}

/// Everything a worker produced for one miss: the outcome plus the cache
/// state to merge back — its updated history and the abstracts/memo
/// entries it derived (content-addressed, so merge order only affects
/// counters, never values).
struct ShardResult {
    outcome: Result<HierOutcome, HierError>,
    history: CellHistory,
    new_abstracts: HashMap<u64, Arc<CellAbstract>>,
    new_memo: HashMap<u64, Arc<SweepSolution>>,
    counters: ReuseCounters,
}

/// The per-worker [`CompactHooks`]: reads go to the shared snapshot
/// first, then to the worker's private inserts; writes stay private until
/// the level's deterministic merge. Fault injection is structurally
/// absent — an armed plan forces the serial path before this type is ever
/// constructed.
struct ShardHooks<'a> {
    abstracts: &'a HashMap<u64, Arc<CellAbstract>>,
    new_abstracts: HashMap<u64, Arc<CellAbstract>>,
    /// Deep output hashes of every definition from earlier levels.
    hash_of: &'a HashMap<CellId, u64>,
    rules_hash: u64,
    context: u64,
    history: CellHistory,
    memo: &'a HashMap<u64, Arc<SweepSolution>>,
    new_memo: HashMap<u64, Arc<SweepSolution>>,
    counters: ReuseCounters,
}

impl CompactHooks for ShardHooks<'_> {
    fn abstract_for(
        &mut self,
        table: &CellTable,
        cell: CellId,
        orientation: Orientation,
        rules: &DesignRules,
    ) -> Result<(Arc<CellAbstract>, u64), LayoutError> {
        let src = match self.hash_of.get(&cell) {
            Some(&h) => h,
            None => deep_hashes(table, cell)?[&cell],
        };
        let sig = mix(&[
            src,
            orientation.rotation as u64,
            orientation.mirror_y as u64,
            self.rules_hash,
        ]);
        if let Some(cached) = self
            .abstracts
            .get(&sig)
            .or_else(|| self.new_abstracts.get(&sig))
        {
            self.counters.abstract_hits += 1;
            return Ok((cached.clone(), sig));
        }
        self.counters.abstracts_derived += 1;
        let derived = Arc::new(derive_abstract(table, cell, orientation, rules)?);
        self.new_abstracts.insert(sig, derived.clone());
        Ok((derived, sig))
    }

    fn enabled(&self) -> bool {
        true
    }

    fn context_tag(&self) -> u64 {
        self.context
    }

    fn warm_seed(&mut self, axis: Axis) -> Option<Vec<i64>> {
        self.history.warm[axis_index(axis)].clone()
    }

    fn record_warm(&mut self, axis: Axis, positions: &[i64]) {
        self.history.warm[axis_index(axis)] = Some(positions.to_vec());
    }

    fn prev_sweep(&mut self, ordinal: usize) -> Option<Arc<SweepRecord>> {
        self.history.prev.get(ordinal).cloned()
    }

    fn record_sweep(&mut self, ordinal: usize, record: Arc<SweepRecord>) {
        if ordinal == self.history.next.len() {
            self.history.next.push(record);
        }
    }

    fn memo_get(&mut self, key: u64) -> Option<Arc<SweepSolution>> {
        self.memo
            .get(&key)
            .or_else(|| self.new_memo.get(&key))
            .cloned()
    }

    fn memo_put(&mut self, key: u64, solution: Arc<SweepSolution>) {
        self.new_memo.insert(key, solution);
    }

    fn counters(&mut self) -> Option<&mut ReuseCounters> {
        Some(&mut self.counters)
    }
}

/// The session's [`CompactHooks`] implementation for one
/// [`compact_cell_with`] run — borrows the session caches plus the cell's
/// own history, and collects the run's counters.
struct SessionHooks<'a> {
    abstracts: &'a mut HashMap<u64, Arc<CellAbstract>>,
    /// Deep output hashes of every already-processed definition.
    hash_of: &'a HashMap<CellId, u64>,
    rules_hash: u64,
    context: u64,
    history: &'a mut CellHistory,
    memo: &'a mut HashMap<u64, Arc<SweepSolution>>,
    counters: ReuseCounters,
    /// Armed fault schedule of the session, if any.
    faults: Option<&'a mut FaultPlan>,
    /// Injected amnesia: answer every cache lookup with a miss.
    forgetting: bool,
}

impl CompactHooks for SessionHooks<'_> {
    fn abstract_for(
        &mut self,
        table: &CellTable,
        cell: CellId,
        orientation: Orientation,
        rules: &DesignRules,
    ) -> Result<(Arc<CellAbstract>, u64), LayoutError> {
        // The walk processes children before parents, so the referenced
        // cell's output hash is always present; the deep-hash fallback
        // only fires for hook reuse outside the session walk.
        let src = match self.hash_of.get(&cell) {
            Some(&h) => h,
            None => deep_hashes(table, cell)?[&cell],
        };
        let sig = mix(&[
            src,
            orientation.rotation as u64,
            orientation.mirror_y as u64,
            self.rules_hash,
        ]);
        if let Some(cached) = self.abstracts.get(&sig).filter(|_| !self.forgetting) {
            self.counters.abstract_hits += 1;
            return Ok((cached.clone(), sig));
        }
        self.counters.abstracts_derived += 1;
        let derived = Arc::new(derive_abstract(table, cell, orientation, rules)?);
        self.abstracts.insert(sig, derived.clone());
        Ok((derived, sig))
    }

    fn enabled(&self) -> bool {
        true
    }

    fn context_tag(&self) -> u64 {
        self.context
    }

    fn warm_seed(&mut self, axis: Axis) -> Option<Vec<i64>> {
        if self.forgetting {
            return None;
        }
        self.history.warm[axis_index(axis)].clone()
    }

    fn record_warm(&mut self, axis: Axis, positions: &[i64]) {
        self.history.warm[axis_index(axis)] = Some(positions.to_vec());
    }

    fn prev_sweep(&mut self, ordinal: usize) -> Option<Arc<SweepRecord>> {
        if self.forgetting {
            return None;
        }
        self.history.prev.get(ordinal).cloned()
    }

    fn record_sweep(&mut self, ordinal: usize, record: Arc<SweepRecord>) {
        if ordinal == self.history.next.len() {
            self.history.next.push(record);
        }
    }

    fn memo_get(&mut self, key: u64) -> Option<Arc<SweepSolution>> {
        if self.forgetting {
            return None;
        }
        self.memo.get(&key).cloned()
    }

    fn memo_put(&mut self, key: u64, solution: Arc<SweepSolution>) {
        self.memo.insert(key, solution);
    }

    fn counters(&mut self) -> Option<&mut ReuseCounters> {
        Some(&mut self.counters)
    }

    fn fault(&mut self, site: FaultSite) -> Option<InjectedFault> {
        self.faults.as_mut().and_then(|p| p.trip(site))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_geom::{Orientation, Point, Rect};
    use rsg_layout::{Instance, Layer};

    /// Regression for the hash-aliasing bug: a definition whose instance
    /// dangles relative to the output-hash map must be a typed internal
    /// error, never a digest that folded the missing child as `0`. Two
    /// parents over *different* missing children used to alias onto one
    /// cache key and could replay each other's cached outcome.
    #[test]
    fn missing_child_hash_is_an_error_not_an_alias() {
        let mut table = CellTable::new();
        let mut leaf_a = CellDefinition::new("leaf_a");
        leaf_a.add_box(Layer::Metal1, Rect::from_coords(0, 0, 4, 4));
        let a = table.insert(leaf_a).unwrap();
        let mut leaf_b = CellDefinition::new("leaf_b");
        leaf_b.add_box(Layer::Poly, Rect::from_coords(0, 0, 8, 2));
        let b = table.insert(leaf_b).unwrap();

        // Same parent geometry over two different (unhashed) children:
        // the old `unwrap_or(0)` fold gave both the same digest.
        let mut over_a = CellDefinition::new("parent");
        over_a.add_instance(Instance::new(a, Point::new(0, 0), Orientation::NORTH));
        let mut over_b = CellDefinition::new("parent");
        over_b.add_instance(Instance::new(b, Point::new(0, 0), Orientation::NORTH));

        let empty: HashMap<CellId, u64> = HashMap::new();
        for def in [&over_a, &over_b] {
            match checked_hash(def, &empty) {
                Err(HierError::Internal(msg)) => {
                    assert!(msg.contains("parent"), "message names the cell: {msg}");
                }
                other => panic!("expected HierError::Internal, got {other:?}"),
            }
        }

        // With the children actually hashed, the two parents resolve to
        // *different* digests — the alias is gone.
        let mut hash_of = HashMap::new();
        hash_of.insert(a, checked_hash(table.require(a).unwrap(), &empty).unwrap());
        hash_of.insert(b, checked_hash(table.require(b).unwrap(), &empty).unwrap());
        let ha = checked_hash(&over_a, &hash_of).unwrap();
        let hb = checked_hash(&over_b, &hash_of).unwrap();
        assert_ne!(
            ha, hb,
            "distinct children must yield distinct parent digests"
        );
    }
}
