//! Resource budgets for the compaction pipeline.
//!
//! A [`Limits`] rides in [`crate::hier::HierOptions`] and is consulted at
//! *deterministic checkpoints* — after flattening counts are known, after
//! constraint generation, after each solver invocation — so a run that
//! exhausts a budget always fails at the same point with the same typed
//! [`Exhausted`] error, independent of timing or thread interleaving.
//! The one exception is [`Limits::deadline`], which is wall-clock by
//! nature: the *checkpoint locations* are deterministic, but whether the
//! deadline has passed at one of them is not. For that reason the
//! deadline is also the one field excluded from the incremental session's
//! context hash (see `rsg_compact::incremental`).
//!
//! The default is no limits at all; every budget is opt-in.

use std::fmt;
use std::time::Instant;

/// Which budget ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resource {
    /// Flattened box count (per cell being compacted, abstracts
    /// included).
    FlatBoxes,
    /// Generated constraint count (per constraint system built).
    Constraints,
    /// Cumulative solver relaxation passes (per cell sweep).
    SolvePasses,
    /// The wall-clock deadline passed.
    Deadline,
    /// Not a real budget: a fault-injection harness tripped this
    /// checkpoint (see `rsg_compact::fault`).
    Injected,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Resource::FlatBoxes => "flat boxes",
            Resource::Constraints => "constraints",
            Resource::SolvePasses => "solve passes",
            Resource::Deadline => "deadline",
            Resource::Injected => "injected fault",
        };
        f.write_str(name)
    }
}

/// Typed budget-exhaustion error: which resource, the configured limit,
/// and the observed demand at the checkpoint that tripped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exhausted {
    /// The exhausted budget.
    pub resource: Resource,
    /// The configured cap (0 for [`Resource::Deadline`] /
    /// [`Resource::Injected`]).
    pub limit: u64,
    /// What the run needed at the checkpoint (0 when not meaningful).
    pub observed: u64,
}

impl fmt::Display for Exhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.resource {
            Resource::Deadline => write!(f, "compaction deadline exceeded"),
            Resource::Injected => write!(f, "injected budget exhaustion"),
            r => write!(
                f,
                "resource budget exhausted: {} {r} needed, limit {}",
                self.observed, self.limit
            ),
        }
    }
}

impl std::error::Error for Exhausted {}

/// Resource budgets, all optional. `Limits::default()` imposes none.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Limits {
    /// Cap on the flattened box count of any one cell being compacted.
    pub max_flat_boxes: Option<u64>,
    /// Cap on the constraint count of any one generated system.
    pub max_constraints: Option<u64>,
    /// Cap on cumulative solver relaxation passes within one cell sweep.
    pub max_solve_passes: Option<u64>,
    /// Wall-clock deadline; checked at the same checkpoints as the
    /// counts. Excluded from incremental context hashes (wall-clock
    /// results are not content-addressable).
    pub deadline: Option<Instant>,
}

impl Limits {
    /// No budgets (the default).
    pub const NONE: Limits = Limits {
        max_flat_boxes: None,
        max_constraints: None,
        max_solve_passes: None,
        deadline: None,
    };

    fn check(cap: Option<u64>, resource: Resource, observed: u64) -> Result<(), Exhausted> {
        match cap {
            Some(limit) if observed > limit => Err(Exhausted {
                resource,
                limit,
                observed,
            }),
            _ => Ok(()),
        }
    }

    /// Checkpoint: a cell flattened to `observed` boxes.
    pub fn check_boxes(&self, observed: usize) -> Result<(), Exhausted> {
        Limits::check(self.max_flat_boxes, Resource::FlatBoxes, observed as u64)
    }

    /// Checkpoint: a constraint system holds `observed` constraints.
    pub fn check_constraints(&self, observed: usize) -> Result<(), Exhausted> {
        Limits::check(self.max_constraints, Resource::Constraints, observed as u64)
    }

    /// Checkpoint: a cell sweep has spent `observed` cumulative solver
    /// passes.
    pub fn check_passes(&self, observed: usize) -> Result<(), Exhausted> {
        Limits::check(
            self.max_solve_passes,
            Resource::SolvePasses,
            observed as u64,
        )
    }

    /// Checkpoint: the wall clock against the optional deadline.
    pub fn check_deadline(&self) -> Result<(), Exhausted> {
        match self.deadline {
            Some(d) if Instant::now() > d => Err(Exhausted {
                resource: Resource::Deadline,
                limit: 0,
                observed: 0,
            }),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unlimited() {
        let l = Limits::default();
        assert_eq!(l, Limits::NONE);
        assert!(l.check_boxes(usize::MAX).is_ok());
        assert!(l.check_constraints(usize::MAX).is_ok());
        assert!(l.check_passes(usize::MAX).is_ok());
        assert!(l.check_deadline().is_ok());
    }

    #[test]
    fn caps_trip_exactly_past_the_limit() {
        let l = Limits {
            max_flat_boxes: Some(10),
            ..Limits::NONE
        };
        assert!(l.check_boxes(10).is_ok());
        let err = l.check_boxes(11).unwrap_err();
        assert_eq!(err.resource, Resource::FlatBoxes);
        assert_eq!((err.limit, err.observed), (10, 11));
        assert!(err.to_string().contains("flat boxes"));
    }

    #[test]
    fn deadline_in_the_past_trips() {
        let l = Limits {
            deadline: Some(Instant::now() - std::time::Duration::from_secs(1)),
            ..Limits::NONE
        };
        assert!(matches!(
            l.check_deadline(),
            Err(Exhausted {
                resource: Resource::Deadline,
                ..
            })
        ));
    }
}
