//! Reusable sweep arenas.
//!
//! One compaction run is many sweeps over the same boxes: `compact_xy`
//! alternates axes until a fixpoint, the hierarchical walker re-sweeps
//! every cluster per pass, and the pitch fixpoint re-solves dozens of
//! times. Before this module each sweep rebuilt everything from cold —
//! constraint system, CSR graph, spatial index, candidate buffers — so
//! the allocator sat squarely on the hot path at megachip scale.
//!
//! [`SweepScratch`] keeps those allocations alive between sweeps:
//! clear-and-refill instead of drop-and-rebuild. The constraint system
//! inside goes further than capacity reuse — via
//! [`ConstraintSystem::reset`] it snapshots the previous sweep's content,
//! and a refill that reproduces it byte-for-byte (the converged final
//! alternation) gets the previous CSR graph back without any rebuild.

use crate::ConstraintSystem;
use rsg_geom::{Axis, CoverageProfile, GeomIndex, Rect};
use rsg_layout::Layer;

/// Buffers for one constraint-generation scan ([`crate::scanline`]).
///
/// Everything here is cleared (not shrunk) per use; the spatial index
/// recycles its bucket columns through
/// [`GeomIndex::rebuild_from_vec`].
#[derive(Debug)]
pub struct ScanScratch {
    /// Spatial index over the scanned boxes — backs both candidate
    /// enumeration and the hidden-edge oracle.
    pub(crate) index: GeomIndex<Layer>,
    /// Recycled storage for the index's item list.
    pub(crate) items: Vec<(Layer, Rect)>,
    /// Collected `(low box, high box, spacing)` triples, in emission
    /// order, shared by the serial scan and the parallel merge.
    pub(crate) spacings: Vec<(usize, usize, i64)>,
    /// Per-low-box candidate merge buffer `(high box, spacing)`.
    pub(crate) cand: Vec<(usize, i64)>,
    /// Per-edge keep marks for the transitive-reduction prune.
    pub(crate) keep: Vec<bool>,
    /// Per-source offsets into `spacings` for chain lookups.
    pub(crate) starts: Vec<usize>,
    /// The serial visibility cursor's profile cache.
    pub(crate) profiles: Vec<(Layer, CoverageProfile)>,
}

impl ScanScratch {
    /// An empty scratch; buffers grow on first use and stick around.
    pub fn new() -> ScanScratch {
        ScanScratch {
            index: GeomIndex::build(&[], Axis::X),
            items: Vec::new(),
            spacings: Vec::new(),
            cand: Vec::new(),
            keep: Vec::new(),
            starts: Vec::new(),
            profiles: Vec::new(),
        }
    }
}

impl Default for ScanScratch {
    fn default() -> ScanScratch {
        ScanScratch::new()
    }
}

/// Arena for a full sweep: the constraint system (with its cached CSR
/// graph and double-buffered content snapshot) plus the scan buffers.
///
/// [`crate::engine::compact_xy`] holds one per axis so that each
/// refill's snapshot comparison runs against the *same axis's* previous
/// sweep; the hierarchical walker and the leaf compactor thread one
/// through their fixpoint rounds the same way.
#[derive(Debug, Default)]
pub struct SweepScratch {
    pub(crate) sys: ConstraintSystem,
    pub(crate) scan: ScanScratch,
}

impl SweepScratch {
    /// An empty arena.
    pub fn new() -> SweepScratch {
        SweepScratch::default()
    }
}
