//! The leaf-cell compactor (§6.1, §6.3).
//!
//! "A leaf cell compactor is a compactor capable of compacting cells from
//! a library while taking into account how the cells in the library may
//! potentially interface together." Per Fig 6.3, inter-cell constraints
//! are *folded* through the pitch: a constraint from an edge of one
//! instance to an edge of the neighbouring instance becomes a constraint
//! between the cell's own edges with the pitch λ as an extra unknown —
//! every instance of a cell then shares one geometry, and "only one new
//! unknown (a λᵢ pitch parameter) is added for each new interface".
//!
//! The solved system yields new cell geometry *and* new pitches, from
//! which "it is possible to build a new sample layout for the new
//! technology" — [`CompactionResult::cells`] is exactly that library.
//!
//! Solving is delegated to any [`Solver`] backend; [`compact_batch`]
//! additionally fans a set of *independent* libraries out across worker
//! threads (each cell library is a closed constraint system, so batch
//! results are byte-identical to the serial path).

use crate::backend::{SolveError, Solver};
use crate::limits::{Exhausted, Limits};
use crate::scanline::{self, BoxVars, Method, Prune};
use crate::scratch::ScanScratch;
use crate::{Constraint, ConstraintSystem, PitchId, VarId};
use rsg_geom::{Axis, GeomIndex, Rect, Vector};
use rsg_layout::{CellDefinition, DesignRules, Layer};

/// How an interface displaces the second cell along the compaction axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PitchKind {
    /// The displacement is the unknown pitch λ, starting from the
    /// sample's value, with a cost weight (the replication factor `n` of
    /// §6.2's cost function `X ≈ Σ nᵢλᵢ`).
    VariableX {
        /// The pitch in the input sample layout.
        initial: i64,
        /// Cost weight (expected replication factor).
        weight: i64,
    },
    /// The displacement is fixed (e.g. a vertical-abutment interface
    /// contributes offset 0 during x compaction).
    FixedX(i64),
}

/// One legal interface between two library cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeafInterface {
    /// Index of the reference cell in the library slice.
    pub cell_a: usize,
    /// Index of the second cell (may equal `cell_a`).
    pub cell_b: usize,
    /// Displacement of B's origin along the compaction axis.
    pub kind: PitchKind,
    /// Fixed displacement of B's origin across the compaction axis.
    pub y_offset: i64,
    /// Pitch variable name for reporting.
    pub name: String,
}

/// The diagnostics of one solved pitch: the tight (zero-slack)
/// constraints that pin λ at its value — the §6.2 "which constraints set
/// the width" answer for one interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PitchBinding {
    /// The pitch variable's name.
    pub name: String,
    /// Its solved value.
    pub value: i64,
    /// The pitch-carrying constraints with zero slack at the solution.
    /// A single tight floor constraint (`λ ≥ spacing_floor`, encoded as
    /// a self-edge on the origin variable) means nothing geometric pins
    /// the pitch — the old pitch-collapse quirk, now clamped.
    pub tight: Vec<Constraint>,
}

/// Output of leaf-cell compaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactionResult {
    /// The compacted library, same order and names as the input.
    pub cells: Vec<CellDefinition>,
    /// Solved pitches `(name, value)` for each `VariableX` interface, in
    /// interface order.
    pub pitches: Vec<(String, i64)>,
    /// Per-pitch critical diagnostics, parallel to `pitches`.
    pub bindings: Vec<PitchBinding>,
    /// Total unknowns (edge variables + pitch variables) — the Fig 6.3
    /// reduction metric.
    pub unknowns: usize,
    /// Number of generated constraints.
    pub constraints: usize,
}

/// Leaf compaction failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeafError {
    /// The LP or longest-path system was infeasible.
    Infeasible(String),
    /// Rounded pitches could not be repaired to an integral solution.
    Rounding(String),
    /// Position arithmetic overflowed `i64` (input exceeded the
    /// coordinate budget the interior math is proven safe for).
    Overflow(String),
    /// The input library was malformed (coordinates past the ingest
    /// budget, out-of-range interface indices, pitch-shape errors).
    Input(String),
    /// A configured resource budget ran out.
    Exhausted(Exhausted),
    /// A batch worker panicked on this job; the rest of the batch is
    /// unaffected.
    Panicked(String),
}

impl std::fmt::Display for LeafError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LeafError::Infeasible(m) => write!(f, "leaf compaction infeasible: {m}"),
            LeafError::Rounding(m) => write!(f, "pitch rounding failed: {m}"),
            LeafError::Overflow(m) => write!(f, "leaf compaction overflowed: {m}"),
            LeafError::Input(m) => write!(f, "malformed leaf library: {m}"),
            LeafError::Exhausted(e) => e.fmt(f),
            LeafError::Panicked(m) => write!(f, "leaf compaction worker panicked: {m}"),
        }
    }
}

impl std::error::Error for LeafError {}

impl From<SolveError> for LeafError {
    fn from(e: SolveError) -> LeafError {
        match e {
            SolveError::Infeasible(m) => LeafError::Infeasible(m),
            SolveError::Rounding(m) => LeafError::Rounding(m),
            SolveError::Overflow(m) => LeafError::Overflow(m),
            SolveError::Input(m) => LeafError::Input(m),
        }
    }
}

impl From<Exhausted> for LeafError {
    fn from(e: Exhausted) -> LeafError {
        LeafError::Exhausted(e)
    }
}

/// A box with its edge variables and optional pitch tag (B-side boxes in
/// an interface pair carry the pitch).
#[derive(Debug, Clone, Copy)]
struct VBox {
    layer: Layer,
    rect: Rect,
    left: VarId,
    right: VarId,
    pitch: Option<PitchId>,
}

/// Compacts a cell library in x under every declared interface, solving
/// through the given backend. Equivalent to [`compact_limited`] with
/// [`Limits::NONE`].
///
/// # Errors
///
/// Returns [`LeafError`] on infeasible constraint systems or malformed
/// input.
pub fn compact(
    cells: &[CellDefinition],
    interfaces: &[LeafInterface],
    rules: &DesignRules,
    solver: &dyn Solver,
) -> Result<CompactionResult, LeafError> {
    compact_limited(cells, interfaces, rules, solver, &Limits::NONE)
}

/// [`compact`] under resource budgets: checkpoints fire after the flat
/// box count is known, after constraint generation, and (for the
/// deadline) at entry — deterministic points, so an exhausted run always
/// fails identically.
///
/// # Errors
///
/// Returns [`LeafError`] on infeasible systems, malformed input, or an
/// exhausted budget.
pub fn compact_limited(
    cells: &[CellDefinition],
    interfaces: &[LeafInterface],
    rules: &DesignRules,
    solver: &dyn Solver,
    limits: &Limits,
) -> Result<CompactionResult, LeafError> {
    compact_limited_par(
        cells,
        interfaces,
        rules,
        solver,
        limits,
        Parallelism::Serial,
    )
}

/// [`compact_limited`] with constraint *generation* fanned across worker
/// threads: the intra-cell spacing scans and the per-interface cross
/// scans run their pair filters in parallel, emitting into the system in
/// the serial order. The result — success or error — is bit-identical
/// to [`compact_limited`] at any thread count; only wall-clock changes.
///
/// Use this for one big library on an otherwise idle machine;
/// [`compact_batch`] applies it automatically to single-job batches
/// (many-job batches keep their job-level fan-out instead).
///
/// # Errors
///
/// Returns [`LeafError`] on infeasible systems, malformed input, or an
/// exhausted budget.
pub fn compact_limited_par(
    cells: &[CellDefinition],
    interfaces: &[LeafInterface],
    rules: &DesignRules,
    solver: &dyn Solver,
    limits: &Limits,
    par: Parallelism,
) -> Result<CompactionResult, LeafError> {
    compact_limited_impl(cells, interfaces, rules, solver, limits, par, Prune::Apply)
}

/// [`compact_limited_par`] with the intra-cell transitive-reduction
/// prune disabled — the full spacing emission reaches the solver. The
/// result (cells, pitches, and [`PitchBinding`]s) is identical to the
/// pruned path; this entry exists so the equivalence proptests can pin
/// that claim rather than assume it.
///
/// # Errors
///
/// Returns [`LeafError`] on infeasible systems, malformed input, or an
/// exhausted budget.
pub fn compact_limited_unpruned(
    cells: &[CellDefinition],
    interfaces: &[LeafInterface],
    rules: &DesignRules,
    solver: &dyn Solver,
    limits: &Limits,
    par: Parallelism,
) -> Result<CompactionResult, LeafError> {
    compact_limited_impl(cells, interfaces, rules, solver, limits, par, Prune::Keep)
}

fn compact_limited_impl(
    cells: &[CellDefinition],
    interfaces: &[LeafInterface],
    rules: &DesignRules,
    solver: &dyn Solver,
    limits: &Limits,
    par: Parallelism,
    prune: Prune,
) -> Result<CompactionResult, LeafError> {
    let axis = Axis::X;
    limits.check_deadline()?;
    // Ingest validation: coordinate budget (so interior arithmetic is
    // provably overflow-free) and interface index range.
    let mut total_boxes = 0usize;
    for cell in cells {
        cell.validate_budget()
            .map_err(|e| LeafError::Input(e.to_string()))?;
        total_boxes += cell.boxes().count();
    }
    limits.check_boxes(total_boxes)?;
    for iface in interfaces {
        if iface.cell_a >= cells.len() || iface.cell_b >= cells.len() {
            return Err(LeafError::Input(format!(
                "interface '{}' references cell {} of a {}-cell library",
                iface.name,
                iface.cell_a.max(iface.cell_b),
                cells.len()
            )));
        }
    }
    let mut sys = ConstraintSystem::new_along(axis);
    // A global origin variable pins each cell's frame: without it, a
    // cell's contents could translate within its own coordinate system
    // and absorb the pitch (the λ / translation degeneracy).
    let origin = sys.add_var(0);

    // Edge variables per cell box. One scan scratch serves every cell's
    // intra-cell append *and* the cross scans below — the per-cell index
    // and candidate buffers are cleared, not reallocated, between cells.
    let mut scan = ScanScratch::new();
    let mut cell_vars: Vec<Vec<BoxVars>> = Vec::with_capacity(cells.len());
    let mut cell_boxes: Vec<Vec<(Layer, Rect)>> = Vec::with_capacity(cells.len());
    for cell in cells {
        let boxes: Vec<(Layer, Rect)> = cell.boxes().collect();
        let vars: Vec<BoxVars> = boxes
            .iter()
            .map(|(_, r)| BoxVars {
                left: sys.add_var(r.lo_along(axis)),
                right: sys.add_var(r.hi_along(axis)),
            })
            .collect();
        // Intra-cell constraints: widths, connectivity, visibility
        // spacing (transitively-reduced — solution-identical).
        scanline::append_constraints_with(
            &mut sys,
            &boxes,
            &vars,
            rules,
            Method::Visibility,
            prune,
            par,
            &mut scan,
        );
        // Anchor the cell's lowest edge at its original coordinate.
        if let Some(k) = (0..boxes.len()).min_by_key(|&k| boxes[k].1.lo_along(axis)) {
            sys.require_exact(origin, vars[k].left, boxes[k].1.lo_along(axis));
        }
        cell_vars.push(vars);
        cell_boxes.push(boxes);
    }

    // Pitch variables + folded inter-cell constraints (Fig 6.3). Every
    // free pitch gets a floor at the technology's smallest spacing rule
    // (encoded as `λ ≥ floor` through a vacuous origin self-edge): an
    // interface whose cross material does not interact would otherwise
    // have no lower bound at all and the cost function would drive its
    // pitch to the meaningless "stack the cells" value 0.
    let pitch_floor = rules.spacing_floor();
    let mut pitch_ids: Vec<Option<PitchId>> = Vec::with_capacity(interfaces.len());
    let mut pitch_weights: Vec<i64> = Vec::new();
    for iface in interfaces {
        let (pitch, x0) = match iface.kind {
            PitchKind::VariableX { initial, weight } => {
                let p = sys.add_pitch(iface.name.clone());
                pitch_weights.push(weight);
                if pitch_floor > 0 {
                    sys.require_with_pitch(origin, origin, pitch_floor, p, 1);
                }
                (Some(p), initial)
            }
            PitchKind::FixedX(dx) => (None, dx),
        };
        pitch_ids.push(pitch);

        let shift = match axis {
            Axis::X => Vector::new(x0, iface.y_offset),
            Axis::Y => Vector::new(iface.y_offset, x0),
        };
        let a_view: Vec<VBox> = cell_boxes[iface.cell_a]
            .iter()
            .zip(&cell_vars[iface.cell_a])
            .map(|(&(layer, rect), bv)| VBox {
                layer,
                rect,
                left: bv.left,
                right: bv.right,
                pitch: None,
            })
            .collect();
        let b_view: Vec<VBox> = cell_boxes[iface.cell_b]
            .iter()
            .zip(&cell_vars[iface.cell_b])
            .map(|(&(layer, rect), bv)| VBox {
                layer,
                rect: rect.translate(shift),
                left: bv.left,
                right: bv.right,
                pitch,
            })
            .collect();
        append_cross_constraints(&mut sys, &a_view, &b_view, rules, par, &mut scan)?;
    }

    // Metric excludes the origin convenience variable (Fig 6.3 counts
    // edge abscissas + pitches only).
    let unknowns = (sys.num_vars() - 1) + sys.num_pitches();
    let n_constraints = sys.constraints().len();
    limits.check_constraints(n_constraints)?;

    // Solve through the chosen backend.
    let out = solver.solve_system(&sys, &pitch_weights)?;
    let (positions, pitches) = (out.positions, out.pitches);

    debug_assert!(sys.violations(&positions, &pitches).is_empty());

    // Rebuild the library with the new coordinates along the axis.
    let mut out_cells = Vec::with_capacity(cells.len());
    for (cell, vars) in cells.iter().zip(&cell_vars) {
        let rects: Vec<Rect> = cell
            .boxes()
            .zip(vars)
            .map(|((_, rect), bv)| {
                rect.with_span_along(
                    axis,
                    positions[bv.left.index()],
                    positions[bv.right.index()],
                )
            })
            .collect();
        // `rects` is built from this cell's own boxes, so the count
        // matches; route the impossible mismatch as a typed error anyway.
        out_cells.push(
            cell.with_box_rects(rects)
                .map_err(|e| LeafError::Input(e.to_string()))?,
        );
    }

    // Which constraints pin each pitch: zero-slack pitch-carrying
    // constraints, the §6.2 explanation of the solved λᵢ.
    let slacks = sys.slacks(&positions, &pitches);
    let mut named_pitches = Vec::new();
    let mut bindings = Vec::new();
    let mut k = 0usize;
    for (iface, pid) in interfaces.iter().zip(&pitch_ids) {
        let Some(p) = pid else { continue };
        named_pitches.push((iface.name.clone(), pitches[k]));
        let tight: Vec<Constraint> = sys
            .constraints()
            .iter()
            .zip(&slacks)
            .filter(|(c, &s)| s == 0 && c.pitch.is_some_and(|(q, _)| q == *p))
            .map(|(c, _)| *c)
            .collect();
        bindings.push(PitchBinding {
            name: iface.name.clone(),
            value: pitches[k],
            tight,
        });
        k += 1;
    }

    Ok(CompactionResult {
        cells: out_cells,
        pitches: named_pitches,
        bindings,
        unknowns,
        constraints: n_constraints,
    })
}

/// One independent leaf-library compaction job for [`compact_batch`].
#[derive(Debug, Clone)]
pub struct LibraryJob {
    /// The library cells.
    pub cells: Vec<CellDefinition>,
    /// The declared interfaces between them.
    pub interfaces: Vec<LeafInterface>,
}

impl LibraryJob {
    /// Deterministic content digest of the job — the leaf-result cache
    /// key of `incremental::CompactSession`. Two jobs hash equal iff
    /// their cells (geometry, names, order) and interfaces are
    /// identical, so equal hashes under equal rules and solver yield a
    /// byte-identical [`CompactionResult`].
    ///
    /// Library cells are self-contained (the leaf compactor flattens
    /// nothing), so instance references inside a library cell — not a
    /// supported input — are digested by raw id only.
    pub fn content_hash(&self) -> u64 {
        let mut h = rsg_layout::hash::ContentHasher::new();
        h.write_u64(self.cells.len() as u64);
        for cell in &self.cells {
            h.write_u64(rsg_layout::hash::hash_cell(cell, |id| id.raw() as u64));
        }
        h.write_u64(self.interfaces.len() as u64);
        for i in &self.interfaces {
            h.write_u64(i.cell_a as u64).write_u64(i.cell_b as u64);
            match i.kind {
                PitchKind::VariableX { initial, weight } => {
                    h.write_u64(1).write_i64(initial).write_i64(weight);
                }
                PitchKind::FixedX(dx) => {
                    h.write_u64(2).write_i64(dx);
                }
            }
            h.write_i64(i.y_offset).write_str(&i.name);
        }
        h.finish()
    }
}

/// Compacts many *independent* cell libraries, optionally in parallel.
///
/// Each job is a closed constraint system, so the jobs are
/// embarrassingly parallel and the output (including every error) is
/// byte-identical to mapping [`compact`] serially — [`Parallelism`] only
/// changes wall-clock time. This is the batch entry point for compacting
/// a whole generator library (the paper's "compact the cell A only
/// once" economics, multiplied across a cell catalogue).
///
/// Results are keyed **by job index** — `result[k]` always belongs to
/// `jobs[k]` — never by cell or pitch name. Jobs whose cells or
/// interfaces carry duplicate names therefore cannot cross wires under
/// any scheduling (pinned by the duplicate-name regression test below).
pub fn compact_batch(
    jobs: &[LibraryJob],
    rules: &DesignRules,
    solver: &dyn Solver,
    parallelism: Parallelism,
) -> Vec<Result<CompactionResult, LeafError>> {
    // A single-job batch has no job-level work to distribute, so the
    // workers move inside the job: its constraint-generation scans fan
    // out instead (bit-identical output either way).
    let inner = if jobs.len() == 1 {
        parallelism
    } else {
        Parallelism::Serial
    };
    crate::par::par_map(jobs, parallelism.threads(), |job| {
        compact_limited_par(
            &job.cells,
            &job.interfaces,
            rules,
            solver,
            &Limits::NONE,
            inner,
        )
    })
    .into_iter()
    .map(|slot| match slot {
        Ok(result) => result,
        // A panicking job poisons only its own slot, as a typed error.
        Err(panic) => Err(LeafError::Panicked(panic.message)),
    })
    .collect()
}

pub use crate::par::Parallelism;

/// Emits the cross constraints of one interface pair: spacing between
/// A-side and B-side boxes, folded through the pitch term (paper Fig
/// 6.3's edge replacement).
fn append_cross_constraints(
    sys: &mut ConstraintSystem,
    a_view: &[VBox],
    b_view: &[VBox],
    rules: &DesignRules,
    par: Parallelism,
    scan: &mut ScanScratch,
) -> Result<(), LeafError> {
    let axis = sys.axis();
    let all: Vec<VBox> = a_view.iter().chain(b_view).copied().collect();
    let ScanScratch {
        index,
        items,
        spacings,
        ..
    } = scan;
    items.clear();
    items.extend(all.iter().map(|v| (v.layer, v.rect)));
    let stale = index.rebuild_from_vec(std::mem::take(items), axis);
    *items = stale;
    let index: &GeomIndex<Layer> = index;

    let emit = |sys: &mut ConstraintSystem, from: &VBox, to: &VBox, w: i64| {
        // x_to − x_from + (coeff_to − coeff_from)·λ ≥ w, where a box's
        // pitch tag contributes +λ to its edge positions.
        let from_var = from.right;
        let to_var = to.left;
        match (from.pitch, to.pitch) {
            (None, None) => sys.require(from_var, to_var, w),
            (Some(p), Some(q)) if p == q => sys.require(from_var, to_var, w),
            (None, Some(p)) => sys.require_with_pitch(from_var, to_var, w, p, 1),
            (Some(p), None) => sys.require_with_pitch(from_var, to_var, w, p, -1),
            // One view carries at most one pitch (a_view is always
            // untagged), so two distinct pitches on one constraint can
            // only mean the views were built wrong.
            (Some(_), Some(_)) => {
                return Err(LeafError::Input(
                    "cross constraint spans two distinct pitch variables".into(),
                ))
            }
        }
        Ok(())
    };

    // Spacing: a strictly below b along the axis, shared across-range,
    // not hidden. Abutting same-layer cross boxes are connected material
    // and get no spacing requirement (their relative position is
    // governed by the pitch). The scan is a pure pair filter (the oracle
    // is read-only behind per-worker cursors), so ranges of low boxes
    // fan across workers; the collected pairs are emitted serially in
    // the (i, j) order the serial loop would use, so the system — and
    // any emission error — is bit-identical at every thread count.
    let scan_range = |range: std::ops::Range<usize>, out: &mut Vec<(usize, usize, i64)>| {
        let mut cursor = scanline::VisibilityCursor::new(index);
        for i in range {
            let a = &all[i];
            for (j, b) in all.iter().enumerate() {
                if i == j || (i < a_view.len()) == (j < a_view.len()) {
                    continue;
                }
                let Some(spacing) = rules.min_spacing(a.layer, b.layer) else {
                    continue;
                };
                if a.rect.hi_along(axis) > b.rect.lo_along(axis) {
                    continue;
                }
                if a.rect.lo_across(axis) >= b.rect.hi_across(axis)
                    || b.rect.lo_across(axis) >= a.rect.hi_across(axis)
                {
                    continue;
                }
                if a.layer == b.layer && a.rect.intersect(b.rect).is_some() {
                    continue; // abutting/connected across the interface
                }
                if cursor.hidden_between(i, j) {
                    continue;
                }
                out.push((i, j, spacing));
            }
        }
    };
    let threads = par.threads().min(all.len().max(1));
    let pairs = spacings;
    pairs.clear();
    if threads <= 1 {
        scan_range(0..all.len(), pairs);
    } else {
        let chunk = all.len().div_ceil(threads * 8).max(1);
        let ranges: Vec<(usize, usize)> = (0..all.len())
            .step_by(chunk)
            .map(|s| (s, (s + chunk).min(all.len())))
            .collect();
        let blocks = crate::par::par_map(&ranges, threads, |&(s, e)| {
            let mut block = Vec::new();
            scan_range(s..e, &mut block);
            block
        });
        for (block, &(s, e)) in blocks.into_iter().zip(&ranges) {
            match block {
                Ok(mut b) => pairs.append(&mut b),
                // The scan closure is panic-free; if a worker still
                // died, recompute the range inline so any genuine panic
                // surfaces on the caller's thread, as in serial.
                Err(_) => scan_range(s..e, pairs),
            }
        }
    }
    for &(i, j, spacing) in pairs.iter() {
        emit(sys, &all[i], &all[j], spacing)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Balanced, BellmanFord, SimplexPitch};
    use rsg_layout::Technology;

    fn rules() -> DesignRules {
        Technology::mead_conway(2).rules.clone()
    }

    fn bf() -> BellmanFord {
        BellmanFord::SORTED
    }

    /// Fig 6.3: one cell with boxes, one self-interface: the unknowns are
    /// the cell's own edges plus one λ — 5 instead of the flat 8.
    #[test]
    fn fig_6_3_unknown_reduction() {
        let mut cell = CellDefinition::new("a");
        cell.add_box(Layer::Poly, Rect::from_coords(0, 0, 4, 20));
        cell.add_box(Layer::Poly, Rect::from_coords(12, 0, 16, 20));
        let ifaces = vec![LeafInterface {
            cell_a: 0,
            cell_b: 0,
            kind: PitchKind::VariableX {
                initial: 24,
                weight: 1,
            },
            y_offset: 0,
            name: "lambda_a".into(),
        }];
        let out = compact(&[cell], &ifaces, &rules(), &bf()).unwrap();
        assert_eq!(out.unknowns, 4 + 1, "4 edges + 1 pitch");
        // Pitch compacts to the minimum: second box at min poly spacing
        // from first, then wrap: λ = 16-12... solved geometry: boxes 4
        // wide, gap 4 (2λ poly spacing at λ=2), λ = 4+4+4+4 = 16.
        let lambda = out.pitches[0].1;
        assert_eq!(lambda, 16, "pitches: {:?}", out.pitches);
        // The compacted cell is design-rule clean when tiled at λ.
        let boxes: Vec<(Layer, Rect)> = out.cells[0].boxes().collect();
        assert_eq!(boxes[0].1.width(), 4);
        assert_eq!(boxes[1].1.width(), 4);
    }

    /// §6.2 / Figs 6.1–6.2: pitches trade off; the cost weights decide
    /// which one wins.
    #[test]
    fn pitch_tradeoff_follows_cost_function() {
        // Cell: P in row A, Q in row B; interface 2 couples P against the
        // neighbour's Q (helping small x_q), interface 3 couples Q against
        // the neighbour's P (hurting large x_q). λ₂ + λ₃ is conserved.
        let mut cell = CellDefinition::new("a");
        cell.add_box(Layer::Metal1, Rect::from_coords(0, 0, 4, 10)); // P
        cell.add_box(Layer::Metal1, Rect::from_coords(20, 20, 24, 30)); // Q
        let mk = |w2: i64, w3: i64| {
            vec![
                LeafInterface {
                    cell_a: 0,
                    cell_b: 0,
                    kind: PitchKind::VariableX {
                        initial: 40,
                        weight: w2,
                    },
                    y_offset: -20,
                    name: "l2".into(),
                },
                LeafInterface {
                    cell_a: 0,
                    cell_b: 0,
                    kind: PitchKind::VariableX {
                        initial: 40,
                        weight: w3,
                    },
                    y_offset: 20,
                    name: "l3".into(),
                },
            ]
        };
        let r = rules();
        // Heavy weight on l3 → shrink l3 at l2's expense, and vice versa.
        let favor_l3 = compact(&[cell.clone()], &mk(1, 10), &r, &bf()).unwrap();
        let favor_l2 = compact(&[cell.clone()], &mk(10, 1), &r, &bf()).unwrap();
        let (l2a, l3a) = (favor_l3.pitches[0].1, favor_l3.pitches[1].1);
        let (l2b, l3b) = (favor_l2.pitches[0].1, favor_l2.pitches[1].1);
        assert!(l3a < l3b, "favoring l3 shrinks it: {l3a} vs {l3b}");
        assert!(l2b < l2a, "favoring l2 shrinks it: {l2b} vs {l2a}");
        // The trade-off is real: their sum is (nearly) conserved.
        assert!((l2a + l3a) <= (l2b + l3b) + 1);
        assert!((l2b + l3b) <= (l2a + l3a) + 1);
    }

    /// A two-cell library with an A–B interface and a fixed vertical
    /// interface: both cells compact, the A–B pitch lands at the minimum.
    #[test]
    fn two_cell_library() {
        let mut a = CellDefinition::new("a");
        a.add_box(Layer::Diffusion, Rect::from_coords(0, 0, 6, 10));
        a.add_box(Layer::Diffusion, Rect::from_coords(30, 0, 36, 10));
        let mut b = CellDefinition::new("b");
        b.add_box(Layer::Diffusion, Rect::from_coords(0, 0, 8, 10));
        let ifaces = vec![
            LeafInterface {
                cell_a: 0,
                cell_b: 1,
                kind: PitchKind::VariableX {
                    initial: 60,
                    weight: 5,
                },
                y_offset: 0,
                name: "lab".into(),
            },
            LeafInterface {
                cell_a: 0,
                cell_b: 0,
                kind: PitchKind::FixedX(0),
                y_offset: -12,
                name: "vert".into(),
            },
        ];
        let out = compact(&[a, b], &ifaces, &rules(), &bf()).unwrap();
        // Intra: A's two diff boxes pull to 6λ spacing (6 at λ=2): second
        // box at 12..18. A–B pitch: B clears A's right box by 6.
        let a_boxes: Vec<(Layer, Rect)> = out.cells[0].boxes().collect();
        assert_eq!(a_boxes[1].1.lo().x - a_boxes[0].1.hi().x, 6);
        let lab = out.pitches.iter().find(|(n, _)| n == "lab").unwrap().1;
        assert_eq!(lab, a_boxes[1].1.hi().x + 6);
    }

    /// Compacted cells re-tile without violations: rebuild the interface
    /// pair at the solved pitch and re-scan.
    #[test]
    fn compacted_library_revalidates() {
        let mut cell = CellDefinition::new("a");
        cell.add_box(Layer::Poly, Rect::from_coords(2, 0, 8, 30));
        cell.add_box(Layer::Metal1, Rect::from_coords(14, 5, 26, 25));
        cell.add_box(Layer::Poly, Rect::from_coords(30, 0, 34, 30));
        let ifaces = vec![LeafInterface {
            cell_a: 0,
            cell_b: 0,
            kind: PitchKind::VariableX {
                initial: 44,
                weight: 1,
            },
            y_offset: 0,
            name: "l".into(),
        }];
        let r = rules();
        let out = compact(&[cell], &ifaces, &r, &bf()).unwrap();
        let lambda = out.pitches[0].1;
        // Tile 3 instances and scan the flat result: no violations.
        let mut flat: Vec<(Layer, Rect)> = Vec::new();
        for k in 0..3 {
            for (l, rect) in out.cells[0].boxes() {
                flat.push((l, rect.translate(rsg_geom::Vector::new(k * lambda, 0))));
            }
        }
        let (sys, vars) = scanline::generate(&flat, &r, Method::Visibility, Axis::X);
        let positions: Vec<i64> = flat
            .iter()
            .flat_map(|(_, rect)| [rect.lo().x, rect.hi().x])
            .collect();
        let _ = vars;
        assert!(
            sys.violations(&positions, &[]).is_empty(),
            "tiled compacted cell violates rules"
        );
    }

    /// Every free pitch is floored at the technology's smallest spacing
    /// rule, and the bindings expose what pins it: geometry when the
    /// material interacts, the floor alone when it does not.
    #[test]
    fn pitch_floor_and_bindings() {
        let mut a = CellDefinition::new("a");
        a.add_box(Layer::Metal1, Rect::from_coords(0, 0, 6, 10));
        let mut b = CellDefinition::new("b");
        b.add_box(Layer::Poly, Rect::from_coords(0, 0, 4, 10));
        let ifaces = vec![LeafInterface {
            cell_a: 0,
            cell_b: 1,
            kind: PitchKind::VariableX {
                initial: 40,
                weight: 1,
            },
            y_offset: 0,
            name: "cross".into(),
        }];
        let r = rules();
        // Metal1 and poly never interact in the Mead–Conway set: without
        // the floor this pitch collapsed to 0 (the pinned quirk).
        let out = compact(&[a, b], &ifaces, &r, &bf()).unwrap();
        assert_eq!(out.pitches, vec![("cross".to_string(), r.spacing_floor())]);
        assert_eq!(out.bindings.len(), 1);
        let binding = &out.bindings[0];
        assert_eq!(binding.value, r.spacing_floor());
        // The only tight pitch constraint is the floor itself — the
        // origin self-edge.
        assert_eq!(binding.tight.len(), 1);
        assert_eq!(binding.tight[0].from, binding.tight[0].to);
        assert_eq!(binding.tight[0].weight, r.spacing_floor());
    }

    #[test]
    fn geometric_binding_reported_when_material_interacts() {
        let mut cell = CellDefinition::new("a");
        cell.add_box(Layer::Poly, Rect::from_coords(0, 0, 4, 20));
        cell.add_box(Layer::Poly, Rect::from_coords(12, 0, 16, 20));
        let ifaces = vec![LeafInterface {
            cell_a: 0,
            cell_b: 0,
            kind: PitchKind::VariableX {
                initial: 24,
                weight: 1,
            },
            y_offset: 0,
            name: "lambda_a".into(),
        }];
        let out = compact(&[cell], &ifaces, &rules(), &bf()).unwrap();
        let binding = &out.bindings[0];
        assert_eq!(binding.name, "lambda_a");
        assert_eq!(binding.value, 16);
        // Real cross-spacing constraints pin this pitch, not the floor.
        assert!(
            binding.tight.iter().any(|c| c.from != c.to),
            "expected a geometric binding, got {:?}",
            binding.tight
        );
    }

    #[test]
    fn infeasible_library_reports() {
        // A cell whose self-interface at fixed x = 0 demands impossible
        // same-position spacing.
        let mut cell = CellDefinition::new("bad");
        cell.add_box(Layer::Poly, Rect::from_coords(0, 0, 4, 10));
        cell.add_box(Layer::Poly, Rect::from_coords(8, 0, 12, 10));
        let ifaces = vec![LeafInterface {
            cell_a: 0,
            cell_b: 0,
            // Fixed pitch narrower than the two boxes + spacing can get.
            kind: PitchKind::FixedX(6),
            y_offset: 0,
            name: "tight".into(),
        }];
        let err = compact(&[cell], &ifaces, &rules(), &bf()).unwrap_err();
        assert!(matches!(err, LeafError::Infeasible(_)), "{err}");
    }

    fn sample_jobs(n: usize) -> Vec<LibraryJob> {
        (0..n)
            .map(|k| {
                let k = k as i64;
                let mut cell = CellDefinition::new(format!("cell{k}"));
                cell.add_box(Layer::Poly, Rect::from_coords(2, 0, 8, 30));
                cell.add_box(Layer::Metal1, Rect::from_coords(14, 5, 26, 25));
                cell.add_box(
                    Layer::Poly,
                    Rect::from_coords(30 + 2 * k, 0, 34 + 2 * k, 30),
                );
                LibraryJob {
                    cells: vec![cell],
                    interfaces: vec![LeafInterface {
                        cell_a: 0,
                        cell_b: 0,
                        kind: PitchKind::VariableX {
                            initial: 44 + 2 * k,
                            weight: 1 + k,
                        },
                        y_offset: 0,
                        name: format!("l{k}"),
                    }],
                }
            })
            .collect()
    }

    #[test]
    fn batch_parallel_is_byte_identical_to_serial() {
        let jobs = sample_jobs(12);
        let r = rules();
        let serial = compact_batch(&jobs, &r, &bf(), Parallelism::Serial);
        for par in [Parallelism::Auto, Parallelism::Threads(3)] {
            let parallel = compact_batch(&jobs, &r, &bf(), par);
            assert_eq!(serial, parallel, "{par:?} diverged from serial");
        }
    }

    /// Regression: jobs carrying *duplicate* cell and pitch names must
    /// come back keyed by job index, never collated by name. The jobs
    /// below all name their cell `cell` and their pitch `l`, but each
    /// has distinguishable geometry; the batch result must line up with
    /// the per-index serial compaction under every parallelism mode.
    #[test]
    fn batch_with_duplicate_names_keeps_job_order() {
        // The compactor preserves box widths, so giving job k a bar of
        // width 4+k guarantees every job's *result* is distinct — any
        // cross-wiring or name-keyed collation would be caught.
        let jobs: Vec<LibraryJob> = (0..8)
            .map(|k| {
                let k = k as i64;
                let mut cell = CellDefinition::new("cell"); // same name on purpose
                cell.add_box(Layer::Poly, Rect::from_coords(0, 0, 4 + k, 20));
                cell.add_box(Layer::Poly, Rect::from_coords(30, 0, 34, 20));
                LibraryJob {
                    cells: vec![cell],
                    interfaces: vec![LeafInterface {
                        cell_a: 0,
                        cell_b: 0,
                        kind: PitchKind::VariableX {
                            initial: 44,
                            weight: 1,
                        },
                        y_offset: 0,
                        name: "l".into(), // same pitch name on purpose
                    }],
                }
            })
            .collect();
        let r = rules();
        let expected: Vec<CompactionResult> = jobs
            .iter()
            .map(|job| compact(&job.cells, &job.interfaces, &r, &bf()).unwrap())
            .collect();
        // Self-check: the jobs really are pairwise distinguishable, so a
        // permuted or collated batch cannot pass by accident.
        for (a, ra) in expected.iter().enumerate() {
            for (b, rb) in expected.iter().enumerate().skip(a + 1) {
                assert_ne!(ra, rb, "jobs {a} and {b} are indistinguishable");
            }
        }
        for par in [
            Parallelism::Serial,
            Parallelism::Auto,
            Parallelism::Threads(4),
        ] {
            let batch = compact_batch(&jobs, &r, &bf(), par);
            assert_eq!(batch.len(), jobs.len());
            for (k, (want, got)) in expected.iter().zip(&batch).enumerate() {
                assert_eq!(
                    got.as_ref().unwrap(),
                    want,
                    "{par:?}: result {k} does not belong to job {k}"
                );
            }
        }
    }

    #[test]
    fn batch_through_every_backend() {
        let jobs = sample_jobs(4);
        let r = rules();
        for backend in [&bf() as &dyn Solver, &Balanced, &SimplexPitch] {
            let out = compact_batch(&jobs, &r, backend, Parallelism::Auto);
            assert!(
                out.iter().all(Result::is_ok),
                "{} failed a batch job",
                backend.name()
            );
        }
    }
}
