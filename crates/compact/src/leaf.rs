//! The leaf-cell compactor (§6.1, §6.3).
//!
//! "A leaf cell compactor is a compactor capable of compacting cells from
//! a library while taking into account how the cells in the library may
//! potentially interface together." Per Fig 6.3, inter-cell constraints
//! are *folded* through the pitch: a constraint from an edge of one
//! instance to an edge of the neighbouring instance becomes a constraint
//! between the cell's own edges with the pitch λ as an extra unknown —
//! every instance of a cell then shares one geometry, and "only one new
//! unknown (a λᵢ pitch parameter) is added for each new interface".
//!
//! The solved system yields new cell geometry *and* new pitches, from
//! which "it is possible to build a new sample layout for the new
//! technology" — [`CompactionResult::cells`] is exactly that library.

use crate::scanline::{self, BoxVars, Method};
use crate::simplex::{Lp, LpError, Sense};
use crate::solver::{self, EdgeOrder};
use crate::{ConstraintSystem, PitchId, VarId};
use rsg_geom::{Point, Rect, Vector};
use rsg_layout::{CellDefinition, DesignRules, Layer, LayoutObject};

/// How an interface displaces the second cell in x.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PitchKind {
    /// The x displacement is the unknown pitch λ, starting from the
    /// sample's value, with a cost weight (the replication factor `n` of
    /// §6.2's cost function `X ≈ Σ nᵢλᵢ`).
    VariableX {
        /// The pitch in the input sample layout.
        initial: i64,
        /// Cost weight (expected replication factor).
        weight: i64,
    },
    /// The x displacement is fixed (e.g. a vertical-abutment interface
    /// contributes x-offset 0 during x compaction).
    FixedX(i64),
}

/// One legal interface between two library cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeafInterface {
    /// Index of the reference cell in the library slice.
    pub cell_a: usize,
    /// Index of the second cell (may equal `cell_a`).
    pub cell_b: usize,
    /// Displacement of B's origin in x.
    pub kind: PitchKind,
    /// Fixed displacement of B's origin in y.
    pub y_offset: i64,
    /// Pitch variable name for reporting.
    pub name: String,
}

/// Output of leaf-cell compaction.
#[derive(Debug, Clone)]
pub struct CompactionResult {
    /// The compacted library, same order and names as the input.
    pub cells: Vec<CellDefinition>,
    /// Solved pitches `(name, value)` for each `VariableX` interface, in
    /// interface order.
    pub pitches: Vec<(String, i64)>,
    /// Total unknowns (edge variables + pitch variables) — the Fig 6.3
    /// reduction metric.
    pub unknowns: usize,
    /// Number of generated constraints.
    pub constraints: usize,
}

/// Leaf compaction failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeafError {
    /// The LP or longest-path system was infeasible.
    Infeasible(String),
    /// Rounded pitches could not be repaired to an integral solution.
    Rounding(String),
}

impl std::fmt::Display for LeafError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LeafError::Infeasible(m) => write!(f, "leaf compaction infeasible: {m}"),
            LeafError::Rounding(m) => write!(f, "pitch rounding failed: {m}"),
        }
    }
}

impl std::error::Error for LeafError {}

/// A box with its edge variables and optional pitch tag (B-side boxes in
/// an interface pair carry the pitch).
#[derive(Debug, Clone, Copy)]
struct VBox {
    layer: Layer,
    rect: Rect,
    left: VarId,
    right: VarId,
    pitch: Option<PitchId>,
}

/// Compacts a cell library in x under every declared interface.
///
/// # Errors
///
/// Returns [`LeafError`] on infeasible constraint systems.
pub fn compact(
    cells: &[CellDefinition],
    interfaces: &[LeafInterface],
    rules: &DesignRules,
) -> Result<CompactionResult, LeafError> {
    let mut sys = ConstraintSystem::new();
    // A global origin variable pins each cell's frame: without it, a
    // cell's contents could translate within its own coordinate system
    // and absorb the pitch (the λ / translation degeneracy).
    let origin = sys.add_var(0);

    // Edge variables per cell box.
    let mut cell_vars: Vec<Vec<BoxVars>> = Vec::with_capacity(cells.len());
    let mut cell_boxes: Vec<Vec<(Layer, Rect)>> = Vec::with_capacity(cells.len());
    for cell in cells {
        let boxes: Vec<(Layer, Rect)> = cell.boxes().collect();
        let vars: Vec<BoxVars> = boxes
            .iter()
            .map(|(_, r)| BoxVars { left: sys.add_var(r.lo().x), right: sys.add_var(r.hi().x) })
            .collect();
        // Intra-cell constraints: widths, connectivity, visibility spacing.
        scanline::append_constraints(&mut sys, &boxes, &vars, rules, Method::Visibility);
        // Anchor the cell's leftmost edge at its original abscissa.
        if let Some(k) = (0..boxes.len()).min_by_key(|&k| boxes[k].1.lo().x) {
            sys.require_exact(origin, vars[k].left, boxes[k].1.lo().x);
        }
        cell_vars.push(vars);
        cell_boxes.push(boxes);
    }

    // Pitch variables + folded inter-cell constraints (Fig 6.3).
    let mut pitch_ids: Vec<Option<PitchId>> = Vec::with_capacity(interfaces.len());
    let mut pitch_weights: Vec<i64> = Vec::new();
    for iface in interfaces {
        let (pitch, x0) = match iface.kind {
            PitchKind::VariableX { initial, weight } => {
                let p = sys.add_pitch(iface.name.clone());
                pitch_weights.push(weight);
                (Some(p), initial)
            }
            PitchKind::FixedX(dx) => (None, dx),
        };
        pitch_ids.push(pitch);

        let shift = Vector::new(x0, iface.y_offset);
        let a_view: Vec<VBox> = cell_boxes[iface.cell_a]
            .iter()
            .zip(&cell_vars[iface.cell_a])
            .map(|(&(layer, rect), bv)| VBox { layer, rect, left: bv.left, right: bv.right, pitch: None })
            .collect();
        let b_view: Vec<VBox> = cell_boxes[iface.cell_b]
            .iter()
            .zip(&cell_vars[iface.cell_b])
            .map(|(&(layer, rect), bv)| VBox {
                layer,
                rect: rect.translate(shift),
                left: bv.left,
                right: bv.right,
                pitch,
            })
            .collect();
        append_cross_constraints(&mut sys, &a_view, &b_view, x0, pitch, rules);
    }

    // Metric excludes the origin convenience variable (Fig 6.3 counts
    // edge abscissas + pitches only).
    let unknowns = (sys.num_vars() - 1) + sys.num_pitches();
    let n_constraints = sys.constraints().len();

    // Solve.
    let (positions, pitches) = if sys.has_pitch_terms() || sys.num_pitches() > 0 {
        solve_with_pitches(&sys, &pitch_weights)?
    } else {
        let sol = solver::solve(&sys, EdgeOrder::Sorted)
            .map_err(|e| LeafError::Infeasible(e.to_string()))?;
        (sol.positions_vec(), Vec::new())
    };

    debug_assert!(sys.violations(&positions, &pitches).is_empty());

    // Rebuild the library with the new x coordinates.
    let mut out_cells = Vec::with_capacity(cells.len());
    for (cell, vars) in cells.iter().zip(&cell_vars) {
        let mut out = CellDefinition::new(cell.name());
        let mut box_idx = 0usize;
        for obj in cell.objects() {
            match obj {
                LayoutObject::Box { layer, rect } => {
                    let bv = vars[box_idx];
                    box_idx += 1;
                    out.add_box(
                        *layer,
                        Rect::from_coords(
                            positions[bv.left.index()],
                            rect.lo().y,
                            positions[bv.right.index()],
                            rect.hi().y,
                        ),
                    );
                }
                LayoutObject::Label { text, at } => {
                    out.add_label(text.clone(), Point::new(at.x, at.y));
                }
                LayoutObject::Instance(i) => {
                    out.add_instance(*i);
                }
            }
        }
        out_cells.push(out);
    }

    let mut named_pitches = Vec::new();
    let mut k = 0usize;
    for (iface, pid) in interfaces.iter().zip(&pitch_ids) {
        if pid.is_some() {
            named_pitches.push((iface.name.clone(), pitches[k]));
            k += 1;
        }
    }

    Ok(CompactionResult {
        cells: out_cells,
        pitches: named_pitches,
        unknowns,
        constraints: n_constraints,
    })
}

/// Emits the cross constraints of one interface pair: spacing and
/// connectivity between A-side and B-side boxes, folded through the pitch
/// term (paper Fig 6.3's edge replacement).
fn append_cross_constraints(
    sys: &mut ConstraintSystem,
    a_view: &[VBox],
    b_view: &[VBox],
    _x0: i64,
    _pitch: Option<PitchId>,
    rules: &DesignRules,
) {
    let all: Vec<VBox> = a_view.iter().chain(b_view).copied().collect();
    let all_rects: Vec<(Layer, Rect)> = all.iter().map(|v| (v.layer, v.rect)).collect();

    let emit = |sys: &mut ConstraintSystem, from: &VBox, from_right: bool, to: &VBox, to_left: bool, w: i64| {
        // x_to − x_from + (coeff_to − coeff_from)·λ ≥ w, where a box's
        // pitch tag contributes +λ to its edge positions.
        let from_var = if from_right { from.right } else { from.left };
        let to_var = if to_left { to.left } else { to.right };
        match (from.pitch, to.pitch) {
            (None, None) => sys.require(from_var, to_var, w),
            (Some(p), Some(q)) if p == q => sys.require(from_var, to_var, w),
            (None, Some(p)) => sys.require_with_pitch(from_var, to_var, w, p, 1),
            (Some(p), None) => sys.require_with_pitch(from_var, to_var, w, p, -1),
            (Some(_), Some(_)) => unreachable!("one pitch per interface pair"),
        }
    };

    // Spacing: a strictly left of b, shared y-range, not hidden. Abutting
    // same-layer cross boxes are connected material and get no spacing
    // requirement (their relative position is governed by the pitch).
    for (i, a) in all.iter().enumerate() {
        for (j, b) in all.iter().enumerate() {
            if i == j || (i < a_view.len()) == (j < a_view.len()) {
                continue;
            }
            let Some(spacing) = rules.min_spacing(a.layer, b.layer) else { continue };
            if a.rect.hi().x > b.rect.lo().x {
                continue;
            }
            if a.rect.lo().y >= b.rect.hi().y || b.rect.lo().y >= a.rect.hi().y {
                continue;
            }
            if a.layer == b.layer && a.rect.intersect(b.rect).is_some() {
                continue; // abutting/connected across the interface
            }
            if scanline::hidden_between(&all_rects, i, j) {
                continue;
            }
            emit(sys, a, true, b, true, spacing);
        }
    }
}

/// LP solve + integral pitch rounding + longest-path refinement.
fn solve_with_pitches(
    sys: &ConstraintSystem,
    pitch_weights: &[i64],
) -> Result<(Vec<i64>, Vec<i64>), LeafError> {
    let n = sys.num_vars();
    let p = sys.num_pitches();
    // LP variables: [edges 0..n | pitches n..n+p].
    let mut objective = vec![1e-4f64; n];
    objective.extend(pitch_weights.iter().map(|&w| w as f64));
    let mut lp = Lp::new(n + p, objective);
    for c in sys.constraints() {
        let mut row = vec![(c.to.index(), 1.0), (c.from.index(), -1.0)];
        if let Some((pid, k)) = c.pitch {
            row.push((n + pid.index(), k as f64));
        }
        lp.add_row(row, Sense::Ge, c.weight as f64);
    }
    let x = lp.solve().map_err(|e: LpError| LeafError::Infeasible(e.to_string()))?;

    // Round pitches to integers: try floor/ceil combinations (p is tiny),
    // keep the feasible combination with minimum cost.
    let floats: Vec<f64> = (0..p).map(|k| x[n + k]).collect();
    let mut best: Option<(i64, Vec<i64>, Vec<i64>)> = None;
    for mask in 0..(1usize << p.min(16)) {
        let candidate: Vec<i64> = floats
            .iter()
            .enumerate()
            .map(|(k, &v)| {
                let f = v.floor() as i64;
                if mask & (1 << k) != 0 {
                    f + 1
                } else {
                    f
                }
            })
            .collect();
        if candidate.iter().any(|&v| v < 0) {
            continue;
        }
        if let Some(positions) = solve_fixed_pitches(sys, &candidate) {
            let cost: i64 =
                candidate.iter().zip(pitch_weights).map(|(&l, &w)| l * w).sum();
            if best.as_ref().is_none_or(|(c, _, _)| cost < *c) {
                best = Some((cost, positions, candidate));
            }
        }
    }
    if best.is_none() {
        // Escalate: bump all pitches upward together a few steps.
        for bump in 1..=4 {
            let candidate: Vec<i64> =
                floats.iter().map(|&v| v.ceil() as i64 + bump).collect();
            if let Some(positions) = solve_fixed_pitches(sys, &candidate) {
                best = Some((0, positions, candidate));
                break;
            }
        }
    }
    let (_, positions, pitches) = best.ok_or_else(|| {
        LeafError::Rounding(format!("no integral pitch assignment near {floats:?}"))
    })?;
    Ok((positions, pitches))
}

/// With pitches fixed, the system reduces to difference constraints.
fn solve_fixed_pitches(sys: &ConstraintSystem, pitches: &[i64]) -> Option<Vec<i64>> {
    let mut reduced = ConstraintSystem::new();
    for v in 0..sys.num_vars() {
        reduced.add_var(sys.initial(VarId(v)));
    }
    for c in sys.constraints() {
        let w = c.weight - c.pitch.map_or(0, |(pid, k)| k * pitches[pid.index()]);
        reduced.require(c.from, c.to, w);
    }
    solver::solve(&reduced, EdgeOrder::Sorted).ok().map(|s| s.positions_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_layout::Technology;

    fn rules() -> DesignRules {
        Technology::mead_conway(2).rules.clone()
    }

    /// Fig 6.3: one cell with boxes, one self-interface: the unknowns are
    /// the cell's own edges plus one λ — 5 instead of the flat 8.
    #[test]
    fn fig_6_3_unknown_reduction() {
        let mut cell = CellDefinition::new("a");
        cell.add_box(Layer::Poly, Rect::from_coords(0, 0, 4, 20));
        cell.add_box(Layer::Poly, Rect::from_coords(12, 0, 16, 20));
        let ifaces = vec![LeafInterface {
            cell_a: 0,
            cell_b: 0,
            kind: PitchKind::VariableX { initial: 24, weight: 1 },
            y_offset: 0,
            name: "lambda_a".into(),
        }];
        let out = compact(&[cell], &ifaces, &rules()).unwrap();
        assert_eq!(out.unknowns, 4 + 1, "4 edges + 1 pitch");
        // Pitch compacts to the minimum: second box at min poly spacing
        // from first, then wrap: λ = 16-12... solved geometry: boxes 4
        // wide, gap 4 (2λ poly spacing at λ=2), λ = 4+4+4+4 = 16.
        let lambda = out.pitches[0].1;
        assert_eq!(lambda, 16, "pitches: {:?}", out.pitches);
        // The compacted cell is design-rule clean when tiled at λ.
        let boxes: Vec<(Layer, Rect)> = out.cells[0].boxes().collect();
        assert_eq!(boxes[0].1.width(), 4);
        assert_eq!(boxes[1].1.width(), 4);
    }

    /// §6.2 / Figs 6.1–6.2: pitches trade off; the cost weights decide
    /// which one wins.
    #[test]
    fn pitch_tradeoff_follows_cost_function() {
        // Cell: P in row A, Q in row B; interface 2 couples P against the
        // neighbour's Q (helping small x_q), interface 3 couples Q against
        // the neighbour's P (hurting large x_q). λ₂ + λ₃ is conserved.
        let mut cell = CellDefinition::new("a");
        cell.add_box(Layer::Metal1, Rect::from_coords(0, 0, 4, 10)); // P
        cell.add_box(Layer::Metal1, Rect::from_coords(20, 20, 24, 30)); // Q
        let mk = |w2: i64, w3: i64| {
            vec![
                LeafInterface {
                    cell_a: 0,
                    cell_b: 0,
                    kind: PitchKind::VariableX { initial: 40, weight: w2 },
                    y_offset: -20,
                    name: "l2".into(),
                },
                LeafInterface {
                    cell_a: 0,
                    cell_b: 0,
                    kind: PitchKind::VariableX { initial: 40, weight: w3 },
                    y_offset: 20,
                    name: "l3".into(),
                },
            ]
        };
        let r = rules();
        // Heavy weight on l3 → shrink l3 at l2's expense, and vice versa.
        let favor_l3 = compact(&[cell.clone()], &mk(1, 10), &r).unwrap();
        let favor_l2 = compact(&[cell.clone()], &mk(10, 1), &r).unwrap();
        let (l2a, l3a) = (favor_l3.pitches[0].1, favor_l3.pitches[1].1);
        let (l2b, l3b) = (favor_l2.pitches[0].1, favor_l2.pitches[1].1);
        assert!(l3a < l3b, "favoring l3 shrinks it: {l3a} vs {l3b}");
        assert!(l2b < l2a, "favoring l2 shrinks it: {l2b} vs {l2a}");
        // The trade-off is real: their sum is (nearly) conserved.
        assert!((l2a + l3a) <= (l2b + l3b) + 1);
        assert!((l2b + l3b) <= (l2a + l3a) + 1);
    }

    /// A two-cell library with an A–B interface and a fixed vertical
    /// interface: both cells compact, the A–B pitch lands at the minimum.
    #[test]
    fn two_cell_library() {
        let mut a = CellDefinition::new("a");
        a.add_box(Layer::Diffusion, Rect::from_coords(0, 0, 6, 10));
        a.add_box(Layer::Diffusion, Rect::from_coords(30, 0, 36, 10));
        let mut b = CellDefinition::new("b");
        b.add_box(Layer::Diffusion, Rect::from_coords(0, 0, 8, 10));
        let ifaces = vec![
            LeafInterface {
                cell_a: 0,
                cell_b: 1,
                kind: PitchKind::VariableX { initial: 60, weight: 5 },
                y_offset: 0,
                name: "lab".into(),
            },
            LeafInterface {
                cell_a: 0,
                cell_b: 0,
                kind: PitchKind::FixedX(0),
                y_offset: -12,
                name: "vert".into(),
            },
        ];
        let out = compact(&[a, b], &ifaces, &rules()).unwrap();
        // Intra: A's two diff boxes pull to 6λ spacing (6 at λ=2): second
        // box at 12..18. A–B pitch: B clears A's right box by 6.
        let a_boxes: Vec<(Layer, Rect)> = out.cells[0].boxes().collect();
        assert_eq!(a_boxes[1].1.lo().x - a_boxes[0].1.hi().x, 6);
        let lab = out.pitches.iter().find(|(n, _)| n == "lab").unwrap().1;
        assert_eq!(lab, a_boxes[1].1.hi().x + 6);
    }

    /// Compacted cells re-tile without violations: rebuild the interface
    /// pair at the solved pitch and re-scan.
    #[test]
    fn compacted_library_revalidates() {
        let mut cell = CellDefinition::new("a");
        cell.add_box(Layer::Poly, Rect::from_coords(2, 0, 8, 30));
        cell.add_box(Layer::Metal1, Rect::from_coords(14, 5, 26, 25));
        cell.add_box(Layer::Poly, Rect::from_coords(30, 0, 34, 30));
        let ifaces = vec![LeafInterface {
            cell_a: 0,
            cell_b: 0,
            kind: PitchKind::VariableX { initial: 44, weight: 1 },
            y_offset: 0,
            name: "l".into(),
        }];
        let r = rules();
        let out = compact(&[cell], &ifaces, &r).unwrap();
        let lambda = out.pitches[0].1;
        // Tile 3 instances and scan the flat result: no violations.
        let mut flat: Vec<(Layer, Rect)> = Vec::new();
        for k in 0..3 {
            for (l, rect) in out.cells[0].boxes() {
                flat.push((l, rect.translate(rsg_geom::Vector::new(k * lambda, 0))));
            }
        }
        let (sys, vars) = scanline::generate(&flat, &r, Method::Visibility);
        let positions: Vec<i64> = flat
            .iter()
            .flat_map(|(_, rect)| [rect.lo().x, rect.hi().x])
            .collect();
        let _ = vars;
        assert!(
            sys.violations(&positions, &[]).is_empty(),
            "tiled compacted cell violates rules"
        );
    }

    #[test]
    fn infeasible_library_reports() {
        // A cell whose self-interface at fixed x = 0 demands impossible
        // same-position spacing.
        let mut cell = CellDefinition::new("bad");
        cell.add_box(Layer::Poly, Rect::from_coords(0, 0, 4, 10));
        cell.add_box(Layer::Poly, Rect::from_coords(8, 0, 12, 10));
        let ifaces = vec![LeafInterface {
            cell_a: 0,
            cell_b: 0,
            // Fixed pitch narrower than the two boxes + spacing can get.
            kind: PitchKind::FixedX(6),
            y_offset: 0,
            name: "tight".into(),
        }];
        let err = compact(&[cell], &ifaces, &rules()).unwrap_err();
        assert!(matches!(err, LeafError::Infeasible(_)), "{err}");
    }
}
