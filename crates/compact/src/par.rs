//! Minimal deterministic parallel map over scoped threads.
//!
//! The batch leaf compactor fans independent cells out across cores.
//! The container this repository builds in has no registry access, so
//! instead of `rayon` this module implements the one primitive needed —
//! an order-preserving parallel map — on `std::thread::scope`. Results
//! are collected by input index, so the output is byte-identical to the
//! serial map regardless of scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Maps `f` over `items` on up to `threads` worker threads, preserving
/// input order in the output.
///
/// `threads == 0` or `threads == 1` (or a single-item input) runs inline
/// with no thread overhead. Worker panics propagate to the caller.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = threads.min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    // `scope` joins every worker before returning and re-raises any
    // worker panic, so the expect below only runs when all slots filled.
    let slots = std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                if tx.send((i, f(item))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for (i, r) in rx {
            slots[i] = Some(r);
        }
        slots
    });
    slots
        .into_iter()
        .map(|s| s.expect("worker completed every index"))
        .collect()
}

/// Worker count for [`Parallelism::Auto`]: the machine's available
/// parallelism (1 when it cannot be determined).
pub fn auto_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// How a batch operation distributes its independent jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// All jobs inline on the calling thread.
    Serial,
    /// One worker per available core.
    #[default]
    Auto,
    /// Exactly this many worker threads.
    Threads(usize),
}

impl Parallelism {
    /// The concrete worker count.
    pub fn threads(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Auto => auto_threads(),
            Parallelism::Threads(n) => n.max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let serial: Vec<usize> = items.iter().map(|&x| x * x).collect();
        for threads in [1, 2, 4, 9] {
            assert_eq!(par_map(&items, threads, |&x| x * x), serial);
        }
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(par_map(&[] as &[i32], 8, |&x| x), Vec::<i32>::new());
        assert_eq!(par_map(&[7], 8, |&x| x + 1), vec![8]);
    }

    #[test]
    fn parallelism_thread_counts() {
        assert_eq!(Parallelism::Serial.threads(), 1);
        assert_eq!(Parallelism::Threads(3).threads(), 3);
        assert_eq!(Parallelism::Threads(0).threads(), 1);
        assert!(Parallelism::Auto.threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..8).collect();
        let _ = par_map(&items, 4, |&x| {
            assert!(x != 5, "boom");
            x
        });
    }
}
