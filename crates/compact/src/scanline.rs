//! Constraint generation by scanning (§6.4.1), generic over the sweep
//! [`Axis`].
//!
//! Two methods are provided, reproducing the paper's comparison:
//!
//! * [`Method::Band`] — the naive band scan the paper's first compactor
//!   used: every pair of facing edges on interacting layers whose boxes
//!   share a range across the sweep axis gets a spacing constraint,
//!   **including hidden edges**. On a fragmented bus (Fig 6.5) this
//!   "would force the x size of the final layout to be at least nλ".
//! * [`Method::Visibility`] — the correct scan line (Fig 6.7): "the scan
//!   line contains information of what a viewer on the scan line looking
//!   toward the left would see"; hidden edges never appear, so merging
//!   of abutting boxes is implicitly taken care of.
//!
//! Both methods also emit, for every box, an exact width constraint (the
//! compactor preserves widths — device and bus sizing is the business of
//! the masking cells, §6.4.1), and connectivity constraints keeping
//! same-layer boxes that touched in the input touching in the output.
//!
//! Candidate pairs are enumerated through the [`GeomIndex`] bucket
//! columns rather than an all-pairs scan, and the emitted spacing set is
//! put through a transitive-reduction prune ([`Prune::Apply`]): a
//! spacing edge `a → b` already implied by a tighter chain through an
//! interposed box `k` (`a → k`, `k`'s exact width, `k → b`) is dropped
//! before the solver ever sees it. Pruning is *solution-identical* —
//! the feasible region is unchanged, so solved positions, extents, and
//! feasibility verdicts match the unpruned system exactly (DESIGN.md,
//! "Constraint pruning + sweep arenas").
//!
//! The paper describes the x sweep only and obtains y by transposing the
//! whole layout; here the sweep axis is a parameter, so the y pass runs
//! on the same geometry with no copy. Throughout, *along* means the
//! sweep axis (edge coordinates that become variables) and *across* the
//! perpendicular axis (frozen during the sweep).

use crate::par::Parallelism;
use crate::scratch::{ScanScratch, SweepScratch};
use crate::{ConstraintSystem, VarId};
use rsg_geom::{Axis, CoverageProfile, GeomIndex, Rect};
use rsg_layout::{DesignRules, Layer};

/// The two moving-edge variables of one input box along the sweep axis.
///
/// For an x sweep `left`/`right` are the west/east vertical edges; for a
/// y sweep they are the south/north horizontal edges (low/high ordinate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoxVars {
    /// Variable of the low edge along the sweep axis.
    pub left: VarId,
    /// Variable of the high edge along the sweep axis.
    pub right: VarId,
}

/// Which constraint generation strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Naive band scan: hidden edges constrained too (overconstrains).
    Band,
    /// Correct visibility scan: only visible edge pairs constrained.
    Visibility,
}

/// Whether to drop spacing constraints that a tighter two-hop chain
/// already implies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Prune {
    /// Transitive-reduction-during-generation (the default): smaller
    /// graph, identical solutions.
    #[default]
    Apply,
    /// Keep every generated spacing constraint — the reference behavior
    /// the equivalence proptests compare against.
    Keep,
}

/// Generates the constraint system along `axis` for a flat box list.
///
/// Returns the system plus the per-box edge variables (in input order).
/// Edges perpendicular to the sweep "play no role in the constraint
/// representation and are assumed to shrink or expand in response" —
/// coordinates across the axis are untouched throughout.
pub fn generate(
    boxes: &[(Layer, Rect)],
    rules: &DesignRules,
    method: Method,
    axis: Axis,
) -> (ConstraintSystem, Vec<BoxVars>) {
    generate_par(boxes, rules, method, axis, Parallelism::Serial)
}

/// [`generate`] with the spacing scan fanned across worker threads.
///
/// The emitted system is **bit-identical** to the serial one at any
/// thread count: workers scan disjoint ranges of low boxes against the
/// shared read-only index and their constraint blocks are appended in
/// range order, reproducing the serial emission order exactly (the
/// prune pass then runs serially over that shared list).
pub fn generate_par(
    boxes: &[(Layer, Rect)],
    rules: &DesignRules,
    method: Method,
    axis: Axis,
    par: Parallelism,
) -> (ConstraintSystem, Vec<BoxVars>) {
    generate_with(boxes, rules, method, axis, Prune::Apply, par)
}

/// [`generate_par`] with explicit [`Prune`] control — the entry point
/// the pruning-equivalence tests and benches use to obtain the unpruned
/// reference system.
pub fn generate_with(
    boxes: &[(Layer, Rect)],
    rules: &DesignRules,
    method: Method,
    axis: Axis,
    prune: Prune,
    par: Parallelism,
) -> (ConstraintSystem, Vec<BoxVars>) {
    let mut scratch = SweepScratch::new();
    let vars = generate_scratch(&mut scratch, boxes, rules, method, axis, prune, par);
    (std::mem::take(&mut scratch.sys), vars)
}

/// [`generate_with`] into a reusable [`SweepScratch`]: the system is
/// reset (keeping its buffers and, when the refill matches the previous
/// sweep, its CSR graph) and lives inside the scratch afterwards.
pub(crate) fn generate_scratch(
    scratch: &mut SweepScratch,
    boxes: &[(Layer, Rect)],
    rules: &DesignRules,
    method: Method,
    axis: Axis,
    prune: Prune,
    par: Parallelism,
) -> Vec<BoxVars> {
    let SweepScratch { sys, scan } = scratch;
    sys.reset(axis);
    let vars: Vec<BoxVars> = boxes
        .iter()
        .map(|(_, r)| {
            let left = sys.add_var(r.lo_along(axis));
            let right = sys.add_var(r.hi_along(axis));
            BoxVars { left, right }
        })
        .collect();
    append_constraints_with(sys, boxes, &vars, rules, method, prune, par, scan);
    vars
}

/// Appends the width, connectivity, and spacing constraints for `boxes`
/// (whose edge variables were already allocated as `vars`) into an
/// existing system — the building block the leaf compactor reuses per
/// cell. The sweep axis is taken from [`ConstraintSystem::axis`].
pub fn append_constraints(
    sys: &mut ConstraintSystem,
    boxes: &[(Layer, Rect)],
    vars: &[BoxVars],
    rules: &DesignRules,
    method: Method,
) {
    append_constraints_par(sys, boxes, vars, rules, method, Parallelism::Serial);
}

/// [`append_constraints`] with the spacing scan fanned across workers —
/// see [`generate_par`] for the determinism contract.
pub fn append_constraints_par(
    sys: &mut ConstraintSystem,
    boxes: &[(Layer, Rect)],
    vars: &[BoxVars],
    rules: &DesignRules,
    method: Method,
    par: Parallelism,
) {
    let mut scratch = ScanScratch::new();
    append_constraints_with(
        sys,
        boxes,
        vars,
        rules,
        method,
        Prune::Apply,
        par,
        &mut scratch,
    );
}

/// The full generator: width + connectivity + (pruned) spacing, drawing
/// every buffer from `scratch`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn append_constraints_with(
    sys: &mut ConstraintSystem,
    boxes: &[(Layer, Rect)],
    vars: &[BoxVars],
    rules: &DesignRules,
    method: Method,
    prune: Prune,
    par: Parallelism,
    scratch: &mut ScanScratch,
) {
    let axis = sys.axis();
    let ScanScratch {
        index,
        items,
        spacings,
        cand,
        keep,
        starts,
        profiles,
    } = scratch;

    // One spatial index serves candidate enumeration (spacing and
    // connectivity) and the hidden-edge oracle. Its storage — bucket
    // columns and the item list — is recycled from the previous scan.
    items.clear();
    items.extend_from_slice(boxes);
    let stale = index.rebuild_from_vec(std::mem::take(items), axis);
    *items = stale;

    // Width preservation.
    for ((_, r), bv) in boxes.iter().zip(vars) {
        sys.require_exact(bv.left, bv.right, r.extent_along(axis));
    }

    // Connectivity: same-layer boxes that touch or overlap stay rigidly
    // attached (their overlap along the axis is preserved exactly).
    // Connected nets are rigid bodies in this compactor; only the space
    // between disconnected groups compresses — device and bus resizing
    // belongs to the masking cells, not the compactor (§6.4.1).
    //
    // Candidates come from the box's own layer bucket: low edge in
    // `[lo, hi]` (ascending walk, early exit past `hi`) and closed
    // across-overlap (strict with slack 1 on integer coordinates) is
    // exactly "touches, not strictly below" — sorted back to input
    // order to match the historical j-ascending emission.
    for (i, &(layer_a, ra)) in boxes.iter().enumerate() {
        cand.clear();
        let lo = ra.lo_along(axis);
        let hi = ra.hi_along(axis);
        let across = (ra.lo_across(axis), ra.hi_across(axis));
        for k in index.ordered_after(layer_a, lo, across, 1) {
            if boxes[k].1.lo_along(axis) > hi {
                break;
            }
            if k != i {
                cand.push((k, 0));
            }
        }
        cand.sort_unstable_by_key(|&(j, _)| j);
        for &(j, _) in cand.iter() {
            let rb = boxes[j].1;
            sys.require_exact(vars[i].left, vars[j].left, rb.lo_along(axis) - lo);
        }
    }

    // Spacing constraints. The visibility method consults the hidden-edge
    // oracle, which answers coverage queries from the shared index
    // instead of rescanning every box per candidate pair. Each worker
    // scans its own range of low boxes with a private oracle cursor; the
    // per-range constraint lists are appended in range order, matching
    // the serial (i, j) emission order exactly.
    spacings.clear();
    let threads = par.threads().min(boxes.len().max(1));
    if threads <= 1 {
        let mut cursor = (method == Method::Visibility)
            .then(|| VisibilityCursor::with_cache(index, std::mem::take(profiles)));
        scan_spacings(
            boxes,
            rules,
            axis,
            index,
            cursor.as_mut(),
            0..boxes.len(),
            cand,
            spacings,
        );
        if let Some(c) = cursor {
            *profiles = c.into_cache();
        }
    } else {
        let chunk = boxes.len().div_ceil(threads * 8).max(1);
        let ranges: Vec<(usize, usize)> = (0..boxes.len())
            .step_by(chunk)
            .map(|s| (s, (s + chunk).min(boxes.len())))
            .collect();
        let index_ref: &GeomIndex<Layer> = index;
        let blocks = crate::par::par_map(&ranges, threads, |&(s, e)| {
            let mut block = Vec::new();
            let mut buf = Vec::new();
            let mut cursor =
                (method == Method::Visibility).then(|| VisibilityCursor::new(index_ref));
            scan_spacings(
                boxes,
                rules,
                axis,
                index_ref,
                cursor.as_mut(),
                s..e,
                &mut buf,
                &mut block,
            );
            block
        });
        for (block, &(s, e)) in blocks.into_iter().zip(&ranges) {
            match block {
                Ok(mut b) => spacings.append(&mut b),
                // The scan is panic-free; if a worker still died,
                // recompute the range inline so any genuine panic
                // surfaces on the caller's thread, as in serial.
                Err(_) => {
                    let mut cursor =
                        (method == Method::Visibility).then(|| VisibilityCursor::new(index_ref));
                    scan_spacings(
                        boxes,
                        rules,
                        axis,
                        index_ref,
                        cursor.as_mut(),
                        s..e,
                        cand,
                        spacings,
                    );
                }
            }
        }
    }

    if prune == Prune::Apply {
        prune_spacings(boxes, axis, spacings, keep, starts);
    }
    for &(i, j, spacing) in spacings.iter() {
        sys.require(vars[i].right, vars[j].left, spacing);
    }
}

/// Collects `(i, j, spacing)` triples for low boxes in `range`, in the
/// historical (i ascending, j ascending) emission order.
#[allow(clippy::too_many_arguments)]
fn scan_spacings(
    boxes: &[(Layer, Rect)],
    rules: &DesignRules,
    axis: Axis,
    index: &GeomIndex<Layer>,
    mut cursor: Option<&mut VisibilityCursor<'_>>,
    range: std::ops::Range<usize>,
    cand: &mut Vec<(usize, i64)>,
    out: &mut Vec<(usize, usize, i64)>,
) {
    for i in range {
        let (layer_a, ra) = boxes[i];
        let from = ra.hi_along(axis);
        let across = (ra.lo_across(axis), ra.hi_across(axis));
        cand.clear();
        for layer_b in index.labels() {
            let Some(spacing) = rules.min_spacing(layer_a, layer_b) else {
                continue;
            };
            // `a` strictly below `b` along the axis (low edge at or past
            // `a`'s high edge), sharing an across-axis range: exactly the
            // bucket walk's membership test at slack 0.
            for k in index.ordered_after(layer_b, from, across, 0) {
                if k != i {
                    cand.push((k, spacing));
                }
            }
        }
        cand.sort_unstable_by_key(|&(j, _)| j);
        for &(j, spacing) in cand.iter() {
            let (layer_b, rb) = boxes[j];
            if layer_a == layer_b && touches(ra, rb) {
                continue; // connected material: no spacing requirement
            }
            if let Some(c) = cursor.as_deref_mut() {
                if c.hidden_between(i, j) {
                    continue;
                }
            }
            out.push((i, j, spacing));
        }
    }
}

/// Transitive-reduction prune over the collected spacing triples.
///
/// An edge `(i, j, s_ij)` is dropped when some kept interposed box `k`
/// carries edges `(i, k, s_ik)` and `(k, j, s_kj)` with
/// `s_ik + width(k) + s_kj ≥ s_ij`: every feasible solution already
/// satisfies `left_j − right_i ≥ s_ik + w_k + s_kj` through `k`'s exact
/// width constraint, so the dropped edge never binds. Edges are
/// considered in emission order and chains only use edges not yet
/// dropped; soundness of that greedy rule follows by reverse induction
/// on drop order (DESIGN.md). Deterministic: same list in, same list
/// out, on every thread count.
fn prune_spacings(
    boxes: &[(Layer, Rect)],
    axis: Axis,
    spacings: &mut Vec<(usize, usize, i64)>,
    keep: &mut Vec<bool>,
    starts: &mut Vec<usize>,
) {
    let n = boxes.len();
    keep.clear();
    keep.resize(spacings.len(), true);
    // `spacings` is sorted by (i, j): bucket offsets by source box.
    starts.clear();
    starts.resize(n + 1, 0);
    for &(i, _, _) in spacings.iter() {
        starts[i + 1] += 1;
    }
    for i in 0..n {
        starts[i + 1] += starts[i];
    }
    for idx in 0..spacings.len() {
        let (i, j, s_ij) = spacings[idx];
        for m in starts[i]..starts[i + 1] {
            if !keep[m] {
                continue;
            }
            let (_, k, s_ik) = spacings[m];
            if k == j {
                continue;
            }
            let row = &spacings[starts[k]..starts[k + 1]];
            let Ok(p) = row.binary_search_by(|&(_, t, _)| t.cmp(&j)) else {
                continue;
            };
            let m2 = starts[k] + p;
            if !keep[m2] {
                continue;
            }
            let s_kj = spacings[m2].2;
            let w_k = boxes[k].1.extent_along(axis);
            // Checked, not saturating: a saturated chain sum would
            // compare as "dominates" and drop an edge the chain does
            // not actually imply. Overflow means "cannot prove
            // dominance", so the direct edge is kept.
            let dominated = s_ik
                .checked_add(w_k)
                .and_then(|v| v.checked_add(s_kj))
                .is_some_and(|chain| chain >= s_ij);
            if dominated {
                keep[idx] = false;
                break;
            }
        }
    }
    let mut w = 0;
    for idx in 0..spacings.len() {
        if keep[idx] {
            spacings[w] = spacings[idx];
            w += 1;
        }
    }
    spacings.truncate(w);
}

fn touches(a: Rect, b: Rect) -> bool {
    // Overlapping or abutting (shared edge/corner counts).
    a.intersect(b).is_some()
}

/// One worker's view of the hidden-edge oracle of Fig 6.4: the shared
/// read-only [`GeomIndex`] plus a private per-low-box profile cache.
///
/// A pair `(i, j)` is *hidden* when the gap between box `i`'s high edge
/// and box `j`'s low edge (along the sweep axis) is fully covered, over
/// their shared across-axis range, by material on either box's layer.
///
/// The old implementation rescanned every box and re-decomposed the gap
/// region per candidate pair — the O(n²)-per-pair cost that made the
/// visibility scan 33× slower than the band scan. The cursor instead
/// builds, once per `(low box, partner layer)` combination, a
/// [`CoverageProfile`]: how far contiguous material extends rightward
/// from `i`'s high edge at every across position. Every `j` on that
/// layer then answers in one range-minimum lookup, because the pair is
/// hidden exactly when the minimum coverage reach over the shared
/// across range reaches `j`'s low edge.
///
/// The index is immutable, so any number of cursors (one per worker
/// thread) can query it concurrently, each with its own cache.
pub(crate) struct VisibilityCursor<'a> {
    index: &'a GeomIndex<Layer>,
    /// Profiles for the current low box, keyed by partner layer.
    profiles: Vec<(Layer, CoverageProfile)>,
    /// The low box the cached profiles belong to.
    owner: usize,
}

impl<'a> VisibilityCursor<'a> {
    /// A cursor over `index` with a cold profile cache.
    pub(crate) fn new(index: &'a GeomIndex<Layer>) -> VisibilityCursor<'a> {
        VisibilityCursor::with_cache(index, Vec::new())
    }

    /// A cursor reusing `cache`'s allocation (contents are discarded).
    pub(crate) fn with_cache(
        index: &'a GeomIndex<Layer>,
        mut cache: Vec<(Layer, CoverageProfile)>,
    ) -> VisibilityCursor<'a> {
        cache.clear();
        VisibilityCursor {
            index,
            profiles: cache,
            owner: usize::MAX,
        }
    }

    /// Hands the cache allocation back for the next scan.
    pub(crate) fn into_cache(self) -> Vec<(Layer, CoverageProfile)> {
        self.profiles
    }

    /// The hidden-edge test for the pair `(i, j)` of `index.items()`,
    /// equivalent to the retired per-pair region scan. Queries for one
    /// `i` should be batched (as the generation loops naturally do):
    /// switching `i` drops the cached profiles.
    pub(crate) fn hidden_between(&mut self, i: usize, j: usize) -> bool {
        let axis = self.index.axis();
        let (layer_i, ra) = self.index.items()[i];
        let (layer_j, rb) = self.index.items()[j];
        let c0 = ra.lo_across(axis).max(rb.lo_across(axis));
        let c1 = ra.hi_across(axis).min(rb.hi_across(axis));
        let a0 = ra.hi_along(axis);
        let a1 = rb.lo_along(axis);
        if a0 >= a1 || c0 >= c1 {
            return false;
        }
        if self.owner != i {
            self.owner = i;
            self.profiles.clear();
        }
        if let Some((_, profile)) = self.profiles.iter().find(|(l, _)| *l == layer_j) {
            return profile.min_reach((c0, c1)) >= a1;
        }
        // Material past the furthest candidate low edge can never
        // decide a query, so the profile is capped there.
        let until = self.index.max_lo(layer_j).unwrap_or(a0).max(a0);
        let window = (ra.lo_across(axis), ra.hi_across(axis));
        let profile = self
            .index
            .coverage_profile(&[layer_i, layer_j], a0, until, window);
        let hidden = profile.min_reach((c0, c1)) >= a1;
        self.profiles.push((layer_j, profile));
        hidden
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{solve, EdgeOrder};
    use rsg_layout::Technology;

    fn rules() -> DesignRules {
        Technology::mead_conway(2).rules.clone()
    }

    /// Fig 6.5: a horizontal diffusion bus fragmented into n abutting
    /// boxes (each at minimum width). The band method generates spacing
    /// constraints between the hidden second-neighbour edges — which
    /// contradict the bus's own connectivity and overconstrain the system
    /// exactly as the paper warns; the visibility method compacts fine.
    fn fragmented_bus(n: usize) -> Vec<(Layer, Rect)> {
        (0..n as i64)
            .map(|k| {
                (
                    Layer::Diffusion,
                    Rect::from_coords(4 * k, 0, 4 * (k + 1), 4),
                )
            })
            .collect()
    }

    #[test]
    fn band_overconstrains_fragmented_bus() {
        let n = 6;
        let boxes = fragmented_bus(n);
        let r = rules();

        let (band, _) = generate(&boxes, &r, Method::Band, Axis::X);
        let (vis, vv) = generate(&boxes, &r, Method::Visibility, Axis::X);
        assert!(band.constraints().len() > vis.constraints().len());

        // Visibility: the bus survives at its natural length.
        let sol_v = solve(&vis, EdgeOrder::Sorted).unwrap();
        let w_vis = vv.iter().map(|v| sol_v.position(v.right)).max().unwrap()
            - vv.iter().map(|v| sol_v.position(v.left)).min().unwrap();
        assert_eq!(w_vis, 4 * n as i64);

        // Band: hidden-edge spacing demands ≥ 6 between fragments that
        // must stay abutting — infeasible (the overconstraint). The
        // prune preserves feasibility verdicts, so this still fails.
        assert!(solve(&band, EdgeOrder::Sorted).is_err());
    }

    #[test]
    fn hidden_edge_of_fig_6_4_generates_no_constraint() {
        // Two boxes with a middle box masking them (solid-line situation
        // of Fig 6.4): visibility emits no spacing between the outer pair.
        let boxes = vec![
            (Layer::Poly, Rect::from_coords(0, 0, 4, 10)),
            (Layer::Poly, Rect::from_coords(4, 0, 20, 10)), // covers the gap
            (Layer::Poly, Rect::from_coords(20, 0, 24, 10)),
        ];
        let r = rules();
        let (vis, _) = generate(&boxes, &r, Method::Visibility, Axis::X);
        let (band, _) = generate_with(
            &boxes,
            &r,
            Method::Band,
            Axis::X,
            Prune::Keep,
            Parallelism::Serial,
        );
        let spacing_constraints = |s: &ConstraintSystem| {
            s.constraints()
                .iter()
                .filter(|c| c.weight > 0 && c.pitch.is_none())
                .count()
        };
        // Band has the 0↔2 spacing; visibility does not.
        assert!(spacing_constraints(&band) > spacing_constraints(&vis));
    }

    #[test]
    fn partially_hidden_edge_still_constrained() {
        // Fig 6.6: the middle box only covers part of the shared range,
        // so at scan position y₂ the edges see each other — a constraint
        // is required even under visibility.
        let boxes = vec![
            (Layer::Poly, Rect::from_coords(0, 0, 4, 20)),
            (Layer::Poly, Rect::from_coords(4, 0, 30, 8)), // partial cover
            (Layer::Poly, Rect::from_coords(30, 0, 34, 20)),
        ];
        let r = rules();
        let (vis, vars) = generate_with(
            &boxes,
            &r,
            Method::Visibility,
            Axis::X,
            Prune::Keep,
            Parallelism::Serial,
        );
        let has = vis
            .constraints()
            .iter()
            .any(|c| c.from == vars[0].right && c.to == vars[2].left && c.weight > 0);
        assert!(has, "partially hidden pair must still be constrained");
    }

    #[test]
    fn interacting_layers_only() {
        // Metal1 and poly do not interact in the rule set: no spacing.
        let boxes = vec![
            (Layer::Metal1, Rect::from_coords(0, 0, 6, 10)),
            (Layer::Poly, Rect::from_coords(10, 0, 14, 10)),
        ];
        let (sys, _) = generate(&boxes, &rules(), Method::Visibility, Axis::X);
        // Only the 4 width constraints (2 per box).
        assert_eq!(sys.constraints().len(), 4);
    }

    #[test]
    fn no_across_overlap_no_constraint() {
        let boxes = vec![
            (Layer::Poly, Rect::from_coords(0, 0, 4, 10)),
            (Layer::Poly, Rect::from_coords(10, 20, 14, 30)),
        ];
        let (sys, _) = generate(&boxes, &rules(), Method::Band, Axis::X);
        assert_eq!(sys.constraints().len(), 4);
    }

    #[test]
    fn connectivity_preserved_after_solve() {
        // An L of two overlapping metal boxes plus a far-right box: after
        // compaction the overlap must survive.
        let boxes = vec![
            (Layer::Metal1, Rect::from_coords(0, 0, 20, 6)),
            (Layer::Metal1, Rect::from_coords(16, 0, 22, 30)),
            (Layer::Metal1, Rect::from_coords(60, 0, 70, 6)),
        ];
        let r = rules();
        let (sys, vars) = generate(&boxes, &r, Method::Visibility, Axis::X);
        let sol = solve(&sys, EdgeOrder::Sorted).unwrap();
        // Boxes 0 and 1 stay rigidly attached (overlap preserved).
        assert_eq!(
            sol.position(vars[1].left) - sol.position(vars[0].left),
            16,
            "rigid connection"
        );
        // Box 2 pulled in to min spacing from the nearer of the two
        // connected boxes.
        let spacing = r.min_spacing(Layer::Metal1, Layer::Metal1).unwrap();
        let expect = sol.position(vars[0].right).max(sol.position(vars[1].right)) + spacing;
        assert_eq!(sol.position(vars[2].left), expect);
        // No violations under re-check.
        assert!(sys.violations(sol.positions(), &[]).is_empty());
    }

    #[test]
    fn widths_always_preserved() {
        let boxes = vec![
            (Layer::Diffusion, Rect::from_coords(5, 0, 17, 8)),
            (Layer::Diffusion, Rect::from_coords(40, 2, 49, 6)),
        ];
        let (sys, vars) = generate(&boxes, &rules(), Method::Visibility, Axis::X);
        let sol = solve(&sys, EdgeOrder::Sorted).unwrap();
        assert_eq!(sol.position(vars[0].right) - sol.position(vars[0].left), 12);
        assert_eq!(sol.position(vars[1].right) - sol.position(vars[1].left), 9);
    }

    #[test]
    fn y_sweep_equals_x_sweep_on_transposed_geometry() {
        // The defining property of the axis-generic generator: sweeping Y
        // over boxes is the same system as sweeping X over the transposed
        // boxes (up to the axis tag). Holds with and without pruning.
        let boxes = vec![
            (Layer::Metal1, Rect::from_coords(0, 0, 20, 6)),
            (Layer::Metal1, Rect::from_coords(0, 40, 20, 46)),
            (Layer::Poly, Rect::from_coords(30, 2, 34, 50)),
        ];
        let transposed: Vec<(Layer, Rect)> =
            boxes.iter().map(|&(l, r)| (l, r.transpose())).collect();
        let r = rules();
        for method in [Method::Band, Method::Visibility] {
            for prune in [Prune::Apply, Prune::Keep] {
                let (sys_y, _) =
                    generate_with(&boxes, &r, method, Axis::Y, prune, Parallelism::Serial);
                let (sys_xt, _) =
                    generate_with(&transposed, &r, method, Axis::X, prune, Parallelism::Serial);
                assert_eq!(sys_y.axis(), Axis::Y);
                assert_eq!(sys_y.constraints(), sys_xt.constraints());
                assert_eq!(sys_y.num_vars(), sys_xt.num_vars());
            }
        }
    }

    #[test]
    fn y_sweep_pulls_rows_together() {
        let boxes = vec![
            (Layer::Metal1, Rect::from_coords(0, 0, 20, 6)),
            (Layer::Metal1, Rect::from_coords(0, 40, 20, 46)), // far above: slack
        ];
        let r = rules();
        let (sys, vars) = generate(&boxes, &r, Method::Visibility, Axis::Y);
        let sol = solve(&sys, EdgeOrder::Sorted).unwrap();
        let spacing = r.min_spacing(Layer::Metal1, Layer::Metal1).unwrap();
        assert_eq!(
            sol.position(vars[1].left) - sol.position(vars[0].right),
            spacing
        );
    }

    #[test]
    fn pruning_drops_chain_implied_edges_only() {
        // Three poly boxes in a row with gaps: the 0→2 spacing is implied
        // by 0→1, width(1), 1→2 (spacings 2+2 plus width 10 ≥ 2), so
        // pruning drops exactly that edge and the solutions agree.
        let boxes = vec![
            (Layer::Poly, Rect::from_coords(0, 0, 4, 10)),
            (Layer::Poly, Rect::from_coords(14, 0, 24, 10)),
            (Layer::Poly, Rect::from_coords(34, 0, 38, 10)),
        ];
        let r = rules();
        let (pruned, pv) = generate(&boxes, &r, Method::Visibility, Axis::X);
        let (full, fv) = generate_with(
            &boxes,
            &r,
            Method::Visibility,
            Axis::X,
            Prune::Keep,
            Parallelism::Serial,
        );
        assert_eq!(full.constraints().len(), pruned.constraints().len() + 1);
        let sp = solve(&pruned, EdgeOrder::Sorted).unwrap();
        let sf = solve(&full, EdgeOrder::Sorted).unwrap();
        assert_eq!(sp.positions(), sf.positions());
        assert_eq!(pv, fv);
    }

    #[test]
    fn parallel_generation_matches_serial_with_pruning() {
        let mut boxes = Vec::new();
        for k in 0..12i64 {
            let x = 11 * k;
            boxes.push((Layer::Poly, Rect::from_coords(x, 0, x + 4, 10 + k)));
            boxes.push((Layer::Metal1, Rect::from_coords(x, 12, x + 6, 30)));
        }
        let r = rules();
        for prune in [Prune::Apply, Prune::Keep] {
            let (serial, _) = generate_with(
                &boxes,
                &r,
                Method::Visibility,
                Axis::X,
                prune,
                Parallelism::Serial,
            );
            let (par, _) = generate_with(
                &boxes,
                &r,
                Method::Visibility,
                Axis::X,
                prune,
                Parallelism::Threads(4),
            );
            assert_eq!(serial.constraints(), par.constraints());
        }
    }
}
