//! Constraint generation by scanning (§6.4.1), generic over the sweep
//! [`Axis`].
//!
//! Two methods are provided, reproducing the paper's comparison:
//!
//! * [`Method::Band`] — the naive band scan the paper's first compactor
//!   used: every pair of facing edges on interacting layers whose boxes
//!   share a range across the sweep axis gets a spacing constraint,
//!   **including hidden edges**. On a fragmented bus (Fig 6.5) this
//!   "would force the x size of the final layout to be at least nλ".
//! * [`Method::Visibility`] — the correct scan line (Fig 6.7): "the scan
//!   line contains information of what a viewer on the scan line looking
//!   toward the left would see"; hidden edges never appear, so merging
//!   of abutting boxes is implicitly taken care of.
//!
//! Both methods also emit, for every box, an exact width constraint (the
//! compactor preserves widths — device and bus sizing is the business of
//! the masking cells, §6.4.1), and connectivity constraints keeping
//! same-layer boxes that touched in the input touching in the output.
//!
//! The paper describes the x sweep only and obtains y by transposing the
//! whole layout; here the sweep axis is a parameter, so the y pass runs
//! on the same geometry with no copy. Throughout, *along* means the
//! sweep axis (edge coordinates that become variables) and *across* the
//! perpendicular axis (frozen during the sweep).

use crate::par::Parallelism;
use crate::{ConstraintSystem, VarId};
use rsg_geom::{Axis, CoverageProfile, GeomIndex, Rect};
use rsg_layout::{DesignRules, Layer};

/// The two moving-edge variables of one input box along the sweep axis.
///
/// For an x sweep `left`/`right` are the west/east vertical edges; for a
/// y sweep they are the south/north horizontal edges (low/high ordinate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoxVars {
    /// Variable of the low edge along the sweep axis.
    pub left: VarId,
    /// Variable of the high edge along the sweep axis.
    pub right: VarId,
}

/// Which constraint generation strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Naive band scan: hidden edges constrained too (overconstrains).
    Band,
    /// Correct visibility scan: only visible edge pairs constrained.
    Visibility,
}

/// Generates the constraint system along `axis` for a flat box list.
///
/// Returns the system plus the per-box edge variables (in input order).
/// Edges perpendicular to the sweep "play no role in the constraint
/// representation and are assumed to shrink or expand in response" —
/// coordinates across the axis are untouched throughout.
pub fn generate(
    boxes: &[(Layer, Rect)],
    rules: &DesignRules,
    method: Method,
    axis: Axis,
) -> (ConstraintSystem, Vec<BoxVars>) {
    generate_par(boxes, rules, method, axis, Parallelism::Serial)
}

/// [`generate`] with the spacing scan fanned across worker threads.
///
/// The emitted system is **bit-identical** to the serial one at any
/// thread count: workers scan disjoint ranges of low boxes against the
/// shared read-only index and their constraint blocks are appended in
/// range order, reproducing the serial emission order exactly.
pub fn generate_par(
    boxes: &[(Layer, Rect)],
    rules: &DesignRules,
    method: Method,
    axis: Axis,
    par: Parallelism,
) -> (ConstraintSystem, Vec<BoxVars>) {
    let mut sys = ConstraintSystem::new_along(axis);
    let vars: Vec<BoxVars> = boxes
        .iter()
        .map(|(_, r)| {
            let left = sys.add_var(r.lo_along(axis));
            let right = sys.add_var(r.hi_along(axis));
            BoxVars { left, right }
        })
        .collect();
    append_constraints_par(&mut sys, boxes, &vars, rules, method, par);
    (sys, vars)
}

/// Appends the width, connectivity, and spacing constraints for `boxes`
/// (whose edge variables were already allocated as `vars`) into an
/// existing system — the building block the leaf compactor reuses per
/// cell. The sweep axis is taken from [`ConstraintSystem::axis`].
pub fn append_constraints(
    sys: &mut ConstraintSystem,
    boxes: &[(Layer, Rect)],
    vars: &[BoxVars],
    rules: &DesignRules,
    method: Method,
) {
    append_constraints_par(sys, boxes, vars, rules, method, Parallelism::Serial);
}

/// [`append_constraints`] with the spacing scan fanned across workers —
/// see [`generate_par`] for the determinism contract.
pub fn append_constraints_par(
    sys: &mut ConstraintSystem,
    boxes: &[(Layer, Rect)],
    vars: &[BoxVars],
    rules: &DesignRules,
    method: Method,
    par: Parallelism,
) {
    let axis = sys.axis();

    // Width preservation.
    for ((_, r), bv) in boxes.iter().zip(vars) {
        sys.require_exact(bv.left, bv.right, r.extent_along(axis));
    }

    // Connectivity: same-layer boxes that touch or overlap stay rigidly
    // attached (their overlap along the axis is preserved exactly).
    // Connected nets are rigid bodies in this compactor; only the space
    // between disconnected groups compresses — device and bus resizing
    // belongs to the masking cells, not the compactor (§6.4.1).
    for i in 0..boxes.len() {
        for j in 0..boxes.len() {
            if i == j {
                continue;
            }
            let (la, ra) = boxes[i];
            let (lb, rb) = boxes[j];
            if la != lb || !touches(ra, rb) || ra.lo_along(axis) > rb.lo_along(axis) {
                continue;
            }
            sys.require_exact(
                vars[i].left,
                vars[j].left,
                rb.lo_along(axis) - ra.lo_along(axis),
            );
        }
    }

    // Spacing constraints. The visibility method consults the hidden-edge
    // oracle, which answers coverage queries from one spatial index
    // instead of rescanning every box per candidate pair. Each worker
    // scans its own range of low boxes with a private oracle cursor; the
    // per-range constraint lists are appended in range order, matching
    // the serial (i, j) emission order exactly.
    let oracle =
        (method == Method::Visibility).then(|| VisibilityOracle::new(boxes.to_vec(), axis));
    let scan_range = |range: std::ops::Range<usize>, out: &mut Vec<(usize, usize, i64)>| {
        let mut cursor = oracle.as_ref().map(|o| o.cursor());
        for i in range {
            for j in 0..boxes.len() {
                if i == j {
                    continue;
                }
                let (layer_a, ra) = boxes[i];
                let (layer_b, rb) = boxes[j];
                let Some(spacing) = rules.min_spacing(layer_a, layer_b) else {
                    continue;
                };
                // `a` strictly below `b` along the axis, sharing an
                // across-axis range.
                if ra.hi_along(axis) > rb.lo_along(axis) || !across_overlap(ra, rb, axis) {
                    continue;
                }
                if layer_a == layer_b && touches(ra, rb) {
                    continue; // connected material: no spacing requirement
                }
                if let Some(c) = cursor.as_mut() {
                    if c.hidden_between(i, j) {
                        continue;
                    }
                }
                out.push((i, j, spacing));
            }
        }
    };
    let threads = par.threads().min(boxes.len().max(1));
    let mut spacings: Vec<(usize, usize, i64)> = Vec::new();
    if threads <= 1 {
        scan_range(0..boxes.len(), &mut spacings);
    } else {
        let chunk = boxes.len().div_ceil(threads * 8).max(1);
        let ranges: Vec<(usize, usize)> = (0..boxes.len())
            .step_by(chunk)
            .map(|s| (s, (s + chunk).min(boxes.len())))
            .collect();
        let blocks = crate::par::par_map(&ranges, threads, |&(s, e)| {
            let mut block = Vec::new();
            scan_range(s..e, &mut block);
            block
        });
        for (block, &(s, e)) in blocks.into_iter().zip(&ranges) {
            match block {
                Ok(mut b) => spacings.append(&mut b),
                // The scan closure is panic-free; if a worker still
                // died, recompute the range inline so any genuine panic
                // surfaces on the caller's thread, as in serial.
                Err(_) => scan_range(s..e, &mut spacings),
            }
        }
    }
    for (i, j, spacing) in spacings {
        sys.require(vars[i].right, vars[j].left, spacing);
    }
}

fn across_overlap(a: Rect, b: Rect, axis: Axis) -> bool {
    a.lo_across(axis) < b.hi_across(axis) && b.lo_across(axis) < a.hi_across(axis)
}

fn touches(a: Rect, b: Rect) -> bool {
    // Overlapping or abutting (shared edge/corner counts).
    a.intersect(b).is_some()
}

/// The hidden-edge oracle of Fig 6.4, backed by a [`GeomIndex`].
///
/// A pair `(i, j)` is *hidden* when the gap between box `i`'s high edge
/// and box `j`'s low edge (along the sweep axis) is fully covered, over
/// their shared across-axis range, by material on either box's layer.
///
/// The old implementation rescanned every box and re-decomposed the gap
/// region per candidate pair — the O(n²)-per-pair cost that made the
/// visibility scan 33× slower than the band scan. The oracle instead
/// builds, once per `(low box, partner layer)` combination, a
/// [`CoverageProfile`]: how far contiguous material extends rightward
/// from `i`'s high edge at every across position. Every `j` on that
/// layer then answers in one range-minimum lookup, because the pair is
/// hidden exactly when the minimum coverage reach over the shared
/// across range reaches `j`'s low edge.
pub(crate) struct VisibilityOracle {
    index: GeomIndex<Layer>,
}

impl VisibilityOracle {
    /// Indexes `boxes` for hidden-edge queries along `axis`.
    pub(crate) fn new(boxes: Vec<(Layer, Rect)>, axis: Axis) -> VisibilityOracle {
        VisibilityOracle {
            index: GeomIndex::build_from_vec(boxes, axis),
        }
    }

    /// A query cursor over the shared index. The index is immutable, so
    /// any number of cursors (one per worker thread) can scan the same
    /// oracle concurrently, each with its own profile cache.
    pub(crate) fn cursor(&self) -> VisibilityCursor<'_> {
        VisibilityCursor {
            index: &self.index,
            profiles: Vec::new(),
            owner: usize::MAX,
        }
    }
}

/// One worker's view of a [`VisibilityOracle`]: the shared read-only
/// index plus a private per-low-box profile cache.
pub(crate) struct VisibilityCursor<'a> {
    index: &'a GeomIndex<Layer>,
    /// Profiles for the current low box, keyed by partner layer.
    profiles: Vec<(Layer, CoverageProfile)>,
    /// The low box the cached profiles belong to.
    owner: usize,
}

impl VisibilityCursor<'_> {
    /// The hidden-edge test for the pair `(i, j)`, equivalent to the
    /// retired per-pair region scan. Queries for one `i` should be
    /// batched (as the generation loops naturally do): switching `i`
    /// drops the cached profiles.
    pub(crate) fn hidden_between(&mut self, i: usize, j: usize) -> bool {
        let axis = self.index.axis();
        let (layer_i, ra) = self.index.items()[i];
        let (layer_j, rb) = self.index.items()[j];
        let c0 = ra.lo_across(axis).max(rb.lo_across(axis));
        let c1 = ra.hi_across(axis).min(rb.hi_across(axis));
        let a0 = ra.hi_along(axis);
        let a1 = rb.lo_along(axis);
        if a0 >= a1 || c0 >= c1 {
            return false;
        }
        if self.owner != i {
            self.owner = i;
            self.profiles.clear();
        }
        if let Some((_, profile)) = self.profiles.iter().find(|(l, _)| *l == layer_j) {
            return profile.min_reach((c0, c1)) >= a1;
        }
        // Material past the furthest candidate low edge can never
        // decide a query, so the profile is capped there.
        let until = self.index.max_lo(layer_j).unwrap_or(a0).max(a0);
        let window = (ra.lo_across(axis), ra.hi_across(axis));
        let profile = self
            .index
            .coverage_profile(&[layer_i, layer_j], a0, until, window);
        let hidden = profile.min_reach((c0, c1)) >= a1;
        self.profiles.push((layer_j, profile));
        hidden
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{solve, EdgeOrder};
    use rsg_layout::Technology;

    fn rules() -> DesignRules {
        Technology::mead_conway(2).rules.clone()
    }

    /// Fig 6.5: a horizontal diffusion bus fragmented into n abutting
    /// boxes (each at minimum width). The band method generates spacing
    /// constraints between the hidden second-neighbour edges — which
    /// contradict the bus's own connectivity and overconstrain the system
    /// exactly as the paper warns; the visibility method compacts fine.
    fn fragmented_bus(n: usize) -> Vec<(Layer, Rect)> {
        (0..n as i64)
            .map(|k| {
                (
                    Layer::Diffusion,
                    Rect::from_coords(4 * k, 0, 4 * (k + 1), 4),
                )
            })
            .collect()
    }

    #[test]
    fn band_overconstrains_fragmented_bus() {
        let n = 6;
        let boxes = fragmented_bus(n);
        let r = rules();

        let (band, _) = generate(&boxes, &r, Method::Band, Axis::X);
        let (vis, vv) = generate(&boxes, &r, Method::Visibility, Axis::X);
        assert!(band.constraints().len() > vis.constraints().len());

        // Visibility: the bus survives at its natural length.
        let sol_v = solve(&vis, EdgeOrder::Sorted).unwrap();
        let w_vis = vv.iter().map(|v| sol_v.position(v.right)).max().unwrap()
            - vv.iter().map(|v| sol_v.position(v.left)).min().unwrap();
        assert_eq!(w_vis, 4 * n as i64);

        // Band: hidden-edge spacing demands ≥ 6 between fragments that
        // must stay abutting — infeasible (the overconstraint).
        assert!(solve(&band, EdgeOrder::Sorted).is_err());
    }

    #[test]
    fn hidden_edge_of_fig_6_4_generates_no_constraint() {
        // Two boxes with a middle box masking them (solid-line situation
        // of Fig 6.4): visibility emits no spacing between the outer pair.
        let boxes = vec![
            (Layer::Poly, Rect::from_coords(0, 0, 4, 10)),
            (Layer::Poly, Rect::from_coords(4, 0, 20, 10)), // covers the gap
            (Layer::Poly, Rect::from_coords(20, 0, 24, 10)),
        ];
        let r = rules();
        let (vis, _) = generate(&boxes, &r, Method::Visibility, Axis::X);
        let (band, _) = generate(&boxes, &r, Method::Band, Axis::X);
        let spacing_constraints = |s: &ConstraintSystem| {
            s.constraints()
                .iter()
                .filter(|c| c.weight > 0 && c.pitch.is_none())
                .count()
        };
        // Band has the 0↔2 spacing; visibility does not.
        assert!(spacing_constraints(&band) > spacing_constraints(&vis));
    }

    #[test]
    fn partially_hidden_edge_still_constrained() {
        // Fig 6.6: the middle box only covers part of the shared range,
        // so at scan position y₂ the edges see each other — a constraint
        // is required even under visibility.
        let boxes = vec![
            (Layer::Poly, Rect::from_coords(0, 0, 4, 20)),
            (Layer::Poly, Rect::from_coords(4, 0, 30, 8)), // partial cover
            (Layer::Poly, Rect::from_coords(30, 0, 34, 20)),
        ];
        let r = rules();
        let (vis, vars) = generate(&boxes, &r, Method::Visibility, Axis::X);
        let has = vis
            .constraints()
            .iter()
            .any(|c| c.from == vars[0].right && c.to == vars[2].left && c.weight > 0);
        assert!(has, "partially hidden pair must still be constrained");
    }

    #[test]
    fn interacting_layers_only() {
        // Metal1 and poly do not interact in the rule set: no spacing.
        let boxes = vec![
            (Layer::Metal1, Rect::from_coords(0, 0, 6, 10)),
            (Layer::Poly, Rect::from_coords(10, 0, 14, 10)),
        ];
        let (sys, _) = generate(&boxes, &rules(), Method::Visibility, Axis::X);
        // Only the 4 width constraints (2 per box).
        assert_eq!(sys.constraints().len(), 4);
    }

    #[test]
    fn no_across_overlap_no_constraint() {
        let boxes = vec![
            (Layer::Poly, Rect::from_coords(0, 0, 4, 10)),
            (Layer::Poly, Rect::from_coords(10, 20, 14, 30)),
        ];
        let (sys, _) = generate(&boxes, &rules(), Method::Band, Axis::X);
        assert_eq!(sys.constraints().len(), 4);
    }

    #[test]
    fn connectivity_preserved_after_solve() {
        // An L of two overlapping metal boxes plus a far-right box: after
        // compaction the overlap must survive.
        let boxes = vec![
            (Layer::Metal1, Rect::from_coords(0, 0, 20, 6)),
            (Layer::Metal1, Rect::from_coords(16, 0, 22, 30)),
            (Layer::Metal1, Rect::from_coords(60, 0, 70, 6)),
        ];
        let r = rules();
        let (sys, vars) = generate(&boxes, &r, Method::Visibility, Axis::X);
        let sol = solve(&sys, EdgeOrder::Sorted).unwrap();
        // Boxes 0 and 1 stay rigidly attached (overlap preserved).
        assert_eq!(
            sol.position(vars[1].left) - sol.position(vars[0].left),
            16,
            "rigid connection"
        );
        // Box 2 pulled in to min spacing from the nearer of the two
        // connected boxes.
        let spacing = r.min_spacing(Layer::Metal1, Layer::Metal1).unwrap();
        let expect = sol.position(vars[0].right).max(sol.position(vars[1].right)) + spacing;
        assert_eq!(sol.position(vars[2].left), expect);
        // No violations under re-check.
        assert!(sys.violations(sol.positions(), &[]).is_empty());
    }

    #[test]
    fn widths_always_preserved() {
        let boxes = vec![
            (Layer::Diffusion, Rect::from_coords(5, 0, 17, 8)),
            (Layer::Diffusion, Rect::from_coords(40, 2, 49, 6)),
        ];
        let (sys, vars) = generate(&boxes, &rules(), Method::Visibility, Axis::X);
        let sol = solve(&sys, EdgeOrder::Sorted).unwrap();
        assert_eq!(sol.position(vars[0].right) - sol.position(vars[0].left), 12);
        assert_eq!(sol.position(vars[1].right) - sol.position(vars[1].left), 9);
    }

    #[test]
    fn y_sweep_equals_x_sweep_on_transposed_geometry() {
        // The defining property of the axis-generic generator: sweeping Y
        // over boxes is the same system as sweeping X over the transposed
        // boxes (up to the axis tag).
        let boxes = vec![
            (Layer::Metal1, Rect::from_coords(0, 0, 20, 6)),
            (Layer::Metal1, Rect::from_coords(0, 40, 20, 46)),
            (Layer::Poly, Rect::from_coords(30, 2, 34, 50)),
        ];
        let transposed: Vec<(Layer, Rect)> =
            boxes.iter().map(|&(l, r)| (l, r.transpose())).collect();
        let r = rules();
        for method in [Method::Band, Method::Visibility] {
            let (sys_y, _) = generate(&boxes, &r, method, Axis::Y);
            let (sys_xt, _) = generate(&transposed, &r, method, Axis::X);
            assert_eq!(sys_y.axis(), Axis::Y);
            assert_eq!(sys_y.constraints(), sys_xt.constraints());
            assert_eq!(sys_y.num_vars(), sys_xt.num_vars());
        }
    }

    #[test]
    fn y_sweep_pulls_rows_together() {
        let boxes = vec![
            (Layer::Metal1, Rect::from_coords(0, 0, 20, 6)),
            (Layer::Metal1, Rect::from_coords(0, 40, 20, 46)), // far above: slack
        ];
        let r = rules();
        let (sys, vars) = generate(&boxes, &r, Method::Visibility, Axis::Y);
        let sol = solve(&sys, EdgeOrder::Sorted).unwrap();
        let spacing = r.min_spacing(Layer::Metal1, Layer::Metal1).unwrap();
        assert_eq!(
            sol.position(vars[1].left) - sol.position(vars[0].right),
            spacing
        );
    }
}
