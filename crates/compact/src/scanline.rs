//! Constraint generation by scanning (§6.4.1).
//!
//! Two methods are provided, reproducing the paper's comparison:
//!
//! * [`Method::Band`] — the naive horizontal-band scan the paper's first
//!   compactor used: every pair of facing edges on interacting layers
//!   whose boxes share a y-range gets a spacing constraint, **including
//!   hidden edges**. On a fragmented bus (Fig 6.5) this "would force the
//!   x size of the final layout to be at least nλ".
//! * [`Method::Visibility`] — the correct vertical scan line (Fig 6.7):
//!   "the scan line contains information of what a viewer on the scan
//!   line looking toward the left would see"; hidden edges never appear,
//!   so merging of abutting boxes is implicitly taken care of.
//!
//! Both methods also emit, for every box, an exact width constraint (the
//! compactor preserves widths — device and bus sizing is the business of
//! the masking cells, §6.4.1), and connectivity constraints keeping
//! same-layer boxes that touched in the input touching in the output.

use crate::{ConstraintSystem, VarId};
use rsg_geom::Rect;
use rsg_layout::{DesignRules, Layer};

/// The two edge variables of one input box.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoxVars {
    /// Variable of the left (west) vertical edge.
    pub left: VarId,
    /// Variable of the right (east) vertical edge.
    pub right: VarId,
}

/// Which constraint generation strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Naive band scan: hidden edges constrained too (overconstrains).
    Band,
    /// Correct visibility scan: only visible edge pairs constrained.
    Visibility,
}

/// Generates the x-direction constraint system for a flat list of boxes.
///
/// Returns the system plus the per-box edge variables (in input order).
/// Horizontal edges "play no role in the constraint representation and
/// are assumed to shrink or expand in response" — y coordinates are
/// untouched throughout.
pub fn generate(
    boxes: &[(Layer, Rect)],
    rules: &DesignRules,
    method: Method,
) -> (ConstraintSystem, Vec<BoxVars>) {
    let mut sys = ConstraintSystem::new();
    let vars: Vec<BoxVars> = boxes
        .iter()
        .map(|(_, r)| {
            let left = sys.add_var(r.lo().x);
            let right = sys.add_var(r.hi().x);
            BoxVars { left, right }
        })
        .collect();
    append_constraints(&mut sys, boxes, &vars, rules, method);
    (sys, vars)
}

/// Appends the width, connectivity, and spacing constraints for `boxes`
/// (whose edge variables were already allocated as `vars`) into an
/// existing system — the building block the leaf compactor reuses per
/// cell.
pub fn append_constraints(
    sys: &mut ConstraintSystem,
    boxes: &[(Layer, Rect)],
    vars: &[BoxVars],
    rules: &DesignRules,
    method: Method,
) {
    // Width preservation.
    for ((_, r), bv) in boxes.iter().zip(vars) {
        sys.require_exact(bv.left, bv.right, r.width());
    }

    // Connectivity: same-layer boxes that touch or overlap stay rigidly
    // attached (their x overlap is preserved exactly). Connected nets are
    // rigid bodies in this compactor; only the space between disconnected
    // groups compresses — device and bus resizing belongs to the masking
    // cells, not the compactor (§6.4.1).
    for i in 0..boxes.len() {
        for j in 0..boxes.len() {
            if i == j {
                continue;
            }
            let (la, ra) = boxes[i];
            let (lb, rb) = boxes[j];
            if la != lb || !touches(ra, rb) || ra.lo().x > rb.lo().x {
                continue;
            }
            sys.require_exact(vars[i].left, vars[j].left, rb.lo().x - ra.lo().x);
        }
    }

    // Spacing constraints.
    for i in 0..boxes.len() {
        for j in 0..boxes.len() {
            if i == j {
                continue;
            }
            let (layer_a, ra) = boxes[i];
            let (layer_b, rb) = boxes[j];
            let Some(spacing) = rules.min_spacing(layer_a, layer_b) else { continue };
            // `a` strictly left of `b`, sharing a y-range.
            if ra.hi().x > rb.lo().x || !y_overlap(ra, rb) {
                continue;
            }
            if layer_a == layer_b && touches(ra, rb) {
                continue; // connected material: no spacing requirement
            }
            if method == Method::Visibility && hidden_between(boxes, i, j) {
                continue;
            }
            sys.require(vars[i].right, vars[j].left, spacing);
        }
    }
}

fn y_overlap(a: Rect, b: Rect) -> bool {
    a.lo().y < b.hi().y && b.lo().y < a.hi().y
}

fn touches(a: Rect, b: Rect) -> bool {
    // Overlapping or abutting (shared edge/corner counts).
    a.intersect(b).is_some()
}

/// `true` when the gap between box `i`'s right edge and box `j`'s left
/// edge is fully covered, over their shared y-range, by *same-layer*
/// material of some third box — the hidden-edge condition of Fig 6.4.
pub(crate) fn hidden_between(boxes: &[(Layer, Rect)], i: usize, j: usize) -> bool {
    let (layer_i, ra) = boxes[i];
    let (layer_j, rb) = boxes[j];
    let y0 = ra.lo().y.max(rb.lo().y);
    let y1 = ra.hi().y.min(rb.hi().y);
    let x0 = ra.hi().x;
    let x1 = rb.lo().x;
    if x0 >= x1 || y0 >= y1 {
        return false;
    }
    let region = Rect::from_coords(x0, y0, x1, y1);
    let covers: Vec<Rect> = boxes
        .iter()
        .enumerate()
        .filter(|&(k, &(l, _))| k != i && k != j && (l == layer_i || l == layer_j))
        .filter_map(|(_, &(_, r))| r.intersect(region))
        .filter(|r| r.area() > 0)
        .collect();
    region_covered(region, &covers)
}

/// `true` if the union of `rects` covers all of `region`. Checked by
/// decomposing into x strips at every rect boundary and verifying full
/// y coverage per strip.
fn region_covered(region: Rect, rects: &[Rect]) -> bool {
    let mut xs: Vec<i64> = rects.iter().flat_map(|r| [r.lo().x, r.hi().x]).collect();
    xs.push(region.lo().x);
    xs.push(region.hi().x);
    xs.retain(|&x| x >= region.lo().x && x <= region.hi().x);
    xs.sort_unstable();
    xs.dedup();
    for w in xs.windows(2) {
        let (sx0, sx1) = (w[0], w[1]);
        if sx0 >= sx1 {
            continue;
        }
        let mut ivs: Vec<(i64, i64)> = rects
            .iter()
            .filter(|r| r.lo().x <= sx0 && r.hi().x >= sx1)
            .map(|r| (r.lo().y, r.hi().y))
            .collect();
        ivs.sort_unstable();
        let mut covered_to = region.lo().y;
        for (lo, hi) in ivs {
            if lo > covered_to {
                return false;
            }
            covered_to = covered_to.max(hi);
        }
        if covered_to < region.hi().y {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{solve, EdgeOrder};
    use rsg_layout::Technology;

    fn rules() -> DesignRules {
        Technology::mead_conway(2).rules.clone()
    }

    /// Fig 6.5: a horizontal diffusion bus fragmented into n abutting
    /// boxes (each at minimum width). The band method generates spacing
    /// constraints between the hidden second-neighbour edges — which
    /// contradict the bus's own connectivity and overconstrain the system
    /// exactly as the paper warns; the visibility method compacts fine.
    fn fragmented_bus(n: usize) -> Vec<(Layer, Rect)> {
        (0..n as i64)
            .map(|k| (Layer::Diffusion, Rect::from_coords(4 * k, 0, 4 * (k + 1), 4)))
            .collect()
    }

    #[test]
    fn band_overconstrains_fragmented_bus() {
        let n = 6;
        let boxes = fragmented_bus(n);
        let r = rules();

        let (band, _) = generate(&boxes, &r, Method::Band);
        let (vis, vv) = generate(&boxes, &r, Method::Visibility);
        assert!(band.constraints().len() > vis.constraints().len());

        // Visibility: the bus survives at its natural length.
        let sol_v = solve(&vis, EdgeOrder::Sorted).unwrap();
        let w_vis = vv.iter().map(|v| sol_v.position(v.right)).max().unwrap()
            - vv.iter().map(|v| sol_v.position(v.left)).min().unwrap();
        assert_eq!(w_vis, 4 * n as i64);

        // Band: hidden-edge spacing demands ≥ 6 between fragments that
        // must stay abutting — infeasible (the overconstraint).
        assert!(solve(&band, EdgeOrder::Sorted).is_err());
    }

    #[test]
    fn hidden_edge_of_fig_6_4_generates_no_constraint() {
        // Two boxes with a middle box masking them (solid-line situation
        // of Fig 6.4): visibility emits no spacing between the outer pair.
        let boxes = vec![
            (Layer::Poly, Rect::from_coords(0, 0, 4, 10)),
            (Layer::Poly, Rect::from_coords(4, 0, 20, 10)), // covers the gap
            (Layer::Poly, Rect::from_coords(20, 0, 24, 10)),
        ];
        let r = rules();
        let (vis, _) = generate(&boxes, &r, Method::Visibility);
        let (band, _) = generate(&boxes, &r, Method::Band);
        let spacing_constraints = |s: &ConstraintSystem| {
            s.constraints().iter().filter(|c| c.weight > 0 && c.pitch.is_none()).count()
        };
        // Band has the 0↔2 spacing; visibility does not.
        assert!(spacing_constraints(&band) > spacing_constraints(&vis));
    }

    #[test]
    fn partially_hidden_edge_still_constrained() {
        // Fig 6.6: the middle box only covers part of the shared y-range,
        // so at scan position y₂ the edges see each other — a constraint
        // is required even under visibility.
        let boxes = vec![
            (Layer::Poly, Rect::from_coords(0, 0, 4, 20)),
            (Layer::Poly, Rect::from_coords(4, 0, 30, 8)), // partial cover
            (Layer::Poly, Rect::from_coords(30, 0, 34, 20)),
        ];
        let r = rules();
        let (vis, vars) = generate(&boxes, &r, Method::Visibility);
        let has = vis
            .constraints()
            .iter()
            .any(|c| c.from == vars[0].right && c.to == vars[2].left && c.weight > 0);
        assert!(has, "partially hidden pair must still be constrained");
    }

    #[test]
    fn interacting_layers_only() {
        // Metal1 and poly do not interact in the rule set: no spacing.
        let boxes = vec![
            (Layer::Metal1, Rect::from_coords(0, 0, 6, 10)),
            (Layer::Poly, Rect::from_coords(10, 0, 14, 10)),
        ];
        let (sys, _) = generate(&boxes, &rules(), Method::Visibility);
        // Only the 4 width constraints (2 per box).
        assert_eq!(sys.constraints().len(), 4);
    }

    #[test]
    fn no_y_overlap_no_constraint() {
        let boxes = vec![
            (Layer::Poly, Rect::from_coords(0, 0, 4, 10)),
            (Layer::Poly, Rect::from_coords(10, 20, 14, 30)),
        ];
        let (sys, _) = generate(&boxes, &rules(), Method::Band);
        assert_eq!(sys.constraints().len(), 4);
    }

    #[test]
    fn connectivity_preserved_after_solve() {
        // An L of two overlapping metal boxes plus a far-right box: after
        // compaction the overlap must survive.
        let boxes = vec![
            (Layer::Metal1, Rect::from_coords(0, 0, 20, 6)),
            (Layer::Metal1, Rect::from_coords(16, 0, 22, 30)),
            (Layer::Metal1, Rect::from_coords(60, 0, 70, 6)),
        ];
        let r = rules();
        let (sys, vars) = generate(&boxes, &r, Method::Visibility);
        let sol = solve(&sys, EdgeOrder::Sorted).unwrap();
        // Boxes 0 and 1 stay rigidly attached (overlap preserved).
        assert_eq!(
            sol.position(vars[1].left) - sol.position(vars[0].left),
            16,
            "rigid connection"
        );
        // Box 2 pulled in to min spacing from the nearer of the two
        // connected boxes.
        let spacing = r.min_spacing(Layer::Metal1, Layer::Metal1).unwrap();
        let expect = sol
            .position(vars[0].right)
            .max(sol.position(vars[1].right))
            + spacing;
        assert_eq!(sol.position(vars[2].left), expect);
        // No violations under re-check.
        assert!(sys.violations(&sol.positions_vec(), &[]).is_empty());
    }

    #[test]
    fn widths_always_preserved() {
        let boxes = vec![
            (Layer::Diffusion, Rect::from_coords(5, 0, 17, 8)),
            (Layer::Diffusion, Rect::from_coords(40, 2, 49, 6)),
        ];
        let (sys, vars) = generate(&boxes, &rules(), Method::Visibility);
        let sol = solve(&sys, EdgeOrder::Sorted).unwrap();
        assert_eq!(sol.position(vars[0].right) - sol.position(vars[0].left), 12);
        assert_eq!(sol.position(vars[1].right) - sol.position(vars[1].left), 9);
    }
}
