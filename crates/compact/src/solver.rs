//! Bellman-Ford longest-path constraint solving (§6.4.2) plus the
//! jog-avoiding balanced mode (Fig 6.8).
//!
//! "The Bellman Ford assigns to each vertex the lowest possible abscissa
//! subject to the constraints. The algorithm proved to be extremely fast,
//! especially if the edges are traversed in sorted (according to their
//! abscissa) order ... In the case where the initial ordering is preserved
//! in the final layout exactly one relaxation step is required instead of
//! the |E| required in the worst case."
//!
//! The solver reports the number of relaxation passes so experiment E12
//! can regenerate that claim. Pure left-packing "can generate electrically
//! poor layouts ... a more appropriate algorithm would be one that tries
//! to bring all objects close together as if they were all connected by
//! rubber bands instead of ... a large magnet on the left" — that is
//! [`solve_balanced`].

use crate::{ConstraintSystem, VarId};

/// Result of solving a (pitch-free) constraint system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    positions: Vec<i64>,
    /// Relaxation passes Bellman-Ford needed to reach the fixpoint
    /// (including the final pass that verified stability).
    pub passes: usize,
}

impl Solution {
    /// The solved abscissa of an edge variable.
    pub fn position(&self, v: VarId) -> i64 {
        self.positions[v.0]
    }

    /// All positions, indexed by variable.
    pub fn positions_vec(&self) -> Vec<i64> {
        self.positions.clone()
    }

    /// Extent of the solution: `max(position) − min(position)`.
    pub fn extent(&self) -> i64 {
        let max = self.positions.iter().copied().max().unwrap_or(0);
        let min = self.positions.iter().copied().min().unwrap_or(0);
        max - min
    }
}

/// Edge processing order for the relaxation loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeOrder {
    /// Constraints in insertion (arbitrary) order — the worst case the
    /// paper contrasts against its preliminary sort.
    Arbitrary,
    /// Constraints sorted by the initial abscissa of their `from`
    /// variable — the paper's preliminary sort.
    Sorted,
}

/// Infeasibility error: the constraint graph has a positive cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Infeasible {
    /// How many passes ran before divergence was declared.
    pub passes: usize,
}

impl std::fmt::Display for Infeasible {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "constraint system infeasible (positive cycle) after {} passes",
            self.passes
        )
    }
}

impl std::error::Error for Infeasible {}

/// Solves for the leftmost feasible positions with all variables ≥ 0.
///
/// # Errors
///
/// Returns [`Infeasible`] when the constraints contain a positive cycle.
///
/// # Panics
///
/// Panics if the system carries pitch terms — those need
/// [`crate::simplex`].
pub fn solve(sys: &ConstraintSystem, order: EdgeOrder) -> Result<Solution, Infeasible> {
    assert!(!sys.has_pitch_terms(), "pitch terms require the LP solver");
    let n = sys.num_vars();
    let mut constraints: Vec<_> = sys.constraints().to_vec();
    if order == EdgeOrder::Sorted {
        constraints.sort_by_key(|c| sys.initial(c.from));
    }
    let mut x = vec![0i64; n];
    let mut passes = 0usize;
    loop {
        passes += 1;
        let mut changed = false;
        for c in &constraints {
            let need = x[c.from.0] + c.weight;
            if x[c.to.0] < need {
                x[c.to.0] = need;
                changed = true;
            }
        }
        if !changed {
            return Ok(Solution {
                positions: x,
                passes,
            });
        }
        if passes > n + 1 {
            return Err(Infeasible { passes });
        }
    }
}

/// The rubber-band solve: every variable sits midway between its earliest
/// (left-packed) and latest (right-packed, at the same total extent)
/// feasible position, then a repair sweep restores exact feasibility.
///
/// Left-packing Fig 6.8's layout tears a jog into a straight wire; the
/// balanced solution keeps slack distributed on both sides.
///
/// # Errors
///
/// Returns [`Infeasible`] on positive cycles.
pub fn solve_balanced(sys: &ConstraintSystem) -> Result<Solution, Infeasible> {
    let earliest = solve(sys, EdgeOrder::Sorted)?;
    let n = sys.num_vars();
    let width = earliest.positions.iter().copied().max().unwrap_or(0);

    // Latest positions: longest path on the reversed graph from the right
    // boundary. latest[v] = width − dist_rev[v].
    let mut dist = vec![0i64; n];
    let mut passes = 0usize;
    loop {
        passes += 1;
        let mut changed = false;
        for c in sys.constraints() {
            // x_to − x_from ≥ w reversed: dist_from ≥ dist_to + w.
            let need = dist[c.to.0] + c.weight;
            if dist[c.from.0] < need {
                dist[c.from.0] = need;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        if passes > n + 1 {
            return Err(Infeasible { passes });
        }
    }
    // Midpoint (floor), then a monotone repair pass for rounding slips.
    let mut x: Vec<i64> = (0..n)
        .map(|v| {
            let e = earliest.positions[v];
            let l = width - dist[v];
            e + (l - e).div_euclid(2)
        })
        .collect();
    let mut repair_passes = 0usize;
    loop {
        repair_passes += 1;
        let mut changed = false;
        for c in sys.constraints() {
            let need = x[c.from.0] + c.weight;
            if x[c.to.0] < need {
                x[c.to.0] = need;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        if repair_passes > n + 1 {
            return Err(Infeasible {
                passes: repair_passes,
            });
        }
    }
    Ok(Solution {
        positions: x,
        passes: earliest.passes + passes + repair_passes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConstraintSystem;

    #[test]
    fn simple_chain() {
        let mut s = ConstraintSystem::new();
        let a = s.add_var(0);
        let b = s.add_var(50);
        let c = s.add_var(90);
        s.require(a, b, 10);
        s.require(b, c, 7);
        let sol = solve(&s, EdgeOrder::Sorted).unwrap();
        assert_eq!(sol.position(a), 0);
        assert_eq!(sol.position(b), 10);
        assert_eq!(sol.position(c), 17);
        assert_eq!(sol.extent(), 17);
    }

    #[test]
    fn sorted_order_converges_in_two_passes_on_preserved_order() {
        // The paper's claim: when initial ordering survives, one
        // relaxation pass suffices (plus the verification pass).
        let mut s = ConstraintSystem::new();
        let vars: Vec<_> = (0..100).map(|k| s.add_var(k * 10)).collect();
        for w in vars.windows(2) {
            s.require(w[0], w[1], 3);
        }
        let sorted = solve(&s, EdgeOrder::Sorted).unwrap();
        assert_eq!(sorted.passes, 2, "1 relaxation + 1 verification");

        // Same system with constraints inserted back-to-front: unsorted
        // processing needs ~|V| passes.
        let mut s2 = ConstraintSystem::new();
        let vars2: Vec<_> = (0..100).map(|k| s2.add_var(k * 10)).collect();
        for k in (1..100).rev() {
            s2.require(vars2[k - 1], vars2[k], 3);
        }
        let unsorted = solve(&s2, EdgeOrder::Arbitrary).unwrap();
        let sorted2 = solve(&s2, EdgeOrder::Sorted).unwrap();
        assert_eq!(sorted2.passes, 2);
        assert!(unsorted.passes > 50, "got {}", unsorted.passes);
        // Same positions either way.
        assert_eq!(unsorted.positions_vec(), sorted2.positions_vec());
    }

    #[test]
    fn infeasible_positive_cycle() {
        let mut s = ConstraintSystem::new();
        let a = s.add_var(0);
        let b = s.add_var(0);
        s.require(a, b, 5);
        s.require(b, a, -4); // b − a ≥ 5 and a − b ≥ −4 → a ≤ b − 5, a ≥ b − 4: contradiction
        let err = solve(&s, EdgeOrder::Sorted).unwrap_err();
        assert!(err.to_string().contains("infeasible"));
    }

    #[test]
    fn equality_cycles_are_fine() {
        let mut s = ConstraintSystem::new();
        let a = s.add_var(0);
        let b = s.add_var(0);
        s.require_exact(a, b, 12);
        let sol = solve(&s, EdgeOrder::Sorted).unwrap();
        assert_eq!(sol.position(b) - sol.position(a), 12);
    }

    #[test]
    fn balanced_solution_is_feasible_and_centered() {
        // a fixed chain a→b, and a floater f constrained only to the left
        // wall: left-packing puts f at 0; balanced centers it.
        let mut s = ConstraintSystem::new();
        let a = s.add_var(0);
        let b = s.add_var(100);
        let f = s.add_var(40);
        s.require(a, b, 100);
        s.require(a, f, 0);
        s.require(f, b, 10); // f can sit anywhere in [0, 90]
        let left = solve(&s, EdgeOrder::Sorted).unwrap();
        assert_eq!(left.position(f), 0);
        let bal = solve_balanced(&s).unwrap();
        assert!(s.violations(&bal.positions_vec(), &[]).is_empty());
        assert_eq!(bal.position(f), 45, "midpoint of [0, 90]");
        // Total extent unchanged.
        assert_eq!(bal.position(b) - bal.position(a), 100);
    }

    #[test]
    fn balanced_avoids_the_fig_6_8_jog() {
        // Two wire stubs that should stay aligned: stub T (top row) is
        // pinned between obstacles; stub B (bottom row) is free. Pure
        // left-packing yanks B to the wall, creating a jog |x_T − x_B|.
        let mut s = ConstraintSystem::new();
        let wall = s.add_var(0);
        let t = s.add_var(40);
        let b = s.add_var(40);
        let right = s.add_var(100);
        s.require(wall, t, 40); // obstacle holds T at 40
        s.require(t, right, 10);
        s.require(wall, b, 0); // B only needs to clear the wall
        s.require(b, right, 10);
        s.require(wall, right, 100);

        let left = solve(&s, EdgeOrder::Sorted).unwrap();
        let jog_left = (left.position(t) - left.position(b)).abs();
        let bal = solve_balanced(&s).unwrap();
        let jog_bal = (bal.position(t) - bal.position(b)).abs();
        assert_eq!(jog_left, 40);
        assert!(jog_bal < jog_left, "balanced {jog_bal} vs left {jog_left}");
        assert!(s.violations(&bal.positions_vec(), &[]).is_empty());
    }

    #[test]
    fn empty_system() {
        let s = ConstraintSystem::new();
        let sol = solve(&s, EdgeOrder::Arbitrary).unwrap();
        assert_eq!(sol.extent(), 0);
        assert_eq!(sol.passes, 1);
    }
}
