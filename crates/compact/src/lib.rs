//! Chapter 6: the leaf-cell compactor.
//!
//! The paper motivates a *leaf cell compactor*: instead of compacting each
//! assembled regular structure (duplicating effort over every replication
//! factor), compact the library cells **once**, taking into account every
//! way the cells may legally interface, with the pitches λᵢ as first-class
//! unknowns. This crate implements the whole pipeline, generalized to an
//! axis-generic, backend-pluggable engine:
//!
//! * [`ConstraintSystem`] — one-dimensional graph-based constraints
//!   `x_to − x_from + Σcλ ≥ w` over box edges and pitch variables
//!   (§6.3, Fig 6.3), tagged with the [`rsg_geom::Axis`] they sweep,
//! * [`scanline`] — two constraint generators, generic over the sweep
//!   axis: the naive *band* method that overconstrains fragmented
//!   layouts (Figs 6.4–6.6) and the correct *visibility* method
//!   (Fig 6.7) in which hidden edges generate no constraints; hidden-edge
//!   coverage is answered from an [`rsg_geom::GeomIndex`] instead of
//!   rescanning every box per candidate pair,
//! * [`solver`] — a Bellman-Ford longest-path solver with the paper's
//!   sorted-edge optimization (§6.4.2) and a jog-avoiding balanced mode
//!   (Fig 6.8's "rubber bands, not a large magnet"),
//! * [`backend`] — the [`Solver`] trait those procedures implement, so
//!   every compaction entry point takes a pluggable backend,
//! * [`simplex`] — a small dense LP solver for pitch trade-offs under a
//!   user cost function (§6.2, Figs 6.1–6.2),
//! * [`engine`] — flat compaction along either axis plus the
//!   alternating-axis fixpoint [`engine::compact_xy`] (§6.4); the old
//!   layout-transposing y pass is gone (its behaviour is pinned by the
//!   `axis_properties` proptests),
//! * [`leaf`] — the leaf-cell compactor proper: intra-cell plus
//!   interface-folded inter-cell constraints, solved for edge positions
//!   *and* pitches simultaneously, with [`leaf::compact_batch`] fanning
//!   independent libraries out across threads,
//! * [`layers`] — pseudo-layer handling: contact expansion (Fig 6.9) and
//!   transistor-gate detection (§6.4.3).
//!
//! # Example
//!
//! ```
//! use rsg_compact::{scanline, solver, ConstraintSystem};
//! use rsg_geom::{Axis, Rect};
//! use rsg_layout::{Layer, Technology};
//!
//! let tech = Technology::mead_conway(2);
//! let boxes = vec![
//!     (Layer::Poly, Rect::from_coords(0, 0, 4, 20)),
//!     (Layer::Poly, Rect::from_coords(30, 0, 34, 20)), // far right: slack
//! ];
//! let (sys, vars) =
//!     scanline::generate(&boxes, &tech.rules, scanline::Method::Visibility, Axis::X);
//! let sol = solver::solve(&sys, solver::EdgeOrder::Sorted).unwrap();
//! // Left-packed: the right box pulls in to the 2λ poly spacing.
//! let left_edge_of_right_box = sol.position(vars[1].left);
//! assert_eq!(left_edge_of_right_box - sol.position(vars[0].right), 4);
//! ```

#![deny(missing_docs)]

pub mod backend;
mod constraint;
pub mod engine;
pub mod layers;
pub mod leaf;
pub mod par;
pub mod scanline;
pub mod simplex;
pub mod solver;

pub use backend::{Balanced, BellmanFord, SimplexPitch, Solver};
pub use constraint::{Constraint, ConstraintSystem, PitchId, VarId};
