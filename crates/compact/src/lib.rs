//! Chapter 6: the leaf-cell compactor.
//!
//! The paper motivates a *leaf cell compactor*: instead of compacting each
//! assembled regular structure (duplicating effort over every replication
//! factor), compact the library cells **once**, taking into account every
//! way the cells may legally interface, with the pitches λᵢ as first-class
//! unknowns. This crate implements the whole pipeline, generalized to an
//! axis-generic, backend-pluggable engine:
//!
//! * [`scanline`] — two constraint generators, generic over the sweep
//!   axis: the naive *band* method that overconstrains fragmented
//!   layouts (Figs 6.4–6.6) and the correct *visibility* method
//!   (Fig 6.7) in which hidden edges generate no constraints; hidden-edge
//!   coverage is answered from an [`rsg_geom::GeomIndex`] instead of
//!   rescanning every box per candidate pair,
//! * [`engine`] — flat compaction along either axis plus the
//!   alternating-axis fixpoint [`engine::compact_xy`] (§6.4), now
//!   warm-starting each sweep from the previous pass's positions and
//!   reporting a per-pass [`engine::CompactReport`],
//! * [`leaf`] — the leaf-cell compactor proper: intra-cell plus
//!   interface-folded inter-cell constraints, solved for edge positions
//!   *and* pitches simultaneously, with [`leaf::compact_batch`] fanning
//!   independent libraries out across threads,
//! * [`layers`] — pseudo-layer handling: contact expansion (Fig 6.9) and
//!   transistor-gate detection (§6.4.3),
//! * [`incremental`] — a persistent [`incremental::CompactSession`] that
//!   caches leaf results, interface abstracts, constraint emission, and
//!   sweep solves by content hash, so recompacting after a one-leaf edit
//!   re-does work only where the edit is visible — bit-identical to the
//!   from-scratch flow.
//!
//! The solving layer itself — [`ConstraintSystem`] with its CSR
//! [`rsg_solve::ConstraintGraph`], the longest-path [`solver`]s
//! (sorted Bellman-Ford, one-pass topological, warm-started), the
//! [`simplex`] pitch LP, and the pluggable [`backend`] trait — lives in
//! the [`rsg_solve`] crate and is re-exported here, so
//! `rsg_compact::{ConstraintSystem, VarId, Solver, ...}` paths keep
//! working.
//!
//! # Example
//!
//! ```
//! use rsg_compact::{scanline, solver, ConstraintSystem};
//! use rsg_geom::{Axis, Rect};
//! use rsg_layout::{Layer, Technology};
//!
//! let tech = Technology::mead_conway(2);
//! let boxes = vec![
//!     (Layer::Poly, Rect::from_coords(0, 0, 4, 20)),
//!     (Layer::Poly, Rect::from_coords(30, 0, 34, 20)), // far right: slack
//! ];
//! let (sys, vars) =
//!     scanline::generate(&boxes, &tech.rules, scanline::Method::Visibility, Axis::X);
//! let sol = solver::solve(&sys, solver::EdgeOrder::Sorted).unwrap();
//! // Left-packed: the right box pulls in to the 2λ poly spacing.
//! let left_edge_of_right_box = sol.position(vars[1].left);
//! assert_eq!(left_edge_of_right_box - sol.position(vars[0].right), 4);
//! ```
//!
//! Library code is panic-free by policy: `unwrap`/`expect` are denied
//! outside `#[cfg(test)]` (see DESIGN.md's robustness section).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(missing_docs)]

pub mod engine;
pub mod fault;
pub mod hier;
pub mod incremental;
pub mod layers;
pub mod leaf;
pub mod limits;
pub use rsg_geom::par;
pub mod scanline;
pub mod scratch;

pub use rsg_solve::{backend, simplex, solver};

pub use rsg_solve::{
    Balanced, BellmanFord, Constraint, ConstraintGraph, ConstraintSystem, PitchId, SimplexPitch,
    Solver, Topological, VarId,
};
