//! Hierarchical compaction over instances — the paper's top-level flow.
//!
//! The leaf compactor (§6.1) compacts the *cells* of a library once; this
//! module compacts the *assembly*: a [`CellDefinition`] whose objects are
//! `Instance`s of already-compacted leaves is re-placed without ever
//! flattening the mask data. Three ideas carry the chapter-2 + chapter-6
//! composition:
//!
//! * **Interface abstracts** ([`CellAbstract`]) — per-layer edge profiles
//!   derived from each referenced definition's [`rsg_layout::FlatLayout`]
//!   (one flatten per distinct `(definition, orientation)`, regardless of
//!   how many instances call it). For each sweep [`Axis`] the abstract
//!   records, per elementary across-strip, how far the cell's material on
//!   each interacting layer extends — the only facts instance-to-instance
//!   spacing ever needs.
//! * **Instance-level constraints** — the same sweep/visibility kernel
//!   that serves flat compaction runs on abstract boxes instead of flat
//!   boxes: ordered, across-overlapping, non-hidden abstract box pairs
//!   become difference constraints between *instance origin* variables
//!   (one unknown per rigid instance cluster, not two per box). Material
//!   frames keep abutting instances from stacking; coincident-origin
//!   touching instances are pinned so rows and columns cannot shear.
//! * **Shared λ pitch classes** — consecutive instances of the same cell
//!   pair along a row (or column) fold into one pitch variable per class,
//!   solved to its least value by a monotone fixpoint over rsg-solve
//!   (each round solves a pure difference system through any
//!   [`Solver`] backend, warm-started from the previous round; the class
//!   pitch rises to the worst member gap until stable). Every member pair
//!   of a class therefore lands at *exactly* the same pitch — the PLA and
//!   multiplier arrays stay pitch-matched by construction.
//!
//! [`compact_cell`] compacts one assembly cell; [`compact_hierarchy`]
//! walks a whole chip bottom-up (children before callers, as the paper
//! composes assemblies from interfaces) so multi-level layouts like the
//! multiplier's `array`/`topregs`/`thewholething` stack compact level by
//! level. `rsg_hpla::compactor::compact_chip` and
//! `rsg_mult::compactor::compact_chip` wire the leaf pass and this pass
//! together.

use crate::backend::{SolveError, Solver};
use crate::fault::{injected_exhaustion, FaultSite, InjectedFault};
use crate::limits::{Exhausted, Limits};
use crate::par::{par_map, Parallelism};
use crate::scanline::VisibilityCursor;
use crate::scratch::SweepScratch;
use rsg_geom::{Axis, BoundingBox, Isometry, Orientation, Point, Rect, Vector};
use rsg_layout::hash::{mix, ContentHasher};
use rsg_layout::{
    flatten, CellDefinition, CellId, CellTable, DesignRules, Layer, LayoutError, LayoutObject,
};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// Tuning knobs for the hierarchical compactor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierOptions {
    /// Maximum x+y alternations before giving up on the fixpoint.
    pub max_passes: usize,
    /// Maximum pitch-fixpoint rounds per axis sweep.
    pub max_pitch_rounds: usize,
    /// Resource budgets, checked at deterministic checkpoints (flat box
    /// count, constraint count, cumulative solver passes, deadline).
    /// [`Limits::NONE`] by default.
    pub limits: Limits,
    /// How the hierarchy walk distributes ready cells across workers:
    /// cells whose referenced definitions are all done form a wave of
    /// independent compactions (see [`compact_hierarchy`]). Results are
    /// **bit-identical** at every setting; only wall-clock changes. The
    /// default is [`Parallelism::Serial`] — small assemblies don't repay
    /// thread dispatch, so concurrency is opt-in per call.
    pub parallelism: Parallelism,
    /// Transitively reduce the instance spacing edges before solving:
    /// an origin edge `a → b` implied by a tighter kept chain
    /// `a → c → b` is dropped. Solution-identical (same origins, same
    /// pitches — see DESIGN.md, "Constraint pruning + sweep arenas");
    /// `false` keeps the full emission for equivalence testing.
    pub prune: bool,
}

impl Default for HierOptions {
    fn default() -> HierOptions {
        HierOptions {
            max_passes: 8,
            max_pitch_rounds: 32,
            limits: Limits::NONE,
            parallelism: Parallelism::Serial,
            prune: true,
        }
    }
}

impl HierOptions {
    /// Digest of the option fields that shape solve *content*: the pass
    /// and pitch-round ceilings plus the budget caps (they change where
    /// a run fails, so two runs under different caps are not
    /// interchangeable). The wall-clock deadline is deliberately
    /// excluded — it is not content-addressable — and so are
    /// [`HierOptions::parallelism`] and [`HierOptions::prune`], which
    /// are solution-identical by contract. This tag is the options leg
    /// of every compaction cache key, in-memory
    /// (`rsg_compact::incremental`) and on-disk (`rsg-serve`).
    pub fn content_tag(&self) -> u64 {
        let mut h = ContentHasher::new();
        h.write_u64(self.max_passes as u64)
            .write_u64(self.max_pitch_rounds as u64);
        for cap in [
            self.limits.max_flat_boxes,
            self.limits.max_constraints,
            self.limits.max_solve_passes,
        ] {
            match cap {
                Some(c) => h.write_u64(1).write_u64(c),
                None => h.write_u64(0),
            };
        }
        h.finish()
    }
}

/// Hierarchical compaction failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HierError {
    /// The referenced hierarchy could not be flattened into abstracts.
    Layout(LayoutError),
    /// The instance constraint system is infeasible (conflicting pins).
    Infeasible(String),
    /// The pitch fixpoint or the x/y alternation failed to stabilize.
    Diverged(String),
    /// The backend's rounded pitches could not be repaired to an integral
    /// solution. Distinct from [`HierError::Diverged`]: the fixpoint was
    /// fine, the LP relaxation's rounding was not.
    Rounding(String),
    /// Position arithmetic overflowed `i64` (input exceeded the
    /// coordinate budget the interior math is proven safe for).
    Overflow(String),
    /// A configured resource budget ([`HierOptions::limits`]) ran out.
    Exhausted(Exhausted),
    /// An internal invariant failed; reported as an error, never a panic.
    Internal(String),
}

impl std::fmt::Display for HierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HierError::Layout(e) => write!(f, "hierarchical compaction: {e}"),
            HierError::Infeasible(m) => write!(f, "hierarchical compaction infeasible: {m}"),
            HierError::Diverged(m) => write!(f, "hierarchical compaction diverged: {m}"),
            HierError::Rounding(m) => write!(f, "hierarchical pitch rounding failed: {m}"),
            HierError::Overflow(m) => write!(f, "hierarchical compaction overflowed: {m}"),
            HierError::Exhausted(e) => e.fmt(f),
            HierError::Internal(m) => write!(f, "hierarchical compaction internal error: {m}"),
        }
    }
}

impl std::error::Error for HierError {}

impl From<LayoutError> for HierError {
    fn from(e: LayoutError) -> HierError {
        HierError::Layout(e)
    }
}

impl From<Exhausted> for HierError {
    fn from(e: Exhausted) -> HierError {
        HierError::Exhausted(e)
    }
}

impl From<SolveError> for HierError {
    fn from(e: SolveError) -> HierError {
        match e {
            SolveError::Infeasible(m) => HierError::Infeasible(m),
            SolveError::Rounding(m) => HierError::Rounding(m),
            SolveError::Overflow(m) => HierError::Overflow(m),
            SolveError::Input(m) => HierError::Internal(m),
        }
    }
}

/// Maps an injected fault to the typed error the real fault would raise.
fn injected_error(fault: InjectedFault, axis: Axis) -> HierError {
    match fault {
        InjectedFault::SolverFail => {
            HierError::Infeasible(format!("injected solver failure on {axis}"))
        }
        InjectedFault::Diverge => {
            HierError::Diverged(format!("injected pitch-fixpoint divergence on {axis}"))
        }
        InjectedFault::Exhaust => HierError::Exhausted(injected_exhaustion()),
    }
}

/// The interface abstract of one cell definition under one orientation:
/// per-axis, per-layer edge profiles plus the bounding frames, in the
/// instance-local (oriented) coordinate system.
///
/// For each sweep axis the profile holds, per elementary across-strip,
/// one rectangle spanning from the leftmost to the rightmost material on
/// that layer within the strip (adjacent strips with identical spans are
/// merged). Spacing between two instances only ever consults the facing
/// extremes of such strips, so the abstract is exact for the ordered,
/// non-interleaved placements assemblies are built from, and it stays
/// small: its size tracks the cell's *silhouette*, not its box count.
#[derive(Debug, Clone)]
pub struct CellAbstract {
    /// Profile boxes per sweep axis (`[x, y]`), local coordinates.
    profiles: [Vec<(Layer, Rect)>; 2],
    /// Bounding box of every flat box (background layers included).
    bbox: Option<Rect>,
    /// Bounding box of rule-interacting material only.
    material: Option<Rect>,
    /// Flat boxes the abstract summarizes.
    source_boxes: usize,
}

impl CellAbstract {
    /// Derives the abstract from a flat box list (local coordinates).
    pub fn from_boxes(boxes: &[(Layer, Rect)], rules: &DesignRules) -> CellAbstract {
        let interacting: Vec<Layer> = Layer::ALL
            .iter()
            .copied()
            .filter(|&l| {
                Layer::ALL
                    .iter()
                    .any(|&m| rules.min_spacing(l, m).is_some())
            })
            .collect();
        let live: Vec<(Layer, Rect)> = boxes
            .iter()
            .copied()
            .filter(|&(l, r)| r.area() > 0 && interacting.contains(&l))
            .collect();
        let profiles = [profile_along(&live, Axis::X), profile_along(&live, Axis::Y)];
        let bbox: BoundingBox = boxes
            .iter()
            .filter(|(_, r)| r.area() > 0)
            .map(|&(_, r)| r)
            .collect();
        let material: BoundingBox = live.iter().map(|&(_, r)| r).collect();
        CellAbstract {
            profiles,
            bbox: bbox.rect(),
            material: material.rect(),
            source_boxes: boxes.len(),
        }
    }

    /// The per-layer edge profile for a sweep axis.
    pub fn profile(&self, axis: Axis) -> &[(Layer, Rect)] {
        &self.profiles[axis_index(axis)]
    }

    /// Bounding box of all flat boxes (local), `None` for empty cells.
    pub fn bbox(&self) -> Option<Rect> {
        self.bbox
    }

    /// Bounding box of rule-interacting material (local).
    pub fn material(&self) -> Option<Rect> {
        self.material
    }

    /// Number of flat boxes the abstract replaced — the reduction metric
    /// ([`CellAbstract::profile`] sizes vs this).
    pub fn source_boxes(&self) -> usize {
        self.source_boxes
    }
}

pub(crate) const fn axis_index(axis: Axis) -> usize {
    match axis {
        Axis::X => 0,
        Axis::Y => 1,
    }
}

/// Per-layer strip profile: for each elementary across-strip that holds
/// material, one rect spanning the material's along-extremes.
fn profile_along(boxes: &[(Layer, Rect)], axis: Axis) -> Vec<(Layer, Rect)> {
    let mut layers: Vec<Layer> = boxes.iter().map(|&(l, _)| l).collect();
    layers.sort_unstable();
    layers.dedup();
    let mut out = Vec::new();
    for layer in layers {
        let rects: Vec<Rect> = boxes
            .iter()
            .filter(|&&(l, _)| l == layer)
            .map(|&(_, r)| r)
            .collect();
        let mut cuts: Vec<i64> = rects
            .iter()
            .flat_map(|r| [r.lo_across(axis), r.hi_across(axis)])
            .collect();
        cuts.sort_unstable();
        cuts.dedup();
        // Merged run of strips sharing one along-span.
        let mut run: Option<(i64, i64, i64, i64)> = None; // (lo, hi, c0, c1)
        let flush = |run: &mut Option<(i64, i64, i64, i64)>, out: &mut Vec<(Layer, Rect)>| {
            if let Some((lo, hi, c0, c1)) = run.take() {
                out.push((layer, Rect::from_spans(axis, (lo, hi), (c0, c1))));
            }
        };
        for w in cuts.windows(2) {
            let (c0, c1) = (w[0], w[1]);
            let mut lo = i64::MAX;
            let mut hi = i64::MIN;
            for r in &rects {
                if r.lo_across(axis) < c1 && r.hi_across(axis) > c0 {
                    lo = lo.min(r.lo_along(axis));
                    hi = hi.max(r.hi_along(axis));
                }
            }
            if lo > hi {
                flush(&mut run, &mut out);
                continue;
            }
            match run {
                Some((rlo, rhi, _, ref mut rc1)) if rlo == lo && rhi == hi && *rc1 == c0 => {
                    *rc1 = c1;
                }
                _ => {
                    flush(&mut run, &mut out);
                    run = Some((lo, hi, c0, c1));
                }
            }
        }
        flush(&mut run, &mut out);
    }
    out
}

/// One abstract derivation per distinct `(definition, orientation)` no
/// matter how many instances call it — the economics the paper claims
/// for hierarchy ("compact the cell A only once", applied to placement).
/// The [`ShapeKey`] pool in [`compact_cell`] is the cache.
pub(crate) fn derive_abstract(
    table: &CellTable,
    cell: CellId,
    orientation: Orientation,
    rules: &DesignRules,
) -> Result<CellAbstract, LayoutError> {
    let flat = flatten(table, cell)?;
    let iso = Isometry::orient(orientation);
    let boxes: Vec<(Layer, Rect)> = flat
        .layer_rects()
        .iter()
        .map(|&(l, r)| (l, r.transform(iso)))
        .collect();
    Ok(CellAbstract::from_boxes(&boxes, rules))
}

/// Work-reuse counters filled by one hooked [`compact_cell_with`] run.
///
/// `constraints_emitted`/`constraints_reused` count the sweep kernel's
/// spacing, frame, and weld output (welds as 2, like
/// [`HierSweepStats::constraints`]); the cheap structural pins and pitch
/// constraints are not counted. `pairs_reused` counts unordered cluster
/// pairs skipped by the visibility kernel because both endpoints'
/// abstracts and positions were unchanged and no dirty material touched
/// their window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct ReuseCounters {
    /// Interface abstracts derived by flattening this run.
    pub abstracts_derived: usize,
    /// Interface abstracts answered from the content-hash cache.
    pub abstract_hits: usize,
    /// Unordered cluster pairs whose emission was copied, not recomputed.
    pub pairs_reused: usize,
    /// Kernel constraints computed fresh this run.
    pub constraints_emitted: usize,
    /// Kernel constraints copied from the previous run's emission.
    pub constraints_reused: usize,
    /// Sweeps that ran the pitch fixpoint + solver.
    pub sweeps_solved: usize,
    /// Sweeps answered entirely from the sweep memo.
    pub sweep_memo_hits: usize,
    /// Relaxation passes actually performed.
    pub solver_passes: usize,
}

/// The sweep kernel's output for one axis, keyed by *cluster index*:
/// collapsed max spacing/frame weights, exact welds, and per-pair
/// provenance — the `(cluster, cluster, layer)` key that says which
/// layer pair produced the binding entry (`None` = material frame).
/// `BTreeMap` keeps iteration (and thus constraint emission into the
/// solver) in sorted pair order no matter which entries were copied from
/// a previous run and which were recomputed.
#[derive(Debug, Clone, Default)]
pub(crate) struct Emission {
    /// Ordered cluster pair → strongest required separation.
    pub weights: BTreeMap<(usize, usize), i64>,
    /// Ordered cluster pair → exact weld offset (connected material).
    pub welds: BTreeMap<(usize, usize), i64>,
    /// Ordered cluster pair → deciding layer pair of the weight entry.
    pub provenance: BTreeMap<(usize, usize), Option<(Layer, Layer)>>,
}

/// What one executed sweep looked like — enough to decide, on the next
/// run, which cluster pairs' emission can be copied instead of re-swept.
#[derive(Debug, Clone)]
pub(crate) struct SweepRecord {
    /// Sweep direction.
    pub axis: Axis,
    /// Per-cluster identity keys ([`cluster_keys`]).
    pub keys: Vec<u64>,
    /// Per-cluster absolute material frames at sweep time.
    pub frames: Vec<Option<Rect>>,
    /// The full emission of the sweep (copied entries included).
    pub emission: Emission,
}

/// A memoized sweep solve: the exact solver outcome for one
/// geometry-identical sweep, replayable without building or solving the
/// constraint system again. `rounds`/`passes` are the original solve's
/// diagnostics, replayed into the report on a hit.
#[derive(Debug, Clone)]
pub(crate) struct SweepSolution {
    /// Per-cluster origin delta along the sweep axis.
    pub deltas: Vec<i64>,
    /// The solver's final (normalized) positions — the next warm seed.
    pub positions: Vec<i64>,
    /// Stable pitch values per class.
    pub lambdas: Vec<i64>,
    /// Origin extent along the axis after the sweep.
    pub extent: i64,
    /// Pitch-fixpoint rounds of the original solve.
    pub rounds: usize,
    /// Relaxation passes of the original solve.
    pub passes: usize,
}

/// Cross-run reuse seams of the hierarchical engine. The default
/// implementations are all inert, so [`NoHooks`] reproduces the plain
/// [`compact_cell`] behavior bit for bit with no bookkeeping;
/// `incremental::CompactSession` implements the trait to cache abstracts,
/// emissions, sweep solves, and warm seeds across edits.
pub(crate) trait CompactHooks {
    /// The interface abstract for `(cell, orientation)` plus a content
    /// signature of everything the abstract depends on (deep geometry,
    /// orientation, rules). Signatures equal ⟹ abstracts identical; a
    /// non-caching implementation may return 0 as long as it also leaves
    /// [`CompactHooks::enabled`] false.
    fn abstract_for(
        &mut self,
        table: &CellTable,
        cell: CellId,
        orientation: Orientation,
        rules: &DesignRules,
    ) -> Result<(Arc<CellAbstract>, u64), LayoutError>;

    /// Whether the cross-run reuse machinery (keys, records, memo) runs.
    fn enabled(&self) -> bool {
        false
    }

    /// Digest of everything outside the geometry that shapes a solve
    /// (design rules, solver backend, options) — folded into every sweep
    /// memo key.
    fn context_tag(&self) -> u64 {
        0
    }

    /// Warm-start seed for the first solve along `axis` (the previous
    /// run's final positions). Exactness never depends on the seed.
    fn warm_seed(&mut self, _axis: Axis) -> Option<Vec<i64>> {
        None
    }

    /// Records the final solver positions of a sweep along `axis`.
    fn record_warm(&mut self, _axis: Axis, _positions: &[i64]) {}

    /// The previous run's record of the sweep at this ordinal.
    fn prev_sweep(&mut self, _ordinal: usize) -> Option<Arc<SweepRecord>> {
        None
    }

    /// Stores this run's sweep record for the next run.
    fn record_sweep(&mut self, _ordinal: usize, _record: Arc<SweepRecord>) {}

    /// Looks up a memoized solve by [`sweep_memo_key`].
    fn memo_get(&mut self, _key: u64) -> Option<Arc<SweepSolution>> {
        None
    }

    /// Memoizes a solve under `key`.
    fn memo_put(&mut self, _key: u64, _solution: Arc<SweepSolution>) {}

    /// Reuse counters to fill, when the caller wants them.
    fn counters(&mut self) -> Option<&mut ReuseCounters> {
        None
    }

    /// Fault-injection seam: consulted at every solver call, sweep entry,
    /// and budget checkpoint (deterministic, so an armed
    /// [`crate::fault::FaultPlan`] names the same site on every run).
    /// Inert by default.
    fn fault(&mut self, _site: FaultSite) -> Option<InjectedFault> {
        None
    }
}

/// The inert hook set: derives abstracts on demand, caches nothing.
pub(crate) struct NoHooks;

impl CompactHooks for NoHooks {
    fn abstract_for(
        &mut self,
        table: &CellTable,
        cell: CellId,
        orientation: Orientation,
        rules: &DesignRules,
    ) -> Result<(Arc<CellAbstract>, u64), LayoutError> {
        Ok((
            Arc::new(derive_abstract(table, cell, orientation, rules)?),
            0,
        ))
    }
}

/// Identity key of each cluster for cross-run emission reuse: the
/// absolute position of the representative plus every member's content
/// signature and offset from the representative, in member order. Two
/// clusters with equal keys occupy the same absolute space with the same
/// material, so any emission between two matched clusters is unchanged
/// unless dirty material entered their window.
pub(crate) fn cluster_keys(items: &[Item], clusters: &[Cluster], positions: &[Point]) -> Vec<u64> {
    clusters
        .iter()
        .map(|c| {
            let rp = positions[c.rep];
            let mut h = ContentHasher::new();
            h.write_i64(rp.x).write_i64(rp.y);
            h.write_u64(c.members.len() as u64);
            for &m in &c.members {
                h.write_u64(items[m].sig)
                    .write_i64(positions[m].x - rp.x)
                    .write_i64(positions[m].y - rp.y);
            }
            h.finish()
        })
        .collect()
}

/// Decides which unordered cluster pairs of the current sweep can copy
/// their emission from `prev` instead of re-running the kernel: both
/// endpoints must match a previous cluster by key (uniquely, on both
/// sides), and no *dirty* cluster — unmatched on either side, at its old
/// or new frame — may intersect (touching included, conservatively) the
/// union bounding box of the pair's frames. Every gap window the kernel
/// and its hidden-edge oracle consult for the pair lies inside that
/// union box, so identical surrounding material implies identical
/// emission.
fn pair_reuse(
    keys: &[u64],
    frames: &[Option<Rect>],
    prev: &SweepRecord,
) -> HashMap<(usize, usize), (usize, usize)> {
    let mut prev_idx: HashMap<u64, Option<usize>> = HashMap::new();
    for (pi, &k) in prev.keys.iter().enumerate() {
        prev_idx
            .entry(k)
            .and_modify(|e| *e = None)
            .or_insert(Some(pi));
    }
    let mut cur_count: HashMap<u64, usize> = HashMap::new();
    for &k in keys {
        *cur_count.entry(k).or_insert(0) += 1;
    }
    let matched: Vec<Option<usize>> = keys
        .iter()
        .map(|k| {
            if cur_count[k] != 1 {
                return None;
            }
            prev_idx.get(k).copied().flatten()
        })
        .collect();
    let matched_prev: HashSet<usize> = matched.iter().flatten().copied().collect();

    let mut dirty: Vec<Rect> = Vec::new();
    for (ci, m) in matched.iter().enumerate() {
        if m.is_none() {
            if let Some(f) = frames[ci] {
                dirty.push(f);
            }
        }
    }
    for (pi, f) in prev.frames.iter().enumerate() {
        if !matched_prev.contains(&pi) {
            if let Some(f) = *f {
                dirty.push(f);
            }
        }
    }

    let mut map = HashMap::new();
    for a in 0..keys.len() {
        let Some(pa) = matched[a] else { continue };
        for b in a + 1..keys.len() {
            let Some(pb) = matched[b] else { continue };
            let window = match (frames[a], frames[b]) {
                (Some(fa), Some(fb)) => {
                    let mut bb = BoundingBox::new();
                    bb.include_rect(fa);
                    bb.include_rect(fb);
                    bb.rect()
                }
                (one, other) => one.or(other),
            };
            let clean = match window {
                Some(w) => !dirty.iter().any(|d| d.intersect(w).is_some()),
                None => true,
            };
            if clean {
                map.insert((a, b), (pa, pb));
            }
        }
    }
    map
}

/// Content key of one sweep solve: the run context (rules, solver,
/// options), the axis, every cluster's member signatures and positions
/// (relative to the placement's min corner, so uniform translations
/// hit), the structural pins/classes, and the full emission. Equal keys
/// ⟹ identical constraint systems ⟹ identical least solutions, so the
/// memoized [`SweepSolution`] replays exactly.
#[allow(clippy::too_many_arguments)]
fn sweep_memo_key(
    context: u64,
    axis: Axis,
    items: &[Item],
    clusters: &[Cluster],
    positions: &[Point],
    structure: &AxisStructure,
    emission: &Emission,
    floor: i64,
) -> u64 {
    let mut h = ContentHasher::new();
    h.write_u64(context)
        .write_u64(axis_index(axis) as u64)
        .write_i64(floor);
    let minx = positions.iter().map(|p| p.x).min().unwrap_or(0);
    let miny = positions.iter().map(|p| p.y).min().unwrap_or(0);
    h.write_u64(clusters.len() as u64);
    for c in clusters {
        h.write_u64(c.members.len() as u64);
        for &m in &c.members {
            h.write_u64(items[m].sig)
                .write_i64(positions[m].x - minx)
                .write_i64(positions[m].y - miny);
        }
    }
    h.write_u64(structure.pins.len() as u64);
    for &(a, b) in &structure.pins {
        h.write_u64(a as u64).write_u64(b as u64);
    }
    h.write_u64(structure.classes.len() as u64);
    for class in &structure.classes {
        h.write_u64(class.pairs.len() as u64);
        for &(a, b) in &class.pairs {
            h.write_u64(a as u64).write_u64(b as u64);
        }
    }
    h.write_u64(emission.weights.len() as u64);
    for (&(a, b), &w) in &emission.weights {
        h.write_u64(a as u64).write_u64(b as u64).write_i64(w);
    }
    h.write_u64(emission.welds.len() as u64);
    for (&(a, b), &d) in &emission.welds {
        h.write_u64(a as u64).write_u64(b as u64).write_i64(d);
    }
    h.finish()
}

/// Identity of an item's shape, the pitch-class grouping key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) enum ShapeKey {
    /// An instance: called definition + orientation (as ℤ₄ × 𝔹 ints).
    Cell(u32, (u8, bool)),
    /// A direct box in the assembly cell: layer index + dimensions, so
    /// differently-sized bars on one layer don't share a pitch class.
    Box(usize, (i64, i64)),
}

/// One movable object of the assembly: an instance or a direct box.
pub(crate) struct Item {
    /// Index into the root definition's object list.
    object: usize,
    /// Current origin (instance point of call; box low corner).
    pos: Point,
    /// Shape identity for pitch-class keys.
    key: ShapeKey,
    /// Index into the abstract pool.
    shape: usize,
    /// Content signature of the shape (hooked runs; 0 otherwise).
    sig: u64,
}

/// One solved pitch class: a shared λ and the member pairs it locks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierPitch {
    /// Sweep axis the pitch applies along.
    pub axis: Axis,
    /// Human-readable class name (`cellA->cellB` plus the sample offset).
    pub name: String,
    /// Solved pitch value.
    pub value: i64,
    /// Number of abutting instance pairs sharing the pitch.
    pub pairs: usize,
}

/// Statistics of one axis sweep of the hierarchical engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierSweepStats {
    /// Sweep direction.
    pub axis: Axis,
    /// Instance clusters (= solver variables).
    pub clusters: usize,
    /// Abstract boxes fed to the visibility kernel.
    pub abstract_boxes: usize,
    /// Difference constraints generated (spacing + frames + pins).
    pub constraints: usize,
    /// Pitch-fixpoint rounds until the class pitches stabilized.
    pub pitch_rounds: usize,
    /// Total relaxation passes across the rounds' solves.
    pub solver_passes: usize,
    /// Origin extent along the axis after the sweep.
    pub extent: i64,
}

/// Trace of a whole hierarchical compaction run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HierReport {
    /// One entry per executed axis sweep, in order (x, y, x, y, …).
    pub sweeps: Vec<HierSweepStats>,
    /// Flat boxes the instance abstracts summarize (what a flattening
    /// compactor would have had to move).
    pub flat_boxes: usize,
}

impl HierReport {
    /// Total constraints across every sweep.
    pub fn total_constraints(&self) -> usize {
        self.sweeps.iter().map(|s| s.constraints).sum()
    }

    /// Total relaxation passes across every sweep.
    pub fn total_solver_passes(&self) -> usize {
        self.sweeps.iter().map(|s| s.solver_passes).sum()
    }
}

/// Result of hierarchically compacting one assembly cell.
#[derive(Debug, Clone)]
pub struct HierOutcome {
    /// The re-placed assembly: same objects, new instance origins.
    pub cell: CellDefinition,
    /// Solved pitch classes of the final x and y sweeps.
    pub pitches: Vec<HierPitch>,
    /// Full x+y alternations performed before the fixpoint.
    pub passes: usize,
    /// Whether the alternation reached a fixpoint within the cap.
    pub converged: bool,
    /// Per-sweep diagnostics.
    pub report: HierReport,
}

/// A fully compacted hierarchy: the updated cell table plus the per-cell
/// outcomes, in bottom-up compaction order.
#[derive(Debug, Clone)]
pub struct ChipLayout {
    /// The table with every assembly cell re-placed.
    pub table: CellTable,
    /// The root cell (unchanged id).
    pub top: CellId,
    /// `(cell name, outcome)` for every compacted assembly cell.
    pub cells: Vec<(String, HierOutcome)>,
}

impl ChipLayout {
    /// The outcome for one assembly cell, by name.
    pub fn outcome(&self, name: &str) -> Option<&HierOutcome> {
        self.cells.iter().find(|(n, _)| n == name).map(|(_, o)| o)
    }
}

/// Whole-chip compaction failure: the leaf pass or the hierarchy pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChipError {
    /// The leaf library pass failed.
    Leaf(crate::leaf::LeafError),
    /// The hierarchical placement pass failed.
    Hier(HierError),
}

impl std::fmt::Display for ChipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChipError::Leaf(e) => write!(f, "chip compaction (leaf pass): {e}"),
            ChipError::Hier(e) => write!(f, "chip compaction (hier pass): {e}"),
        }
    }
}

impl std::error::Error for ChipError {}

impl From<crate::leaf::LeafError> for ChipError {
    fn from(e: crate::leaf::LeafError) -> ChipError {
        ChipError::Leaf(e)
    }
}

impl From<HierError> for ChipError {
    fn from(e: HierError) -> ChipError {
        ChipError::Hier(e)
    }
}

/// A fully compacted chip: the leaf-pass results plus the hierarchical
/// placement of the assembly, never flattened.
#[derive(Debug, Clone)]
pub struct ChipCompaction {
    /// The re-placed hierarchy (updated cell table + per-cell outcomes).
    pub chip: ChipLayout,
    /// The leaf-library pass results that produced the new cells.
    pub leaf: Vec<crate::leaf::CompactionResult>,
}

/// The generic two-pass chip flow: substitute a leaf-compacted library
/// into the table (cells matched by name), then hierarchically re-place
/// every assembly cell reachable from `top`. The workload crates'
/// `compact_chip` entry points (`rsg_hpla::compactor`,
/// `rsg_mult::compactor`) wrap this with their own library jobs.
///
/// # Errors
///
/// Returns [`ChipError::Hier`] when a leaf-pass cell name does not exist
/// in `table` (a silent skip would leave uncompacted sample geometry in
/// the chip) or when the placement pass fails.
pub fn compact_chip_with_library(
    table: &CellTable,
    top: CellId,
    leaf: Vec<crate::leaf::CompactionResult>,
    rules: &DesignRules,
    solver: &dyn Solver,
    opts: &HierOptions,
) -> Result<ChipCompaction, ChipError> {
    let mut compacted = table.clone();
    for result in &leaf {
        for cell in &result.cells {
            let id = compacted.lookup(cell.name()).ok_or_else(|| {
                ChipError::Hier(HierError::Layout(LayoutError::UnknownCell(
                    cell.name().to_owned(),
                )))
            })?;
            let Some(slot) = compacted.get_mut(id) else {
                return Err(ChipError::Hier(HierError::Internal(format!(
                    "cell `{}` vanished between lookup and substitution",
                    cell.name()
                ))));
            };
            *slot = cell.clone();
        }
    }
    let chip = compact_hierarchy(&compacted, top, rules, solver, opts)?;
    Ok(ChipCompaction { chip, leaf })
}

/// Pins and pitch classes of one sweep axis, derived once from the input
/// placement (the design's structure, stable across alternations).
pub(crate) struct AxisStructure {
    /// Cluster pairs pinned at along-offset 0: any two clusters *drawn
    /// at the same along-coordinate* stay at the same along-coordinate —
    /// coincidence alone pins, no touch test (a buffer drawn on its
    /// column keeps the column even after the leaf pass shrinks the
    /// bodies apart). These keep rows/columns from shearing; a pin that
    /// contradicts ordered spacing makes the cell report `Infeasible`.
    pins: Vec<(usize, usize)>,
    /// Pitch classes over row-consecutive cluster pairs.
    classes: Vec<PitchClassDef>,
}

struct PitchClassDef {
    name: String,
    pairs: Vec<(usize, usize)>,
}

/// A rigid cluster: items whose bodies overlap with positive area in the
/// input (crosspoint masks over their squares, personality masks over the
/// basic cell) move as one unit.
pub(crate) struct Cluster {
    members: Vec<usize>,
    /// Member with the largest body — the cluster's identity and origin.
    rep: usize,
}

/// Hierarchically compacts one assembly cell: instances (and direct
/// boxes) are re-placed along both axes against each other's interface
/// abstracts, with abutting rows/columns folded through shared λ pitch
/// classes. Leaf definitions are untouched — nothing is flattened into
/// the result.
///
/// # Errors
///
/// Returns [`HierError`] when a referenced definition cannot be
/// flattened for its abstract, when pins conflict (infeasible), or when
/// the pitch fixpoint / axis alternation fails to stabilize.
pub fn compact_cell(
    table: &CellTable,
    root: CellId,
    rules: &DesignRules,
    solver: &dyn Solver,
    opts: &HierOptions,
) -> Result<HierOutcome, HierError> {
    compact_cell_with(table, root, rules, solver, opts, &mut NoHooks)
}

/// [`compact_cell`] with reuse hooks — the incremental session's entry.
/// With [`NoHooks`] this *is* `compact_cell`; with an active hook set the
/// result stays bit-identical (geometry and pitches) while abstracts,
/// emission, and solves are reused across runs.
pub(crate) fn compact_cell_with(
    table: &CellTable,
    root: CellId,
    rules: &DesignRules,
    solver: &dyn Solver,
    opts: &HierOptions,
    hooks: &mut dyn CompactHooks,
) -> Result<HierOutcome, HierError> {
    opts.limits.check_deadline()?;
    let def = table.require(root)?;
    let mut shapes: Vec<Arc<CellAbstract>> = Vec::new();
    let mut shape_of: HashMap<ShapeKey, (usize, u64)> = HashMap::new();
    let mut items: Vec<Item> = Vec::new();

    for (k, obj) in def.objects().iter().enumerate() {
        match obj {
            LayoutObject::Instance(inst) => {
                let key = ShapeKey::Cell(inst.cell.raw(), {
                    let o = inst.orientation;
                    (o.rotation as u8, o.mirror_y)
                });
                let (shape, sig) = match shape_of.get(&key) {
                    Some(&s) => s,
                    None => {
                        let (a, sig) =
                            hooks.abstract_for(table, inst.cell, inst.orientation, rules)?;
                        shapes.push(a);
                        shape_of.insert(key, (shapes.len() - 1, sig));
                        (shapes.len() - 1, sig)
                    }
                };
                items.push(Item {
                    object: k,
                    pos: inst.point_of_call,
                    key,
                    shape,
                    sig,
                });
            }
            LayoutObject::Box { layer, rect } => {
                let local = rect.translate(Vector::new(-rect.lo().x, -rect.lo().y));
                shapes.push(Arc::new(CellAbstract::from_boxes(
                    &[(*layer, local)],
                    rules,
                )));
                items.push(Item {
                    object: k,
                    pos: rect.lo(),
                    key: ShapeKey::Box(layer.index(), (rect.width(), rect.height())),
                    shape: shapes.len() - 1,
                    sig: mix(&[
                        0x0042_6f78,
                        layer.index() as u64,
                        rect.width() as u64,
                        rect.height() as u64,
                    ]),
                });
            }
            LayoutObject::Label { .. } => {}
        }
    }

    let flat_boxes = items.iter().map(|i| shapes[i.shape].source_boxes()).sum();
    // Checkpoint: the flat box count this cell's abstracts summarize.
    if let Some(f) = hooks.fault(FaultSite::Checkpoint) {
        return Err(injected_error(f, Axis::X));
    }
    opts.limits.check_boxes(flat_boxes)?;
    if items.is_empty() {
        return Ok(HierOutcome {
            cell: def.clone(),
            pitches: Vec::new(),
            passes: 0,
            converged: true,
            report: HierReport {
                sweeps: Vec::new(),
                flat_boxes,
            },
        });
    }

    let clusters = rigid_clusters(&items, &shapes);
    let structure = [
        axis_structure(table, Axis::X, &items, &clusters),
        axis_structure(table, Axis::Y, &items, &clusters),
    ];

    let mut positions: Vec<Point> = items.iter().map(|i| i.pos).collect();
    let mut report = HierReport {
        sweeps: Vec::new(),
        flat_boxes,
    };
    let mut warm: [Option<Vec<i64>>; 2] = if hooks.enabled() {
        [hooks.warm_seed(Axis::X), hooks.warm_seed(Axis::Y)]
    } else {
        [None, None]
    };
    let mut final_pitch: [Vec<HierPitch>; 2] = [Vec::new(), Vec::new()];
    // One sweep arena per axis: the constraint system, its CSR graph,
    // and the oracle index are cleared and refilled across alternation
    // passes instead of rebuilt cold (a converged re-sweep reuses the
    // previous pass's graph wholesale).
    let mut scratch: [SweepScratch; 2] = [SweepScratch::new(), SweepScratch::new()];
    let mut passes = 0;
    let mut converged = false;
    for _ in 0..opts.max_passes {
        let before = positions.clone();
        for axis in Axis::BOTH {
            let ordinal = report.sweeps.len();
            let (stats, pitches) = sweep_axis(
                axis,
                &items,
                &shapes,
                &clusters,
                &structure[axis_index(axis)],
                &mut positions,
                rules,
                solver,
                &mut warm[axis_index(axis)],
                opts,
                ordinal,
                hooks,
                &mut scratch[axis_index(axis)],
            )?;
            report.sweeps.push(stats);
            final_pitch[axis_index(axis)] = pitches;
        }
        passes += 1;
        if positions == before {
            converged = true;
            break;
        }
    }

    // Rebuild the assembly with the solved origins; labels pass through.
    let mut cell = CellDefinition::new(def.name());
    let delta: HashMap<usize, Vector> = items
        .iter()
        .zip(&positions)
        .map(|(item, &p)| (item.object, p - item.pos))
        .collect();
    for (k, obj) in def.objects().iter().enumerate() {
        match obj {
            LayoutObject::Instance(inst) => {
                let d = delta[&k];
                let mut moved = *inst;
                moved.point_of_call = inst.point_of_call + d;
                cell.add_instance(moved);
            }
            LayoutObject::Box { layer, rect } => {
                cell.add_box(*layer, rect.translate(delta[&k]));
            }
            LayoutObject::Label { text, at } => {
                cell.add_label(text.clone(), *at);
            }
        }
    }

    let [px, py] = final_pitch;
    Ok(HierOutcome {
        cell,
        pitches: px.into_iter().chain(py).collect(),
        passes,
        converged,
        report,
    })
}

/// Union-find over rigid attachment: two items move as one unit when one
/// body fully contains the other (a personality mask riding inside its
/// host cell) or their rule-interacting material overlaps with positive
/// area. Background-layer overlap alone does **not** fuse — compacted
/// neighbours legitimately interpenetrate their wells, and fusing them
/// would freeze the assembly solid on a recompaction pass.
fn rigid_clusters(items: &[Item], shapes: &[Arc<CellAbstract>]) -> Vec<Cluster> {
    let bbox =
        |i: usize| -> Option<Rect> { shapes[items[i].shape].bbox().map(|r| at(r, items[i].pos)) };
    let mat = |i: usize| -> Option<Rect> {
        shapes[items[i].shape]
            .material()
            .map(|r| at(r, items[i].pos))
    };
    let mut parent: Vec<usize> = (0..items.len()).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let r = find(parent, parent[i]);
            parent[i] = r;
        }
        parent[i]
    }
    for i in 0..items.len() {
        let Some(bi) = bbox(i) else { continue };
        for j in i + 1..items.len() {
            let Some(bj) = bbox(j) else { continue };
            let contained = bi.contains_rect(bj) || bj.contains_rect(bi);
            let material_overlap = match (mat(i), mat(j)) {
                (Some(ma), Some(mb)) => ma.intersect(mb).is_some_and(|o| o.area() > 0),
                _ => false,
            };
            if contained || material_overlap {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[rj] = ri;
                }
            }
        }
    }
    let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for i in 0..items.len() {
        let r = find(&mut parent, i);
        groups.entry(r).or_default().push(i);
    }
    groups
        .into_values()
        .filter_map(|members| {
            // Every group holds at least its root, so the filter never
            // actually drops anything — it just keeps this panic-free.
            let rep = members
                .iter()
                .copied()
                .max_by_key(|&i| (bbox(i).map_or(0, |r| r.area()), std::cmp::Reverse(i)))?;
            Some(Cluster { members, rep })
        })
        .collect()
}

fn at(r: Rect, p: Point) -> Rect {
    r.translate(Vector::new(p.x, p.y))
}

fn along(p: Point, axis: Axis) -> i64 {
    match axis {
        Axis::X => p.x,
        Axis::Y => p.y,
    }
}

/// Pins and pitch classes for one axis, from the input placement.
fn axis_structure(
    table: &CellTable,
    axis: Axis,
    items: &[Item],
    clusters: &[Cluster],
) -> AxisStructure {
    let origin = |c: &Cluster| items[c.rep].pos;

    // Pins: clusters drawn at the same along-coordinate stay at the same
    // along-coordinate — the design-by-example reading of alignment. A
    // buffer drawn on its column keeps its column; a register stack drawn
    // level with its array stays level, even after the leaf pass shrinks
    // the bodies so they no longer touch. Each coincidence group chains
    // into consecutive exact pins.
    let mut pins = Vec::new();
    let mut by_origin: BTreeMap<i64, Vec<usize>> = BTreeMap::new();
    for (ci, c) in clusters.iter().enumerate() {
        by_origin
            .entry(along(origin(c), axis))
            .or_default()
            .push(ci);
    }
    for group in by_origin.values() {
        for w in group.windows(2) {
            pins.push((w[0], w[1]));
        }
    }

    // Rows: clusters sharing an across-origin, ordered along the axis.
    let mut rows: BTreeMap<i64, Vec<usize>> = BTreeMap::new();
    for (ci, c) in clusters.iter().enumerate() {
        rows.entry(along(origin(c), axis.other()))
            .or_default()
            .push(ci);
    }
    let mut classes: BTreeMap<(ShapeKey, ShapeKey, i64), Vec<(usize, usize)>> = BTreeMap::new();
    for row in rows.values_mut() {
        row.sort_by_key(|&ci| (along(origin(&clusters[ci]), axis), ci));
        for w in row.windows(2) {
            let (a, b) = (w[0], w[1]);
            let d = along(origin(&clusters[b]), axis) - along(origin(&clusters[a]), axis);
            if d == 0 {
                continue; // coincident clusters are the pins' business
            }
            let key = (items[clusters[a].rep].key, items[clusters[b].rep].key, d);
            classes.entry(key).or_default().push((a, b));
        }
    }
    let names: HashMap<u32, &str> = table.iter().map(|(id, c)| (id.raw(), c.name())).collect();
    let name_of = |key: &ShapeKey| -> String {
        match key {
            ShapeKey::Cell(raw, _) => names
                .get(raw)
                .map_or_else(|| format!("#{raw}"), |n| (*n).to_owned()),
            ShapeKey::Box(layer, _) => format!("box:{}", Layer::ALL[*layer]),
        }
    };
    let classes = classes
        .into_iter()
        .map(|((ka, kb, d), pairs)| PitchClassDef {
            name: format!("{axis}:{}->{}@{d}", name_of(&ka), name_of(&kb)),
            pairs,
        })
        .collect();
    AxisStructure { pins, classes }
}

/// One axis sweep: constraint generation on abstracts, pitch fixpoint,
/// position update. Returns the stats and the solved pitch classes.
#[allow(clippy::too_many_arguments)]
/// The emission's origin-spacing edges, optionally transitively reduced.
///
/// An edge `(a, b, w_ab)` is dropped when a kept interposed cluster `c`
/// carries edges `(a, c, w_ac)` and `(c, b, w_cb)` with
/// `w_ac + w_cb ≥ w_ab` — the chain already forces
/// `x_b − x_a ≥ w_ac + w_cb ≥ w_ab` in every feasible solution, so the
/// dropped edge never binds (cluster extents are pre-folded into the
/// origin weights, so no width term appears). Edges are visited in
/// `BTreeMap` order and chains only use edges not yet dropped;
/// soundness follows by reverse induction on drop order, exactly as for
/// the flat scanline prune (DESIGN.md).
fn pruned_weight_edges(
    n: usize,
    weights: &BTreeMap<(usize, usize), i64>,
    prune: bool,
) -> Vec<((usize, usize), i64)> {
    let mut edges: Vec<((usize, usize), i64)> = weights.iter().map(|(&p, &w)| (p, w)).collect();
    if !prune || edges.len() < 3 {
        return edges;
    }
    // `edges` is sorted by (a, b): bucket offsets by source cluster.
    let mut starts = vec![0usize; n + 1];
    for &((a, _), _) in &edges {
        starts[a + 1] += 1;
    }
    for a in 0..n {
        starts[a + 1] += starts[a];
    }
    let mut keep = vec![true; edges.len()];
    for idx in 0..edges.len() {
        let ((a, b), w_ab) = edges[idx];
        for m in starts[a]..starts[a + 1] {
            if !keep[m] {
                continue;
            }
            let ((_, c), w_ac) = edges[m];
            if c == b {
                continue;
            }
            let row = &edges[starts[c]..starts[c + 1]];
            let Ok(p) = row.binary_search_by(|&((_, t), _)| t.cmp(&b)) else {
                continue;
            };
            let m2 = starts[c] + p;
            if !keep[m2] {
                continue;
            }
            // Checked, not saturating: a saturated chain sum would
            // compare as "dominates" and drop an edge the chain does
            // not actually imply. Overflow means "cannot prove
            // dominance", so the direct edge is kept.
            if w_ac
                .checked_add(edges[m2].1)
                .is_some_and(|chain| chain >= w_ab)
            {
                keep[idx] = false;
                break;
            }
        }
    }
    let mut w = 0;
    for idx in 0..edges.len() {
        if keep[idx] {
            edges[w] = edges[idx];
            w += 1;
        }
    }
    edges.truncate(w);
    edges
}

#[allow(clippy::too_many_arguments)]
fn sweep_axis(
    axis: Axis,
    items: &[Item],
    shapes: &[Arc<CellAbstract>],
    clusters: &[Cluster],
    structure: &AxisStructure,
    positions: &mut [Point],
    rules: &DesignRules,
    solver: &dyn Solver,
    warm: &mut Option<Vec<i64>>,
    opts: &HierOptions,
    ordinal: usize,
    hooks: &mut dyn CompactHooks,
    scratch: &mut SweepScratch,
) -> Result<(HierSweepStats, Vec<HierPitch>), HierError> {
    if let Some(f) = hooks.fault(FaultSite::Sweep) {
        return Err(injected_error(f, axis));
    }
    let n = clusters.len();
    let origin = |c: &Cluster, positions: &[Point]| positions[c.rep];
    let SweepScratch { sys, scan } = scratch;

    // Absolute abstract boxes, tagged with their owning cluster. The box
    // list fills the scan arena's item buffer and goes straight into its
    // recycled spatial index (the oracle and the candidate walks below
    // both read from there).
    let pbuf = &mut scan.items;
    pbuf.clear();
    let mut owner: Vec<usize> = Vec::new();
    for (ci, c) in clusters.iter().enumerate() {
        for &m in &c.members {
            for &(l, r) in shapes[items[m].shape].profile(axis) {
                pbuf.push((l, at(r, positions[m])));
                owner.push(ci);
            }
        }
    }
    let stale = scan.index.rebuild_from_vec(std::mem::take(pbuf), axis);
    *pbuf = stale;
    let pboxes: &[(Layer, Rect)] = scan.index.items();

    // Material frames per cluster (absolute).
    let frames: Vec<Option<Rect>> = clusters
        .iter()
        .map(|c| {
            let mut bb = BoundingBox::new();
            for &m in &c.members {
                if let Some(r) = shapes[items[m].shape].material() {
                    bb.include_rect(at(r, positions[m]));
                }
            }
            bb.rect()
        })
        .collect();

    // Cross-run reuse: match clusters against the previous run's sweep
    // at the same ordinal and mark pairs whose emission can be copied.
    let enabled = hooks.enabled();
    let keys: Vec<u64> = if enabled {
        cluster_keys(items, clusters, positions)
    } else {
        Vec::new()
    };
    let prev: Option<Arc<SweepRecord>> = if enabled {
        hooks.prev_sweep(ordinal).filter(|p| p.axis == axis)
    } else {
        None
    };
    let reuse: Option<HashMap<(usize, usize), (usize, usize)>> =
        prev.as_deref().map(|p| pair_reuse(&keys, &frames, p));
    let reused = |a: usize, b: usize| -> bool {
        reuse
            .as_ref()
            .is_some_and(|m| m.contains_key(&(a.min(b), a.max(b))))
    };

    // Pairwise constraint weights, collapsed to the max per cluster pair,
    // with the deciding layer pair recorded as provenance.
    let base = |ci: usize| along(origin(&clusters[ci], positions), axis);
    let mut emission = Emission::default();
    fn bump(e: &mut Emission, a: usize, b: usize, w: i64, prov: Option<(Layer, Layer)>) {
        let cur = e.weights.entry((a, b)).or_insert(i64::MIN);
        if w > *cur {
            *cur = w;
            e.provenance.insert((a, b), prov);
        }
    }

    // Frames: ordered material bounding boxes may abut but not overlap —
    // the hierarchical engine never compacts *into* a leaf.
    for a in 0..n {
        let Some(fa) = frames[a] else { continue };
        for (b, fb) in frames.iter().enumerate() {
            if a == b || reused(a, b) {
                continue;
            }
            let Some(fb) = *fb else { continue };
            if fa.hi_along(axis) > fb.lo_along(axis) {
                continue;
            }
            if fa.lo_across(axis) >= fb.hi_across(axis) || fb.lo_across(axis) >= fa.hi_across(axis)
            {
                continue;
            }
            let w = (fa.hi_along(axis) - base(a)) - (fb.lo_along(axis) - base(b));
            bump(&mut emission, a, b, w, None);
        }
    }

    // Spacing between abstract boxes of distinct clusters, hidden pairs
    // pruned through the same oracle the flat scanline uses. Same-layer
    // material that touches across a cluster boundary is one electrical
    // net: like the flat engine's connectivity constraints, the two
    // clusters are *welded* at their current offset — exempting the pair
    // from spacing alone would let the compactor pry a connected bus
    // apart.
    let mut cursor = VisibilityCursor::with_cache(&scan.index, std::mem::take(&mut scan.profiles));
    for (i, &(la, ra)) in pboxes.iter().enumerate() {
        for (j, &(lb, rb)) in pboxes.iter().enumerate() {
            if owner[i] == owner[j] || reused(owner[i], owner[j]) {
                continue;
            }
            if la == lb && ra.intersect(rb).is_some() {
                if owner[i] < owner[j] {
                    emission
                        .welds
                        .insert((owner[i], owner[j]), base(owner[j]) - base(owner[i]));
                }
                continue; // connected material: welded, never spaced
            }
            let Some(s) = rules.min_spacing(la, lb) else {
                continue;
            };
            if ra.hi_along(axis) > rb.lo_along(axis) {
                continue;
            }
            // Near-overlap window: the DRC gap is L∞, so a diagonal pair
            // whose across-gap is under the rule still needs the full
            // along-spacing — strict overlap would leave corner-to-corner
            // pairs unconstrained.
            if ra.lo_across(axis) >= rb.hi_across(axis) + s
                || rb.lo_across(axis) >= ra.hi_across(axis) + s
            {
                continue;
            }
            if cursor.hidden_between(i, j) {
                continue;
            }
            let w = s + (ra.hi_along(axis) - base(owner[i])) - (rb.lo_along(axis) - base(owner[j]));
            bump(&mut emission, owner[i], owner[j], w, Some((la, lb)));
        }
    }
    scan.profiles = cursor.into_cache();

    // Copy the reused pairs' entries from the previous emission. The
    // BTreeMaps restore sorted pair order, so the solver sees exactly the
    // constraint sequence a from-scratch sweep would emit.
    let fresh_constraints = emission.weights.len() + emission.welds.len() * 2;
    if let (Some(reuse_map), Some(p)) = (&reuse, prev.as_deref()) {
        for (&(a, b), &(pa, pb)) in reuse_map {
            for (cf, ct, pf, pt) in [(a, b, pa, pb), (b, a, pb, pa)] {
                if let Some(&w) = p.emission.weights.get(&(pf, pt)) {
                    emission.weights.insert((cf, ct), w);
                    if let Some(&prov) = p.emission.provenance.get(&(pf, pt)) {
                        emission.provenance.insert((cf, ct), prov);
                    }
                }
                if let Some(&d) = p.emission.welds.get(&(pf, pt)) {
                    emission.welds.insert((cf, ct), d);
                }
            }
        }
        if let Some(c) = hooks.counters() {
            c.pairs_reused += reuse_map.len();
            c.constraints_reused +=
                emission.weights.len() + emission.welds.len() * 2 - fresh_constraints;
        }
    }
    if let Some(c) = hooks.counters() {
        c.constraints_emitted += fresh_constraints;
    }
    if enabled {
        hooks.record_sweep(
            ordinal,
            Arc::new(SweepRecord {
                axis,
                keys,
                frames: frames.clone(),
                emission: emission.clone(),
            }),
        );
    }

    // Normalized initial coordinates (clusters are never empty here, but
    // an empty sweep normalizes to 0 rather than panicking).
    let min_base = (0..n).map(base).min().unwrap_or(0);
    let floor = rules.spacing_floor();
    let constraints = emission.weights.len()
        + emission.welds.len() * 2
        + structure.pins.len() * 2
        + structure
            .classes
            .iter()
            .map(|c| c.pairs.len())
            .sum::<usize>();
    // Checkpoint: the generated constraint count of this sweep.
    opts.limits.check_constraints(constraints)?;

    let pitch_list = |lambdas: &[i64]| -> Vec<HierPitch> {
        structure
            .classes
            .iter()
            .zip(lambdas)
            .map(|(class, &value)| HierPitch {
                axis,
                name: class.name.clone(),
                value,
                pairs: class.pairs.len(),
            })
            .collect()
    };

    // Geometry-identical sweeps (same clusters, emission, structure, and
    // context) replay their memoized solve without touching the solver.
    let memo_key = enabled.then(|| {
        sweep_memo_key(
            hooks.context_tag(),
            axis,
            items,
            clusters,
            positions,
            structure,
            &emission,
            floor,
        )
    });
    if let Some(key) = memo_key {
        if let Some(m) = hooks.memo_get(key) {
            for (c, &d) in clusters.iter().zip(&m.deltas) {
                for &mem in &c.members {
                    match axis {
                        Axis::X => positions[mem].x += d,
                        Axis::Y => positions[mem].y += d,
                    }
                }
            }
            *warm = Some(m.positions.clone());
            hooks.record_warm(axis, &m.positions);
            if let Some(c) = hooks.counters() {
                c.sweep_memo_hits += 1;
            }
            return Ok((
                HierSweepStats {
                    axis,
                    clusters: n,
                    abstract_boxes: pboxes.len(),
                    constraints,
                    pitch_rounds: m.rounds,
                    solver_passes: m.passes,
                    extent: m.extent,
                },
                pitch_list(&m.lambdas),
            ));
        }
    }

    // Pitch fixpoint: the difference system is built once (refilled into
    // the sweep arena — an identical refill reuses the previous pass's
    // CSR graph); each round solves it, then every class pitch rises to
    // its worst member gap until stable, patching only the changed class
    // weights in place.
    //
    // The emission itself — recorded, reused, and memo-keyed above in
    // full — is transitively reduced here at system-build time: an
    // origin edge already implied by a tighter kept two-hop chain never
    // reaches the solver. Same greedy rule as the flat scanline prune
    // (edges in BTreeMap order, chains through not-yet-dropped edges),
    // so the kept set is deterministic and solution-identical.
    let mut lambdas: Vec<i64> = structure.classes.iter().map(|_| floor).collect();
    sys.reset(axis);
    let vars: Vec<_> = (0..n).map(|ci| sys.add_var(base(ci) - min_base)).collect();
    for &((a, b), w) in &pruned_weight_edges(n, &emission.weights, opts.prune) {
        sys.require(vars[a], vars[b], w);
    }
    for (&(a, b), &d) in &emission.welds {
        sys.require_exact(vars[a], vars[b], d);
    }
    for &(a, b) in &structure.pins {
        sys.require_exact(vars[a], vars[b], 0);
    }
    let mut class_slots: Vec<Vec<usize>> = Vec::with_capacity(structure.classes.len());
    for (k, class) in structure.classes.iter().enumerate() {
        let mut slots = Vec::with_capacity(class.pairs.len());
        for &(a, b) in &class.pairs {
            // require_slot: these are re-weighted by index during the
            // fixpoint, so they must never dedup against a neighbour.
            slots.push(sys.require_slot(vars[a], vars[b], lambdas[k]));
        }
        class_slots.push(slots);
    }
    let mut rounds = 0;
    let mut passes = 0;
    let solution = loop {
        rounds += 1;
        if rounds > opts.max_pitch_rounds {
            return Err(HierError::Diverged(format!(
                "pitch fixpoint still moving after {} rounds on {axis}",
                opts.max_pitch_rounds
            )));
        }
        if let Some(f) = hooks.fault(FaultSite::Solve) {
            return Err(injected_error(f, axis));
        }
        let out = match warm.as_deref() {
            Some(seed) if seed.len() == n => solver.solve_system_warm(sys, &[], seed)?,
            _ => solver.solve_system(sys, &[])?,
        };
        passes += out.passes;
        // Checkpoints: cumulative relaxation passes and the deadline.
        opts.limits.check_passes(passes)?;
        opts.limits.check_deadline()?;
        let next: Vec<i64> = structure
            .classes
            .iter()
            .zip(&lambdas)
            .map(|(class, &cur)| {
                class
                    .pairs
                    .iter()
                    .map(|&(a, b)| out.positions[b] - out.positions[a])
                    .max()
                    .unwrap_or(cur)
            })
            .collect();
        let stable = next == lambdas;
        if !stable {
            for (k, slots) in class_slots.iter().enumerate() {
                if next[k] != lambdas[k] {
                    for &s in slots {
                        sys.set_weight(s, next[k]);
                    }
                }
            }
        }
        lambdas = next;
        *warm = Some(out.positions.clone());
        if stable {
            break out;
        }
    };

    // Write the solved origins back: every member of a cluster moves by
    // the cluster's delta.
    let mut extent = 0;
    let deltas: Vec<i64> = (0..n)
        .map(|ci| solution.positions[ci] + min_base - base(ci))
        .collect();
    for (c, &d) in clusters.iter().zip(&deltas) {
        for &m in &c.members {
            match axis {
                Axis::X => positions[m].x += d,
                Axis::Y => positions[m].y += d,
            }
        }
    }
    if let (Some(&lo), Some(&hi)) = (
        solution.positions.iter().min(),
        solution.positions.iter().max(),
    ) {
        extent = hi - lo;
    }

    hooks.record_warm(axis, &solution.positions);
    if let Some(c) = hooks.counters() {
        c.sweeps_solved += 1;
        c.solver_passes += passes;
    }
    if let Some(key) = memo_key {
        hooks.memo_put(
            key,
            Arc::new(SweepSolution {
                deltas,
                positions: solution.positions.clone(),
                lambdas: lambdas.clone(),
                extent,
                rounds,
                passes,
            }),
        );
    }

    let pitches = pitch_list(&lambdas);
    Ok((
        HierSweepStats {
            axis,
            clusters: n,
            abstract_boxes: pboxes.len(),
            constraints,
            pitch_rounds: rounds,
            solver_passes: passes,
            extent,
        },
        pitches,
    ))
}

/// Hierarchically compacts every assembly cell reachable from `top`,
/// children before callers, and returns the updated table: the paper's
/// whole-chip flow (leaves were compacted by the leaf pass; assemblies
/// compose from interfaces, never from flattened masks).
///
/// # Errors
///
/// Propagates [`HierError`] from any level; a cyclic hierarchy surfaces
/// as [`HierError::Layout`], and an assembly whose x/y alternation does
/// not reach a fixpoint within [`HierOptions::max_passes`] is reported
/// as [`HierError::Diverged`] — a non-converged placement can carry
/// stale cross-axis constraints, so the chip flow refuses to build on
/// it. ([`compact_cell`] still returns such partial results with
/// `converged == false` for callers that want them.)
pub fn compact_hierarchy(
    table: &CellTable,
    top: CellId,
    rules: &DesignRules,
    solver: &dyn Solver,
    opts: &HierOptions,
) -> Result<ChipLayout, HierError> {
    let mut out_table = table.clone();
    let mut order = Vec::new();
    let mut mark: HashMap<CellId, u8> = HashMap::new();
    dfs_order(table, top, &mut mark, &mut order)?;
    let threads = opts.parallelism.threads();
    if threads <= 1 {
        // Serial reference walk: bottom-up, stop at the first failure.
        let mut cells = Vec::new();
        for cell in order {
            let def = out_table.require(cell)?;
            if def.instances().next().is_none() {
                continue; // leaf: the leaf compactor's business
            }
            let name = def.name().to_owned();
            let outcome = compact_cell(&out_table, cell, rules, solver, opts)?;
            if !outcome.converged {
                return Err(diverged_error(&name, opts));
            }
            let Some(slot) = out_table.get_mut(cell) else {
                return Err(vanished_error(&name));
            };
            *slot = outcome.cell.clone();
            cells.push((name, outcome));
        }
        return Ok(ChipLayout {
            table: out_table,
            top,
            cells,
        });
    }

    // Dependency-level scheduler: group the bottom-up order into waves of
    // assembly cells whose referenced definitions are all done, and fan
    // each wave across workers. Every cell reads only definitions below
    // it, all of which were re-placed in earlier waves, so each cell's
    // computation sees exactly the table state the serial walk would give
    // it — the outputs are bit-identical; only wall-clock changes.
    let levels = dependency_levels(table, &order)?;
    let pos: HashMap<CellId, usize> = order.iter().enumerate().map(|(i, &c)| (c, i)).collect();
    let mut outcomes: HashMap<CellId, HierOutcome> = HashMap::new();
    // Cells that failed, with their DFS position, plus the set of cells
    // that cannot be computed because a descendant failed. The serial
    // walk reports the DFS-earliest failing cell whose descendants all
    // succeeded; computing every non-poisoned cell and taking the
    // DFS-minimum failure reproduces that exact error.
    let mut failures: Vec<(usize, HierError)> = Vec::new();
    let mut bad: HashSet<CellId> = HashSet::new();
    for level in &levels {
        let ready: Vec<CellId> = level
            .iter()
            .copied()
            .filter(|&cell| {
                let skip = table
                    .get(cell)
                    .is_some_and(|def| def.instances().any(|i| bad.contains(&i.cell)));
                if skip {
                    bad.insert(cell);
                }
                !skip
            })
            .collect();
        let results = par_map(&ready, threads, |&cell| {
            compact_cell(&out_table, cell, rules, solver, opts)
        });
        for (&cell, result) in ready.iter().zip(results) {
            let name = table.require(cell)?.name().to_owned();
            let dfs_pos = pos.get(&cell).copied().unwrap_or(usize::MAX);
            let outcome = match result {
                Ok(Ok(o)) if o.converged => o,
                Ok(Ok(_)) => {
                    failures.push((dfs_pos, diverged_error(&name, opts)));
                    bad.insert(cell);
                    continue;
                }
                Ok(Err(e)) => {
                    failures.push((dfs_pos, e));
                    bad.insert(cell);
                    continue;
                }
                Err(panic) => {
                    failures.push((dfs_pos, HierError::Internal(panic.to_string())));
                    bad.insert(cell);
                    continue;
                }
            };
            let Some(slot) = out_table.get_mut(cell) else {
                return Err(vanished_error(&name));
            };
            *slot = outcome.cell.clone();
            outcomes.insert(cell, outcome);
        }
    }
    if let Some((_, e)) = failures.into_iter().min_by_key(|&(p, _)| p) {
        return Err(e);
    }
    // Reassemble the per-cell list in the serial walk's bottom-up order.
    let mut cells = Vec::with_capacity(outcomes.len());
    for cell in order {
        if let Some(outcome) = outcomes.remove(&cell) {
            cells.push((table.require(cell)?.name().to_owned(), outcome));
        }
    }
    Ok(ChipLayout {
        table: out_table,
        top,
        cells,
    })
}

fn diverged_error(name: &str, opts: &HierOptions) -> HierError {
    HierError::Diverged(format!(
        "cell `{name}` did not reach an x/y fixpoint in {} alternations",
        opts.max_passes
    ))
}

fn vanished_error(name: &str) -> HierError {
    HierError::Internal(format!("cell `{name}` vanished from the table mid-walk"))
}

/// Groups a bottom-up [`dfs_order`] into dependency levels over the
/// assembly cells: a cell lands one level above the deepest assembly it
/// references, so by the time a level runs, every definition it can see
/// is final. Leaves are never scheduled (the leaf compactor's business)
/// and don't separate levels. Within a level, cells keep their DFS
/// order.
pub(crate) fn dependency_levels(
    table: &CellTable,
    order: &[CellId],
) -> Result<Vec<Vec<CellId>>, HierError> {
    let mut level_of: HashMap<CellId, usize> = HashMap::new();
    let mut levels: Vec<Vec<CellId>> = Vec::new();
    for &cell in order {
        let def = table.require(cell)?;
        if def.instances().next().is_none() {
            continue;
        }
        let mut lvl = 0usize;
        for inst in def.instances() {
            if let Some(&l) = level_of.get(&inst.cell) {
                lvl = lvl.max(l + 1);
            }
        }
        level_of.insert(cell, lvl);
        if levels.len() <= lvl {
            levels.resize_with(lvl + 1, Vec::new);
        }
        levels[lvl].push(cell);
    }
    Ok(levels)
}

/// Bottom-up topological order of the hierarchy under `cell` (children
/// before parents, each cell once). Iterative — an explicit frame stack
/// instead of recursion, so pathologically deep hierarchies (the parser
/// fuzz corpus builds 500-deep ones) cannot overflow the call stack.
pub(crate) fn dfs_order(
    table: &CellTable,
    cell: CellId,
    mark: &mut HashMap<CellId, u8>,
    order: &mut Vec<CellId>,
) -> Result<(), HierError> {
    let recursive = |id: CellId| {
        let name = table.get(id).map_or("?", |c| c.name()).to_owned();
        HierError::Layout(LayoutError::RecursiveCell(name))
    };
    match mark.get(&cell) {
        Some(2) => return Ok(()),
        Some(1) => return Err(recursive(cell)),
        _ => {}
    }
    let children = |id: CellId| -> Result<Vec<CellId>, HierError> {
        Ok(table.require(id)?.instances().map(|i| i.cell).collect())
    };
    mark.insert(cell, 1);
    let mut stack: Vec<(CellId, Vec<CellId>, usize)> = vec![(cell, children(cell)?, 0)];
    while let Some(frame) = stack.last_mut() {
        let (id, kids, next) = (frame.0, &frame.1, &mut frame.2);
        let Some(&child) = kids.get(*next) else {
            mark.insert(id, 2);
            order.push(id);
            stack.pop();
            continue;
        };
        *next += 1;
        match mark.get(&child) {
            Some(2) => {}
            Some(1) => return Err(recursive(child)),
            _ => {
                mark.insert(child, 1);
                stack.push((child, children(child)?, 0));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BellmanFord, Topological};
    use rsg_layout::{drc, Instance, Technology};

    fn rules() -> DesignRules {
        Technology::mead_conway(2).rules.clone()
    }

    fn bf() -> BellmanFord {
        BellmanFord::SORTED
    }

    fn leaf(name: &str) -> CellDefinition {
        // 20-wide leaf: a well background and a centred poly bar.
        let mut c = CellDefinition::new(name);
        c.add_box(Layer::Well, Rect::from_coords(0, 0, 20, 20));
        c.add_box(Layer::Poly, Rect::from_coords(8, 0, 12, 20));
        c
    }

    #[test]
    fn abstract_profiles_summarize_edges() {
        let boxes = vec![
            (Layer::Poly, Rect::from_coords(0, 0, 4, 10)),
            (Layer::Poly, Rect::from_coords(10, 0, 14, 10)),
            (Layer::Well, Rect::from_coords(0, 0, 20, 20)), // no rules
        ];
        let a = CellAbstract::from_boxes(&boxes, &rules());
        // One merged strip spanning both poly bars along x.
        assert_eq!(
            a.profile(Axis::X),
            &[(Layer::Poly, Rect::from_coords(0, 0, 14, 10))]
        );
        // Along y the two bars sit in disjoint across-strips.
        assert_eq!(
            a.profile(Axis::Y),
            &[
                (Layer::Poly, Rect::from_coords(0, 0, 4, 10)),
                (Layer::Poly, Rect::from_coords(10, 0, 14, 10)),
            ]
        );
        assert_eq!(a.bbox(), Some(Rect::from_coords(0, 0, 20, 20)));
        assert_eq!(a.material(), Some(Rect::from_coords(0, 0, 14, 10)));
        assert_eq!(a.source_boxes(), 3);
    }

    #[test]
    fn row_of_instances_compacts_to_min_pitch_uniformly() {
        let mut t = CellTable::new();
        let id = t.insert(leaf("leaf")).unwrap();
        let mut row = CellDefinition::new("row");
        for k in 0..4 {
            row.add_instance(Instance::new(id, Point::new(k * 30, 0), Orientation::NORTH));
        }
        let root = t.insert(row).unwrap();
        let out = compact_cell(&t, root, &rules(), &bf(), &HierOptions::default()).unwrap();
        assert!(out.converged);
        // Poly bar 8..12, poly-poly spacing 4: pitch = 12 + 4 − 8 = 8.
        let xs: Vec<i64> = out.cell.instances().map(|i| i.point_of_call.x).collect();
        assert_eq!(xs, vec![0, 8, 16, 24]);
        assert_eq!(out.pitches.len(), 1);
        assert_eq!(out.pitches[0].value, 8);
        assert_eq!(out.pitches[0].pairs, 3);
        assert_eq!(out.pitches[0].axis, Axis::X);
    }

    #[test]
    fn contained_mask_rides_with_its_host() {
        let mut t = CellTable::new();
        let host = t.insert(leaf("host")).unwrap();
        let mut mask = CellDefinition::new("mask");
        mask.add_box(Layer::Cut, Rect::from_coords(2, 2, 8, 8));
        let mask_id = t.insert(mask).unwrap();
        let mut asm = CellDefinition::new("asm");
        asm.add_instance(Instance::new(host, Point::new(0, 0), Orientation::NORTH));
        asm.add_instance(Instance::new(mask_id, Point::new(0, 0), Orientation::NORTH));
        asm.add_instance(Instance::new(host, Point::new(40, 0), Orientation::NORTH));
        let root = t.insert(asm).unwrap();
        let out = compact_cell(&t, root, &rules(), &bf(), &HierOptions::default()).unwrap();
        let pts: Vec<Point> = out.cell.instances().map(|i| i.point_of_call).collect();
        // The mask keeps its exact offset inside the host.
        assert_eq!(pts[1], pts[0], "mask moved relative to its host");
        // The second host pulled in to the poly pitch.
        assert_eq!(pts[2].x - pts[0].x, 8);
    }

    #[test]
    fn coincident_origins_stay_pinned_across_the_other_axis() {
        // A column-attached cap: same x origin as its column cell, above
        // it. Compacting x must keep them x-aligned even though nothing
        // geometric ties them (no interacting material between them).
        let mut t = CellTable::new();
        let base_id = t.insert(leaf("base")).unwrap();
        let mut cap = CellDefinition::new("cap");
        cap.add_box(Layer::Well, Rect::from_coords(0, 0, 20, 10));
        cap.add_box(Layer::Metal1, Rect::from_coords(4, 2, 12, 8));
        let cap_id = t.insert(cap).unwrap();
        let mut asm = CellDefinition::new("asm");
        for k in 0..3 {
            asm.add_instance(Instance::new(
                base_id,
                Point::new(k * 30, 0),
                Orientation::NORTH,
            ));
            asm.add_instance(Instance::new(
                cap_id,
                Point::new(k * 30, 20),
                Orientation::NORTH,
            ));
        }
        let root = t.insert(asm).unwrap();
        let out = compact_cell(&t, root, &rules(), &bf(), &HierOptions::default()).unwrap();
        let pts: Vec<Point> = out.cell.instances().map(|i| i.point_of_call).collect();
        for k in 0..3 {
            assert_eq!(
                pts[2 * k].x,
                pts[2 * k + 1].x,
                "cap {k} sheared off its column"
            );
        }
    }

    #[test]
    fn abutting_connected_material_is_never_pried_apart() {
        // Cells a and b abut so their metal forms one net; a loose poly
        // bar sits to b's right. Compaction pulls the bar in but must
        // keep the welded a–b junction at its exact offset — exempting
        // the pair from spacing alone would sever the bus.
        let mut t = CellTable::new();
        let mut a = CellDefinition::new("a");
        a.add_box(Layer::Metal1, Rect::from_coords(0, 0, 10, 8));
        let a_id = t.insert(a).unwrap();
        let mut b = CellDefinition::new("b");
        b.add_box(Layer::Metal1, Rect::from_coords(0, 0, 10, 8));
        b.add_box(Layer::Poly, Rect::from_coords(2, 20, 6, 40));
        let b_id = t.insert(b).unwrap();
        let mut asm = CellDefinition::new("asm");
        asm.add_instance(Instance::new(a_id, Point::new(0, 0), Orientation::NORTH));
        asm.add_instance(Instance::new(b_id, Point::new(10, 0), Orientation::NORTH));
        asm.add_box(Layer::Poly, Rect::from_coords(40, 20, 44, 40));
        let root = t.insert(asm).unwrap();
        let r = rules();
        let out = compact_cell(&t, root, &r, &bf(), &HierOptions::default()).unwrap();
        let pts: Vec<Point> = out.cell.instances().map(|i| i.point_of_call).collect();
        assert_eq!(
            pts[1] - pts[0],
            rsg_geom::Vector::new(10, 0),
            "welded abutment moved: the net was severed"
        );
        // The loose bar still compacts against b's poly.
        let bar = out.cell.boxes().next().unwrap().1;
        assert_eq!(bar.lo().x, pts[1].x + 6 + 4, "bar at poly spacing from b");
    }

    #[test]
    fn conflicting_pins_report_infeasible() {
        // Two cells drawn at the same origin whose material is ordered
        // with a positive spacing demand: the alignment pin contradicts
        // the spacing constraint.
        let mut t = CellTable::new();
        let mut a = CellDefinition::new("a");
        a.add_box(Layer::Poly, Rect::from_coords(0, 0, 4, 10));
        let a_id = t.insert(a).unwrap();
        let mut b = CellDefinition::new("b");
        b.add_box(Layer::Poly, Rect::from_coords(6, 0, 10, 10));
        let b_id = t.insert(b).unwrap();
        let mut asm = CellDefinition::new("asm");
        asm.add_instance(Instance::new(a_id, Point::new(0, 0), Orientation::NORTH));
        asm.add_instance(Instance::new(b_id, Point::new(0, 0), Orientation::NORTH));
        let root = t.insert(asm).unwrap();
        let err = compact_cell(&t, root, &rules(), &bf(), &HierOptions::default()).unwrap_err();
        assert!(matches!(err, HierError::Infeasible(_)), "{err}");
    }

    #[test]
    fn empty_cell_is_untouched() {
        let mut t = CellTable::new();
        let id = t.insert(CellDefinition::new("empty")).unwrap();
        let out = compact_cell(&t, id, &rules(), &bf(), &HierOptions::default()).unwrap();
        assert!(out.converged);
        assert_eq!(out.passes, 0);
        assert_eq!(&out.cell, t.get(id).unwrap());
    }

    #[test]
    fn hierarchy_compacts_bottom_up_and_flattens_clean() {
        // row (4 leaves) instantiated twice in a chip: the row compacts
        // first, the chip then places the compacted rows — and the
        // flattened result re-checks clean.
        let mut t = CellTable::new();
        let id = t.insert(leaf("leaf")).unwrap();
        let mut row = CellDefinition::new("row");
        for k in 0..4 {
            row.add_instance(Instance::new(id, Point::new(k * 30, 0), Orientation::NORTH));
        }
        let row_id = t.insert(row).unwrap();
        let mut chip = CellDefinition::new("chip");
        chip.add_instance(Instance::new(row_id, Point::new(0, 0), Orientation::NORTH));
        chip.add_instance(Instance::new(
            row_id,
            Point::new(0, -40),
            Orientation::NORTH,
        ));
        let top = t.insert(chip).unwrap();

        let r = rules();
        let out = compact_hierarchy(&t, top, &r, &bf(), &HierOptions::default()).unwrap();
        assert_eq!(
            out.cells
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            ["row", "chip"],
            "children compact before callers"
        );
        let flat = flatten(&out.table, out.top).unwrap();
        assert!(drc::check_flat(&flat, &r).is_empty());
        // The rows shrank: pitch 8 instead of 30.
        let row_def = out.table.get(row_id).unwrap();
        let xs: Vec<i64> = row_def.instances().map(|i| i.point_of_call.x).collect();
        assert_eq!(xs, vec![0, 8, 16, 24]);
        // The two row instances pulled together vertically. The bars were
        // *separate* nets in the sample (pitch 40 — not touching), so the
        // compactor must keep them a poly-poly spacing apart, not fuse
        // them: pitch = bar height 20 + spacing 4.
        let chip_def = out.table.get(top).unwrap();
        let ys: Vec<i64> = chip_def.instances().map(|i| i.point_of_call.y).collect();
        assert_eq!(ys[0] - ys[1], 24, "row pitch = bar height + spacing");
    }

    #[test]
    fn backends_agree_on_the_hier_result() {
        let mut t = CellTable::new();
        let id = t.insert(leaf("leaf")).unwrap();
        let mut row = CellDefinition::new("row");
        for k in 0..5 {
            row.add_instance(Instance::new(id, Point::new(k * 26, 0), Orientation::NORTH));
        }
        let root = t.insert(row).unwrap();
        let r = rules();
        let a = compact_cell(&t, root, &r, &bf(), &HierOptions::default()).unwrap();
        let b = compact_cell(&t, root, &r, &Topological, &HierOptions::default()).unwrap();
        assert_eq!(a.cell, b.cell);
        assert_eq!(a.pitches, b.pitches);
    }

    #[test]
    fn recursive_hierarchy_is_an_error() {
        let mut t = CellTable::new();
        let a = t.insert(CellDefinition::new("a")).unwrap();
        t.get_mut(a)
            .unwrap()
            .add_instance(Instance::new(a, Point::new(1, 1), Orientation::NORTH));
        let err = compact_hierarchy(&t, a, &rules(), &bf(), &HierOptions::default()).unwrap_err();
        assert!(matches!(
            err,
            HierError::Layout(LayoutError::RecursiveCell(_))
        ));
    }

    #[test]
    fn direct_boxes_participate_as_items() {
        // A root with a loose box next to an instance: both compact.
        let mut t = CellTable::new();
        let id = t.insert(leaf("leaf")).unwrap();
        let mut asm = CellDefinition::new("asm");
        asm.add_instance(Instance::new(id, Point::new(0, 0), Orientation::NORTH));
        asm.add_box(Layer::Poly, Rect::from_coords(40, 0, 44, 20));
        asm.add_label("note", Point::new(1, 1));
        let root = t.insert(asm).unwrap();
        let r = rules();
        let out = compact_cell(&t, root, &r, &bf(), &HierOptions::default()).unwrap();
        let boxes: Vec<(Layer, Rect)> = out.cell.boxes().collect();
        // Loose bar pulled in to poly spacing from the leaf's bar (8..12).
        assert_eq!(boxes[0].1, Rect::from_coords(16, 0, 20, 20));
        assert_eq!(out.cell.labels().count(), 1, "labels pass through");
        let flat = flatten_root(&t, &out.cell, root);
        assert!(drc::check(&flat, &r).is_empty());
    }

    /// Flattens a rebuilt root definition against its original table.
    fn flatten_root(t: &CellTable, cell: &CellDefinition, original: CellId) -> Vec<(Layer, Rect)> {
        let mut t2 = t.clone();
        *t2.get_mut(original).unwrap() = cell.clone();
        flatten(&t2, original).unwrap().layer_rects().to_vec()
    }
}
