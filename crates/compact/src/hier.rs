//! Hierarchical compaction over instances — the paper's top-level flow.
//!
//! The leaf compactor (§6.1) compacts the *cells* of a library once; this
//! module compacts the *assembly*: a [`CellDefinition`] whose objects are
//! `Instance`s of already-compacted leaves is re-placed without ever
//! flattening the mask data. Three ideas carry the chapter-2 + chapter-6
//! composition:
//!
//! * **Interface abstracts** ([`CellAbstract`]) — per-layer edge profiles
//!   derived from each referenced definition's [`rsg_layout::FlatLayout`]
//!   (one flatten per distinct `(definition, orientation)`, regardless of
//!   how many instances call it). For each sweep [`Axis`] the abstract
//!   records, per elementary across-strip, how far the cell's material on
//!   each interacting layer extends — the only facts instance-to-instance
//!   spacing ever needs.
//! * **Instance-level constraints** — the same sweep/visibility kernel
//!   that serves flat compaction runs on abstract boxes instead of flat
//!   boxes: ordered, across-overlapping, non-hidden abstract box pairs
//!   become difference constraints between *instance origin* variables
//!   (one unknown per rigid instance cluster, not two per box). Material
//!   frames keep abutting instances from stacking; coincident-origin
//!   touching instances are pinned so rows and columns cannot shear.
//! * **Shared λ pitch classes** — consecutive instances of the same cell
//!   pair along a row (or column) fold into one pitch variable per class,
//!   solved to its least value by a monotone fixpoint over rsg-solve
//!   (each round solves a pure difference system through any
//!   [`Solver`] backend, warm-started from the previous round; the class
//!   pitch rises to the worst member gap until stable). Every member pair
//!   of a class therefore lands at *exactly* the same pitch — the PLA and
//!   multiplier arrays stay pitch-matched by construction.
//!
//! [`compact_cell`] compacts one assembly cell; [`compact_hierarchy`]
//! walks a whole chip bottom-up (children before callers, as the paper
//! composes assemblies from interfaces) so multi-level layouts like the
//! multiplier's `array`/`topregs`/`thewholething` stack compact level by
//! level. `rsg_hpla::compactor::compact_chip` and
//! `rsg_mult::compactor::compact_chip` wire the leaf pass and this pass
//! together.

use crate::backend::{SolveError, Solver};
use crate::scanline::VisibilityOracle;
use crate::ConstraintSystem;
use rsg_geom::{Axis, BoundingBox, Isometry, Orientation, Point, Rect, Vector};
use rsg_layout::{
    flatten, CellDefinition, CellId, CellTable, DesignRules, Layer, LayoutError, LayoutObject,
};
use std::collections::{BTreeMap, HashMap};

/// Tuning knobs for the hierarchical compactor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierOptions {
    /// Maximum x+y alternations before giving up on the fixpoint.
    pub max_passes: usize,
    /// Maximum pitch-fixpoint rounds per axis sweep.
    pub max_pitch_rounds: usize,
}

impl Default for HierOptions {
    fn default() -> HierOptions {
        HierOptions {
            max_passes: 8,
            max_pitch_rounds: 32,
        }
    }
}

/// Hierarchical compaction failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HierError {
    /// The referenced hierarchy could not be flattened into abstracts.
    Layout(LayoutError),
    /// The instance constraint system is infeasible (conflicting pins).
    Infeasible(String),
    /// The pitch fixpoint or the x/y alternation failed to stabilize.
    Diverged(String),
}

impl std::fmt::Display for HierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HierError::Layout(e) => write!(f, "hierarchical compaction: {e}"),
            HierError::Infeasible(m) => write!(f, "hierarchical compaction infeasible: {m}"),
            HierError::Diverged(m) => write!(f, "hierarchical compaction diverged: {m}"),
        }
    }
}

impl std::error::Error for HierError {}

impl From<LayoutError> for HierError {
    fn from(e: LayoutError) -> HierError {
        HierError::Layout(e)
    }
}

impl From<SolveError> for HierError {
    fn from(e: SolveError) -> HierError {
        match e {
            SolveError::Infeasible(m) => HierError::Infeasible(m),
            SolveError::Rounding(m) => HierError::Diverged(m),
        }
    }
}

/// The interface abstract of one cell definition under one orientation:
/// per-axis, per-layer edge profiles plus the bounding frames, in the
/// instance-local (oriented) coordinate system.
///
/// For each sweep axis the profile holds, per elementary across-strip,
/// one rectangle spanning from the leftmost to the rightmost material on
/// that layer within the strip (adjacent strips with identical spans are
/// merged). Spacing between two instances only ever consults the facing
/// extremes of such strips, so the abstract is exact for the ordered,
/// non-interleaved placements assemblies are built from, and it stays
/// small: its size tracks the cell's *silhouette*, not its box count.
#[derive(Debug, Clone)]
pub struct CellAbstract {
    /// Profile boxes per sweep axis (`[x, y]`), local coordinates.
    profiles: [Vec<(Layer, Rect)>; 2],
    /// Bounding box of every flat box (background layers included).
    bbox: Option<Rect>,
    /// Bounding box of rule-interacting material only.
    material: Option<Rect>,
    /// Flat boxes the abstract summarizes.
    source_boxes: usize,
}

impl CellAbstract {
    /// Derives the abstract from a flat box list (local coordinates).
    pub fn from_boxes(boxes: &[(Layer, Rect)], rules: &DesignRules) -> CellAbstract {
        let interacting: Vec<Layer> = Layer::ALL
            .iter()
            .copied()
            .filter(|&l| {
                Layer::ALL
                    .iter()
                    .any(|&m| rules.min_spacing(l, m).is_some())
            })
            .collect();
        let live: Vec<(Layer, Rect)> = boxes
            .iter()
            .copied()
            .filter(|&(l, r)| r.area() > 0 && interacting.contains(&l))
            .collect();
        let profiles = [profile_along(&live, Axis::X), profile_along(&live, Axis::Y)];
        let bbox: BoundingBox = boxes
            .iter()
            .filter(|(_, r)| r.area() > 0)
            .map(|&(_, r)| r)
            .collect();
        let material: BoundingBox = live.iter().map(|&(_, r)| r).collect();
        CellAbstract {
            profiles,
            bbox: bbox.rect(),
            material: material.rect(),
            source_boxes: boxes.len(),
        }
    }

    /// The per-layer edge profile for a sweep axis.
    pub fn profile(&self, axis: Axis) -> &[(Layer, Rect)] {
        &self.profiles[axis_index(axis)]
    }

    /// Bounding box of all flat boxes (local), `None` for empty cells.
    pub fn bbox(&self) -> Option<Rect> {
        self.bbox
    }

    /// Bounding box of rule-interacting material (local).
    pub fn material(&self) -> Option<Rect> {
        self.material
    }

    /// Number of flat boxes the abstract replaced — the reduction metric
    /// ([`CellAbstract::profile`] sizes vs this).
    pub fn source_boxes(&self) -> usize {
        self.source_boxes
    }
}

const fn axis_index(axis: Axis) -> usize {
    match axis {
        Axis::X => 0,
        Axis::Y => 1,
    }
}

/// Per-layer strip profile: for each elementary across-strip that holds
/// material, one rect spanning the material's along-extremes.
fn profile_along(boxes: &[(Layer, Rect)], axis: Axis) -> Vec<(Layer, Rect)> {
    let mut layers: Vec<Layer> = boxes.iter().map(|&(l, _)| l).collect();
    layers.sort_unstable();
    layers.dedup();
    let mut out = Vec::new();
    for layer in layers {
        let rects: Vec<Rect> = boxes
            .iter()
            .filter(|&&(l, _)| l == layer)
            .map(|&(_, r)| r)
            .collect();
        let mut cuts: Vec<i64> = rects
            .iter()
            .flat_map(|r| [r.lo_across(axis), r.hi_across(axis)])
            .collect();
        cuts.sort_unstable();
        cuts.dedup();
        // Merged run of strips sharing one along-span.
        let mut run: Option<(i64, i64, i64, i64)> = None; // (lo, hi, c0, c1)
        let flush = |run: &mut Option<(i64, i64, i64, i64)>, out: &mut Vec<(Layer, Rect)>| {
            if let Some((lo, hi, c0, c1)) = run.take() {
                out.push((layer, Rect::from_spans(axis, (lo, hi), (c0, c1))));
            }
        };
        for w in cuts.windows(2) {
            let (c0, c1) = (w[0], w[1]);
            let mut lo = i64::MAX;
            let mut hi = i64::MIN;
            for r in &rects {
                if r.lo_across(axis) < c1 && r.hi_across(axis) > c0 {
                    lo = lo.min(r.lo_along(axis));
                    hi = hi.max(r.hi_along(axis));
                }
            }
            if lo > hi {
                flush(&mut run, &mut out);
                continue;
            }
            match run {
                Some((rlo, rhi, _, ref mut rc1)) if rlo == lo && rhi == hi && *rc1 == c0 => {
                    *rc1 = c1;
                }
                _ => {
                    flush(&mut run, &mut out);
                    run = Some((lo, hi, c0, c1));
                }
            }
        }
        flush(&mut run, &mut out);
    }
    out
}

/// One abstract derivation per distinct `(definition, orientation)` no
/// matter how many instances call it — the economics the paper claims
/// for hierarchy ("compact the cell A only once", applied to placement).
/// The [`ShapeKey`] pool in [`compact_cell`] is the cache.
fn derive_abstract(
    table: &CellTable,
    cell: CellId,
    orientation: Orientation,
    rules: &DesignRules,
) -> Result<CellAbstract, LayoutError> {
    let flat = flatten(table, cell)?;
    let iso = Isometry::orient(orientation);
    let boxes: Vec<(Layer, Rect)> = flat
        .layer_rects()
        .iter()
        .map(|&(l, r)| (l, r.transform(iso)))
        .collect();
    Ok(CellAbstract::from_boxes(&boxes, rules))
}

/// Identity of an item's shape, the pitch-class grouping key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum ShapeKey {
    /// An instance: called definition + orientation (as ℤ₄ × 𝔹 ints).
    Cell(u32, (u8, bool)),
    /// A direct box in the assembly cell: layer index + dimensions, so
    /// differently-sized bars on one layer don't share a pitch class.
    Box(usize, (i64, i64)),
}

/// One movable object of the assembly: an instance or a direct box.
struct Item {
    /// Index into the root definition's object list.
    object: usize,
    /// Current origin (instance point of call; box low corner).
    pos: Point,
    /// Shape identity for pitch-class keys.
    key: ShapeKey,
    /// Index into the abstract pool.
    shape: usize,
}

/// One solved pitch class: a shared λ and the member pairs it locks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierPitch {
    /// Sweep axis the pitch applies along.
    pub axis: Axis,
    /// Human-readable class name (`cellA->cellB` plus the sample offset).
    pub name: String,
    /// Solved pitch value.
    pub value: i64,
    /// Number of abutting instance pairs sharing the pitch.
    pub pairs: usize,
}

/// Statistics of one axis sweep of the hierarchical engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierSweepStats {
    /// Sweep direction.
    pub axis: Axis,
    /// Instance clusters (= solver variables).
    pub clusters: usize,
    /// Abstract boxes fed to the visibility kernel.
    pub abstract_boxes: usize,
    /// Difference constraints generated (spacing + frames + pins).
    pub constraints: usize,
    /// Pitch-fixpoint rounds until the class pitches stabilized.
    pub pitch_rounds: usize,
    /// Total relaxation passes across the rounds' solves.
    pub solver_passes: usize,
    /// Origin extent along the axis after the sweep.
    pub extent: i64,
}

/// Trace of a whole hierarchical compaction run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HierReport {
    /// One entry per executed axis sweep, in order (x, y, x, y, …).
    pub sweeps: Vec<HierSweepStats>,
    /// Flat boxes the instance abstracts summarize (what a flattening
    /// compactor would have had to move).
    pub flat_boxes: usize,
}

impl HierReport {
    /// Total constraints across every sweep.
    pub fn total_constraints(&self) -> usize {
        self.sweeps.iter().map(|s| s.constraints).sum()
    }

    /// Total relaxation passes across every sweep.
    pub fn total_solver_passes(&self) -> usize {
        self.sweeps.iter().map(|s| s.solver_passes).sum()
    }
}

/// Result of hierarchically compacting one assembly cell.
#[derive(Debug, Clone)]
pub struct HierOutcome {
    /// The re-placed assembly: same objects, new instance origins.
    pub cell: CellDefinition,
    /// Solved pitch classes of the final x and y sweeps.
    pub pitches: Vec<HierPitch>,
    /// Full x+y alternations performed before the fixpoint.
    pub passes: usize,
    /// Whether the alternation reached a fixpoint within the cap.
    pub converged: bool,
    /// Per-sweep diagnostics.
    pub report: HierReport,
}

/// A fully compacted hierarchy: the updated cell table plus the per-cell
/// outcomes, in bottom-up compaction order.
#[derive(Debug, Clone)]
pub struct ChipLayout {
    /// The table with every assembly cell re-placed.
    pub table: CellTable,
    /// The root cell (unchanged id).
    pub top: CellId,
    /// `(cell name, outcome)` for every compacted assembly cell.
    pub cells: Vec<(String, HierOutcome)>,
}

impl ChipLayout {
    /// The outcome for one assembly cell, by name.
    pub fn outcome(&self, name: &str) -> Option<&HierOutcome> {
        self.cells.iter().find(|(n, _)| n == name).map(|(_, o)| o)
    }
}

/// Whole-chip compaction failure: the leaf pass or the hierarchy pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChipError {
    /// The leaf library pass failed.
    Leaf(crate::leaf::LeafError),
    /// The hierarchical placement pass failed.
    Hier(HierError),
}

impl std::fmt::Display for ChipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChipError::Leaf(e) => write!(f, "chip compaction (leaf pass): {e}"),
            ChipError::Hier(e) => write!(f, "chip compaction (hier pass): {e}"),
        }
    }
}

impl std::error::Error for ChipError {}

impl From<crate::leaf::LeafError> for ChipError {
    fn from(e: crate::leaf::LeafError) -> ChipError {
        ChipError::Leaf(e)
    }
}

impl From<HierError> for ChipError {
    fn from(e: HierError) -> ChipError {
        ChipError::Hier(e)
    }
}

/// A fully compacted chip: the leaf-pass results plus the hierarchical
/// placement of the assembly, never flattened.
#[derive(Debug, Clone)]
pub struct ChipCompaction {
    /// The re-placed hierarchy (updated cell table + per-cell outcomes).
    pub chip: ChipLayout,
    /// The leaf-library pass results that produced the new cells.
    pub leaf: Vec<crate::leaf::CompactionResult>,
}

/// The generic two-pass chip flow: substitute a leaf-compacted library
/// into the table (cells matched by name), then hierarchically re-place
/// every assembly cell reachable from `top`. The workload crates'
/// `compact_chip` entry points (`rsg_hpla::compactor`,
/// `rsg_mult::compactor`) wrap this with their own library jobs.
///
/// # Errors
///
/// Returns [`ChipError::Hier`] when a leaf-pass cell name does not exist
/// in `table` (a silent skip would leave uncompacted sample geometry in
/// the chip) or when the placement pass fails.
pub fn compact_chip_with_library(
    table: &CellTable,
    top: CellId,
    leaf: Vec<crate::leaf::CompactionResult>,
    rules: &DesignRules,
    solver: &dyn Solver,
    opts: &HierOptions,
) -> Result<ChipCompaction, ChipError> {
    let mut compacted = table.clone();
    for result in &leaf {
        for cell in &result.cells {
            let id = compacted.lookup(cell.name()).ok_or_else(|| {
                ChipError::Hier(HierError::Layout(LayoutError::UnknownCell(
                    cell.name().to_owned(),
                )))
            })?;
            *compacted.get_mut(id).expect("looked up") = cell.clone();
        }
    }
    let chip = compact_hierarchy(&compacted, top, rules, solver, opts)?;
    Ok(ChipCompaction { chip, leaf })
}

/// Pins and pitch classes of one sweep axis, derived once from the input
/// placement (the design's structure, stable across alternations).
struct AxisStructure {
    /// Cluster pairs pinned at along-offset 0: any two clusters *drawn
    /// at the same along-coordinate* stay at the same along-coordinate —
    /// coincidence alone pins, no touch test (a buffer drawn on its
    /// column keeps the column even after the leaf pass shrinks the
    /// bodies apart). These keep rows/columns from shearing; a pin that
    /// contradicts ordered spacing makes the cell report `Infeasible`.
    pins: Vec<(usize, usize)>,
    /// Pitch classes over row-consecutive cluster pairs.
    classes: Vec<PitchClassDef>,
}

struct PitchClassDef {
    name: String,
    pairs: Vec<(usize, usize)>,
}

/// A rigid cluster: items whose bodies overlap with positive area in the
/// input (crosspoint masks over their squares, personality masks over the
/// basic cell) move as one unit.
struct Cluster {
    members: Vec<usize>,
    /// Member with the largest body — the cluster's identity and origin.
    rep: usize,
}

/// Hierarchically compacts one assembly cell: instances (and direct
/// boxes) are re-placed along both axes against each other's interface
/// abstracts, with abutting rows/columns folded through shared λ pitch
/// classes. Leaf definitions are untouched — nothing is flattened into
/// the result.
///
/// # Errors
///
/// Returns [`HierError`] when a referenced definition cannot be
/// flattened for its abstract, when pins conflict (infeasible), or when
/// the pitch fixpoint / axis alternation fails to stabilize.
pub fn compact_cell(
    table: &CellTable,
    root: CellId,
    rules: &DesignRules,
    solver: &dyn Solver,
    opts: &HierOptions,
) -> Result<HierOutcome, HierError> {
    let def = table.require(root)?;
    let mut shapes: Vec<CellAbstract> = Vec::new();
    let mut shape_of: HashMap<ShapeKey, usize> = HashMap::new();
    let mut items: Vec<Item> = Vec::new();

    for (k, obj) in def.objects().iter().enumerate() {
        match obj {
            LayoutObject::Instance(inst) => {
                let key = ShapeKey::Cell(inst.cell.raw(), {
                    let o = inst.orientation;
                    (o.rotation as u8, o.mirror_y)
                });
                let shape = match shape_of.get(&key) {
                    Some(&s) => s,
                    None => {
                        let a = derive_abstract(table, inst.cell, inst.orientation, rules)?;
                        shapes.push(a);
                        shape_of.insert(key, shapes.len() - 1);
                        shapes.len() - 1
                    }
                };
                items.push(Item {
                    object: k,
                    pos: inst.point_of_call,
                    key,
                    shape,
                });
            }
            LayoutObject::Box { layer, rect } => {
                let local = rect.translate(Vector::new(-rect.lo().x, -rect.lo().y));
                shapes.push(CellAbstract::from_boxes(&[(*layer, local)], rules));
                items.push(Item {
                    object: k,
                    pos: rect.lo(),
                    key: ShapeKey::Box(layer.index(), (rect.width(), rect.height())),
                    shape: shapes.len() - 1,
                });
            }
            LayoutObject::Label { .. } => {}
        }
    }

    let flat_boxes = items.iter().map(|i| shapes[i.shape].source_boxes()).sum();
    if items.is_empty() {
        return Ok(HierOutcome {
            cell: def.clone(),
            pitches: Vec::new(),
            passes: 0,
            converged: true,
            report: HierReport {
                sweeps: Vec::new(),
                flat_boxes,
            },
        });
    }

    let clusters = rigid_clusters(&items, &shapes);
    let structure = [
        axis_structure(table, Axis::X, &items, &clusters),
        axis_structure(table, Axis::Y, &items, &clusters),
    ];

    let mut positions: Vec<Point> = items.iter().map(|i| i.pos).collect();
    let mut report = HierReport {
        sweeps: Vec::new(),
        flat_boxes,
    };
    let mut warm: [Option<Vec<i64>>; 2] = [None, None];
    let mut final_pitch: [Vec<HierPitch>; 2] = [Vec::new(), Vec::new()];
    let mut passes = 0;
    let mut converged = false;
    for _ in 0..opts.max_passes {
        let before = positions.clone();
        for axis in Axis::BOTH {
            let (stats, pitches) = sweep_axis(
                axis,
                &items,
                &shapes,
                &clusters,
                &structure[axis_index(axis)],
                &mut positions,
                rules,
                solver,
                &mut warm[axis_index(axis)],
                opts,
            )?;
            report.sweeps.push(stats);
            final_pitch[axis_index(axis)] = pitches;
        }
        passes += 1;
        if positions == before {
            converged = true;
            break;
        }
    }

    // Rebuild the assembly with the solved origins; labels pass through.
    let mut cell = CellDefinition::new(def.name());
    let delta: HashMap<usize, Vector> = items
        .iter()
        .zip(&positions)
        .map(|(item, &p)| (item.object, p - item.pos))
        .collect();
    for (k, obj) in def.objects().iter().enumerate() {
        match obj {
            LayoutObject::Instance(inst) => {
                let d = delta[&k];
                let mut moved = *inst;
                moved.point_of_call = inst.point_of_call + d;
                cell.add_instance(moved);
            }
            LayoutObject::Box { layer, rect } => {
                cell.add_box(*layer, rect.translate(delta[&k]));
            }
            LayoutObject::Label { text, at } => {
                cell.add_label(text.clone(), *at);
            }
        }
    }

    let [px, py] = final_pitch;
    Ok(HierOutcome {
        cell,
        pitches: px.into_iter().chain(py).collect(),
        passes,
        converged,
        report,
    })
}

/// Union-find over rigid attachment: two items move as one unit when one
/// body fully contains the other (a personality mask riding inside its
/// host cell) or their rule-interacting material overlaps with positive
/// area. Background-layer overlap alone does **not** fuse — compacted
/// neighbours legitimately interpenetrate their wells, and fusing them
/// would freeze the assembly solid on a recompaction pass.
fn rigid_clusters(items: &[Item], shapes: &[CellAbstract]) -> Vec<Cluster> {
    let bbox =
        |i: usize| -> Option<Rect> { shapes[items[i].shape].bbox().map(|r| at(r, items[i].pos)) };
    let mat = |i: usize| -> Option<Rect> {
        shapes[items[i].shape]
            .material()
            .map(|r| at(r, items[i].pos))
    };
    let mut parent: Vec<usize> = (0..items.len()).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let r = find(parent, parent[i]);
            parent[i] = r;
        }
        parent[i]
    }
    for i in 0..items.len() {
        let Some(bi) = bbox(i) else { continue };
        for j in i + 1..items.len() {
            let Some(bj) = bbox(j) else { continue };
            let contained = bi.contains_rect(bj) || bj.contains_rect(bi);
            let material_overlap = match (mat(i), mat(j)) {
                (Some(ma), Some(mb)) => ma.intersect(mb).is_some_and(|o| o.area() > 0),
                _ => false,
            };
            if contained || material_overlap {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[rj] = ri;
                }
            }
        }
    }
    let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for i in 0..items.len() {
        let r = find(&mut parent, i);
        groups.entry(r).or_default().push(i);
    }
    groups
        .into_values()
        .map(|members| {
            let rep = members
                .iter()
                .copied()
                .max_by_key(|&i| (bbox(i).map_or(0, |r| r.area()), std::cmp::Reverse(i)))
                .expect("non-empty cluster");
            Cluster { members, rep }
        })
        .collect()
}

fn at(r: Rect, p: Point) -> Rect {
    r.translate(Vector::new(p.x, p.y))
}

fn along(p: Point, axis: Axis) -> i64 {
    match axis {
        Axis::X => p.x,
        Axis::Y => p.y,
    }
}

/// Pins and pitch classes for one axis, from the input placement.
fn axis_structure(
    table: &CellTable,
    axis: Axis,
    items: &[Item],
    clusters: &[Cluster],
) -> AxisStructure {
    let origin = |c: &Cluster| items[c.rep].pos;

    // Pins: clusters drawn at the same along-coordinate stay at the same
    // along-coordinate — the design-by-example reading of alignment. A
    // buffer drawn on its column keeps its column; a register stack drawn
    // level with its array stays level, even after the leaf pass shrinks
    // the bodies so they no longer touch. Each coincidence group chains
    // into consecutive exact pins.
    let mut pins = Vec::new();
    let mut by_origin: BTreeMap<i64, Vec<usize>> = BTreeMap::new();
    for (ci, c) in clusters.iter().enumerate() {
        by_origin
            .entry(along(origin(c), axis))
            .or_default()
            .push(ci);
    }
    for group in by_origin.values() {
        for w in group.windows(2) {
            pins.push((w[0], w[1]));
        }
    }

    // Rows: clusters sharing an across-origin, ordered along the axis.
    let mut rows: BTreeMap<i64, Vec<usize>> = BTreeMap::new();
    for (ci, c) in clusters.iter().enumerate() {
        rows.entry(along(origin(c), axis.other()))
            .or_default()
            .push(ci);
    }
    let mut classes: BTreeMap<(ShapeKey, ShapeKey, i64), Vec<(usize, usize)>> = BTreeMap::new();
    for row in rows.values_mut() {
        row.sort_by_key(|&ci| (along(origin(&clusters[ci]), axis), ci));
        for w in row.windows(2) {
            let (a, b) = (w[0], w[1]);
            let d = along(origin(&clusters[b]), axis) - along(origin(&clusters[a]), axis);
            if d == 0 {
                continue; // coincident clusters are the pins' business
            }
            let key = (items[clusters[a].rep].key, items[clusters[b].rep].key, d);
            classes.entry(key).or_default().push((a, b));
        }
    }
    let names: HashMap<u32, &str> = table.iter().map(|(id, c)| (id.raw(), c.name())).collect();
    let name_of = |key: &ShapeKey| -> String {
        match key {
            ShapeKey::Cell(raw, _) => names
                .get(raw)
                .map_or_else(|| format!("#{raw}"), |n| (*n).to_owned()),
            ShapeKey::Box(layer, _) => format!("box:{}", Layer::ALL[*layer]),
        }
    };
    let classes = classes
        .into_iter()
        .map(|((ka, kb, d), pairs)| PitchClassDef {
            name: format!("{axis}:{}->{}@{d}", name_of(&ka), name_of(&kb)),
            pairs,
        })
        .collect();
    AxisStructure { pins, classes }
}

/// One axis sweep: constraint generation on abstracts, pitch fixpoint,
/// position update. Returns the stats and the solved pitch classes.
#[allow(clippy::too_many_arguments)]
fn sweep_axis(
    axis: Axis,
    items: &[Item],
    shapes: &[CellAbstract],
    clusters: &[Cluster],
    structure: &AxisStructure,
    positions: &mut [Point],
    rules: &DesignRules,
    solver: &dyn Solver,
    warm: &mut Option<Vec<i64>>,
    opts: &HierOptions,
) -> Result<(HierSweepStats, Vec<HierPitch>), HierError> {
    let n = clusters.len();
    let origin = |c: &Cluster, positions: &[Point]| positions[c.rep];

    // Absolute abstract boxes, tagged with their owning cluster.
    let mut pboxes: Vec<(Layer, Rect)> = Vec::new();
    let mut owner: Vec<usize> = Vec::new();
    for (ci, c) in clusters.iter().enumerate() {
        for &m in &c.members {
            for &(l, r) in shapes[items[m].shape].profile(axis) {
                pboxes.push((l, at(r, positions[m])));
                owner.push(ci);
            }
        }
    }

    // Material frames per cluster (absolute).
    let frames: Vec<Option<Rect>> = clusters
        .iter()
        .map(|c| {
            let mut bb = BoundingBox::new();
            for &m in &c.members {
                if let Some(r) = shapes[items[m].shape].material() {
                    bb.include_rect(at(r, positions[m]));
                }
            }
            bb.rect()
        })
        .collect();

    // Pairwise constraint weights, collapsed to the max per cluster pair.
    let base = |ci: usize| along(origin(&clusters[ci], positions), axis);
    let mut weights: BTreeMap<(usize, usize), i64> = BTreeMap::new();
    let bump = |weights: &mut BTreeMap<(usize, usize), i64>, a: usize, b: usize, w: i64| {
        let e = weights.entry((a, b)).or_insert(i64::MIN);
        *e = (*e).max(w);
    };

    // Frames: ordered material bounding boxes may abut but not overlap —
    // the hierarchical engine never compacts *into* a leaf.
    for a in 0..n {
        let Some(fa) = frames[a] else { continue };
        for (b, fb) in frames.iter().enumerate() {
            if a == b {
                continue;
            }
            let Some(fb) = *fb else { continue };
            if fa.hi_along(axis) > fb.lo_along(axis) {
                continue;
            }
            if fa.lo_across(axis) >= fb.hi_across(axis) || fb.lo_across(axis) >= fa.hi_across(axis)
            {
                continue;
            }
            let w = (fa.hi_along(axis) - base(a)) - (fb.lo_along(axis) - base(b));
            bump(&mut weights, a, b, w);
        }
    }

    // Spacing between abstract boxes of distinct clusters, hidden pairs
    // pruned through the same oracle the flat scanline uses. Same-layer
    // material that touches across a cluster boundary is one electrical
    // net: like the flat engine's connectivity constraints, the two
    // clusters are *welded* at their current offset — exempting the pair
    // from spacing alone would let the compactor pry a connected bus
    // apart.
    let mut welds: BTreeMap<(usize, usize), i64> = BTreeMap::new();
    let mut oracle = VisibilityOracle::new(pboxes.clone(), axis);
    for (i, &(la, ra)) in pboxes.iter().enumerate() {
        for (j, &(lb, rb)) in pboxes.iter().enumerate() {
            if owner[i] == owner[j] {
                continue;
            }
            if la == lb && ra.intersect(rb).is_some() {
                if owner[i] < owner[j] {
                    welds.insert((owner[i], owner[j]), base(owner[j]) - base(owner[i]));
                }
                continue; // connected material: welded, never spaced
            }
            let Some(s) = rules.min_spacing(la, lb) else {
                continue;
            };
            if ra.hi_along(axis) > rb.lo_along(axis) {
                continue;
            }
            // Near-overlap window: the DRC gap is L∞, so a diagonal pair
            // whose across-gap is under the rule still needs the full
            // along-spacing — strict overlap would leave corner-to-corner
            // pairs unconstrained.
            if ra.lo_across(axis) >= rb.hi_across(axis) + s
                || rb.lo_across(axis) >= ra.hi_across(axis) + s
            {
                continue;
            }
            if oracle.hidden_between(i, j) {
                continue;
            }
            let w = s + (ra.hi_along(axis) - base(owner[i])) - (rb.lo_along(axis) - base(owner[j]));
            bump(&mut weights, owner[i], owner[j], w);
        }
    }

    // Normalized initial coordinates.
    let min_base = (0..n).map(base).min().expect("non-empty");
    let floor = rules.spacing_floor();

    // Pitch fixpoint: each round solves a pure difference system; every
    // class pitch then rises to its worst member gap until stable.
    let mut lambdas: Vec<i64> = structure.classes.iter().map(|_| floor).collect();
    let mut rounds = 0;
    let mut passes = 0;
    let solution = loop {
        rounds += 1;
        if rounds > opts.max_pitch_rounds {
            return Err(HierError::Diverged(format!(
                "pitch fixpoint still moving after {} rounds on {axis}",
                opts.max_pitch_rounds
            )));
        }
        let mut sys = ConstraintSystem::new_along(axis);
        let vars: Vec<_> = (0..n).map(|ci| sys.add_var(base(ci) - min_base)).collect();
        for (&(a, b), &w) in &weights {
            sys.require(vars[a], vars[b], w);
        }
        for (&(a, b), &d) in &welds {
            sys.require_exact(vars[a], vars[b], d);
        }
        for &(a, b) in &structure.pins {
            sys.require_exact(vars[a], vars[b], 0);
        }
        for (k, class) in structure.classes.iter().enumerate() {
            for &(a, b) in &class.pairs {
                sys.require(vars[a], vars[b], lambdas[k]);
            }
        }
        let out = match warm.as_deref() {
            Some(seed) if seed.len() == n => solver.solve_system_warm(&sys, &[], seed)?,
            _ => solver.solve_system(&sys, &[])?,
        };
        passes += out.passes;
        let next: Vec<i64> = structure
            .classes
            .iter()
            .zip(&lambdas)
            .map(|(class, &cur)| {
                class
                    .pairs
                    .iter()
                    .map(|&(a, b)| out.positions[b] - out.positions[a])
                    .max()
                    .unwrap_or(cur)
            })
            .collect();
        let stable = next == lambdas;
        lambdas = next;
        if stable {
            *warm = Some(out.positions.clone());
            break out;
        }
        *warm = Some(out.positions.clone());
    };

    // Write the solved origins back: every member of a cluster moves by
    // the cluster's delta.
    let mut extent = 0;
    let constraints = weights.len()
        + welds.len() * 2
        + structure.pins.len() * 2
        + structure
            .classes
            .iter()
            .map(|c| c.pairs.len())
            .sum::<usize>();
    let deltas: Vec<i64> = (0..n)
        .map(|ci| solution.positions[ci] + min_base - base(ci))
        .collect();
    for (c, &d) in clusters.iter().zip(&deltas) {
        for &m in &c.members {
            match axis {
                Axis::X => positions[m].x += d,
                Axis::Y => positions[m].y += d,
            }
        }
    }
    if let (Some(&lo), Some(&hi)) = (
        solution.positions.iter().min(),
        solution.positions.iter().max(),
    ) {
        extent = hi - lo;
    }

    let pitches = structure
        .classes
        .iter()
        .zip(&lambdas)
        .map(|(class, &value)| HierPitch {
            axis,
            name: class.name.clone(),
            value,
            pairs: class.pairs.len(),
        })
        .collect();
    Ok((
        HierSweepStats {
            axis,
            clusters: n,
            abstract_boxes: pboxes.len(),
            constraints,
            pitch_rounds: rounds,
            solver_passes: passes,
            extent,
        },
        pitches,
    ))
}

/// Hierarchically compacts every assembly cell reachable from `top`,
/// children before callers, and returns the updated table: the paper's
/// whole-chip flow (leaves were compacted by the leaf pass; assemblies
/// compose from interfaces, never from flattened masks).
///
/// # Errors
///
/// Propagates [`HierError`] from any level; a cyclic hierarchy surfaces
/// as [`HierError::Layout`], and an assembly whose x/y alternation does
/// not reach a fixpoint within [`HierOptions::max_passes`] is reported
/// as [`HierError::Diverged`] — a non-converged placement can carry
/// stale cross-axis constraints, so the chip flow refuses to build on
/// it. ([`compact_cell`] still returns such partial results with
/// `converged == false` for callers that want them.)
pub fn compact_hierarchy(
    table: &CellTable,
    top: CellId,
    rules: &DesignRules,
    solver: &dyn Solver,
    opts: &HierOptions,
) -> Result<ChipLayout, HierError> {
    let mut out_table = table.clone();
    let mut order = Vec::new();
    let mut mark: HashMap<CellId, u8> = HashMap::new();
    dfs_order(table, top, &mut mark, &mut order)?;
    let mut cells = Vec::new();
    for cell in order {
        let def = out_table.require(cell)?;
        if def.instances().next().is_none() {
            continue; // leaf: the leaf compactor's business
        }
        let name = def.name().to_owned();
        let outcome = compact_cell(&out_table, cell, rules, solver, opts)?;
        if !outcome.converged {
            return Err(HierError::Diverged(format!(
                "cell `{name}` did not reach an x/y fixpoint in {} alternations",
                opts.max_passes
            )));
        }
        *out_table.get_mut(cell).expect("cell exists") = outcome.cell.clone();
        cells.push((name, outcome));
    }
    Ok(ChipLayout {
        table: out_table,
        top,
        cells,
    })
}

fn dfs_order(
    table: &CellTable,
    cell: CellId,
    mark: &mut HashMap<CellId, u8>,
    order: &mut Vec<CellId>,
) -> Result<(), HierError> {
    match mark.get(&cell) {
        Some(2) => return Ok(()),
        Some(1) => {
            let name = table.get(cell).map_or("?", |c| c.name()).to_owned();
            return Err(HierError::Layout(LayoutError::RecursiveCell(name)));
        }
        _ => {}
    }
    mark.insert(cell, 1);
    for inst in table.require(cell)?.instances() {
        dfs_order(table, inst.cell, mark, order)?;
    }
    mark.insert(cell, 2);
    order.push(cell);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BellmanFord, Topological};
    use rsg_layout::{drc, Instance, Technology};

    fn rules() -> DesignRules {
        Technology::mead_conway(2).rules.clone()
    }

    fn bf() -> BellmanFord {
        BellmanFord::SORTED
    }

    fn leaf(name: &str) -> CellDefinition {
        // 20-wide leaf: a well background and a centred poly bar.
        let mut c = CellDefinition::new(name);
        c.add_box(Layer::Well, Rect::from_coords(0, 0, 20, 20));
        c.add_box(Layer::Poly, Rect::from_coords(8, 0, 12, 20));
        c
    }

    #[test]
    fn abstract_profiles_summarize_edges() {
        let boxes = vec![
            (Layer::Poly, Rect::from_coords(0, 0, 4, 10)),
            (Layer::Poly, Rect::from_coords(10, 0, 14, 10)),
            (Layer::Well, Rect::from_coords(0, 0, 20, 20)), // no rules
        ];
        let a = CellAbstract::from_boxes(&boxes, &rules());
        // One merged strip spanning both poly bars along x.
        assert_eq!(
            a.profile(Axis::X),
            &[(Layer::Poly, Rect::from_coords(0, 0, 14, 10))]
        );
        // Along y the two bars sit in disjoint across-strips.
        assert_eq!(
            a.profile(Axis::Y),
            &[
                (Layer::Poly, Rect::from_coords(0, 0, 4, 10)),
                (Layer::Poly, Rect::from_coords(10, 0, 14, 10)),
            ]
        );
        assert_eq!(a.bbox(), Some(Rect::from_coords(0, 0, 20, 20)));
        assert_eq!(a.material(), Some(Rect::from_coords(0, 0, 14, 10)));
        assert_eq!(a.source_boxes(), 3);
    }

    #[test]
    fn row_of_instances_compacts_to_min_pitch_uniformly() {
        let mut t = CellTable::new();
        let id = t.insert(leaf("leaf")).unwrap();
        let mut row = CellDefinition::new("row");
        for k in 0..4 {
            row.add_instance(Instance::new(id, Point::new(k * 30, 0), Orientation::NORTH));
        }
        let root = t.insert(row).unwrap();
        let out = compact_cell(&t, root, &rules(), &bf(), &HierOptions::default()).unwrap();
        assert!(out.converged);
        // Poly bar 8..12, poly-poly spacing 4: pitch = 12 + 4 − 8 = 8.
        let xs: Vec<i64> = out.cell.instances().map(|i| i.point_of_call.x).collect();
        assert_eq!(xs, vec![0, 8, 16, 24]);
        assert_eq!(out.pitches.len(), 1);
        assert_eq!(out.pitches[0].value, 8);
        assert_eq!(out.pitches[0].pairs, 3);
        assert_eq!(out.pitches[0].axis, Axis::X);
    }

    #[test]
    fn contained_mask_rides_with_its_host() {
        let mut t = CellTable::new();
        let host = t.insert(leaf("host")).unwrap();
        let mut mask = CellDefinition::new("mask");
        mask.add_box(Layer::Cut, Rect::from_coords(2, 2, 8, 8));
        let mask_id = t.insert(mask).unwrap();
        let mut asm = CellDefinition::new("asm");
        asm.add_instance(Instance::new(host, Point::new(0, 0), Orientation::NORTH));
        asm.add_instance(Instance::new(mask_id, Point::new(0, 0), Orientation::NORTH));
        asm.add_instance(Instance::new(host, Point::new(40, 0), Orientation::NORTH));
        let root = t.insert(asm).unwrap();
        let out = compact_cell(&t, root, &rules(), &bf(), &HierOptions::default()).unwrap();
        let pts: Vec<Point> = out.cell.instances().map(|i| i.point_of_call).collect();
        // The mask keeps its exact offset inside the host.
        assert_eq!(pts[1], pts[0], "mask moved relative to its host");
        // The second host pulled in to the poly pitch.
        assert_eq!(pts[2].x - pts[0].x, 8);
    }

    #[test]
    fn coincident_origins_stay_pinned_across_the_other_axis() {
        // A column-attached cap: same x origin as its column cell, above
        // it. Compacting x must keep them x-aligned even though nothing
        // geometric ties them (no interacting material between them).
        let mut t = CellTable::new();
        let base_id = t.insert(leaf("base")).unwrap();
        let mut cap = CellDefinition::new("cap");
        cap.add_box(Layer::Well, Rect::from_coords(0, 0, 20, 10));
        cap.add_box(Layer::Metal1, Rect::from_coords(4, 2, 12, 8));
        let cap_id = t.insert(cap).unwrap();
        let mut asm = CellDefinition::new("asm");
        for k in 0..3 {
            asm.add_instance(Instance::new(
                base_id,
                Point::new(k * 30, 0),
                Orientation::NORTH,
            ));
            asm.add_instance(Instance::new(
                cap_id,
                Point::new(k * 30, 20),
                Orientation::NORTH,
            ));
        }
        let root = t.insert(asm).unwrap();
        let out = compact_cell(&t, root, &rules(), &bf(), &HierOptions::default()).unwrap();
        let pts: Vec<Point> = out.cell.instances().map(|i| i.point_of_call).collect();
        for k in 0..3 {
            assert_eq!(
                pts[2 * k].x,
                pts[2 * k + 1].x,
                "cap {k} sheared off its column"
            );
        }
    }

    #[test]
    fn abutting_connected_material_is_never_pried_apart() {
        // Cells a and b abut so their metal forms one net; a loose poly
        // bar sits to b's right. Compaction pulls the bar in but must
        // keep the welded a–b junction at its exact offset — exempting
        // the pair from spacing alone would sever the bus.
        let mut t = CellTable::new();
        let mut a = CellDefinition::new("a");
        a.add_box(Layer::Metal1, Rect::from_coords(0, 0, 10, 8));
        let a_id = t.insert(a).unwrap();
        let mut b = CellDefinition::new("b");
        b.add_box(Layer::Metal1, Rect::from_coords(0, 0, 10, 8));
        b.add_box(Layer::Poly, Rect::from_coords(2, 20, 6, 40));
        let b_id = t.insert(b).unwrap();
        let mut asm = CellDefinition::new("asm");
        asm.add_instance(Instance::new(a_id, Point::new(0, 0), Orientation::NORTH));
        asm.add_instance(Instance::new(b_id, Point::new(10, 0), Orientation::NORTH));
        asm.add_box(Layer::Poly, Rect::from_coords(40, 20, 44, 40));
        let root = t.insert(asm).unwrap();
        let r = rules();
        let out = compact_cell(&t, root, &r, &bf(), &HierOptions::default()).unwrap();
        let pts: Vec<Point> = out.cell.instances().map(|i| i.point_of_call).collect();
        assert_eq!(
            pts[1] - pts[0],
            rsg_geom::Vector::new(10, 0),
            "welded abutment moved: the net was severed"
        );
        // The loose bar still compacts against b's poly.
        let bar = out.cell.boxes().next().unwrap().1;
        assert_eq!(bar.lo().x, pts[1].x + 6 + 4, "bar at poly spacing from b");
    }

    #[test]
    fn conflicting_pins_report_infeasible() {
        // Two cells drawn at the same origin whose material is ordered
        // with a positive spacing demand: the alignment pin contradicts
        // the spacing constraint.
        let mut t = CellTable::new();
        let mut a = CellDefinition::new("a");
        a.add_box(Layer::Poly, Rect::from_coords(0, 0, 4, 10));
        let a_id = t.insert(a).unwrap();
        let mut b = CellDefinition::new("b");
        b.add_box(Layer::Poly, Rect::from_coords(6, 0, 10, 10));
        let b_id = t.insert(b).unwrap();
        let mut asm = CellDefinition::new("asm");
        asm.add_instance(Instance::new(a_id, Point::new(0, 0), Orientation::NORTH));
        asm.add_instance(Instance::new(b_id, Point::new(0, 0), Orientation::NORTH));
        let root = t.insert(asm).unwrap();
        let err = compact_cell(&t, root, &rules(), &bf(), &HierOptions::default()).unwrap_err();
        assert!(matches!(err, HierError::Infeasible(_)), "{err}");
    }

    #[test]
    fn empty_cell_is_untouched() {
        let mut t = CellTable::new();
        let id = t.insert(CellDefinition::new("empty")).unwrap();
        let out = compact_cell(&t, id, &rules(), &bf(), &HierOptions::default()).unwrap();
        assert!(out.converged);
        assert_eq!(out.passes, 0);
        assert_eq!(&out.cell, t.get(id).unwrap());
    }

    #[test]
    fn hierarchy_compacts_bottom_up_and_flattens_clean() {
        // row (4 leaves) instantiated twice in a chip: the row compacts
        // first, the chip then places the compacted rows — and the
        // flattened result re-checks clean.
        let mut t = CellTable::new();
        let id = t.insert(leaf("leaf")).unwrap();
        let mut row = CellDefinition::new("row");
        for k in 0..4 {
            row.add_instance(Instance::new(id, Point::new(k * 30, 0), Orientation::NORTH));
        }
        let row_id = t.insert(row).unwrap();
        let mut chip = CellDefinition::new("chip");
        chip.add_instance(Instance::new(row_id, Point::new(0, 0), Orientation::NORTH));
        chip.add_instance(Instance::new(
            row_id,
            Point::new(0, -40),
            Orientation::NORTH,
        ));
        let top = t.insert(chip).unwrap();

        let r = rules();
        let out = compact_hierarchy(&t, top, &r, &bf(), &HierOptions::default()).unwrap();
        assert_eq!(
            out.cells
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            ["row", "chip"],
            "children compact before callers"
        );
        let flat = flatten(&out.table, out.top).unwrap();
        assert!(drc::check_flat(&flat, &r).is_empty());
        // The rows shrank: pitch 8 instead of 30.
        let row_def = out.table.get(row_id).unwrap();
        let xs: Vec<i64> = row_def.instances().map(|i| i.point_of_call.x).collect();
        assert_eq!(xs, vec![0, 8, 16, 24]);
        // The two row instances pulled together vertically. The bars were
        // *separate* nets in the sample (pitch 40 — not touching), so the
        // compactor must keep them a poly-poly spacing apart, not fuse
        // them: pitch = bar height 20 + spacing 4.
        let chip_def = out.table.get(top).unwrap();
        let ys: Vec<i64> = chip_def.instances().map(|i| i.point_of_call.y).collect();
        assert_eq!(ys[0] - ys[1], 24, "row pitch = bar height + spacing");
    }

    #[test]
    fn backends_agree_on_the_hier_result() {
        let mut t = CellTable::new();
        let id = t.insert(leaf("leaf")).unwrap();
        let mut row = CellDefinition::new("row");
        for k in 0..5 {
            row.add_instance(Instance::new(id, Point::new(k * 26, 0), Orientation::NORTH));
        }
        let root = t.insert(row).unwrap();
        let r = rules();
        let a = compact_cell(&t, root, &r, &bf(), &HierOptions::default()).unwrap();
        let b = compact_cell(&t, root, &r, &Topological, &HierOptions::default()).unwrap();
        assert_eq!(a.cell, b.cell);
        assert_eq!(a.pitches, b.pitches);
    }

    #[test]
    fn recursive_hierarchy_is_an_error() {
        let mut t = CellTable::new();
        let a = t.insert(CellDefinition::new("a")).unwrap();
        t.get_mut(a)
            .unwrap()
            .add_instance(Instance::new(a, Point::new(1, 1), Orientation::NORTH));
        let err = compact_hierarchy(&t, a, &rules(), &bf(), &HierOptions::default()).unwrap_err();
        assert!(matches!(
            err,
            HierError::Layout(LayoutError::RecursiveCell(_))
        ));
    }

    #[test]
    fn direct_boxes_participate_as_items() {
        // A root with a loose box next to an instance: both compact.
        let mut t = CellTable::new();
        let id = t.insert(leaf("leaf")).unwrap();
        let mut asm = CellDefinition::new("asm");
        asm.add_instance(Instance::new(id, Point::new(0, 0), Orientation::NORTH));
        asm.add_box(Layer::Poly, Rect::from_coords(40, 0, 44, 20));
        asm.add_label("note", Point::new(1, 1));
        let root = t.insert(asm).unwrap();
        let r = rules();
        let out = compact_cell(&t, root, &r, &bf(), &HierOptions::default()).unwrap();
        let boxes: Vec<(Layer, Rect)> = out.cell.boxes().collect();
        // Loose bar pulled in to poly spacing from the leaf's bar (8..12).
        assert_eq!(boxes[0].1, Rect::from_coords(16, 0, 20, 20));
        assert_eq!(out.cell.labels().count(), 1, "labels pass through");
        let flat = flatten_root(&t, &out.cell, root);
        assert!(drc::check(&flat, &r).is_empty());
    }

    /// Flattens a rebuilt root definition against its original table.
    fn flatten_root(t: &CellTable, cell: &CellDefinition, original: CellId) -> Vec<(Layer, Rect)> {
        let mut t2 = t.clone();
        *t2.get_mut(original).unwrap() = cell.clone();
        flatten(&t2, original).unwrap().layer_rects().to_vec()
    }
}
