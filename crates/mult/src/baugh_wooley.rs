//! The Baugh-Wooley signed-multiplication functional model (paper Fig 5.1,
//! ref. \[13\]).
//!
//! For an m-bit two's-complement `a` and n-bit `b`, the product is the sum
//! of a matrix of partial-product terms plus three boundary constants:
//!
//! ```text
//! a·b = Σ_{i<m-1, j<n-1} aᵢbⱼ 2^{i+j}
//!     + a_{m-1} b_{n-1} 2^{m+n-2}
//!     + Σ_{j<n-1} ¬(a_{m-1} bⱼ) 2^{m-1+j}
//!     + Σ_{i<m-1} ¬(aᵢ b_{n-1}) 2^{n-1+i}
//!     + 2^{m-1} + 2^{n-1} + 2^{m+n-1}        (mod 2^{m+n})
//! ```
//!
//! Cells computing uncomplemented terms are **type I**; cells computing
//! complemented terms (exactly one sign bit involved) are **type II** —
//! the paper's "type II cells occur on the left and bottom edges of the
//! carry-save array, except for the cell at the lower left corner".

/// Which of the two full-adder cell personalities a position gets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellType {
    /// Adds the plain partial product `aᵢ·bⱼ`.
    TypeI,
    /// Adds the complemented partial product `¬(aᵢ·bⱼ)`.
    TypeII,
}

/// The structural description of an m×n Baugh-Wooley array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaughWooley {
    m: usize,
    n: usize,
}

impl BaughWooley {
    /// Creates the model for an m-bit × n-bit multiplier.
    ///
    /// # Panics
    ///
    /// Panics unless `2 ≤ m`, `2 ≤ n`, and `m + n ≤ 62` (so products fit
    /// an `i64` during simulation).
    pub fn new(m: usize, n: usize) -> BaughWooley {
        assert!(
            (2..=60).contains(&m) && (2..=60).contains(&n) && m + n <= 62,
            "unsupported multiplier size {m}x{n}"
        );
        BaughWooley { m, n }
    }

    /// Multiplicand width in bits.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Multiplier width in bits.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The cell personality at array position `(i, j)` — column `i`
    /// (weight of `aᵢ`), row `j` (weight of `bⱼ`).
    pub fn cell_type(&self, i: usize, j: usize) -> CellType {
        let a_sign = i == self.m - 1;
        let b_sign = j == self.n - 1;
        if a_sign ^ b_sign {
            CellType::TypeII
        } else {
            CellType::TypeI
        }
    }

    /// The partial-product bit contributed by cell `(i, j)` for operands
    /// `a`, `b` (two's complement in the low `m`/`n` bits).
    pub fn term(&self, a: i64, b: i64, i: usize, j: usize) -> u8 {
        let ai = ((a >> i) & 1) as u8;
        let bj = ((b >> j) & 1) as u8;
        match self.cell_type(i, j) {
            CellType::TypeI => ai & bj,
            CellType::TypeII => 1 ^ (ai & bj),
        }
    }

    /// The three boundary constant weights: `m−1`, `n−1`, `m+n−1` — the
    /// "ones and zeros ... assigned to the unused inputs along the top and
    /// left edges as prescribed by the Baugh-Wooley algorithm".
    pub fn constant_weights(&self) -> [usize; 3] {
        [self.m - 1, self.n - 1, self.m + self.n - 1]
    }

    /// Range of legal operand values for the multiplicand `a`.
    pub fn a_range(&self) -> std::ops::RangeInclusive<i64> {
        -(1i64 << (self.m - 1))..=(1i64 << (self.m - 1)) - 1
    }

    /// Range of legal operand values for the multiplier `b`.
    pub fn b_range(&self) -> std::ops::RangeInclusive<i64> {
        -(1i64 << (self.n - 1))..=(1i64 << (self.n - 1)) - 1
    }

    /// Reference multiply, evaluating the Baugh-Wooley matrix exactly as
    /// the array hardware would sum it (no use of the `*` operator).
    ///
    /// # Panics
    ///
    /// Panics if the operands are outside the representable ranges.
    pub fn multiply(&self, a: i64, b: i64) -> i64 {
        assert!(
            self.a_range().contains(&a),
            "a={a} out of range for {}-bit",
            self.m
        );
        assert!(
            self.b_range().contains(&b),
            "b={b} out of range for {}-bit",
            self.n
        );
        let width = self.m + self.n;
        let mut acc: u64 = 0;
        for j in 0..self.n {
            for i in 0..self.m {
                let t = self.term(a, b, i, j) as u64;
                acc = acc.wrapping_add(t << (i + j));
            }
        }
        for w in self.constant_weights() {
            acc = acc.wrapping_add(1u64 << w);
        }
        // Interpret the low `width` bits as two's complement.
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let val = acc & mask;
        let sign = 1u64 << (width - 1);
        if val & sign != 0 {
            (val as i64) - ((sign as i64) << 1)
        } else {
            val as i64
        }
    }

    /// Counts of type I and type II cells `(type_i, type_ii)`.
    pub fn type_counts(&self) -> (usize, usize) {
        let type_ii = (self.m - 1) + (self.n - 1);
        (self.m * self.n - type_ii, type_ii)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_small_sizes() {
        for (m, n) in [(2, 2), (3, 3), (4, 4), (3, 5), (5, 3)] {
            let bw = BaughWooley::new(m, n);
            for a in bw.a_range() {
                for b in bw.b_range() {
                    assert_eq!(bw.multiply(a, b), a * b, "{m}x{n}: {a}*{b}");
                }
            }
        }
    }

    #[test]
    fn type_assignment_matches_paper() {
        // Fig 5.1 (6×6): type II where exactly one operand index is the
        // sign position; the corner (both signs) is type I.
        let bw = BaughWooley::new(6, 6);
        assert_eq!(bw.cell_type(5, 5), CellType::TypeI);
        assert_eq!(bw.cell_type(5, 0), CellType::TypeII);
        assert_eq!(bw.cell_type(0, 5), CellType::TypeII);
        assert_eq!(bw.cell_type(0, 0), CellType::TypeI);
        assert_eq!(bw.type_counts(), (26, 10));
    }

    #[test]
    fn extreme_values() {
        let bw = BaughWooley::new(8, 8);
        for (a, b) in [(-128, -128), (-128, 127), (127, 127), (0, -128), (-1, -1)] {
            assert_eq!(bw.multiply(a, b), a * b);
        }
    }

    #[test]
    fn asymmetric_sizes() {
        let bw = BaughWooley::new(10, 4);
        for (a, b) in [(-512, -8), (511, 7), (-300, 5), (123, -8)] {
            assert_eq!(bw.multiply(a, b), a * b);
        }
    }

    #[test]
    fn constants() {
        let bw = BaughWooley::new(6, 4);
        assert_eq!(bw.constant_weights(), [5, 3, 9]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        BaughWooley::new(4, 4).multiply(8, 0);
    }

    #[test]
    #[should_panic(expected = "unsupported multiplier size")]
    fn rejects_huge() {
        let _ = BaughWooley::new(40, 40);
    }
}
