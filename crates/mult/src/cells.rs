//! The synthetic multiplier leaf-cell library and its sample layout.
//!
//! The paper's leaf cells (Appendix E) were hand-drawn NMOS; the RSG never
//! looks inside them — only bounding geometry, labels, and the interfaces
//! they exemplify matter. This module builds functionally equivalent
//! synthetic cells in the λ-based CMOS stack of `rsg-layout`:
//!
//! * `basic` — the 40×40 core cell (input inverters + full adder footprint),
//! * masking cells `typei`, `typeii`, `clock1`, `clock2`, `carry1`,
//!   `carry2`, `topm1`, `topm2` — small boxes instantiated *inside* the
//!   basic cell to personalize it (paper Fig 5.3),
//! * register cells `topreg`, `bottomreg`, `rightreg` and the right-stack
//!   direction masks `goboth`, `goleft`, `goright`,
//! * [`sample_layout`] — the Fig 5.5 equivalent: one tiny assembly cell per
//!   interface, with the numeric label in the overlap region.
//!
//! Every cell carries a full-extent `Well` background box so that abutting
//! instances share a boundary; interface labels sit on that shared line.

use rsg_core::RsgError;
use rsg_geom::{Orientation, Point, Rect};
use rsg_layout::{CellDefinition, CellTable, Instance, Layer};

/// Pitch of the core array in grid units (40 = 20λ at λ = 2).
pub const PITCH: i64 = 40;

/// Height of the top/bottom register cells.
pub const REG_HEIGHT: i64 = 20;

/// Width of the right register cells.
pub const REG_WIDTH: i64 = 20;

/// Names of the mask cells applied to the basic cell, in a stable order.
pub const BASIC_MASKS: [&str; 8] = [
    "typei", "typeii", "clock1", "clock2", "carry1", "carry2", "topm1", "topm2",
];

/// Names of the right-register direction masks.
pub const REG_MASKS: [&str; 3] = ["goboth", "goleft", "goright"];

fn basic_cell() -> CellDefinition {
    let mut c = CellDefinition::new("basic");
    c.add_box(Layer::Well, Rect::from_coords(0, 0, PITCH, PITCH));
    c.add_box(Layer::Diffusion, Rect::from_coords(4, 4, 16, 12));
    c.add_box(Layer::Poly, Rect::from_coords(18, 4, 22, 36));
    c.add_box(Layer::Metal1, Rect::from_coords(4, 20, 36, 26));
    c.add_box(Layer::Cut, Rect::from_coords(18, 21, 22, 25));
    c
}

/// `(name, layer, rect)` of each basic-cell mask's single box; the boxes
/// occupy disjoint spots inside the basic cell so that every mask is
/// independently visible (Fig 5.3's maskings), and every co-occurring
/// combination (one type + one clock + one carry + one top mask) is
/// design-rule clean in the tiled array (§2.3): the metal2 masks sit in
/// two x-bands a full metal2 spacing apart, the top masks use the
/// rule-free implant marker layer.
fn basic_mask_specs() -> Vec<(&'static str, Layer, Rect)> {
    vec![
        ("typei", Layer::Metal2, Rect::from_coords(10, 2, 18, 10)),
        ("typeii", Layer::Metal2, Rect::from_coords(10, 14, 18, 22)),
        ("clock1", Layer::Poly, Rect::from_coords(26, 28, 32, 32)),
        ("clock2", Layer::Poly, Rect::from_coords(26, 34, 32, 38)),
        ("carry1", Layer::Metal2, Rect::from_coords(26, 2, 34, 10)),
        ("carry2", Layer::Metal2, Rect::from_coords(26, 14, 34, 22)),
        ("topm1", Layer::Implant, Rect::from_coords(32, 32, 36, 36)),
        ("topm2", Layer::Implant, Rect::from_coords(34, 14, 38, 18)),
    ]
}

fn reg_mask_specs() -> Vec<(&'static str, Layer, Rect)> {
    vec![
        ("goboth", Layer::Metal2, Rect::from_coords(6, 4, 14, 12)),
        ("goleft", Layer::Metal2, Rect::from_coords(6, 16, 14, 24)),
        ("goright", Layer::Metal2, Rect::from_coords(6, 28, 14, 36)),
    ]
}

fn topreg_cell() -> CellDefinition {
    let mut c = CellDefinition::new("topreg");
    c.add_box(Layer::Well, Rect::from_coords(0, 0, PITCH, REG_HEIGHT));
    c.add_box(Layer::Metal1, Rect::from_coords(4, 4, 36, 16));
    c
}

fn bottomreg_cell() -> CellDefinition {
    let mut c = CellDefinition::new("bottomreg");
    c.add_box(Layer::Well, Rect::from_coords(0, 0, PITCH, REG_HEIGHT));
    c.add_box(Layer::Metal1, Rect::from_coords(4, 4, 36, 16));
    c.add_box(Layer::Poly, Rect::from_coords(18, 2, 22, 18));
    c
}

fn rightreg_cell() -> CellDefinition {
    let mut c = CellDefinition::new("rightreg");
    c.add_box(Layer::Well, Rect::from_coords(0, 0, REG_WIDTH, PITCH));
    c.add_box(Layer::Metal1, Rect::from_coords(4, 4, 16, 36));
    c
}

/// Builds the complete sample layout: all leaf cells plus one assembly
/// cell per interface with its numeric label (the design-by-example input
/// of Fig 1.1 / Fig 5.5).
///
/// Interface index assignments (all per cell pair):
///
/// | pair | index | meaning |
/// |---|---|---|
/// | basic–basic | 1 | horizontal pitch (east) |
/// | basic–basic | 2 | vertical pitch (south) |
/// | basic–mask | 1 | mask applied at the basic cell's origin |
/// | basic–topreg | 1 | register stack above |
/// | basic–bottomreg | 1 | register stack below |
/// | basic–rightreg | 1 | register stack to the right |
/// | topreg–topreg / bottomreg–bottomreg | 1 | horizontal pitch |
/// | rightreg–rightreg | 1 | vertical pitch (south) |
/// | rightreg–mask | 1 | direction mask |
///
/// # Errors
///
/// Returns [`RsgError::Layout`] if the table rejects a cell — the names
/// are statically unique and the coordinates are within the ingest
/// budget, so a failure indicates a bug in this module, reported rather
/// than panicked.
pub fn sample_layout() -> Result<CellTable, RsgError> {
    let mut t = CellTable::new();
    let basic = t.insert(basic_cell())?;
    let mut mask_ids = Vec::new();
    for (name, layer, rect) in basic_mask_specs() {
        let mut c = CellDefinition::new(name);
        c.add_box(layer, rect);
        mask_ids.push((t.insert(c)?, rect));
    }
    let topreg = t.insert(topreg_cell())?;
    let bottomreg = t.insert(bottomreg_cell())?;
    let rightreg = t.insert(rightreg_cell())?;
    let mut reg_mask_ids = Vec::new();
    for (name, layer, rect) in reg_mask_specs() {
        let mut c = CellDefinition::new(name);
        c.add_box(layer, rect);
        reg_mask_ids.push((t.insert(c)?, rect));
    }

    // basic–basic horizontal (#1) and vertical (#2).
    let mut s = CellDefinition::new("s_h");
    s.add_instance(Instance::new(basic, Point::new(0, 0), Orientation::NORTH));
    s.add_instance(Instance::new(
        basic,
        Point::new(PITCH, 0),
        Orientation::NORTH,
    ));
    s.add_label("1", Point::new(PITCH, PITCH / 2));
    t.insert(s)?;

    let mut s = CellDefinition::new("s_v");
    s.add_instance(Instance::new(basic, Point::new(0, 0), Orientation::NORTH));
    s.add_instance(Instance::new(
        basic,
        Point::new(0, -PITCH),
        Orientation::NORTH,
    ));
    s.add_label("2", Point::new(PITCH / 2, 0));
    t.insert(s)?;

    // basic + each mask at the shared origin, labelled inside the mask box.
    for (i, (mask, rect)) in mask_ids.iter().enumerate() {
        let mut s = CellDefinition::new(format!("s_mask{i}"));
        s.add_instance(Instance::new(basic, Point::new(0, 0), Orientation::NORTH));
        s.add_instance(Instance::new(*mask, Point::new(0, 0), Orientation::NORTH));
        s.add_label("1", rect.center());
        t.insert(s)?;
    }

    // basic–register interfaces.
    let mut s = CellDefinition::new("s_treg");
    s.add_instance(Instance::new(basic, Point::new(0, 0), Orientation::NORTH));
    s.add_instance(Instance::new(
        topreg,
        Point::new(0, PITCH),
        Orientation::NORTH,
    ));
    s.add_label("1", Point::new(PITCH / 2, PITCH));
    t.insert(s)?;

    let mut s = CellDefinition::new("s_breg");
    s.add_instance(Instance::new(basic, Point::new(0, 0), Orientation::NORTH));
    s.add_instance(Instance::new(
        bottomreg,
        Point::new(0, -REG_HEIGHT),
        Orientation::NORTH,
    ));
    s.add_label("1", Point::new(PITCH / 2, 0));
    t.insert(s)?;

    let mut s = CellDefinition::new("s_rreg");
    s.add_instance(Instance::new(basic, Point::new(0, 0), Orientation::NORTH));
    s.add_instance(Instance::new(
        rightreg,
        Point::new(PITCH, 0),
        Orientation::NORTH,
    ));
    s.add_label("1", Point::new(PITCH, PITCH / 2));
    t.insert(s)?;

    // Register–register pitches.
    let mut s = CellDefinition::new("s_tregh");
    s.add_instance(Instance::new(topreg, Point::new(0, 0), Orientation::NORTH));
    s.add_instance(Instance::new(
        topreg,
        Point::new(PITCH, 0),
        Orientation::NORTH,
    ));
    s.add_label("1", Point::new(PITCH, REG_HEIGHT / 2));
    t.insert(s)?;

    let mut s = CellDefinition::new("s_bregh");
    s.add_instance(Instance::new(
        bottomreg,
        Point::new(0, 0),
        Orientation::NORTH,
    ));
    s.add_instance(Instance::new(
        bottomreg,
        Point::new(PITCH, 0),
        Orientation::NORTH,
    ));
    s.add_label("1", Point::new(PITCH, REG_HEIGHT / 2));
    t.insert(s)?;

    let mut s = CellDefinition::new("s_rregv");
    s.add_instance(Instance::new(
        rightreg,
        Point::new(0, 0),
        Orientation::NORTH,
    ));
    s.add_instance(Instance::new(
        rightreg,
        Point::new(0, -PITCH),
        Orientation::NORTH,
    ));
    s.add_label("1", Point::new(REG_WIDTH / 2, 0));
    t.insert(s)?;

    // rightreg + direction masks.
    for (i, (mask, rect)) in reg_mask_ids.iter().enumerate() {
        let mut s = CellDefinition::new(format!("s_rmask{i}"));
        s.add_instance(Instance::new(
            rightreg,
            Point::new(0, 0),
            Orientation::NORTH,
        ));
        s.add_instance(Instance::new(*mask, Point::new(0, 0), Orientation::NORTH));
        s.add_label("1", rect.center());
        t.insert(s)?;
    }

    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_core::{extract_interfaces, Interface, Rsg};
    use rsg_geom::Vector;

    #[test]
    fn sample_extracts_all_interfaces() {
        let table = sample_layout().unwrap();
        let found = extract_interfaces(&table).unwrap();
        // 2 basic-basic + 8 masks + 3 basic-reg + 3 reg-reg + 3 reg masks.
        assert_eq!(found.len(), 19);
    }

    #[test]
    fn key_interfaces_have_expected_geometry() {
        let table = sample_layout().unwrap();
        let rsg = Rsg::from_sample(table).unwrap();
        let basic = rsg.cells().lookup("basic").unwrap();
        let topreg = rsg.cells().lookup("topreg").unwrap();
        let typei = rsg.cells().lookup("typei").unwrap();

        assert_eq!(
            rsg.interfaces().resolve(basic, basic, 1, true),
            Some(Interface::new(Vector::new(PITCH, 0), Orientation::NORTH))
        );
        assert_eq!(
            rsg.interfaces().resolve(basic, basic, 2, true),
            Some(Interface::new(Vector::new(0, -PITCH), Orientation::NORTH))
        );
        assert_eq!(
            rsg.interfaces().get(basic, topreg, 1),
            Some(Interface::new(Vector::new(0, PITCH), Orientation::NORTH))
        );
        // The auto-loaded inverse is present too (bilaterality).
        assert_eq!(
            rsg.interfaces().get(topreg, basic, 1),
            Some(Interface::new(Vector::new(0, -PITCH), Orientation::NORTH))
        );
        assert_eq!(
            rsg.interfaces().get(basic, typei, 1),
            Some(Interface::new(Vector::ZERO, Orientation::NORTH))
        );
    }

    #[test]
    fn all_named_cells_exist() {
        let table = sample_layout().unwrap();
        for name in ["basic", "topreg", "bottomreg", "rightreg"] {
            assert!(table.lookup(name).is_some(), "{name}");
        }
        for name in BASIC_MASKS.iter().chain(REG_MASKS.iter()) {
            assert!(table.lookup(name).is_some(), "{name}");
        }
    }

    #[test]
    fn mask_boxes_sit_inside_basic() {
        for (_, _, rect) in basic_mask_specs() {
            assert!(
                Rect::from_coords(0, 0, PITCH, PITCH).contains_rect(rect),
                "{rect} escapes the basic cell"
            );
        }
        // And pairwise disjoint so maskings never collide.
        let specs = basic_mask_specs();
        for (i, a) in specs.iter().enumerate() {
            for b in &specs[i + 1..] {
                assert!(!a.2.overlaps(b.2), "{} overlaps {}", a.0, b.0);
            }
        }
    }
}
