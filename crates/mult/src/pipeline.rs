//! Cycle-accurate simulation of the retimed multiplier array (paper
//! Fig 5.2 and ref. \[18\], Leiserson-Rose-Saxe retiming).
//!
//! "Using retiming transformations, the multiplier can be pipelined to any
//! degree in a manner that preserves the regularity of the inner array,
//! but adds irregularity to the periphery of the array in the form of
//! input and output register stacks." The pipelining degree β is the
//! maximum number of full-adder delays between any two registers:
//!
//! * β = 0 — the purely combinational array of Fig 5.1 (no registers),
//! * β = 1 — the bit-systolic multiplier of Fig 5.2a ("at most one full
//!   adder combinational delay between any two registers"),
//! * β = 2 — the lower-degree pipeline of Fig 5.2b, and so on.
//!
//! The simulator carries genuine per-stage registers: each clock edge
//! shifts a wave of state (running carry-save vectors, skewed operands,
//! partially assimilated result) one stage forward, so latency and
//! throughput are *measured*, not computed from a formula. The operand
//! registers travelling with each wave model the paper's peripheral
//! register stacks (tregs/rregs/bregs) that skew inputs and deskew
//! outputs.

use crate::baugh_wooley::BaughWooley;

/// One pipeline wave: the state crossing a register boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Wave {
    /// Skewed multiplicand (register stack along the array edge).
    a: i64,
    /// Skewed multiplier.
    b: i64,
    /// Carry-save running sum bits.
    sum: Vec<u8>,
    /// Carry-save running carry bits.
    carry: Vec<u8>,
    /// Bits already assimilated by the pipelined carry-propagate adder.
    result: u64,
    /// Ripple carry between CPA stages.
    cpa_carry: u8,
    /// Whether this slot holds real data (pipeline fill/drain marker).
    valid: bool,
}

impl Wave {
    fn bubble(width: usize) -> Wave {
        Wave {
            a: 0,
            b: 0,
            sum: vec![0; width],
            carry: vec![0; width],
            result: 0,
            cpa_carry: 0,
            valid: false,
        }
    }
}

/// A Baugh-Wooley array multiplier pipelined to degree β.
///
/// # Example
///
/// ```
/// use rsg_mult::pipeline::PipelinedMultiplier;
///
/// let combinational = PipelinedMultiplier::new(8, 8, 0);
/// assert_eq!(combinational.latency(), 0);
///
/// let systolic = PipelinedMultiplier::new(8, 8, 1);
/// assert!(systolic.latency() > PipelinedMultiplier::new(8, 8, 2).latency());
/// assert_eq!(systolic.multiply(-100, 99), -9900);
/// ```
#[derive(Debug, Clone)]
pub struct PipelinedMultiplier {
    bw: BaughWooley,
    beta: usize,
    /// Row ranges per carry-save stage.
    csa_stages: Vec<(usize, usize)>,
    /// Bit ranges per carry-propagate stage.
    cpa_stages: Vec<(usize, usize)>,
}

impl PipelinedMultiplier {
    /// Creates an m×n multiplier pipelined to degree `beta`
    /// (`beta == 0` means combinational).
    ///
    /// # Panics
    ///
    /// Panics on unsupported sizes (see [`BaughWooley::new`]).
    pub fn new(m: usize, n: usize, beta: usize) -> PipelinedMultiplier {
        let bw = BaughWooley::new(m, n);
        let mut csa_stages = Vec::new();
        let mut cpa_stages = Vec::new();
        if beta > 0 {
            let mut j = 0;
            while j < n {
                let end = (j + beta).min(n);
                csa_stages.push((j, end));
                j = end;
            }
            let width = m + n;
            let mut p = 0;
            while p < width {
                let end = (p + beta).min(width);
                cpa_stages.push((p, end));
                p = end;
            }
        }
        PipelinedMultiplier {
            bw,
            beta,
            csa_stages,
            cpa_stages,
        }
    }

    /// The underlying Baugh-Wooley structural model.
    pub fn baugh_wooley(&self) -> &BaughWooley {
        &self.bw
    }

    /// The pipelining degree β (0 = combinational).
    pub fn beta(&self) -> usize {
        self.beta
    }

    /// Clock cycles from operand entry to product exit. Zero for the
    /// combinational array; `⌈n/β⌉ + ⌈(m+n)/β⌉` register boundaries
    /// otherwise (measured by the structural simulation, asserted equal in
    /// tests).
    pub fn latency(&self) -> usize {
        self.csa_stages.len() + self.cpa_stages.len()
    }

    /// Total pipeline register bits — the area the register stacks cost.
    /// Grows as β shrinks; the bit-systolic version pays the most (the
    /// trade-off the paper's empirical β study iterates over).
    pub fn register_bits(&self) -> usize {
        let width = self.bw.m() + self.bw.n();
        let wave_bits = self.bw.m() + self.bw.n() + 2 * width + width + 1;
        self.latency() * wave_bits
    }

    /// Multiplies one pair through the array.
    ///
    /// # Panics
    ///
    /// Panics if operands are out of range for the configured widths.
    pub fn multiply(&self, a: i64, b: i64) -> i64 {
        self.simulate_stream(&[(a, b)])[0]
    }

    /// Streams operand pairs, one per clock, through the pipeline and
    /// returns the products in order. The simulation runs
    /// `inputs.len() + latency()` clock cycles.
    ///
    /// # Panics
    ///
    /// Panics if any operand is out of range.
    pub fn simulate_stream(&self, inputs: &[(i64, i64)]) -> Vec<i64> {
        for &(a, b) in inputs {
            assert!(self.bw.a_range().contains(&a), "a={a} out of range");
            assert!(self.bw.b_range().contains(&b), "b={b} out of range");
        }
        if self.beta == 0 {
            return inputs
                .iter()
                .map(|&(a, b)| self.combinational(a, b))
                .collect();
        }
        let width = self.bw.m() + self.bw.n();
        let stages = self.latency();
        let mut regs: Vec<Wave> = (0..stages).map(|_| Wave::bubble(width)).collect();
        let mut out = Vec::with_capacity(inputs.len());

        for cycle in 0..inputs.len() + stages {
            // Shift from the last stage backwards: each register captures
            // the combinational function of the stage before it.
            if let Some(last) = regs.last() {
                if last.valid {
                    out.push(self.read_result(last));
                }
            }
            for k in (1..stages).rev() {
                let prev = regs[k - 1].clone();
                regs[k] = self.stage(k, prev);
            }
            let input_wave = match inputs.get(cycle) {
                Some(&(a, b)) => self.inject(a, b),
                None => Wave::bubble(width),
            };
            regs[0] = self.stage(0, input_wave);
        }
        out
    }

    /// Builds the wave entering stage 0: operands plus the boundary
    /// constants pre-loaded into the carry-save sum (the "ones and zeros
    /// assigned to the unused inputs").
    fn inject(&self, a: i64, b: i64) -> Wave {
        let width = self.bw.m() + self.bw.n();
        let mut w = Wave::bubble(width);
        w.a = a;
        w.b = b;
        w.valid = true;
        for c in self.bw.constant_weights() {
            w.sum[c] ^= 1;
            // Two constants may share a weight (m == n puts them both at
            // m-1); XOR plus an explicit carry keeps the sum exact.
            if w.sum[c] == 0 {
                w.carry[c + 1] ^= 1;
            }
        }
        w
    }

    /// The combinational logic of stage `k` applied to its input wave.
    fn stage(&self, k: usize, mut w: Wave) -> Wave {
        if !w.valid {
            return w;
        }
        if k < self.csa_stages.len() {
            let (j0, j1) = self.csa_stages[k];
            for j in j0..j1 {
                self.csa_row(&mut w, j);
            }
        } else {
            let (p0, p1) = self.cpa_stages[k - self.csa_stages.len()];
            for p in p0..p1 {
                let s = w.sum[p];
                let c = w.carry[p];
                let cin = w.cpa_carry;
                let bit = s ^ c ^ cin;
                w.cpa_carry = (s & c) | (s & cin) | (c & cin);
                w.result |= (bit as u64) << p;
            }
        }
        w
    }

    /// One carry-save row: a full-width 3:2 compressor folding row j's
    /// partial products into the redundant (sum, carry) accumulator.
    /// Positions outside the row's weight span degenerate to half adders
    /// (term = 0), exactly as the physical array's pass-through cells do.
    fn csa_row(&self, w: &mut Wave, j: usize) {
        let width = self.bw.m() + self.bw.n();
        let mut new_sum = vec![0u8; width];
        let mut new_carry = vec![0u8; width];
        for p in 0..width {
            let t = if p >= j && p - j < self.bw.m() {
                self.bw.term(w.a, w.b, p - j, j)
            } else {
                0
            };
            let s = w.sum[p];
            let c = w.carry[p];
            new_sum[p] = s ^ c ^ t;
            if p + 1 < width {
                new_carry[p + 1] = (s & c) | (s & t) | (c & t);
            }
        }
        w.sum = new_sum;
        w.carry = new_carry;
    }

    fn read_result(&self, w: &Wave) -> i64 {
        let width = self.bw.m() + self.bw.n();
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let val = w.result & mask;
        let sign = 1u64 << (width - 1);
        if val & sign != 0 {
            (val as i64) - ((sign as i64) << 1)
        } else {
            val as i64
        }
    }

    /// The β = 0 array: evaluate all rows and the CPA in one "cycle".
    fn combinational(&self, a: i64, b: i64) -> i64 {
        let width = self.bw.m() + self.bw.n();
        let mut w = self.inject(a, b);
        for j in 0..self.bw.n() {
            self.csa_row(&mut w, j);
        }
        for p in 0..width {
            let s = w.sum[p];
            let c = w.carry[p];
            let cin = w.cpa_carry;
            let bit = s ^ c ^ cin;
            w.cpa_carry = (s & c) | (s & cin) | (c & cin);
            w.result |= (bit as u64) << p;
        }
        self.read_result(&w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combinational_matches_reference() {
        let m = PipelinedMultiplier::new(6, 6, 0);
        for a in m.baugh_wooley().a_range() {
            for b in m.baugh_wooley().b_range() {
                assert_eq!(m.multiply(a, b), a * b, "{a}*{b}");
            }
        }
    }

    #[test]
    fn bit_systolic_matches_reference_exhaustively() {
        let m = PipelinedMultiplier::new(4, 4, 1);
        for a in m.baugh_wooley().a_range() {
            for b in m.baugh_wooley().b_range() {
                assert_eq!(m.multiply(a, b), a * b, "{a}*{b}");
            }
        }
    }

    #[test]
    fn all_betas_agree() {
        for beta in 0..=10 {
            let m = PipelinedMultiplier::new(8, 6, beta);
            for (a, b) in [(-128, -32), (127, 31), (-77, 19), (5, -6), (0, 0)] {
                assert_eq!(m.multiply(a, b), a * b, "beta={beta} {a}*{b}");
            }
        }
    }

    #[test]
    fn latency_shrinks_with_beta() {
        // Fig 5.2: the bit-systolic version is the deepest pipeline.
        let l1 = PipelinedMultiplier::new(8, 8, 1).latency();
        let l2 = PipelinedMultiplier::new(8, 8, 2).latency();
        let l4 = PipelinedMultiplier::new(8, 8, 4).latency();
        assert!(l1 > l2 && l2 > l4, "{l1} {l2} {l4}");
        assert_eq!(l1, 8 + 16);
        assert_eq!(l2, 4 + 8);
        assert_eq!(PipelinedMultiplier::new(8, 8, 0).latency(), 0);
    }

    #[test]
    fn streaming_throughput_is_one_per_cycle() {
        // A full pipeline delivers one product per clock: N inputs produce
        // exactly N outputs after the fill latency, in order.
        let m = PipelinedMultiplier::new(6, 6, 1);
        let inputs: Vec<(i64, i64)> = (0..40)
            .map(|k| ((k % 31) - 15, ((k * 7) % 29) - 14))
            .collect();
        let outputs = m.simulate_stream(&inputs);
        assert_eq!(outputs.len(), inputs.len());
        for (k, &(a, b)) in inputs.iter().enumerate() {
            assert_eq!(outputs[k], a * b, "slot {k}");
        }
    }

    #[test]
    fn register_cost_grows_as_beta_shrinks() {
        let r1 = PipelinedMultiplier::new(8, 8, 1).register_bits();
        let r2 = PipelinedMultiplier::new(8, 8, 2).register_bits();
        let r8 = PipelinedMultiplier::new(8, 8, 8).register_bits();
        assert!(r1 > r2 && r2 > r8);
    }

    #[test]
    fn interleaved_bubbles_dont_corrupt() {
        // Simulate with a single input: everything after it is bubbles;
        // the product must still come out intact.
        let m = PipelinedMultiplier::new(5, 7, 3);
        assert_eq!(m.multiply(-16, 63), -16 * 63);
        assert_eq!(m.multiply(15, -64), 15 * -64);
    }
}
