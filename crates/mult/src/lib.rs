//! Chapter 5 workload: pipelined Baugh-Wooley array multipliers.
//!
//! The paper demonstrates the RSG on "a class of pipelined multipliers":
//! a carry-save array of two full-adder cell types implementing the
//! Baugh-Wooley signed two's-complement algorithm, pipelined to any degree
//! β by retiming, and personalized by cell masking. This crate builds:
//!
//! * [`baugh_wooley`] — the functional model: the partial-product matrix
//!   with its type I / type II cell assignment and boundary constants, and
//!   an exact reference multiply,
//! * [`pipeline`] — a cycle-accurate simulator of the retimed array for
//!   any pipelining degree β (β = 0 is the combinational array of Fig 5.1;
//!   β = 1 is the bit-systolic multiplier of Fig 5.2a; β = 2 is Fig 5.2b),
//! * [`cells`] — the synthetic leaf-cell library (basic cell, masking
//!   cells, register cells) and the sample layout with every interface
//!   labelled (Fig 5.5's role),
//! * [`generator`] — the native-API layout generator replicating the
//!   Appendix B design file's structure, plus the design-file text itself
//!   for the `rsg-lang` path ([`design_file_source`],
//!   [`parameter_file_source`]).
//!
//! # Example
//!
//! ```
//! use rsg_mult::pipeline::PipelinedMultiplier;
//!
//! // A 6×6 bit-systolic multiplier (Fig 5.2a).
//! let m = PipelinedMultiplier::new(6, 6, 1);
//! assert_eq!(m.multiply(-17, 23), -17 * 23);
//! assert!(m.latency() > 0);
//! ```
//!
//! Library code is panic-free by policy: `unwrap`/`expect` are denied
//! outside `#[cfg(test)]` (see DESIGN.md's robustness section).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(missing_docs)]

pub mod baugh_wooley;
pub mod cells;
pub mod compactor;
pub mod generator;
pub mod pipeline;

/// The multiplier design file (the cleaned-up Appendix B), ready for
/// `rsg_lang::run_design` (rsg-lang is a dev-dependency, so no link).
pub fn design_file_source() -> &'static str {
    generator::DESIGN_FILE
}

/// The matching parameter file (Appendix C) for an `xsize` × `ysize`
/// multiplier.
pub fn parameter_file_source(xsize: usize, ysize: usize) -> String {
    generator::parameter_file(xsize, ysize)
}
