//! Multiplier layout generation: the native-API port of the Appendix B
//! design file, plus the design file itself for the interpreter path.
//!
//! Both paths build the same hierarchy:
//!
//! * `array` — the xsize × ysize personalized core array (macro `m2darray`),
//! * `topregs`, `bottomregs`, `rightregs` — the peripheral register stacks,
//! * `thewholething` — the complete multiplier, assembled through
//!   *inherited* interfaces (no additional layout, §2.5).
//!
//! The personalization rules follow the paper's Chapter 5 list: cell type
//! (I/II by array position), clock assignment (by column parity), carry
//! interface masks, and top masks, with register direction masks on the
//! right stack.

use crate::cells::{sample_layout, PITCH};
use rsg_core::{NodeId, Rsg, RsgError};
use rsg_layout::CellId;

/// A generated multiplier layout.
#[derive(Debug)]
pub struct MultiplierLayout {
    /// The generator holding all built cells.
    pub rsg: Rsg,
    /// The complete multiplier cell (`thewholething`).
    pub top: CellId,
    /// The inner array cell.
    pub array: CellId,
}

/// Builds an `xsize × ysize` bit-systolic multiplier layout with the
/// native API (no interpreter), mirroring the design file line for line.
///
/// # Errors
///
/// Propagates generator errors (all indicate internal inconsistency —
/// the sample layout provides every required interface), and
/// [`RsgError::Invalid`] if `xsize` or `ysize` is zero.
pub fn generate(xsize: usize, ysize: usize) -> Result<MultiplierLayout, RsgError> {
    generate_with(sample_layout()?, xsize, ysize)
}

/// Like [`generate`] but on a caller-provided sample layout (used by the
/// benchmarks to separate sample-reading time from generation time).
///
/// # Errors
///
/// Propagates generator errors.
pub fn generate_with(
    sample: rsg_layout::CellTable,
    xsize: usize,
    ysize: usize,
) -> Result<MultiplierLayout, RsgError> {
    if xsize == 0 || ysize == 0 {
        return Err(RsgError::Invalid(format!(
            "degenerate multiplier {xsize}x{ysize}"
        )));
    }
    let rsg = Rsg::from_sample(sample)?;
    let look = |name: &str| {
        rsg.cells()
            .lookup(name)
            .ok_or_else(|| RsgError::Layout(rsg_layout::LayoutError::UnknownCell(name.into())))
    };
    let basic = look("basic")?;
    let typei = look("typei")?;
    let typeii = look("typeii")?;
    let clock1 = look("clock1")?;
    let clock2 = look("clock2")?;
    let carry1 = look("carry1")?;
    let carry2 = look("carry2")?;
    let topm1 = look("topm1")?;
    let topm2 = look("topm2")?;
    let topreg = look("topreg")?;
    let bottomreg = look("bottomreg")?;
    let rightreg = look("rightreg")?;
    let goboth = look("goboth")?;
    let goleft = look("goleft")?;
    let goright = look("goright")?;
    let mut rsg = rsg;

    // --- macro mcell: one personalized core cell ----------------------
    let mcell = |rsg: &mut Rsg, xloc: usize, yloc: usize| -> Result<NodeId, RsgError> {
        let c = rsg.mk_instance(basic);
        // Cell type: type II on the right column and bottom row, except
        // the corner (Appendix B's cond ladder).
        let type_mask = if xloc == xsize {
            if yloc == ysize {
                typei
            } else {
                typeii
            }
        } else if yloc == ysize {
            typeii
        } else {
            typei
        };
        let t = rsg.mk_instance(type_mask);
        rsg.connect(c, t, 1)?;
        // Clock assignment by column parity.
        let clk = rsg.mk_instance(if xloc.is_multiple_of(2) {
            clock1
        } else {
            clock2
        });
        rsg.connect(c, clk, 1)?;
        // Carry interface mask: the left column differs.
        let car = rsg.mk_instance(if xloc == 1 { carry2 } else { carry1 });
        rsg.connect(c, car, 1)?;
        // Top mask: last row differs.
        let top = rsg.mk_instance(if yloc == ysize { topm2 } else { topm1 });
        rsg.connect(c, top, 1)?;
        Ok(c)
    };

    // --- macro mline + m2darray ---------------------------------------
    let mut rows: Vec<Vec<NodeId>> = Vec::with_capacity(ysize);
    for yloc in 1..=ysize {
        let mut row = Vec::with_capacity(xsize);
        for xloc in 1..=xsize {
            let c = mcell(&mut rsg, xloc, yloc)?;
            if let Some(&prev) = row.last() {
                rsg.connect(prev, c, 1)?; // hinum
            }
            row.push(c);
        }
        if let Some(prev_row) = rows.last() {
            rsg.connect(prev_row[0], row[0], 2)?; // vinum
        }
        rows.push(row);
    }
    let topleft = rows[0][0];
    let topright = rows[0][xsize - 1];
    let bottomleft = rows[ysize - 1][0];
    let array = rsg.mk_cell("array", topleft)?;

    // --- register stack macros -----------------------------------------
    let reg_row = |rsg: &mut Rsg, cell: CellId, n: usize| -> Result<Vec<NodeId>, RsgError> {
        let mut nodes = Vec::with_capacity(n);
        for _ in 0..n {
            let r = rsg.mk_instance(cell);
            if let Some(&prev) = nodes.last() {
                rsg.connect(prev, r, 1)?;
            }
            nodes.push(r);
        }
        Ok(nodes)
    };
    let tregs = reg_row(&mut rsg, topreg, xsize)?;
    let topregs_cell = rsg.mk_cell("topregs", tregs[0])?;
    let bregs = reg_row(&mut rsg, bottomreg, xsize)?;
    let bottomregs_cell = rsg.mk_cell("bottomregs", bregs[0])?;

    // Right stack with direction masks (the assdirection personality).
    let mut rregs = Vec::with_capacity(ysize);
    for i in 1..=ysize {
        let r = rsg.mk_instance(rightreg);
        if let Some(&prev) = rregs.last() {
            rsg.connect(prev, r, 1)?;
        }
        let mask = if i == 1 {
            goboth
        } else if i % 2 == 0 {
            goleft
        } else {
            goright
        };
        let m = rsg.mk_instance(mask);
        rsg.connect(r, m, 1)?;
        rregs.push(r);
    }
    let rightregs_cell = rsg.mk_cell("rightregs", rregs[0])?;

    // --- macro mall: inheritance + assembly -----------------------------
    rsg.declare_interface(topregs_cell, array, 1, tregs[0], topleft, 1)?;
    rsg.declare_interface(array, bottomregs_cell, 1, bottomleft, bregs[0], 1)?;
    rsg.declare_interface(array, rightregs_cell, 1, topright, rregs[0], 1)?;

    let tri = rsg.mk_instance(topregs_cell);
    let arrayi = rsg.mk_instance(array);
    let bri = rsg.mk_instance(bottomregs_cell);
    let rri = rsg.mk_instance(rightregs_cell);
    rsg.connect(tri, arrayi, 1)?;
    rsg.connect(arrayi, bri, 1)?;
    rsg.connect(arrayi, rri, 1)?;
    let top = rsg.mk_cell("thewholething", arrayi)?;

    Ok(MultiplierLayout { rsg, top, array })
}

/// Expected pitch-grid x coordinate of array column `xloc` (1-based).
pub fn column_x(xloc: usize) -> i64 {
    (xloc as i64 - 1) * PITCH
}

/// Expected pitch-grid y coordinate of array row `yloc` (1-based; rows
/// grow downward as in the paper's figures).
pub fn row_y(yloc: usize) -> i64 {
    -((yloc as i64 - 1) * PITCH)
}

/// The multiplier design file: a cleaned-up version of the paper's
/// Appendix B, runnable by `rsg-lang`.
pub const DESIGN_FILE: &str = r#"
; Design file for a bit-systolic Baugh-Wooley multiplier.
; Cleaned-up reproduction of Appendix B of Bamji's 1985 thesis.

(macro mcell (xsize ysize xloc yloc)
  (locals c foo)
  (mk_instance c corecell)
  (cond ((= xsize xloc)
         (cond ((= ysize yloc) (connect c (mk_instance foo typei) t1inum))
               (true (connect c (mk_instance foo typeii) t2inum))))
        (true (cond ((= ysize yloc) (connect c (mk_instance foo typeii) t2inum))
                    (true (connect c (mk_instance foo typei) t1inum)))))
  (cond ((= (mod xloc 2) 0) (connect c (mk_instance foo clock1) clk1inum))
        (true (connect c (mk_instance foo clock2) clk2inum)))
  (cond ((= xloc 1) (connect c (mk_instance foo carry2) car2inum))
        (true (connect c (mk_instance foo carry1) car1inum)))
  (cond ((= yloc ysize) (connect c (mk_instance foo topm2) top2inum))
        (true (connect c (mk_instance foo topm1) top1inum))))

(macro mline (xsize ysize currentline)
  (locals l ref lastref)
  (assign l.1 (mcell xsize ysize 1 currentline))
  (setq ref (subcell l.1 c))
  (do (i 2 (+ i 1) (> i xsize))
    (assign l.i (mcell xsize ysize i currentline))
    (connect (subcell l.(- i 1) c) (subcell l.i c) hinum))
  (setq lastref (subcell l.xsize c)))

(macro m2darray (xsize ysize)
  (locals cl topleft topright bottomleft)
  (assign cl.1 (mline xsize ysize 1))
  (setq topleft (subcell cl.1 ref))
  (setq topright (subcell cl.1 lastref))
  (do (i 2 (+ i 1) (> i ysize))
    (assign cl.i (mline xsize ysize i))
    (connect (subcell cl.(- i 1) ref) (subcell cl.i ref) vinum))
  (setq bottomleft (subcell cl.ysize ref))
  (mk_cell mularrayname topleft))

(macro mtopregs (size)
  (locals l tmp ref)
  (assign l.1 (mk_instance tmp topregcell))
  (setq ref l.1)
  (do (i 2 (+ i 1) (> i size))
    (assign l.i (mk_instance tmp topregcell))
    (connect l.(- i 1) l.i topreghinum))
  (mk_cell topregisters ref))

(macro mbottomregs (size)
  (locals l tmp ref)
  (assign l.1 (mk_instance tmp bottomregcell))
  (setq ref l.1)
  (do (i 2 (+ i 1) (> i size))
    (assign l.i (mk_instance tmp bottomregcell))
    (connect l.(- i 1) l.i bottomreghinum))
  (mk_cell bottomregisters ref))

(macro mrightregs (size)
  (locals l tmp foo ref)
  (assign l.1 (mk_instance tmp rightregcell))
  (setq ref l.1)
  (connect l.1 (mk_instance foo goboth) rregmaskinum)
  (do (i 2 (+ i 1) (> i size))
    (assign l.i (mk_instance tmp rightregcell))
    (connect l.(- i 1) l.i rightregvinum)
    (cond ((= (mod i 2) 0) (connect l.i (mk_instance foo goleft) rregmaskinum))
          (true (connect l.i (mk_instance foo goright) rregmaskinum))))
  (mk_cell rightregisters ref))

(macro mall (xsize ysize)
  (locals arrayfoo tregs bregs rregs tri arrayi bri rri)
  (setq arrayfoo (m2darray xsize ysize))
  (setq tregs (mtopregs xsize))
  (setq bregs (mbottomregs xsize))
  (setq rregs (mrightregs ysize))
  (declare_interface topregistername arrayname 1
    (subcell tregs ref) (subcell arrayfoo topleft) celltotopreginum)
  (declare_interface arrayname bottomregistername 1
    (subcell arrayfoo bottomleft) (subcell bregs ref) celltobottomreginum)
  (declare_interface arrayname rightregistername 1
    (subcell arrayfoo topright) (subcell rregs ref) celltorightreginum)
  (mk_instance tri topregistername)
  (mk_instance arrayi arrayname)
  (mk_instance bri bottomregistername)
  (mk_instance rri rightregistername)
  (connect tri arrayi 1)
  (connect arrayi bri 1)
  (connect arrayi rri 1)
  (mk_cell "thewholething" arrayi))

(mall xsize ysize)
"#;

/// Builds the Appendix-C-style parameter file for an `xsize × ysize`
/// multiplier.
pub fn parameter_file(xsize: usize, ysize: usize) -> String {
    format!(
        "\
.example_file:multiplier.rsgl
xsize={xsize}
ysize={ysize}
corecell=basic
topregcell=topreg
bottomregcell=bottomreg
rightregcell=rightreg
mularrayname=\"array\"
arrayname=array
topregisters=\"topregs\"
topregistername=topregs
bottomregisters=\"bottomregs\"
bottomregistername=bottomregs
rightregisters=\"rightregs\"
rightregistername=rightregs
hinum=1
vinum=2
t1inum=1
t2inum=1
clk1inum=1
clk2inum=1
car1inum=1
car2inum=1
top1inum=1
top2inum=1
topreghinum=1
bottomreghinum=1
rightregvinum=1
rregmaskinum=1
celltotopreginum=1
celltobottomreginum=1
celltorightreginum=1
"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::{REG_HEIGHT, REG_WIDTH};
    use rsg_geom::Point;
    use rsg_layout::stats::LayoutStats;

    #[test]
    fn array_cell_counts() {
        let out = generate(6, 6).unwrap();
        let def = out.rsg.cells().require(out.array).unwrap();
        // 36 basics + 36 type + 36 clock + 36 carry + 36 top masks.
        assert_eq!(def.instances().count(), 5 * 36);
    }

    #[test]
    fn array_positions_form_the_grid() {
        let out = generate(4, 3).unwrap();
        let def = out.rsg.cells().require(out.array).unwrap();
        let basic = out.rsg.cells().lookup("basic").unwrap();
        let pts: Vec<Point> = def
            .instances()
            .filter(|i| i.cell == basic)
            .map(|i| i.point_of_call)
            .collect();
        assert_eq!(pts.len(), 12);
        for yloc in 1..=3 {
            for xloc in 1..=4 {
                let want = Point::new(column_x(xloc), row_y(yloc));
                assert!(pts.contains(&want), "missing {want}");
            }
        }
    }

    #[test]
    fn personalization_masks_follow_the_rules() {
        let out = generate(5, 4).unwrap();
        let cells = out.rsg.cells();
        let def = cells.require(out.array).unwrap();
        let typei = cells.lookup("typei").unwrap();
        let typeii = cells.lookup("typeii").unwrap();
        // Type II count = right column + bottom row − corner... the corner
        // is type I, so (ysize−1) + (xsize−1) = 7 type II masks.
        let n_ii = def.instances().filter(|i| i.cell == typeii).count();
        assert_eq!(n_ii, (5 - 1) + (4 - 1));
        let n_i = def.instances().filter(|i| i.cell == typei).count();
        assert_eq!(n_i, 5 * 4 - n_ii);
        // Type mask of the corner cell sits at the corner position.
        let corner = Point::new(column_x(5), row_y(4));
        assert!(def
            .instances()
            .any(|i| i.cell == typei && i.point_of_call == corner));
    }

    #[test]
    fn register_stacks_land_on_the_periphery() {
        let out = generate(6, 6).unwrap();
        let cells = out.rsg.cells();
        let top = cells.require(out.top).unwrap();
        assert_eq!(top.instances().count(), 4);
        let find = |name: &str| {
            let id = cells.lookup(name).unwrap();
            top.instances()
                .find(|i| i.cell == id)
                .map(|i| i.point_of_call)
                .unwrap()
        };
        assert_eq!(find("array"), Point::new(0, 0));
        assert_eq!(find("topregs"), Point::new(0, PITCH));
        assert_eq!(find("bottomregs"), Point::new(0, row_y(6) - REG_HEIGHT));
        assert_eq!(find("rightregs"), Point::new(column_x(6) + PITCH, 0));
        let _ = REG_WIDTH;
    }

    #[test]
    fn whole_multiplier_stats() {
        let out = generate(6, 6).unwrap();
        let stats = LayoutStats::compute(out.rsg.cells(), out.top).unwrap();
        // 4 macro instances + 180 array objects + 6 + 6 + 12 register objects.
        assert_eq!(stats.total_instances, 4 + 180 + 6 + 6 + 12);
        assert_eq!(stats.max_depth, 2);
        // Bounding box: x from 0 to 6*40+20 (right regs), y from
        // -5*40-20 (bottom regs) to 40+20 (top regs).
        let bb = stats.bbox.rect().unwrap();
        assert_eq!(bb.hi().x, column_x(6) + PITCH + REG_WIDTH);
        assert_eq!(bb.hi().y, PITCH + REG_HEIGHT);
        assert_eq!(bb.lo().y, row_y(6) - REG_HEIGHT);
        assert_eq!(bb.lo().x, 0);
    }

    #[test]
    fn rectangular_sizes_work() {
        for (xs, ys) in [(1, 1), (2, 5), (9, 3), (16, 16)] {
            let out = generate(xs, ys).unwrap();
            let def = out.rsg.cells().require(out.array).unwrap();
            assert_eq!(def.instances().count(), 5 * xs * ys, "{xs}x{ys}");
        }
    }

    #[test]
    fn exports_cleanly() {
        let out = generate(3, 3).unwrap();
        let cif = rsg_layout::write_cif(out.rsg.cells(), out.top).unwrap();
        assert!(cif.contains("thewholething"));
        let rsgl = rsg_layout::write_rsgl(out.rsg.cells(), out.top).unwrap();
        let (reread, reread_top) = rsg_layout::read_rsgl(&rsgl).unwrap();
        let s1 = LayoutStats::compute(out.rsg.cells(), out.top).unwrap();
        let s2 = LayoutStats::compute(&reread, reread_top).unwrap();
        assert_eq!(s1.total_boxes, s2.total_boxes);
        assert_eq!(s1.bbox, s2.bbox);
    }
}
