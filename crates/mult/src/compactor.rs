//! Leaf compaction of the multiplier cell library (§6.1 applied to the
//! Chapter 5 cells).
//!
//! An n×n multiplier instantiates the basic cell n² times; the paper's
//! point is that compacting `basic` once — with the array pitch λ as an
//! unknown — replaces n² compactions. The core array and the register
//! stacks are independent constraint systems, so they form separate
//! [`LibraryJob`]s for the parallel batch compactor.

use crate::cells::{PITCH, REG_HEIGHT};
use rsg_compact::backend::Solver;
use rsg_compact::leaf::{
    compact_batch, CompactionResult, LeafError, LeafInterface, LibraryJob, Parallelism, PitchKind,
};
use rsg_layout::DesignRules;

/// The independent compaction jobs of the multiplier library: the core
/// array cell under its horizontal pitch + vertical abutment, and the
/// top/bottom register stacks under the same horizontal pitch.
pub fn library_jobs() -> Vec<LibraryJob> {
    let sample = crate::cells::sample_layout();
    let cell = |name: &str| {
        sample
            .get(sample.lookup(name).expect("sample cell"))
            .expect("defined")
            .clone()
    };
    let core = LibraryJob {
        cells: vec![cell("basic")],
        interfaces: vec![
            LeafInterface {
                cell_a: 0,
                cell_b: 0,
                // Weight = expected replication (a 32×32 array has 32
                // columns per row).
                kind: PitchKind::VariableX {
                    initial: PITCH,
                    weight: 32,
                },
                y_offset: 0,
                name: "array_pitch".into(),
            },
            LeafInterface {
                cell_a: 0,
                cell_b: 0,
                kind: PitchKind::FixedX(0),
                y_offset: -PITCH,
                name: "array_row".into(),
            },
        ],
    };
    let registers = LibraryJob {
        cells: vec![cell("topreg"), cell("bottomreg")],
        interfaces: vec![
            LeafInterface {
                cell_a: 0,
                cell_b: 0,
                kind: PitchKind::VariableX {
                    initial: PITCH,
                    weight: 4,
                },
                y_offset: 0,
                name: "topreg_pitch".into(),
            },
            LeafInterface {
                cell_a: 1,
                cell_b: 1,
                kind: PitchKind::VariableX {
                    initial: PITCH,
                    weight: 4,
                },
                y_offset: 0,
                name: "bottomreg_pitch".into(),
            },
            LeafInterface {
                cell_a: 0,
                cell_b: 1,
                kind: PitchKind::FixedX(0),
                y_offset: -REG_HEIGHT,
                name: "reg_stack".into(),
            },
        ],
    };
    vec![core, registers]
}

/// Compacts the multiplier library for a target technology through any
/// backend, fanning the independent jobs out per [`Parallelism`].
///
/// # Errors
///
/// Returns the first [`LeafError`] any job produced.
pub fn compact_library(
    rules: &DesignRules,
    solver: &dyn Solver,
    parallelism: Parallelism,
) -> Result<Vec<CompactionResult>, LeafError> {
    compact_batch(&library_jobs(), rules, solver, parallelism)
        .into_iter()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_compact::backend::{Balanced, BellmanFord};
    use rsg_layout::Technology;

    #[test]
    fn core_pitch_never_exceeds_sample() {
        let tech = Technology::mead_conway(2);
        let out = compact_library(&tech.rules, &BellmanFord::SORTED, Parallelism::Auto).unwrap();
        let core = &out[0];
        let (name, pitch) = &core.pitches[0];
        assert_eq!(name, "array_pitch");
        assert!(*pitch > 0 && *pitch <= PITCH, "array pitch {pitch}");
    }

    #[test]
    fn backends_and_parallelism_agree() {
        let tech = Technology::mead_conway(2);
        let serial =
            compact_library(&tech.rules, &BellmanFord::SORTED, Parallelism::Serial).unwrap();
        let parallel =
            compact_library(&tech.rules, &BellmanFord::SORTED, Parallelism::Threads(2)).unwrap();
        assert_eq!(serial, parallel);
        // The balanced backend solves the same pitches (positions may
        // differ inside the solved pitch).
        let balanced = compact_library(&tech.rules, &Balanced, Parallelism::Auto).unwrap();
        for (a, b) in serial.iter().zip(&balanced) {
            assert_eq!(a.pitches, b.pitches);
        }
    }
}
