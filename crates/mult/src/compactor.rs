//! Leaf compaction of the multiplier cell library (§6.1 applied to the
//! Chapter 5 cells).
//!
//! An n×n multiplier instantiates the basic cell n² times; the paper's
//! point is that compacting `basic` once — with the array pitch λ as an
//! unknown — replaces n² compactions. The core array and the register
//! stacks are independent constraint systems, so they form separate
//! [`LibraryJob`]s for the parallel batch compactor.

use crate::cells::{PITCH, REG_HEIGHT};
use rsg_compact::backend::Solver;
use rsg_compact::hier::{self, ChipCompaction, HierOptions};
use rsg_compact::incremental::CompactSession;
use rsg_compact::leaf::{
    compact_batch, CompactionResult, LeafInterface, LibraryJob, Parallelism, PitchKind,
};
use rsg_core::RsgError;
use rsg_layout::{CellDefinition, CellId, CellTable, DesignRules, LayoutError};
use rsg_serve::{JobOutput, JobQueue, JobSpec, ServeError};

/// The independent compaction jobs of the multiplier library: the core
/// array cell under its horizontal pitch + vertical abutment, and the
/// top/bottom register stacks under the same horizontal pitch.
///
/// # Errors
///
/// Propagates sample-layout construction errors.
pub fn library_jobs() -> Result<Vec<LibraryJob>, RsgError> {
    let sample = crate::cells::sample_layout()?;
    let cell = |name: &str| -> Result<CellDefinition, RsgError> {
        let id = sample
            .lookup(name)
            .ok_or_else(|| RsgError::Layout(LayoutError::UnknownCell(name.into())))?;
        Ok(sample.require(id)?.clone())
    };
    let core = LibraryJob {
        cells: vec![cell("basic")?],
        interfaces: vec![
            LeafInterface {
                cell_a: 0,
                cell_b: 0,
                // Weight = expected replication (a 32×32 array has 32
                // columns per row).
                kind: PitchKind::VariableX {
                    initial: PITCH,
                    weight: 32,
                },
                y_offset: 0,
                name: "array_pitch".into(),
            },
            LeafInterface {
                cell_a: 0,
                cell_b: 0,
                kind: PitchKind::FixedX(0),
                y_offset: -PITCH,
                name: "array_row".into(),
            },
        ],
    };
    let registers = LibraryJob {
        cells: vec![cell("topreg")?, cell("bottomreg")?],
        interfaces: vec![
            LeafInterface {
                cell_a: 0,
                cell_b: 0,
                kind: PitchKind::VariableX {
                    initial: PITCH,
                    weight: 4,
                },
                y_offset: 0,
                name: "topreg_pitch".into(),
            },
            LeafInterface {
                cell_a: 1,
                cell_b: 1,
                kind: PitchKind::VariableX {
                    initial: PITCH,
                    weight: 4,
                },
                y_offset: 0,
                name: "bottomreg_pitch".into(),
            },
            LeafInterface {
                cell_a: 0,
                cell_b: 1,
                kind: PitchKind::FixedX(0),
                y_offset: -REG_HEIGHT,
                name: "reg_stack".into(),
            },
        ],
    };
    Ok(vec![core, registers])
}

/// Compacts the multiplier library for a target technology through any
/// backend, fanning the independent jobs out per [`Parallelism`].
///
/// # Errors
///
/// Returns the first error any job produced.
pub fn compact_library(
    rules: &DesignRules,
    solver: &dyn Solver,
    parallelism: Parallelism,
) -> Result<Vec<CompactionResult>, RsgError> {
    compact_batch(&library_jobs()?, rules, solver, parallelism)
        .into_iter()
        .collect::<Result<_, _>>()
        .map_err(RsgError::from)
}

/// Compacts an assembled multiplier end to end: the leaf pass compacts
/// the library cells once, then the hier pass re-places every assembly
/// level — `array`, the register stacks, and `thewholething` — against
/// the compacted cells' interface abstracts, bottom-up and without
/// flattening. The array rows/columns stay pitch-matched through the
/// shared λ classes.
///
/// `table`/`top` come from [`crate::generator::generate`] (pass
/// `out.rsg.cells()` and `out.top`).
///
/// # Errors
///
/// Returns [`RsgError`] when either pass fails.
pub fn compact_chip(
    table: &CellTable,
    top: CellId,
    rules: &DesignRules,
    solver: &dyn Solver,
    parallelism: Parallelism,
) -> Result<ChipCompaction, RsgError> {
    let leaf = compact_library(rules, solver, parallelism)?;
    let opts = HierOptions {
        parallelism,
        ..HierOptions::default()
    };
    hier::compact_chip_with_library(table, top, leaf, rules, solver, &opts).map_err(RsgError::from)
}

/// [`compact_chip`] through a persistent [`CompactSession`]: after an
/// edit (say, swapping one control mask in a register cell) only the
/// definitions that can see the edit — the edited leaf's job, its parent
/// register stack, and the top cell — are recompacted; the n² core array
/// replays from the cache. Results are bit-identical to [`compact_chip`]
/// on the same input at every `parallelism` setting.
///
/// # Errors
///
/// Returns [`RsgError`] when either pass fails.
pub fn compact_chip_session(
    session: &mut CompactSession,
    table: &CellTable,
    top: CellId,
    rules: &DesignRules,
    solver: &dyn Solver,
    parallelism: Parallelism,
) -> Result<ChipCompaction, RsgError> {
    let opts = HierOptions {
        parallelism,
        ..HierOptions::default()
    };
    session
        .compact_chip_with_library(table, top, &library_jobs()?, rules, solver, &opts)
        .map_err(RsgError::from)
}

/// [`compact_chip`] through a [`JobQueue`]: the whole-chip job (library
/// included) is content-addressed, so resubmitting an unchanged
/// multiplier is served from the queue's on-disk store with **zero**
/// solver invocations and byte-identical CIF, while an edited
/// personality misses and runs through a worker's persistent session.
/// Rules, solver, and options come from the queue's
/// [`rsg_serve::ServeConfig`] — they are part of the store key.
///
/// # Errors
///
/// [`ServeError::Client`] when the library jobs cannot be built;
/// otherwise whatever the served job produced.
pub fn compact_chip_served(
    queue: &JobQueue,
    table: &CellTable,
    top: CellId,
) -> Result<JobOutput, ServeError> {
    let library =
        library_jobs().map_err(|e| ServeError::Client(format!("mult library jobs: {e}")))?;
    let id = queue.submit(JobSpec::Chip {
        table: table.clone(),
        top,
        library,
    })?;
    queue.fetch(id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_compact::backend::{Balanced, BellmanFord};
    use rsg_layout::Technology;

    #[test]
    fn core_pitch_never_exceeds_sample() {
        let tech = Technology::mead_conway(2);
        let out = compact_library(&tech.rules, &BellmanFord::SORTED, Parallelism::Auto).unwrap();
        let core = &out[0];
        let (name, pitch) = &core.pitches[0];
        assert_eq!(name, "array_pitch");
        assert!(*pitch > 0 && *pitch <= PITCH, "array pitch {pitch}");
    }

    #[test]
    fn backends_and_parallelism_agree() {
        let tech = Technology::mead_conway(2);
        let serial =
            compact_library(&tech.rules, &BellmanFord::SORTED, Parallelism::Serial).unwrap();
        let parallel =
            compact_library(&tech.rules, &BellmanFord::SORTED, Parallelism::Threads(2)).unwrap();
        assert_eq!(serial, parallel);
        // The balanced backend solves the same pitches (positions may
        // differ inside the solved pitch).
        let balanced = compact_library(&tech.rules, &Balanced, Parallelism::Auto).unwrap();
        for (a, b) in serial.iter().zip(&balanced) {
            assert_eq!(a.pitches, b.pitches);
        }
    }

    #[test]
    fn compact_chip_compacts_every_level_without_flattening() {
        let tech = Technology::mead_conway(2);
        let out = crate::generator::generate(4, 4).unwrap();
        let chip = compact_chip(
            out.rsg.cells(),
            out.top,
            &tech.rules,
            &BellmanFord::SORTED,
            Parallelism::Auto,
        )
        .unwrap();

        // Every assembly level compacted, bottom-up: the array and the
        // register stacks before the top cell.
        let names: Vec<&str> = chip.chip.cells.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"array"));
        assert_eq!(names.last(), Some(&"thewholething"));
        assert!(chip.chip.cells.iter().all(|(_, o)| o.converged));

        // The hierarchy survives — the top cell still holds 4 instances,
        // nothing was flattened into boxes.
        let top_def = chip.chip.table.require(chip.chip.top).unwrap();
        assert_eq!(top_def.instances().count(), 4);
        assert_eq!(top_def.boxes().count(), 0);

        // Flatten only to verify: clean and smaller.
        let before = rsg_layout::flatten(out.rsg.cells(), out.top).unwrap();
        let after = rsg_layout::flatten(&chip.chip.table, chip.chip.top).unwrap();
        assert!(rsg_layout::drc::check_flat(&after, &tech.rules).is_empty());
        let (b, a) = (before.bbox().rect().unwrap(), after.bbox().rect().unwrap());
        assert!(a.width() * a.height() < b.width() * b.height());

        // The array stays pitch-matched: one uniform column pitch.
        let array_id = chip.chip.table.lookup("array").unwrap();
        let basic_id = chip.chip.table.lookup("basic").unwrap();
        let array_def = chip.chip.table.require(array_id).unwrap();
        let mut rows: std::collections::BTreeMap<i64, Vec<i64>> = Default::default();
        for inst in array_def.instances().filter(|i| i.cell == basic_id) {
            rows.entry(inst.point_of_call.y)
                .or_default()
                .push(inst.point_of_call.x);
        }
        let mut gaps = Vec::new();
        for xs in rows.values_mut() {
            xs.sort_unstable();
            gaps.extend(xs.windows(2).map(|w| w[1] - w[0]));
        }
        assert!(gaps.windows(2).all(|w| w[0] == w[1]), "{gaps:?}");
        let outcome = chip.chip.outcome("array").unwrap();
        let lambda = outcome
            .pitches
            .iter()
            .find(|p| p.axis == rsg_geom::Axis::X)
            .unwrap()
            .value;
        assert_eq!(gaps[0], lambda);
        assert!(lambda < crate::cells::PITCH, "array pitch must shrink");
    }
}
