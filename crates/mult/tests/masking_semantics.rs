//! Cell-masking semantics (paper §2.3 / Fig 5.3): encoding cells lie
//! inside the bounding box of the cell they encode, superimpose cleanly,
//! and "the number of different encoding configurations is roughly
//! exponential in the number of independent encoding decisions" — checked
//! by enumerating the personalities the generator actually emits.

use rsg_geom::Rect;
use rsg_layout::{flatten, Layer};
use rsg_mult::cells::{BASIC_MASKS, PITCH};
use rsg_mult::generator::generate;
use std::collections::HashSet;

#[test]
fn every_cell_gets_one_mask_per_decision() {
    // 4 independent decisions (type, clock, carry, top) → each core cell
    // carries exactly 4 masks.
    let out = generate(5, 4).unwrap();
    let cells = out.rsg.cells();
    let def = cells.require(out.array).unwrap();
    let basic = cells.lookup("basic").unwrap();
    let mask_ids: Vec<_> = BASIC_MASKS
        .iter()
        .map(|n| cells.lookup(n).unwrap())
        .collect();
    for core in def.instances().filter(|i| i.cell == basic) {
        let masks_here = def
            .instances()
            .filter(|i| i.point_of_call == core.point_of_call && mask_ids.contains(&i.cell))
            .count();
        assert_eq!(masks_here, 4, "core at {}", core.point_of_call);
    }
}

#[test]
fn personalities_cover_the_expected_combinations() {
    // Across a 6×6 array the generator uses 2 type × 2 clock × 2 carry ×
    // 2 top = up to 16 personalities; the actual rules hit a specific
    // subset — enumerate and sanity-check it.
    let out = generate(6, 6).unwrap();
    let cells = out.rsg.cells();
    let def = cells.require(out.array).unwrap();
    let basic = cells.lookup("basic").unwrap();
    let mask_ids: Vec<_> = BASIC_MASKS
        .iter()
        .map(|n| cells.lookup(n).unwrap())
        .collect();

    let mut personalities = HashSet::new();
    for core in def.instances().filter(|i| i.cell == basic) {
        let mut combo: Vec<&str> = def
            .instances()
            .filter(|i| i.point_of_call == core.point_of_call && mask_ids.contains(&i.cell))
            .map(|i| BASIC_MASKS[mask_ids.iter().position(|&m| m == i.cell).expect("mask")])
            .collect();
        combo.sort_unstable();
        personalities.insert(combo);
    }
    // Column parity × (left column or not) × (bottom row or not) ×
    // (right column or not) interact: at least 6 distinct personalities
    // appear in a 6×6, at most 16.
    assert!(personalities.len() >= 6, "{personalities:?}");
    assert!(personalities.len() <= 16);
}

#[test]
fn masks_superimpose_without_layer_conflicts() {
    // Flatten one personalized cell region and check the masking boxes
    // do not overlap each other (Fig 5.3's maskings occupy disjoint
    // spots) though they all overlap the basic cell.
    let out = generate(2, 2).unwrap();
    let flat = flatten(out.rsg.cells(), out.array).unwrap();
    // Metal2 carries type + carry masks; ensure no two metal2 boxes
    // overlap (each cell has one type and one carry mask at disjoint
    // in-cell positions).
    let m2: Vec<Rect> = flat
        .iter()
        .filter(|b| b.layer == Layer::Metal2)
        .map(|b| b.rect)
        .collect();
    for (i, a) in m2.iter().enumerate() {
        for b in &m2[i + 1..] {
            assert!(!a.overlaps(*b), "{a} vs {b}");
        }
    }
}

#[test]
fn encoding_is_purely_additive() {
    // Paper §2.3: encoding superimposes material; removing all mask
    // instances leaves exactly the unpersonalized array. The flat box
    // count difference equals the mask instance count (1 box per mask).
    let out = generate(3, 3).unwrap();
    let cells = out.rsg.cells();
    let def = cells.require(out.array).unwrap();
    let basic = cells.lookup("basic").unwrap();
    let basic_boxes = cells.require(basic).unwrap().boxes().count();
    let n_core = def.instances().filter(|i| i.cell == basic).count();
    let n_masks = def.instances().count() - n_core;
    let flat = flatten(cells, out.array).unwrap();
    assert_eq!(flat.len(), n_core * basic_boxes + n_masks);
}

#[test]
fn interface_table_is_closed_over_generation() {
    // Everything the generator needed came from the sample: re-running on
    // the same sample with different sizes never adds primitive
    // interfaces, only the three inherited ones per run.
    let small = generate(2, 2).unwrap();
    let large = generate(9, 7).unwrap();
    assert_eq!(small.rsg.interfaces().len(), large.rsg.interfaces().len());
    let _ = PITCH;
}
