//! Property tests for experiment E7: every pipelining degree computes
//! correct products with the retiming-predicted latency.

use proptest::prelude::*;
use rsg_mult::pipeline::PipelinedMultiplier;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any (m, n, β) triple multiplies correctly on random operands.
    #[test]
    fn arbitrary_configs_multiply_correctly(
        m in 2usize..12,
        n in 2usize..12,
        beta in 0usize..6,
        seeds in proptest::collection::vec((0u64..u64::MAX, 0u64..u64::MAX), 1..8),
    ) {
        let mult = PipelinedMultiplier::new(m, n, beta);
        let amask = (1i64 << m) - 1;
        let bmask = (1i64 << n) - 1;
        let to_signed = |raw: i64, bits: usize| {
            let sign = 1i64 << (bits - 1);
            if raw & sign != 0 { raw - (sign << 1) } else { raw }
        };
        let pairs: Vec<(i64, i64)> = seeds
            .iter()
            .map(|&(sa, sb)| {
                (to_signed(sa as i64 & amask, m), to_signed(sb as i64 & bmask, n))
            })
            .collect();
        let out = mult.simulate_stream(&pairs);
        prop_assert_eq!(out.len(), pairs.len());
        for (k, &(a, b)) in pairs.iter().enumerate() {
            prop_assert_eq!(out[k], a * b, "beta={} {}x{}: {}*{}", beta, m, n, a, b);
        }
    }

    /// Latency follows the retiming formula ⌈n/β⌉ + ⌈(m+n)/β⌉.
    #[test]
    fn latency_matches_retiming_formula(m in 2usize..16, n in 2usize..16, beta in 1usize..8) {
        let mult = PipelinedMultiplier::new(m, n, beta);
        let expect = n.div_ceil(beta) + (m + n).div_ceil(beta);
        prop_assert_eq!(mult.latency(), expect);
    }

    /// Register cost is monotonically non-increasing in β.
    #[test]
    fn register_cost_monotone(m in 2usize..12, n in 2usize..12, beta in 1usize..6) {
        let shallow = PipelinedMultiplier::new(m, n, beta + 1).register_bits();
        let deep = PipelinedMultiplier::new(m, n, beta).register_bits();
        prop_assert!(deep >= shallow);
    }
}
