//! Experiment E9: the Appendix-B design file, run through the `rsg-lang`
//! interpreter, must produce exactly the layout the native generator
//! builds — same cells, same instance placements, same flat geometry.

use rsg_layout::stats::LayoutStats;
use rsg_mult::cells::sample_layout;
use rsg_mult::generator;
use rsg_mult::{design_file_source, parameter_file_source};
use std::collections::BTreeMap;

fn flat_signature(
    cells: &rsg_layout::CellTable,
    top: rsg_layout::CellId,
) -> BTreeMap<(rsg_layout::Layer, rsg_geom::Rect), usize> {
    let mut sig = BTreeMap::new();
    for b in rsg_layout::flatten(cells, top).unwrap() {
        *sig.entry((b.layer, b.rect)).or_insert(0) += 1;
    }
    sig
}

#[test]
fn interpreted_design_file_matches_native_generator() {
    for (xs, ys) in [(2, 2), (6, 6), (5, 3)] {
        let native = generator::generate(xs, ys).unwrap();

        let run = rsg_lang::run_design(
            sample_layout().unwrap(),
            design_file_source(),
            &parameter_file_source(xs, ys),
        )
        .unwrap_or_else(|e| panic!("{xs}x{ys}: {e}"));
        let top = run
            .rsg
            .cells()
            .lookup("thewholething")
            .expect("top cell built");

        let native_sig = flat_signature(native.rsg.cells(), native.top);
        let interp_sig = flat_signature(run.rsg.cells(), top);
        assert_eq!(
            native_sig, interp_sig,
            "flat geometry differs for {xs}x{ys}"
        );

        let s_native = LayoutStats::compute(native.rsg.cells(), native.top).unwrap();
        let s_interp = LayoutStats::compute(run.rsg.cells(), top).unwrap();
        assert_eq!(s_native.total_instances, s_interp.total_instances);
        assert_eq!(s_native.bbox, s_interp.bbox);
    }
}

#[test]
fn design_file_declares_inherited_interfaces() {
    let run = rsg_lang::run_design(
        sample_layout().unwrap(),
        design_file_source(),
        &parameter_file_source(4, 4),
    )
    .unwrap();
    let cells = run.rsg.cells();
    let array = cells.lookup("array").unwrap();
    let topregs = cells.lookup("topregs").unwrap();
    // The inherited interface is loaded in both directions.
    assert!(run.rsg.interfaces().get(topregs, array, 1).is_some());
    assert!(run.rsg.interfaces().get(array, topregs, 1).is_some());
}

#[test]
fn paper_fig_5_6_shape_for_6x6() {
    // Fig 5.6 is the 6×6 bit-systolic layout: 36 core cells with 4 maskings
    // each, 6 top registers, 6 bottom registers, 6 right registers.
    let run = rsg_lang::run_design(
        sample_layout().unwrap(),
        design_file_source(),
        &parameter_file_source(6, 6),
    )
    .unwrap();
    let cells = run.rsg.cells();
    let count_in = |cell_name: &str, inner: &str| -> usize {
        let holder = cells.lookup(cell_name).unwrap();
        let target = cells.lookup(inner).unwrap();
        cells
            .require(holder)
            .unwrap()
            .instances()
            .filter(|i| i.cell == target)
            .count()
    };
    assert_eq!(count_in("array", "basic"), 36);
    assert_eq!(count_in("array", "typei") + count_in("array", "typeii"), 36);
    assert_eq!(count_in("array", "clock1"), 18);
    assert_eq!(count_in("array", "clock2"), 18);
    assert_eq!(count_in("topregs", "topreg"), 6);
    assert_eq!(count_in("bottomregs", "bottomreg"), 6);
    assert_eq!(count_in("rightregs", "rightreg"), 6);
    assert_eq!(count_in("rightregs", "goboth"), 1);
}
