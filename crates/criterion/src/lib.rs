//! Offline stand-in for the `criterion` crate.
//!
//! The workspace builds in a hermetic container without registry access,
//! so the real `criterion` cannot be fetched. This crate implements the
//! subset of its API used by the `rsg-bench` suite: [`Criterion`],
//! benchmark groups, [`BenchmarkId`], `Bencher::iter`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is simple but honest: each benchmark is warmed up, then
//! timed over enough iterations to fill a fixed budget, and the median
//! per-iteration time is reported. Set the `BENCH_JSON` environment
//! variable to a path to additionally append one JSON line per benchmark
//! (`{"name": ..., "ns_per_iter": ..., "iters": ...}`), which is how
//! `BENCH_compaction.json` baselines are recorded.

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
/// Warm-up time per benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(50);

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/param`.
    pub fn new(name: impl Display, param: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// Just a parameter value.
    pub fn from_parameter(param: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

/// Drives one benchmark's timing loop.
pub struct Bencher {
    ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    /// Times `f`, storing the median per-iteration cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up while estimating cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP_BUDGET {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let est = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;

        // Measure in ~10 samples of batched iterations; report the median.
        let batch = ((MEASURE_BUDGET.as_nanos() as f64 / 10.0 / est.max(1.0)) as u64).max(1);
        let mut samples = Vec::with_capacity(10);
        let mut total_iters = 0u64;
        for _ in 0..10 {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
            total_iters += batch;
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[samples.len() / 2];
        self.iters = total_iters;
    }
}

/// One recorded measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Full benchmark path (`group/id` or bare function name).
    pub name: String,
    /// Median nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Total measured iterations.
    pub iters: u64,
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<Measurement>,
}

impl Criterion {
    /// Creates an empty driver.
    pub fn new() -> Criterion {
        Criterion::default()
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Display, mut f: F) {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            iters: 0,
        };
        f(&mut b);
        self.record(name.to_string(), b);
    }

    fn record(&mut self, name: String, b: Bencher) {
        println!("bench: {name:<50} {:>14.1} ns/iter", b.ns_per_iter);
        self.results.push(Measurement {
            name,
            ns_per_iter: b.ns_per_iter,
            iters: b.iters,
        });
    }

    /// Writes results to `$BENCH_JSON` (if set). Called automatically by
    /// [`criterion_main!`]-generated harnesses.
    pub fn final_summary(&self) {
        let Ok(path) = std::env::var("BENCH_JSON") else {
            return;
        };
        let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        else {
            eprintln!("BENCH_JSON: cannot open {path}");
            return;
        };
        for m in &self.results {
            let _ = writeln!(
                f,
                "{{\"name\": \"{}\", \"ns_per_iter\": {:.1}, \"iters\": {}}}",
                m.name.replace('"', "'"),
                m.ns_per_iter,
                m.iters
            );
        }
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            iters: 0,
        };
        f(&mut b, input);
        let name = format!("{}/{}", self.name, id.id);
        self.parent.record(name, b);
    }

    /// Runs one benchmark without input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchId, mut f: F) {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            iters: 0,
        };
        f(&mut b);
        let name = format!("{}/{}", self.name, id.into_bench_id());
        self.parent.record(name, b);
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// Conversion into a benchmark id string (accepts `&str` or [`BenchmarkId`]).
pub trait IntoBenchId {
    /// The id as a string.
    fn into_bench_id(self) -> String;
}

impl IntoBenchId for &str {
    fn into_bench_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchId for String {
    fn into_bench_id(self) -> String {
        self
    }
}

impl IntoBenchId for BenchmarkId {
    fn into_bench_id(self) -> String {
        self.id
    }
}

/// Re-export for call sites that use `criterion::black_box`.
pub use std::hint::black_box;

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::new();
            $($f(&mut c);)+
            c.final_summary();
        }
    };
}

/// Generates `main` for a bench target (use with `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
