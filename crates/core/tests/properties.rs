//! Property-based tests for the interface algebra and graph expansion
//! (experiments E4–E6 of DESIGN.md).

use proptest::prelude::*;
use rsg_core::{Interface, Rsg};
use rsg_geom::{Isometry, Orientation, Point, Rect, Vector};
use rsg_layout::{CellDefinition, Layer};

fn arb_orientation() -> impl Strategy<Value = Orientation> {
    (0usize..8).prop_map(|i| Orientation::ALL[i])
}

fn arb_isometry() -> impl Strategy<Value = Isometry> {
    (arb_orientation(), -500i64..500, -500i64..500)
        .prop_map(|(o, x, y)| Isometry::new(o, Vector::new(x, y)))
}

fn arb_interface() -> impl Strategy<Value = Interface> {
    arb_isometry().prop_map(Interface::from_isometry)
}

proptest! {
    /// I_ba = I_ab⁻¹ and double inversion is the identity (eqs. 2.3–2.4).
    #[test]
    fn interface_inversion(a in arb_isometry(), b in arb_isometry()) {
        let i_ab = Interface::between(a, b);
        prop_assert_eq!(i_ab.inverse(), Interface::between(b, a));
        prop_assert_eq!(i_ab.inverse().inverse(), i_ab);
    }

    /// Placement round-trips: deriving B from A and A from B are inverse
    /// operations (the bilaterality of §2.4).
    #[test]
    fn placement_bilateral(a in arb_isometry(), i in arb_interface()) {
        let b = i.place_second(a);
        prop_assert_eq!(i.place_first(b), a);
        prop_assert_eq!(Interface::between(a, b), i);
    }

    /// Interfaces are invariant under a common isometry of the calling
    /// cell — the equivalence-class property of §3.4.
    #[test]
    fn interface_isometry_invariance(g in arb_isometry(), a in arb_isometry(), b in arb_isometry()) {
        prop_assert_eq!(
            Interface::between(a, b),
            Interface::between(g.compose(a), g.compose(b))
        );
    }

    /// Inheritance semantics: placing C and D with the inherited interface
    /// puts the subcells A and B exactly in the original relation
    /// (Fig 2.4).
    #[test]
    fn inheritance_preserves_subcell_relation(
        i_ab in arb_interface(),
        call_ac in arb_isometry(),
        call_bd in arb_isometry(),
        call_c in arb_isometry(),
    ) {
        let i_cd = i_ab.inherit(call_ac, call_bd);
        let call_d = i_cd.place_second(call_c);
        let abs_a = call_c.compose(call_ac);
        let abs_b = call_d.compose(call_bd);
        prop_assert_eq!(Interface::between(abs_a, abs_b), i_ab);
    }

    /// Graph expansion is root-invariant modulo isometry: expanding the
    /// same chain from either end yields layouts in which every adjacent
    /// pair satisfies the declared interface (E5/E6).
    #[test]
    fn chain_expansion_respects_interfaces(
        iface in arb_interface(),
        len in 2usize..7,
        root_choice in 0usize..7,
    ) {
        let root_choice = root_choice % len;

        let mut rsg = Rsg::new();
        let mut cd = CellDefinition::new("t");
        cd.add_box(Layer::Metal1, Rect::from_coords(0, 0, 4, 4));
        let t = rsg.cells_mut().insert(cd).unwrap();
        rsg.declare_primitive_interface(t, t, 1, iface).unwrap();

        let nodes: Vec<_> = (0..len).map(|_| rsg.mk_instance(t)).collect();
        for w in nodes.windows(2) {
            rsg.connect(w[0], w[1], 1).unwrap();
        }
        rsg.mk_cell("chain", nodes[root_choice]).unwrap();

        for w in nodes.windows(2) {
            let ca = rsg.node_placement(w[0]).unwrap().isometry();
            let cb = rsg.node_placement(w[1]).unwrap().isometry();
            prop_assert_eq!(Interface::between(ca, cb), iface);
        }
        // The chosen root is at the origin, north.
        let root_call = rsg.node_placement(nodes[root_choice]).unwrap();
        prop_assert_eq!(root_call.point_of_call, Point::ORIGIN);
        prop_assert_eq!(root_call.orientation, Orientation::NORTH);
    }

    /// Grid expansion with two interfaces (horizontal + vertical) places
    /// m*n instances at the lattice points — and any spanning set of edges
    /// gives the same layout.
    #[test]
    fn grid_expansion_is_a_lattice(m in 1usize..5, n in 1usize..5, px in 1i64..40, py in 1i64..40) {
        let mut rsg = Rsg::new();
        let mut cd = CellDefinition::new("t");
        cd.add_box(Layer::Poly, Rect::from_coords(0, 0, 2, 2));
        let t = rsg.cells_mut().insert(cd).unwrap();
        rsg.declare_primitive_interface(t, t, 1, Interface::new(Vector::new(px, 0), Orientation::NORTH)).unwrap();
        rsg.declare_primitive_interface(t, t, 2, Interface::new(Vector::new(0, py), Orientation::NORTH)).unwrap();

        let mut grid = vec![vec![]; n];
        for row in grid.iter_mut() {
            *row = (0..m).map(|_| rsg.mk_instance(t)).collect();
        }
        // Spanning tree: first column vertical, every row horizontal.
        for r in 1..n {
            rsg.connect(grid[r - 1][0], grid[r][0], 2).unwrap();
        }
        for row in grid.iter() {
            for c in 1..m {
                rsg.connect(row[c - 1], row[c], 1).unwrap();
            }
        }
        rsg.mk_cell("grid", grid[0][0]).unwrap();
        for (r, row) in grid.iter().enumerate() {
            for (c, &node) in row.iter().enumerate() {
                let p = rsg.node_placement(node).unwrap().point_of_call;
                prop_assert_eq!(p, Point::new(c as i64 * px, r as i64 * py));
            }
        }
    }
}
