//! The interface table (paper §2.4).
//!
//! A mapping from `(cellname₁, cellname₂, interface index)` triplets to
//! interfaces. When `I_ab` is loaded, "`I_ba`, the corresponding interface
//! between B and A, is also loaded" — the *bilaterality* that lets graph
//! expansion derive either instance's placement from the other's.
//!
//! For two *distinct* cells both directions are stored explicitly. For a
//! cell interfaced with itself only one canonical entry `I°_aa` is stored;
//! the caller supplies the traversal direction (the directed-edge bit of
//! §3.4) and the table hands back `I°_aa` or its inverse accordingly.

use crate::{Interface, RsgError};
use rsg_layout::{CellId, CellTable};
use std::collections::HashMap;

/// Key of one interface family member: `(cell_a, cell_b, index)`.
pub type InterfaceKey = (CellId, CellId, u32);

/// The table of all legal (user-specified or inherited) interfaces.
///
/// Implemented with a hash table: "it is imperative that interface lookup
/// be fast" since expansion performs one lookup per node (paper §4.5).
#[derive(Debug, Clone, Default)]
pub struct InterfaceTable {
    map: HashMap<InterfaceKey, Interface>,
}

impl InterfaceTable {
    /// Creates an empty table.
    pub fn new() -> InterfaceTable {
        InterfaceTable::default()
    }

    /// Loads interface `index` between `a` and `b` (in that order: `a` is
    /// the reference instance deskewed to north).
    ///
    /// The reverse entry `(b, a, index) ↦ I⁻¹` is loaded automatically when
    /// `a ≠ b`. Re-declaring an identical interface is a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`RsgError::ConflictingInterface`] if the key is taken by a
    /// different interface. `cells` is used only for error messages.
    pub fn declare(
        &mut self,
        cells: &CellTable,
        a: CellId,
        b: CellId,
        index: u32,
        iface: Interface,
    ) -> Result<(), RsgError> {
        let conflict = |cells: &CellTable| RsgError::ConflictingInterface {
            cell_a: cells.get(a).map_or("?", |c| c.name()).to_owned(),
            cell_b: cells.get(b).map_or("?", |c| c.name()).to_owned(),
            index,
        };
        if let Some(existing) = self.map.get(&(a, b, index)) {
            if *existing != iface {
                return Err(conflict(cells));
            }
            return Ok(());
        }
        if a != b {
            if let Some(existing) = self.map.get(&(b, a, index)) {
                if *existing != iface.inverse() {
                    return Err(conflict(cells));
                }
            }
            self.map.insert((b, a, index), iface.inverse());
        }
        self.map.insert((a, b, index), iface);
        Ok(())
    }

    /// Looks up the interface for traversing an edge whose *tail* cell is
    /// `from` and *head* cell is `to` with index `index`.
    ///
    /// For distinct cells this is a plain lookup (both directions exist).
    /// For a same-celltype edge the stored canonical `I°_aa` is returned
    /// when traversing tail→head and its inverse when traversing
    /// head→tail — resolving the Fig 3.5 ambiguity exactly as §3.4
    /// prescribes with directed edges.
    pub fn resolve(
        &self,
        from: CellId,
        to: CellId,
        index: u32,
        along_edge_direction: bool,
    ) -> Option<Interface> {
        if from == to {
            let canonical = self.map.get(&(from, to, index))?;
            Some(if along_edge_direction {
                *canonical
            } else {
                canonical.inverse()
            })
        } else {
            self.map.get(&(from, to, index)).copied()
        }
    }

    /// Raw lookup by exact key.
    pub fn get(&self, a: CellId, b: CellId, index: u32) -> Option<Interface> {
        self.map.get(&(a, b, index)).copied()
    }

    /// Number of stored entries (counting auto-loaded inverses).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no interface is loaded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over all `(key, interface)` entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (InterfaceKey, Interface)> + '_ {
        self.map.iter().map(|(k, v)| (*k, *v))
    }

    /// All interface indices loaded between a pair of cells, sorted.
    pub fn indices_between(&self, a: CellId, b: CellId) -> Vec<u32> {
        let mut v: Vec<u32> = self
            .map
            .keys()
            .filter(|(ka, kb, _)| *ka == a && *kb == b)
            .map(|k| k.2)
            .collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_geom::{Orientation, Vector};
    use rsg_layout::CellDefinition;

    fn two_cells() -> (CellTable, CellId, CellId) {
        let mut t = CellTable::new();
        let a = t.insert(CellDefinition::new("a")).unwrap();
        let b = t.insert(CellDefinition::new("b")).unwrap();
        (t, a, b)
    }

    #[test]
    fn declare_loads_both_directions() {
        let (cells, a, b) = two_cells();
        let mut t = InterfaceTable::new();
        let i = Interface::new(Vector::new(10, 0), Orientation::SOUTH);
        t.declare(&cells, a, b, 1, i).unwrap();
        assert_eq!(t.get(a, b, 1), Some(i));
        assert_eq!(t.get(b, a, 1), Some(i.inverse()));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn redeclaring_identical_is_noop() {
        let (cells, a, b) = two_cells();
        let mut t = InterfaceTable::new();
        let i = Interface::new(Vector::new(10, 0), Orientation::SOUTH);
        t.declare(&cells, a, b, 1, i).unwrap();
        t.declare(&cells, a, b, 1, i).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn conflicting_declaration_rejected() {
        let (cells, a, b) = two_cells();
        let mut t = InterfaceTable::new();
        t.declare(
            &cells,
            a,
            b,
            1,
            Interface::new(Vector::new(10, 0), Orientation::NORTH),
        )
        .unwrap();
        let err = t
            .declare(
                &cells,
                a,
                b,
                1,
                Interface::new(Vector::new(9, 0), Orientation::NORTH),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            RsgError::ConflictingInterface { index: 1, .. }
        ));
        // Conflicts are also caught via the reverse entry.
        let err2 = t
            .declare(
                &cells,
                b,
                a,
                1,
                Interface::new(Vector::new(3, 3), Orientation::EAST),
            )
            .unwrap_err();
        assert!(matches!(err2, RsgError::ConflictingInterface { .. }));
    }

    #[test]
    fn same_cell_interface_stores_single_canonical_entry() {
        let (cells, a, _) = two_cells();
        let mut t = InterfaceTable::new();
        let i = Interface::new(Vector::new(8, 0), Orientation::NORTH);
        t.declare(&cells, a, a, 1, i).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.resolve(a, a, 1, true), Some(i));
        assert_eq!(t.resolve(a, a, 1, false), Some(i.inverse()));
    }

    #[test]
    fn resolve_directionality_for_distinct_cells() {
        let (cells, a, b) = two_cells();
        let mut t = InterfaceTable::new();
        let i = Interface::new(Vector::new(4, 2), Orientation::WEST);
        t.declare(&cells, a, b, 3, i).unwrap();
        // Both physical directions exist; the edge-direction bit is unused.
        assert_eq!(t.resolve(a, b, 3, true), Some(i));
        assert_eq!(t.resolve(b, a, 3, true), Some(i.inverse()));
    }

    #[test]
    fn families_of_interfaces() {
        let (cells, a, b) = two_cells();
        let mut t = InterfaceTable::new();
        t.declare(
            &cells,
            a,
            b,
            1,
            Interface::new(Vector::new(1, 0), Orientation::NORTH),
        )
        .unwrap();
        t.declare(
            &cells,
            a,
            b,
            2,
            Interface::new(Vector::new(0, 1), Orientation::SOUTH),
        )
        .unwrap();
        assert_eq!(t.indices_between(a, b), vec![1, 2]);
        assert_eq!(t.indices_between(b, a), vec![1, 2]);
        assert!(t.get(a, b, 7).is_none());
    }

    #[test]
    fn empty_table() {
        let t = InterfaceTable::new();
        assert!(t.is_empty());
        assert_eq!(t.iter().count(), 0);
    }
}
