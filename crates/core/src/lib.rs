//! The Regular Structure Generator core: design-by-example interfaces,
//! connectivity graphs, and graph→layout expansion.
//!
//! This crate implements Chapters 2 and 3 of Bamji's 1985 thesis:
//!
//! * [`Interface`] — the ordered pair `(V_ab, O_ab)` capturing how two cell
//!   instances sit relative to each other (eqs. 2.1–2.4), with
//!   [`Interface::inherit`] implementing interface inheritance between
//!   macrocells (eqs. 2.11–2.12),
//! * [`InterfaceTable`] — the table of all legal interfaces, keyed by
//!   `(cell, cell, index)` with automatic loading of the inverse entry,
//! * [`Rsg`] — the generator itself: a node arena of *partial instances*
//!   (celltype known, placement delayed), the `mk_instance` / `connect` /
//!   `mk_cell` primitive operators of Chapter 4, and `declare_interface`
//!   for inheritance,
//! * [`extract_interfaces`] — the *design by example* step: mining the
//!   interface table out of a sample layout where interfaces are marked by
//!   numeric labels in the overlap region (paper Fig 5.5).
//!
//! # Example: a row of cells from one sampled interface
//!
//! ```
//! use rsg_core::Rsg;
//! use rsg_layout::{CellDefinition, CellTable, Instance, Layer};
//! use rsg_geom::{Orientation, Point, Rect};
//!
//! // Sample layout: two abutting instances of `tile` + label "1" in overlap.
//! let mut sample = CellTable::new();
//! let mut tile = CellDefinition::new("tile");
//! tile.add_box(Layer::Metal1, Rect::from_coords(0, 0, 10, 10));
//! let tile_id = sample.insert(tile).unwrap();
//! let mut pair = CellDefinition::new("pair");
//! pair.add_instance(Instance::new(tile_id, Point::new(0, 0), Orientation::NORTH));
//! pair.add_instance(Instance::new(tile_id, Point::new(8, 0), Orientation::NORTH));
//! pair.add_label("1", Point::new(9, 5)); // inside the overlap
//! sample.insert(pair).unwrap();
//!
//! let mut rsg = Rsg::from_sample(sample).unwrap();
//! let tile_cell = rsg.cells().lookup("tile").unwrap();
//!
//! // Build a row of 4 tiles entirely from the sampled interface.
//! let nodes: Vec<_> = (0..4).map(|_| rsg.mk_instance(tile_cell)).collect();
//! for w in nodes.windows(2) {
//!     rsg.connect(w[0], w[1], 1).unwrap();
//! }
//! let row = rsg.mk_cell("row", nodes[0]).unwrap();
//! assert_eq!(rsg.cells().require(row).unwrap().instances().count(), 4);
//! ```
//!
//! Library code is panic-free by policy: `unwrap`/`expect` are denied
//! outside `#[cfg(test)]` (see DESIGN.md's robustness section).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(missing_docs)]

mod error;
mod extract;
mod interface;
mod rsg;
mod table;

pub use error::RsgError;
pub use extract::{extract_interfaces, ExtractedInterface};
pub use interface::Interface;
pub use rsg::{NodeId, Rsg};
pub use table::{InterfaceKey, InterfaceTable};
