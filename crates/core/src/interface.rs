//! The interface algebra of Chapter 2.
//!
//! An interface between two cells A and B is the ordered pair
//! `I_ab = (V_ab, O_ab)`: hold the instance of A at orientation north and
//! record where B's point of call lands (`V_ab`) and how B is oriented
//! (`O_ab`). Equations 2.1–2.2 of the paper:
//!
//! ```text
//! O_ab = (O'_a)⁻¹ ∘ O'_b
//! V_ab = (O'_a)⁻¹ (L'_b − L'_a)
//! ```
//!
//! An interface is therefore exactly the *relative isometry*
//! `call_a⁻¹ ∘ call_b`, and the whole algebra of the chapter — inversion
//! (eqs. 2.3–2.4) and inheritance (eqs. 2.11–2.12) — collapses to isometry
//! composition. The tests check the collapsed forms against the paper's
//! explicit component formulas.

use rsg_geom::{Isometry, Orientation, Vector};
use std::fmt;

/// An interface `(V_ab, O_ab)` between two cells (paper §2.2).
///
/// # Example
///
/// ```
/// use rsg_core::Interface;
/// use rsg_geom::{Isometry, Orientation, Point, Vector};
///
/// // Fig 2.2: A called at south, B north of it.
/// let call_a = Isometry::call(Point::new(0, 0), Orientation::SOUTH);
/// let call_b = Isometry::call(Point::new(0, 10), Orientation::WEST);
/// let iface = Interface::between(call_a, call_b);
/// // Deskewed by South⁻¹ = South: B lands below and west becomes east-ish.
/// assert_eq!(iface.vector, Vector::new(0, -10));
/// // Round trip: placing B from A's call reproduces B's call.
/// assert_eq!(iface.place_second(call_a), call_b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interface {
    /// `V_ab`: from A's point of call to B's, with A deskewed to north.
    pub vector: Vector,
    /// `O_ab`: B's orientation with A deskewed to north.
    pub orientation: Orientation,
}

impl Interface {
    /// The trivial interface (B exactly on top of A, same orientation).
    pub const IDENTITY: Interface = Interface {
        vector: Vector::ZERO,
        orientation: Orientation::NORTH,
    };

    /// Creates an interface from its components.
    pub const fn new(vector: Vector, orientation: Orientation) -> Interface {
        Interface {
            vector,
            orientation,
        }
    }

    /// Computes `I_ab` from the calling parameters of A and B in a common
    /// coordinate system (paper eqs. 2.1–2.2).
    pub fn between(call_a: Isometry, call_b: Isometry) -> Interface {
        Interface::from_isometry(call_a.inverse().compose(call_b))
    }

    /// The interface as a relative isometry `call_a⁻¹ ∘ call_b`.
    pub const fn to_isometry(self) -> Isometry {
        Isometry {
            orientation: self.orientation,
            translation: self.vector,
        }
    }

    /// Builds an interface from a relative isometry.
    pub const fn from_isometry(iso: Isometry) -> Interface {
        Interface {
            vector: iso.translation,
            orientation: iso.orientation,
        }
    }

    /// `I_ba = I_ab⁻¹ = (−O_ab⁻¹ V_ab, O_ab⁻¹)` (paper eqs. 2.3–2.4).
    pub fn inverse(self) -> Interface {
        Interface::from_isometry(self.to_isometry().inverse())
    }

    /// Given the full calling parameters of the first cell, returns the
    /// calling parameters of the second (paper eqs. 3.1–3.2):
    ///
    /// ```text
    /// O_b = O_a ∘ O_ab        L_b = O_a(V_ab) + L_a
    /// ```
    pub fn place_second(self, call_a: Isometry) -> Isometry {
        call_a.compose(self.to_isometry())
    }

    /// Given the calling parameters of the *second* cell, recovers the
    /// first's — the "bilaterality" required of the interface table
    /// (paper §2.4).
    pub fn place_first(self, call_b: Isometry) -> Isometry {
        call_b.compose(self.to_isometry().inverse())
    }

    /// Interface inheritance (paper §2.5, eqs. 2.11–2.12).
    ///
    /// If A is a subcell of C called with `call_a_in_c`, B a subcell of D
    /// called with `call_b_in_d`, and `self` is an interface `I_ab`, then
    /// the returned `I_cd` is the interface C and D inherit when their
    /// subcells A and B are placed in the `I_ab` relation:
    ///
    /// ```text
    /// I_cd = call_a_in_c ∘ I_ab ∘ call_b_in_d⁻¹
    /// ```
    pub fn inherit(self, call_a_in_c: Isometry, call_b_in_d: Isometry) -> Interface {
        Interface::from_isometry(
            call_a_in_c
                .compose(self.to_isometry())
                .compose(call_b_in_d.inverse()),
        )
    }
}

impl Default for Interface {
    fn default() -> Interface {
        Interface::IDENTITY
    }
}

impl fmt::Display for Interface {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(V={}, O={})", self.vector, self.orientation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_geom::Point;

    fn isometries() -> Vec<Isometry> {
        let mut v = Vec::new();
        for o in Orientation::ALL {
            for t in [Vector::ZERO, Vector::new(13, -4), Vector::new(-6, 21)] {
                v.push(Isometry::new(o, t));
            }
        }
        v
    }

    #[test]
    fn between_matches_paper_component_formulas() {
        // Check the collapsed isometry form against eqs. 2.1 and 2.2
        // written out componentwise.
        for call_a in isometries() {
            for call_b in isometries() {
                let iface = Interface::between(call_a, call_b);
                let o_ab = call_a.orientation.inverse().compose(call_b.orientation);
                let v_ab = call_a
                    .orientation
                    .inverse()
                    .apply_vector(call_b.translation - call_a.translation);
                assert_eq!(iface.orientation, o_ab);
                assert_eq!(iface.vector, v_ab);
            }
        }
    }

    #[test]
    fn inverse_matches_paper_eq_2_3_2_4() {
        // I_ba = (−O_ab⁻¹ V_ab, O_ab⁻¹).
        for call_a in isometries() {
            for call_b in isometries() {
                let i_ab = Interface::between(call_a, call_b);
                let i_ba = i_ab.inverse();
                assert_eq!(i_ba.orientation, i_ab.orientation.inverse());
                assert_eq!(
                    i_ba.vector,
                    -(i_ab.orientation.inverse().apply_vector(i_ab.vector))
                );
                // And it really is the B→A interface.
                assert_eq!(i_ba, Interface::between(call_b, call_a));
            }
        }
    }

    #[test]
    fn place_second_round_trips() {
        for call_a in isometries() {
            for call_b in isometries() {
                let iface = Interface::between(call_a, call_b);
                assert_eq!(iface.place_second(call_a), call_b);
                assert_eq!(iface.place_first(call_b), call_a);
            }
        }
    }

    #[test]
    fn interfaces_are_invariant_under_common_isometry() {
        // §3.4: each connectivity graph corresponds to a whole equivalence
        // class of layouts modulo a common isometry. Interfaces must not
        // change when both calls are moved by the same isometry.
        for g in isometries().into_iter().step_by(4) {
            for call_a in isometries().into_iter().step_by(3) {
                for call_b in isometries().into_iter().step_by(5) {
                    let before = Interface::between(call_a, call_b);
                    let after = Interface::between(g.compose(call_a), g.compose(call_b));
                    assert_eq!(before, after);
                }
            }
        }
    }

    #[test]
    fn fig_2_2_worked_example() {
        // Fig 2.2: instance of A oriented South; reorienting the calling
        // cell by South⁻¹ = South deskews A to North.
        let call_a = Isometry::call(Point::new(4, 4), Orientation::SOUTH);
        let call_b = Isometry::call(Point::new(4, 12), Orientation::WEST);
        let iface = Interface::between(call_a, call_b);
        // L_b − L_a = (0, 8); deskewed by South: (0, −8).
        assert_eq!(iface.vector, Vector::new(0, -8));
        // O_ab = South⁻¹ ∘ West = South ∘ West = East.
        assert_eq!(
            iface.orientation,
            Orientation::SOUTH.compose(Orientation::WEST)
        );
        assert_eq!(iface.orientation, Orientation::EAST);
    }

    #[test]
    fn inherit_matches_paper_eq_2_11_2_12() {
        // eq 2.11: O_cd = O_a^c ∘ O_ab ∘ (O_b^d)⁻¹
        // eq 2.12: V_cd = O_a^c V_ab − (O_cd) (O_b^d)⁻¹ L_b^d + L_a^c
        //   (final line of the derivation, rewritten in our notation: the
        //    translation of call_a_in_c ∘ I_ab ∘ call_b_in_d⁻¹.)
        for call_ac in isometries().into_iter().step_by(2) {
            for call_bd in isometries().into_iter().step_by(3) {
                for i_ab in isometries()
                    .into_iter()
                    .step_by(5)
                    .map(Interface::from_isometry)
                {
                    let i_cd = i_ab.inherit(call_ac, call_bd);
                    let o_cd = call_ac
                        .orientation
                        .compose(i_ab.orientation)
                        .compose(call_bd.orientation.inverse());
                    assert_eq!(i_cd.orientation, o_cd);
                    // Componentwise translation check (paper eq. 2.12):
                    // V_cd = O_a^c(V_ab) − O_cd(L_b^d) + L_a^c.
                    let v = call_ac.orientation.apply_vector(i_ab.vector)
                        - o_cd.apply_vector(call_bd.translation)
                        + call_ac.translation;
                    assert_eq!(i_cd.vector, v);
                }
            }
        }
    }

    #[test]
    fn inherit_semantics_subcells_end_up_in_relation() {
        // The defining property (Fig 2.4): if C and D are placed with the
        // inherited I_cd, then A (inside C) and B (inside D) sit in I_ab.
        for call_ac in isometries().into_iter().step_by(3) {
            for call_bd in isometries().into_iter().step_by(4) {
                for i_ab in isometries()
                    .into_iter()
                    .step_by(7)
                    .map(Interface::from_isometry)
                {
                    let i_cd = i_ab.inherit(call_ac, call_bd);
                    for call_c in isometries().into_iter().step_by(5) {
                        let call_d = i_cd.place_second(call_c);
                        let abs_a = call_c.compose(call_ac);
                        let abs_b = call_d.compose(call_bd);
                        assert_eq!(Interface::between(abs_a, abs_b), i_ab);
                    }
                }
            }
        }
    }

    #[test]
    fn same_vector_different_interface() {
        // §3.4: I_aa = (0, East) has I_aa⁻¹ = (0, West): same vector,
        // different interface — so selection cannot rely on vectors alone.
        let i = Interface::new(Vector::ZERO, Orientation::EAST);
        let inv = i.inverse();
        assert_eq!(inv.vector, i.vector);
        assert_ne!(inv, i);
        // And (V, North) has inverse (−V, North): same orientation,
        // different interface.
        let j = Interface::new(Vector::new(5, 0), Orientation::NORTH);
        let jinv = j.inverse();
        assert_eq!(jinv.orientation, j.orientation);
        assert_ne!(jinv, j);
    }

    #[test]
    fn identity_interface() {
        let id = Interface::IDENTITY;
        assert_eq!(id.inverse(), id);
        let call = Isometry::call(Point::new(3, 3), Orientation::EAST);
        assert_eq!(id.place_second(call), call);
        assert_eq!(Interface::default(), id);
    }
}
