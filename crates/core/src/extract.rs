//! Design-by-example interface extraction from a sample layout.
//!
//! "One merely provides an example of the interface, and places a numerical
//! label in the overlapping region" (paper Chapter 5, Fig 5.5). The rule
//! implemented here:
//!
//! * every [`rsg_layout::LayoutObject::Label`] whose text parses as a `u32`
//!   is an interface declaration;
//! * the two instances it declares are those whose *deep bounding box*
//!   (the instance's cell flattened through the calling isometry) contains
//!   the label anchor point;
//! * the **reference** instance — the one deskewed to north, from whose
//!   point of call the interface vector starts — is the instance that
//!   appears *earlier* in the cell's object list. This is the graphical
//!   discrimination of §3.4 (Fig 3.7): the sample's author controls which
//!   of the two same-celltype instances is `A₁` simply by drawing it first.

use crate::{Interface, RsgError};
use rsg_geom::BoundingBox;
use rsg_layout::{CellId, CellTable, Instance};

/// One interface mined from the sample layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtractedInterface {
    /// Reference cell (deskewed to north in the interface definition).
    pub cell_a: CellId,
    /// The other cell.
    pub cell_b: CellId,
    /// Interface index number (the label text).
    pub index: u32,
    /// The interface itself.
    pub interface: Interface,
    /// The sample cell the example appeared in.
    pub found_in: CellId,
}

/// Scans every cell of a sample layout and extracts all labelled
/// interfaces.
///
/// # Errors
///
/// Returns [`RsgError::AmbiguousLabel`] when a numeric label's anchor is
/// contained in fewer or more than two instance bounding boxes, and
/// propagates layout errors (dangling ids, recursion) from flattening.
pub fn extract_interfaces(sample: &CellTable) -> Result<Vec<ExtractedInterface>, RsgError> {
    let mut out = Vec::new();
    for (cell_id, def) in sample.iter() {
        let instances: Vec<Instance> = def.instances().copied().collect();
        if instances.is_empty() {
            continue;
        }
        // Deep bbox of each instance, in the sample cell's coordinates.
        let mut bboxes = Vec::with_capacity(instances.len());
        for inst in &instances {
            bboxes.push(deep_bbox(sample, inst)?);
        }
        for (text, at) in def.labels() {
            let Ok(index) = text.parse::<u32>() else {
                continue;
            };
            let hits: Vec<usize> = bboxes
                .iter()
                .enumerate()
                .filter(|(_, bb)| bb.rect().is_some_and(|r| r.contains(at)))
                .map(|(i, _)| i)
                .collect();
            if hits.len() != 2 {
                return Err(RsgError::AmbiguousLabel {
                    cell: def.name().to_owned(),
                    label: text.to_owned(),
                    hits: hits.len(),
                });
            }
            // Earlier-drawn instance is the reference (A₁ of Fig 3.7).
            let (ia, ib) = (instances[hits[0]], instances[hits[1]]);
            out.push(ExtractedInterface {
                cell_a: ia.cell,
                cell_b: ib.cell,
                index,
                interface: Interface::between(ia.isometry(), ib.isometry()),
                found_in: cell_id,
            });
        }
    }
    Ok(out)
}

/// Deep bounding box of one instance: the union of all its flattened boxes,
/// expressed in the calling cell's coordinates.
fn deep_bbox(sample: &CellTable, inst: &Instance) -> Result<BoundingBox, RsgError> {
    let flat = rsg_layout::flatten(sample, inst.cell)?;
    let iso = inst.isometry();
    Ok(flat.into_iter().map(|b| b.rect.transform(iso)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_geom::{Orientation, Point, Rect, Vector};
    use rsg_layout::{CellDefinition, Layer};

    fn tile_cell() -> CellDefinition {
        let mut c = CellDefinition::new("tile");
        c.add_box(Layer::Metal1, Rect::from_coords(0, 0, 10, 10));
        c
    }

    #[test]
    fn extracts_overlap_labelled_interface() {
        let mut t = CellTable::new();
        let tile = t.insert(tile_cell()).unwrap();
        let mut pair = CellDefinition::new("pair");
        pair.add_instance(Instance::new(tile, Point::new(0, 0), Orientation::NORTH));
        pair.add_instance(Instance::new(tile, Point::new(8, 0), Orientation::NORTH));
        pair.add_label("1", Point::new(9, 5));
        t.insert(pair).unwrap();

        let found = extract_interfaces(&t).unwrap();
        assert_eq!(found.len(), 1);
        let e = found[0];
        assert_eq!(e.index, 1);
        assert_eq!((e.cell_a, e.cell_b), (tile, tile));
        assert_eq!(
            e.interface,
            Interface::new(Vector::new(8, 0), Orientation::NORTH)
        );
    }

    #[test]
    fn reference_instance_is_first_drawn() {
        // Same geometry, reversed drawing order: the extracted interface
        // must flip to keep the first-drawn instance as reference.
        let mut t = CellTable::new();
        let tile = t.insert(tile_cell()).unwrap();
        let mut pair = CellDefinition::new("pair");
        pair.add_instance(Instance::new(tile, Point::new(8, 0), Orientation::NORTH));
        pair.add_instance(Instance::new(tile, Point::new(0, 0), Orientation::NORTH));
        pair.add_label("1", Point::new(9, 5));
        t.insert(pair).unwrap();

        let found = extract_interfaces(&t).unwrap();
        assert_eq!(
            found[0].interface,
            Interface::new(Vector::new(-8, 0), Orientation::NORTH)
        );
    }

    #[test]
    fn non_numeric_labels_ignored() {
        let mut t = CellTable::new();
        let tile = t.insert(tile_cell()).unwrap();
        let mut pair = CellDefinition::new("pair");
        pair.add_instance(Instance::new(tile, Point::new(0, 0), Orientation::NORTH));
        pair.add_instance(Instance::new(tile, Point::new(8, 0), Orientation::NORTH));
        pair.add_label("vdd", Point::new(9, 5));
        t.insert(pair).unwrap();
        assert!(extract_interfaces(&t).unwrap().is_empty());
    }

    #[test]
    fn ambiguous_label_is_an_error() {
        let mut t = CellTable::new();
        let tile = t.insert(tile_cell()).unwrap();
        let mut trio = CellDefinition::new("trio");
        for x in [0, 4, 8] {
            trio.add_instance(Instance::new(tile, Point::new(x, 0), Orientation::NORTH));
        }
        trio.add_label("1", Point::new(9, 5)); // inside all three bboxes
        t.insert(trio).unwrap();
        let err = extract_interfaces(&t).unwrap_err();
        assert!(matches!(err, RsgError::AmbiguousLabel { hits: 3, .. }));
    }

    #[test]
    fn label_outside_everything_is_an_error() {
        let mut t = CellTable::new();
        let tile = t.insert(tile_cell()).unwrap();
        let mut pair = CellDefinition::new("pair");
        pair.add_instance(Instance::new(tile, Point::new(0, 0), Orientation::NORTH));
        pair.add_instance(Instance::new(tile, Point::new(8, 0), Orientation::NORTH));
        pair.add_label("1", Point::new(100, 100));
        t.insert(pair).unwrap();
        let err = extract_interfaces(&t).unwrap_err();
        assert!(matches!(err, RsgError::AmbiguousLabel { hits: 0, .. }));
    }

    #[test]
    fn oriented_instances_extract_correctly() {
        // The second tile is south-rotated and overlapping; reconstruct its
        // call from the interface and check it round-trips.
        let mut t = CellTable::new();
        let tile = t.insert(tile_cell()).unwrap();
        let call_a = Instance::new(tile, Point::new(0, 0), Orientation::NORTH);
        let call_b = Instance::new(tile, Point::new(19, 10), Orientation::SOUTH);
        let mut pair = CellDefinition::new("pair");
        pair.add_instance(call_a);
        pair.add_instance(call_b);
        pair.add_label("4", Point::new(9, 5)); // in both (b covers 9..19 x 0..10)
        t.insert(pair).unwrap();

        let e = extract_interfaces(&t).unwrap()[0];
        assert_eq!(e.index, 4);
        assert_eq!(
            e.interface.place_second(call_a.isometry()),
            call_b.isometry()
        );
    }

    #[test]
    fn labels_in_multiple_cells() {
        let mut t = CellTable::new();
        let tile = t.insert(tile_cell()).unwrap();
        for (name, dx) in [("p1", 8), ("p2", 6)] {
            let mut pair = CellDefinition::new(name);
            pair.add_instance(Instance::new(tile, Point::new(0, 0), Orientation::NORTH));
            pair.add_instance(Instance::new(tile, Point::new(dx, 0), Orientation::NORTH));
            pair.add_label(if dx == 8 { "1" } else { "2" }, Point::new(dx + 1, 5));
            t.insert(pair).unwrap();
        }
        let found = extract_interfaces(&t).unwrap();
        assert_eq!(found.len(), 2);
        let idx: Vec<u32> = found.iter().map(|e| e.index).collect();
        assert!(idx.contains(&1) && idx.contains(&2));
    }
}
