//! The generator: node arena, primitive operators, and graph→layout
//! expansion (Chapter 3 and §4.4 of the paper).
//!
//! Nodes are *partial instances*: "vertices represent partial instances
//! whose cell type is known but whose location and orientation are as yet
//! unspecified" (§3.1). The three primitive operators are:
//!
//! * [`Rsg::mk_instance`] — create a partial-instance node (§4.4.1),
//! * [`Rsg::connect`] — add a directed, bilaterally-linked edge carrying an
//!   interface index (§4.4.2),
//! * [`Rsg::mk_cell`] — traverse the connected component of a root node,
//!   bind every placement, and register the new cell (§4.4.3).
//!
//! [`Rsg::declare_interface`] then lets the freshly built macrocell be used
//! "in exactly the same fashion as were the primitive cells of the sample
//! layout" (§2.5).

use crate::{extract_interfaces, Interface, InterfaceTable, RsgError};
use rsg_geom::{Isometry, Point};
use rsg_layout::{CellDefinition, CellId, CellTable, Instance};
use std::collections::VecDeque;

/// Handle to a connectivity-graph node (a partial instance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// Raw index, for diagnostics.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

/// One edge endpoint record (paper Fig 4.4): direction bit, interface
/// index ("weight"), and the neighbouring node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Edge {
    /// The node at the other end.
    other: NodeId,
    /// Interface index number.
    index: u32,
    /// `true` if the edge *emanates* from the node owning this record.
    outgoing: bool,
}

/// Node data (paper Fig 4.4): celltype, edge list, and — once its component
/// has been expanded — the bound placement and owning cell.
#[derive(Debug, Clone)]
struct Node {
    cell: CellId,
    edges: Vec<Edge>,
    placement: Option<Instance>,
    owner: Option<CellId>,
}

/// The Regular Structure Generator: cell table, interface table, and the
/// arena of connectivity-graph nodes.
///
/// See the [crate-level example](crate) for end-to-end usage.
#[derive(Debug, Clone, Default)]
pub struct Rsg {
    cells: CellTable,
    interfaces: InterfaceTable,
    nodes: Vec<Node>,
}

impl Rsg {
    /// Creates a generator with an empty cell table and interface table.
    pub fn new() -> Rsg {
        Rsg::default()
    }

    /// Initializes the generator from a sample layout: loads its cell table
    /// and extracts every labelled interface (the "Initialize Interface
    /// Table" box of Fig 3.1).
    ///
    /// # Errors
    ///
    /// Fails if a label selects an ambiguous instance pair or an extracted
    /// interface conflicts with an earlier one.
    pub fn from_sample(sample: CellTable) -> Result<Rsg, RsgError> {
        let extracted = extract_interfaces(&sample)?;
        let mut interfaces = InterfaceTable::new();
        for e in &extracted {
            interfaces.declare(&sample, e.cell_a, e.cell_b, e.index, e.interface)?;
        }
        Ok(Rsg {
            cells: sample,
            interfaces,
            nodes: Vec::new(),
        })
    }

    /// The cell definition table.
    pub fn cells(&self) -> &CellTable {
        &self.cells
    }

    /// Mutable access to the cell table (for adding primitive cells by
    /// hand instead of via a sample layout).
    pub fn cells_mut(&mut self) -> &mut CellTable {
        &mut self.cells
    }

    /// The interface table.
    pub fn interfaces(&self) -> &InterfaceTable {
        &self.interfaces
    }

    /// Declares a primitive (non-inherited) interface directly.
    ///
    /// # Errors
    ///
    /// Propagates [`RsgError::ConflictingInterface`] on clashes.
    pub fn declare_primitive_interface(
        &mut self,
        a: CellId,
        b: CellId,
        index: u32,
        iface: Interface,
    ) -> Result<(), RsgError> {
        self.interfaces.declare(&self.cells, a, b, index, iface)
    }

    /// `mk_instance` (paper §4.4.1): creates a partial-instance node of the
    /// given celltype with an empty edge list and unbound placement.
    pub fn mk_instance(&mut self, cell: CellId) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            cell,
            edges: Vec::new(),
            placement: None,
            owner: None,
        });
        id
    }

    /// `connect` (paper §4.4.2): adds an edge from `a` to `b` with the
    /// given interface index. The edge *emanates* from `a` (direction bit
    /// 1 at `a`, 0 at `b`), so for same-celltype pairs `a` is the reference
    /// instance of the interface.
    ///
    /// # Errors
    ///
    /// Rejects unknown nodes and self-edges.
    pub fn connect(&mut self, a: NodeId, b: NodeId, index: u32) -> Result<(), RsgError> {
        if a == b {
            return Err(RsgError::SelfEdge(a.0));
        }
        self.check_node(a)?;
        self.check_node(b)?;
        self.nodes[a.0 as usize].edges.push(Edge {
            other: b,
            index,
            outgoing: true,
        });
        self.nodes[b.0 as usize].edges.push(Edge {
            other: a,
            index,
            outgoing: false,
        });
        Ok(())
    }

    /// The celltype of a node.
    ///
    /// # Errors
    ///
    /// Fails on unknown node ids.
    pub fn node_cell(&self, node: NodeId) -> Result<CellId, RsgError> {
        self.check_node(node)?;
        Ok(self.nodes[node.0 as usize].cell)
    }

    /// The bound placement of a node, once its component has been expanded.
    ///
    /// # Errors
    ///
    /// Fails on unknown or not-yet-placed nodes.
    pub fn node_placement(&self, node: NodeId) -> Result<Instance, RsgError> {
        self.check_node(node)?;
        self.nodes[node.0 as usize]
            .placement
            .ok_or(RsgError::NodeNotPlaced(node.0))
    }

    /// `mk_cell` (paper §4.4.3): expands the connected component of `root`
    /// into a new cell named `name` and registers it in the cell table.
    ///
    /// The root's instance is called at `((0,0), North)`; every other node
    /// is placed by walking the graph and applying eqs. 3.1–3.2 through the
    /// interface table. The traversal is breadth-first, but the result is
    /// traversal-order independent: if the graph has cycles, the redundant
    /// placements are *verified* and an inconsistent cycle is an error.
    ///
    /// # Errors
    ///
    /// * [`RsgError::MissingInterface`] if an edge's interface is not loaded,
    /// * [`RsgError::NodeAlreadyPlaced`] if the component was already built,
    /// * [`RsgError::InconsistentCycle`] on contradictory cycles,
    /// * [`RsgError::Layout`] if the cell name is taken.
    pub fn mk_cell(&mut self, name: &str, root: NodeId) -> Result<CellId, RsgError> {
        self.mk_cell_at(name, root, Isometry::IDENTITY)
    }

    /// Like [`Rsg::mk_cell`] but calls the root instance at an arbitrary
    /// placement — this only selects a different representative of the
    /// layout equivalence class (§3.4).
    pub fn mk_cell_at(
        &mut self,
        name: &str,
        root: NodeId,
        root_call: Isometry,
    ) -> Result<CellId, RsgError> {
        self.check_node(root)?;
        if self.nodes[root.0 as usize].placement.is_some() {
            return Err(RsgError::NodeAlreadyPlaced(root.0));
        }

        // Phase 1: compute placements for the whole component.
        let mut placed: Vec<(NodeId, Isometry)> = Vec::new();
        let mut queue = VecDeque::new();
        self.nodes[root.0 as usize].placement =
            Some(instance_at(self.nodes[root.0 as usize].cell, root_call));
        placed.push((root, root_call));
        queue.push_back((root, root_call));

        while let Some((u, call_u)) = queue.pop_front() {
            let edges = self.nodes[u.0 as usize].edges.clone();
            let cell_u = self.nodes[u.0 as usize].cell;
            for e in edges {
                let v = e.other;
                let node_v = &self.nodes[v.0 as usize];
                let cell_v = node_v.cell;
                let iface = self
                    .interfaces
                    .resolve(cell_u, cell_v, e.index, e.outgoing)
                    .ok_or_else(|| self.missing(cell_u, cell_v, e.index))?;
                let call_v = iface.place_second(call_u);
                match node_v.placement {
                    None => {
                        if node_v.owner.is_some() {
                            return Err(RsgError::NodeAlreadyPlaced(v.0));
                        }
                        self.nodes[v.0 as usize].placement = Some(instance_at(cell_v, call_v));
                        placed.push((v, call_v));
                        queue.push_back((v, call_v));
                    }
                    Some(existing) => {
                        if node_v.owner.is_some() {
                            // Connected to a node consumed by an earlier
                            // mk_cell: its placement lives in another cell's
                            // coordinate system and cannot be reused.
                            for (n, _) in &placed {
                                self.nodes[n.0 as usize].placement = None;
                            }
                            return Err(RsgError::NodeAlreadyPlaced(v.0));
                        }
                        // Cycle: verify the redundant information agrees.
                        if existing.isometry() != call_v {
                            // Roll back placements so the arena is unchanged.
                            for (n, _) in &placed {
                                self.nodes[n.0 as usize].placement = None;
                            }
                            return Err(RsgError::InconsistentCycle { node: v.0 });
                        }
                    }
                }
            }
        }

        // Phase 2: build and register the cell.
        let mut def = CellDefinition::new(name);
        for (n, call) in &placed {
            def.add_instance(instance_at(self.nodes[n.0 as usize].cell, *call));
            // `n` is placed; ownership is bound below after insert succeeds.
            let _ = n;
        }
        let id = match self.cells.insert(def) {
            Ok(id) => id,
            Err(e) => {
                for (n, _) in &placed {
                    self.nodes[n.0 as usize].placement = None;
                }
                return Err(e.into());
            }
        };
        for (n, _) in &placed {
            self.nodes[n.0 as usize].owner = Some(id);
        }
        Ok(id)
    }

    /// `declare_interface` (paper §2.5 / Fig 5.4b): loads a new interface
    /// number `new_index` between cells `c` and `d`, inherited from the
    /// existing interface `existing_index` between the celltypes of
    /// `node_a` (a placed node owned by `c`) and `node_b` (owned by `d`).
    ///
    /// # Errors
    ///
    /// Fails if either node is unplaced or not owned by the named cell, if
    /// the existing interface is missing, or on a conflicting declaration.
    pub fn declare_interface(
        &mut self,
        c: CellId,
        d: CellId,
        new_index: u32,
        node_a: NodeId,
        node_b: NodeId,
        existing_index: u32,
    ) -> Result<(), RsgError> {
        let inst_a = self.node_placement(node_a)?;
        let inst_b = self.node_placement(node_b)?;
        debug_assert_eq!(
            self.nodes[node_a.0 as usize].owner,
            Some(c),
            "node_a not owned by c"
        );
        debug_assert_eq!(
            self.nodes[node_b.0 as usize].owner,
            Some(d),
            "node_b not owned by d"
        );
        let i_ab = self
            .interfaces
            .resolve(inst_a.cell, inst_b.cell, existing_index, true)
            .ok_or_else(|| self.missing(inst_a.cell, inst_b.cell, existing_index))?;
        let i_cd = i_ab.inherit(inst_a.isometry(), inst_b.isometry());
        self.interfaces.declare(&self.cells, c, d, new_index, i_cd)
    }

    fn check_node(&self, node: NodeId) -> Result<(), RsgError> {
        if (node.0 as usize) < self.nodes.len() {
            Ok(())
        } else {
            Err(RsgError::UnknownNode(node.0))
        }
    }

    fn missing(&self, a: CellId, b: CellId, index: u32) -> RsgError {
        RsgError::MissingInterface {
            cell_a: self.cells.get(a).map_or("?", |c| c.name()).to_owned(),
            cell_b: self.cells.get(b).map_or("?", |c| c.name()).to_owned(),
            index,
        }
    }
}

fn instance_at(cell: CellId, call: Isometry) -> Instance {
    Instance::new(cell, Point::ORIGIN + call.translation, call.orientation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_geom::{Orientation, Rect, Vector};
    use rsg_layout::Layer;

    /// A generator with cells `a` (10×10) and `b` (6×6), interface a–b #1
    /// (b abuts to the right of a) and a–a #1 (pitch 10 east).
    fn setup() -> (Rsg, CellId, CellId) {
        let mut rsg = Rsg::new();
        let mut ca = CellDefinition::new("a");
        ca.add_box(Layer::Metal1, Rect::from_coords(0, 0, 10, 10));
        let a = rsg.cells_mut().insert(ca).unwrap();
        let mut cb = CellDefinition::new("b");
        cb.add_box(Layer::Poly, Rect::from_coords(0, 0, 6, 6));
        let b = rsg.cells_mut().insert(cb).unwrap();
        rsg.declare_primitive_interface(
            a,
            b,
            1,
            Interface::new(Vector::new(10, 0), Orientation::NORTH),
        )
        .unwrap();
        rsg.declare_primitive_interface(
            a,
            a,
            1,
            Interface::new(Vector::new(10, 0), Orientation::NORTH),
        )
        .unwrap();
        (rsg, a, b)
    }

    #[test]
    fn mk_instance_and_cell_round_trip() {
        let (mut rsg, a, b) = setup();
        let na = rsg.mk_instance(a);
        let nb = rsg.mk_instance(b);
        rsg.connect(na, nb, 1).unwrap();
        let id = rsg.mk_cell("pair", na).unwrap();
        let def = rsg.cells().require(id).unwrap();
        let placements: Vec<_> = def.instances().collect();
        assert_eq!(placements.len(), 2);
        assert_eq!(placements[0].point_of_call, Point::new(0, 0));
        assert_eq!(placements[1].point_of_call, Point::new(10, 0));
        assert_eq!(
            rsg.node_placement(nb).unwrap().point_of_call,
            Point::new(10, 0)
        );
    }

    #[test]
    fn expansion_follows_edges_backwards_too() {
        // Root chosen so the a–b edge is traversed head→tail.
        let (mut rsg, a, b) = setup();
        let na = rsg.mk_instance(a);
        let nb = rsg.mk_instance(b);
        rsg.connect(na, nb, 1).unwrap();
        let id = rsg.mk_cell("pair", nb).unwrap(); // root at B this time
        let def = rsg.cells().require(id).unwrap();
        // B at origin; A must be placed at -10,0 relative.
        let inst_a = def.instances().find(|i| i.cell == a).unwrap();
        assert_eq!(inst_a.point_of_call, Point::new(-10, 0));
    }

    #[test]
    fn directed_edges_resolve_same_celltype_ambiguity() {
        // Figs 3.5–3.7: an a→a edge must place the head 10 east of the
        // tail no matter which end is the traversal root.
        let (mut rsg, a, _) = setup();
        let n1 = rsg.mk_instance(a);
        let n2 = rsg.mk_instance(a);
        rsg.connect(n1, n2, 1).unwrap();
        let id = rsg.mk_cell("row", n1).unwrap();
        let def = rsg.cells().require(id).unwrap();
        let pts: Vec<_> = def.instances().map(|i| i.point_of_call).collect();
        assert_eq!(pts, vec![Point::new(0, 0), Point::new(10, 0)]);

        // Same graph, traversed from the head instead.
        let (mut rsg2, a2, _) = setup();
        let m1 = rsg2.mk_instance(a2);
        let m2 = rsg2.mk_instance(a2);
        rsg2.connect(m1, m2, 1).unwrap();
        let id2 = rsg2.mk_cell("row", m2).unwrap();
        let def2 = rsg2.cells().require(id2).unwrap();
        // m2 at origin → m1 must sit 10 *west*, preserving the relation.
        assert_eq!(
            rsg2.node_placement(m1).unwrap().point_of_call,
            Point::new(-10, 0)
        );
        let iface = Interface::between(
            rsg2.node_placement(m1).unwrap().isometry(),
            rsg2.node_placement(m2).unwrap().isometry(),
        );
        assert_eq!(
            iface,
            Interface::new(Vector::new(10, 0), Orientation::NORTH)
        );
        let _ = def2;
    }

    #[test]
    fn consistent_cycle_accepted_inconsistent_rejected() {
        // Triangle a-a-a with pitch-10 edges: 1→2, 2→3 and a long edge 1→3
        // declared as interface #2 with pitch 20 (consistent).
        let (mut rsg, a, _) = setup();
        rsg.declare_primitive_interface(
            a,
            a,
            2,
            Interface::new(Vector::new(20, 0), Orientation::NORTH),
        )
        .unwrap();
        let n1 = rsg.mk_instance(a);
        let n2 = rsg.mk_instance(a);
        let n3 = rsg.mk_instance(a);
        rsg.connect(n1, n2, 1).unwrap();
        rsg.connect(n2, n3, 1).unwrap();
        rsg.connect(n1, n3, 2).unwrap();
        let id = rsg.mk_cell("tri", n1).unwrap();
        assert_eq!(rsg.cells().require(id).unwrap().instances().count(), 3);

        // Now an inconsistent one: interface #3 pitch 21 contradicts.
        let (mut rsg2, a2, _) = setup();
        rsg2.declare_primitive_interface(
            a2,
            a2,
            3,
            Interface::new(Vector::new(21, 0), Orientation::NORTH),
        )
        .unwrap();
        let m1 = rsg2.mk_instance(a2);
        let m2 = rsg2.mk_instance(a2);
        let m3 = rsg2.mk_instance(a2);
        rsg2.connect(m1, m2, 1).unwrap();
        rsg2.connect(m2, m3, 1).unwrap();
        rsg2.connect(m1, m3, 3).unwrap();
        let err = rsg2.mk_cell("tri", m1).unwrap_err();
        assert!(matches!(err, RsgError::InconsistentCycle { .. }));
        // Rollback: nodes are reusable after the failure.
        assert!(matches!(
            rsg2.node_placement(m1),
            Err(RsgError::NodeNotPlaced(_))
        ));
    }

    #[test]
    fn missing_interface_reported_with_names() {
        let (mut rsg, a, b) = setup();
        let na = rsg.mk_instance(a);
        let nb = rsg.mk_instance(b);
        rsg.connect(na, nb, 99).unwrap();
        let err = rsg.mk_cell("x", na).unwrap_err();
        match err {
            RsgError::MissingInterface {
                cell_a,
                cell_b,
                index,
            } => {
                assert_eq!((cell_a.as_str(), cell_b.as_str(), index), ("a", "b", 99));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn self_edges_rejected() {
        let (mut rsg, a, _) = setup();
        let n = rsg.mk_instance(a);
        assert!(matches!(rsg.connect(n, n, 1), Err(RsgError::SelfEdge(_))));
    }

    #[test]
    fn node_cannot_be_consumed_twice() {
        let (mut rsg, a, _) = setup();
        let n = rsg.mk_instance(a);
        rsg.mk_cell("one", n).unwrap();
        let err = rsg.mk_cell("two", n).unwrap_err();
        assert!(matches!(err, RsgError::NodeAlreadyPlaced(_)));
    }

    #[test]
    fn duplicate_cell_name_rolls_back() {
        let (mut rsg, a, _) = setup();
        let n1 = rsg.mk_instance(a);
        rsg.mk_cell("dup", n1).unwrap();
        let n2 = rsg.mk_instance(a);
        let err = rsg.mk_cell("dup", n2).unwrap_err();
        assert!(matches!(err, RsgError::Layout(_)));
        // n2 can still be used under a different name.
        rsg.mk_cell("dup2", n2).unwrap();
    }

    #[test]
    fn inherited_interface_places_macrocells() {
        // Build two single-instance macrocells of `a`, inherit the a–a
        // interface up to them, then place them together: the inner `a`s
        // must land 10 apart.
        let (mut rsg, a, _) = setup();
        let n1 = rsg.mk_instance(a);
        let c = rsg.mk_cell("left", n1).unwrap();
        let n2 = rsg.mk_instance(a);
        let d = rsg.mk_cell("right", n2).unwrap();
        rsg.declare_interface(c, d, 1, n1, n2, 1).unwrap();

        let mc = rsg.mk_instance(c);
        let md = rsg.mk_instance(d);
        rsg.connect(mc, md, 1).unwrap();
        let top = rsg.mk_cell("top", mc).unwrap();
        let def = rsg.cells().require(top).unwrap();
        let pts: Vec<_> = def.instances().map(|i| i.point_of_call).collect();
        assert_eq!(pts, vec![Point::new(0, 0), Point::new(10, 0)]);
    }

    #[test]
    fn mk_cell_at_shifts_the_representative() {
        let (mut rsg, a, _) = setup();
        let n = rsg.mk_instance(a);
        let call = Isometry::new(Orientation::SOUTH, Vector::new(7, 7));
        let id = rsg.mk_cell_at("shifted", n, call).unwrap();
        let inst = rsg
            .cells()
            .require(id)
            .unwrap()
            .instances()
            .next()
            .copied()
            .unwrap();
        assert_eq!(inst.point_of_call, Point::new(7, 7));
        assert_eq!(inst.orientation, Orientation::SOUTH);
    }

    #[test]
    fn unknown_node_errors() {
        let (mut rsg, _, _) = setup();
        let bogus = NodeId(999);
        assert!(matches!(
            rsg.node_cell(bogus),
            Err(RsgError::UnknownNode(999))
        ));
        assert!(matches!(
            rsg.mk_cell("x", bogus),
            Err(RsgError::UnknownNode(999))
        ));
    }
}
