//! Error type for the RSG core.
//!
//! [`RsgError`] is the unified error of the whole pipeline: every layer
//! (geometry budget, layout database, constraint solving, leaf and
//! hierarchical compaction, the RSGL language) converts into it, so the
//! workload crates' entry points can return one type and callers match
//! on one taxonomy.

use rsg_compact::hier::{ChipError, HierError};
use rsg_compact::leaf::LeafError;
use rsg_compact::limits::Exhausted;
use rsg_layout::LayoutError;
use rsg_solve::SolveError;
use std::fmt;

/// Errors raised while building connectivity graphs, extracting sample
/// interfaces, or expanding graphs to layouts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsgError {
    /// No interface with this `(cell_a, cell_b, index)` key is loaded.
    MissingInterface {
        /// Name of the reference cell.
        cell_a: String,
        /// Name of the placed cell.
        cell_b: String,
        /// Interface index number.
        index: u32,
    },
    /// An interface with this key is already loaded with different data.
    ConflictingInterface {
        /// Name of the reference cell.
        cell_a: String,
        /// Name of the placed cell.
        cell_b: String,
        /// Interface index number.
        index: u32,
    },
    /// A node id did not resolve in this generator's arena.
    UnknownNode(u32),
    /// A node was used in `mk_cell` after already being consumed by an
    /// earlier `mk_cell` (its placement is already bound).
    NodeAlreadyPlaced(u32),
    /// A node passed to `declare_interface` has no placement yet (its
    /// component was never expanded by `mk_cell`).
    NodeNotPlaced(u32),
    /// A cycle in the connectivity graph implied two different placements
    /// for the same node (the graph's redundant information disagrees).
    InconsistentCycle {
        /// The node with contradictory placements.
        node: u32,
    },
    /// `connect` called with the same node on both ends.
    SelfEdge(u32),
    /// An interface label in a sample cell did not select exactly two
    /// instances.
    AmbiguousLabel {
        /// Cell containing the label.
        cell: String,
        /// Label text.
        label: String,
        /// How many instances contained the label point.
        hits: usize,
    },
    /// Error from the layout database.
    Layout(LayoutError),
    /// Error from the constraint-solving layer.
    Solve(SolveError),
    /// Error from the leaf-cell compactor.
    Leaf(LeafError),
    /// Error from the hierarchical compactor.
    Hier(HierError),
    /// A resource budget ([`rsg_compact::limits::Limits`]) ran out.
    Exhausted(Exhausted),
    /// Error from the RSGL language front end (parse or runtime),
    /// carried as its rendered message so the dependency graph stays
    /// acyclic (rsg-lang depends on rsg-core, not vice versa).
    Lang(String),
    /// Malformed generator input (e.g. a personality with no inputs or
    /// no product terms).
    Invalid(String),
}

impl fmt::Display for RsgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsgError::MissingInterface {
                cell_a,
                cell_b,
                index,
            } => {
                write!(f, "no interface #{index} between `{cell_a}` and `{cell_b}`")
            }
            RsgError::ConflictingInterface {
                cell_a,
                cell_b,
                index,
            } => {
                write!(f, "interface #{index} between `{cell_a}` and `{cell_b}` already loaded with different data")
            }
            RsgError::UnknownNode(id) => write!(f, "unknown node #{id}"),
            RsgError::NodeAlreadyPlaced(id) => {
                write!(f, "node #{id} was already consumed by an earlier mk_cell")
            }
            RsgError::NodeNotPlaced(id) => {
                write!(
                    f,
                    "node #{id} has no placement yet (mk_cell its component first)"
                )
            }
            RsgError::InconsistentCycle { node } => {
                write!(
                    f,
                    "graph cycle implies two different placements for node #{node}"
                )
            }
            RsgError::SelfEdge(id) => write!(f, "cannot connect node #{id} to itself"),
            RsgError::AmbiguousLabel { cell, label, hits } => {
                write!(
                    f,
                    "interface label `{label}` in cell `{cell}` selects {hits} instances (need exactly 2)"
                )
            }
            RsgError::Layout(e) => write!(f, "layout error: {e}"),
            RsgError::Solve(e) => write!(f, "solve error: {e}"),
            RsgError::Leaf(e) => write!(f, "leaf compaction error: {e}"),
            RsgError::Hier(e) => write!(f, "hierarchical compaction error: {e}"),
            RsgError::Exhausted(e) => e.fmt(f),
            RsgError::Lang(m) => write!(f, "language error: {m}"),
            RsgError::Invalid(m) => write!(f, "invalid generator input: {m}"),
        }
    }
}

impl std::error::Error for RsgError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RsgError::Layout(e) => Some(e),
            RsgError::Solve(e) => Some(e),
            RsgError::Leaf(e) => Some(e),
            RsgError::Hier(e) => Some(e),
            RsgError::Exhausted(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LayoutError> for RsgError {
    fn from(e: LayoutError) -> RsgError {
        RsgError::Layout(e)
    }
}

impl From<SolveError> for RsgError {
    fn from(e: SolveError) -> RsgError {
        RsgError::Solve(e)
    }
}

impl From<LeafError> for RsgError {
    fn from(e: LeafError) -> RsgError {
        RsgError::Leaf(e)
    }
}

impl From<HierError> for RsgError {
    fn from(e: HierError) -> RsgError {
        RsgError::Hier(e)
    }
}

impl From<ChipError> for RsgError {
    fn from(e: ChipError) -> RsgError {
        match e {
            ChipError::Leaf(e) => RsgError::Leaf(e),
            ChipError::Hier(e) => RsgError::Hier(e),
        }
    }
}

impl From<Exhausted> for RsgError {
    fn from(e: Exhausted) -> RsgError {
        RsgError::Exhausted(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let cases: Vec<RsgError> = vec![
            RsgError::MissingInterface {
                cell_a: "a".into(),
                cell_b: "b".into(),
                index: 1,
            },
            RsgError::ConflictingInterface {
                cell_a: "a".into(),
                cell_b: "b".into(),
                index: 2,
            },
            RsgError::UnknownNode(3),
            RsgError::NodeAlreadyPlaced(4),
            RsgError::NodeNotPlaced(5),
            RsgError::InconsistentCycle { node: 6 },
            RsgError::SelfEdge(7),
            RsgError::AmbiguousLabel {
                cell: "c".into(),
                label: "1".into(),
                hits: 3,
            },
            RsgError::Layout(LayoutError::DuplicateCell("x".into())),
            RsgError::Solve(SolveError::Infeasible("cycle".into())),
            RsgError::Leaf(LeafError::Overflow("relax".into())),
            RsgError::Hier(HierError::Diverged("fixpoint".into())),
            RsgError::Exhausted(Exhausted {
                resource: rsg_compact::limits::Resource::FlatBoxes,
                limit: 1,
                observed: 2,
            }),
            RsgError::Lang("parse error at line 3".into()),
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }
}
