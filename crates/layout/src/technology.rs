//! λ-based design rules (Mead & Conway style, paper ref. [25]).
//!
//! All dimensions are in **grid units**; the technology fixes how many grid
//! units one λ spans, so "scaling λ" retargets a whole library — the
//! motivation for the leaf-cell compactor of Chapter 6.

use crate::Layer;
use std::collections::HashMap;

/// Minimum-width and minimum-spacing rules for one technology.
///
/// Spacing is symmetric: `spacing(a, b) == spacing(b, a)`. Pairs without an
/// entry do not interact (no constraint is generated between them).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DesignRules {
    min_width: HashMap<Layer, i64>,
    min_spacing: HashMap<(Layer, Layer), i64>,
    /// Extra poly width required over diffusion (transistor gate rule of
    /// paper §6.4.3).
    pub gate_width: i64,
    /// Metal/poly overlap around a contact cut (Fig 6.9 expansion).
    pub contact_overlap: i64,
    /// Size of a single square contact cut.
    pub contact_cut_size: i64,
    /// Spacing between adjacent cuts in a multi-cut contact.
    pub contact_cut_spacing: i64,
}

impl DesignRules {
    /// Creates an empty rule set (no constraints at all).
    pub fn new() -> DesignRules {
        DesignRules::default()
    }

    /// Sets the minimum width of a layer.
    pub fn set_min_width(&mut self, layer: Layer, w: i64) -> &mut Self {
        self.min_width.insert(layer, w);
        self
    }

    /// Sets the minimum spacing between two layers (symmetric).
    pub fn set_min_spacing(&mut self, a: Layer, b: Layer, s: i64) -> &mut Self {
        let key = if a.index() <= b.index() {
            (a, b)
        } else {
            (b, a)
        };
        self.min_spacing.insert(key, s);
        self
    }

    /// Minimum width of a layer (0 when unconstrained).
    pub fn min_width(&self, layer: Layer) -> i64 {
        self.min_width.get(&layer).copied().unwrap_or(0)
    }

    /// Minimum spacing between two layers, `None` when they don't interact.
    pub fn min_spacing(&self, a: Layer, b: Layer) -> Option<i64> {
        let key = if a.index() <= b.index() {
            (a, b)
        } else {
            (b, a)
        };
        self.min_spacing.get(&key).copied()
    }

    /// The technology's smallest spacing rule across every interacting
    /// layer pair (0 for an empty rule set). The leaf compactor clamps
    /// free pitch variables to this floor so an interface whose cross
    /// material happens not to interact cannot solve its pitch to a
    /// physically meaningless 0.
    pub fn spacing_floor(&self) -> i64 {
        self.min_spacing.values().copied().min().unwrap_or(0)
    }

    /// Deterministic content digest of the rule set — part of every
    /// incremental-compaction cache key, so two rule sets hash equal iff
    /// they constrain identically. The hash maps are absorbed in sorted
    /// key order; iteration order never leaks into the digest.
    pub fn content_hash(&self) -> u64 {
        let mut h = crate::hash::ContentHasher::new();
        let mut widths: Vec<(usize, i64)> = self
            .min_width
            .iter()
            .map(|(&l, &w)| (l.index(), w))
            .collect();
        widths.sort_unstable();
        h.write_u64(widths.len() as u64);
        for (l, w) in widths {
            h.write_u64(l as u64).write_i64(w);
        }
        let mut spacings: Vec<(usize, usize, i64)> = self
            .min_spacing
            .iter()
            .map(|(&(a, b), &s)| (a.index(), b.index(), s))
            .collect();
        spacings.sort_unstable();
        h.write_u64(spacings.len() as u64);
        for (a, b, s) in spacings {
            h.write_u64(a as u64).write_u64(b as u64).write_i64(s);
        }
        h.write_i64(self.gate_width)
            .write_i64(self.contact_overlap)
            .write_i64(self.contact_cut_size)
            .write_i64(self.contact_cut_spacing);
        h.finish()
    }
}

/// A named technology: λ scale plus its [`DesignRules`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Technology {
    /// Human-readable name, e.g. `"mc-lambda-2"`.
    pub name: String,
    /// Grid units per λ.
    pub lambda: i64,
    /// The design rule set, already multiplied out into grid units.
    pub rules: DesignRules,
}

impl Technology {
    /// The classic Mead–Conway rule set at a given λ (in grid units).
    ///
    /// Widths: diffusion/poly/metal1 = 2λ/2λ/3λ; spacings: diff–diff 3λ,
    /// poly–poly 2λ, poly–diff 1λ, metal–metal 3λ; cut 2λ square with 1λ
    /// overlap; gates are 2λ wide poly over diffusion.
    pub fn mead_conway(lambda: i64) -> Technology {
        assert!(lambda > 0, "lambda must be positive");
        let mut r = DesignRules::new();
        r.set_min_width(Layer::Diffusion, 2 * lambda)
            .set_min_width(Layer::Poly, 2 * lambda)
            .set_min_width(Layer::Metal1, 3 * lambda)
            .set_min_width(Layer::Metal2, 4 * lambda)
            .set_min_width(Layer::Cut, 2 * lambda)
            .set_min_width(Layer::Contact, 4 * lambda);
        r.set_min_spacing(Layer::Diffusion, Layer::Diffusion, 3 * lambda)
            .set_min_spacing(Layer::Poly, Layer::Poly, 2 * lambda)
            .set_min_spacing(Layer::Poly, Layer::Diffusion, lambda)
            .set_min_spacing(Layer::Metal1, Layer::Metal1, 3 * lambda)
            .set_min_spacing(Layer::Metal2, Layer::Metal2, 4 * lambda)
            .set_min_spacing(Layer::Cut, Layer::Cut, 2 * lambda)
            .set_min_spacing(Layer::Contact, Layer::Contact, 2 * lambda);
        r.gate_width = 2 * lambda;
        r.contact_overlap = lambda;
        r.contact_cut_size = 2 * lambda;
        r.contact_cut_spacing = 2 * lambda;
        Technology {
            name: format!("mc-lambda-{lambda}"),
            lambda,
            rules: r,
        }
    }
}

impl Default for Technology {
    fn default() -> Technology {
        Technology::mead_conway(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spacing_is_symmetric() {
        let t = Technology::mead_conway(2);
        assert_eq!(
            t.rules.min_spacing(Layer::Poly, Layer::Diffusion),
            t.rules.min_spacing(Layer::Diffusion, Layer::Poly)
        );
        assert_eq!(t.rules.min_spacing(Layer::Poly, Layer::Diffusion), Some(2));
    }

    #[test]
    fn unrelated_layers_dont_interact() {
        let t = Technology::mead_conway(2);
        assert_eq!(t.rules.min_spacing(Layer::Metal1, Layer::Poly), None);
        assert_eq!(t.rules.min_width(Layer::Label), 0);
    }

    #[test]
    fn scaling_lambda_scales_rules() {
        let a = Technology::mead_conway(1);
        let b = Technology::mead_conway(3);
        assert_eq!(
            a.rules.min_width(Layer::Poly) * 3,
            b.rules.min_width(Layer::Poly)
        );
        assert_eq!(
            a.rules
                .min_spacing(Layer::Diffusion, Layer::Diffusion)
                .unwrap()
                * 3,
            b.rules
                .min_spacing(Layer::Diffusion, Layer::Diffusion)
                .unwrap()
        );
    }

    #[test]
    #[should_panic(expected = "lambda must be positive")]
    fn zero_lambda_rejected() {
        let _ = Technology::mead_conway(0);
    }

    #[test]
    fn spacing_floor_is_the_smallest_rule() {
        let t = Technology::mead_conway(2);
        // Poly–diffusion at 1λ is the tightest Mead–Conway spacing.
        assert_eq!(t.rules.spacing_floor(), 2);
        assert_eq!(DesignRules::new().spacing_floor(), 0);
    }

    #[test]
    fn content_hash_tracks_the_rules() {
        let a = Technology::mead_conway(2).rules;
        let b = Technology::mead_conway(2).rules;
        assert_eq!(a.content_hash(), b.content_hash());
        let mut c = Technology::mead_conway(2).rules;
        c.set_min_spacing(Layer::Poly, Layer::Poly, 6);
        assert_ne!(a.content_hash(), c.content_hash());
        assert_ne!(
            a.content_hash(),
            Technology::mead_conway(3).rules.content_hash()
        );
    }

    #[test]
    fn builder_style_overrides() {
        let mut r = DesignRules::new();
        r.set_min_width(Layer::Poly, 5)
            .set_min_width(Layer::Poly, 7);
        assert_eq!(r.min_width(Layer::Poly), 7);
    }
}
