//! Mask layers for the synthetic CMOS technology.

use std::fmt;
use std::str::FromStr;

/// A mask layer.
///
/// The set is a simplified Mead–Conway CMOS stack plus the `Contact`
/// pseudo-layer of paper §6.4.3 (Fig 6.9): `Contact` does not correspond to
/// a lithographic mask; at output time it expands into metal/poly overlaps
/// and one or more contact cuts (see `rsg-compact::layers`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Layer {
    /// Active diffusion.
    Diffusion,
    /// Polysilicon (transistor gates where it crosses diffusion).
    Poly,
    /// First metal.
    Metal1,
    /// Second metal.
    Metal2,
    /// Contact cut between metal1 and poly/diffusion (real mask layer).
    Cut,
    /// Via between metal1 and metal2.
    Via,
    /// P-plus implant.
    Implant,
    /// N-well.
    Well,
    /// The composite contact pseudo-layer of paper Fig 6.9.
    Contact,
    /// Non-mask annotation layer used for interface labels (paper Fig 5.5
    /// places "a numerical label in the overlapping region").
    Label,
}

impl Layer {
    /// Every layer, mask layers first.
    pub const ALL: [Layer; 10] = [
        Layer::Diffusion,
        Layer::Poly,
        Layer::Metal1,
        Layer::Metal2,
        Layer::Cut,
        Layer::Via,
        Layer::Implant,
        Layer::Well,
        Layer::Contact,
        Layer::Label,
    ];

    /// The CIF layer name (MOSIS-style, invented for non-standard layers).
    pub const fn cif_name(self) -> &'static str {
        match self {
            Layer::Diffusion => "CAA",
            Layer::Poly => "CPG",
            Layer::Metal1 => "CMF",
            Layer::Metal2 => "CMS",
            Layer::Cut => "CCP",
            Layer::Via => "CVA",
            Layer::Implant => "CSP",
            Layer::Well => "CWN",
            Layer::Contact => "XCT",
            Layer::Label => "XLB",
        }
    }

    /// Short lowercase name used by the `.rsgl` textual format.
    pub const fn short_name(self) -> &'static str {
        match self {
            Layer::Diffusion => "diff",
            Layer::Poly => "poly",
            Layer::Metal1 => "m1",
            Layer::Metal2 => "m2",
            Layer::Cut => "cut",
            Layer::Via => "via",
            Layer::Implant => "impl",
            Layer::Well => "well",
            Layer::Contact => "cont",
            Layer::Label => "label",
        }
    }

    /// `true` for layers that appear on lithographic masks (everything but
    /// the pseudo and annotation layers).
    pub const fn is_mask(self) -> bool {
        !matches!(self, Layer::Contact | Layer::Label)
    }

    /// Stable small integer id for dense tables.
    pub const fn index(self) -> usize {
        match self {
            Layer::Diffusion => 0,
            Layer::Poly => 1,
            Layer::Metal1 => 2,
            Layer::Metal2 => 3,
            Layer::Cut => 4,
            Layer::Via => 5,
            Layer::Implant => 6,
            Layer::Well => 7,
            Layer::Contact => 8,
            Layer::Label => 9,
        }
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Error returned when parsing an unknown layer name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLayerError(pub(crate) String);

impl fmt::Display for ParseLayerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown layer name `{}`", self.0)
    }
}

impl std::error::Error for ParseLayerError {}

impl FromStr for Layer {
    type Err = ParseLayerError;

    fn from_str(s: &str) -> Result<Layer, ParseLayerError> {
        Layer::ALL
            .iter()
            .copied()
            .find(|l| l.short_name() == s || l.cif_name() == s)
            .ok_or_else(|| ParseLayerError(s.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for l in Layer::ALL {
            assert_eq!(l.short_name().parse::<Layer>().unwrap(), l);
            assert_eq!(l.cif_name().parse::<Layer>().unwrap(), l);
        }
    }

    #[test]
    fn unknown_name_errors() {
        let err = "plutonium".parse::<Layer>().unwrap_err();
        assert!(err.to_string().contains("plutonium"));
    }

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = [false; 10];
        for l in Layer::ALL {
            assert!(!seen[l.index()]);
            seen[l.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn mask_classification() {
        assert!(Layer::Poly.is_mask());
        assert!(!Layer::Contact.is_mask());
        assert!(!Layer::Label.is_mask());
    }
}
