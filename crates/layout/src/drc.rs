//! A flat design-rule checker.
//!
//! The RSG itself never checks rules — "each cell can be made design rule
//! correct" by construction (paper §2.3) — but the compaction chapter
//! needs an independent referee: compacted layouts must re-check clean.
//! This checker verifies minimum widths and pairwise spacings on a flat
//! box list, with the same connected-material exemption the constraint
//! generator uses (touching same-layer boxes are one electrical net).
//!
//! [`check`] runs as a sweep over a [`GeomIndex`]: each box only visits
//! neighbours within its rule distance along the sweep axis, costing
//! O(n log n + k) where k is the number of near pairs, instead of the
//! all-pairs double loop, which survives as [`check_pairwise`] (the
//! reference the equivalence proptests and the `drc` bench compare
//! against). Both produce the identical violation list, in the
//! identical order.

use crate::{DesignRules, FlatLayout, Layer};
use rsg_geom::par::{par_map, Parallelism};
use rsg_geom::{GeomIndex, Rect};
use std::fmt;

/// One design-rule violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Violation {
    /// A box is narrower than the layer's minimum width (either axis).
    Width {
        /// Index of the box in the checked list.
        index: usize,
        /// The offending layer.
        layer: Layer,
        /// Measured width (the smaller dimension).
        actual: i64,
        /// Required minimum.
        required: i64,
    },
    /// Two boxes of interacting layers are closer than the minimum
    /// spacing (and are not connected material).
    Spacing {
        /// Index of the first box.
        a: usize,
        /// Index of the second box.
        b: usize,
        /// Measured separation (0 for overlapping different layers).
        actual: i64,
        /// Required minimum.
        required: i64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Width {
                index,
                layer,
                actual,
                required,
            } => {
                write!(f, "box #{index} on {layer}: width {actual} < {required}")
            }
            Violation::Spacing {
                a,
                b,
                actual,
                required,
            } => {
                write!(f, "boxes #{a}/#{b}: spacing {actual} < {required}")
            }
        }
    }
}

/// Checks a flat box list against the rules; returns all violations.
///
/// Spacing is measured as the L∞ gap between rectangles; boxes of the
/// same layer that touch or overlap are connected and exempt from their
/// layer's self-spacing rule. Zero-area boxes are ignored.
///
/// Builds a [`GeomIndex`] and sweeps it; when a prebuilt index already
/// exists (a [`FlatLayout`]), use [`check_flat`] to skip the build.
pub fn check(boxes: &[(Layer, Rect)], rules: &DesignRules) -> Vec<Violation> {
    check_indexed(&GeomIndex::build(boxes, rsg_geom::Axis::X), rules)
}

/// [`check`] against a [`FlatLayout`], reusing its prebuilt index.
pub fn check_flat(flat: &FlatLayout, rules: &DesignRules) -> Vec<Violation> {
    check_indexed(flat.index(), rules)
}

/// The sweep checker proper: every box queries the index for neighbours
/// on each interacting layer within the rule distance along the sweep
/// axis; any pair violating does so within that window, because the L∞
/// gap bounds the along-axis gap from above.
pub fn check_indexed(index: &GeomIndex<Layer>, rules: &DesignRules) -> Vec<Violation> {
    check_indexed_par(index, rules, Parallelism::Serial)
}

/// [`check_flat`] with the sweep fanned across worker threads — the
/// per-box neighbour scans are independent, so ranges of box indices
/// run on separate workers and the range results concatenate in index
/// order. The violation list is **bit-identical** to [`check_flat`]
/// at any thread count.
pub fn check_flat_par(flat: &FlatLayout, rules: &DesignRules, par: Parallelism) -> Vec<Violation> {
    check_indexed_par(flat.index(), rules, par)
}

/// [`check_indexed`] with the spacing sweep fanned across workers.
///
/// Widths are a single cheap pass and stay serial; the spacing scan —
/// the dominant cost — splits the box list into contiguous index
/// ranges, each producing its violation block independently against
/// the shared read-only index. Blocks are concatenated in range order,
/// so the output order (by `a`, then `b`) matches the serial sweep and
/// the pairwise referee exactly.
pub fn check_indexed_par(
    index: &GeomIndex<Layer>,
    rules: &DesignRules,
    par: Parallelism,
) -> Vec<Violation> {
    let boxes = index.items();
    let mut out = Vec::new();
    for (i, &(layer, rect)) in boxes.iter().enumerate() {
        if rect.area() == 0 {
            continue;
        }
        let min_w = rules.min_width(layer);
        let actual = rect.width().min(rect.height());
        if min_w > 0 && actual < min_w {
            out.push(Violation::Width {
                index: i,
                layer,
                actual,
                required: min_w,
            });
        }
    }
    let labels: Vec<Layer> = index.labels().collect();
    let threads = par.threads().min(boxes.len().max(1));
    if threads <= 1 {
        spacing_sweep(index, rules, &labels, 0..boxes.len(), &mut out);
        return out;
    }
    // More ranges than workers so one dense region cannot serialize the
    // batch; each range yields its block, concatenated in range order.
    let chunk = boxes.len().div_ceil(threads * 8).max(1);
    let ranges: Vec<(usize, usize)> = (0..boxes.len())
        .step_by(chunk)
        .map(|s| (s, (s + chunk).min(boxes.len())))
        .collect();
    let blocks = par_map(&ranges, threads, |&(s, e)| {
        let mut block = Vec::new();
        spacing_sweep(index, rules, &labels, s..e, &mut block);
        block
    });
    for (block, &(s, e)) in blocks.into_iter().zip(&ranges) {
        match block {
            Ok(mut b) => out.append(&mut b),
            // The sweep closure is panic-free; if a worker still died,
            // recompute the range inline so the serial semantics (and
            // any genuine panic) surface on the caller's thread.
            Err(_) => spacing_sweep(index, rules, &labels, s..e, &mut out),
        }
    }
    out
}

/// The spacing half of the sweep for boxes `i` in `range`, appended to
/// `out` in the serial order (by `i`, then partner index).
fn spacing_sweep(
    index: &GeomIndex<Layer>,
    rules: &DesignRules,
    labels: &[Layer],
    range: std::ops::Range<usize>,
    out: &mut Vec<Violation>,
) {
    let boxes = index.items();
    let axis = index.axis();
    let mut near: Vec<Violation> = Vec::new();
    for i in range {
        let (la, ra) = boxes[i];
        if ra.area() == 0 {
            continue;
        }
        near.clear();
        for &lb in labels {
            let Some(required) = rules.min_spacing(la, lb) else {
                continue;
            };
            let span = (ra.lo_along(axis), ra.hi_along(axis));
            for j in index.neighbors_within(lb, span, required) {
                if j <= i {
                    continue; // each unordered pair reported once, as (i, j<i ... j>i)
                }
                let rb = boxes[j].1;
                if rb.area() == 0 {
                    continue;
                }
                if la == lb && ra.intersect(rb).is_some() {
                    continue; // connected material
                }
                let gap = rect_gap(ra, rb);
                if gap < required {
                    near.push(Violation::Spacing {
                        a: i,
                        b: j,
                        actual: gap,
                        required,
                    });
                }
            }
        }
        // Window queries return neighbours bucket by bucket in sweep
        // order; re-sort so the output order matches the pairwise
        // reference exactly. Only spacing violations reach `near`.
        near.sort_by_key(|v| match v {
            Violation::Spacing { b, .. } => *b,
            Violation::Width { .. } => usize::MAX, // widths never reach `near`
        });
        out.append(&mut near);
    }
}

/// The all-pairs reference checker the sweep replaced. Same output as
/// [`check`], quadratic cost — kept as the independent referee for the
/// equivalence proptests and the `drc/{pairwise,sweep}` benchmark pair.
pub fn check_pairwise(boxes: &[(Layer, Rect)], rules: &DesignRules) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, &(layer, rect)) in boxes.iter().enumerate() {
        if rect.area() == 0 {
            continue;
        }
        let min_w = rules.min_width(layer);
        let actual = rect.width().min(rect.height());
        if min_w > 0 && actual < min_w {
            out.push(Violation::Width {
                index: i,
                layer,
                actual,
                required: min_w,
            });
        }
    }
    for (i, &(la, ra)) in boxes.iter().enumerate() {
        if ra.area() == 0 {
            continue;
        }
        for (j, &(lb, rb)) in boxes.iter().enumerate().skip(i + 1) {
            if rb.area() == 0 {
                continue;
            }
            let Some(required) = rules.min_spacing(la, lb) else {
                continue;
            };
            if la == lb && ra.intersect(rb).is_some() {
                continue; // connected material
            }
            let gap = rect_gap(ra, rb);
            if gap < required {
                out.push(Violation::Spacing {
                    a: i,
                    b: j,
                    actual: gap,
                    required,
                });
            }
        }
    }
    out
}

/// L∞ separation between two rectangles (0 if they touch or overlap).
fn rect_gap(a: Rect, b: Rect) -> i64 {
    let dx = (b.lo().x - a.hi().x).max(a.lo().x - b.hi().x).max(0);
    let dy = (b.lo().y - a.hi().y).max(a.lo().y - b.hi().y).max(0);
    dx.max(dy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Technology;

    fn rules() -> DesignRules {
        Technology::mead_conway(2).rules.clone()
    }

    #[test]
    fn clean_layout_passes() {
        let boxes = vec![
            (Layer::Poly, Rect::from_coords(0, 0, 4, 20)),
            (Layer::Poly, Rect::from_coords(8, 0, 12, 20)), // 2λ = 4 away
            (Layer::Metal1, Rect::from_coords(0, 30, 20, 36)),
        ];
        assert!(check(&boxes, &rules()).is_empty());
    }

    #[test]
    fn width_violation() {
        let boxes = vec![(Layer::Metal1, Rect::from_coords(0, 0, 4, 40))]; // needs 6
        let v = check(&boxes, &rules());
        assert_eq!(v.len(), 1);
        assert!(matches!(
            v[0],
            Violation::Width {
                actual: 4,
                required: 6,
                ..
            }
        ));
        assert!(v[0].to_string().contains("width 4 < 6"));
    }

    #[test]
    fn spacing_violation_diagonal_and_lateral() {
        let boxes = vec![
            (Layer::Poly, Rect::from_coords(0, 0, 4, 20)),
            (Layer::Poly, Rect::from_coords(6, 0, 10, 20)), // gap 2 < 4
        ];
        let v = check(&boxes, &rules());
        assert_eq!(v.len(), 1);
        assert!(matches!(
            v[0],
            Violation::Spacing {
                actual: 2,
                required: 4,
                ..
            }
        ));
        // Diagonal: L∞ gap 3 < 4.
        let diag = vec![
            (Layer::Poly, Rect::from_coords(0, 0, 4, 4)),
            (Layer::Poly, Rect::from_coords(7, 7, 11, 11)),
        ];
        assert_eq!(check(&diag, &rules()).len(), 1);
    }

    #[test]
    fn connected_material_exempt() {
        let boxes = vec![
            (Layer::Diffusion, Rect::from_coords(0, 0, 10, 4)),
            (Layer::Diffusion, Rect::from_coords(10, 0, 20, 4)), // abuts
        ];
        assert!(check(&boxes, &rules()).is_empty());
    }

    #[test]
    fn cross_layer_overlap_violates() {
        // Poly over diffusion closer than 1λ — a gate is poly *crossing*
        // diffusion; mere proximity of unrelated shapes violates.
        let boxes = vec![
            (Layer::Poly, Rect::from_coords(0, 0, 4, 20)),
            (Layer::Diffusion, Rect::from_coords(5, 0, 20, 8)), // gap 1 < 2
        ];
        let v = check(&boxes, &rules());
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn zero_area_ignored() {
        let boxes = vec![
            (Layer::Poly, Rect::from_coords(0, 0, 0, 20)),
            (Layer::Poly, Rect::from_coords(1, 0, 5, 20)),
        ];
        assert!(check(&boxes, &rules()).is_empty());
    }
}
