//! Error type for the layout database.

use std::fmt;

/// Errors raised by the layout database and its file formats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// A cell name was inserted twice into a [`crate::CellTable`].
    DuplicateCell(String),
    /// A [`crate::CellId`] did not resolve (wrong table or stale id).
    UnknownCell(String),
    /// Cell instantiation recursion (a cell that transitively calls itself).
    RecursiveCell(String),
    /// A parse error in the `.rsgl` or CIF reader, with a 1-based line
    /// number.
    Parse {
        /// Line at which the error was detected.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// A coordinate exceeded the ingest budget
    /// ([`rsg_geom::MAX_COORD`]); admitting it could overflow interior
    /// `i64` arithmetic, so the layout is rejected at the door.
    CoordinateBudget {
        /// Name of the offending cell.
        cell: String,
        /// The out-of-budget coordinate value.
        value: i64,
    },
    /// A cell name cannot be serialized to CIF without corrupting the
    /// statement stream. The CIF `9 {name};` user extension carries the
    /// name as one whitespace-delimited token terminated by `;`, so a
    /// name that is empty, contains whitespace or `;`, or begins with
    /// `(` (the comment introducer) would silently truncate or vanish
    /// on round-trip; the writer rejects it instead.
    CifName {
        /// The unserializable cell name.
        cell: String,
    },
    /// A rewrite supplied the wrong number of rectangles for a cell's
    /// boxes (see [`crate::CellDefinition::with_box_rects`]).
    BoxCount {
        /// Name of the cell being rewritten.
        cell: String,
        /// Boxes in the cell definition.
        boxes: usize,
        /// Rectangles the rewrite supplied.
        rects: usize,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::DuplicateCell(name) => write!(f, "duplicate cell name `{name}`"),
            LayoutError::UnknownCell(what) => write!(f, "unknown cell {what}"),
            LayoutError::RecursiveCell(name) => {
                write!(f, "cell `{name}` transitively instantiates itself")
            }
            LayoutError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            LayoutError::CifName { cell } => {
                write!(
                    f,
                    "cell name {cell:?} cannot be written to CIF \
                     (empty, whitespace, `;`, or leading `(` would corrupt the statement stream)"
                )
            }
            LayoutError::CoordinateBudget { cell, value } => {
                write!(
                    f,
                    "cell `{cell}`: coordinate {value} exceeds the ingest budget \
                     (|c| <= {})",
                    rsg_geom::MAX_COORD
                )
            }
            LayoutError::BoxCount { cell, boxes, rects } => {
                write!(
                    f,
                    "cell `{cell}`: rewrite supplied {rects} rectangles for {boxes} boxes"
                )
            }
        }
    }
}

impl std::error::Error for LayoutError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            LayoutError::DuplicateCell("a".into()).to_string(),
            "duplicate cell name `a`"
        );
        assert!(LayoutError::Parse {
            line: 3,
            message: "bad".into()
        }
        .to_string()
        .contains("line 3"));
    }
}
