//! Error type for the layout database.

use std::fmt;

/// Errors raised by the layout database and its file formats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// A cell name was inserted twice into a [`crate::CellTable`].
    DuplicateCell(String),
    /// A [`crate::CellId`] did not resolve (wrong table or stale id).
    UnknownCell(String),
    /// Cell instantiation recursion (a cell that transitively calls itself).
    RecursiveCell(String),
    /// A parse error in the `.rsgl` reader, with a 1-based line number.
    Parse {
        /// Line at which the error was detected.
        line: usize,
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::DuplicateCell(name) => write!(f, "duplicate cell name `{name}`"),
            LayoutError::UnknownCell(what) => write!(f, "unknown cell {what}"),
            LayoutError::RecursiveCell(name) => {
                write!(f, "cell `{name}` transitively instantiates itself")
            }
            LayoutError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for LayoutError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            LayoutError::DuplicateCell("a".into()).to_string(),
            "duplicate cell name `a`"
        );
        assert!(LayoutError::Parse {
            line: 3,
            message: "bad".into()
        }
        .to_string()
        .contains("line 3"));
    }
}
