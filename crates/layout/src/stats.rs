//! Layout statistics: the numbers experiment E8 reports for Fig 5.6.
//!
//! Statistics are derived from a [`FlatLayout`] — the same single
//! hierarchy walk that produces the flat boxes also tallies instances,
//! reachable cells, and depth, so no second traversal exists.

use crate::{CellId, CellTable, FlatLayout, Layer, LayoutError};
use rsg_geom::BoundingBox;
use std::collections::HashMap;
use std::fmt;

/// Aggregate statistics of a flattened hierarchy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LayoutStats {
    /// Flat box count per layer.
    pub boxes_per_layer: HashMap<Layer, usize>,
    /// Total flat box count.
    pub total_boxes: usize,
    /// Total expanded instance count (every call, at every level).
    pub total_instances: usize,
    /// Number of distinct cell definitions reachable from the root.
    pub distinct_cells: usize,
    /// Maximum hierarchy depth.
    pub max_depth: u32,
    /// Bounding box of all flat boxes.
    pub bbox: BoundingBox,
}

impl LayoutStats {
    /// Computes statistics for the hierarchy under `root` by flattening
    /// it (one walk) and summarizing the result.
    ///
    /// # Errors
    ///
    /// Fails on cyclic hierarchies or dangling instance ids.
    pub fn compute(table: &CellTable, root: CellId) -> Result<LayoutStats, LayoutError> {
        Ok(LayoutStats::of_flat(&crate::flatten(table, root)?))
    }

    /// Summarizes an already-flattened layout (no hierarchy walk).
    pub fn of_flat(flat: &FlatLayout) -> LayoutStats {
        let mut boxes_per_layer: HashMap<Layer, usize> = HashMap::new();
        for b in flat.iter() {
            *boxes_per_layer.entry(b.layer).or_insert(0) += 1;
        }
        LayoutStats {
            boxes_per_layer,
            total_boxes: flat.len(),
            total_instances: flat.total_instances(),
            distinct_cells: flat.distinct_cells(),
            max_depth: flat.max_depth(),
            bbox: flat.bbox(),
        }
    }

    /// Flat boxes on one layer (0 when absent).
    pub fn boxes_on(&self, layer: Layer) -> usize {
        self.boxes_per_layer.get(&layer).copied().unwrap_or(0)
    }
}

impl fmt::Display for LayoutStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} flat boxes, {} instances, {} cells, depth {}",
            self.total_boxes, self.total_instances, self.distinct_cells, self.max_depth
        )?;
        let mut layers: Vec<_> = self.boxes_per_layer.iter().collect();
        layers.sort_by_key(|(l, _)| l.index());
        for (layer, n) in layers {
            writeln!(f, "  {layer:>6}: {n}")?;
        }
        if let Some(r) = self.bbox.rect() {
            writeln!(f, "  bbox: {r} ({} x {})", r.width(), r.height())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CellDefinition, Instance};
    use rsg_geom::{Orientation, Point, Rect};

    #[test]
    fn counts_and_depth() {
        let mut t = CellTable::new();
        let mut leaf = CellDefinition::new("leaf");
        leaf.add_box(Layer::Poly, Rect::from_coords(0, 0, 2, 2));
        leaf.add_box(Layer::Metal1, Rect::from_coords(0, 0, 4, 1));
        let leaf_id = t.insert(leaf).unwrap();
        let mut row = CellDefinition::new("row");
        for i in 0..3 {
            row.add_instance(Instance::new(
                leaf_id,
                Point::new(i * 10, 0),
                Orientation::NORTH,
            ));
        }
        let row_id = t.insert(row).unwrap();
        let mut top = CellDefinition::new("top");
        top.add_instance(Instance::new(row_id, Point::new(0, 0), Orientation::NORTH));
        top.add_instance(Instance::new(row_id, Point::new(0, 20), Orientation::NORTH));
        let top_id = t.insert(top).unwrap();

        let s = LayoutStats::compute(&t, top_id).unwrap();
        assert_eq!(s.total_boxes, 12);
        assert_eq!(s.boxes_on(Layer::Poly), 6);
        assert_eq!(s.boxes_on(Layer::Metal1), 6);
        assert_eq!(s.boxes_on(Layer::Cut), 0);
        assert_eq!(s.total_instances, 8); // 2 rows + 2*3 leaves
        assert_eq!(s.distinct_cells, 3);
        assert_eq!(s.max_depth, 2);
        assert_eq!(s.bbox.rect(), Some(Rect::from_coords(0, 0, 24, 22)));
        let text = s.to_string();
        assert!(text.contains("12 flat boxes"));

        // Of-flat on the same hierarchy agrees with compute.
        let flat = crate::flatten(&t, top_id).unwrap();
        assert_eq!(LayoutStats::of_flat(&flat), s);
    }
}
