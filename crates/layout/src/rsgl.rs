//! The `.rsgl` textual layout format: a simple, line-oriented hierarchical
//! format with both a writer and a reader.
//!
//! This stands in for the paper's second format ("DEF", ref. [2] — an
//! internal MIT format, not the later IC DEF). Having a *readable* format
//! matters because RSG sample layouts are inputs: "The RSG can be made to
//! accept any file format by providing an appropriate parser" (§4.5).
//!
//! Grammar (one statement per line, `#` comments):
//!
//! ```text
//! cell <name>
//!   box <layer> <x_lo> <y_lo> <x_hi> <y_hi>
//!   label <text> <x> <y>
//!   inst <cellname> <orientation> <x> <y>
//! end
//! ```
//!
//! Cells must be defined before they are instantiated (callee-first order —
//! the writer emits them that way).

use crate::{CellDefinition, CellId, CellTable, Instance, Layer, LayoutError, LayoutObject};
use rsg_geom::{Orientation, Point, Rect};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Serializes the hierarchy under `root` in `.rsgl` form.
///
/// # Errors
///
/// Fails on cyclic hierarchies or dangling instance ids.
pub fn write_rsgl(table: &CellTable, root: CellId) -> Result<String, LayoutError> {
    let mut order = Vec::new();
    let mut mark = vec![0u8; table.len()];
    order_cells(table, root, &mut mark, &mut order)?;
    let mut out = String::new();
    out.push_str("# rsgl 1\n");
    for &id in &order {
        let def = table.require(id)?;
        let _ = writeln!(out, "cell {}", def.name());
        for obj in def.objects() {
            match obj {
                LayoutObject::Box { layer, rect } => {
                    let _ = writeln!(
                        out,
                        "  box {} {} {} {} {}",
                        layer.short_name(),
                        rect.lo().x,
                        rect.lo().y,
                        rect.hi().x,
                        rect.hi().y
                    );
                }
                LayoutObject::Label { text, at } => {
                    let _ = writeln!(out, "  label {} {} {}", text, at.x, at.y);
                }
                LayoutObject::Instance(inst) => {
                    let name = table.require(inst.cell)?.name();
                    let _ = writeln!(
                        out,
                        "  inst {} {} {} {}",
                        name,
                        inst.orientation.name(),
                        inst.point_of_call.x,
                        inst.point_of_call.y
                    );
                }
            }
        }
        out.push_str("end\n");
    }
    let _ = writeln!(out, "top {}", table.require(root)?.name());
    Ok(out)
}

fn order_cells(
    table: &CellTable,
    cell: CellId,
    mark: &mut [u8],
    order: &mut Vec<CellId>,
) -> Result<(), LayoutError> {
    let idx = cell.raw() as usize;
    match mark.get(idx) {
        None => return Err(LayoutError::UnknownCell(format!("#{}", cell.raw()))),
        Some(2) => return Ok(()),
        Some(1) => {
            let name = table.get(cell).map_or("?", |c| c.name()).to_owned();
            return Err(LayoutError::RecursiveCell(name));
        }
        Some(_) => {}
    }
    mark[idx] = 1;
    for inst in table.require(cell)?.instances() {
        order_cells(table, inst.cell, mark, order)?;
    }
    mark[idx] = 2;
    order.push(cell);
    Ok(())
}

/// Parses `.rsgl` text into a fresh [`CellTable`], returning the table and
/// the id of the `top` cell (or of the last cell if no `top` line).
///
/// # Errors
///
/// Returns [`LayoutError::Parse`] with a 1-based line number on malformed
/// input, unknown layers/orientations, or forward instance references.
pub fn read_rsgl(text: &str) -> Result<(CellTable, CellId), LayoutError> {
    let mut table = CellTable::new();
    let mut ids: HashMap<String, CellId> = HashMap::new();
    let mut current: Option<CellDefinition> = None;
    let mut top: Option<CellId> = None;

    let err = |line: usize, message: &str| LayoutError::Parse {
        line,
        message: message.into(),
    };

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut toks = line.split_whitespace();
        let Some(kw) = toks.next() else {
            continue; // unreachable: `line` is non-empty — but no panic path
        };
        match kw {
            "cell" => {
                if current.is_some() {
                    return Err(err(lineno, "nested `cell` (missing `end`?)"));
                }
                let name = toks
                    .next()
                    .ok_or_else(|| err(lineno, "cell needs a name"))?;
                current = Some(CellDefinition::new(name));
            }
            "end" => {
                let def = current
                    .take()
                    .ok_or_else(|| err(lineno, "`end` outside a cell"))?;
                let name = def.name().to_owned();
                let id = table.insert(def).map_err(|e| err(lineno, &e.to_string()))?;
                ids.insert(name, id);
            }
            "box" => {
                let cell = current
                    .as_mut()
                    .ok_or_else(|| err(lineno, "`box` outside a cell"))?;
                let layer: Layer = toks
                    .next()
                    .ok_or_else(|| err(lineno, "box needs a layer"))?
                    .parse()
                    .map_err(|e| err(lineno, &format!("{e}")))?;
                let nums = parse_ints::<4>(&mut toks).map_err(|m| err(lineno, &m))?;
                if nums[0] > nums[2] || nums[1] > nums[3] {
                    return Err(err(lineno, "box corners out of order"));
                }
                cell.add_box(layer, Rect::from_coords(nums[0], nums[1], nums[2], nums[3]));
            }
            "label" => {
                let cell = current
                    .as_mut()
                    .ok_or_else(|| err(lineno, "`label` outside a cell"))?;
                let text = toks
                    .next()
                    .ok_or_else(|| err(lineno, "label needs text"))?
                    .to_owned();
                let nums = parse_ints::<2>(&mut toks).map_err(|m| err(lineno, &m))?;
                cell.add_label(text, Point::new(nums[0], nums[1]));
            }
            "inst" => {
                let name = toks
                    .next()
                    .ok_or_else(|| err(lineno, "inst needs a cell name"))?
                    .to_owned();
                let target = *ids
                    .get(&name)
                    .ok_or_else(|| err(lineno, &format!("instance of undefined cell `{name}`")))?;
                let o = toks
                    .next()
                    .ok_or_else(|| err(lineno, "inst needs an orientation"))?;
                let orientation = Orientation::from_name(o)
                    .ok_or_else(|| err(lineno, &format!("unknown orientation `{o}`")))?;
                let nums = parse_ints::<2>(&mut toks).map_err(|m| err(lineno, &m))?;
                let cell = current
                    .as_mut()
                    .ok_or_else(|| err(lineno, "`inst` outside a cell"))?;
                cell.add_instance(Instance::new(
                    target,
                    Point::new(nums[0], nums[1]),
                    orientation,
                ));
            }
            "top" => {
                let name = toks
                    .next()
                    .ok_or_else(|| err(lineno, "top needs a cell name"))?;
                top = Some(
                    *ids.get(name)
                        .ok_or_else(|| err(lineno, &format!("top cell `{name}` undefined")))?,
                );
            }
            other => return Err(err(lineno, &format!("unknown keyword `{other}`"))),
        }
    }
    if current.is_some() {
        return Err(err(
            text.lines().count(),
            "unterminated cell at end of file",
        ));
    }
    let top = top
        .or_else(|| {
            table
                .len()
                .checked_sub(1)
                .map(|i| CellId::from_raw(i as u32))
        })
        .ok_or_else(|| err(1, "empty layout"))?;
    Ok((table, top))
}

fn parse_ints<'a, const N: usize>(
    toks: &mut impl Iterator<Item = &'a str>,
) -> Result<[i64; N], String> {
    let mut out = [0i64; N];
    for slot in out.iter_mut() {
        let t = toks
            .next()
            .ok_or_else(|| "missing numeric field".to_owned())?;
        let v = t.parse::<i64>().map_err(|_| format!("bad integer `{t}`"))?;
        if !(-rsg_geom::MAX_COORD..=rsg_geom::MAX_COORD).contains(&v) {
            return Err(format!(
                "coordinate {v} exceeds the ingest budget (|c| <= {})",
                rsg_geom::MAX_COORD
            ));
        }
        *slot = v;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (CellTable, CellId) {
        let mut t = CellTable::new();
        let mut leaf = CellDefinition::new("leaf");
        leaf.add_box(Layer::Diffusion, Rect::from_coords(0, 0, 4, 4));
        leaf.add_label("7", Point::new(2, 2));
        let leaf_id = t.insert(leaf).unwrap();
        let mut top = CellDefinition::new("top");
        top.add_instance(Instance::new(leaf_id, Point::new(8, 0), Orientation::EAST));
        top.add_box(Layer::Metal1, Rect::from_coords(-2, -2, 0, 10));
        let top_id = t.insert(top).unwrap();
        (t, top_id)
    }

    #[test]
    fn round_trip() {
        let (t, top) = sample();
        let text = write_rsgl(&t, top).unwrap();
        let (t2, top2) = read_rsgl(&text).unwrap();
        assert_eq!(t2.require(top2).unwrap().name(), "top");
        let leaf2 = t2.lookup("leaf").unwrap();
        let leaf = t2.require(leaf2).unwrap();
        assert_eq!(leaf.object_counts(), (1, 1, 0));
        assert_eq!(
            leaf.boxes().next().unwrap(),
            (Layer::Diffusion, Rect::from_coords(0, 0, 4, 4))
        );
        let top_def = t2.require(top2).unwrap();
        let inst = top_def.instances().next().unwrap();
        assert_eq!(inst.orientation, Orientation::EAST);
        assert_eq!(inst.point_of_call, Point::new(8, 0));
        // Write again: stable.
        assert_eq!(write_rsgl(&t2, top2).unwrap(), text);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header\n\ncell a\n  box poly 0 0 2 2 # trailing\nend\ntop a\n";
        let (t, top) = read_rsgl(text).unwrap();
        assert_eq!(t.require(top).unwrap().name(), "a");
    }

    #[test]
    fn error_line_numbers() {
        let text = "cell a\n  box plutonium 0 0 1 1\nend\n";
        match read_rsgl(text) {
            Err(LayoutError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn forward_reference_rejected() {
        let text = "cell a\n  inst b N 0 0\nend\ncell b\nend\n";
        assert!(matches!(
            read_rsgl(text),
            Err(LayoutError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn unterminated_cell_rejected() {
        assert!(read_rsgl("cell a\n  box poly 0 0 1 1\n").is_err());
    }

    #[test]
    fn inverted_box_rejected() {
        assert!(read_rsgl("cell a\n  box poly 5 0 1 1\nend\n").is_err());
    }

    #[test]
    fn default_top_is_last_cell() {
        let (t, top) = read_rsgl("cell a\nend\ncell b\nend\n").unwrap();
        assert_eq!(t.require(top).unwrap().name(), "b");
    }
}
