//! Stable content hashing over cells and technologies.
//!
//! The incremental recompactor (`rsg_compact::incremental`) keys its
//! caches by *what a definition is*, not where it lives: two tables that
//! draw the same geometry must produce the same key, and any edit — a
//! box moved, a mask swapped, a child redefined three levels down — must
//! change the key of every ancestor that can see it. [`deep_hashes`]
//! computes exactly that: a bottom-up FNV-1a digest per cell where an
//! instance contributes its *child's digest* (not its `CellId`, which is
//! table-local) plus its point of call and orientation.
//!
//! The hash is deterministic across runs and platforms — no
//! `std::collections::hash_map::RandomState`, no pointer identity — so
//! it can serve as a persistent cache key. It is *not* cryptographic;
//! collisions are a correctness hazard only at the 2⁻⁶⁴ birthday scale
//! the caches accept.

use crate::{CellDefinition, CellId, CellTable, LayoutError, LayoutObject};
use std::collections::HashMap;

/// FNV-1a 64-bit streaming hasher with deterministic output.
///
/// Deliberately not `std::hash::Hasher`: the std trait invites hashing
/// through `#[derive(Hash)]` impls whose layout can drift; this one
/// forces every caller to state the exact byte stream.
#[derive(Debug, Clone)]
pub struct ContentHasher(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl ContentHasher {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> ContentHasher {
        ContentHasher(FNV_OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Absorbs a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Absorbs an `i64` (little-endian two's complement).
    pub fn write_i64(&mut self, v: i64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Absorbs a string, length-prefixed so `("ab","c")` ≠ `("a","bc")`.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_u64(s.len() as u64).write_bytes(s.as_bytes())
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for ContentHasher {
    fn default() -> ContentHasher {
        ContentHasher::new()
    }
}

/// Mixes a list of `u64` words into one digest — the cheap combinator
/// for composite cache keys (definition hash ⊕ rules hash ⊕ solver tag).
pub fn mix(words: &[u64]) -> u64 {
    let mut h = ContentHasher::new();
    for &w in words {
        h.write_u64(w);
    }
    h.finish()
}

/// Content hash of one definition given a digest for each child it
/// instantiates. Covers the name and every object in order; instances
/// contribute `child(cell)` plus point of call and orientation, so the
/// result is a deep digest whenever `child` returns deep digests.
pub fn hash_cell(def: &CellDefinition, mut child: impl FnMut(CellId) -> u64) -> u64 {
    let mut h = ContentHasher::new();
    h.write_str(def.name());
    for obj in def.objects() {
        match obj {
            LayoutObject::Box { layer, rect } => {
                h.write_u64(1)
                    .write_u64(layer.index() as u64)
                    .write_i64(rect.lo().x)
                    .write_i64(rect.lo().y)
                    .write_i64(rect.hi().x)
                    .write_i64(rect.hi().y);
            }
            LayoutObject::Label { text, at } => {
                h.write_u64(2)
                    .write_str(text)
                    .write_i64(at.x)
                    .write_i64(at.y);
            }
            LayoutObject::Instance(inst) => {
                h.write_u64(3)
                    .write_u64(child(inst.cell))
                    .write_i64(inst.point_of_call.x)
                    .write_i64(inst.point_of_call.y)
                    .write_u64(inst.orientation.rotation as u64)
                    .write_u64(inst.orientation.mirror_y as u64);
            }
        }
    }
    h.finish()
}

/// Deep content digests for every cell reachable from `top`, children
/// before callers. Two cells hash equal iff their entire subtrees draw
/// the same geometry (names included); `CellId`s never enter the digest,
/// so hashes compare across tables.
///
/// # Errors
///
/// Returns [`LayoutError::UnknownCell`] for a dangling instance and
/// [`LayoutError::RecursiveCell`] on a cyclic hierarchy.
pub fn deep_hashes(table: &CellTable, top: CellId) -> Result<HashMap<CellId, u64>, LayoutError> {
    let mut out: HashMap<CellId, u64> = HashMap::new();
    let mut visiting: Vec<CellId> = Vec::new();
    hash_into(table, top, &mut out, &mut visiting)?;
    Ok(out)
}

fn hash_into(
    table: &CellTable,
    cell: CellId,
    out: &mut HashMap<CellId, u64>,
    visiting: &mut Vec<CellId>,
) -> Result<u64, LayoutError> {
    if let Some(&h) = out.get(&cell) {
        return Ok(h);
    }
    let def = table.require(cell)?;
    if visiting.contains(&cell) {
        return Err(LayoutError::RecursiveCell(def.name().to_owned()));
    }
    visiting.push(cell);
    for inst in def.instances() {
        hash_into(table, inst.cell, out, visiting)?;
    }
    visiting.pop();
    let h = hash_cell(def, |id| out[&id]);
    out.insert(cell, h);
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Instance, Layer};
    use rsg_geom::{Orientation, Point, Rect};

    fn leaf(name: &str, x: i64) -> CellDefinition {
        let mut c = CellDefinition::new(name);
        c.add_box(Layer::Poly, Rect::from_coords(x, 0, x + 4, 10));
        c
    }

    #[test]
    fn identical_tables_hash_identically() {
        let build = || {
            let mut t = CellTable::new();
            let l = t.insert(leaf("leaf", 0)).unwrap();
            let mut a = CellDefinition::new("asm");
            a.add_instance(Instance::new(l, Point::new(8, 0), Orientation::NORTH));
            a.add_label("pin", Point::new(1, 1));
            let top = t.insert(a).unwrap();
            (t, top)
        };
        let (t1, top1) = build();
        let (t2, top2) = build();
        assert_eq!(
            deep_hashes(&t1, top1).unwrap()[&top1],
            deep_hashes(&t2, top2).unwrap()[&top2]
        );
    }

    #[test]
    fn hashes_survive_different_table_ids() {
        // Same geometry, but the second table holds an extra unrelated
        // cell first, shifting every CellId.
        let mut t1 = CellTable::new();
        let l1 = t1.insert(leaf("leaf", 0)).unwrap();
        let mut a = CellDefinition::new("asm");
        a.add_instance(Instance::new(l1, Point::new(8, 0), Orientation::NORTH));
        let top1 = t1.insert(a).unwrap();

        let mut t2 = CellTable::new();
        t2.insert(leaf("unrelated", 2)).unwrap();
        let l2 = t2.insert(leaf("leaf", 0)).unwrap();
        let mut a = CellDefinition::new("asm");
        a.add_instance(Instance::new(l2, Point::new(8, 0), Orientation::NORTH));
        let top2 = t2.insert(a).unwrap();

        assert_eq!(
            deep_hashes(&t1, top1).unwrap()[&top1],
            deep_hashes(&t2, top2).unwrap()[&top2]
        );
    }

    #[test]
    fn leaf_edit_changes_every_ancestor() {
        let mut t = CellTable::new();
        let l = t.insert(leaf("leaf", 0)).unwrap();
        let mut mid = CellDefinition::new("mid");
        mid.add_instance(Instance::new(l, Point::new(0, 0), Orientation::NORTH));
        let mid_id = t.insert(mid).unwrap();
        let mut topc = CellDefinition::new("top");
        topc.add_instance(Instance::new(mid_id, Point::new(0, 0), Orientation::NORTH));
        let mut other = CellDefinition::new("other");
        other.add_box(Layer::Metal1, Rect::from_coords(0, 0, 6, 6));
        let other_id = t.insert(other).unwrap();
        topc.add_instance(Instance::new(
            other_id,
            Point::new(40, 0),
            Orientation::NORTH,
        ));
        let top = t.insert(topc).unwrap();

        let before = deep_hashes(&t, top).unwrap();
        *t.get_mut(l).unwrap() = leaf("leaf", 2);
        let after = deep_hashes(&t, top).unwrap();
        assert_ne!(before[&l], after[&l]);
        assert_ne!(before[&mid_id], after[&mid_id]);
        assert_ne!(before[&top], after[&top]);
        assert_eq!(before[&other_id], after[&other_id], "sibling untouched");
    }

    #[test]
    fn orientation_and_position_enter_the_digest() {
        let mut t = CellTable::new();
        let l = t.insert(leaf("leaf", 0)).unwrap();
        let at = |p: Point, o: Orientation| {
            let mut a = CellDefinition::new("asm");
            a.add_instance(Instance::new(l, p, o));
            hash_cell(&a, |_| 7)
        };
        let base = at(Point::new(0, 0), Orientation::NORTH);
        assert_ne!(base, at(Point::new(1, 0), Orientation::NORTH));
        assert_ne!(base, at(Point::new(0, 0), Orientation::SOUTH));
    }

    #[test]
    fn recursion_is_an_error() {
        let mut t = CellTable::new();
        let a = t.insert(CellDefinition::new("a")).unwrap();
        t.get_mut(a)
            .unwrap()
            .add_instance(Instance::new(a, Point::new(0, 0), Orientation::NORTH));
        assert!(matches!(
            deep_hashes(&t, a),
            Err(LayoutError::RecursiveCell(_))
        ));
    }
}
