//! Hierarchical flattening of a cell to absolute-coordinate boxes.
//!
//! [`flatten`] performs the single hierarchy walk of the whole flat
//! pipeline and returns a [`FlatLayout`]: the box list *plus* a prebuilt
//! [`GeomIndex`] over it, so every downstream consumer — DRC, statistics,
//! CIF emission, compaction — shares one spatial view instead of
//! re-deriving its own.

use crate::{CellDefinition, CellId, CellTable, Layer, LayoutError};
use rsg_geom::{Axis, BoundingBox, GeomIndex, Isometry, Rect};
use std::collections::HashSet;

/// A box in the flattened, absolute coordinate system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlatBox {
    /// Mask layer of the box.
    pub layer: Layer,
    /// Absolute geometry.
    pub rect: Rect,
    /// Hierarchy depth at which the box was found (0 = in the root cell).
    pub depth: u32,
}

/// A flattened layout: absolute-coordinate boxes plus a prebuilt
/// spatial index and the hierarchy-walk tallies.
///
/// Returned by [`flatten`]; consumed by [`crate::drc::check_flat`],
/// [`crate::stats::LayoutStats`], [`crate::write_cif_flat`], and the
/// compaction entry points (via [`FlatLayout::layer_rects`] /
/// [`FlatLayout::to_cell`]). Indexing, iteration, and `len` behave like
/// the underlying `Vec<FlatBox>`.
#[derive(Debug, Clone)]
pub struct FlatLayout {
    boxes: Vec<FlatBox>,
    index: GeomIndex<Layer>,
    total_instances: usize,
    distinct_cells: usize,
    max_depth: u32,
}

impl FlatLayout {
    /// Builds a flat layout (and its index) directly from a box list —
    /// the entry point for geometry that never lived in a hierarchy.
    /// With no hierarchy walk behind it, instance and cell tallies are
    /// the single-cell defaults; depth comes from the boxes themselves.
    pub fn from_boxes(boxes: Vec<FlatBox>) -> FlatLayout {
        let pairs: Vec<(Layer, Rect)> = boxes.iter().map(|b| (b.layer, b.rect)).collect();
        let index = GeomIndex::build_from_vec(pairs, Axis::X);
        let max_depth = boxes.iter().map(|b| b.depth).max().unwrap_or(0);
        FlatLayout {
            boxes,
            index,
            total_instances: 0,
            distinct_cells: 1,
            max_depth,
        }
    }

    /// The flat boxes, in discovery (pre-order) order.
    pub fn boxes(&self) -> &[FlatBox] {
        &self.boxes
    }

    /// Iterates over the flat boxes.
    pub fn iter(&self) -> std::slice::Iter<'_, FlatBox> {
        self.boxes.iter()
    }

    /// Number of flat boxes.
    pub fn len(&self) -> usize {
        self.boxes.len()
    }

    /// `true` when the layout holds no boxes.
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }

    /// The prebuilt spatial index over all boxes (swept along
    /// [`Axis::X`]).
    pub fn index(&self) -> &GeomIndex<Layer> {
        &self.index
    }

    /// The boxes as `(layer, rect)` pairs — the slice shape the
    /// constraint generator and DRC take, with no per-caller conversion.
    pub fn layer_rects(&self) -> &[(Layer, Rect)] {
        self.index.items()
    }

    /// Bounding box of all flat boxes.
    pub fn bbox(&self) -> BoundingBox {
        self.boxes.iter().map(|b| b.rect).collect()
    }

    /// Every expanded instance call counted during the walk.
    pub fn total_instances(&self) -> usize {
        self.total_instances
    }

    /// Distinct cell definitions reachable from the root.
    pub fn distinct_cells(&self) -> usize {
        self.distinct_cells
    }

    /// Maximum hierarchy depth visited.
    pub fn max_depth(&self) -> u32 {
        self.max_depth
    }

    /// Packages the flat boxes as a single leaf [`CellDefinition`] — the
    /// bridge from a flattened layout into the leaf compactor, which
    /// works on cells.
    pub fn to_cell(&self, name: impl Into<String>) -> CellDefinition {
        let mut cell = CellDefinition::new(name);
        for b in &self.boxes {
            cell.add_box(b.layer, b.rect);
        }
        cell
    }
}

impl std::ops::Index<usize> for FlatLayout {
    type Output = FlatBox;

    fn index(&self, k: usize) -> &FlatBox {
        &self.boxes[k]
    }
}

impl IntoIterator for FlatLayout {
    type Item = FlatBox;
    type IntoIter = std::vec::IntoIter<FlatBox>;

    fn into_iter(self) -> Self::IntoIter {
        self.boxes.into_iter()
    }
}

impl<'a> IntoIterator for &'a FlatLayout {
    type Item = &'a FlatBox;
    type IntoIter = std::slice::Iter<'a, FlatBox>;

    fn into_iter(self) -> Self::IntoIter {
        self.boxes.iter()
    }
}

/// Flattens `root` into a [`FlatLayout`] covering all layers.
///
/// Labels are dropped (they are annotations); instances are recursively
/// expanded by composing calling isometries, the `I₂(I₁(Ob))` chain of
/// paper §2.6. The walk also tallies instances, reachable cells, and
/// depth, so [`crate::stats::LayoutStats`] needs no second traversal.
///
/// # Errors
///
/// Returns [`LayoutError::UnknownCell`] for dangling ids and
/// [`LayoutError::RecursiveCell`] if the hierarchy is cyclic.
pub fn flatten(table: &CellTable, root: CellId) -> Result<FlatLayout, LayoutError> {
    let mut boxes = Vec::new();
    let mut walk = Walk {
        stack: Vec::new(),
        reach: HashSet::new(),
        total_instances: 0,
        max_depth: 0,
    };
    flatten_rec(
        table,
        root,
        Isometry::IDENTITY,
        0,
        &mut walk,
        &mut |layer, rect, depth| {
            boxes.push(FlatBox { layer, rect, depth });
        },
    )?;
    let pairs: Vec<(Layer, Rect)> = boxes.iter().map(|b| (b.layer, b.rect)).collect();
    let index = GeomIndex::build_from_vec(pairs, Axis::X);
    Ok(FlatLayout {
        boxes,
        index,
        total_instances: walk.total_instances,
        distinct_cells: walk.reach.len(),
        max_depth: walk.max_depth,
    })
}

/// Flattens `root` keeping only boxes of one layer — cheaper when a single
/// mask is wanted (e.g. DRC on poly only).
pub fn flatten_boxes_of(
    table: &CellTable,
    root: CellId,
    wanted: Layer,
) -> Result<Vec<Rect>, LayoutError> {
    let mut out = Vec::new();
    let mut walk = Walk {
        stack: Vec::new(),
        reach: HashSet::new(),
        total_instances: 0,
        max_depth: 0,
    };
    flatten_rec(
        table,
        root,
        Isometry::IDENTITY,
        0,
        &mut walk,
        &mut |layer, rect, _| {
            if layer == wanted {
                out.push(rect);
            }
        },
    )?;
    Ok(out)
}

/// Mutable bookkeeping of one hierarchy walk.
struct Walk {
    stack: Vec<CellId>,
    reach: HashSet<CellId>,
    total_instances: usize,
    max_depth: u32,
}

fn flatten_rec(
    table: &CellTable,
    cell: CellId,
    iso: Isometry,
    depth: u32,
    walk: &mut Walk,
    sink: &mut impl FnMut(Layer, Rect, u32),
) -> Result<(), LayoutError> {
    if walk.stack.contains(&cell) {
        let name = table.get(cell).map_or("?", |c| c.name()).to_owned();
        return Err(LayoutError::RecursiveCell(name));
    }
    walk.reach.insert(cell);
    walk.max_depth = walk.max_depth.max(depth);
    let def = table.require(cell)?;
    for (layer, rect) in def.boxes() {
        sink(layer, rect.transform(iso), depth);
    }
    walk.stack.push(cell);
    for inst in def.instances() {
        walk.total_instances += 1;
        let child = iso.compose(inst.isometry());
        flatten_rec(table, inst.cell, child, depth + 1, walk, sink)?;
    }
    walk.stack.pop();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CellDefinition, Instance};
    use rsg_geom::{Orientation, Point};

    fn leaf_table() -> (CellTable, CellId) {
        let mut t = CellTable::new();
        let mut leaf = CellDefinition::new("leaf");
        leaf.add_box(Layer::Metal1, Rect::from_coords(0, 0, 4, 2));
        let id = t.insert(leaf).unwrap();
        (t, id)
    }

    #[test]
    fn flat_leaf() {
        let (t, id) = leaf_table();
        let flat = flatten(&t, id).unwrap();
        assert_eq!(flat.len(), 1);
        assert_eq!(flat[0].rect, Rect::from_coords(0, 0, 4, 2));
        assert_eq!(flat[0].depth, 0);
        assert_eq!(flat.total_instances(), 0);
        assert_eq!(flat.distinct_cells(), 1);
        assert_eq!(flat.max_depth(), 0);
    }

    #[test]
    fn nested_instances_compose() {
        let (mut t, leaf) = leaf_table();
        let mut mid = CellDefinition::new("mid");
        mid.add_instance(Instance::new(leaf, Point::new(10, 0), Orientation::SOUTH));
        let mid_id = t.insert(mid).unwrap();
        let mut top = CellDefinition::new("top");
        top.add_instance(Instance::new(
            mid_id,
            Point::new(0, 100),
            Orientation::NORTH,
        ));
        let top_id = t.insert(top).unwrap();

        let flat = flatten(&t, top_id).unwrap();
        assert_eq!(flat.len(), 1);
        // leaf box (0,0)-(4,2) south-rotated => (-4,-2)-(0,0), +(10,0), +(0,100).
        assert_eq!(flat[0].rect, Rect::from_coords(6, 98, 10, 100));
        assert_eq!(flat[0].depth, 2);
        assert_eq!(flat.total_instances(), 2);
        assert_eq!(flat.distinct_cells(), 3);
        assert_eq!(flat.max_depth(), 2);
    }

    #[test]
    fn recursion_detected() {
        let mut t = CellTable::new();
        let a = t.insert(CellDefinition::new("a")).unwrap();
        t.get_mut(a)
            .unwrap()
            .add_instance(Instance::new(a, Point::new(1, 1), Orientation::NORTH));
        assert_eq!(
            flatten(&t, a).unwrap_err(),
            LayoutError::RecursiveCell("a".into())
        );
    }

    #[test]
    fn single_layer_filter() {
        let (mut t, leaf) = leaf_table();
        t.get_mut(leaf)
            .unwrap()
            .add_box(Layer::Poly, Rect::from_coords(0, 0, 1, 1));
        let m1 = flatten_boxes_of(&t, leaf, Layer::Metal1).unwrap();
        assert_eq!(m1, vec![Rect::from_coords(0, 0, 4, 2)]);
        let m2 = flatten_boxes_of(&t, leaf, Layer::Metal2).unwrap();
        assert!(m2.is_empty());
    }

    #[test]
    fn diamond_hierarchy_is_not_recursion() {
        // top calls mid twice; mid calls leaf. Sharing is fine, cycles are not.
        let (mut t, leaf) = leaf_table();
        let mut mid = CellDefinition::new("mid");
        mid.add_instance(Instance::new(leaf, Point::ORIGIN, Orientation::NORTH));
        let mid_id = t.insert(mid).unwrap();
        let mut top = CellDefinition::new("top");
        top.add_instance(Instance::new(mid_id, Point::new(0, 0), Orientation::NORTH));
        top.add_instance(Instance::new(mid_id, Point::new(20, 0), Orientation::NORTH));
        let top_id = t.insert(top).unwrap();
        let flat = flatten(&t, top_id).unwrap();
        assert_eq!(flat.len(), 2);
        assert_eq!(flat.total_instances(), 4);
        assert_eq!(flat.distinct_cells(), 3);
    }

    #[test]
    fn prebuilt_index_matches_boxes() {
        let (mut t, leaf) = leaf_table();
        t.get_mut(leaf)
            .unwrap()
            .add_box(Layer::Poly, Rect::from_coords(8, 0, 12, 2));
        let flat = flatten(&t, leaf).unwrap();
        assert_eq!(flat.layer_rects().len(), flat.len());
        assert_eq!(flat.index().len(), flat.len());
        assert_eq!(flat.index().axis(), rsg_geom::Axis::X);
        for (b, &(l, r)) in flat.iter().zip(flat.layer_rects()) {
            assert_eq!((b.layer, b.rect), (l, r));
        }
        let cell = flat.to_cell("flat");
        assert_eq!(cell.boxes().count(), flat.len());
    }
}
