//! Hierarchical flattening of a cell to absolute-coordinate boxes.

use crate::{CellId, CellTable, Layer, LayoutError};
use rsg_geom::{Isometry, Rect};

/// A box in the flattened, absolute coordinate system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlatBox {
    /// Mask layer of the box.
    pub layer: Layer,
    /// Absolute geometry.
    pub rect: Rect,
    /// Hierarchy depth at which the box was found (0 = in the root cell).
    pub depth: u32,
}

/// Flattens `root` into absolute-coordinate boxes on all layers.
///
/// Labels are dropped (they are annotations); instances are recursively
/// expanded by composing calling isometries, the `I₂(I₁(Ob))` chain of
/// paper §2.6.
///
/// # Errors
///
/// Returns [`LayoutError::UnknownCell`] for dangling ids and
/// [`LayoutError::RecursiveCell`] if the hierarchy is cyclic.
pub fn flatten(table: &CellTable, root: CellId) -> Result<Vec<FlatBox>, LayoutError> {
    let mut out = Vec::new();
    let mut stack = Vec::new();
    flatten_rec(
        table,
        root,
        Isometry::IDENTITY,
        0,
        &mut stack,
        &mut |layer, rect, depth| {
            out.push(FlatBox { layer, rect, depth });
        },
    )?;
    Ok(out)
}

/// Flattens `root` keeping only boxes of one layer — cheaper when a single
/// mask is wanted (e.g. DRC on poly only).
pub fn flatten_boxes_of(
    table: &CellTable,
    root: CellId,
    wanted: Layer,
) -> Result<Vec<Rect>, LayoutError> {
    let mut out = Vec::new();
    let mut stack = Vec::new();
    flatten_rec(
        table,
        root,
        Isometry::IDENTITY,
        0,
        &mut stack,
        &mut |layer, rect, _| {
            if layer == wanted {
                out.push(rect);
            }
        },
    )?;
    Ok(out)
}

fn flatten_rec(
    table: &CellTable,
    cell: CellId,
    iso: Isometry,
    depth: u32,
    stack: &mut Vec<CellId>,
    sink: &mut impl FnMut(Layer, Rect, u32),
) -> Result<(), LayoutError> {
    if stack.contains(&cell) {
        let name = table.get(cell).map_or("?", |c| c.name()).to_owned();
        return Err(LayoutError::RecursiveCell(name));
    }
    let def = table.require(cell)?;
    for (layer, rect) in def.boxes() {
        sink(layer, rect.transform(iso), depth);
    }
    stack.push(cell);
    for inst in def.instances() {
        let child = iso.compose(inst.isometry());
        flatten_rec(table, inst.cell, child, depth + 1, stack, sink)?;
    }
    stack.pop();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CellDefinition, Instance};
    use rsg_geom::{Orientation, Point};

    fn leaf_table() -> (CellTable, CellId) {
        let mut t = CellTable::new();
        let mut leaf = CellDefinition::new("leaf");
        leaf.add_box(Layer::Metal1, Rect::from_coords(0, 0, 4, 2));
        let id = t.insert(leaf).unwrap();
        (t, id)
    }

    #[test]
    fn flat_leaf() {
        let (t, id) = leaf_table();
        let flat = flatten(&t, id).unwrap();
        assert_eq!(flat.len(), 1);
        assert_eq!(flat[0].rect, Rect::from_coords(0, 0, 4, 2));
        assert_eq!(flat[0].depth, 0);
    }

    #[test]
    fn nested_instances_compose() {
        let (mut t, leaf) = leaf_table();
        let mut mid = CellDefinition::new("mid");
        mid.add_instance(Instance::new(leaf, Point::new(10, 0), Orientation::SOUTH));
        let mid_id = t.insert(mid).unwrap();
        let mut top = CellDefinition::new("top");
        top.add_instance(Instance::new(
            mid_id,
            Point::new(0, 100),
            Orientation::NORTH,
        ));
        let top_id = t.insert(top).unwrap();

        let flat = flatten(&t, top_id).unwrap();
        assert_eq!(flat.len(), 1);
        // leaf box (0,0)-(4,2) south-rotated => (-4,-2)-(0,0), +(10,0), +(0,100).
        assert_eq!(flat[0].rect, Rect::from_coords(6, 98, 10, 100));
        assert_eq!(flat[0].depth, 2);
    }

    #[test]
    fn recursion_detected() {
        let mut t = CellTable::new();
        let a = t.insert(CellDefinition::new("a")).unwrap();
        t.get_mut(a)
            .unwrap()
            .add_instance(Instance::new(a, Point::new(1, 1), Orientation::NORTH));
        assert_eq!(flatten(&t, a), Err(LayoutError::RecursiveCell("a".into())));
    }

    #[test]
    fn single_layer_filter() {
        let (mut t, leaf) = leaf_table();
        t.get_mut(leaf)
            .unwrap()
            .add_box(Layer::Poly, Rect::from_coords(0, 0, 1, 1));
        let m1 = flatten_boxes_of(&t, leaf, Layer::Metal1).unwrap();
        assert_eq!(m1, vec![Rect::from_coords(0, 0, 4, 2)]);
        let m2 = flatten_boxes_of(&t, leaf, Layer::Metal2).unwrap();
        assert!(m2.is_empty());
    }

    #[test]
    fn diamond_hierarchy_is_not_recursion() {
        // top calls mid twice; mid calls leaf. Sharing is fine, cycles are not.
        let (mut t, leaf) = leaf_table();
        let mut mid = CellDefinition::new("mid");
        mid.add_instance(Instance::new(leaf, Point::ORIGIN, Orientation::NORTH));
        let mid_id = t.insert(mid).unwrap();
        let mut top = CellDefinition::new("top");
        top.add_instance(Instance::new(mid_id, Point::new(0, 0), Orientation::NORTH));
        top.add_instance(Instance::new(mid_id, Point::new(20, 0), Orientation::NORTH));
        let top_id = t.insert(top).unwrap();
        let flat = flatten(&t, top_id).unwrap();
        assert_eq!(flat.len(), 2);
    }
}
