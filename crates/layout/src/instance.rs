//! Cell instances: the `(L, O, cell)` triplet of paper §2.1.

use crate::CellId;
use rsg_geom::{Isometry, Orientation, Point};
use std::fmt;

/// An instance of a cell inside another cell.
///
/// The paper defines an instance as the triplet
/// `(L', O', ⟨cell definition⟩)` — the point of call, the orientation in the
/// call, and a pointer to the definition. Here the pointer is a [`CellId`]
/// into the owning [`crate::CellTable`].
///
/// # Example
///
/// ```
/// use rsg_layout::{CellTable, CellDefinition, Instance};
/// use rsg_geom::{Orientation, Point};
///
/// let mut t = CellTable::new();
/// let id = t.insert(CellDefinition::new("leaf")).unwrap();
/// let inst = Instance::new(id, Point::new(3, 4), Orientation::SOUTH);
/// assert_eq!(inst.point_of_call, Point::new(3, 4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instance {
    /// The called cell.
    pub cell: CellId,
    /// `L'`: where the called cell's origin lands in the calling system.
    pub point_of_call: Point,
    /// `O'`: the orientation of the call.
    pub orientation: Orientation,
}

impl Instance {
    /// Creates an instance from its calling parameters.
    pub const fn new(cell: CellId, point_of_call: Point, orientation: Orientation) -> Instance {
        Instance {
            cell,
            point_of_call,
            orientation,
        }
    }

    /// The isometry this call applies to the called cell's objects.
    pub fn isometry(&self) -> Isometry {
        Isometry::call(self.point_of_call, self.orientation)
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cell#{} {}@{}",
            self.cell.raw(),
            self.orientation,
            self.point_of_call
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CellDefinition, CellTable};
    use rsg_geom::Vector;

    #[test]
    fn isometry_matches_calling_parameters() {
        let mut t = CellTable::new();
        let id = t.insert(CellDefinition::new("x")).unwrap();
        let i = Instance::new(id, Point::new(5, -2), Orientation::EAST);
        let iso = i.isometry();
        assert_eq!(iso.point_of_call(), Point::new(5, -2));
        assert_eq!(
            iso.apply_vector(Vector::new(1, 0)),
            Orientation::EAST.apply_vector(Vector::new(1, 0))
        );
        assert_eq!(iso.apply_point(Point::ORIGIN), Point::new(5, -2));
    }
}
