//! Cell definitions and the cell definition table (paper §4.3, Fig 4.2).

use crate::{Instance, Layer, LayoutError};
use rsg_geom::{BoundingBox, Point, Rect};
use std::collections::HashMap;
use std::fmt;

/// Opaque handle to a cell definition in a [`CellTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(u32);

impl CellId {
    /// The raw index (for display/debug only).
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Crate-internal constructor; ids are dense insertion indices.
    pub(crate) const fn from_raw(raw: u32) -> CellId {
        CellId(raw)
    }
}

/// One object inside a cell: a box on a layer, a named label point, or an
/// instance of another cell (paper §2.1: "boxes of various layers, points,
/// and instances of other cells").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutObject {
    /// A rectangle of material on a layer.
    Box {
        /// The mask (or pseudo) layer.
        layer: Layer,
        /// The geometry in cell-local coordinates.
        rect: Rect,
    },
    /// A named annotation point. Interface labels (paper Fig 5.5) are
    /// `Label`s whose `text` is the interface index number.
    Label {
        /// Label text.
        text: String,
        /// Anchor position in cell-local coordinates.
        at: Point,
    },
    /// A call of another cell.
    Instance(Instance),
}

/// A cell definition: a name plus its list of objects (paper Fig 4.2).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CellDefinition {
    name: String,
    objects: Vec<LayoutObject>,
}

impl CellDefinition {
    /// Creates an empty cell with the given name.
    pub fn new(name: impl Into<String>) -> CellDefinition {
        CellDefinition {
            name: name.into(),
            objects: Vec::new(),
        }
    }

    /// The cell's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All objects, in insertion order.
    pub fn objects(&self) -> &[LayoutObject] {
        &self.objects
    }

    /// Adds a box of `layer` material.
    pub fn add_box(&mut self, layer: Layer, rect: Rect) -> &mut Self {
        self.objects.push(LayoutObject::Box { layer, rect });
        self
    }

    /// Adds a label point.
    pub fn add_label(&mut self, text: impl Into<String>, at: Point) -> &mut Self {
        self.objects.push(LayoutObject::Label {
            text: text.into(),
            at,
        });
        self
    }

    /// Adds an instance of another cell.
    pub fn add_instance(&mut self, instance: Instance) -> &mut Self {
        self.objects.push(LayoutObject::Instance(instance));
        self
    }

    /// Iterates over the boxes (layer, rect) directly in this cell.
    pub fn boxes(&self) -> impl Iterator<Item = (Layer, Rect)> + '_ {
        self.objects.iter().filter_map(|o| match o {
            LayoutObject::Box { layer, rect } => Some((*layer, *rect)),
            _ => None,
        })
    }

    /// Iterates over the instances directly in this cell.
    pub fn instances(&self) -> impl Iterator<Item = &Instance> + '_ {
        self.objects.iter().filter_map(|o| match o {
            LayoutObject::Instance(i) => Some(i),
            _ => None,
        })
    }

    /// Iterates over the labels directly in this cell.
    pub fn labels(&self) -> impl Iterator<Item = (&str, Point)> + '_ {
        self.objects.iter().filter_map(|o| match o {
            LayoutObject::Label { text, at } => Some((text.as_str(), *at)),
            _ => None,
        })
    }

    /// Rebuilds the cell with each box's rectangle replaced, in object
    /// order, by the next rectangle from `rects`; layers, labels, and
    /// instances are copied through unchanged. This is the primitive the
    /// compactor uses to write solved edge positions back into a cell.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::BoxCount`] if `rects` yields fewer or more
    /// rectangles than the cell has boxes.
    pub fn with_box_rects<I: IntoIterator<Item = Rect>>(
        &self,
        rects: I,
    ) -> Result<CellDefinition, LayoutError> {
        let mut rects = rects.into_iter();
        let mut out = CellDefinition::new(self.name());
        let mut replaced = 0usize;
        for obj in &self.objects {
            match obj {
                LayoutObject::Box { layer, .. } => match rects.next() {
                    Some(rect) => {
                        replaced += 1;
                        out.add_box(*layer, rect);
                    }
                    None => {
                        return Err(LayoutError::BoxCount {
                            cell: self.name.clone(),
                            boxes: self.boxes().count(),
                            rects: replaced,
                        })
                    }
                },
                LayoutObject::Label { text, at } => {
                    out.add_label(text.clone(), *at);
                }
                LayoutObject::Instance(i) => {
                    out.add_instance(*i);
                }
            }
        }
        let extra = rects.count();
        if extra > 0 {
            return Err(LayoutError::BoxCount {
                cell: self.name.clone(),
                boxes: replaced,
                rects: replaced + extra,
            });
        }
        Ok(out)
    }

    /// Checks every coordinate in the cell against the ingest budget
    /// [`rsg_geom::MAX_COORD`] — the contract that keeps interior sweep,
    /// constraint-weight, and λ-pitch arithmetic overflow-free (see the
    /// constant's documentation for the argument).
    ///
    /// [`CellTable::insert`] applies this check, so every table-resident
    /// cell is within budget; call it directly when constructing cells
    /// that bypass a table.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::CoordinateBudget`] naming the first
    /// out-of-budget value.
    pub fn validate_budget(&self) -> Result<(), LayoutError> {
        // A range test rather than `abs()`: `i64::MIN.abs()` itself
        // overflows.
        let check = |v: i64| {
            if !(-rsg_geom::MAX_COORD..=rsg_geom::MAX_COORD).contains(&v) {
                Err(LayoutError::CoordinateBudget {
                    cell: self.name.clone(),
                    value: v,
                })
            } else {
                Ok(())
            }
        };
        for obj in &self.objects {
            match obj {
                LayoutObject::Box { rect, .. } => {
                    check(rect.lo().x)?;
                    check(rect.lo().y)?;
                    check(rect.hi().x)?;
                    check(rect.hi().y)?;
                }
                LayoutObject::Label { at, .. } => {
                    check(at.x)?;
                    check(at.y)?;
                }
                LayoutObject::Instance(i) => {
                    check(i.point_of_call.x)?;
                    check(i.point_of_call.y)?;
                }
            }
        }
        Ok(())
    }

    /// Bounding box of the boxes *directly* in this cell (instances are not
    /// expanded; use [`crate::flatten`] + fold for the deep bound).
    pub fn local_bbox(&self) -> BoundingBox {
        self.boxes().map(|(_, r)| r).collect()
    }

    /// Number of objects of each kind `(boxes, labels, instances)`.
    pub fn object_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for o in &self.objects {
            match o {
                LayoutObject::Box { .. } => counts.0 += 1,
                LayoutObject::Label { .. } => counts.1 += 1,
                LayoutObject::Instance(_) => counts.2 += 1,
            }
        }
        counts
    }
}

/// The cell definition table: name → definition, implemented with a hash
/// table "which makes lookup extremely fast" (paper §4.5).
#[derive(Debug, Clone, Default)]
pub struct CellTable {
    cells: Vec<CellDefinition>,
    by_name: HashMap<String, CellId>,
}

impl CellTable {
    /// Creates an empty table.
    pub fn new() -> CellTable {
        CellTable::default()
    }

    /// Inserts a definition.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::DuplicateCell`] if the name is taken, or
    /// [`LayoutError::CoordinateBudget`] if any coordinate exceeds the
    /// ingest budget (see [`CellDefinition::validate_budget`]).
    pub fn insert(&mut self, cell: CellDefinition) -> Result<CellId, LayoutError> {
        if self.by_name.contains_key(cell.name()) {
            return Err(LayoutError::DuplicateCell(cell.name().to_owned()));
        }
        cell.validate_budget()?;
        let id = CellId(self.cells.len() as u32);
        self.by_name.insert(cell.name().to_owned(), id);
        self.cells.push(cell);
        Ok(id)
    }

    /// Looks a cell up by id.
    pub fn get(&self, id: CellId) -> Option<&CellDefinition> {
        self.cells.get(id.0 as usize)
    }

    /// Mutable lookup by id.
    pub fn get_mut(&mut self, id: CellId) -> Option<&mut CellDefinition> {
        self.cells.get_mut(id.0 as usize)
    }

    /// Looks a cell up by name (the paper's variable-resolution fallback:
    /// "it is assumed that the variable is a cell name and a search is
    /// performed on the table of available cells", §4.1).
    pub fn lookup(&self, name: &str) -> Option<CellId> {
        self.by_name.get(name).copied()
    }

    /// Like [`CellTable::get`], but returns a descriptive error.
    pub fn require(&self, id: CellId) -> Result<&CellDefinition, LayoutError> {
        self.get(id)
            .ok_or_else(|| LayoutError::UnknownCell(format!("#{}", id.0)))
    }

    /// Number of cells in the table.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when the table holds no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterates `(id, definition)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (CellId, &CellDefinition)> + '_ {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (CellId(i as u32), c))
    }
}

impl fmt::Display for CellTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CellTable({} cells)", self.cells.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_geom::Orientation;

    #[test]
    fn insert_and_lookup() {
        let mut t = CellTable::new();
        let a = t.insert(CellDefinition::new("a")).unwrap();
        let b = t.insert(CellDefinition::new("b")).unwrap();
        assert_ne!(a, b);
        assert_eq!(t.lookup("a"), Some(a));
        assert_eq!(t.lookup("c"), None);
        assert_eq!(t.get(a).unwrap().name(), "a");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut t = CellTable::new();
        t.insert(CellDefinition::new("a")).unwrap();
        assert_eq!(
            t.insert(CellDefinition::new("a")),
            Err(LayoutError::DuplicateCell("a".into()))
        );
    }

    #[test]
    fn object_accessors() {
        let mut t = CellTable::new();
        let leaf = t.insert(CellDefinition::new("leaf")).unwrap();
        let mut c = CellDefinition::new("c");
        c.add_box(Layer::Poly, Rect::from_coords(0, 0, 2, 8));
        c.add_label("1", Point::new(1, 1));
        c.add_instance(Instance::new(leaf, Point::new(4, 0), Orientation::NORTH));
        assert_eq!(c.object_counts(), (1, 1, 1));
        assert_eq!(c.boxes().count(), 1);
        assert_eq!(c.labels().next().unwrap().0, "1");
        assert_eq!(c.instances().next().unwrap().cell, leaf);
        assert_eq!(c.local_bbox().rect(), Some(Rect::from_coords(0, 0, 2, 8)));
    }

    #[test]
    fn require_unknown_cell() {
        let t = CellTable::new();
        assert!(t.require(CellId(7)).is_err());
    }

    #[test]
    fn iteration_order_is_insertion() {
        let mut t = CellTable::new();
        t.insert(CellDefinition::new("x")).unwrap();
        t.insert(CellDefinition::new("y")).unwrap();
        let names: Vec<_> = t.iter().map(|(_, c)| c.name().to_owned()).collect();
        assert_eq!(names, ["x", "y"]);
    }
}
