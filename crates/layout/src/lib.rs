//! Layout database substrate for the Regular Structure Generator.
//!
//! The RSG "maintains its own database and as such is layout file format
//! independent" (paper §4.5). This crate provides that database:
//!
//! * [`Layer`]s and a λ-based Mead–Conway [`Technology`] with design rules,
//! * [`CellDefinition`]s holding boxes, labels, and [`Instance`]s of other
//!   cells (paper §2.1 and Fig 4.2/4.3),
//! * a [`CellTable`] (the paper's "cell definition table", a hash table),
//! * hierarchical [`flatten`]ing into a [`FlatLayout`] — boxes plus a
//!   prebuilt [`rsg_geom::GeomIndex`] shared by DRC, statistics, CIF
//!   emission, and the compactor,
//! * a CIF 2.0 writer and a simple textual `.rsgl` format with both writer
//!   and reader (standing in for the paper's CIF and DEF back ends),
//! * layout [`stats::LayoutStats`],
//! * stable content [`hash`]ing of cells and rules — the cache identity
//!   used by `rsg_compact::incremental`.
//!
//! # Example
//!
//! ```
//! use rsg_layout::{CellDefinition, CellTable, Instance, Layer};
//! use rsg_geom::{Orientation, Point, Rect};
//!
//! let mut table = CellTable::new();
//! let mut leaf = CellDefinition::new("leaf");
//! leaf.add_box(Layer::Metal1, Rect::from_coords(0, 0, 4, 4));
//! let leaf_id = table.insert(leaf).unwrap();
//!
//! let mut top = CellDefinition::new("top");
//! top.add_instance(Instance::new(leaf_id, Point::new(10, 0), Orientation::NORTH));
//! let top_id = table.insert(top).unwrap();
//!
//! let flat = rsg_layout::flatten(&table, top_id).unwrap();
//! assert_eq!(flat.len(), 1);
//! ```
//!
//! Library code is panic-free by policy: `unwrap`/`expect` are denied
//! outside `#[cfg(test)]` (see DESIGN.md's robustness section).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(missing_docs)]

mod cell;
mod cif;
pub mod drc;
mod error;
mod flatten;
pub mod hash;
mod instance;
mod layer;
mod rsgl;
pub mod stats;
mod technology;

pub use cell::{CellDefinition, CellId, CellTable, LayoutObject};
pub use cif::{cif_safe_name, read_cif, write_cif, write_cif_flat};
pub use error::LayoutError;
pub use flatten::{flatten, flatten_boxes_of, FlatBox, FlatLayout};
pub use instance::Instance;
pub use layer::Layer;
pub use rsgl::{read_rsgl, write_rsgl};
pub use technology::{DesignRules, Technology};
