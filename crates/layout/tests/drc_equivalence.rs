//! Equivalence proptests for the sweep DRC (experiment E16).
//!
//! `drc::check` now sweeps a `GeomIndex` so each box only visits
//! neighbours within its rule distance; the retired all-pairs loop
//! survives as `drc::check_pairwise`. These properties prove the two
//! produce the *identical* violation list — same pairs, same measured
//! gaps, same order — on random box soups, including the degenerate
//! cases the sweep windows could plausibly mishandle: zero-area boxes,
//! exactly-touching boxes, and boxes at exactly the rule distance.

use proptest::prelude::*;
use rsg_geom::{Point, Rect};
use rsg_layout::{drc, FlatBox, FlatLayout, Layer, Technology};

/// Box soups over the interacting layers, on a fine grid so touching,
/// overlapping, and exactly-at-rule-distance configurations all occur;
/// width/height 0 included to exercise the zero-area exemption.
fn arb_boxes() -> impl Strategy<Value = Vec<(Layer, Rect)>> {
    proptest::collection::vec((0i64..30, 0i64..30, 0i64..9, 0i64..9, 0usize..4), 1..24).prop_map(
        |seeds| {
            let layers = [Layer::Poly, Layer::Diffusion, Layer::Metal1, Layer::Cut];
            seeds
                .into_iter()
                .map(|(x, y, w, h, l)| (layers[l], Rect::from_origin_size(Point::new(x, y), w, h)))
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The sweep checker is list-identical to the pairwise reference.
    #[test]
    fn sweep_equals_pairwise(boxes in arb_boxes()) {
        let rules = Technology::mead_conway(2).rules.clone();
        prop_assert_eq!(
            drc::check(&boxes, &rules),
            drc::check_pairwise(&boxes, &rules)
        );
    }

    /// Checking through a prebuilt FlatLayout index agrees too.
    #[test]
    fn flat_layout_check_agrees(boxes in arb_boxes()) {
        let rules = Technology::mead_conway(2).rules.clone();
        let flat = FlatLayout::from_boxes(
            boxes
                .iter()
                .map(|&(layer, rect)| FlatBox { layer, rect, depth: 0 })
                .collect(),
        );
        prop_assert_eq!(
            drc::check_flat(&flat, &rules),
            drc::check_pairwise(&boxes, &rules)
        );
    }
}

/// Hand-picked adversarial cases the random soup may miss.
#[test]
fn directed_edge_cases() {
    let rules = Technology::mead_conway(2).rules.clone();
    let cases: Vec<Vec<(Layer, Rect)>> = vec![
        // Exactly at rule distance (poly–poly 4): clean on both paths.
        vec![
            (Layer::Poly, Rect::from_coords(0, 0, 4, 20)),
            (Layer::Poly, Rect::from_coords(8, 0, 12, 20)),
        ],
        // One unit inside the rule distance.
        vec![
            (Layer::Poly, Rect::from_coords(0, 0, 4, 20)),
            (Layer::Poly, Rect::from_coords(7, 0, 11, 20)),
        ],
        // Touching same-layer boxes: connected, exempt.
        vec![
            (Layer::Diffusion, Rect::from_coords(0, 0, 10, 4)),
            (Layer::Diffusion, Rect::from_coords(10, 0, 20, 4)),
        ],
        // Corner-touching same-layer boxes: still connected.
        vec![
            (Layer::Diffusion, Rect::from_coords(0, 0, 10, 10)),
            (Layer::Diffusion, Rect::from_coords(10, 10, 20, 20)),
        ],
        // Zero-area sliver between two violating boxes: ignored.
        vec![
            (Layer::Poly, Rect::from_coords(0, 0, 4, 20)),
            (Layer::Poly, Rect::from_coords(5, 0, 5, 20)),
            (Layer::Poly, Rect::from_coords(6, 0, 10, 20)),
        ],
        // Diagonal L∞ violation only visible with both axes measured.
        vec![
            (Layer::Metal1, Rect::from_coords(0, 0, 6, 6)),
            (Layer::Metal1, Rect::from_coords(10, 10, 16, 16)),
        ],
        // Cross-layer overlap (poly over diffusion).
        vec![
            (Layer::Poly, Rect::from_coords(0, 0, 4, 20)),
            (Layer::Diffusion, Rect::from_coords(2, 0, 20, 8)),
        ],
    ];
    for (k, boxes) in cases.iter().enumerate() {
        assert_eq!(
            drc::check(boxes, &rules),
            drc::check_pairwise(boxes, &rules),
            "case {k}"
        );
    }
}
