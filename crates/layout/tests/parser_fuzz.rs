//! Adversarial-input lane for the two layout parsers (PR 7's fuzz
//! contract): **every** input either parses to a DRC-checkable layout or
//! returns a typed [`LayoutError`] — the readers never panic, and parse
//! errors carry a line number inside the input.
//!
//! The generator starts from a valid `.rsgl` / CIF serialization and
//! applies random corruptions: byte flips, line deletions, truncations,
//! garbage insertions, and token swaps. A separate deterministic lane
//! covers the paper-relevant extremes — zero-area boxes, touching
//! geometry, `i64::MAX` coordinates (the ingest budget), deep
//! hierarchies, and unknown instance references.

use proptest::prelude::*;
use rsg_geom::{Orientation, Point, Rect};
use rsg_layout::{
    flatten, read_cif, read_rsgl, write_cif, write_rsgl, CellDefinition, CellTable, Instance,
    Layer, LayoutError,
};

/// A small valid two-level layout to corrupt.
fn seed_table() -> (CellTable, rsg_layout::CellId) {
    let mut t = CellTable::new();
    let mut leaf = CellDefinition::new("leaf");
    leaf.add_box(Layer::Poly, Rect::from_coords(0, 0, 8, 8));
    leaf.add_box(Layer::Metal1, Rect::from_coords(12, 0, 20, 8));
    leaf.add_label("1", Point::new(4, 4));
    let leaf_id = t.insert(leaf).unwrap();
    let mut top = CellDefinition::new("top");
    top.add_instance(Instance::new(leaf_id, Point::new(0, 0), Orientation::NORTH));
    top.add_instance(Instance::new(leaf_id, Point::new(30, 0), Orientation::R90));
    top.add_box(Layer::Well, Rect::from_coords(-4, -4, 60, 20));
    let top_id = t.insert(top).unwrap();
    (t, top_id)
}

/// One corruption step applied at a pseudo-random position.
#[derive(Debug, Clone, Copy)]
enum Mutation {
    FlipByte(usize, u8),
    DeleteLine(usize),
    Truncate(usize),
    InsertGarbage(usize),
    DuplicateLine(usize),
}

fn arb_mutation() -> impl Strategy<Value = Mutation> {
    (0usize..5, 0usize..10_000, 0u8..255).prop_map(|(kind, pos, byte)| match kind {
        0 => Mutation::FlipByte(pos, byte),
        1 => Mutation::DeleteLine(pos),
        2 => Mutation::Truncate(pos),
        3 => Mutation::InsertGarbage(pos),
        _ => Mutation::DuplicateLine(pos),
    })
}

fn apply(text: &str, m: Mutation) -> String {
    match m {
        Mutation::FlipByte(pos, byte) => {
            let mut bytes: Vec<u8> = text.bytes().collect();
            if bytes.is_empty() {
                return text.to_owned();
            }
            let i = pos % bytes.len();
            // Stay in ASCII so the result is always a valid &str.
            bytes[i] = 32 + (byte % 95);
            String::from_utf8(bytes).unwrap()
        }
        Mutation::DeleteLine(pos) => {
            let lines: Vec<&str> = text.lines().collect();
            if lines.is_empty() {
                return text.to_owned();
            }
            let i = pos % lines.len();
            let mut out: Vec<&str> = lines.clone();
            out.remove(i);
            out.join("\n")
        }
        Mutation::Truncate(pos) => {
            if text.is_empty() {
                return String::new();
            }
            let mut i = pos % text.len();
            while !text.is_char_boundary(i) {
                i -= 1;
            }
            text[..i].to_owned()
        }
        Mutation::InsertGarbage(pos) => {
            let lines: Vec<&str> = text.lines().collect();
            let i = pos % (lines.len() + 1);
            let mut out: Vec<String> = lines.iter().map(|s| (*s).to_owned()).collect();
            out.insert(i, "box zap 1 2 three".into());
            out.join("\n")
        }
        Mutation::DuplicateLine(pos) => {
            let lines: Vec<&str> = text.lines().collect();
            if lines.is_empty() {
                return text.to_owned();
            }
            let i = pos % lines.len();
            let mut out: Vec<&str> = lines.clone();
            out.insert(i, lines[i]);
            out.join("\n")
        }
    }
}

/// Shared check: a reader's output is either a flattenable layout or a
/// typed error whose line number (when it is a parse error) points into
/// the input.
fn check_outcome(result: Result<(CellTable, rsg_layout::CellId), LayoutError>, input: &str) {
    match result {
        Ok((table, top)) => {
            // Parsed layouts must be checkable end to end.
            let _ = flatten(&table, top).unwrap();
        }
        Err(LayoutError::Parse { line, message }) => {
            assert!(line >= 1, "parse errors are 1-based");
            assert!(
                line <= input.lines().count() + 1,
                "line {line} outside input ({} lines)",
                input.lines().count()
            );
            assert!(!message.is_empty());
        }
        Err(other) => {
            // Any other typed error is fine; it must render.
            assert!(!other.to_string().is_empty());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Corrupted `.rsgl` never panics: typed error or valid layout.
    #[test]
    fn rsgl_reader_survives_corruption(muts in proptest::collection::vec(arb_mutation(), 1..6)) {
        let (table, top) = seed_table();
        let mut text = write_rsgl(&table, top).unwrap();
        for m in muts {
            text = apply(&text, m);
        }
        check_outcome(read_rsgl(&text), &text);
    }

    /// Corrupted CIF never panics: typed error or valid layout.
    #[test]
    fn cif_reader_survives_corruption(muts in proptest::collection::vec(arb_mutation(), 1..6)) {
        let (table, top) = seed_table();
        let mut text = write_cif(&table, top).unwrap();
        for m in muts {
            text = apply(&text, m);
        }
        check_outcome(read_cif(&text), &text);
    }
}

#[test]
fn rsgl_unknown_instance_is_a_parse_error_with_line() {
    let text = "# rsgl 1\ncell top\n  inst ghost N 0 0\nend\ntop top\n";
    match read_rsgl(text) {
        Err(LayoutError::Parse { line, message }) => {
            assert_eq!(line, 3);
            assert!(message.contains("ghost"), "{message}");
        }
        other => panic!("expected parse error, got {other:?}"),
    }
}

#[test]
fn rsgl_coordinates_beyond_the_budget_are_rejected() {
    // i64::MAX literally, and the first value past the 2^30 budget: the
    // ingest boundary guarantees interior arithmetic cannot overflow, so
    // both must be typed errors, not accepted geometry.
    for big in [i64::MAX, rsg_geom::MAX_COORD + 1] {
        let text = format!("# rsgl 1\ncell top\n  box poly 0 0 {big} 4\nend\ntop top\n");
        let err = read_rsgl(&text).unwrap_err();
        assert!(
            matches!(
                err,
                LayoutError::CoordinateBudget { .. } | LayoutError::Parse { .. }
            ),
            "{err:?}"
        );
    }
    // The budget edge itself is admitted.
    let text = format!(
        "# rsgl 1\ncell top\n  box poly 0 0 {} 4\nend\ntop top\n",
        rsg_geom::MAX_COORD
    );
    read_rsgl(&text).unwrap();
}

#[test]
fn zero_area_and_touching_geometry_parse_and_flatten() {
    // Degenerate (zero-area) and exactly-touching boxes are legal inputs;
    // they must survive the full parse→flatten path.
    let text = "# rsgl 1\ncell top\n  box poly 0 0 0 0\n  box poly 0 0 4 4\n  box m1 4 0 8 4\nend\ntop top\n";
    let (table, top) = read_rsgl(text).unwrap();
    let flat = flatten(&table, top).unwrap();
    assert_eq!(flat.len(), 3);
}

#[test]
fn deep_hierarchies_parse_without_recursion_blowup() {
    // 500 nesting levels, callee-first; the reader and flattener walk it
    // iteratively enough to survive (the writer emits this shape too).
    let mut text = String::from("# rsgl 1\ncell c0\n  box poly 0 0 4 4\nend\n");
    let depth = 500;
    for i in 1..=depth {
        text.push_str(&format!("cell c{i}\n  inst c{} N 1 1\nend\n", i - 1));
    }
    text.push_str(&format!("top c{depth}\n"));
    let (table, top) = read_rsgl(&text).unwrap();
    let flat = flatten(&table, top).unwrap();
    assert_eq!(flat.len(), 1);
    assert_eq!(flat.boxes()[0].rect.lo(), Point::new(depth, depth));
}

#[test]
fn cif_unknown_instance_reference_is_typed() {
    // A CIF call of an undefined symbol number.
    let text = "DS 1 1 1;\nL NP;\nB 4 4 2 2;\nDF;\nC 99;\nE\n";
    let err = read_cif(text).unwrap_err();
    assert!(!err.to_string().is_empty());
}
