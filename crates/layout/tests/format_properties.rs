//! Property tests for the layout database and the `.rsgl` format.

use proptest::prelude::*;
use rsg_geom::{Orientation, Point, Rect};
use rsg_layout::{
    cif_safe_name, flatten, read_cif, read_rsgl, stats::LayoutStats, write_cif, write_rsgl,
    CellDefinition, CellTable, Instance, Layer, LayoutError,
};

fn arb_layer() -> impl Strategy<Value = Layer> {
    (0usize..Layer::ALL.len()).prop_map(|i| Layer::ALL[i])
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (-200i64..200, -200i64..200, 1i64..50, 1i64..50)
        .prop_map(|(x, y, w, h)| Rect::from_origin_size(Point::new(x, y), w, h))
}

fn arb_orientation() -> impl Strategy<Value = Orientation> {
    (0usize..8).prop_map(|i| Orientation::ALL[i])
}

/// A random two-level hierarchy: a few leaf cells, one top cell calling
/// them at random placements.
fn arb_table() -> impl Strategy<Value = (CellTable, rsg_layout::CellId)> {
    (
        proptest::collection::vec(
            proptest::collection::vec((arb_layer(), arb_rect()), 1..6),
            1..4,
        ),
        proptest::collection::vec(
            (0usize..4, -300i64..300, -300i64..300, arb_orientation()),
            1..10,
        ),
    )
        .prop_map(|(leaves, calls)| {
            let mut t = CellTable::new();
            let mut ids = Vec::new();
            for (k, boxes) in leaves.iter().enumerate() {
                let mut c = CellDefinition::new(format!("leaf{k}"));
                for (l, r) in boxes {
                    c.add_box(*l, *r);
                }
                c.add_label(format!("{k}"), Point::new(0, 0));
                ids.push(t.insert(c).unwrap());
            }
            let mut top = CellDefinition::new("top");
            for (which, x, y, o) in calls {
                let cell = ids[which % ids.len()];
                top.add_instance(Instance::new(cell, Point::new(x, y), o));
            }
            let top_id = t.insert(top).unwrap();
            (t, top_id)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// rsgl round-trips preserve all flat geometry and statistics.
    #[test]
    fn rsgl_round_trip((table, top) in arb_table()) {
        let text = write_rsgl(&table, top).unwrap();
        let (table2, top2) = read_rsgl(&text).unwrap();
        let s1 = LayoutStats::compute(&table, top).unwrap();
        let s2 = LayoutStats::compute(&table2, top2).unwrap();
        prop_assert_eq!(s1, s2);
        // Idempotent: writing the reread table is byte-identical.
        prop_assert_eq!(write_rsgl(&table2, top2).unwrap(), text);
    }

    /// Flattening through the writer/reader agrees with direct flattening.
    #[test]
    fn flatten_invariant_under_serialization((table, top) in arb_table()) {
        let direct: Vec<_> = flatten(&table, top).unwrap()
            .into_iter().map(|b| (b.layer, b.rect)).collect();
        let text = write_rsgl(&table, top).unwrap();
        let (table2, top2) = read_rsgl(&text).unwrap();
        let reread: Vec<_> = flatten(&table2, top2).unwrap()
            .into_iter().map(|b| (b.layer, b.rect)).collect();
        prop_assert_eq!(direct, reread);
    }

    /// CIF output is structurally sound for arbitrary hierarchies.
    #[test]
    fn cif_always_well_formed((table, top) in arb_table()) {
        let cif = write_cif(&table, top).unwrap();
        prop_assert!(cif.ends_with("E\n"));
        let ds = cif.matches("DS ").count();
        let df = cif.matches("DF;").count();
        prop_assert_eq!(ds, df, "every DS closed by DF");
        // The root is called exactly once at top level (after the last DF).
        let tail = cif.rsplit("DF;\n").next().unwrap();
        prop_assert!(tail.starts_with("C "), "{}", tail);
    }

    /// Hostile cell names (whitespace, `;`, leading `(`, empty) are a
    /// typed write-time rejection — never a silent truncation — and
    /// every accepted name round-trips through the CIF reader exactly.
    /// Pins the ISSUE 10 `9 {name};` corruption fix.
    #[test]
    fn cif_cell_names_round_trip_or_reject(
        chars in proptest::collection::vec(0usize..16, 0..12),
    ) {
        const ALPHABET: [char; 16] = [
            'a', 'b', 'z', '0', '9', '_', '-', '.', '!', '#',
            ';', '(', ')', ' ', '\t', '\n',
        ];
        let name: String = chars.into_iter().map(|i| ALPHABET[i]).collect();
        let mut t = CellTable::new();
        let mut c = CellDefinition::new(name.clone());
        c.add_box(Layer::Metal1, Rect::from_coords(0, 0, 4, 4));
        let id = t.insert(c).unwrap();
        match write_cif(&t, id) {
            Err(LayoutError::CifName { cell }) => {
                prop_assert_eq!(&cell, &name);
                prop_assert!(cif_safe_name(&name).is_err());
            }
            Err(e) => panic!("unexpected error {e} for name {name:?}"),
            Ok(cif) => {
                prop_assert!(cif_safe_name(&name).is_ok(), "accepted {name:?}");
                let (t2, id2) = read_cif(&cif).unwrap();
                prop_assert_eq!(t2.require(id2).unwrap().name(), name.as_str());
                // Idempotent: the reread table writes byte-identically.
                prop_assert_eq!(write_cif(&t2, id2).unwrap(), cif);
            }
        }
    }

    /// Flat box count equals the sum over instances of leaf box counts.
    #[test]
    fn flatten_counts_are_exact((table, top) in arb_table()) {
        let flat = flatten(&table, top).unwrap();
        let expected: usize = table.require(top).unwrap().instances()
            .map(|i| table.require(i.cell).unwrap().boxes().count())
            .sum();
        prop_assert_eq!(flat.len(), expected);
    }

    /// Flattened geometry of an instance equals the leaf geometry
    /// transformed by the calling isometry.
    #[test]
    fn flatten_applies_the_calling_isometry(
        boxes in proptest::collection::vec((arb_layer(), arb_rect()), 1..5),
        x in -100i64..100,
        y in -100i64..100,
        o in arb_orientation(),
    ) {
        let mut t = CellTable::new();
        let mut leaf = CellDefinition::new("leaf");
        for (l, r) in &boxes {
            leaf.add_box(*l, *r);
        }
        let leaf_id = t.insert(leaf).unwrap();
        let mut top = CellDefinition::new("top");
        let inst = Instance::new(leaf_id, Point::new(x, y), o);
        top.add_instance(inst);
        let top_id = t.insert(top).unwrap();
        let flat = flatten(&t, top_id).unwrap();
        let iso = inst.isometry();
        for (k, (l, r)) in boxes.iter().enumerate() {
            prop_assert_eq!(flat[k].layer, *l);
            prop_assert_eq!(flat[k].rect, r.transform(iso));
        }
    }
}
