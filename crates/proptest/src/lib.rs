//! Offline stand-in for the `proptest` crate.
//!
//! This workspace builds in a hermetic container with no access to the
//! crates.io registry, so the real `proptest` cannot be fetched. This
//! crate provides an API-compatible subset sufficient for the property
//! tests in this repository:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * the [`strategy::Strategy`] trait with `prop_map`,
//! * range strategies over the primitive integer types,
//! * tuple strategies up to arity 6,
//! * [`collection::vec`],
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Generation is a deterministic splitmix64 stream seeded from the test
//! name, so failures are reproducible run-to-run. There is no shrinking:
//! a failing case panics with the ordinary assertion message.

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::Rng;

    /// A generator of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut Rng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut Rng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut Rng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut Rng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut Rng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // Widen to i128 so `0u64..u64::MAX`-style spans cannot
                    // overflow.
                    let lo = self.start as i128;
                    let span = (self.end as i128) - lo;
                    (lo + (rng.next_u64() as i128).rem_euclid(span)) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut Rng) -> $t {
                    let lo = *self.start() as i128;
                    let span = (*self.end() as i128) - lo + 1;
                    (lo + (rng.next_u64() as i128).rem_euclid(span)) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut Rng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::Rng;

    /// Strategy for `Vec`s with lengths drawn from `len` and elements
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// The result of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Deterministic random stream and per-test configuration.

    /// splitmix64: tiny, fast, and plenty for test-case generation.
    #[derive(Debug, Clone)]
    pub struct Rng {
        state: u64,
    }

    impl Rng {
        /// Seeds the stream from a test name (deterministic per test).
        pub fn from_name(name: &str) -> Rng {
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Rng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 128 }
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...)` runs its
/// body over `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::Rng::from_name(stringify!($name));
            #[allow(unused_parens)]
            let (__strat) = ($($strat),*);
            for __case in 0..__config.cases {
                let ($($pat),*) =
                    $crate::strategy::Strategy::generate(&__strat, &mut __rng);
                $body
            }
        }
    )*};
}
