//! Coverage of every production in the Appendix-A BNF, as integration
//! tests against the public interpreter API.

use rsg_core::{Interface, Rsg};
use rsg_geom::{Orientation, Rect, Vector};
use rsg_lang::{Interpreter, Value};
use rsg_layout::{CellDefinition, Layer};

fn interp() -> Interpreter {
    let mut rsg = Rsg::new();
    let mut c = CellDefinition::new("tile");
    c.add_box(Layer::Metal1, Rect::from_coords(0, 0, 10, 10));
    let t = rsg.cells_mut().insert(c).unwrap();
    rsg.declare_primitive_interface(
        t,
        t,
        1,
        Interface::new(Vector::new(10, 0), Orientation::NORTH),
    )
    .unwrap();
    Interpreter::new(rsg)
}

#[test]
fn function_definition_and_call() {
    let mut i = interp();
    let v = i
        .exec("(defun fsq (x) (locals) (* x x))\n(defun fsum (a b) (locals) (+ (fsq a) (fsq b)))\n(fsum 3 4)")
        .unwrap();
    assert_eq!(v, Value::Int(25));
}

#[test]
fn macro_definition_returns_environment() {
    let mut i = interp();
    let v = i
        .exec("(macro mpoint (x y) (locals dist2) (setq dist2 (+ (* x x) (* y y))))\n(subcell (mpoint 3 4) dist2)")
        .unwrap();
    assert_eq!(v, Value::Int(25));
}

#[test]
fn locals_shadow_and_default_to_unit() {
    let mut i = interp();
    i.set_global("x", Value::Int(99));
    let v = i.exec("(defun fprobe () (locals x) x)\n(fprobe)").unwrap();
    assert_eq!(v, Value::Unit, "locals start unbound (unit)");
    assert_eq!(i.exec("x").unwrap(), Value::Int(99), "global untouched");
}

#[test]
fn cond_arms_run_like_progs() {
    let mut i = interp();
    let v = i
        .exec("(setq a 0)\n(cond ((= 1 1) (setq a 5) (+ a 1)))")
        .unwrap();
    assert_eq!(v, Value::Int(6));
    assert_eq!(i.exec("a").unwrap(), Value::Int(5));
}

#[test]
fn do_loop_full_form() {
    // (do (var init next exit) body): classic count-down product.
    let mut i = interp();
    let v = i
        .exec("(setq acc 1)\n(do (k 5 (- k 1) (= k 0)) (setq acc (* acc k)))\nacc")
        .unwrap();
    assert_eq!(v, Value::Int(120));
}

#[test]
fn nested_do_loops_with_two_indexed_arrays() {
    let mut i = interp();
    let v = i
        .exec(
            "(do (r 1 (+ r 1) (> r 3))\n\
               (do (c 1 (+ c 1) (> c 3))\n\
                 (assign m.r.c (* r c))))\n\
             (+ m.1.1 (+ m.2.3 m.3.3))",
        )
        .unwrap();
    assert_eq!(v, Value::Int(1 + 6 + 9));
}

#[test]
fn prog_returns_last_value() {
    let mut i = interp();
    assert_eq!(i.exec("(prog 1 2 3)").unwrap(), Value::Int(3));
    assert_eq!(i.exec("(prog)").unwrap(), Value::Unit);
}

#[test]
fn print_passes_value_through() {
    let mut i = interp();
    let v = i.exec("(+ (print 20) (print 22))").unwrap();
    assert_eq!(v, Value::Int(42));
    assert_eq!(i.output(), ["20", "22"]);
}

#[test]
fn read_consumes_input_queue() {
    let mut i = interp();
    i.push_input([5, 7, 9]);
    assert_eq!(i.exec("(* (read) (read))").unwrap(), Value::Int(35));
    assert_eq!(i.exec("(read)").unwrap(), Value::Int(9));
}

#[test]
fn primitive_operators_build_layout() {
    let mut i = interp();
    let v = i
        .exec(
            "(mk_instance a tile)\n(mk_instance b tile)\n(mk_instance c tile)\n\
             (connect a b 1)\n(connect b c 1)\n(mk_cell \"triple\" b)",
        )
        .unwrap();
    assert!(matches!(v, Value::Cell(_)));
    let id = i.rsg().cells().lookup("triple").unwrap();
    assert_eq!(i.rsg().cells().require(id).unwrap().instances().count(), 3);
}

#[test]
fn declare_interface_statement() {
    let mut i = interp();
    i.exec(
        "(mk_instance a tile)\n(mk_cell \"left\" a)\n\
         (mk_instance b tile)\n(mk_cell \"right\" b)\n\
         (declare_interface left right 1 a b 1)\n\
         (mk_instance la left)\n(mk_instance rb right)\n\
         (connect la rb 1)\n(mk_cell \"both\" la)",
    )
    .unwrap();
    let id = i.rsg().cells().lookup("both").unwrap();
    let pts: Vec<_> = i
        .rsg()
        .cells()
        .require(id)
        .unwrap()
        .instances()
        .map(|x| x.point_of_call)
        .collect();
    assert_eq!(pts[1].x - pts[0].x, 10, "inherited pitch");
}

#[test]
fn deeply_nested_arithmetic() {
    let mut i = interp();
    // A deep but non-recursive expression tree.
    let mut expr = String::from("1");
    for _ in 0..50 {
        expr = format!("(+ 1 {expr})");
    }
    assert_eq!(i.exec(&expr).unwrap(), Value::Int(51));
}

#[test]
fn comments_everywhere() {
    let mut i = interp();
    let v = i.exec("; leading\n(+ 1 ; inline\n 2) ; trailing").unwrap();
    assert_eq!(v, Value::Int(3));
}

#[test]
fn error_messages_are_actionable() {
    let mut i = interp();
    for (src, needle) in [
        ("(nosuch 1)", "unknown procedure"),
        ("qqq", "unbound variable `qqq`"),
        ("(connect 1 2 3)", "expected a node"),
        ("(mk_instance x 42)", "expected a cell"),
        ("(do (k 1 (+ k 1) k) 1)", "boolean"),
        ("(+ 1)", "at least 2"),
    ] {
        let err = i.exec(src).unwrap_err().to_string();
        assert!(err.contains(needle), "`{src}` → `{err}` missing `{needle}`");
    }
}

#[test]
fn parameter_file_drives_design_file() {
    let mut i = interp();
    i.load_parameters("size=5\ncellname=tile\ninum=1\n")
        .unwrap();
    i.exec(
        "(macro mrow (n) (locals first prev cur)\n\
           (mk_instance first cellname)\n(setq prev first)\n\
           (do (k 2 (+ k 1) (> k n))\n\
             (mk_instance cur cellname)\n(connect prev cur inum)\n(setq prev cur)))\n\
         (mk_cell \"prow\" (subcell (mrow size) first))",
    )
    .unwrap();
    let id = i.rsg().cells().lookup("prow").unwrap();
    assert_eq!(i.rsg().cells().require(id).unwrap().instances().count(), 5);
}

#[test]
fn reassigning_parameters_at_runtime() {
    // Assignment to an existing global updates the global (the parameter
    // file seeds the same environment the program mutates).
    let mut i = interp();
    i.load_parameters("n=3\n").unwrap();
    i.exec("(setq n (+ n 1))").unwrap();
    assert_eq!(i.global("n"), Some(&Value::Int(4)));
}
