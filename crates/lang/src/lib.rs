//! The RSG design-file language (Chapter 4 of the paper).
//!
//! The design file is "a parameterized, procedural description of the
//! architecture" written in a Lisp subset. This crate provides the lexer,
//! the parser for the Appendix-A BNF, and the interpreter, with the
//! distinctive features of the paper's language:
//!
//! * **Macros return their evaluation environment** (§4.2): a macro call
//!   evaluates like a function but yields the whole frame, so callers pick
//!   named results out with `(subcell env var)`.
//! * **Indexed variables** (`l.i`, `c.(- i 1)`): array-like bindings whose
//!   index is evaluated at run time (§4.3 — "the language does not support
//!   LIST structures; instead it provides primitive facilities for
//!   arrays").
//! * **Parameter-file scoping** (§4.1): variable lookup searches the
//!   procedure frame, then the global environment set up by the parameter
//!   file, then the cell definition table.
//! * The **primitive operators** `mk_instance`, `connect`, `mk_cell`,
//!   `subcell` and `declare_interface` (§4.4), bound to [`rsg_core::Rsg`].
//!
//! # Example
//!
//! ```
//! use rsg_lang::run_design;
//! use rsg_layout::{CellDefinition, CellTable, Instance, Layer};
//! use rsg_geom::{Orientation, Point, Rect};
//!
//! let mut sample = CellTable::new();
//! let mut tile = CellDefinition::new("tile");
//! tile.add_box(Layer::Metal1, Rect::from_coords(0, 0, 10, 10));
//! let tile_id = sample.insert(tile).unwrap();
//! let mut pair = CellDefinition::new("pair");
//! pair.add_instance(Instance::new(tile_id, Point::new(0, 0), Orientation::NORTH));
//! pair.add_instance(Instance::new(tile_id, Point::new(10, 0), Orientation::NORTH));
//! pair.add_label("1", Point::new(10, 5));
//! sample.insert(pair).unwrap();
//!
//! let design = r#"
//!   (macro mrow (size)
//!     (locals first prev cur)
//!     (mk_instance first corecell)
//!     (setq prev first)
//!     (do (i 2 (+ i 1) (> i size))
//!       (mk_instance cur corecell)
//!       (connect prev cur hinum)
//!       (setq prev cur))
//!     (mk_cell "row" first))
//!   (mrow rowsize)
//! "#;
//! let params = "corecell=tile\nhinum=1\nrowsize=4\n";
//! let run = run_design(sample, design, params).unwrap();
//! let row = run.rsg.cells().lookup("row").unwrap();
//! assert_eq!(run.rsg.cells().require(row).unwrap().instances().count(), 4);
//! ```
//!
//! Library code is panic-free by policy: `unwrap`/`expect` are denied
//! outside `#[cfg(test)]` (see DESIGN.md's robustness section).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(missing_docs)]

mod ast;
mod error;
mod interp;
mod lexer;
mod param;
mod parser;
mod value;

pub use ast::{Ast, VarRef};
pub use error::LangError;
pub use interp::{DesignRun, Interpreter};
pub use param::parse_parameter_file;
pub use parser::parse_program;
pub use value::Value;

use rsg_layout::CellTable;

/// One-shot driver for the Fig 1.1 flow: sample layout + design file +
/// parameter file → generator state with all built cells.
///
/// # Errors
///
/// Propagates interface-extraction, parse, and runtime errors.
pub fn run_design(
    sample: CellTable,
    design_src: &str,
    param_src: &str,
) -> Result<DesignRun, LangError> {
    let mut interp = Interpreter::from_sample(sample)?;
    interp.load_parameters(param_src)?;
    interp.run(design_src)
}
