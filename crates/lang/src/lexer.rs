//! Lexer for the design-file language.
//!
//! Tokens are parentheses, string literals, and atoms. An atom may carry a
//! trailing `.` to signal that a parenthesized index expression follows
//! (the `c.(- i 1)` syntax of indexed variables). Comments run from `;` to
//! end of line.

use crate::LangError;

/// One token with its source line (1-based) for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `(`
    LParen {
        /// Source line.
        line: usize,
    },
    /// `)`
    RParen {
        /// Source line.
        line: usize,
    },
    /// A bare atom: symbol, number, or dotted indexed-variable head.
    /// `trailing_dot` is set for atoms like `c.` in `c.(- i 1)`.
    Atom {
        /// The atom text (without any trailing dot).
        text: String,
        /// Whether a `(`-index expression follows.
        trailing_dot: bool,
        /// Source line.
        line: usize,
    },
    /// A double-quoted string literal.
    Str {
        /// The unquoted contents.
        text: String,
        /// Source line.
        line: usize,
    },
}

impl Token {
    /// The source line of the token.
    pub fn line(&self) -> usize {
        match self {
            Token::LParen { line }
            | Token::RParen { line }
            | Token::Atom { line, .. }
            | Token::Str { line, .. } => *line,
        }
    }
}

/// Splits design-file source into tokens.
///
/// # Errors
///
/// Returns [`LangError::Parse`] on unterminated strings.
pub fn lex(src: &str) -> Result<Vec<Token>, LangError> {
    let mut tokens = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line = 1usize;

    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            ';' => {
                for c in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '(' => {
                chars.next();
                tokens.push(Token::LParen { line });
            }
            ')' => {
                chars.next();
                tokens.push(Token::RParen { line });
            }
            '"' => {
                chars.next();
                let start = line;
                let mut text = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\n') => {
                            return Err(LangError::Parse {
                                line: start,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(ch) => text.push(ch),
                        None => {
                            return Err(LangError::Parse {
                                line: start,
                                message: "unterminated string literal".into(),
                            })
                        }
                    }
                }
                tokens.push(Token::Str { text, line });
            }
            _ => {
                let mut text = String::new();
                let mut trailing_dot = false;
                while let Some(&ch) = chars.peek() {
                    if ch.is_whitespace() || ch == '(' || ch == ')' || ch == ';' || ch == '"' {
                        break;
                    }
                    if ch == '.' {
                        // Peek past the dot: if a `(` follows, the dot
                        // terminates the atom and announces an index
                        // expression. Otherwise it is part of a dotted
                        // name like `l.i`.
                        let mut ahead = chars.clone();
                        ahead.next();
                        if ahead.peek() == Some(&'(') {
                            chars.next();
                            trailing_dot = true;
                            break;
                        }
                    }
                    text.push(ch);
                    chars.next();
                }
                tokens.push(Token::Atom {
                    text,
                    trailing_dot,
                    line,
                });
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atoms(src: &str) -> Vec<(String, bool)> {
        lex(src)
            .unwrap()
            .into_iter()
            .filter_map(|t| match t {
                Token::Atom {
                    text, trailing_dot, ..
                } => Some((text, trailing_dot)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn plain_atoms_and_parens() {
        let toks = lex("(+ a 12)").unwrap();
        assert_eq!(toks.len(), 5);
        assert!(matches!(&toks[1], Token::Atom { text, .. } if text == "+"));
        assert!(matches!(&toks[3], Token::Atom { text, .. } if text == "12"));
    }

    #[test]
    fn dotted_names_kept_whole() {
        assert_eq!(
            atoms("l.i c.1 phi2_2"),
            vec![
                ("l.i".to_owned(), false),
                ("c.1".to_owned(), false),
                ("phi2_2".to_owned(), false),
            ]
        );
    }

    #[test]
    fn trailing_dot_before_expression() {
        let got = atoms("c.(- i 1)");
        assert_eq!(got[0], ("c".to_owned(), true));
        assert_eq!(got[1], ("-".to_owned(), false));
    }

    #[test]
    fn strings_and_comments() {
        let toks = lex("(mk_cell \"the whole thing\" x) ; trailing comment\n(y)").unwrap();
        assert!(toks
            .iter()
            .any(|t| matches!(t, Token::Str { text, .. } if text == "the whole thing")));
        assert!(toks
            .iter()
            .any(|t| matches!(t, Token::Atom { text, .. } if text == "y")));
        assert!(!toks
            .iter()
            .any(|t| matches!(t, Token::Atom { text, .. } if text.contains("comment"))));
    }

    #[test]
    fn line_numbers() {
        let toks = lex("(a\n b\n c)").unwrap();
        let lines: Vec<usize> = toks.iter().map(Token::line).collect();
        assert_eq!(lines, vec![1, 1, 2, 3, 3]);
    }

    #[test]
    fn unterminated_string() {
        assert!(matches!(
            lex("\"abc"),
            Err(LangError::Parse { line: 1, .. })
        ));
        assert!(matches!(lex("\"ab\nc\""), Err(LangError::Parse { .. })));
    }

    #[test]
    fn negative_numbers_are_atoms() {
        assert_eq!(atoms("-42")[0].0, "-42");
    }
}
