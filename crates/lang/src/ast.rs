//! Abstract syntax for the design-file language (Appendix A BNF).

use std::fmt;

/// A variable reference, possibly indexed: `x`, `l.i`, `c.(- i 1)`,
/// `grid.i.j` (paper §4.3's array facility).
///
/// Indices are expressions evaluated in the *current* environment; the
/// resolved reference is the mangled name `base.i1[.i2]`.
#[derive(Debug, Clone, PartialEq)]
pub struct VarRef {
    /// Base name.
    pub base: String,
    /// Zero, one, or two index expressions.
    pub indices: Vec<Ast>,
}

impl VarRef {
    /// A plain, unindexed variable.
    pub fn plain(name: impl Into<String>) -> VarRef {
        VarRef {
            base: name.into(),
            indices: Vec::new(),
        }
    }
}

impl fmt::Display for VarRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.base)?;
        for _ in &self.indices {
            write!(f, ".<i>")?;
        }
        Ok(())
    }
}

/// A design-file statement / expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Ast {
    /// Integer literal.
    Int(i64),
    /// String literal.
    Str(String),
    /// Boolean literal (`true` / `false`).
    Bool(bool),
    /// Variable reference (plain or indexed).
    Var(VarRef),
    /// Function, macro, or builtin call.
    Call {
        /// Callee name.
        name: String,
        /// Argument expressions.
        args: Vec<Ast>,
        /// Source line of the call (for error traces).
        line: usize,
    },
    /// `(cond (test stmt...) ...)` — first matching arm wins; each arm may
    /// carry several statements (evaluated like a prog).
    Cond(Vec<(Ast, Vec<Ast>)>),
    /// `(do (var init next exit) body...)` — loop until `exit` is true.
    Do {
        /// Loop variable name.
        var: String,
        /// Initial value expression.
        init: Box<Ast>,
        /// Next-value expression (evaluated after each iteration).
        next: Box<Ast>,
        /// Exit condition (checked before each iteration).
        exit: Box<Ast>,
        /// Loop body.
        body: Vec<Ast>,
    },
    /// `(assign var expr)` / `(setq var expr)`.
    Assign(VarRef, Box<Ast>),
    /// `(prog stmt...)` — sequence, value of the last statement.
    Prog(Vec<Ast>),
    /// `(print expr)`.
    Print(Box<Ast>),
    /// `(read)` — pops the next integer from the interpreter's input queue.
    Read,
    /// `(mk_instance var cellexpr)` (§4.4.1).
    MkInstance(VarRef, Box<Ast>),
    /// `(connect a b inum)` (§4.4.2) — the edge emanates from `a`.
    Connect(Box<Ast>, Box<Ast>, Box<Ast>),
    /// `(subcell envexpr var)` — look `var` up in a macro's returned
    /// environment (§4.2).
    Subcell(Box<Ast>, VarRef),
    /// `(mk_cell nameexpr rootexpr)` (§4.4.3).
    MkCell(Box<Ast>, Box<Ast>),
    /// `(declare_interface cellC cellD newinum nodeA nodeB existinginum)`
    /// (§2.5, Fig 5.4b).
    DeclareInterface {
        /// Expression naming the first macrocell.
        cell_c: Box<Ast>,
        /// Expression naming the second macrocell.
        cell_d: Box<Ast>,
        /// New interface index.
        new_index: Box<Ast>,
        /// Placed node of the subcell inside C.
        node_a: Box<Ast>,
        /// Placed node of the subcell inside D.
        node_b: Box<Ast>,
        /// Existing interface index between the subcells' celltypes.
        existing_index: Box<Ast>,
    },
}

/// A top-level form: a procedure definition or a statement.
#[derive(Debug, Clone, PartialEq)]
pub enum TopLevel {
    /// `(defun name (formals) (locals ...) body...)` or
    /// `(macro mname (formals) (locals ...) body...)`.
    Proc(ProcDef),
    /// Any other statement, executed in order.
    Stmt(Ast),
}

/// A function or macro definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcDef {
    /// Procedure name (macros must start with `m` — §4.2).
    pub name: String,
    /// Formal parameter names.
    pub formals: Vec<String>,
    /// Declared locals.
    pub locals: Vec<String>,
    /// Body statements.
    pub body: Vec<Ast>,
    /// `true` for environment-returning macros.
    pub is_macro: bool,
    /// Source line of the definition.
    pub line: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varref_display() {
        assert_eq!(VarRef::plain("x").to_string(), "x");
        let v = VarRef {
            base: "l".into(),
            indices: vec![Ast::Int(1)],
        };
        assert_eq!(v.to_string(), "l.<i>");
    }
}
