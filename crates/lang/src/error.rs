//! Error type for the design-file language.

use rsg_core::RsgError;
use std::fmt;

/// Errors from lexing, parsing, or executing a design file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LangError {
    /// Lexical or syntactic error, with a 1-based line number.
    Parse {
        /// Line at which the problem was found.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// Runtime error during evaluation.
    Runtime {
        /// What went wrong.
        message: String,
        /// The call chain (innermost last) when it happened.
        call_stack: Vec<String>,
    },
    /// An error from the underlying generator.
    Rsg(RsgError),
}

impl LangError {
    pub(crate) fn runtime(message: impl Into<String>) -> LangError {
        LangError::Runtime {
            message: message.into(),
            call_stack: Vec::new(),
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            LangError::Runtime {
                message,
                call_stack,
            } => {
                write!(f, "runtime error: {message}")?;
                if !call_stack.is_empty() {
                    write!(f, " (in {})", call_stack.join(" > "))?;
                }
                Ok(())
            }
            LangError::Rsg(e) => write!(f, "generator error: {e}"),
        }
    }
}

impl std::error::Error for LangError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LangError::Rsg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RsgError> for LangError {
    fn from(e: RsgError) -> LangError {
        LangError::Rsg(e)
    }
}

/// The reverse direction, for callers that funnel every pipeline stage
/// into the unified [`RsgError`]: a wrapped generator error unwraps to
/// itself; parse and runtime errors travel as rendered messages (line
/// and call-stack context included).
impl From<LangError> for RsgError {
    fn from(e: LangError) -> RsgError {
        match e {
            LangError::Rsg(inner) => inner,
            other => RsgError::Lang(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = LangError::Parse {
            line: 4,
            message: "unexpected )".into(),
        };
        assert!(e.to_string().contains("line 4"));
        let r = LangError::Runtime {
            message: "unbound variable `x`".into(),
            call_stack: vec!["mall".into(), "mcell".into()],
        };
        assert!(r.to_string().contains("mall > mcell"));
    }
}
