//! Parameter-file parser (paper §4.1, Appendix C).
//!
//! The parameter file "sets up parameter values in the global environment
//! of the design file interpreter". Syntax, one binding per line:
//!
//! ```text
//! .example_file:/u/bamji/demo/mult.def     # dotted header lines: recorded
//! vinum=2                                  # integer
//! mularrayname="array"                     # string
//! corecell=cell                            # symbol alias, resolved lazily
//! ```
//!
//! Symbol values implement the paper's personalization trick: a statement
//! `corecell = basiccell` "would cause the variable named corecell ... to
//! now refer to the cell named basiccell in the sample layout".

use crate::{LangError, Value};

/// A parsed parameter file: bindings plus dotted header lines.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParameterFile {
    /// `name → value` bindings, in file order.
    pub bindings: Vec<(String, Value)>,
    /// Header lines like `.example_file:...` as `(key, value)`.
    pub headers: Vec<(String, String)>,
}

/// Parses a parameter file.
///
/// # Errors
///
/// Returns [`LangError::Parse`] on lines that are neither headers,
/// comments, nor `name=value` bindings.
pub fn parse_parameter_file(src: &str) -> Result<ParameterFile, LangError> {
    let mut out = ParameterFile::default();
    for (i, raw) in src.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('.') {
            let (key, value) = rest.split_once(':').ok_or_else(|| LangError::Parse {
                line: line_no,
                message: "header line must be `.key:value`".into(),
            })?;
            out.headers
                .push((key.trim().to_owned(), value.trim().to_owned()));
            continue;
        }
        let (name, value) = line.split_once('=').ok_or_else(|| LangError::Parse {
            line: line_no,
            message: format!("expected `name=value`, got `{line}`"),
        })?;
        let name = name.trim();
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_alphanumeric() || c == '_' || c == '.')
        {
            return Err(LangError::Parse {
                line: line_no,
                message: format!("bad parameter name `{name}`"),
            });
        }
        let value = value.trim();
        let parsed =
            if let Some(stripped) = value.strip_prefix('"').and_then(|v| v.strip_suffix('"')) {
                Value::Str(stripped.to_owned())
            } else if let Ok(n) = value.parse::<i64>() {
                Value::Int(n)
            } else if value == "true" || value == "false" {
                Value::Bool(value == "true")
            } else if !value.is_empty()
                && value
                    .chars()
                    .all(|c| c.is_alphanumeric() || c == '_' || c == '.')
            {
                Value::Symbol(value.to_owned())
            } else {
                return Err(LangError::Parse {
                    line: line_no,
                    message: format!("bad parameter value `{value}`"),
                });
            };
        out.bindings.push((name.to_owned(), parsed));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_value_kinds() {
        let src = r#"
.example_file:/u/bamji/demo/mult.def
# a comment
vinum=2
mularrayname="array"
corecell=cell
flag=true
"#;
        let p = parse_parameter_file(src).unwrap();
        assert_eq!(
            p.headers,
            vec![(
                "example_file".to_owned(),
                "/u/bamji/demo/mult.def".to_owned()
            )]
        );
        assert_eq!(p.bindings.len(), 4);
        assert_eq!(p.bindings[0], ("vinum".to_owned(), Value::Int(2)));
        assert_eq!(
            p.bindings[1],
            ("mularrayname".to_owned(), Value::Str("array".into()))
        );
        assert_eq!(
            p.bindings[2],
            ("corecell".to_owned(), Value::Symbol("cell".into()))
        );
        assert_eq!(p.bindings[3], ("flag".to_owned(), Value::Bool(true)));
    }

    #[test]
    fn whitespace_tolerant() {
        let p = parse_parameter_file("  a = 5 \n b = \"x y\" \n").unwrap();
        assert_eq!(p.bindings[0], ("a".to_owned(), Value::Int(5)));
        assert_eq!(p.bindings[1], ("b".to_owned(), Value::Str("x y".into())));
    }

    #[test]
    fn negative_integers() {
        let p = parse_parameter_file("n=-3\n").unwrap();
        assert_eq!(p.bindings[0].1, Value::Int(-3));
    }

    #[test]
    fn errors_with_line_numbers() {
        assert!(matches!(
            parse_parameter_file("good=1\nbad line\n"),
            Err(LangError::Parse { line: 2, .. })
        ));
        assert!(matches!(
            parse_parameter_file("x=@!#\n"),
            Err(LangError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            parse_parameter_file(".noseparator\n"),
            Err(LangError::Parse { line: 1, .. })
        ));
    }
}
