//! Parser: tokens → s-expressions → [`Ast`] per the Appendix-A BNF.

use crate::ast::{Ast, ProcDef, TopLevel, VarRef};
use crate::lexer::{lex, Token};
use crate::LangError;

/// Intermediate s-expression form.
#[derive(Debug, Clone, PartialEq)]
enum Sexp {
    Atom {
        text: String,
        line: usize,
    },
    Str {
        text: String,
        line: usize,
    },
    /// An atom immediately followed by `.(expr)` index expressions.
    Indexed {
        base: String,
        indices: Vec<Sexp>,
        line: usize,
    },
    List {
        items: Vec<Sexp>,
        line: usize,
    },
}

impl Sexp {
    fn line(&self) -> usize {
        match self {
            Sexp::Atom { line, .. }
            | Sexp::Str { line, .. }
            | Sexp::Indexed { line, .. }
            | Sexp::List { line, .. } => *line,
        }
    }
}

fn perr(line: usize, message: impl Into<String>) -> LangError {
    LangError::Parse {
        line,
        message: message.into(),
    }
}

/// Parses a full design file into top-level forms.
///
/// # Errors
///
/// Returns [`LangError::Parse`] with a line number on malformed input.
pub fn parse_program(src: &str) -> Result<Vec<TopLevel>, LangError> {
    let tokens = lex(src)?;
    let mut pos = 0usize;
    let mut sexps = Vec::new();
    while pos < tokens.len() {
        let (s, next) = parse_sexp(&tokens, pos)?;
        sexps.push(s);
        pos = next;
    }
    sexps.into_iter().map(lower_toplevel).collect()
}

fn parse_sexp(tokens: &[Token], pos: usize) -> Result<(Sexp, usize), LangError> {
    match tokens.get(pos) {
        None => Err(perr(
            tokens.last().map_or(1, Token::line),
            "unexpected end of input",
        )),
        Some(Token::RParen { line }) => Err(perr(*line, "unexpected `)`")),
        Some(Token::Str { text, line }) => Ok((
            Sexp::Str {
                text: text.clone(),
                line: *line,
            },
            pos + 1,
        )),
        Some(Token::Atom {
            text,
            trailing_dot,
            line,
        }) => {
            if *trailing_dot {
                // base.(expr) — possibly chained: base.(e1).(e2) is not
                // supported; a second literal index may follow as part of
                // the base text already.
                let (index, next) = parse_sexp(tokens, pos + 1)?;
                Ok((
                    Sexp::Indexed {
                        base: text.clone(),
                        indices: vec![index],
                        line: *line,
                    },
                    next,
                ))
            } else {
                Ok((
                    Sexp::Atom {
                        text: text.clone(),
                        line: *line,
                    },
                    pos + 1,
                ))
            }
        }
        Some(Token::LParen { line }) => {
            let mut items = Vec::new();
            let mut p = pos + 1;
            loop {
                match tokens.get(p) {
                    None => return Err(perr(*line, "unclosed `(`")),
                    Some(Token::RParen { .. }) => {
                        return Ok((Sexp::List { items, line: *line }, p + 1))
                    }
                    _ => {
                        let (s, next) = parse_sexp(tokens, p)?;
                        items.push(s);
                        p = next;
                    }
                }
            }
        }
    }
}

fn lower_toplevel(s: Sexp) -> Result<TopLevel, LangError> {
    if let Sexp::List { items, line } = &s {
        if let Some(Sexp::Atom { text, .. }) = items.first() {
            if text == "defun" || text == "macro" {
                return lower_procdef(items, *line, text == "macro").map(TopLevel::Proc);
            }
        }
    }
    lower_stmt(&s).map(TopLevel::Stmt)
}

fn lower_procdef(items: &[Sexp], line: usize, is_macro: bool) -> Result<ProcDef, LangError> {
    let kw = if is_macro { "macro" } else { "defun" };
    if items.len() < 3 {
        return Err(perr(
            line,
            format!("`{kw}` needs a name and a formals list"),
        ));
    }
    let name = atom_text(&items[1])
        .ok_or_else(|| perr(line, format!("`{kw}` name must be an atom")))?
        .to_owned();
    if is_macro && !name.starts_with('m') {
        return Err(perr(
            line,
            format!("macro name `{name}` must begin with `m` (paper §4.2)"),
        ));
    }
    if !is_macro && name.starts_with('m') {
        return Err(perr(
            line,
            format!("function name `{name}` may not begin with `m` (reserved for macros)"),
        ));
    }
    let formals = name_list(&items[2])
        .ok_or_else(|| perr(items[2].line(), "formals must be a list of names"))?;

    // Optional (locals ...) as the next form.
    let mut body_start = 3;
    let mut locals = Vec::new();
    if let Some(Sexp::List { items: l, .. }) = items.get(3) {
        if matches!(l.first(), Some(Sexp::Atom { text, .. }) if text == "locals" || text == "local")
        {
            locals = l[1..]
                .iter()
                .map(|s| {
                    atom_text(s)
                        .map(|t| t.trim_end_matches('.').to_owned())
                        .ok_or_else(|| perr(s.line(), "locals must be names"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            body_start = 4;
        }
    }
    let body = items[body_start..]
        .iter()
        .map(lower_stmt)
        .collect::<Result<Vec<_>, LangError>>()?;
    Ok(ProcDef {
        name,
        formals,
        locals,
        body,
        is_macro,
        line,
    })
}

fn atom_text(s: &Sexp) -> Option<&str> {
    match s {
        Sexp::Atom { text, .. } => Some(text),
        _ => None,
    }
}

fn name_list(s: &Sexp) -> Option<Vec<String>> {
    match s {
        Sexp::List { items, .. } => items
            .iter()
            .map(|i| atom_text(i).map(str::to_owned))
            .collect(),
        _ => None,
    }
}

/// Lowers an atom to a literal or a (possibly dotted) variable reference.
fn lower_atom(text: &str, line: usize) -> Result<Ast, LangError> {
    if let Ok(n) = text.parse::<i64>() {
        return Ok(Ast::Int(n));
    }
    match text {
        "true" => return Ok(Ast::Bool(true)),
        "false" => return Ok(Ast::Bool(false)),
        _ => {}
    }
    Ok(Ast::Var(lower_dotted_name(text, line)?))
}

/// Splits `l.i`, `c.1`, `grid.i.j` into base + literal/symbol indices.
fn lower_dotted_name(text: &str, line: usize) -> Result<VarRef, LangError> {
    let mut parts = text.split('.');
    let base = parts.next().unwrap_or("");
    if base.is_empty() {
        return Err(perr(line, format!("bad variable name `{text}`")));
    }
    let mut indices = Vec::new();
    for p in parts {
        if p.is_empty() {
            continue; // trailing dot in a locals declaration like `l.`
        }
        let idx = if let Ok(n) = p.parse::<i64>() {
            Ast::Int(n)
        } else {
            Ast::Var(VarRef::plain(p))
        };
        indices.push(idx);
    }
    if indices.len() > 2 {
        return Err(perr(
            line,
            format!("variable `{text}` has more than two indices"),
        ));
    }
    Ok(VarRef {
        base: base.to_owned(),
        indices,
    })
}

fn lower_varref(s: &Sexp) -> Result<VarRef, LangError> {
    match s {
        Sexp::Atom { text, line } => lower_dotted_name(text, *line),
        Sexp::Indexed {
            base,
            indices,
            line,
        } => {
            let mut vr = lower_dotted_name(base, *line)?;
            for i in indices {
                vr.indices.push(lower_stmt(i)?);
            }
            if vr.indices.len() > 2 {
                return Err(perr(
                    *line,
                    format!("variable `{base}` has more than two indices"),
                ));
            }
            Ok(vr)
        }
        other => Err(perr(other.line(), "expected a variable")),
    }
}

fn lower_stmt(s: &Sexp) -> Result<Ast, LangError> {
    match s {
        Sexp::Atom { text, line } => lower_atom(text, *line),
        Sexp::Str { text, .. } => Ok(Ast::Str(text.clone())),
        Sexp::Indexed { .. } => Ok(Ast::Var(lower_varref(s)?)),
        Sexp::List { items, line } => {
            let line = *line;
            let head = match items.first() {
                Some(h) => h,
                None => return Err(perr(line, "empty form `()`")),
            };
            let Some(kw) = atom_text(head) else {
                return Err(perr(line, "form must start with a name"));
            };
            match kw {
                "cond" => {
                    let mut arms = Vec::new();
                    for arm in &items[1..] {
                        let Sexp::List { items: a, line: al } = arm else {
                            return Err(perr(arm.line(), "cond arm must be a list"));
                        };
                        if a.is_empty() {
                            return Err(perr(*al, "empty cond arm"));
                        }
                        let test = lower_stmt(&a[0])?;
                        let body = a[1..]
                            .iter()
                            .map(lower_stmt)
                            .collect::<Result<Vec<_>, LangError>>()?;
                        arms.push((test, body));
                    }
                    Ok(Ast::Cond(arms))
                }
                "do" => {
                    let hdr = items
                        .get(1)
                        .ok_or_else(|| perr(line, "do needs a (var init next exit) header"))?;
                    let Sexp::List { items: h, line: hl } = hdr else {
                        return Err(perr(hdr.line(), "do header must be a list"));
                    };
                    if h.len() != 4 {
                        return Err(perr(*hl, "do header must be (var init next exit)"));
                    }
                    let var = atom_text(&h[0])
                        .ok_or_else(|| perr(*hl, "do variable must be a name"))?
                        .to_owned();
                    let init = Box::new(lower_stmt(&h[1])?);
                    let next = Box::new(lower_stmt(&h[2])?);
                    let exit = Box::new(lower_stmt(&h[3])?);
                    let body = items[2..]
                        .iter()
                        .map(lower_stmt)
                        .collect::<Result<Vec<_>, LangError>>()?;
                    Ok(Ast::Do {
                        var,
                        init,
                        next,
                        exit,
                        body,
                    })
                }
                "assign" | "setq" => {
                    if items.len() != 3 {
                        return Err(perr(line, format!("{kw} needs a variable and a value")));
                    }
                    Ok(Ast::Assign(
                        lower_varref(&items[1])?,
                        Box::new(lower_stmt(&items[2])?),
                    ))
                }
                "prog" => {
                    let body = items[1..]
                        .iter()
                        .map(lower_stmt)
                        .collect::<Result<Vec<_>, LangError>>()?;
                    Ok(Ast::Prog(body))
                }
                "print" => {
                    if items.len() != 2 {
                        return Err(perr(line, "print takes one argument"));
                    }
                    Ok(Ast::Print(Box::new(lower_stmt(&items[1])?)))
                }
                "read" => {
                    if items.len() != 1 {
                        return Err(perr(line, "read takes no arguments"));
                    }
                    Ok(Ast::Read)
                }
                "mk_instance" | "mkinstance" => {
                    if items.len() != 3 {
                        return Err(perr(line, "mk_instance needs a variable and a cell"));
                    }
                    Ok(Ast::MkInstance(
                        lower_varref(&items[1])?,
                        Box::new(lower_stmt(&items[2])?),
                    ))
                }
                "connect" => {
                    if items.len() != 4 {
                        return Err(perr(line, "connect needs two nodes and an interface index"));
                    }
                    Ok(Ast::Connect(
                        Box::new(lower_stmt(&items[1])?),
                        Box::new(lower_stmt(&items[2])?),
                        Box::new(lower_stmt(&items[3])?),
                    ))
                }
                "subcell" => {
                    if items.len() != 3 {
                        return Err(perr(line, "subcell needs an environment and a variable"));
                    }
                    Ok(Ast::Subcell(
                        Box::new(lower_stmt(&items[1])?),
                        lower_varref(&items[2])?,
                    ))
                }
                "mk_cell" | "mkcell" => {
                    if items.len() != 3 {
                        return Err(perr(line, "mk_cell needs a name and a root node"));
                    }
                    Ok(Ast::MkCell(
                        Box::new(lower_stmt(&items[1])?),
                        Box::new(lower_stmt(&items[2])?),
                    ))
                }
                "declare_interface" | "declareinterface" => {
                    if items.len() != 7 {
                        return Err(perr(
                            line,
                            "declare_interface needs (cellC cellD newinum nodeA nodeB existinginum)",
                        ));
                    }
                    Ok(Ast::DeclareInterface {
                        cell_c: Box::new(lower_stmt(&items[1])?),
                        cell_d: Box::new(lower_stmt(&items[2])?),
                        new_index: Box::new(lower_stmt(&items[3])?),
                        node_a: Box::new(lower_stmt(&items[4])?),
                        node_b: Box::new(lower_stmt(&items[5])?),
                        existing_index: Box::new(lower_stmt(&items[6])?),
                    })
                }
                "defun" | "macro" => {
                    Err(perr(line, format!("`{kw}` is only allowed at top level")))
                }
                _ => {
                    let args = items[1..]
                        .iter()
                        .map(lower_stmt)
                        .collect::<Result<Vec<_>, LangError>>()?;
                    Ok(Ast::Call {
                        name: kw.to_owned(),
                        args,
                        line,
                    })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_stmt(src: &str) -> Ast {
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.len(), 1);
        match prog.into_iter().next().unwrap() {
            TopLevel::Stmt(a) => a,
            TopLevel::Proc(_) => panic!("expected statement"),
        }
    }

    #[test]
    fn literals_and_vars() {
        assert_eq!(one_stmt("42"), Ast::Int(42));
        assert_eq!(one_stmt("true"), Ast::Bool(true));
        assert_eq!(one_stmt("\"hi\""), Ast::Str("hi".into()));
        assert_eq!(one_stmt("xyz"), Ast::Var(VarRef::plain("xyz")));
    }

    #[test]
    fn dotted_variables() {
        let v = one_stmt("l.i");
        let Ast::Var(vr) = v else { panic!() };
        assert_eq!(vr.base, "l");
        assert_eq!(vr.indices, vec![Ast::Var(VarRef::plain("i"))]);

        let v = one_stmt("c.3");
        let Ast::Var(vr) = v else { panic!() };
        assert_eq!(vr.indices, vec![Ast::Int(3)]);
    }

    #[test]
    fn expression_indexed_variable() {
        let v = one_stmt("c.(- i 1)");
        let Ast::Var(vr) = v else { panic!() };
        assert_eq!(vr.base, "c");
        assert_eq!(vr.indices.len(), 1);
        assert!(matches!(&vr.indices[0], Ast::Call { name, .. } if name == "-"));
    }

    #[test]
    fn cond_and_do() {
        let c = one_stmt("(cond ((= x 1) 10) (true 20))");
        let Ast::Cond(arms) = c else { panic!() };
        assert_eq!(arms.len(), 2);
        assert_eq!(arms[1].0, Ast::Bool(true));

        let d = one_stmt("(do (i 2 (+ i 1) (> i n)) (print i))");
        let Ast::Do { var, .. } = d else { panic!() };
        assert_eq!(var, "i");
    }

    #[test]
    fn proc_definitions() {
        let prog = parse_program(
            "(defun fadd (a b) (locals t) (+ a b))\n(macro mrow (n) (locals c) (mk_instance c x))",
        )
        .unwrap();
        let TopLevel::Proc(f) = &prog[0] else {
            panic!()
        };
        assert!(!f.is_macro);
        assert_eq!(f.formals, vec!["a", "b"]);
        assert_eq!(f.locals, vec!["t"]);
        let TopLevel::Proc(m) = &prog[1] else {
            panic!()
        };
        assert!(m.is_macro);
    }

    #[test]
    fn macro_name_must_start_with_m() {
        let err = parse_program("(macro row (n) (locals) 1)").unwrap_err();
        assert!(err.to_string().contains("begin with `m`"));
        let err2 = parse_program("(defun mrow (n) (locals) 1)").unwrap_err();
        assert!(err2.to_string().contains("reserved for macros"));
    }

    #[test]
    fn rsg_primitives_parse() {
        assert!(matches!(
            one_stmt("(mk_instance c corecell)"),
            Ast::MkInstance(..)
        ));
        assert!(matches!(one_stmt("(connect a b 1)"), Ast::Connect(..)));
        assert!(matches!(one_stmt("(subcell tregs ref)"), Ast::Subcell(..)));
        assert!(matches!(one_stmt("(mk_cell \"row\" c)"), Ast::MkCell(..)));
        assert!(matches!(
            one_stmt("(declare_interface a b 1 x y 2)"),
            Ast::DeclareInterface { .. }
        ));
    }

    #[test]
    fn subcell_with_indexed_env() {
        let s = one_stmt("(subcell l.(- i 1) c.1)");
        let Ast::Subcell(env, var) = s else { panic!() };
        assert!(matches!(*env, Ast::Var(ref vr) if vr.base == "l"));
        assert_eq!(var.base, "c");
        assert_eq!(var.indices, vec![Ast::Int(1)]);
    }

    #[test]
    fn errors_have_lines() {
        assert!(matches!(
            parse_program("(a\n(b)"),
            Err(LangError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            parse_program(")"),
            Err(LangError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            parse_program("(cond x)"),
            Err(LangError::Parse { .. })
        ));
        assert!(matches!(parse_program("()"), Err(LangError::Parse { .. })));
        assert!(matches!(
            parse_program("(do (i 1 2) x)"),
            Err(LangError::Parse { .. })
        ));
    }

    #[test]
    fn nested_defun_rejected() {
        assert!(parse_program("(prog (defun fx () 1))").is_err());
    }

    #[test]
    fn plain_call() {
        let c = one_stmt("(mall xsize ysize)");
        assert!(
            matches!(c, Ast::Call { ref name, ref args, .. } if name == "mall" && args.len() == 2)
        );
    }
}
