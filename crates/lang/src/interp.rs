//! The design-file interpreter (paper §4.1–§4.5).
//!
//! Environments are hash tables in an arena; macros return their frame by
//! handle and the frame outlives the call ("unlike a classical LISP
//! interpreter which disposes of the environment frame when a procedure is
//! exited, environments in design files may have a much greater lifetime",
//! §4.5). Variable lookup follows the paper's chain: current frame →
//! global environment (parameter file) → cell definition table.

use crate::ast::{Ast, ProcDef, TopLevel, VarRef};
use crate::param::parse_parameter_file;
use crate::parser::parse_program;
use crate::value::{EnvId, Value};
use crate::LangError;
use rsg_core::Rsg;
use rsg_layout::{CellId, CellTable};
use std::collections::{HashMap, VecDeque};

/// Result of running a design file: the generator (cell + interface
/// tables populated), the collected `print` output, and the value of the
/// last top-level statement.
#[derive(Debug)]
pub struct DesignRun {
    /// The generator, holding every built cell.
    pub rsg: Rsg,
    /// Lines produced by `(print ...)`.
    pub output: Vec<String>,
    /// Value of the last top-level statement.
    pub result: Value,
}

/// The design-file interpreter.
///
/// See the [crate-level example](crate) for typical use via
/// [`crate::run_design`].
#[derive(Debug)]
pub struct Interpreter {
    rsg: Rsg,
    globals: HashMap<String, Value>,
    frames: Vec<HashMap<String, Value>>,
    procs: HashMap<String, ProcDef>,
    output: Vec<String>,
    input: VecDeque<i64>,
    call_stack: Vec<String>,
    max_call_depth: usize,
    root_frame: Option<EnvId>,
}

impl Interpreter {
    /// Creates an interpreter over an existing generator.
    pub fn new(rsg: Rsg) -> Interpreter {
        Interpreter {
            rsg,
            globals: HashMap::new(),
            frames: Vec::new(),
            procs: HashMap::new(),
            output: Vec::new(),
            input: VecDeque::new(),
            call_stack: Vec::new(),
            max_call_depth: 100,
            root_frame: None,
        }
    }

    /// Creates an interpreter from a sample layout (extracting its
    /// interface table, Fig 3.1 step 1).
    ///
    /// # Errors
    ///
    /// Propagates interface-extraction errors.
    pub fn from_sample(sample: CellTable) -> Result<Interpreter, LangError> {
        Ok(Interpreter::new(Rsg::from_sample(sample)?))
    }

    /// Loads a parameter file into the global environment (§4.1).
    ///
    /// # Errors
    ///
    /// Propagates parse errors.
    pub fn load_parameters(&mut self, src: &str) -> Result<(), LangError> {
        let p = parse_parameter_file(src)?;
        for (name, value) in p.bindings {
            self.globals.insert(name, value);
        }
        Ok(())
    }

    /// Supplies integers for `(read)` statements.
    pub fn push_input<I: IntoIterator<Item = i64>>(&mut self, values: I) {
        self.input.extend(values);
    }

    /// Sets one global directly (a programmatic parameter binding).
    pub fn set_global(&mut self, name: impl Into<String>, value: Value) {
        self.globals.insert(name.into(), value);
    }

    /// Reads a global back (for tests and drivers).
    pub fn global(&self, name: &str) -> Option<&Value> {
        self.globals.get(name)
    }

    /// The generator.
    pub fn rsg(&self) -> &Rsg {
        &self.rsg
    }

    /// The collected `print` output so far.
    pub fn output(&self) -> &[String] {
        &self.output
    }

    /// Parses and executes design-file source, returning the value of the
    /// last top-level statement.
    ///
    /// # Errors
    ///
    /// Propagates parse and runtime errors; the interpreter remains usable
    /// for inspection afterwards.
    pub fn exec(&mut self, src: &str) -> Result<Value, LangError> {
        let program = parse_program(src)?;
        // Definitions first (so statements may call procs defined later in
        // the file), then statements in order.
        for form in &program {
            if let TopLevel::Proc(p) = form {
                self.procs.insert(p.name.clone(), p.clone());
            }
        }
        let root = match self.root_frame {
            Some(r) => r,
            None => {
                let r = self.new_frame();
                self.root_frame = Some(r);
                r
            }
        };
        let mut last = Value::Unit;
        for form in &program {
            if let TopLevel::Stmt(stmt) = form {
                last = self.eval(stmt, root)?;
            }
        }
        Ok(last)
    }

    /// Consumes the interpreter, executing `src` and packaging the result.
    ///
    /// # Errors
    ///
    /// Propagates parse and runtime errors.
    pub fn run(mut self, src: &str) -> Result<DesignRun, LangError> {
        let result = self.exec(src)?;
        Ok(DesignRun {
            rsg: self.rsg,
            output: self.output,
            result,
        })
    }

    // ------------------------------------------------------------------
    // evaluation
    // ------------------------------------------------------------------

    fn new_frame(&mut self) -> EnvId {
        self.frames.push(HashMap::new());
        EnvId(self.frames.len() as u32 - 1)
    }

    fn rt(&self, message: impl Into<String>) -> LangError {
        LangError::Runtime {
            message: message.into(),
            call_stack: self.call_stack.clone(),
        }
    }

    fn eval(&mut self, ast: &Ast, env: EnvId) -> Result<Value, LangError> {
        match ast {
            Ast::Int(n) => Ok(Value::Int(*n)),
            Ast::Str(s) => Ok(Value::Str(s.clone())),
            Ast::Bool(b) => Ok(Value::Bool(*b)),
            Ast::Var(vr) => {
                let name = self.mangle(vr, env)?;
                self.lookup(&name, env)
            }
            Ast::Assign(vr, rhs) => {
                let value = self.eval(rhs, env)?;
                let name = self.mangle(vr, env)?;
                self.assign(&name, value.clone(), env);
                Ok(value)
            }
            Ast::Prog(body) => {
                let mut last = Value::Unit;
                for stmt in body {
                    last = self.eval(stmt, env)?;
                }
                Ok(last)
            }
            Ast::Cond(arms) => {
                for (test, body) in arms {
                    if self.truthy(test, env)? {
                        let mut last = Value::Unit;
                        for stmt in body {
                            last = self.eval(stmt, env)?;
                        }
                        return Ok(last);
                    }
                }
                Ok(Value::Unit)
            }
            Ast::Do {
                var,
                init,
                next,
                exit,
                body,
            } => {
                let init_v = self.eval(init, env)?;
                self.frames[env.0 as usize].insert(var.clone(), init_v);
                loop {
                    if self.truthy(exit, env)? {
                        return Ok(Value::Unit);
                    }
                    for stmt in body {
                        self.eval(stmt, env)?;
                    }
                    let next_v = self.eval(next, env)?;
                    self.frames[env.0 as usize].insert(var.clone(), next_v);
                }
            }
            Ast::Print(inner) => {
                let v = self.eval(inner, env)?;
                self.output.push(v.to_string());
                Ok(v)
            }
            Ast::Read => self
                .input
                .pop_front()
                .map(Value::Int)
                .ok_or_else(|| self.rt("`(read)` with empty input queue")),
            Ast::MkInstance(vr, cell_expr) => {
                let cell = self.eval_cell(cell_expr, env)?;
                let node = self.rsg.mk_instance(cell);
                let name = self.mangle(vr, env)?;
                self.assign(&name, Value::Node(node), env);
                Ok(Value::Node(node))
            }
            Ast::Connect(a, b, idx) => {
                let na = self.eval_node(a, env)?;
                let nb = self.eval_node(b, env)?;
                let index = self.eval_index(idx, env)?;
                self.rsg.connect(na, nb, index).map_err(LangError::from)?;
                Ok(Value::Unit)
            }
            Ast::Subcell(env_expr, vr) => {
                let target = match self.eval(env_expr, env)? {
                    Value::Env(e) => e,
                    other => {
                        return Err(self.rt(format!(
                            "subcell expects an environment, got {}",
                            other.type_name()
                        )))
                    }
                };
                let name = self.mangle(vr, env)?;
                self.frames[target.0 as usize]
                    .get(&name)
                    .cloned()
                    .ok_or_else(|| self.rt(format!("`{name}` not bound in that environment")))
            }
            Ast::MkCell(name_expr, root_expr) => {
                let name = match self.eval(name_expr, env)? {
                    Value::Str(s) => s,
                    Value::Symbol(s) => s,
                    other => {
                        return Err(self.rt(format!(
                            "mk_cell name must be a string, got {}",
                            other.type_name()
                        )))
                    }
                };
                let root = self.eval_node(root_expr, env)?;
                let id = self.rsg.mk_cell(&name, root).map_err(LangError::from)?;
                Ok(Value::Cell(id))
            }
            Ast::DeclareInterface {
                cell_c,
                cell_d,
                new_index,
                node_a,
                node_b,
                existing_index,
            } => {
                let c = self.eval_cell(cell_c, env)?;
                let d = self.eval_cell(cell_d, env)?;
                let new_idx = self.eval_index(new_index, env)?;
                let na = self.eval_node(node_a, env)?;
                let nb = self.eval_node(node_b, env)?;
                let old_idx = self.eval_index(existing_index, env)?;
                self.rsg
                    .declare_interface(c, d, new_idx, na, nb, old_idx)
                    .map_err(LangError::from)?;
                Ok(Value::Unit)
            }
            Ast::Call { name, args, line } => self.eval_call(name, args, *line, env),
        }
    }

    fn eval_call(
        &mut self,
        name: &str,
        args: &[Ast],
        line: usize,
        env: EnvId,
    ) -> Result<Value, LangError> {
        // User procedures shadow nothing: builtin operator names are not
        // legal procedure names anyway (they contain punctuation).
        if self.procs.contains_key(name) {
            return self.call_proc(name, args, env);
        }
        let mut vals = Vec::with_capacity(args.len());
        for a in args {
            vals.push(self.eval(a, env)?);
        }
        self.builtin(name, &vals, line)
    }

    fn call_proc(&mut self, name: &str, args: &[Ast], env: EnvId) -> Result<Value, LangError> {
        if self.call_stack.len() >= self.max_call_depth {
            return Err(self.rt(format!("call depth limit exceeded calling `{name}`")));
        }
        let Some(def) = self.procs.get(name).cloned() else {
            return Err(self.rt(format!("`{name}` is not a defined procedure")));
        };
        if args.len() != def.formals.len() {
            return Err(self.rt(format!(
                "`{name}` expects {} argument(s), got {}",
                def.formals.len(),
                args.len()
            )));
        }
        let mut vals = Vec::with_capacity(args.len());
        for a in args {
            vals.push(self.eval(a, env)?);
        }
        // The paper sizes each frame's hash table from the formal+local
        // count (§4.5); HashMap::with_capacity mirrors that.
        let mut frame = HashMap::with_capacity(def.formals.len() + def.locals.len());
        for (f, v) in def.formals.iter().zip(vals) {
            frame.insert(f.clone(), v);
        }
        for l in &def.locals {
            frame.insert(l.clone(), Value::Unit);
        }
        self.frames.push(frame);
        let callee = EnvId(self.frames.len() as u32 - 1);

        self.call_stack.push(name.to_owned());
        let mut last = Value::Unit;
        for stmt in &def.body {
            match self.eval(stmt, callee) {
                Ok(v) => last = v,
                Err(e) => {
                    self.call_stack.pop();
                    return Err(e);
                }
            }
        }
        self.call_stack.pop();
        Ok(if def.is_macro {
            Value::Env(callee)
        } else {
            last
        })
    }

    fn builtin(&mut self, name: &str, vals: &[Value], line: usize) -> Result<Value, LangError> {
        let int = |v: &Value| -> Result<i64, LangError> {
            match v {
                Value::Int(n) => Ok(*n),
                other => Err(LangError::runtime(format!(
                    "line {line}: `{name}` expects integers, got {}",
                    other.type_name()
                ))),
            }
        };
        let fold = |vals: &[Value], f: fn(i64, i64) -> i64| -> Result<Value, LangError> {
            if vals.len() < 2 {
                return Err(LangError::runtime(format!(
                    "line {line}: `{name}` needs at least 2 arguments"
                )));
            }
            let mut acc = int(&vals[0])?;
            for v in &vals[1..] {
                acc = f(acc, int(v)?);
            }
            Ok(Value::Int(acc))
        };
        let cmp2 = |vals: &[Value]| -> Result<(i64, i64), LangError> {
            if vals.len() != 2 {
                return Err(LangError::runtime(format!(
                    "line {line}: `{name}` takes exactly 2 arguments"
                )));
            }
            Ok((int(&vals[0])?, int(&vals[1])?))
        };
        match name {
            "+" => fold(vals, |a, b| a + b),
            "-" => {
                if vals.len() == 1 {
                    Ok(Value::Int(-int(&vals[0])?))
                } else {
                    fold(vals, |a, b| a - b)
                }
            }
            "*" => fold(vals, |a, b| a * b),
            "//" => {
                let (a, b) = cmp2(vals)?;
                if b == 0 {
                    return Err(self.rt(format!("line {line}: division by zero")));
                }
                Ok(Value::Int(a.div_euclid(b)))
            }
            "mod" => {
                let (a, b) = cmp2(vals)?;
                if b == 0 {
                    return Err(self.rt(format!("line {line}: mod by zero")));
                }
                Ok(Value::Int(a.rem_euclid(b)))
            }
            "=" => {
                if vals.len() != 2 {
                    return Err(self.rt(format!("line {line}: `=` takes 2 arguments")));
                }
                Ok(Value::Bool(vals[0] == vals[1]))
            }
            ">" => cmp2(vals).map(|(a, b)| Value::Bool(a > b)),
            "<" => cmp2(vals).map(|(a, b)| Value::Bool(a < b)),
            ">=" => cmp2(vals).map(|(a, b)| Value::Bool(a >= b)),
            "<=" => cmp2(vals).map(|(a, b)| Value::Bool(a <= b)),
            "min" => fold(vals, i64::min),
            "max" => fold(vals, i64::max),
            "not" => match vals {
                [Value::Bool(b)] => Ok(Value::Bool(!b)),
                _ => Err(self.rt(format!("line {line}: `not` takes one boolean"))),
            },
            _ => Err(self.rt(format!("line {line}: unknown procedure `{name}`"))),
        }
    }

    fn truthy(&mut self, ast: &Ast, env: EnvId) -> Result<bool, LangError> {
        match self.eval(ast, env)? {
            Value::Bool(b) => Ok(b),
            other => Err(self.rt(format!(
                "condition must be a boolean, got {}",
                other.type_name()
            ))),
        }
    }

    /// Resolves a variable reference to its (possibly mangled) name by
    /// evaluating index expressions in the current environment.
    fn mangle(&mut self, vr: &VarRef, env: EnvId) -> Result<String, LangError> {
        if vr.indices.is_empty() {
            return Ok(vr.base.clone());
        }
        let mut name = vr.base.clone();
        for idx in &vr.indices {
            match self.eval(idx, env)? {
                Value::Int(n) => {
                    name.push('.');
                    name.push_str(&n.to_string());
                }
                other => {
                    return Err(self.rt(format!(
                        "index of `{}` must be an integer, got {}",
                        vr.base,
                        other.type_name()
                    )))
                }
            }
        }
        Ok(name)
    }

    /// §4.1 lookup chain: frame → globals (with symbol-alias resolution) →
    /// cell table.
    fn lookup(&self, name: &str, env: EnvId) -> Result<Value, LangError> {
        if let Some(v) = self.frames[env.0 as usize].get(name) {
            return self.deref_symbol(v.clone(), 0);
        }
        self.lookup_global_or_cell(name, 0)
    }

    fn lookup_global_or_cell(&self, name: &str, depth: usize) -> Result<Value, LangError> {
        if depth > 16 {
            return Err(self.rt(format!("parameter alias chain too deep at `{name}`")));
        }
        if let Some(v) = self.globals.get(name) {
            return self.deref_symbol(v.clone(), depth + 1);
        }
        if let Some(cell) = self.rsg.cells().lookup(name) {
            return Ok(Value::Cell(cell));
        }
        Err(self.rt(format!("unbound variable `{name}`")))
    }

    fn deref_symbol(&self, v: Value, depth: usize) -> Result<Value, LangError> {
        match v {
            Value::Symbol(s) => self.lookup_global_or_cell(&s, depth),
            other => Ok(other),
        }
    }

    /// Assignment: update the binding where it lives (frame first, then
    /// global), else create it in the current frame.
    fn assign(&mut self, name: &str, value: Value, env: EnvId) {
        let frame = &mut self.frames[env.0 as usize];
        if frame.contains_key(name) {
            frame.insert(name.to_owned(), value);
        } else if self.globals.contains_key(name) {
            self.globals.insert(name.to_owned(), value);
        } else {
            self.frames[env.0 as usize].insert(name.to_owned(), value);
        }
    }

    fn eval_cell(&mut self, ast: &Ast, env: EnvId) -> Result<CellId, LangError> {
        match self.eval(ast, env)? {
            Value::Cell(c) => Ok(c),
            Value::Str(s) | Value::Symbol(s) => self
                .rsg
                .cells()
                .lookup(&s)
                .ok_or_else(|| self.rt(format!("no cell named `{s}`"))),
            other => Err(self.rt(format!("expected a cell, got {}", other.type_name()))),
        }
    }

    fn eval_node(&mut self, ast: &Ast, env: EnvId) -> Result<rsg_core::NodeId, LangError> {
        match self.eval(ast, env)? {
            Value::Node(n) => Ok(n),
            other => Err(self.rt(format!("expected a node, got {}", other.type_name()))),
        }
    }

    fn eval_index(&mut self, ast: &Ast, env: EnvId) -> Result<u32, LangError> {
        match self.eval(ast, env)? {
            Value::Int(n) if n >= 0 => Ok(n as u32),
            Value::Int(n) => Err(self.rt(format!("interface index must be >= 0, got {n}"))),
            other => Err(self.rt(format!(
                "interface index must be an integer, got {}",
                other.type_name()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsg_core::Interface;
    use rsg_geom::{Orientation, Point, Rect, Vector};
    use rsg_layout::{CellDefinition, Instance, Layer};

    fn bare_interp() -> Interpreter {
        Interpreter::new(Rsg::new())
    }

    /// Generator with a 10×10 `tile` and tile–tile interfaces #1 (10 east)
    /// and #2 (12 north).
    fn tiled_interp() -> Interpreter {
        let mut rsg = Rsg::new();
        let mut c = CellDefinition::new("tile");
        c.add_box(Layer::Metal1, Rect::from_coords(0, 0, 10, 10));
        let t = rsg.cells_mut().insert(c).unwrap();
        rsg.declare_primitive_interface(
            t,
            t,
            1,
            Interface::new(Vector::new(10, 0), Orientation::NORTH),
        )
        .unwrap();
        rsg.declare_primitive_interface(
            t,
            t,
            2,
            Interface::new(Vector::new(0, 12), Orientation::NORTH),
        )
        .unwrap();
        Interpreter::new(rsg)
    }

    #[test]
    fn arithmetic_and_comparison() {
        let mut i = bare_interp();
        assert_eq!(i.exec("(+ 1 2 3)").unwrap(), Value::Int(6));
        assert_eq!(i.exec("(- 10 4)").unwrap(), Value::Int(6));
        assert_eq!(i.exec("(- 5)").unwrap(), Value::Int(-5));
        assert_eq!(i.exec("(* 3 4)").unwrap(), Value::Int(12));
        assert_eq!(i.exec("(// 7 2)").unwrap(), Value::Int(3));
        assert_eq!(i.exec("(mod 7 2)").unwrap(), Value::Int(1));
        assert_eq!(i.exec("(= 1 1)").unwrap(), Value::Bool(true));
        assert_eq!(i.exec("(> 2 1)").unwrap(), Value::Bool(true));
        assert_eq!(i.exec("(< 2 1)").unwrap(), Value::Bool(false));
        assert_eq!(i.exec("(min 4 2 9)").unwrap(), Value::Int(2));
        assert_eq!(i.exec("(not false)").unwrap(), Value::Bool(true));
    }

    #[test]
    fn division_errors() {
        let mut i = bare_interp();
        assert!(i.exec("(// 1 0)").is_err());
        assert!(i.exec("(mod 1 0)").is_err());
    }

    #[test]
    fn setq_cond_do() {
        let mut i = bare_interp();
        let v = i
            .exec("(setq total 0)\n(do (k 1 (+ k 1) (> k 5)) (setq total (+ total k)))\ntotal")
            .unwrap();
        assert_eq!(v, Value::Int(15));
        let c = i
            .exec("(cond ((= 1 2) 10) ((= 1 1) 20) (true 30))")
            .unwrap();
        assert_eq!(c, Value::Int(20));
        // No matching arm: Unit.
        assert_eq!(i.exec("(cond ((= 1 2) 10))").unwrap(), Value::Unit);
    }

    #[test]
    fn functions_and_recursion() {
        let mut i = bare_interp();
        let v = i
            .exec("(defun fact (n) (locals) (cond ((= n 0) 1) (true (* n (fact (- n 1))))))\n(fact 10)")
            .unwrap();
        assert_eq!(v, Value::Int(3628800));
    }

    #[test]
    fn runaway_recursion_reports_depth() {
        let mut i = bare_interp();
        let err = i
            .exec("(defun foo (n) (locals) (foo (+ n 1)))\n(foo 0)")
            .unwrap_err();
        assert!(err.to_string().contains("depth"));
    }

    #[test]
    fn macros_return_environments() {
        let mut i = bare_interp();
        let v = i
            .exec(
                "(macro mbox (w h) (locals area) (setq area (* w h)))\n\
                 (setq e (mbox 3 4))\n(subcell e area)",
            )
            .unwrap();
        assert_eq!(v, Value::Int(12));
        // Formals are also accessible in the returned environment.
        let w = i.exec("(subcell e w)").unwrap();
        assert_eq!(w, Value::Int(3));
    }

    #[test]
    fn indexed_variables() {
        let mut i = bare_interp();
        let v = i
            .exec(
                "(setq n 3)\n\
                 (do (k 1 (+ k 1) (> k n)) (assign slot.k (* k k)))\n\
                 (+ slot.1 (+ slot.2 slot.(- n 0)))",
            )
            .unwrap();
        assert_eq!(v, Value::Int(1 + 4 + 9));
    }

    #[test]
    fn two_indexed_variables() {
        let mut i = bare_interp();
        let v = i
            .exec("(assign g.2.3 42)\n(setq r 2)\n(setq c 3)\ng.r.c")
            .unwrap();
        assert_eq!(v, Value::Int(42));
    }

    #[test]
    fn parameter_scoping_chain() {
        let mut i = tiled_interp();
        i.load_parameters("corecell=tile\nhinum=1\nsize=3\n")
            .unwrap();
        // `corecell` resolves via global alias → cell table.
        let v = i.exec("corecell").unwrap();
        assert!(matches!(v, Value::Cell(_)));
        // Direct cell-table fallback.
        let v2 = i.exec("tile").unwrap();
        assert_eq!(v, v2);
        // Locals shadow globals.
        let v3 = i
            .exec("(defun probe (size) (locals) size)\n(probe 99)")
            .unwrap();
        assert_eq!(v3, Value::Int(99));
        assert_eq!(i.exec("size").unwrap(), Value::Int(3));
    }

    #[test]
    fn alias_cycle_detected() {
        let mut i = bare_interp();
        i.load_parameters("a=b\nb=a\n").unwrap();
        let err = i.exec("a").unwrap_err();
        assert!(err.to_string().contains("too deep"));
    }

    #[test]
    fn rsg_primitives_build_a_row() {
        let mut i = tiled_interp();
        i.load_parameters("corecell=tile\nhinum=1\n").unwrap();
        let v = i
            .exec(
                "(mk_instance first corecell)\n\
                 (setq prev first)\n\
                 (do (k 2 (+ k 1) (> k 4))\n\
                   (mk_instance cur corecell)\n\
                   (connect prev cur hinum)\n\
                   (setq prev cur))\n\
                 (mk_cell \"row\" first)",
            )
            .unwrap();
        assert!(matches!(v, Value::Cell(_)));
        let row = i.rsg().cells().lookup("row").unwrap();
        let pts: Vec<Point> = i
            .rsg()
            .cells()
            .require(row)
            .unwrap()
            .instances()
            .map(|x| x.point_of_call)
            .collect();
        assert_eq!(
            pts,
            vec![
                Point::new(0, 0),
                Point::new(10, 0),
                Point::new(20, 0),
                Point::new(30, 0)
            ]
        );
    }

    #[test]
    fn subcell_reaches_into_macro_results() {
        let mut i = tiled_interp();
        i.load_parameters("corecell=tile\nhinum=1\nvinum=2\n")
            .unwrap();
        // mrow builds a row and exposes its first node as `first`; the top
        // level stitches two rows vertically through those handles.
        let v = i
            .exec(
                "(macro mrow (n) (locals first prev cur)\n\
                   (mk_instance first corecell)\n\
                   (setq prev first)\n\
                   (do (k 2 (+ k 1) (> k n))\n\
                     (mk_instance cur corecell)\n\
                     (connect prev cur hinum)\n\
                     (setq prev cur)))\n\
                 (setq r1 (mrow 3))\n\
                 (setq r2 (mrow 3))\n\
                 (connect (subcell r1 first) (subcell r2 first) vinum)\n\
                 (mk_cell \"grid\" (subcell r1 first))",
            )
            .unwrap();
        assert!(matches!(v, Value::Cell(_)));
        let grid = i.rsg().cells().lookup("grid").unwrap();
        let def = i.rsg().cells().require(grid).unwrap();
        assert_eq!(def.instances().count(), 6);
        let pts: std::collections::HashSet<Point> =
            def.instances().map(|x| x.point_of_call).collect();
        assert!(pts.contains(&Point::new(20, 12)));
    }

    #[test]
    fn print_and_read() {
        let mut i = bare_interp();
        i.push_input([7, 8]);
        let v = i.exec("(print (+ (read) (read)))").unwrap();
        assert_eq!(v, Value::Int(15));
        assert_eq!(i.output(), ["15"]);
        assert!(i.exec("(read)").is_err());
    }

    #[test]
    fn error_carries_call_stack() {
        let mut i = bare_interp();
        let err = i
            .exec("(defun inner () (locals) nosuchvar)\n(defun outer () (locals) (inner))\n(outer)")
            .unwrap_err();
        let text = err.to_string();
        assert!(text.contains("nosuchvar"));
        assert!(text.contains("outer > inner"), "{text}");
    }

    #[test]
    fn wrong_arity_reported() {
        let mut i = bare_interp();
        let err = i.exec("(defun fxy (a b) (locals) a)\n(fxy 1)").unwrap_err();
        assert!(err.to_string().contains("expects 2"));
    }

    #[test]
    fn type_errors() {
        let mut i = tiled_interp();
        assert!(i.exec("(connect 1 2 3)").is_err());
        assert!(i.exec("(mk_cell 42 43)").is_err());
        assert!(i.exec("(cond (5 1))").is_err());
        assert!(i.exec("(+ true 1)").is_err());
        assert!(i.exec("(subcell 3 x)").is_err());
    }

    #[test]
    fn run_design_via_sample() {
        // End-to-end Fig 1.1 flow through the public driver.
        let mut sample = CellTable::new();
        let mut tile = CellDefinition::new("tile");
        tile.add_box(Layer::Poly, Rect::from_coords(0, 0, 6, 6));
        let t = sample.insert(tile).unwrap();
        let mut ab = CellDefinition::new("abut");
        ab.add_instance(Instance::new(t, Point::new(0, 0), Orientation::NORTH));
        ab.add_instance(Instance::new(t, Point::new(6, 0), Orientation::NORTH));
        ab.add_label("1", Point::new(6, 3));
        sample.insert(ab).unwrap();

        let run = crate::run_design(
            sample,
            "(mk_instance a corecell)(mk_instance b corecell)(connect a b 1)(mk_cell \"pair\" a)",
            "corecell=tile\n",
        )
        .unwrap();
        let pair = run.rsg.cells().lookup("pair").unwrap();
        assert_eq!(
            run.rsg.cells().require(pair).unwrap().instances().count(),
            2
        );
    }
}
