//! Runtime values of the design-file language.

use rsg_core::NodeId;
use rsg_layout::CellId;
use std::fmt;

/// Opaque handle to an environment frame kept alive after a macro returns
/// (paper §4.2: "macros return their evaluation environment").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EnvId(pub(crate) u32);

/// A design-file runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
    /// A connectivity-graph node (partial instance handle).
    Node(NodeId),
    /// A cell definition.
    Cell(CellId),
    /// A macro's returned environment.
    Env(EnvId),
    /// An unresolved symbol from the parameter file (`corecell=basiccell`);
    /// re-resolved through globals and the cell table at use time (§4.1).
    Symbol(String),
    /// No useful value (connect, assignments, empty progs).
    Unit,
}

impl Value {
    /// A short name of the value's type for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "integer",
            Value::Bool(_) => "boolean",
            Value::Str(_) => "string",
            Value::Node(_) => "node",
            Value::Cell(_) => "cell",
            Value::Env(_) => "environment",
            Value::Symbol(_) => "symbol",
            Value::Unit => "unit",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Node(n) => write!(f, "#node{}", n.raw()),
            Value::Cell(c) => write!(f, "#cell{}", c.raw()),
            Value::Env(e) => write!(f, "#env{}", e.0),
            Value::Symbol(s) => write!(f, "'{s}"),
            Value::Unit => write!(f, "nil"),
        }
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Int(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_types() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(Value::Str("x".into()).to_string(), "x");
        assert_eq!(Value::Unit.to_string(), "nil");
        assert_eq!(Value::Symbol("c".into()).to_string(), "'c");
        assert_eq!(Value::Int(0).type_name(), "integer");
        assert_eq!(Value::Unit.type_name(), "unit");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("a"), Value::Str("a".into()));
    }
}
